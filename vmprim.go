// Package vmprim is a Go reproduction of "Four Vector-Matrix
// Primitives" (Agrawal, Blelloch, Krawitz, Phillips — SPAA 1989): four
// APL-like primitives for dense matrices and vectors — Extract,
// Insert, Distribute and Reduce — implemented over load-balanced
// embeddings on a simulated Boolean-cube (hypercube) multiprocessor,
// together with the three application algorithms the paper builds from
// them: vector-matrix multiply, Gaussian elimination, and simplex.
//
// This package is the public facade: it re-exports the machine model,
// the embeddings, the distributed matrix/vector types, the primitives
// and the application drivers from the internal packages, so a
// downstream user needs a single import. See README.md for a tour and
// DESIGN.md for the system inventory.
//
// A minimal program:
//
//	m := vmprim.NewMachine(4, vmprim.CM2())          // 16 processors
//	g := vmprim.SplitFor(m.Dim(), 8, 8)              // 4x4 grid
//	a, _ := vmprim.FromDense(g, dense, vmprim.Block, vmprim.Block)
//	out, _ := vmprim.NewVector(g, 8, vmprim.RowAligned, vmprim.Block, 0, true)
//	m.Run(func(p *vmprim.Proc) {
//	    e := vmprim.NewEnv(p, g)
//	    e.StoreVec(out, e.ReduceRows(a, vmprim.OpSum, true)) // column sums
//	})
//	sums := out.ToSlice()
//	elapsed := m.Elapsed() // simulated machine time
package vmprim

import (
	"time"

	"vmprim/internal/apps"
	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/flightrec"
	"vmprim/internal/hypercube"
	"vmprim/internal/metrics"
	"vmprim/internal/obs"
	"vmprim/internal/serial"
)

// Machine model (internal/hypercube, internal/costmodel).
type (
	// Machine is a simulated Boolean-cube multiprocessor: one
	// goroutine per processor, message channels along cube edges, and
	// virtual clocks driven by Params.
	Machine = hypercube.Machine
	// Proc is one processor's handle inside a Machine.Run body.
	Proc = hypercube.Proc
	// Stats aggregates message/word/flop counters over one run.
	Stats = hypercube.Stats
	// SchedStats aggregates host-scheduler diagnostics over one run
	// (frontier parks, backpressure stalls, wakeups). Unlike Stats these
	// describe host execution, not the simulated machine, and vary with
	// GOMAXPROCS and load; exclude them from any determinism comparison.
	SchedStats = hypercube.SchedStats
	// Params is the architectural cost-parameter set.
	Params = costmodel.Params
	// Time is simulated machine time in microseconds.
	Time = costmodel.Time
)

// Virtual-time profiler (internal/obs). Switch it on per machine with
// Machine.EnableProfile(true) before a run; Machine.Profile() then
// returns the run's Profile — a span tree with per-span virtual-time
// buckets — renderable as a text tree (WriteTree), profile JSON
// (WriteJSON) or Chrome trace-event JSON (ChromeTrace). Inside an SPMD
// body, Env.BeginSpan/EndSpan add application-level spans.
type (
	// Profile is one profiled run: span tree, per-processor clock
	// buckets and link loads.
	Profile = obs.Profile
	// Span is one node of a Profile's tree.
	Span = obs.Span
	// Buckets splits a processor's virtual clock into compute,
	// start-up, transfer and idle time.
	Buckets = obs.Buckets
	// LinkLoad is the word volume of one directed cube link.
	LinkLoad = obs.LinkLoad
)

// Critical-path tracer (internal/obs, internal/hypercube). Switch it
// on per machine with Machine.EnableCritPath(true) before a run;
// Machine.CritPath() then returns the run's longest causal chain —
// the sequence of compute, start-up, transfer and idle stretches the
// makespan was actually waiting on — with its weights attributed to
// profiler spans and a cost-model conformance table comparing each
// span's measured time against the Params prediction. The document is
// deterministic (bit-identical at every GOMAXPROCS) and renderable as
// text (WriteText) or JSON (WriteJSON); Check verifies that the path
// weights sum exactly to the makespan.
type (
	// CritPath is one run's critical path.
	CritPath = obs.CritPath
	// PathSpan is one profiler span's share of the critical path.
	PathSpan = obs.PathSpan
	// PathSegment is one causal segment of the path's chain.
	PathSegment = obs.PathSegment
	// ConformanceEntry compares one span's measured per-operation time
	// against the cost model's prediction.
	ConformanceEntry = obs.ConformanceEntry
)

// Post-mortems, flight recorder and metrics (internal/hypercube,
// internal/flightrec, internal/metrics). A failed run's error wraps a
// *RunError whose Report is the structured post-mortem: per-processor
// blocked state, recent flight-recorder events, open span stacks and
// link occupancy, renderable as text (WriteText) or JSON (WriteJSON).
// Machine.Metrics() is the machine's metrics registry; its Snapshot
// serializes as JSON (WriteJSON) or Prometheus text (WritePrometheus).
type (
	// RunError is the error a failed Machine.Run returns, carrying the
	// post-mortem Report. Extract it with errors.As.
	RunError = hypercube.RunError
	// PostMortemReport is the structured post-mortem of a failed run.
	PostMortemReport = flightrec.Report
	// ProcPostMortem is one processor's state within a post-mortem.
	ProcPostMortem = flightrec.ProcState
	// LinkPostMortem is one occupied link within a post-mortem.
	LinkPostMortem = flightrec.LinkState
	// FlightEvent is one flight-recorder ring entry.
	FlightEvent = flightrec.Event
	// MetricsRegistry is a machine's named counter/gauge/histogram set.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of a MetricsRegistry.
	MetricsSnapshot = metrics.Snapshot
)

// Live event streaming and machine pooling (internal/obs,
// internal/hypercube) — the pieces cmd/vmprimd's serving plane is
// built from, exported for embedders running their own.
// Machine.EnableStream attaches a StreamSink that receives
// span-open/span-close, progress and link-congestion events as a
// profiled run executes; a MachinePool keeps warm machines across
// runs, keyed by (dimension, cost parameters).
type (
	// StreamEvent is one live observability event from a running
	// machine; Kind is one of the Ev* constants.
	StreamEvent = obs.StreamEvent
	// StreamSink consumes StreamEvents; it is called from machine
	// worker goroutines and must return quickly.
	StreamSink = obs.StreamSink
	// MachinePool is a bounded LRU of idle machines.
	MachinePool = hypercube.MachinePool
	// PoolKey identifies one machine configuration within a pool.
	PoolKey = hypercube.PoolKey
	// PoolStats summarizes a pool's hit/miss/eviction traffic.
	PoolStats = hypercube.PoolStats
)

// Stream event kinds.
const (
	EvSpanOpen  = obs.EvSpanOpen
	EvSpanClose = obs.EvSpanClose
	EvProgress  = obs.EvProgress
	EvLink      = obs.EvLink
)

// NewMachinePool returns a pool retaining up to capacity idle
// machines; Acquire either reuses a pooled machine or builds one.
func NewMachinePool(capacity int) *MachinePool { return hypercube.NewMachinePool(capacity) }

// SetDefaultRecvTimeout changes the deadlock-watchdog timeout applied
// to machines created afterwards; d <= 0 restores the built-in
// default (hypercube.DefaultRecvTimeout, 30s). Existing machines keep
// their timeout — use Machine.SetRecvTimeout for those.
func SetDefaultRecvTimeout(d time.Duration) { hypercube.SetDefaultRecvTimeout(d) }

// NewMachine returns a 2^dim-processor machine; it panics on invalid
// arguments (use hypercube.New for the error-returning form).
func NewMachine(dim int, params Params) *Machine { return hypercube.MustNew(dim, params) }

// CM2 returns Connection Machine-like cost parameters, the default
// experiment machine.
func CM2() Params { return costmodel.CM2() }

// IPSC returns Intel iPSC-like cost parameters (very high start-up).
func IPSC() Params { return costmodel.IPSC() }

// Ideal returns unit-cost parameters for asymptotic studies.
func Ideal() Params { return costmodel.Ideal() }

// Embeddings (internal/embed).
type (
	// Grid is the 2^dr x 2^dc processor grid carved from the cube.
	Grid = embed.Grid
	// MapKind selects the consecutive (Block) or Cyclic element map.
	MapKind = embed.MapKind
)

// Element map kinds.
const (
	Block  = embed.Block
	Cyclic = embed.Cyclic
)

// NewGrid returns a grid with dr row bits and dc column bits.
func NewGrid(dr, dc int) (Grid, error) { return embed.NewGrid(dr, dc) }

// SplitFor chooses a balanced grid for an rows x cols matrix on a
// dim-dimensional cube.
func SplitFor(dim, rows, cols int) Grid { return embed.SplitFor(dim, rows, cols) }

// Distributed data and the four primitives (internal/core).
type (
	// Matrix is a dense matrix distributed over the grid.
	Matrix = core.Matrix
	// Vector is a dense vector in one of the three embeddings.
	Vector = core.Vector
	// Layout names the vector embeddings.
	Layout = core.Layout
	// Env is one processor's handle to the primitives inside an SPMD
	// body; its methods are the library's operation set.
	Env = core.Env
	// Op names the plain reduction operators.
	Op = core.Op
	// LocOp names the value-with-location reduction operators.
	LocOp = core.LocOp
)

// Vector layouts.
const (
	Linear     = core.Linear
	RowAligned = core.RowAligned
	ColAligned = core.ColAligned
)

// Reduction operators.
const (
	OpSum = core.OpSum
	OpMax = core.OpMax
	OpMin = core.OpMin

	LocMax    = core.LocMax
	LocMin    = core.LocMin
	LocMaxAbs = core.LocMaxAbs
)

// NewEnv returns the SPMD environment for proc p on grid g.
func NewEnv(p *Proc, g Grid) *Env { return core.NewEnv(p, g) }

// NewMatrix returns a zero distributed matrix.
func NewMatrix(g Grid, rows, cols int, rkind, ckind MapKind) (*Matrix, error) {
	return core.NewMatrix(g, rows, cols, rkind, ckind)
}

// NewVector returns a zero distributed vector.
func NewVector(g Grid, n int, layout Layout, kind MapKind, home int, replicated bool) (*Vector, error) {
	return core.NewVector(g, n, layout, kind, home, replicated)
}

// FromDense distributes a dense matrix onto the grid (host-side).
func FromDense(g Grid, dm *Dense, rkind, ckind MapKind) (*Matrix, error) {
	return core.FromDense(g, dm, rkind, ckind)
}

// VectorFromSlice distributes a dense vector (host-side).
func VectorFromSlice(g Grid, x []float64, layout Layout, kind MapKind, home int, replicated bool) (*Vector, error) {
	return core.VectorFromSlice(g, x, layout, kind, home, replicated)
}

// Serial reference types (internal/serial) — the dense host-side data
// the distributed containers load from and compare against.
type (
	// Dense is a host-side dense row-major matrix.
	Dense = serial.Mat
	// LPResult is the outcome of a simplex solve.
	LPResult = serial.LPResult
	// LPStatus is the solve status.
	LPStatus = serial.LPStatus
)

// LP statuses.
const (
	Optimal   = serial.Optimal
	Unbounded = serial.Unbounded
	IterLimit = serial.IterLimit
)

// NewDense returns a zero r x c dense matrix.
func NewDense(r, c int) *Dense { return serial.NewMat(r, c) }

// DenseFromRows builds a dense matrix from row slices.
func DenseFromRows(rows [][]float64) *Dense { return serial.FromRows(rows) }

// Applications (internal/apps).
type (
	// MatvecVariant selects a vector-matrix multiply implementation.
	MatvecVariant = apps.MatvecVariant
	// GaussOpts configures a Gaussian-elimination solve.
	GaussOpts = apps.GaussOpts
	// SimplexOpts configures a simplex solve.
	SimplexOpts = apps.SimplexOpts
)

// Matvec variants.
const (
	MatvecPrimitive = apps.MatvecPrimitive
	MatvecFused     = apps.MatvecFused
	MatvecNaive     = apps.MatvecNaive
)

// RunVecMat computes y = x*A on machine m with the chosen variant and
// returns y, the simulated elapsed time and the run statistics.
func RunVecMat(m *Machine, a *Dense, x []float64, variant MatvecVariant) ([]float64, Time, Stats, error) {
	return apps.RunVecMat(m, a, x, variant)
}

// VecMatKernel is the SPMD form of the vector-matrix multiply, for
// composition inside a caller's own Machine.Run body. x must be
// col-aligned; the structured variants return a replicated row-aligned
// result.
func VecMatKernel(e *Env, a *Matrix, x *Vector, variant MatvecVariant) *Vector {
	return apps.VecMatKernel(e, a, x, variant)
}

// DefaultGaussOpts returns cyclic embeddings with primitives on.
func DefaultGaussOpts() GaussOpts { return apps.DefaultGaussOpts() }

// SolveGauss solves A x = b by distributed Gaussian elimination with
// partial pivoting, returning x and the simulated elapsed time.
func SolveGauss(m *Machine, a *Dense, b []float64, opts GaussOpts) ([]float64, Time, error) {
	return apps.SolveGauss(m, a, b, opts)
}

// DefaultSimplexOpts returns cyclic embeddings and a generous pivot
// cap.
func DefaultSimplexOpts() SimplexOpts { return apps.DefaultSimplexOpts() }

// SolveSimplex maximizes c^T x subject to A x <= b, x >= 0 (b >= 0)
// with the distributed tableau simplex, returning the result and the
// simulated elapsed time.
func SolveSimplex(m *Machine, c []float64, a *Dense, b []float64, opts SimplexOpts) (LPResult, Time, error) {
	return apps.SolveSimplex(m, c, a, b, opts)
}

// Serial reference algorithms, exposed for baseline comparisons.

// SerialGaussSolve solves A x = b on one processor.
func SerialGaussSolve(a *Dense, b []float64) ([]float64, error) { return serial.GaussSolve(a, b) }

// SerialSolveLP solves the LP on one processor with the same pivot
// rules as the distributed simplex.
func SerialSolveLP(c []float64, a *Dense, b []float64, maxIter int) (LPResult, error) {
	return serial.SolveLP(c, a, b, maxIter)
}

// SerialVecMatMul computes y = x*A on one processor.
func SerialVecMatMul(x []float64, a *Dense) []float64 { return serial.VecMatMul(x, a) }

// Extensions beyond the paper's three applications: multiple
// right-hand sides, matrix-matrix multiply, and an iterative solver,
// all composed from the same primitives.

type (
	// CGOpts configures a conjugate-gradient solve.
	CGOpts = apps.CGOpts
	// CGResult reports a conjugate-gradient solve.
	CGResult = apps.CGResult
)

// SolveGaussMany solves A X = B for a block of right-hand sides by
// distributed elimination, returning X and the simulated time.
func SolveGaussMany(m *Machine, a, b *Dense, opts GaussOpts) (*Dense, Time, error) {
	return apps.SolveGaussMany(m, a, b, opts)
}

// MatMul multiplies two dense matrices with the distributed
// outer-product algorithm (ExtractCol + ExtractRow + rank-1 update per
// inner index).
func MatMul(m *Machine, a, b *Dense, kind MapKind) (*Dense, Time, error) {
	return apps.MatMul(m, a, b, kind)
}

// SolveCG solves a symmetric positive-definite system by conjugate
// gradient with a Jacobi preconditioner, composed from the primitives.
func SolveCG(m *Machine, a *Dense, b []float64, opts CGOpts) (CGResult, Time, error) {
	return apps.SolveCG(m, a, b, opts)
}

// MatVecKernel computes y = A*x inside an SPMD body (x row-aligned,
// result col-aligned replicated) — the dual orientation to
// VecMatKernel.
func MatVecKernel(e *Env, a *Matrix, x *Vector) *Vector {
	return apps.MatVecKernel(e, a, x)
}

// Determinant computes det(A) by distributed elimination with partial
// pivoting.
func Determinant(m *Machine, a *Dense, opts GaussOpts) (float64, Time, error) {
	return apps.Determinant(m, a, opts)
}

// SerialSolveLPBland is the serial simplex under Bland's anti-cycling
// rule, the reference for SimplexOpts.Bland.
func SerialSolveLPBland(c []float64, a *Dense, b []float64, maxIter int) (LPResult, error) {
	return serial.SolveLPBland(c, a, b, maxIter)
}

// LU is a reusable distributed factorization P A = L U: factor once,
// solve many right-hand sides at O(n^2/p) each.
type LU = apps.LU

// LUFactor factors a on machine m with partial pivoting.
func LUFactor(m *Machine, a *Dense, opts GaussOpts) (*LU, error) {
	return apps.LUFactor(m, a, opts)
}

// SolveTridiag solves a tridiagonal system (a[i]x[i-1] + b[i]x[i] +
// c[i]x[i+1] = d[i]) by distributed odd-even cyclic reduction in
// O(lg n) parallel steps.
func SolveTridiag(m *Machine, a, b, c, d []float64) ([]float64, Time, error) {
	return apps.SolveTridiag(m, a, b, c, d)
}

// SerialSolveTridiag is the Thomas-algorithm reference.
func SerialSolveTridiag(a, b, c, d []float64) ([]float64, error) {
	return serial.SolveTridiag(a, b, c, d)
}

// TridiagSystem is one independent tridiagonal system for the batch
// solver.
type TridiagSystem = apps.TridiagSystem

// SolveTridiagBatch solves many independent tridiagonal systems by
// whole-system partitioning (local Thomas solves) — the embarrassingly
// parallel workload of Alternating Direction Methods.
func SolveTridiagBatch(m *Machine, systems []TridiagSystem) ([][]float64, Time, error) {
	return apps.SolveTridiagBatch(m, systems)
}

// Inverse computes A^-1 by distributed elimination on A X = I.
func Inverse(m *Machine, a *Dense, opts GaussOpts) (*Dense, Time, error) {
	return apps.Inverse(m, a, opts)
}
