package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
)

func TestDotVecAllLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, g := range testGrids(t) {
		n := 11
		x := make([]float64, n)
		y := make([]float64, n)
		want := 0.0
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
			want += x[i] * y[i]
		}
		for _, layout := range []Layout{Linear, RowAligned, ColAligned} {
			for _, repl := range []bool{false, true} {
				if layout == Linear && repl {
					continue
				}
				vx, _ := VectorFromSlice(g, x, layout, embed.Block, 0, repl)
				vy, _ := VectorFromSlice(g, y, layout, embed.Block, 0, repl)
				var got float64
				spmd(t, g, func(e *Env) {
					d := e.DotVec(vx, vy)
					if e.P.ID() == 0 {
						got = d
					}
				})
				if math.Abs(got-want) > 1e-10 {
					t.Fatalf("%v repl=%v: dot %v, want %v", layout, repl, got, want)
				}
			}
		}
	}
}

func TestNorms(t *testing.T) {
	g, _ := embed.NewGrid(2, 1)
	x := []float64{3, -4, 0, 1, -2}
	vx, _ := VectorFromSlice(g, x, Linear, embed.Block, 0, false)
	var n2, ninf float64
	spmd(t, g, func(e *Env) {
		a := e.Norm2Vec(vx)
		b := e.NormInfVec(vx)
		if e.P.ID() == 0 {
			n2, ninf = a, b
		}
	})
	if math.Abs(n2-math.Sqrt(30)) > 1e-12 {
		t.Fatalf("norm2 = %v", n2)
	}
	if ninf != 4 {
		t.Fatalf("norminf = %v", ninf)
	}
}

func TestAddScaledAndScaleAdd(t *testing.T) {
	g, _ := embed.NewGrid(1, 2)
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 20, 30, 40, 50}
	vx, _ := VectorFromSlice(g, x, RowAligned, embed.Block, 0, true)
	vy, _ := VectorFromSlice(g, y, RowAligned, embed.Block, 0, true)
	spmd(t, g, func(e *Env) {
		e.AddScaledVec(vx, 2, vy)  // x = x + 2y
		e.ScaleAddVec(vx, 0.5, vy) // x = 0.5x + y
	})
	got := vx.ToSlice()
	for i := range x {
		want := 0.5*(x[i]+2*y[i]) + y[i]
		if math.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("[%d] = %v, want %v", i, got[i], want)
		}
	}
	if err := vx.CheckReplicas(); err != nil {
		t.Fatal(err)
	}
}

func TestScanVecSumAllLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, g := range testGrids(t) {
		for _, n := range []int{1, 5, 9, 16} {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			want := make([]float64, n)
			acc := 0.0
			for i, v := range x {
				acc += v
				want[i] = acc
			}
			for _, layout := range []Layout{Linear, RowAligned, ColAligned} {
				for _, repl := range []bool{false, true} {
					if layout == Linear && repl {
						continue
					}
					vx, _ := VectorFromSlice(g, x, layout, embed.Block, 0, repl)
					out, _ := NewVector(g, n, layout, embed.Block, 0, repl)
					spmd(t, g, func(e *Env) {
						e.StoreVec(out, e.ScanVec(vx, OpSum))
					})
					vecEqual(t, out.ToSlice(), want, 1e-10, "ScanVec sum")
					if err := out.CheckReplicas(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
}

func TestScanVecMax(t *testing.T) {
	g, _ := embed.NewGrid(2, 2)
	x := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5}
	want := []float64{3, 3, 4, 4, 5, 9, 9, 9, 9}
	vx, _ := VectorFromSlice(g, x, Linear, embed.Block, 0, false)
	out, _ := NewVector(g, len(x), Linear, embed.Block, 0, false)
	spmd(t, g, func(e *Env) {
		e.StoreVec(out, e.ScanVec(vx, OpMax))
	})
	vecEqual(t, out.ToSlice(), want, 0, "ScanVec max")
}

func TestScanVecFollowedByCollective(t *testing.T) {
	// Regression: a non-replicated aligned scan must leave the tag
	// sequences of holders and non-holders synchronized, so a later
	// full-cube collective still matches.
	g, _ := embed.NewGrid(2, 1)
	x := []float64{1, 2, 3, 4}
	vx, _ := VectorFromSlice(g, x, RowAligned, embed.Block, 1, false)
	var total float64
	spmd(t, g, func(e *Env) {
		s := e.ScanVec(vx, OpSum)
		v := e.ReduceVec(s, OpMax) // full-cube collective right after
		if e.P.ID() == 0 {
			total = v
		}
	})
	if total != 10 {
		t.Fatalf("max prefix = %v, want 10", total)
	}
}

func TestScanVecRejectsCyclic(t *testing.T) {
	g, _ := embed.NewGrid(1, 1)
	vx, _ := VectorFromSlice(g, []float64{1, 2, 3}, Linear, embed.Cyclic, 0, false)
	m := hypercube.MustNew(g.D, costmodel.CM2())
	m.SetRecvTimeout(2e9)
	_, err := m.Run(func(p *hypercube.Proc) {
		e := NewEnv(p, g)
		e.ScanVec(vx, OpSum)
	})
	if err == nil {
		t.Fatal("cyclic scan accepted")
	}
}

func TestDotVecQuickAgainstSerial(t *testing.T) {
	g, _ := embed.NewGrid(1, 2)
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%12 + 1
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		y := make([]float64, n)
		want := 0.0
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
			want += x[i] * y[i]
		}
		vx, err := VectorFromSlice(g, x, Linear, embed.Block, 0, false)
		if err != nil {
			return false
		}
		vy, err := VectorFromSlice(g, y, Linear, embed.Block, 0, false)
		if err != nil {
			return false
		}
		ok := true
		m := hypercube.MustNew(g.D, costmodel.CM2())
		if _, err := m.Run(func(p *hypercube.Proc) {
			e := NewEnv(p, g)
			if math.Abs(e.DotVec(vx, vy)-want) > 1e-9 {
				ok = false
			}
		}); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
