package core

import (
	"fmt"

	"vmprim/internal/collective"
	"vmprim/internal/gray"
)

// This file implements the first two of the four primitives — Extract
// and Insert — plus the scalar accessors and the row/column swap
// composed from them.

// ExtractRow pulls row i out of the matrix as a row-aligned vector.
// With replicate=false the vector lives on the grid row owning matrix
// row i (pure local data motion: zero communication). With
// replicate=true it is broadcast to every grid row — the combination
// Extract-then-Distribute fused into one call, costing a binomial
// broadcast of the m/p-sized local pieces over the dr row dimensions.
func (e *Env) ExtractRow(a *Matrix, i int, replicate bool) *Vector {
	e.BeginSpan("extract-row")
	defer e.EndSpan()
	if i < 0 || i >= a.Rows {
		panic(fmt.Sprintf("core: ExtractRow index %d out of [0,%d)", i, a.Rows))
	}
	ownerRow := a.RMap.CoordOf(i)
	lr := a.RMap.LocalOf(i)
	v := e.TempVector(a.Cols, RowAligned, a.CMap.Kind, ownerRow, replicate)
	pid := e.P.ID()
	b := a.CMap.B
	var piece []float64
	if e.GridRow() == ownerRow {
		blk := a.L(pid)
		piece = e.P.GetBuf(b)
		copy(piece, blk[lr*b:(lr+1)*b])
		e.P.Compute(b)
	}
	switch {
	case replicate:
		got := collective.Bcast(e.P, e.G.RowMask(), e.NextTag(), e.G.RowRel(ownerRow), piece)
		copy(v.L(pid), got)
		e.P.Recycle(got)
	case e.GridRow() == ownerRow:
		copy(v.L(pid), piece)
	}
	e.P.Recycle(piece)
	return v
}

// ExtractCol pulls column j out of the matrix as a col-aligned vector,
// symmetric to ExtractRow.
func (e *Env) ExtractCol(a *Matrix, j int, replicate bool) *Vector {
	e.BeginSpan("extract-col")
	defer e.EndSpan()
	if j < 0 || j >= a.Cols {
		panic(fmt.Sprintf("core: ExtractCol index %d out of [0,%d)", j, a.Cols))
	}
	ownerCol := a.CMap.CoordOf(j)
	lc := a.CMap.LocalOf(j)
	v := e.TempVector(a.Rows, ColAligned, a.RMap.Kind, ownerCol, replicate)
	pid := e.P.ID()
	b := a.CMap.B
	var piece []float64
	if e.GridCol() == ownerCol {
		blk := a.L(pid)
		piece = e.P.GetBuf(a.RMap.B)
		for r := 0; r < a.RMap.B; r++ {
			piece[r] = blk[r*b+lc]
		}
		e.P.Compute(a.RMap.B)
	}
	switch {
	case replicate:
		got := collective.Bcast(e.P, e.G.ColMask(), e.NextTag(), e.G.ColRel(ownerCol), piece)
		copy(v.L(pid), got)
		e.P.Recycle(got)
	case e.GridCol() == ownerCol:
		copy(v.L(pid), piece)
	}
	e.P.Recycle(piece)
	return v
}

// sendAlong moves data from the subcube member at relative address
// fromRel to the member at toRel, hop by hop along the e-cube path.
// All subcube members must call it; it returns the data at toRel (and
// at fromRel if fromRel == toRel) and nil elsewhere.
func (e *Env) sendAlong(mask, fromRel, toRel int, data []float64) []float64 {
	e.BeginSpan("shift")
	defer e.EndSpan()
	myRel := gray.Compact(e.P.ID(), mask)
	if fromRel == toRel {
		if myRel == fromRel {
			return data
		}
		return nil
	}
	dims := gray.Dims(mask)
	tag := e.NextTag()
	cur := fromRel
	var buf []float64
	owned := false // buf came from Recv (pooled), not from the caller
	if myRel == fromRel {
		buf = data
	}
	for bit, d := range dims {
		if (fromRel^toRel)>>bit&1 == 0 {
			continue
		}
		next := cur ^ (1 << bit)
		//lint:allow collorder hop-by-hop relay: cur and next are the two endpoints of one e-cube edge, so the Send and the Recv are the matched halves of a single transfer and the partners agree by construction of the route
		switch myRel {
		case cur:
			e.P.Send(d, tag, buf)
			if owned {
				e.P.Recycle(buf)
			}
			buf = nil
		case next:
			buf = e.P.Recv(d, tag)
			owned = true
		}
		cur = next
	}
	if myRel == toRel {
		return buf
	}
	return nil
}

// InsertRow stores a row-aligned vector as row i of the matrix: the
// inverse of ExtractRow. If the vector is neither replicated nor homed
// on the owning grid row, its pieces travel the cube path from its
// home row to the owner row first (an embedding change the primitive
// performs implicitly, as the paper describes).
func (e *Env) InsertRow(a *Matrix, v *Vector, i int) {
	e.BeginSpan("insert-row")
	defer e.EndSpan()
	if i < 0 || i >= a.Rows {
		panic(fmt.Sprintf("core: InsertRow index %d out of [0,%d)", i, a.Rows))
	}
	if v.Layout != RowAligned || v.N != a.Cols || v.Map != a.CMap {
		panic("core: InsertRow vector incompatible with matrix row embedding")
	}
	ownerRow := a.RMap.CoordOf(i)
	lr := a.RMap.LocalOf(i)
	pid := e.P.ID()
	b := a.CMap.B
	var piece []float64
	moved := false
	switch {
	case v.Replicated || v.Home == ownerRow:
		if e.GridRow() == ownerRow {
			piece = v.L(pid)
		}
	default:
		var src []float64
		if e.GridRow() == v.Home {
			src = v.L(pid)
		}
		piece = e.sendAlong(e.G.RowMask(), e.G.RowRel(v.Home), e.G.RowRel(ownerRow), src)
		moved = true // a non-nil piece here is a pooled receive buffer
	}
	if e.GridRow() == ownerRow {
		copy(a.L(pid)[lr*b:(lr+1)*b], piece)
		e.P.Compute(b)
		if moved {
			e.P.Recycle(piece)
		}
	}
}

// InsertCol stores a col-aligned vector as column j of the matrix,
// symmetric to InsertRow.
func (e *Env) InsertCol(a *Matrix, v *Vector, j int) {
	e.BeginSpan("insert-col")
	defer e.EndSpan()
	if j < 0 || j >= a.Cols {
		panic(fmt.Sprintf("core: InsertCol index %d out of [0,%d)", j, a.Cols))
	}
	if v.Layout != ColAligned || v.N != a.Rows || v.Map != a.RMap {
		panic("core: InsertCol vector incompatible with matrix column embedding")
	}
	ownerCol := a.CMap.CoordOf(j)
	lc := a.CMap.LocalOf(j)
	pid := e.P.ID()
	b := a.CMap.B
	var piece []float64
	moved := false
	switch {
	case v.Replicated || v.Home == ownerCol:
		if e.GridCol() == ownerCol {
			piece = v.L(pid)
		}
	default:
		var src []float64
		if e.GridCol() == v.Home {
			src = v.L(pid)
		}
		piece = e.sendAlong(e.G.ColMask(), e.G.ColRel(v.Home), e.G.ColRel(ownerCol), src)
		moved = true
	}
	if e.GridCol() == ownerCol {
		blk := a.L(pid)
		for r := 0; r < a.RMap.B; r++ {
			blk[r*b+lc] = piece[r]
		}
		e.P.Compute(a.RMap.B)
		if moved {
			e.P.Recycle(piece)
		}
	}
}

// SwapRows exchanges matrix rows i1 and i2, composed from Extract and
// Insert exactly as a user of the primitives would write it.
func (e *Env) SwapRows(a *Matrix, i1, i2 int) {
	e.BeginSpan("swap-rows")
	defer e.EndSpan()
	if i1 == i2 {
		return
	}
	r1 := e.ExtractRow(a, i1, false)
	r2 := e.ExtractRow(a, i2, false)
	e.InsertRow(a, r1, i2)
	e.InsertRow(a, r2, i1)
}

// ElemAt reads element (i, j) and replicates it to every processor
// (a one-word broadcast over the whole cube from the owner).
func (e *Env) ElemAt(a *Matrix, i, j int) float64 {
	e.BeginSpan("elem-at")
	defer e.EndSpan()
	if i < 0 || i >= a.Rows || j < 0 || j >= a.Cols {
		panic(fmt.Sprintf("core: ElemAt (%d,%d) out of %dx%d", i, j, a.Rows, a.Cols))
	}
	owner := a.OwnerOf(i, j)
	var data []float64
	if e.P.ID() == owner {
		lr, lc := a.RMap.LocalOf(i), a.CMap.LocalOf(j)
		data = e.P.GetBuf(1)
		data[0] = a.L(owner)[lr*a.CMap.B+lc]
	}
	got := collective.Bcast(e.P, e.P.FullMask(), e.NextTag(), owner, data)
	out := got[0]
	e.P.Recycle(got)
	e.P.Recycle(data)
	return out
}

// SetElem writes element (i, j) on its owner; every processor calls
// it, only the owner acts (no communication).
func (e *Env) SetElem(a *Matrix, i, j int, val float64) {
	if i < 0 || i >= a.Rows || j < 0 || j >= a.Cols {
		panic(fmt.Sprintf("core: SetElem (%d,%d) out of %dx%d", i, j, a.Rows, a.Cols))
	}
	owner := a.OwnerOf(i, j)
	if e.P.ID() == owner {
		lr, lc := a.RMap.LocalOf(i), a.CMap.LocalOf(j)
		a.L(owner)[lr*a.CMap.B+lc] = val
		e.P.Compute(1)
	}
}

// VecElemAt reads element idx of a vector and replicates it to every
// processor.
func (e *Env) VecElemAt(v *Vector, idx int) float64 {
	e.BeginSpan("vec-elem-at")
	defer e.EndSpan()
	if idx < 0 || idx >= v.N {
		panic(fmt.Sprintf("core: VecElemAt %d out of [0,%d)", idx, v.N))
	}
	c, l := v.Map.CoordOf(idx), v.Map.LocalOf(idx)
	owner := e.vecOwnerProc(v, c)
	var data []float64
	if e.P.ID() == owner {
		data = e.P.GetBuf(1)
		data[0] = v.L(owner)[l]
	}
	got := collective.Bcast(e.P, e.P.FullMask(), e.NextTag(), owner, data)
	out := got[0]
	e.P.Recycle(got)
	e.P.Recycle(data)
	return out
}

// vecOwnerProc returns the canonical owner processor of piece
// coordinate c: the unique holder, or the home/first grid row's copy
// for replicated vectors.
func (e *Env) vecOwnerProc(v *Vector, c int) int {
	switch v.Layout {
	case Linear:
		return linearProcOf(c)
	case RowAligned:
		home := v.Home
		if v.Replicated {
			home = 0
		}
		return v.G.ProcAt(home, c)
	default:
		home := v.Home
		if v.Replicated {
			home = 0
		}
		return v.G.ProcAt(c, home)
	}
}

// OwnerProcOf returns the canonical processor owning global element g
// of the vector (the unique holder, or the home/first copy for
// replicated vectors).
func (v *Vector) OwnerProcOf(g int) int {
	c := v.Map.CoordOf(g)
	switch v.Layout {
	case Linear:
		return linearProcOf(c)
	case RowAligned:
		home := v.Home
		if v.Replicated {
			home = 0
		}
		return v.G.ProcAt(home, c)
	default:
		home := v.Home
		if v.Replicated {
			home = 0
		}
		return v.G.ProcAt(c, home)
	}
}

// SetVecElem writes element idx of a vector on its holder(s); every
// processor calls it (with the same value — typically one produced by
// a broadcast or replicated reduction), only holders act, with no
// communication.
func (e *Env) SetVecElem(v *Vector, idx int, val float64) {
	if idx < 0 || idx >= v.N {
		panic(fmt.Sprintf("core: SetVecElem %d out of [0,%d)", idx, v.N))
	}
	pid := e.P.ID()
	c := v.Map.CoordOf(idx)
	if v.HoldsData(pid) && v.PieceCoord(pid) == c {
		v.L(pid)[v.Map.LocalOf(idx)] = val
		e.P.Compute(1)
	}
}
