package core

import "fmt"

// Elementwise operations on distributed matrices and vectors. These
// are the "local arithmetic" phases between primitives: no
// communication, pure block loops, charged to the cost model at
// flopsPer operations per element touched. Padding slots are never
// visited.

// MapRange applies f in place to every element a[i][j] with
// rlo <= i < rhi and clo <= j < chi. f receives global indices.
func (e *Env) MapRange(a *Matrix, rlo, rhi, clo, chi int, f func(i, j int, v float64) float64, flopsPer int) {
	e.BeginSpan("map-range")
	defer e.EndSpan()
	if rlo < 0 || rhi > a.Rows || clo < 0 || chi > a.Cols {
		panic(fmt.Sprintf("core: MapRange [%d,%d)x[%d,%d) out of %dx%d", rlo, rhi, clo, chi, a.Rows, a.Cols))
	}
	pid := e.P.ID()
	blk := a.L(pid)
	b := a.CMap.B
	myRow, myCol := e.GridRow(), e.GridCol()
	// The restricted global ranges occupy contiguous local windows;
	// walk them with incremental global indices instead of per-element
	// GlobalOf guards.
	lr0, lr1 := a.RMap.LocalRange(myRow, rlo, rhi)
	lc0, lc1 := a.CMap.LocalRange(myCol, clo, chi)
	if lr0 >= lr1 || lc0 >= lc1 {
		e.P.Compute(0)
		return
	}
	gi := a.RMap.GlobalOf(myRow, lr0)
	gj0 := a.CMap.GlobalOf(myCol, lc0)
	rstride, cstride := a.RMap.GlobalStride(), a.CMap.GlobalStride()
	for lr := lr0; lr < lr1; lr++ {
		row := blk[lr*b+lc0 : lr*b+lc1]
		gj := gj0
		for lc := range row {
			row[lc] = f(gi, gj, row[lc])
			gj += cstride
		}
		gi += rstride
	}
	e.P.Compute((lr1 - lr0) * (lc1 - lc0) * flopsPer)
}

// MapMatrix applies f in place to every element.
func (e *Env) MapMatrix(a *Matrix, f func(i, j int, v float64) float64, flopsPer int) {
	e.MapRange(a, 0, a.Rows, 0, a.Cols, f, flopsPer)
}

// ZipMatrix applies dst[i][j] = f(dst[i][j], src[i][j]) in place; the
// matrices must share shape, grid and maps so the blocks align.
func (e *Env) ZipMatrix(dst, src *Matrix, f func(a, b float64) float64, flopsPer int) {
	e.BeginSpan("zip-matrix")
	defer e.EndSpan()
	if !dst.SameShape(src) {
		panic("core: ZipMatrix shape/embedding mismatch")
	}
	pid := e.P.ID()
	db, sb := dst.L(pid), src.L(pid)
	b := dst.CMap.B
	nr := dst.RMap.ValidCount(e.GridRow())
	nc := dst.CMap.ValidCount(e.GridCol())
	for lr := 0; lr < nr; lr++ {
		base := lr * b
		for lc := 0; lc < nc; lc++ {
			i := base + lc
			db[i] = f(db[i], sb[i])
		}
	}
	e.P.Compute(nr * nc * flopsPer)
}

// UpdateOuter applies the restricted rank-1-style update
//
//	a[i][j] = f(a[i][j], cv[i], rv[j])   for i in [rlo,rhi), j in [clo,chi)
//
// where cv is col-aligned and rv row-aligned, both replicated (call
// Distribute first — this is exactly the Distribute+elementwise flow
// of the paper's Gaussian elimination and simplex updates). The
// default f for elimination is a - c*r at 2 flops per element.
func (e *Env) UpdateOuter(a *Matrix, cv, rv *Vector, rlo, rhi, clo, chi int, f func(aij, ci, rj float64) float64, flopsPer int) {
	e.BeginSpan("update-outer")
	defer e.EndSpan()
	blk, cvp, rvp, lr0, lr1, lc0, lc1, b := e.outerWindows(a, cv, rv, rlo, rhi, clo, chi)
	for lr := lr0; lr < lr1; lr++ {
		ci := cvp[lr]
		row := blk[lr*b+lc0 : lr*b+lc1]
		rvw := rvp[lc0:lc1]
		for lc, r := range rvw {
			row[lc] = f(row[lc], ci, r)
		}
	}
	e.P.Compute((lr1 - lr0) * (lc1 - lc0) * flopsPer)
}

// UpdateOuterSub is UpdateOuter fused for the elimination update
// a[i][j] -= cv[i]*rv[j] (2 flops per element): the inner loop is a
// monomorphic multiply-subtract with no closure call, the hot kernel
// of Gaussian elimination, LU and simplex pivoting.
func (e *Env) UpdateOuterSub(a *Matrix, cv, rv *Vector, rlo, rhi, clo, chi int) {
	e.BeginSpan("update-outer-sub")
	defer e.EndSpan()
	blk, cvp, rvp, lr0, lr1, lc0, lc1, b := e.outerWindows(a, cv, rv, rlo, rhi, clo, chi)
	for lr := lr0; lr < lr1; lr++ {
		subOuterRow(blk[lr*b+lc0:lr*b+lc1], cvp[lr], rvp[lc0:lc1])
	}
	e.P.Compute((lr1 - lr0) * (lc1 - lc0) * 2)
}

// UpdateOuterAddMul is UpdateOuter fused for the accumulation
// a[i][j] += cv[i]*rv[j] (2 flops per element): the rank-1 step of
// the broadcast matrix multiply.
func (e *Env) UpdateOuterAddMul(a *Matrix, cv, rv *Vector, rlo, rhi, clo, chi int) {
	e.BeginSpan("update-outer-addmul")
	defer e.EndSpan()
	blk, cvp, rvp, lr0, lr1, lc0, lc1, b := e.outerWindows(a, cv, rv, rlo, rhi, clo, chi)
	for lr := lr0; lr < lr1; lr++ {
		addMulOuterRow(blk[lr*b+lc0:lr*b+lc1], cvp[lr], rvp[lc0:lc1])
	}
	e.P.Compute((lr1 - lr0) * (lc1 - lc0) * 2)
}

// outerWindows validates the UpdateOuter-family arguments and returns
// the local block, vector pieces and the contiguous local windows
// covering [rlo,rhi) x [clo,chi).
func (e *Env) outerWindows(a *Matrix, cv, rv *Vector, rlo, rhi, clo, chi int) (blk, cvp, rvp []float64, lr0, lr1, lc0, lc1, b int) {
	if cv.Layout != ColAligned || cv.N != a.Rows || cv.Map != a.RMap {
		panic("core: UpdateOuter cv incompatible with matrix rows")
	}
	if rv.Layout != RowAligned || rv.N != a.Cols || rv.Map != a.CMap {
		panic("core: UpdateOuter rv incompatible with matrix cols")
	}
	if !cv.Replicated || !rv.Replicated {
		panic("core: UpdateOuter needs replicated vectors (Distribute first)")
	}
	pid := e.P.ID()
	blk = a.L(pid)
	cvp, rvp = cv.L(pid), rv.L(pid)
	b = a.CMap.B
	lr0, lr1 = a.RMap.LocalRange(e.GridRow(), rlo, rhi)
	lc0, lc1 = a.CMap.LocalRange(e.GridCol(), clo, chi)
	return
}

// MapVec applies f in place to every element of v on its holders.
// f receives the global index.
func (e *Env) MapVec(v *Vector, f func(g int, x float64) float64, flopsPer int) {
	pid := e.P.ID()
	if !v.HoldsData(pid) {
		return
	}
	pv := v.L(pid)
	c := v.PieceCoord(pid)
	nv := v.Map.ValidCount(c)
	if nv > 0 {
		g := v.Map.GlobalOf(c, 0)
		stride := v.Map.GlobalStride()
		for l := 0; l < nv; l++ {
			pv[l] = f(g, pv[l])
			g += stride
		}
	}
	e.P.Compute(nv * flopsPer)
}

// zipSlices validates a ZipVec-family pair and returns the local
// pieces with the length of their valid prefix; ok is false when this
// processor holds no data.
func (e *Env) zipSlices(dst, src *Vector) (dp, sp []float64, nv int, ok bool) {
	if !dst.SameShape(src) {
		panic("core: ZipVec shape mismatch")
	}
	pid := e.P.ID()
	if !dst.HoldsData(pid) {
		return nil, nil, 0, false
	}
	if !src.HoldsData(pid) {
		panic("core: ZipVec src not present where dst is (Distribute or realign first)")
	}
	return dst.L(pid), src.L(pid), dst.Map.ValidCount(dst.PieceCoord(pid)), true
}

// ZipVec applies dst[g] = f(dst[g], src[g]) on processors holding
// both; the vectors must share layout, map, and holders.
func (e *Env) ZipVec(dst, src *Vector, f func(a, b float64) float64, flopsPer int) {
	dp, sp, nv, ok := e.zipSlices(dst, src)
	if !ok {
		return
	}
	for l := 0; l < nv; l++ {
		dp[l] = f(dp[l], sp[l])
	}
	e.P.Compute(nv * flopsPer)
}

// CopyMatrix returns an SPMD-local deep copy of a (same embedding).
func (e *Env) CopyMatrix(a *Matrix) *Matrix {
	out := e.TempMatrix(a.Rows, a.Cols, a.RMap.Kind, a.CMap.Kind)
	pid := e.P.ID()
	copy(out.L(pid), a.L(pid))
	e.P.Compute(len(out.L(pid)))
	return out
}

// CopyVec returns an SPMD-local deep copy of v (same embedding).
func (e *Env) CopyVec(v *Vector) *Vector {
	out := e.TempVector(v.N, v.Layout, v.Map.Kind, v.Home, v.Replicated)
	pid := e.P.ID()
	if v.HoldsData(pid) {
		copy(out.L(pid), v.L(pid))
		e.P.Compute(v.Map.B)
	}
	return out
}

// StoreVec copies the values of src into the host-visible vector dst
// (same embedding required). Apps use it to land SPMD results in
// containers the host can read.
func (e *Env) StoreVec(dst, src *Vector) {
	if !dst.SameShape(src) {
		panic("core: StoreVec shape mismatch")
	}
	if dst.Replicated != src.Replicated || dst.Home != src.Home {
		panic("core: StoreVec holder mismatch")
	}
	pid := e.P.ID()
	if src.HoldsData(pid) {
		copy(dst.L(pid), src.L(pid))
	}
}

// StoreMatrix copies the values of src into the host-visible matrix
// dst (same embedding required).
func (e *Env) StoreMatrix(dst, src *Matrix) {
	if !dst.SameShape(src) {
		panic("core: StoreMatrix shape mismatch")
	}
	pid := e.P.ID()
	copy(dst.L(pid), src.L(pid))
}

// ZipVecWith is ZipVec with the global index exposed:
// dst[g] = f(g, dst[g], src[g]) on common holders.
func (e *Env) ZipVecWith(dst, src *Vector, f func(g int, a, b float64) float64, flopsPer int) {
	if !dst.SameShape(src) {
		panic("core: ZipVecWith shape mismatch")
	}
	pid := e.P.ID()
	if !dst.HoldsData(pid) {
		return
	}
	if !src.HoldsData(pid) {
		panic("core: ZipVecWith src not present where dst is")
	}
	dp, sp := dst.L(pid), src.L(pid)
	c := dst.PieceCoord(pid)
	nv := dst.Map.ValidCount(c)
	if nv > 0 {
		g := dst.Map.GlobalOf(c, 0)
		stride := dst.Map.GlobalStride()
		for l := 0; l < nv; l++ {
			dp[l] = f(g, dp[l], sp[l])
			g += stride
		}
	}
	e.P.Compute(nv * flopsPer)
}
