package core

// Fused arithmetic kernels for the primitives' local phases.
//
// The seed implementation dispatched on the reduction operator once
// per element (Op.fold's switch) and called user closures per element
// for the fixed-form updates (AXPY, rank-1 eliminate). These kernels
// are selected once per call and run monomorphic tight loops over
// contiguous slices, which the valid-prefix property of embed.Map1D
// (padding is always a suffix, restricted index ranges are always
// contiguous local windows) makes possible without per-element bounds
// or padding tests.
//
// Every kernel applies exactly the same operations in exactly the same
// order as the loop it replaces, so distributed results — including
// the floating-point rounding of reduction chains — are bit-identical
// to the seed's.

// foldKernel returns the elementwise fold dst[i] = op(dst[i], src[i])
// as a monomorphic loop; reductions select it once per call.
func foldKernel(op Op) func(dst, src []float64) {
	switch op {
	case OpSum:
		return sumInto
	case OpMax:
		return maxInto
	case OpMin:
		return minInto
	default:
		panic("core: unknown Op")
	}
}

func sumInto(dst, src []float64) {
	for i, v := range src {
		dst[i] += v
	}
}

func maxInto(dst, src []float64) {
	for i, v := range src {
		if v > dst[i] {
			dst[i] = v
		}
	}
}

func minInto(dst, src []float64) {
	for i, v := range src {
		if v < dst[i] {
			dst[i] = v
		}
	}
}

// fillIdentity sets every element of dst to op's identity.
func fillIdentity(dst []float64, op Op) {
	id := op.identity()
	for i := range dst {
		dst[i] = id
	}
}

// foldSlice folds xs into acc under op, left to right — the scalar
// reduction of one local row or piece.
func foldSlice(op Op, acc float64, xs []float64) float64 {
	switch op {
	case OpSum:
		for _, v := range xs {
			acc += v
		}
	case OpMax:
		for _, v := range xs {
			if v > acc {
				acc = v
			}
		}
	case OpMin:
		for _, v := range xs {
			if v < acc {
				acc = v
			}
		}
	default:
		panic("core: unknown Op")
	}
	return acc
}

// scanSlice replaces xs with its inclusive left-to-right prefix
// combination under op and returns the total (the last prefix).
func scanSlice(op Op, xs []float64) float64 {
	acc := op.identity()
	switch op {
	case OpSum:
		for i, v := range xs {
			acc += v
			xs[i] = acc
		}
	case OpMax:
		for i, v := range xs {
			if v > acc {
				acc = v
			}
			xs[i] = acc
		}
	case OpMin:
		for i, v := range xs {
			if v < acc {
				acc = v
			}
			xs[i] = acc
		}
	default:
		panic("core: unknown Op")
	}
	return acc
}

// foldScalarInto applies dst[i] = op(s, dst[i]) elementwise — the
// prefix fixup of ScanVec. The asymmetric comparison mirrors Op.fold's
// "keep a unless b beats it" exactly.
func foldScalarInto(op Op, dst []float64, s float64) {
	switch op {
	case OpSum:
		for i := range dst {
			dst[i] = s + dst[i]
		}
	case OpMax:
		for i := range dst {
			if !(dst[i] > s) {
				dst[i] = s
			}
		}
	case OpMin:
		for i := range dst {
			if !(dst[i] < s) {
				dst[i] = s
			}
		}
	default:
		panic("core: unknown Op")
	}
}

// axpyInto applies dst[i] += alpha*src[i] — the AXPY of iterative
// solvers.
func axpyInto(dst, src []float64, alpha float64) {
	for i, v := range src {
		dst[i] += alpha * v
	}
}

// scaleAddInto applies dst[i] = beta*dst[i] + src[i] — the p-update
// of conjugate gradient.
func scaleAddInto(dst, src []float64, beta float64) {
	for i, v := range src {
		dst[i] = beta*dst[i] + v
	}
}

// dotSlices returns sum_i a[i]*b[i], accumulated left to right.
func dotSlices(a, b []float64) float64 {
	acc := 0.0
	for i, v := range a {
		acc += v * b[i]
	}
	return acc
}

// subOuterRow applies row[i] -= ci*rv[i] — one local row of the
// rank-1 elimination update.
func subOuterRow(row []float64, ci float64, rv []float64) {
	for i, r := range rv {
		row[i] = row[i] - ci*r
	}
}

// addMulOuterRow applies row[i] += ci*rv[i] — one local row of the
// rank-1 accumulation of matrix multiply.
func addMulOuterRow(row []float64, ci float64, rv []float64) {
	for i, r := range rv {
		row[i] = row[i] + ci*r
	}
}
