package core

import (
	"math/rand"
	"runtime"
	"testing"

	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
)

// The fused UpdateOuterSub/UpdateOuterAddMul kernels must be
// element-for-element identical to the generic closure form they
// replaced in the apps: same windows, same arithmetic, same flop
// charges (checked via identical simulated Elapsed).

func TestFusedOuterUpdatesMatchGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, g := range testGrids(t) {
		for _, kind := range []embed.MapKind{embed.Block, embed.Cyclic} {
			for _, win := range [][4]int{{0, 7, 0, 6}, {1, 6, 2, 5}, {3, 3, 0, 6}, {0, 7, 4, 4}} {
				dm := randDense(rng, 7, 6)
				cvals := make([]float64, 7)
				rvals := make([]float64, 6)
				for i := range cvals {
					cvals[i] = rng.NormFloat64()
				}
				for i := range rvals {
					rvals[i] = rng.NormFloat64()
				}
				rlo, rhi, clo, chi := win[0], win[1], win[2], win[3]

				run := func(body func(e *Env, a *Matrix, cv, rv *Vector)) (*Matrix, costmodel.Time) {
					a, _ := FromDense(g, dm, kind, kind)
					cv, _ := VectorFromSlice(g, cvals, ColAligned, kind, 0, true)
					rv, _ := VectorFromSlice(g, rvals, RowAligned, kind, 0, true)
					m := hypercube.MustNew(g.D, costmodel.CM2())
					el, err := m.Run(func(p *hypercube.Proc) {
						body(NewEnv(p, g), a, cv, rv)
					})
					if err != nil {
						t.Fatal(err)
					}
					return a, el
				}

				aSub, elSub := run(func(e *Env, a *Matrix, cv, rv *Vector) {
					e.UpdateOuterSub(a, cv, rv, rlo, rhi, clo, chi)
				})
				aGen, elGen := run(func(e *Env, a *Matrix, cv, rv *Vector) {
					e.UpdateOuter(a, cv, rv, rlo, rhi, clo, chi,
						func(aij, ci, rj float64) float64 { return aij - ci*rj }, 2)
				})
				matEqual(t, aSub.ToDense(), aGen.ToDense(), 0, "UpdateOuterSub vs generic")
				if elSub != elGen {
					t.Fatalf("UpdateOuterSub elapsed %v != generic %v", elSub, elGen)
				}

				aAdd, elAdd := run(func(e *Env, a *Matrix, cv, rv *Vector) {
					e.UpdateOuterAddMul(a, cv, rv, rlo, rhi, clo, chi)
				})
				aGen2, elGen2 := run(func(e *Env, a *Matrix, cv, rv *Vector) {
					e.UpdateOuter(a, cv, rv, rlo, rhi, clo, chi,
						func(aij, ci, rj float64) float64 { return aij + ci*rj }, 2)
				})
				matEqual(t, aAdd.ToDense(), aGen2.ToDense(), 0, "UpdateOuterAddMul vs generic")
				if elAdd != elGen2 {
					t.Fatalf("UpdateOuterAddMul elapsed %v != generic %v", elAdd, elGen2)
				}
			}
		}
	}
}

func TestFoldKernelsMatchOpFold(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 33)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	for _, op := range []Op{OpSum, OpMax, OpMin} {
		// foldSlice against the Op's own fold, left to right.
		want := op.identity()
		for _, v := range xs {
			want = op.fold(want, v)
		}
		if got := foldSlice(op, op.identity(), xs); got != want {
			t.Fatalf("%v: foldSlice = %v, want %v", op, got, want)
		}
		// foldKernel elementwise against fold.
		dst := make([]float64, len(xs))
		fillIdentity(dst, op)
		foldKernel(op)(dst, xs)
		for i, v := range xs {
			if w := op.fold(op.identity(), v); dst[i] != w {
				t.Fatalf("%v: foldKernel[%d] = %v, want %v", op, i, dst[i], w)
			}
		}
		// scanSlice against a serial inclusive prefix.
		ys := append([]float64(nil), xs...)
		total := scanSlice(op, ys)
		acc := op.identity()
		for i, v := range xs {
			acc = op.fold(acc, v)
			if ys[i] != acc {
				t.Fatalf("%v: scanSlice[%d] = %v, want %v", op, i, ys[i], acc)
			}
		}
		if total != acc {
			t.Fatalf("%v: scanSlice total = %v, want %v", op, total, acc)
		}
		// foldScalarInto against fold(s, x) with the scalar on the left,
		// matching the prefix-fixup orientation in ScanVec.
		zs := append([]float64(nil), xs...)
		s := rng.NormFloat64()
		foldScalarInto(op, zs, s)
		for i, v := range xs {
			if w := op.fold(s, v); zs[i] != w {
				t.Fatalf("%v: foldScalarInto[%d] = %v, want %v", op, i, zs[i], w)
			}
		}
	}
}

func TestReduceRowsSteadyStateAllocs(t *testing.T) {
	// After warmup, a ReduceRows run on a persistent machine must stay
	// within a small per-processor allocation budget: the result vector
	// header and storage plus the per-run Env. The seed code also
	// allocated message payloads, scratch pieces and 2^d-entry piece
	// tables per temp on every call, an order of magnitude more.
	g, err := embed.NewGrid(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	dm := randDense(rng, 64, 64)
	a, err := FromDense(g, dm, embed.Block, embed.Block)
	if err != nil {
		t.Fatal(err)
	}
	m := hypercube.MustNew(g.D, costmodel.CM2())
	defer m.Close()
	body := func(p *hypercube.Proc) {
		e := NewEnv(p, g)
		e.ReduceRows(a, OpSum, true)
	}
	run := func() {
		if _, err := m.Run(body); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		run()
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const runs = 10
	for i := 0; i < runs; i++ {
		run()
	}
	runtime.ReadMemStats(&after)
	per := float64(after.Mallocs-before.Mallocs) / runs
	perProc := per / float64(g.P())
	if perProc > 10 {
		t.Fatalf("ReduceRows steady state allocates %.1f objects/proc/run, want <= 10", perProc)
	}
}
