package core

import (
	"math"
	"testing"

	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
)

// newCM2Machine builds a machine matching grid g with a short deadlock
// timeout for error-path tests.
func newCM2Machine(t *testing.T, g embed.Grid) *hypercube.Machine {
	t.Helper()
	m := hypercube.MustNew(g.D, costmodel.CM2())
	m.SetRecvTimeout(2e9)
	return m
}

func TestConstructorErrorPaths(t *testing.T) {
	g, _ := embed.NewGrid(1, 1)
	if _, err := NewMatrix(g, -1, 3, embed.Block, embed.Block); err == nil {
		t.Fatal("negative rows accepted")
	}
	if _, err := NewVector(g, -1, Linear, embed.Block, 0, false); err == nil {
		t.Fatal("negative length accepted")
	}
	if _, err := NewVector(g, 4, RowAligned, embed.Block, 5, false); err == nil {
		t.Fatal("bad home row accepted")
	}
	if _, err := NewVector(g, 4, ColAligned, embed.Block, -1, false); err == nil {
		t.Fatal("bad home column accepted")
	}
	if _, err := NewVector(g, 4, Layout(9), embed.Block, 0, false); err == nil {
		t.Fatal("unknown layout accepted")
	}
	for _, f := range []func(){
		func() { MustNewMatrix(g, -1, 1, embed.Block, embed.Block) },
		func() { MustNewVector(g, -1, Linear, embed.Block, 0, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("Must constructor did not panic")
				}
			}()
			f()
		}()
	}
}

func TestMatrixAccessors(t *testing.T) {
	g, _ := embed.NewGrid(1, 2)
	a := MustNewMatrix(g, 6, 9, embed.Block, embed.Cyclic)
	if a.IsLocal() {
		t.Fatal("host matrix reports local")
	}
	if a.LocalRows() != 3 || a.LocalCols() != 3 {
		t.Fatalf("local dims %dx%d", a.LocalRows(), a.LocalCols())
	}
	if !a.SameShape(a) {
		t.Fatal("SameShape reflexivity")
	}
	b := MustNewMatrix(g, 6, 9, embed.Block, embed.Block)
	if a.SameShape(b) {
		t.Fatal("different maps report same shape")
	}
	v := MustNewVector(g, 5, Linear, embed.Block, 0, false)
	if v.IsLocal() {
		t.Fatal("host vector reports local")
	}
}

func TestOwnerProcOfConsistentWithHolders(t *testing.T) {
	for _, g := range testGrids(t) {
		for _, layout := range []Layout{Linear, RowAligned, ColAligned} {
			for _, repl := range []bool{false, true} {
				if layout == Linear && repl {
					continue
				}
				v := MustNewVector(g, 9, layout, embed.Block, 0, repl)
				for e := 0; e < v.N; e++ {
					owner := v.OwnerProcOf(e)
					if !v.HoldsData(owner) {
						t.Fatalf("%v repl=%v: owner %d of element %d does not hold data", layout, repl, owner, e)
					}
				}
			}
		}
	}
}

func TestSetVecElemAllLayouts(t *testing.T) {
	for _, g := range testGrids(t) {
		for _, layout := range []Layout{Linear, RowAligned, ColAligned} {
			for _, repl := range []bool{false, true} {
				if layout == Linear && repl {
					continue
				}
				v := MustNewVector(g, 7, layout, embed.Block, 0, repl)
				spmd(t, g, func(e *Env) {
					e.SetVecElem(v, 3, 42)
					e.SetVecElem(v, 6, -1)
				})
				got := v.ToSlice()
				want := []float64{0, 0, 0, 42, 0, 0, -1}
				vecEqual(t, got, want, 0, "SetVecElem")
				if err := v.CheckReplicas(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestZipVecWithIndices(t *testing.T) {
	g, _ := embed.NewGrid(1, 2)
	x, _ := VectorFromSlice(g, []float64{1, 2, 3, 4, 5}, RowAligned, embed.Block, 0, true)
	y, _ := VectorFromSlice(g, []float64{10, 20, 30, 40, 50}, RowAligned, embed.Block, 0, true)
	spmd(t, g, func(e *Env) {
		e.ZipVecWith(x, y, func(gi int, a, b float64) float64 {
			if gi%2 == 0 {
				return a + b
			}
			return a - b
		}, 1)
	})
	vecEqual(t, x.ToSlice(), []float64{11, -18, 33, -36, 55}, 0, "ZipVecWith")
}

func TestAllReducePieceHelpers(t *testing.T) {
	g, _ := embed.NewGrid(2, 1)
	sums := make([][]float64, g.P())
	colSums := make([][]float64, g.P())
	spmd(t, g, func(e *Env) {
		// Each proc contributes its grid row index; summing down the
		// rows gives 0+1+2+3 = 6 everywhere.
		piece := []float64{float64(e.GridRow())}
		sums[e.P.ID()] = e.AllReduceRowsPiece(piece, OpSum)
		cp := []float64{float64(e.GridCol())}
		colSums[e.P.ID()] = e.AllReduceColsPiece(cp, OpSum)
	})
	for pid := 0; pid < g.P(); pid++ {
		if sums[pid][0] != 6 {
			t.Fatalf("proc %d row-piece sum %v, want 6", pid, sums[pid][0])
		}
		if colSums[pid][0] != 1 { // grid cols 0+1 = 1
			t.Fatalf("proc %d col-piece sum %v, want 1", pid, colSums[pid][0])
		}
	}
}

func TestStoreVecMismatchPanics(t *testing.T) {
	g, _ := embed.NewGrid(1, 1)
	a := MustNewVector(g, 4, RowAligned, embed.Block, 0, true)
	b := MustNewVector(g, 4, RowAligned, embed.Block, 0, false)
	c := MustNewVector(g, 5, RowAligned, embed.Block, 0, true)
	m := newCM2Machine(t, g)
	if _, err := m.Run(func(p *hypercube.Proc) {
		e := NewEnv(p, g)
		e.StoreVec(a, b)
	}); err == nil {
		t.Fatal("holder mismatch accepted")
	}
	if _, err := m.Run(func(p *hypercube.Proc) {
		e := NewEnv(p, g)
		e.StoreVec(a, c)
	}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestDistributeRejectsLinear(t *testing.T) {
	g, _ := embed.NewGrid(1, 1)
	v := MustNewVector(g, 4, Linear, embed.Block, 0, false)
	m := newCM2Machine(t, g)
	if _, err := m.Run(func(p *hypercube.Proc) {
		NewEnv(p, g).Distribute(v)
	}); err == nil {
		t.Fatal("Distribute accepted a linear vector")
	}
}

func TestDistributeOfReplicatedIsCopy(t *testing.T) {
	g, _ := embed.NewGrid(2, 1)
	x := []float64{1, 2, 3}
	v, _ := VectorFromSlice(g, x, RowAligned, embed.Block, 0, true)
	out, _ := NewVector(g, 3, RowAligned, embed.Block, 0, true)
	spmd(t, g, func(e *Env) {
		w := e.Distribute(v)
		e.MapVec(w, func(_ int, val float64) float64 { return val * 2 }, 1)
		e.StoreVec(out, w)
	})
	vecEqual(t, v.ToSlice(), x, 0, "original unchanged")
	vecEqual(t, out.ToSlice(), []float64{2, 4, 6}, 0, "copy scaled")
}

func TestNormInfVecNegativeValues(t *testing.T) {
	g, _ := embed.NewGrid(1, 1)
	v, _ := VectorFromSlice(g, []float64{-9, 2, 3}, Linear, embed.Block, 0, false)
	var got float64
	spmd(t, g, func(e *Env) {
		n := e.NormInfVec(v)
		if e.P.ID() == 0 {
			got = n
		}
	})
	if math.Abs(got-9) > 0 {
		t.Fatalf("NormInf = %v, want 9", got)
	}
}
