package core

import (
	"fmt"
	"math"

	"vmprim/internal/collective"
)

// Op names the plain reduction operators of the Reduce primitive.
type Op int

const (
	// OpSum adds.
	OpSum Op = iota
	// OpMax keeps the maximum.
	OpMax
	// OpMin keeps the minimum.
	OpMin
)

// String returns the operator name.
func (op Op) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// identity returns the operator's identity element.
func (op Op) identity() float64 {
	switch op {
	case OpSum:
		return 0
	case OpMax:
		return math.Inf(-1)
	case OpMin:
		return math.Inf(1)
	default:
		panic("core: unknown Op")
	}
}

// fold combines two scalars under the operator.
func (op Op) fold(a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	default:
		panic("core: unknown Op")
	}
}

// combiner returns the elementwise collective combiner.
func (op Op) combiner() collective.Combiner {
	switch op {
	case OpSum:
		return collective.Sum
	case OpMax:
		return collective.Max
	case OpMin:
		return collective.Min
	default:
		panic("core: unknown Op")
	}
}

// LocOp names the value-with-location reduction operators used for
// pivot selection (Gaussian elimination) and the entering-variable and
// ratio tests (simplex). Ties resolve to the smallest index.
type LocOp int

const (
	// LocMax finds the maximum value and its index.
	LocMax LocOp = iota
	// LocMin finds the minimum value and its index.
	LocMin
	// LocMaxAbs finds the maximum magnitude and its index; the value
	// reported is the magnitude (fetch the signed element separately
	// if needed).
	LocMaxAbs
)

// String returns the operator name.
func (op LocOp) String() string {
	switch op {
	case LocMax:
		return "maxloc"
	case LocMin:
		return "minloc"
	case LocMaxAbs:
		return "maxabsloc"
	default:
		return fmt.Sprintf("LocOp(%d)", int(op))
	}
}

// value applies the operator's value transform.
func (op LocOp) value(v float64) float64 {
	if op == LocMaxAbs {
		return math.Abs(v)
	}
	return v
}

// identity returns the identity pair (value, index sentinel). The
// index sentinel exceeds any real index, so a real pair with equal
// value always wins a tie against the identity.
func (op LocOp) identity() (float64, float64) {
	if op == LocMin {
		return math.Inf(1), locNone
	}
	return math.Inf(-1), locNone
}

// locNone is the index sentinel meaning "no element".
const locNone = float64(1 << 60)

// combiner returns the pair combiner.
func (op LocOp) combiner() collective.Combiner {
	if op == LocMin {
		return collective.MinLoc
	}
	return collective.MaxLoc
}

// better reports whether pair (v2, i2) beats (v1, i1) under op.
func (op LocOp) better(v1, i1, v2, i2 float64) bool {
	if op == LocMin {
		return v2 < v1 || (v2 == v1 && i2 < i1)
	}
	return v2 > v1 || (v2 == v1 && i2 < i1)
}
