// Package core implements the four vector-matrix primitives of
// Agrawal, Blelloch, Krawitz and Phillips (SPAA 1989) on the simulated
// hypercube multiprocessor: Extract, Insert, Distribute and Reduce,
// together with the distributed matrix and vector types they operate
// on, elementwise operations, and the embedding-change operations
// (vector realignment and matrix transposition) that the paper notes a
// primitive may imply.
//
// # Data types and embeddings
//
// A Matrix is dense, R x C, embedded on the processor grid of an
// embed.Grid: the grid's 2^dr x 2^dc processors each hold a
// load-balanced local block of ceil(R/2^dr) x ceil(C/2^dc) elements,
// dealt to grid rows and columns by a consecutive (block) or cyclic
// map. A Vector is either row-aligned (length C, distributed over the
// grid's column axis, living on one grid row or replicated on all),
// col-aligned (length R, over the row axis), or linear (load-balanced
// over all 2^d processors) — the three vector embeddings whose
// interconversion is itself part of the primitive set.
//
// # Programming model
//
// All distributed operations are SPMD: every processor of the machine
// calls the same method in the same order from inside a Machine.Run
// body, through an Env that wraps its Proc handle and manages protocol
// tags. Distributed containers (Matrix, Vector) may be created by host
// code before a run and filled from dense data, or created inside a
// run, in which case each processor lazily materializes only its own
// block. All inter-processor data motion happens through the
// collectives of internal/collective over cube-edge channels, and
// every operation charges the cost model for its communication and
// arithmetic, so Machine.Elapsed after a run is the simulated time of
// the whole distributed computation.
package core

import (
	"fmt"

	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
)

// Env is one processor's view of a distributed computation: its Proc
// handle, the processor grid, and a deterministic protocol-tag
// sequence. Every processor constructs its own Env at the top of the
// SPMD body; because the body is the same program on every processor,
// the tag sequences stay synchronized.
type Env struct {
	P *hypercube.Proc
	G embed.Grid

	tag int
}

// NewEnv returns the environment for proc p on grid g. The grid must
// exactly cover p's machine.
func NewEnv(p *hypercube.Proc, g embed.Grid) *Env {
	if g.D != p.Dim() {
		panic(fmt.Sprintf("core: grid dimension %d does not match machine dimension %d", g.D, p.Dim()))
	}
	return &Env{P: p, G: g}
}

// NextTag returns a fresh protocol tag. Primitives call it once per
// collective phase; SPMD symmetry keeps all processors' sequences
// identical.
func (e *Env) NextTag() int {
	e.tag++
	return e.tag
}

// NextTag2 reserves two consecutive tags — the shape round-trip
// protocols like router.Request and scatter/all-gather broadcasts need
// — and returns the first.
func (e *Env) NextTag2() int {
	t := e.NextTag()
	e.NextTag()
	return t
}

// BeginSpan opens a named profiling span (see hypercube.Proc.BeginSpan).
// Spans nest; close each with EndSpan. Like every Env operation they
// are SPMD: all processors must open and close the same spans in the
// same order. App drivers use them to mark algorithm phases (pivot,
// eliminate, pricing, ...); every primitive below opens one
// automatically.
func (e *Env) BeginSpan(name string) { e.P.BeginSpan(name) }

// EndSpan closes the innermost open span.
func (e *Env) EndSpan() { e.P.EndSpan() }

// Profiling reports whether spans are being recorded; guard SpanNote
// string building with it.
func (e *Env) Profiling() bool { return e.P.Profiling() }

// GridRow returns this processor's grid row.
func (e *Env) GridRow() int { return e.G.RowOf(e.P.ID()) }

// GridCol returns this processor's grid column.
func (e *Env) GridCol() int { return e.G.ColOf(e.P.ID()) }

// Axis names the two matrix axes for primitives that take one.
type Axis int

const (
	// Rows selects the row axis: reducing over Rows collapses the row
	// index and yields a row-aligned vector of length Cols.
	Rows Axis = iota
	// Cols selects the column axis.
	Cols
)

// String returns the axis name.
func (a Axis) String() string {
	if a == Rows {
		return "rows"
	}
	return "cols"
}

// Matrix is a dense matrix distributed over the processor grid. Local
// blocks are row-major with RMap.B local rows and CMap.B local
// columns; slots beyond the logical extent (padding) hold zero and are
// skipped by every operation.
type Matrix struct {
	Rows, Cols int
	G          embed.Grid
	RMap       embed.Map1D // rows over the 2^Dr grid rows
	CMap       embed.Map1D // cols over the 2^Dc grid cols

	// Host-created matrices store every processor's block (blocks);
	// matrices created inside an SPMD body are per-processor handles
	// that store only the creator's block (local), so temporaries cost
	// O(m/p) per processor instead of O(p) slice headers.
	blocks  [][]float64 // indexed by processor address; nil in local mode
	local   []float64
	isLocal bool
}

// NewMatrix returns a zero matrix of the given shape distributed on
// grid g with the given row and column maps.
func NewMatrix(g embed.Grid, rows, cols int, rkind, ckind embed.MapKind) (*Matrix, error) {
	m, err := newMatrixShape(g, rows, cols, rkind, ckind)
	if err != nil {
		return nil, err
	}
	m.blocks = make([][]float64, g.P())
	return m, nil
}

// newMatrixShape validates and builds the matrix header without any
// backing storage: hosts attach the all-processor block table,
// SPMD-local temporaries stay storage-free until L materializes the
// caller's own block.
func newMatrixShape(g embed.Grid, rows, cols int, rkind, ckind embed.MapKind) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("core: invalid shape %dx%d", rows, cols)
	}
	rmap, err := embed.NewMap1D(rows, g.Dr, rkind)
	if err != nil {
		return nil, err
	}
	cmap, err := embed.NewMap1D(cols, g.Dc, ckind)
	if err != nil {
		return nil, err
	}
	return &Matrix{Rows: rows, Cols: cols, G: g, RMap: rmap, CMap: cmap}, nil
}

// MustNewMatrix is NewMatrix for static arguments; panics on error.
func MustNewMatrix(g embed.Grid, rows, cols int, rkind, ckind embed.MapKind) *Matrix {
	m, err := NewMatrix(g, rows, cols, rkind, ckind)
	if err != nil {
		panic(err)
	}
	return m
}

// L returns processor pid's local block, materializing it on first
// use. Only pid's own goroutine (or host code outside a run) may call
// it for a given pid. For SPMD-local temporaries pid is ignored: the
// handle belongs to exactly one processor.
func (a *Matrix) L(pid int) []float64 {
	if a.isLocal {
		if a.local == nil {
			a.local = make([]float64, a.RMap.B*a.CMap.B)
		}
		return a.local
	}
	if a.blocks[pid] == nil {
		a.blocks[pid] = make([]float64, a.RMap.B*a.CMap.B)
	}
	return a.blocks[pid]
}

// IsLocal reports whether this is an SPMD-local temporary handle
// (host-side accessors like ToDense refuse to read those).
func (a *Matrix) IsLocal() bool { return a.isLocal }

// LocalRows returns the local block's row count.
func (a *Matrix) LocalRows() int { return a.RMap.B }

// LocalCols returns the local block's column count.
func (a *Matrix) LocalCols() int { return a.CMap.B }

// OwnerOf returns the processor address owning element (i, j).
func (a *Matrix) OwnerOf(i, j int) int {
	return a.G.ProcAt(a.RMap.CoordOf(i), a.CMap.CoordOf(j))
}

// SameShape reports whether b has identical shape, grid and maps.
func (a *Matrix) SameShape(b *Matrix) bool {
	return a.Rows == b.Rows && a.Cols == b.Cols && a.G == b.G &&
		a.RMap == b.RMap && a.CMap == b.CMap
}

// Layout names the three vector embeddings.
type Layout int

const (
	// Linear is the stand-alone load-balanced embedding: the vector is
	// dealt over all 2^d processors; the piece with coordinate c lives
	// on the processor whose address is the Gray code of c, so
	// consecutive pieces are cube neighbors.
	Linear Layout = iota
	// RowAligned vectors have the length of a matrix row (Cols) and
	// are distributed over the grid's column axis, on one grid row
	// (Home) or replicated on all grid rows.
	RowAligned
	// ColAligned vectors have the length of a matrix column (Rows) and
	// are distributed over the grid's row axis.
	ColAligned
)

// String returns the layout name.
func (l Layout) String() string {
	switch l {
	case Linear:
		return "linear"
	case RowAligned:
		return "row-aligned"
	case ColAligned:
		return "col-aligned"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Vector is a dense vector distributed on the processor grid in one of
// the three embeddings.
type Vector struct {
	N      int
	G      embed.Grid
	Layout Layout
	Map    embed.Map1D
	// Replicated reports, for aligned layouts, whether every grid row
	// (column) holds a copy. Linear vectors are never replicated.
	Replicated bool
	// Home is the grid row (for RowAligned) or grid column (for
	// ColAligned) holding the data when not replicated.
	Home int

	// Storage follows the Matrix convention: host-created vectors hold
	// all pieces; SPMD-created temporaries hold only the creator's.
	vals    [][]float64 // indexed by processor address; nil in local mode
	local   []float64
	isLocal bool
}

// NewVector returns a zero vector of length n in the given layout.
// For aligned layouts home names the owning grid row/column; pass
// replicated=true for a copy on every grid row/column.
func NewVector(g embed.Grid, n int, layout Layout, kind embed.MapKind, home int, replicated bool) (*Vector, error) {
	v, err := newVectorShape(g, n, layout, kind, home, replicated)
	if err != nil {
		return nil, err
	}
	v.vals = make([][]float64, g.P())
	return v, nil
}

// newVectorShape validates and builds the vector header without any
// backing storage (see newMatrixShape).
func newVectorShape(g embed.Grid, n int, layout Layout, kind embed.MapKind, home int, replicated bool) (*Vector, error) {
	if n < 0 {
		return nil, fmt.Errorf("core: invalid vector length %d", n)
	}
	var k int
	switch layout {
	case Linear:
		k = g.D
		home, replicated = 0, false
	case RowAligned:
		k = g.Dc
		if home < 0 || home >= g.PRows() {
			return nil, fmt.Errorf("core: home grid row %d out of [0,%d)", home, g.PRows())
		}
	case ColAligned:
		k = g.Dr
		if home < 0 || home >= g.PCols() {
			return nil, fmt.Errorf("core: home grid column %d out of [0,%d)", home, g.PCols())
		}
	default:
		return nil, fmt.Errorf("core: unknown layout %v", layout)
	}
	m, err := embed.NewMap1D(n, k, kind)
	if err != nil {
		return nil, err
	}
	return &Vector{
		N: n, G: g, Layout: layout, Map: m, Replicated: replicated, Home: home,
	}, nil
}

// MustNewVector is NewVector for static arguments; panics on error.
func MustNewVector(g embed.Grid, n int, layout Layout, kind embed.MapKind, home int, replicated bool) *Vector {
	v, err := NewVector(g, n, layout, kind, home, replicated)
	if err != nil {
		panic(err)
	}
	return v
}

// L returns processor pid's local piece, materializing it on first
// use. As for Matrix.L, only pid's goroutine may call it for pid, and
// pid is ignored for SPMD-local temporaries.
func (v *Vector) L(pid int) []float64 {
	if v.isLocal {
		if v.local == nil {
			v.local = make([]float64, v.Map.B)
		}
		return v.local
	}
	if v.vals[pid] == nil {
		v.vals[pid] = make([]float64, v.Map.B)
	}
	return v.vals[pid]
}

// IsLocal reports whether this is an SPMD-local temporary handle.
func (v *Vector) IsLocal() bool { return v.isLocal }

// PieceCoord returns the Map coordinate of the piece stored at
// processor pid: the grid column for RowAligned vectors, the grid row
// for ColAligned, and the Gray decoding of the address for Linear.
func (v *Vector) PieceCoord(pid int) int {
	switch v.Layout {
	case RowAligned:
		return v.G.ColOf(pid)
	case ColAligned:
		return v.G.RowOf(pid)
	default:
		return linearCoordOf(pid)
	}
}

// HoldsData reports whether processor pid holds live data of v (for
// non-replicated aligned vectors, only the home grid row/column does).
func (v *Vector) HoldsData(pid int) bool {
	if v.Replicated || v.Layout == Linear {
		return true
	}
	if v.Layout == RowAligned {
		return v.G.RowOf(pid) == v.Home
	}
	return v.G.ColOf(pid) == v.Home
}

// SameShape reports whether w has identical length, layout and map.
func (v *Vector) SameShape(w *Vector) bool {
	return v.N == w.N && v.G == w.G && v.Layout == w.Layout && v.Map == w.Map
}

// TempMatrix creates an SPMD-local zero matrix: a per-processor handle
// holding only this processor's block. Every processor of the machine
// must create the temporary with identical arguments.
func (e *Env) TempMatrix(rows, cols int, rkind, ckind embed.MapKind) *Matrix {
	m, err := newMatrixShape(e.G, rows, cols, rkind, ckind)
	if err != nil {
		panic(err)
	}
	m.isLocal = true
	return m
}

// TempVector creates an SPMD-local zero vector (see TempMatrix).
func (e *Env) TempVector(n int, layout Layout, kind embed.MapKind, home int, replicated bool) *Vector {
	v, err := newVectorShape(e.G, n, layout, kind, home, replicated)
	if err != nil {
		panic(err)
	}
	v.isLocal = true
	return v
}
