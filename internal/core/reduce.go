package core

import (
	"fmt"

	"vmprim/internal/collective"
)

// This file implements the fourth primitive, Reduce, in its vector-
// producing form (collapse one matrix axis), its scalar forms over a
// single row or column with location (the pivot searches of Gaussian
// elimination and simplex), and the vector loc-reduction used by the
// simplex ratio test.

// ReduceRows collapses the row axis: out[j] = op over i of a[i][j],
// returned as a row-aligned vector. With replicate=true every grid row
// receives the result (an all-reduce over the row dimensions, which
// for long pieces uses recursive halving + doubling — the form that is
// work-optimal for m > p lg p); otherwise the result lands on grid row
// 0. The local pass costs one operation per local element, the
// communication lg(p_r) messages of the m/p-sized local piece.
func (e *Env) ReduceRows(a *Matrix, op Op, replicate bool) *Vector {
	v := e.TempVector(a.Cols, RowAligned, a.CMap.Kind, 0, replicate)
	pid := e.P.ID()
	blk := a.L(pid)
	b := a.CMap.B
	piece := make([]float64, b)
	for lc := 0; lc < b; lc++ {
		piece[lc] = op.identity()
	}
	myRow := e.GridRow()
	count := 0
	for lr := 0; lr < a.RMap.B; lr++ {
		if a.RMap.GlobalOf(myRow, lr) < 0 {
			continue // padding row
		}
		row := blk[lr*b : (lr+1)*b]
		for lc, val := range row {
			piece[lc] = op.fold(piece[lc], val)
		}
		count += b
	}
	e.P.Compute(count)
	e.finishReduce(v, piece, e.G.RowMask(), replicate, op)
	return v
}

// ReduceCols collapses the column axis: out[i] = op over j of a[i][j],
// returned as a col-aligned vector (on grid column 0 unless
// replicated).
func (e *Env) ReduceCols(a *Matrix, op Op, replicate bool) *Vector {
	v := e.TempVector(a.Rows, ColAligned, a.RMap.Kind, 0, replicate)
	pid := e.P.ID()
	blk := a.L(pid)
	b := a.CMap.B
	piece := make([]float64, a.RMap.B)
	myCol := e.GridCol()
	count := 0
	for lr := 0; lr < a.RMap.B; lr++ {
		acc := op.identity()
		row := blk[lr*b : (lr+1)*b]
		for lc, val := range row {
			if a.CMap.GlobalOf(myCol, lc) < 0 {
				continue // padding column
			}
			acc = op.fold(acc, val)
			count++
		}
		piece[lr] = acc
	}
	e.P.Compute(count)
	e.finishReduce(v, piece, e.G.ColMask(), replicate, op)
	return v
}

// finishReduce combines the local pieces across mask and stores the
// result into v on the receiving processors.
func (e *Env) finishReduce(v *Vector, piece []float64, mask int, replicate bool, op Op) {
	pid := e.P.ID()
	if replicate {
		res := collective.AllReduce(e.P, mask, e.NextTag2(), piece, op.combiner())
		copy(v.L(pid), res)
		return
	}
	res := collective.Reduce(e.P, mask, e.NextTag(), 0, piece, op.combiner())
	if res != nil {
		copy(v.L(pid), res)
	}
}

// ReduceAll reduces every element of the matrix to a single scalar,
// replicated on all processors: a local fold followed by a one-word
// all-reduce over the whole cube.
func (e *Env) ReduceAll(a *Matrix, op Op) float64 {
	pid := e.P.ID()
	blk := a.L(pid)
	b := a.CMap.B
	myRow, myCol := e.GridRow(), e.GridCol()
	acc := op.identity()
	count := 0
	for lr := 0; lr < a.RMap.B; lr++ {
		if a.RMap.GlobalOf(myRow, lr) < 0 {
			continue
		}
		row := blk[lr*b : (lr+1)*b]
		for lc, val := range row {
			if a.CMap.GlobalOf(myCol, lc) < 0 {
				continue
			}
			acc = op.fold(acc, val)
			count++
		}
	}
	e.P.Compute(count)
	res := collective.AllReduce(e.P, e.P.FullMask(), e.NextTag(), []float64{acc}, op.combiner())
	return res[0]
}

// ReduceColLoc finds op over column j restricted to rows [lo, hi),
// returning the winning (transformed) value and its global row index,
// replicated on every processor. An empty range returns index -1. This
// is the Gaussian-elimination pivot search: the owning grid column
// folds its local elements, then one pair rides a full-cube
// all-reduce.
func (e *Env) ReduceColLoc(a *Matrix, j, lo, hi int, op LocOp) (float64, int) {
	if j < 0 || j >= a.Cols {
		panic(fmt.Sprintf("core: ReduceColLoc column %d out of [0,%d)", j, a.Cols))
	}
	val, idx := op.identity()
	if e.GridCol() == a.CMap.CoordOf(j) {
		pid := e.P.ID()
		blk := a.L(pid)
		lc := a.CMap.LocalOf(j)
		b := a.CMap.B
		myRow := e.GridRow()
		count := 0
		for lr := 0; lr < a.RMap.B; lr++ {
			gi := a.RMap.GlobalOf(myRow, lr)
			if gi < lo || gi >= hi {
				continue
			}
			v := op.value(blk[lr*b+lc])
			if op.better(val, idx, v, float64(gi)) {
				val, idx = v, float64(gi)
			}
			count++
		}
		e.P.Compute(count)
	}
	res := collective.AllReduce(e.P, e.P.FullMask(), e.NextTag(), []float64{val, idx}, op.combiner())
	if res[1] >= locNone {
		return res[0], -1
	}
	return res[0], int(res[1])
}

// ReduceRowLoc finds op over row i restricted to columns [lo, hi),
// returning the winning value and its global column index, replicated
// everywhere: the simplex entering-variable test.
func (e *Env) ReduceRowLoc(a *Matrix, i, lo, hi int, op LocOp) (float64, int) {
	if i < 0 || i >= a.Rows {
		panic(fmt.Sprintf("core: ReduceRowLoc row %d out of [0,%d)", i, a.Rows))
	}
	val, idx := op.identity()
	if e.GridRow() == a.RMap.CoordOf(i) {
		pid := e.P.ID()
		blk := a.L(pid)
		lr := a.RMap.LocalOf(i)
		b := a.CMap.B
		myCol := e.GridCol()
		count := 0
		for lc := 0; lc < b; lc++ {
			gj := a.CMap.GlobalOf(myCol, lc)
			if gj < lo || gj >= hi {
				continue
			}
			v := op.value(blk[lr*b+lc])
			if op.better(val, idx, v, float64(gj)) {
				val, idx = v, float64(gj)
			}
			count++
		}
		e.P.Compute(count)
	}
	res := collective.AllReduce(e.P, e.P.FullMask(), e.NextTag(), []float64{val, idx}, op.combiner())
	if res[1] >= locNone {
		return res[0], -1
	}
	return res[0], int(res[1])
}

// ZipLocVec reduces over two co-located vectors: for each index g in
// [lo, hi), f(g, v[g], w[g]) yields a candidate value and whether it
// participates; the winning (value, index) under op is replicated on
// every processor. An empty candidate set returns index -1. This is
// the simplex ratio test: v the entering column, w the right-hand
// side, f the guarded ratio (Bland-style rules use g to key candidates
// by basis variable).
func (e *Env) ZipLocVec(v, w *Vector, lo, hi int, f func(g int, a, b float64) (float64, bool), op LocOp) (float64, int) {
	if !v.SameShape(w) {
		panic("core: ZipLocVec vectors have different shapes")
	}
	pid := e.P.ID()
	val, idx := op.identity()
	if v.HoldsData(pid) && w.HoldsData(pid) && e.isCanonicalHolder(v) {
		pv, pw := v.L(pid), w.L(pid)
		c := v.PieceCoord(pid)
		count := 0
		for l := 0; l < v.Map.B; l++ {
			g := v.Map.GlobalOf(c, l)
			if g < lo || g >= hi {
				continue
			}
			cand, ok := f(g, pv[l], pw[l])
			count++
			if !ok {
				continue
			}
			if op.better(val, idx, op.value(cand), float64(g)) {
				val, idx = op.value(cand), float64(g)
			}
		}
		e.P.Compute(2 * count)
	}
	res := collective.AllReduce(e.P, e.P.FullMask(), e.NextTag(), []float64{val, idx}, op.combiner())
	if res[1] >= locNone {
		return res[0], -1
	}
	return res[0], int(res[1])
}

// isCanonicalHolder reports whether this processor is the designated
// contributor for its piece of v: replicated vectors have one
// contributor per piece (grid row/column 0) so reductions do not count
// copies twice.
func (e *Env) isCanonicalHolder(v *Vector) bool {
	switch {
	case v.Layout == Linear:
		return true
	case !v.Replicated:
		return true
	case v.Layout == RowAligned:
		return e.GridRow() == 0
	default:
		return e.GridCol() == 0
	}
}

// ReduceVec folds all elements of a vector to a scalar, replicated on
// every processor.
func (e *Env) ReduceVec(v *Vector, op Op) float64 {
	pid := e.P.ID()
	acc := op.identity()
	if v.HoldsData(pid) && e.isCanonicalHolder(v) {
		pv := v.L(pid)
		c := v.PieceCoord(pid)
		count := 0
		for l := 0; l < v.Map.B; l++ {
			if v.Map.GlobalOf(c, l) < 0 {
				continue
			}
			acc = op.fold(acc, pv[l])
			count++
		}
		e.P.Compute(count)
	}
	res := collective.AllReduce(e.P, e.P.FullMask(), e.NextTag(), []float64{acc}, op.combiner())
	return res[0]
}

// AllReduceRowsPiece all-reduces a local row-aligned piece (one value
// per local column) across the grid's row dimensions, returning the
// combined piece on every processor. Fused application kernels use it
// to finish a local multiply-accumulate with the Reduce primitive's
// communication structure.
func (e *Env) AllReduceRowsPiece(piece []float64, op Op) []float64 {
	return collective.AllReduce(e.P, e.G.RowMask(), e.NextTag2(), piece, op.combiner())
}

// AllReduceColsPiece is AllReduceRowsPiece along the column dimensions.
func (e *Env) AllReduceColsPiece(piece []float64, op Op) []float64 {
	return collective.AllReduce(e.P, e.G.ColMask(), e.NextTag2(), piece, op.combiner())
}
