package core

import (
	"fmt"

	"vmprim/internal/collective"
)

// This file implements the fourth primitive, Reduce, in its vector-
// producing form (collapse one matrix axis), its scalar forms over a
// single row or column with location (the pivot searches of Gaussian
// elimination and simplex), and the vector loc-reduction used by the
// simplex ratio test.

// ReduceRows collapses the row axis: out[j] = op over i of a[i][j],
// returned as a row-aligned vector. With replicate=true every grid row
// receives the result (an all-reduce over the row dimensions, which
// for long pieces uses recursive halving + doubling — the form that is
// work-optimal for m > p lg p); otherwise the result lands on grid row
// 0. The local pass costs one operation per local element, the
// communication lg(p_r) messages of the m/p-sized local piece.
func (e *Env) ReduceRows(a *Matrix, op Op, replicate bool) *Vector {
	e.BeginSpan("reduce-rows")
	defer e.EndSpan()
	v := e.TempVector(a.Cols, RowAligned, a.CMap.Kind, 0, replicate)
	pid := e.P.ID()
	blk := a.L(pid)
	b := a.CMap.B
	piece := e.P.GetBuf(b)
	fillIdentity(piece, op)
	// Padding rows are a suffix of the local block, so the valid rows
	// form the prefix [0, nr) and the fold kernel runs guard-free.
	nr := a.RMap.ValidCount(e.GridRow())
	fold := foldKernel(op)
	for lr := 0; lr < nr; lr++ {
		fold(piece, blk[lr*b:(lr+1)*b])
	}
	e.P.Compute(nr * b)
	e.finishReduce(v, piece, e.G.RowMask(), replicate, op)
	e.P.Recycle(piece)
	return v
}

// ReduceCols collapses the column axis: out[i] = op over j of a[i][j],
// returned as a col-aligned vector (on grid column 0 unless
// replicated).
func (e *Env) ReduceCols(a *Matrix, op Op, replicate bool) *Vector {
	e.BeginSpan("reduce-cols")
	defer e.EndSpan()
	v := e.TempVector(a.Rows, ColAligned, a.RMap.Kind, 0, replicate)
	pid := e.P.ID()
	blk := a.L(pid)
	b := a.CMap.B
	piece := e.P.GetBuf(a.RMap.B)
	// Padding columns are a suffix: every row folds the valid prefix
	// [0, nc). Padding rows still fold (their slots ride the collective
	// exactly as in the per-element form).
	nc := a.CMap.ValidCount(e.GridCol())
	id := op.identity()
	for lr := 0; lr < a.RMap.B; lr++ {
		piece[lr] = foldSlice(op, id, blk[lr*b:lr*b+nc])
	}
	e.P.Compute(a.RMap.B * nc)
	e.finishReduce(v, piece, e.G.ColMask(), replicate, op)
	e.P.Recycle(piece)
	return v
}

// finishReduce combines the local pieces across mask and stores the
// result into v on the receiving processors.
func (e *Env) finishReduce(v *Vector, piece []float64, mask int, replicate bool, op Op) {
	pid := e.P.ID()
	if replicate {
		res := collective.AllReduce(e.P, mask, e.NextTag2(), piece, op.combiner())
		copy(v.L(pid), res)
		e.P.Recycle(res)
		return
	}
	res := collective.Reduce(e.P, mask, e.NextTag(), 0, piece, op.combiner())
	if res != nil {
		copy(v.L(pid), res)
		e.P.Recycle(res)
	}
}

// ReduceAll reduces every element of the matrix to a single scalar,
// replicated on all processors: a local fold followed by a one-word
// all-reduce over the whole cube.
func (e *Env) ReduceAll(a *Matrix, op Op) float64 {
	e.BeginSpan("reduce-all")
	defer e.EndSpan()
	pid := e.P.ID()
	blk := a.L(pid)
	b := a.CMap.B
	nr := a.RMap.ValidCount(e.GridRow())
	nc := a.CMap.ValidCount(e.GridCol())
	acc := op.identity()
	for lr := 0; lr < nr; lr++ {
		acc = foldSlice(op, acc, blk[lr*b:lr*b+nc])
	}
	e.P.Compute(nr * nc)
	out := e.allReduceScalar(acc, op.combiner())
	return out
}

// allReduceScalar rides a one-word all-reduce over the whole cube on
// pooled buffers.
func (e *Env) allReduceScalar(x float64, comb collective.Combiner) float64 {
	buf := e.P.GetBuf(1)
	buf[0] = x
	res := collective.AllReduce(e.P, e.P.FullMask(), e.NextTag(), buf, comb)
	out := res[0]
	e.P.Recycle(res)
	e.P.Recycle(buf)
	return out
}

// allReducePair is allReduceScalar for the (value, index) pairs of the
// loc-reductions.
func (e *Env) allReducePair(val, idx float64, comb collective.Combiner) (float64, float64) {
	buf := e.P.GetBuf(2)
	buf[0], buf[1] = val, idx
	res := collective.AllReduce(e.P, e.P.FullMask(), e.NextTag(), buf, comb)
	v, i := res[0], res[1]
	e.P.Recycle(res)
	e.P.Recycle(buf)
	return v, i
}

// ReduceColLoc finds op over column j restricted to rows [lo, hi),
// returning the winning (transformed) value and its global row index,
// replicated on every processor. An empty range returns index -1. This
// is the Gaussian-elimination pivot search: the owning grid column
// folds its local elements, then one pair rides a full-cube
// all-reduce.
func (e *Env) ReduceColLoc(a *Matrix, j, lo, hi int, op LocOp) (float64, int) {
	e.BeginSpan("reduce-col-loc")
	defer e.EndSpan()
	if j < 0 || j >= a.Cols {
		panic(fmt.Sprintf("core: ReduceColLoc column %d out of [0,%d)", j, a.Cols))
	}
	val, idx := op.identity()
	if e.GridCol() == a.CMap.CoordOf(j) {
		pid := e.P.ID()
		blk := a.L(pid)
		lc := a.CMap.LocalOf(j)
		b := a.CMap.B
		myRow := e.GridRow()
		// Global rows in [lo, hi) occupy the contiguous local window
		// [l0, l1); walk it with an incremental global index.
		l0, l1 := a.RMap.LocalRange(myRow, lo, hi)
		if l0 < l1 {
			gi := a.RMap.GlobalOf(myRow, l0)
			stride := a.RMap.GlobalStride()
			for lr := l0; lr < l1; lr++ {
				v := op.value(blk[lr*b+lc])
				if op.better(val, idx, v, float64(gi)) {
					val, idx = v, float64(gi)
				}
				gi += stride
			}
		}
		e.P.Compute(l1 - l0)
	}
	rv, ri := e.allReducePair(val, idx, op.combiner())
	if ri >= locNone {
		return rv, -1
	}
	return rv, int(ri)
}

// ReduceRowLoc finds op over row i restricted to columns [lo, hi),
// returning the winning value and its global column index, replicated
// everywhere: the simplex entering-variable test.
func (e *Env) ReduceRowLoc(a *Matrix, i, lo, hi int, op LocOp) (float64, int) {
	e.BeginSpan("reduce-row-loc")
	defer e.EndSpan()
	if i < 0 || i >= a.Rows {
		panic(fmt.Sprintf("core: ReduceRowLoc row %d out of [0,%d)", i, a.Rows))
	}
	val, idx := op.identity()
	if e.GridRow() == a.RMap.CoordOf(i) {
		pid := e.P.ID()
		blk := a.L(pid)
		lr := a.RMap.LocalOf(i)
		b := a.CMap.B
		myCol := e.GridCol()
		l0, l1 := a.CMap.LocalRange(myCol, lo, hi)
		if l0 < l1 {
			gj := a.CMap.GlobalOf(myCol, l0)
			stride := a.CMap.GlobalStride()
			row := blk[lr*b : (lr+1)*b]
			for lc := l0; lc < l1; lc++ {
				v := op.value(row[lc])
				if op.better(val, idx, v, float64(gj)) {
					val, idx = v, float64(gj)
				}
				gj += stride
			}
		}
		e.P.Compute(l1 - l0)
	}
	rv, ri := e.allReducePair(val, idx, op.combiner())
	if ri >= locNone {
		return rv, -1
	}
	return rv, int(ri)
}

// ZipLocVec reduces over two co-located vectors: for each index g in
// [lo, hi), f(g, v[g], w[g]) yields a candidate value and whether it
// participates; the winning (value, index) under op is replicated on
// every processor. An empty candidate set returns index -1. This is
// the simplex ratio test: v the entering column, w the right-hand
// side, f the guarded ratio (Bland-style rules use g to key candidates
// by basis variable).
func (e *Env) ZipLocVec(v, w *Vector, lo, hi int, f func(g int, a, b float64) (float64, bool), op LocOp) (float64, int) {
	e.BeginSpan("zip-loc-vec")
	defer e.EndSpan()
	if !v.SameShape(w) {
		panic("core: ZipLocVec vectors have different shapes")
	}
	pid := e.P.ID()
	val, idx := op.identity()
	if v.HoldsData(pid) && w.HoldsData(pid) && e.isCanonicalHolder(v) {
		pv, pw := v.L(pid), w.L(pid)
		c := v.PieceCoord(pid)
		l0, l1 := v.Map.LocalRange(c, lo, hi)
		if l0 < l1 {
			g := v.Map.GlobalOf(c, l0)
			stride := v.Map.GlobalStride()
			for l := l0; l < l1; l++ {
				cand, ok := f(g, pv[l], pw[l])
				if ok && op.better(val, idx, op.value(cand), float64(g)) {
					val, idx = op.value(cand), float64(g)
				}
				g += stride
			}
		}
		e.P.Compute(2 * (l1 - l0))
	}
	rv, ri := e.allReducePair(val, idx, op.combiner())
	if ri >= locNone {
		return rv, -1
	}
	return rv, int(ri)
}

// isCanonicalHolder reports whether this processor is the designated
// contributor for its piece of v: replicated vectors have one
// contributor per piece (grid row/column 0) so reductions do not count
// copies twice.
func (e *Env) isCanonicalHolder(v *Vector) bool {
	switch {
	case v.Layout == Linear:
		return true
	case !v.Replicated:
		return true
	case v.Layout == RowAligned:
		return e.GridRow() == 0
	default:
		return e.GridCol() == 0
	}
}

// ReduceVec folds all elements of a vector to a scalar, replicated on
// every processor.
func (e *Env) ReduceVec(v *Vector, op Op) float64 {
	e.BeginSpan("reduce-vec")
	defer e.EndSpan()
	pid := e.P.ID()
	acc := op.identity()
	if v.HoldsData(pid) && e.isCanonicalHolder(v) {
		pv := v.L(pid)
		nv := v.Map.ValidCount(v.PieceCoord(pid))
		acc = foldSlice(op, acc, pv[:nv])
		e.P.Compute(nv)
	}
	return e.allReduceScalar(acc, op.combiner())
}

// AllReduceRowsPiece all-reduces a local row-aligned piece (one value
// per local column) across the grid's row dimensions, returning the
// combined piece on every processor. Fused application kernels use it
// to finish a local multiply-accumulate with the Reduce primitive's
// communication structure.
func (e *Env) AllReduceRowsPiece(piece []float64, op Op) []float64 {
	return collective.AllReduce(e.P, e.G.RowMask(), e.NextTag2(), piece, op.combiner())
}

// AllReduceColsPiece is AllReduceRowsPiece along the column dimensions.
func (e *Env) AllReduceColsPiece(piece []float64, op Op) []float64 {
	return collective.AllReduce(e.P, e.G.ColMask(), e.NextTag2(), piece, op.combiner())
}
