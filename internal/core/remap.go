package core

import (
	"fmt"
	"sort"

	"vmprim/internal/embed"
	"vmprim/internal/router"
)

// Embedding changes. The paper notes that "the primitives may indicate
// a change from one embedding to another": converting a vector between
// its linear, row-aligned and col-aligned embeddings, and transposing
// a matrix, are arbitrary (but regular) personalized communications.
// They are implemented on the dimension-ordered router with one
// combined message per (source, destination) processor pair — the
// message combining that distinguishes a primitive from naive
// element-at-a-time access.

// remapItem is one (global index, value) pair in flight during an
// embedding change. Keys must be nonnegative.
type remapItem struct {
	key int
	val float64
}

// remapExchange routes every processor's items to dstOf(key) and
// returns the items that arrived here. All processors call it
// together.
func (e *Env) remapExchange(items []remapItem, dstOf func(key int) int) []remapItem {
	buckets := make(map[int][]float64)
	for _, it := range items {
		d := dstOf(it.key)
		buckets[d] = append(buckets[d], float64(it.key), it.val)
	}
	msgs := make([]router.Msg, 0, len(buckets))
	for d, words := range buckets {
		msgs = append(msgs, router.Msg{Dst: d, Key: len(words) / 2, Words: words})
	}
	// Map iteration order is random; sort for run-to-run determinism.
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].Dst < msgs[j].Dst })
	got := router.Route(e.P, e.NextTag(), msgs)
	var recv []remapItem
	for _, m := range got {
		for i := 0; i+1 < len(m.Words); i += 2 {
			recv = append(recv, remapItem{key: int(m.Words[i]), val: m.Words[i+1]})
		}
	}
	return recv
}

// ownedVecItems lists the (index, value) pairs of v this processor is
// the canonical contributor for.
func (e *Env) ownedVecItems(v *Vector) []remapItem {
	pid := e.P.ID()
	if !v.HoldsData(pid) || !e.isCanonicalHolder(v) {
		return nil
	}
	pv := v.L(pid)
	c := v.PieceCoord(pid)
	items := make([]remapItem, 0, len(pv))
	for l, val := range pv {
		if g := v.Map.GlobalOf(c, l); g >= 0 {
			items = append(items, remapItem{key: g, val: val})
		}
	}
	return items
}

// Realign converts a vector to another embedding: layout, map kind,
// home (grid row for RowAligned, grid column for ColAligned; ignored
// for Linear) and replication. It returns a new vector; the input is
// unchanged. One routed personalized communication moves every element
// to its new owner; replication, if requested, adds a Distribute.
func (e *Env) Realign(v *Vector, layout Layout, kind embed.MapKind, home int, replicated bool) *Vector {
	e.BeginSpan("realign")
	defer e.EndSpan()
	if e.Profiling() {
		e.P.SpanNote(v.Layout.String() + "->" + layout.String())
	}
	out := e.TempVector(v.N, layout, kind, home, false)
	items := e.ownedVecItems(v)
	dstOf := func(g int) int {
		c := out.Map.CoordOf(g)
		switch layout {
		case Linear:
			return linearProcOf(c)
		case RowAligned:
			return e.G.ProcAt(home, c)
		default:
			return e.G.ProcAt(c, home)
		}
	}
	recv := e.remapExchange(items, dstOf)
	pid := e.P.ID()
	if len(recv) > 0 {
		pv := out.L(pid)
		for _, it := range recv {
			pv[out.Map.LocalOf(it.key)] = it.val
		}
		e.P.Compute(len(recv))
	}
	if replicated && layout != Linear {
		return e.Distribute(out)
	}
	return out
}

// ToLinear converts any vector to the load-balanced linear embedding.
func (e *Env) ToLinear(v *Vector) *Vector {
	return e.Realign(v, Linear, v.Map.Kind, 0, false)
}

// TransposeInto writes a's transpose into dst, which must be a
// Cols x Rows matrix on the same grid (host-created if the host wants
// to read the result). One routed personalized communication with
// combined per-processor-pair messages carries every element to its
// transposed owner — the classic hypercube matrix transposition as an
// embedding change.
func (e *Env) TransposeInto(dst, a *Matrix) {
	e.BeginSpan("transpose")
	defer e.EndSpan()
	if dst.Rows != a.Cols || dst.Cols != a.Rows || dst.G != a.G {
		panic(fmt.Sprintf("core: TransposeInto dst %dx%d incompatible with src %dx%d",
			dst.Rows, dst.Cols, a.Rows, a.Cols))
	}
	pid := e.P.ID()
	blk := a.L(pid)
	b := a.CMap.B
	myRow, myCol := e.GridRow(), e.GridCol()
	var items []remapItem
	for lr := 0; lr < a.RMap.B; lr++ {
		gi := a.RMap.GlobalOf(myRow, lr)
		if gi < 0 {
			continue
		}
		for lc := 0; lc < b; lc++ {
			gj := a.CMap.GlobalOf(myCol, lc)
			if gj < 0 {
				continue
			}
			// Element (gi, gj) becomes dst element (gj, gi).
			items = append(items, remapItem{key: gj*dst.Cols + gi, val: blk[lr*b+lc]})
		}
	}
	dstOf := func(key int) int { return dst.OwnerOf(key/dst.Cols, key%dst.Cols) }
	recv := e.remapExchange(items, dstOf)
	if len(recv) > 0 {
		db := dst.L(pid)
		bc := dst.CMap.B
		for _, it := range recv {
			i, j := it.key/dst.Cols, it.key%dst.Cols
			db[dst.RMap.LocalOf(i)*bc+dst.CMap.LocalOf(j)] = it.val
		}
		e.P.Compute(len(recv))
	}
}

// Transpose returns a's transpose as an SPMD-local temporary, with row
// and column map kinds swapped along with the axes.
func (e *Env) Transpose(a *Matrix) *Matrix {
	out := e.TempMatrix(a.Cols, a.Rows, a.CMap.Kind, a.RMap.Kind)
	e.TransposeInto(out, a)
	return out
}
