package core

import (
	"vmprim/internal/collective"
	"vmprim/internal/embed"
)

// This file implements the third primitive, Distribute: replicating an
// aligned vector across the orthogonal grid axis, and its matrix-
// shaped form that materializes v as every row (column) of a matrix.

// Distribute replicates an aligned vector across the orthogonal grid
// dimensions: a row-aligned vector becomes present on every grid row,
// a col-aligned one on every grid column. It returns a new replicated
// vector (the input is unchanged); distributing an already-replicated
// vector just copies it locally. The cost is one binomial broadcast of
// the m^(1/2)/p^(1/2)-sized piece over the orthogonal cube dimensions
// — or, for long pieces, the bandwidth-optimal scatter/all-gather.
func (e *Env) Distribute(v *Vector) *Vector {
	if v.Layout == Linear {
		panic("core: Distribute needs an aligned vector (convert with AlignRows/AlignCols)")
	}
	e.BeginSpan("distribute")
	defer e.EndSpan()
	if e.Profiling() {
		e.P.SpanNote("replicate " + v.Layout.String())
	}
	out := e.TempVector(v.N, v.Layout, v.Map.Kind, v.Home, true)
	pid := e.P.ID()
	if v.Replicated {
		copy(out.L(pid), v.L(pid))
		e.P.Compute(v.Map.B)
		return out
	}
	var mask, rootRel int
	if v.Layout == RowAligned {
		mask, rootRel = e.G.RowMask(), e.G.RowRel(v.Home)
	} else {
		mask, rootRel = e.G.ColMask(), e.G.ColRel(v.Home)
	}
	var src []float64
	if v.HoldsData(pid) {
		src = v.L(pid)
	}
	piece := e.bcastBest(mask, rootRel, src, v.Map.B)
	copy(out.L(pid), piece)
	e.P.Recycle(piece)
	return out
}

// bcastBest broadcasts a piece of known length over mask, choosing the
// binomial tree for short payloads and scatter/all-gather for long
// ones by comparing modelled costs (every processor computes the same
// choice from the same parameters, so the collectives stay matched).
func (e *Env) bcastBest(mask, rootRel int, src []float64, length int) []float64 {
	k := 0
	for m := mask; m != 0; m &= m - 1 {
		k++
	}
	params := e.P.Params()
	tree := float64(k) * (float64(params.CommStartup) + float64(length)*float64(params.CommPerWord))
	sag := 2*float64(k)*float64(params.CommStartup) + 2*float64(length)*float64(params.CommPerWord)
	if k > 0 && length%(1<<k) == 0 && length > 0 && sag < tree {
		return collective.BcastLarge(e.P, mask, e.NextTag2(), rootRel, src)
	}
	return collective.Bcast(e.P, mask, e.NextTag(), rootRel, src)
}

// SpreadRows materializes a row-aligned vector as a matrix with the
// given number of rows, every one of which equals v — the literal
// matrix-shaped Distribute of the paper's primitive compositions
// (vector-matrix multiply as Distribute, elementwise multiply,
// Reduce). Row map kind follows rkind.
func (e *Env) SpreadRows(v *Vector, rows int, rkind embed.MapKind) *Matrix {
	e.BeginSpan("spread-rows")
	defer e.EndSpan()
	if v.Layout != RowAligned {
		panic("core: SpreadRows needs a row-aligned vector")
	}
	rep := v
	if !v.Replicated {
		rep = e.Distribute(v)
	}
	out := e.TempMatrix(rows, v.N, rkind, v.Map.Kind)
	pid := e.P.ID()
	blk := out.L(pid)
	piece := rep.L(pid)
	b := out.CMap.B
	for r := 0; r < out.RMap.B; r++ {
		copy(blk[r*b:(r+1)*b], piece)
	}
	e.P.Compute(out.RMap.B * b)
	return out
}

// SpreadCols materializes a col-aligned vector as a matrix with the
// given number of columns, every one of which equals v.
func (e *Env) SpreadCols(v *Vector, cols int, ckind embed.MapKind) *Matrix {
	e.BeginSpan("spread-cols")
	defer e.EndSpan()
	if v.Layout != ColAligned {
		panic("core: SpreadCols needs a col-aligned vector")
	}
	rep := v
	if !v.Replicated {
		rep = e.Distribute(v)
	}
	out := e.TempMatrix(v.N, cols, v.Map.Kind, ckind)
	pid := e.P.ID()
	blk := out.L(pid)
	piece := rep.L(pid)
	b := out.CMap.B
	for r := 0; r < out.RMap.B; r++ {
		val := piece[r]
		row := blk[r*b : (r+1)*b]
		for c := range row {
			row[c] = val
		}
	}
	e.P.Compute(out.RMap.B * b)
	return out
}
