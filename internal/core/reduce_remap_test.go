package core

import (
	"math"
	"math/rand"
	"testing"

	"vmprim/internal/embed"
	"vmprim/internal/serial"
)

func serialReduceRows(dm *serial.Mat, op Op) []float64 {
	out := make([]float64, dm.C)
	for j := range out {
		acc := op.identity()
		for i := 0; i < dm.R; i++ {
			acc = op.fold(acc, dm.At(i, j))
		}
		out[j] = acc
	}
	return out
}

func serialReduceCols(dm *serial.Mat, op Op) []float64 {
	out := make([]float64, dm.R)
	for i := range out {
		acc := op.identity()
		for j := 0; j < dm.C; j++ {
			acc = op.fold(acc, dm.At(i, j))
		}
		out[i] = acc
	}
	return out
}

func TestReduceRowsAllOps(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, g := range testGrids(t) {
		for _, kind := range []embed.MapKind{embed.Block, embed.Cyclic} {
			for _, shape := range [][2]int{{1, 1}, {4, 4}, {9, 5}, {6, 11}} {
				dm := randDense(rng, shape[0], shape[1])
				a, _ := FromDense(g, dm, kind, kind)
				for _, op := range []Op{OpSum, OpMax, OpMin} {
					for _, repl := range []bool{false, true} {
						out, _ := NewVector(g, shape[1], RowAligned, kind, 0, repl)
						spmd(t, g, func(e *Env) {
							e.StoreVec(out, e.ReduceRows(a, op, repl))
						})
						vecEqual(t, out.ToSlice(), serialReduceRows(dm, op), 1e-12, "ReduceRows "+op.String())
						if err := out.CheckReplicas(); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
		}
	}
}

func TestReduceColsAllOps(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, g := range testGrids(t) {
		for _, kind := range []embed.MapKind{embed.Block, embed.Cyclic} {
			dm := randDense(rng, 7, 9)
			a, _ := FromDense(g, dm, kind, kind)
			for _, op := range []Op{OpSum, OpMax, OpMin} {
				for _, repl := range []bool{false, true} {
					out, _ := NewVector(g, 7, ColAligned, kind, 0, repl)
					spmd(t, g, func(e *Env) {
						e.StoreVec(out, e.ReduceCols(a, op, repl))
					})
					vecEqual(t, out.ToSlice(), serialReduceCols(dm, op), 1e-12, "ReduceCols "+op.String())
				}
			}
		}
	}
}

func TestReduceAll(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, g := range testGrids(t) {
		dm := randDense(rng, 6, 7)
		a, _ := FromDense(g, dm, embed.Block, embed.Cyclic)
		var sum, max, min float64
		spmd(t, g, func(e *Env) {
			s := e.ReduceAll(a, OpSum)
			mx := e.ReduceAll(a, OpMax)
			mn := e.ReduceAll(a, OpMin)
			if e.P.ID() == 0 {
				sum, max, min = s, mx, mn
			}
		})
		wantSum, wantMax, wantMin := 0.0, math.Inf(-1), math.Inf(1)
		for _, v := range dm.A {
			wantSum += v
			wantMax = math.Max(wantMax, v)
			wantMin = math.Min(wantMin, v)
		}
		if math.Abs(sum-wantSum) > 1e-10 || max != wantMax || min != wantMin {
			t.Fatalf("ReduceAll: %v %v %v, want %v %v %v", sum, max, min, wantSum, wantMax, wantMin)
		}
	}
}

func TestReduceColLoc(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, g := range testGrids(t) {
		for _, kind := range []embed.MapKind{embed.Block, embed.Cyclic} {
			dm := randDense(rng, 11, 5)
			a, _ := FromDense(g, dm, kind, kind)
			for _, j := range []int{0, 3, 4} {
				for _, bounds := range [][2]int{{0, 11}, {4, 11}, {4, 5}, {7, 7}} {
					lo, hi := bounds[0], bounds[1]
					for _, op := range []LocOp{LocMax, LocMin, LocMaxAbs} {
						var gotVal float64
						var gotIdx int
						spmd(t, g, func(e *Env) {
							v, idx := e.ReduceColLoc(a, j, lo, hi, op)
							if e.P.ID() == 0 {
								gotVal, gotIdx = v, idx
							}
						})
						// Serial reference.
						wantVal, _ := op.identity()
						wantIdx := -1
						for i := lo; i < hi; i++ {
							v := op.value(dm.At(i, j))
							if wantIdx == -1 || op.better(wantVal, float64(wantIdx), v, float64(i)) {
								wantVal, wantIdx = v, i
							}
						}
						if gotIdx != wantIdx {
							t.Fatalf("%v col %d [%d,%d): idx %d, want %d", op, j, lo, hi, gotIdx, wantIdx)
						}
						if wantIdx >= 0 && math.Abs(gotVal-wantVal) > 1e-12 {
							t.Fatalf("%v col %d: val %v, want %v", op, j, gotVal, wantVal)
						}
					}
				}
			}
		}
	}
}

func TestReduceRowLoc(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, g := range testGrids(t) {
		dm := randDense(rng, 5, 11)
		a, _ := FromDense(g, dm, embed.Block, embed.Cyclic)
		for _, i := range []int{0, 4} {
			for _, bounds := range [][2]int{{0, 11}, {3, 9}, {10, 10}} {
				lo, hi := bounds[0], bounds[1]
				var gotVal float64
				var gotIdx int
				spmd(t, g, func(e *Env) {
					v, idx := e.ReduceRowLoc(a, i, lo, hi, LocMin)
					if e.P.ID() == 0 {
						gotVal, gotIdx = v, idx
					}
				})
				wantVal, wantIdx := math.Inf(1), -1
				for j := lo; j < hi; j++ {
					if dm.At(i, j) < wantVal {
						wantVal, wantIdx = dm.At(i, j), j
					}
				}
				if gotIdx != wantIdx || (wantIdx >= 0 && math.Abs(gotVal-wantVal) > 1e-12) {
					t.Fatalf("row %d [%d,%d): (%v,%d), want (%v,%d)", i, lo, hi, gotVal, gotIdx, wantVal, wantIdx)
				}
			}
		}
	}
}

func TestZipLocVecRatioTest(t *testing.T) {
	// The simplex ratio test: minimize rhs[i]/col[i] over col[i] > eps.
	rng := rand.New(rand.NewSource(25))
	for _, g := range testGrids(t) {
		n := 9
		col := make([]float64, n)
		rhs := make([]float64, n)
		for i := range col {
			col[i] = rng.NormFloat64() // mixed signs: some rows invalid
			rhs[i] = rng.Float64() * 10
		}
		vcol, _ := VectorFromSlice(g, col, ColAligned, embed.Block, 0, true)
		vrhs, _ := VectorFromSlice(g, rhs, ColAligned, embed.Block, 0, true)
		var gotVal float64
		var gotIdx int
		spmd(t, g, func(e *Env) {
			v, idx := e.ZipLocVec(vcol, vrhs, 0, n, func(_ int, c, r float64) (float64, bool) {
				if c <= 1e-9 {
					return 0, false
				}
				return r / c, true
			}, LocMin)
			if e.P.ID() == 0 {
				gotVal, gotIdx = v, idx
			}
		})
		wantVal, wantIdx := math.Inf(1), -1
		for i := 0; i < n; i++ {
			if col[i] <= 1e-9 {
				continue
			}
			if r := rhs[i] / col[i]; r < wantVal {
				wantVal, wantIdx = r, i
			}
		}
		if gotIdx != wantIdx || (wantIdx >= 0 && math.Abs(gotVal-wantVal) > 1e-12) {
			t.Fatalf("ratio test: (%v,%d), want (%v,%d)", gotVal, gotIdx, wantVal, wantIdx)
		}
	}
}

func TestZipLocVecEmpty(t *testing.T) {
	g, _ := embed.NewGrid(1, 1)
	col := []float64{-1, -2, -3, -4}
	vcol, _ := VectorFromSlice(g, col, ColAligned, embed.Block, 0, true)
	spmd(t, g, func(e *Env) {
		_, idx := e.ZipLocVec(vcol, vcol, 0, 4, func(_ int, c, r float64) (float64, bool) {
			return 0, false // nothing valid
		}, LocMin)
		if idx != -1 {
			panic("expected empty result")
		}
	})
}

func TestReduceVec(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, g := range testGrids(t) {
		x := make([]float64, 10)
		want := 0.0
		for i := range x {
			x[i] = rng.NormFloat64()
			want += x[i]
		}
		for _, layout := range []Layout{Linear, RowAligned, ColAligned} {
			for _, repl := range []bool{false, true} {
				if layout == Linear && repl {
					continue
				}
				v, _ := VectorFromSlice(g, x, layout, embed.Block, 0, repl)
				var got float64
				spmd(t, g, func(e *Env) {
					s := e.ReduceVec(v, OpSum)
					if e.P.ID() == 0 {
						got = s
					}
				})
				if math.Abs(got-want) > 1e-10 {
					t.Fatalf("%v repl=%v: sum %v, want %v (replication double-count?)", layout, repl, got, want)
				}
			}
		}
	}
}

func TestRealignAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	type spec struct {
		layout Layout
		repl   bool
	}
	specs := []spec{{Linear, false}, {RowAligned, false}, {RowAligned, true}, {ColAligned, false}, {ColAligned, true}}
	for _, g := range testGrids(t) {
		x := make([]float64, 11)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for _, from := range specs {
			for _, to := range specs {
				fromHome, toHome := 0, 0
				if from.layout == RowAligned {
					fromHome = g.PRows() - 1
				}
				if from.layout == ColAligned {
					fromHome = g.PCols() - 1
				}
				v, err := VectorFromSlice(g, x, from.layout, embed.Block, fromHome, from.repl)
				if err != nil {
					t.Fatal(err)
				}
				out, err := NewVector(g, 11, to.layout, embed.Cyclic, toHome, to.repl)
				if err != nil {
					t.Fatal(err)
				}
				spmd(t, g, func(e *Env) {
					w := e.Realign(v, to.layout, embed.Cyclic, toHome, to.repl)
					e.StoreVec(out, w)
				})
				vecEqual(t, out.ToSlice(), x, 0, "Realign")
				if err := out.CheckReplicas(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestToLinearRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	for _, g := range testGrids(t) {
		x := make([]float64, 13)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		v, _ := VectorFromSlice(g, x, RowAligned, embed.Block, 0, true)
		out, _ := NewVector(g, 13, Linear, embed.Block, 0, false)
		spmd(t, g, func(e *Env) {
			e.StoreVec(out, e.ToLinear(v))
		})
		vecEqual(t, out.ToSlice(), x, 0, "ToLinear")
	}
}

func TestTransposeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, g := range testGrids(t) {
		for _, kind := range []embed.MapKind{embed.Block, embed.Cyclic} {
			for _, shape := range [][2]int{{1, 5}, {5, 1}, {4, 4}, {7, 9}, {9, 7}} {
				dm := randDense(rng, shape[0], shape[1])
				a, _ := FromDense(g, dm, kind, kind)
				out, _ := NewMatrix(g, shape[1], shape[0], kind, kind)
				spmd(t, g, func(e *Env) {
					e.TransposeInto(out, a)
				})
				matEqual(t, out.ToDense(), dm.Transpose(), 0, "Transpose")
			}
		}
	}
}

func TestTransposeTwiceIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, g := range testGrids(t) {
		dm := randDense(rng, 6, 9)
		a, _ := FromDense(g, dm, embed.Block, embed.Cyclic)
		out, _ := NewMatrix(g, 6, 9, embed.Block, embed.Cyclic)
		spmd(t, g, func(e *Env) {
			tm := e.Transpose(a)
			e.TransposeInto(out, tm)
		})
		matEqual(t, out.ToDense(), dm, 0, "double transpose")
	}
}

// TestPrimitiveCompositionMatvec is the integration check that the
// paper's vector-matrix multiply composition — Distribute the vector
// over the rows, elementwise multiply, Reduce the rows — computes
// x*A, using only the four primitives.
func TestPrimitiveCompositionMatvec(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, g := range testGrids(t) {
		for _, shape := range [][2]int{{4, 4}, {7, 5}, {3, 9}} {
			dm := randDense(rng, shape[0], shape[1])
			x := make([]float64, shape[0])
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			a, _ := FromDense(g, dm, embed.Block, embed.Block)
			xv, _ := VectorFromSlice(g, x, ColAligned, embed.Block, 0, false)
			out, _ := NewVector(g, shape[1], RowAligned, embed.Block, 0, true)
			spmd(t, g, func(e *Env) {
				xs := e.SpreadCols(xv, shape[1], embed.Block) // Distribute
				prod := e.CopyMatrix(a)
				e.ZipMatrix(prod, xs, func(av, xvv float64) float64 { return av * xvv }, 1)
				y := e.ReduceRows(prod, OpSum, true) // Reduce
				e.StoreVec(out, y)
			})
			vecEqual(t, out.ToSlice(), serial.VecMatMul(x, dm), 1e-10, "primitive matvec")
		}
	}
}

func TestReduceScatterPathInLongReduce(t *testing.T) {
	// Long pieces push AllReduce onto the halving+doubling path; the
	// result must not depend on which path was taken.
	g, _ := embed.NewGrid(3, 2)
	rng := rand.New(rand.NewSource(32))
	dm := randDense(rng, 64, 64)
	a, _ := FromDense(g, dm, embed.Block, embed.Block)
	out, _ := NewVector(g, 64, RowAligned, embed.Block, 0, true)
	spmd(t, g, func(e *Env) {
		e.StoreVec(out, e.ReduceRows(a, OpSum, true))
	})
	vecEqual(t, out.ToSlice(), serialReduceRows(dm, OpSum), 1e-10, "long ReduceRows")
	if err := out.CheckReplicas(); err != nil {
		t.Fatal(err)
	}
}
