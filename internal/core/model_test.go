package core

import (
	"math"
	"math/rand"
	"testing"

	"vmprim/internal/embed"
	"vmprim/internal/serial"
)

// Model-based testing: apply a random sequence of primitive operations
// to a distributed matrix and, in lockstep, the equivalent dense
// operations to a serial mirror; the two must agree after every
// sequence, on every grid and map kind. This catches interaction bugs
// (stale replicas, embedding drift, tag desynchronization) that
// single-operation tests cannot.

// modelOp is one randomly chosen operation applied to both worlds.
type modelOp struct {
	kind int
	i, j int
	v    float64
}

const nModelOps = 7

func randomOps(rng *rand.Rand, rows, cols, count int) []modelOp {
	ops := make([]modelOp, count)
	for k := range ops {
		ops[k] = modelOp{
			kind: rng.Intn(nModelOps),
			i:    rng.Intn(rows),
			j:    rng.Intn(cols),
			v:    rng.NormFloat64(),
		}
	}
	return ops
}

// applySerial mirrors the distributed semantics on a dense matrix.
func applySerial(dm *serial.Mat, op modelOp) {
	switch op.kind {
	case 0: // swap rows i and (j mod rows)
		i2 := op.j % dm.R
		r1, r2 := dm.Row(op.i), dm.Row(i2)
		dm.SetRow(op.i, r2)
		dm.SetRow(i2, r1)
	case 1: // copy row i over row (j mod rows)
		dm.SetRow(op.j%dm.R, dm.Row(op.i))
	case 2: // copy column j over column (i mod cols)
		dm.SetCol(op.i%dm.C, dm.Col(op.j))
	case 3: // set element
		dm.Set(op.i, op.j, op.v)
	case 4: // scale a row range
		for j := 0; j < dm.C; j++ {
			dm.Set(op.i, j, dm.At(op.i, j)*op.v)
		}
	case 5: // rank-1 update with row i and column j
		ci := dm.Col(op.j)
		rj := dm.Row(op.i)
		for a := 0; a < dm.R; a++ {
			for b := 0; b < dm.C; b++ {
				dm.Set(a, b, dm.At(a, b)+op.v*ci[a]*rj[b])
			}
		}
	case 6: // transpose-in-place semantics need square; emulate via
		// global add of the max element instead (exercises ReduceAll).
		mx := math.Inf(-1)
		for _, x := range dm.A {
			mx = math.Max(mx, x)
		}
		for idx := range dm.A {
			dm.A[idx] += mx * 0.01
		}
	}
}

// applyDistributed performs the same operation with the primitives.
func applyDistributed(e *Env, a *Matrix, op modelOp) {
	switch op.kind {
	case 0:
		e.SwapRows(a, op.i, op.j%a.Rows)
	case 1:
		r := e.ExtractRow(a, op.i, false)
		e.InsertRow(a, r, op.j%a.Rows)
	case 2:
		c := e.ExtractCol(a, op.j, false)
		e.InsertCol(a, c, op.i%a.Cols)
	case 3:
		e.SetElem(a, op.i, op.j, op.v)
	case 4:
		e.MapRange(a, op.i, op.i+1, 0, a.Cols, func(_, _ int, x float64) float64 {
			return x * op.v
		}, 1)
	case 5:
		ci := e.ExtractCol(a, op.j, true)
		rj := e.ExtractRow(a, op.i, true)
		e.UpdateOuter(a, ci, rj, 0, a.Rows, 0, a.Cols,
			func(x, c, r float64) float64 { return x + op.v*c*r }, 3)
	case 6:
		mx := e.ReduceAll(a, OpMax)
		e.MapMatrix(a, func(_, _ int, x float64) float64 { return x + mx*0.01 }, 2)
	}
}

func TestRandomOpSequencesMatchSerialModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, g := range testGrids(t) {
		for _, kind := range []embed.MapKind{embed.Block, embed.Cyclic} {
			for trial := 0; trial < 4; trial++ {
				rows := 3 + rng.Intn(8)
				cols := 3 + rng.Intn(8)
				dm := randDense(rng, rows, cols)
				mirror := dm.Clone()
				a, err := FromDense(g, dm, kind, kind)
				if err != nil {
					t.Fatal(err)
				}
				ops := randomOps(rng, rows, cols, 12)
				spmd(t, g, func(e *Env) {
					for _, op := range ops {
						applyDistributed(e, a, op)
					}
				})
				for _, op := range ops {
					applySerial(mirror, op)
				}
				got := a.ToDense()
				for i := 0; i < rows; i++ {
					for j := 0; j < cols; j++ {
						if math.Abs(got.At(i, j)-mirror.At(i, j)) > 1e-9 {
							t.Fatalf("grid %+v %v trial %d ops %v: (%d,%d) = %v, want %v",
								g, kind, trial, ops, i, j, got.At(i, j), mirror.At(i, j))
						}
					}
				}
			}
		}
	}
}

// The same idea for vectors: random realign chains must preserve
// contents regardless of the path taken through the three embeddings.
func TestRandomRealignChains(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, g := range testGrids(t) {
		n := 4 + rng.Intn(12)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		type step struct {
			layout Layout
			kind   embed.MapKind
			home   int
			repl   bool
		}
		for trial := 0; trial < 5; trial++ {
			steps := make([]step, 4)
			for s := range steps {
				layout := Layout(rng.Intn(3))
				kind := embed.MapKind(rng.Intn(2))
				repl := rng.Intn(2) == 1 && layout != Linear
				home := 0
				if layout == RowAligned {
					home = rng.Intn(g.PRows())
				} else if layout == ColAligned {
					home = rng.Intn(g.PCols())
				}
				steps[s] = step{layout, kind, home, repl}
			}
			last := steps[len(steps)-1]
			v, err := VectorFromSlice(g, x, Linear, embed.Block, 0, false)
			if err != nil {
				t.Fatal(err)
			}
			out, err := NewVector(g, n, last.layout, last.kind, last.home, last.repl)
			if err != nil {
				t.Fatal(err)
			}
			spmd(t, g, func(e *Env) {
				cur := v
				for _, s := range steps {
					cur = e.Realign(cur, s.layout, s.kind, s.home, s.repl)
				}
				e.StoreVec(out, cur)
			})
			vecEqual(t, out.ToSlice(), x, 0, "realign chain")
			if err := out.CheckReplicas(); err != nil {
				t.Fatal(err)
			}
		}
	}
}
