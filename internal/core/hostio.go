package core

import (
	"fmt"

	"vmprim/internal/embed"
	"vmprim/internal/gray"
	"vmprim/internal/serial"
)

// linearCoordOf returns the Linear-layout piece coordinate stored at
// processor pid, and linearProcOf its inverse. Gray coding keeps
// consecutive pieces on neighboring processors, matching the grid
// embeddings.
func linearCoordOf(pid int) int { return gray.Decode(pid) }

func linearProcOf(c int) int { return gray.Encode(c) }

// FromDense distributes a dense matrix onto grid g (host-side: no
// simulated communication; loading input data is outside the timed
// computation, as it was for the paper's experiments).
func FromDense(g embed.Grid, dm *serial.Mat, rkind, ckind embed.MapKind) (*Matrix, error) {
	a, err := NewMatrix(g, dm.R, dm.C, rkind, ckind)
	if err != nil {
		return nil, err
	}
	for i := 0; i < dm.R; i++ {
		gr, lr := a.RMap.CoordOf(i), a.RMap.LocalOf(i)
		for j := 0; j < dm.C; j++ {
			gc, lc := a.CMap.CoordOf(j), a.CMap.LocalOf(j)
			pid := g.ProcAt(gr, gc)
			a.L(pid)[lr*a.CMap.B+lc] = dm.At(i, j)
		}
	}
	return a, nil
}

// ToDense assembles the distributed matrix into a dense one
// (host-side). It panics on SPMD-local temporaries, which hold only
// one processor's block.
func (a *Matrix) ToDense() *serial.Mat {
	if a.isLocal {
		panic("core: ToDense on an SPMD-local matrix")
	}
	dm := serial.NewMat(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		gr, lr := a.RMap.CoordOf(i), a.RMap.LocalOf(i)
		for j := 0; j < a.Cols; j++ {
			gc, lc := a.CMap.CoordOf(j), a.CMap.LocalOf(j)
			pid := a.G.ProcAt(gr, gc)
			dm.Set(i, j, a.L(pid)[lr*a.CMap.B+lc])
		}
	}
	return dm
}

// VectorFromSlice distributes a dense vector (host-side). Layout,
// kind, home and replicated have the NewVector meanings.
func VectorFromSlice(g embed.Grid, x []float64, layout Layout, kind embed.MapKind, home int, replicated bool) (*Vector, error) {
	v, err := NewVector(g, len(x), layout, kind, home, replicated)
	if err != nil {
		return nil, err
	}
	for e, val := range x {
		c, l := v.Map.CoordOf(e), v.Map.LocalOf(e)
		for _, pid := range v.holders(c) {
			v.L(pid)[l] = val
		}
	}
	return v, nil
}

// holders returns the processors that store piece coordinate c.
func (v *Vector) holders(c int) []int {
	switch v.Layout {
	case Linear:
		return []int{linearProcOf(c)}
	case RowAligned:
		if v.Replicated {
			pids := make([]int, v.G.PRows())
			for gr := range pids {
				pids[gr] = v.G.ProcAt(gr, c)
			}
			return pids
		}
		return []int{v.G.ProcAt(v.Home, c)}
	default: // ColAligned
		if v.Replicated {
			pids := make([]int, v.G.PCols())
			for gc := range pids {
				pids[gc] = v.G.ProcAt(c, gc)
			}
			return pids
		}
		return []int{v.G.ProcAt(c, v.Home)}
	}
}

// ToSlice assembles the distributed vector into a dense slice
// (host-side), reading each piece from one holder. It panics on
// SPMD-local temporaries.
func (v *Vector) ToSlice() []float64 {
	if v.isLocal {
		panic("core: ToSlice on an SPMD-local vector")
	}
	out := make([]float64, v.N)
	for e := 0; e < v.N; e++ {
		c, l := v.Map.CoordOf(e), v.Map.LocalOf(e)
		out[e] = v.L(v.holders(c)[0])[l]
	}
	return out
}

// CheckReplicas verifies (host-side) that a replicated vector's copies
// agree across all holders; it returns an error naming the first
// mismatch. Tests use it to catch broken replication invariants.
func (v *Vector) CheckReplicas() error {
	if v.isLocal {
		return fmt.Errorf("core: CheckReplicas on an SPMD-local vector")
	}
	if !v.Replicated {
		return nil
	}
	for e := 0; e < v.N; e++ {
		c, l := v.Map.CoordOf(e), v.Map.LocalOf(e)
		hs := v.holders(c)
		want := v.L(hs[0])[l]
		for _, pid := range hs[1:] {
			if got := v.L(pid)[l]; got != want {
				return fmt.Errorf("core: replica mismatch at element %d: proc %d has %v, proc %d has %v",
					e, hs[0], want, pid, got)
			}
		}
	}
	return nil
}
