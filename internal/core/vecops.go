package core

import (
	"math"

	"vmprim/internal/collective"
	"vmprim/internal/embed"
)

// Higher-level vector operations composed from the primitives'
// machinery: inner products, scaled additions, norms and parallel
// prefix (scan). Iterative solvers (conjugate gradient, power method)
// are built from these plus the matrix primitives.

// DotVec returns the inner product of two co-located vectors,
// replicated on every processor: local partial products on the
// canonical holders, then a one-word all-reduce over the cube.
func (e *Env) DotVec(v, w *Vector) float64 {
	e.BeginSpan("dot")
	defer e.EndSpan()
	if !v.SameShape(w) {
		panic("core: DotVec shape mismatch")
	}
	pid := e.P.ID()
	acc := 0.0
	if v.HoldsData(pid) && w.HoldsData(pid) && e.isCanonicalHolder(v) {
		pv, pw := v.L(pid), w.L(pid)
		nv := v.Map.ValidCount(v.PieceCoord(pid))
		acc = dotSlices(pv[:nv], pw[:nv])
		e.P.Compute(2 * nv)
	}
	return e.allReduceScalar(acc, collective.Sum)
}

// Norm2Vec returns the Euclidean norm of v, replicated everywhere.
func (e *Env) Norm2Vec(v *Vector) float64 {
	return math.Sqrt(e.DotVec(v, v))
}

// NormInfVec returns the maximum magnitude of v, replicated
// everywhere.
func (e *Env) NormInfVec(v *Vector) float64 {
	e.BeginSpan("norm-inf")
	defer e.EndSpan()
	pid := e.P.ID()
	acc := 0.0
	if v.HoldsData(pid) && e.isCanonicalHolder(v) {
		pv := v.L(pid)
		nv := v.Map.ValidCount(v.PieceCoord(pid))
		for _, x := range pv[:nv] {
			if a := math.Abs(x); a > acc {
				acc = a
			}
		}
		e.P.Compute(nv)
	}
	return e.allReduceScalar(acc, collective.Max)
}

// AddScaledVec applies dst[g] += alpha * src[g] on the common holders
// (the AXPY of iterative solvers; 2 flops per element), fused into a
// monomorphic loop over the valid prefix.
func (e *Env) AddScaledVec(dst *Vector, alpha float64, src *Vector) {
	dp, sp, nv, ok := e.zipSlices(dst, src)
	if !ok {
		return
	}
	axpyInto(dp[:nv], sp[:nv], alpha)
	e.P.Compute(2 * nv)
}

// ScaleAddVec applies dst[g] = beta*dst[g] + src[g] (the p-update of
// conjugate gradient), fused like AddScaledVec.
func (e *Env) ScaleAddVec(dst *Vector, beta float64, src *Vector) {
	dp, sp, nv, ok := e.zipSlices(dst, src)
	if !ok {
		return
	}
	scaleAddInto(dp[:nv], sp[:nv], beta)
	e.P.Compute(2 * nv)
}

// ScanVec returns the inclusive prefix combination of v under op,
// in the same embedding as v (replicated copies scan consistently).
// The classic two-level algorithm: a local serial scan of each piece,
// a parallel prefix of the piece totals over the distribution
// dimensions, then a local fixup. For cyclic maps the "prefix" order
// is still global index order, which the algorithm handles by scanning
// over the owning coordinate sequence — only Block maps preserve
// contiguous piece ranges, so ScanVec requires a Block map.
func (e *Env) ScanVec(v *Vector, op Op) *Vector {
	e.BeginSpan("scan-vec")
	defer e.EndSpan()
	if v.Map.Kind != embed.Block {
		panic("core: ScanVec requires a block (consecutive) element map")
	}
	out := e.CopyVec(v)
	pid := e.P.ID()
	mask := e.scanMask(v)
	// Reserve the collective's tag on every processor before any
	// early return, so holder and non-holder tag sequences stay
	// synchronized for later collectives.
	tag := e.NextTag()
	//lint:allow collorder the early return is the non-holder exit: the holder subcube's collectives below exclude non-holders by mask, so the sequences never have to meet
	if !v.HoldsData(pid) {
		// Non-holders of a non-replicated aligned vector take no part:
		// the subcube collective below spans exactly the holder rows.
		//lint:allow spmdsym the AllGather below runs on the holder subcube only, which non-holders are not part of; the tag was reserved above to keep sequences aligned
		return out
	}
	pv := out.L(pid)
	c := v.PieceCoord(pid)
	// Local inclusive scan of the valid prefix, tracking the piece
	// total.
	nv := v.Map.ValidCount(c)
	total := scanSlice(op, pv[:nv])
	e.P.Compute(nv)
	if mask == 0 {
		return out
	}
	// Exclusive prefix of piece totals across the distribution
	// dimensions. Relative addresses within the holder subcube equal
	// the Gray encodings of the coordinates, so scan order must follow
	// coordinates, not relative addresses: run the scan keyed on the
	// coordinate by exchanging (coord, total) pairs... The collective
	// scan orders by relative address; remap by scanning over
	// Gray-decoded positions instead. AllGather the totals and fold
	// locally: for lg p pieces of one word this costs the same
	// k*(tau + small) as a scan and keeps coordinate order trivially.
	tbuf := e.P.GetBuf(1)
	tbuf[0] = total
	totals := collective.AllGather(e.P, mask, tag, tbuf)
	prefix := op.identity()
	for coord := 0; coord < c; coord++ {
		prefix = op.fold(prefix, totals[e.relOfCoord(v, coord)])
	}
	e.P.Recycle(totals)
	e.P.Recycle(tbuf)
	e.P.Compute(c)
	if c > 0 {
		foldScalarInto(op, pv[:nv], prefix)
		e.P.Compute(v.Map.B)
	}
	return out
}

// scanMask returns the cube-dimension mask over which v's pieces are
// distributed.
func (e *Env) scanMask(v *Vector) int {
	switch v.Layout {
	case Linear:
		return e.P.FullMask()
	case RowAligned:
		return e.G.ColMask()
	default:
		return e.G.RowMask()
	}
}

// relOfCoord returns the subcube-relative address of the piece with
// the given coordinate.
func (e *Env) relOfCoord(v *Vector, coord int) int {
	switch v.Layout {
	case Linear:
		return linearProcOf(coord)
	case RowAligned:
		return e.G.ColRel(coord)
	default:
		return e.G.RowRel(coord)
	}
}
