package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
	"vmprim/internal/serial"
)

// testGrids covers degenerate, tall, wide and square processor grids.
func testGrids(t *testing.T) []embed.Grid {
	t.Helper()
	var gs []embed.Grid
	for _, split := range [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 1}, {1, 2}, {2, 2}, {3, 0}, {0, 3}} {
		g, err := embed.NewGrid(split[0], split[1])
		if err != nil {
			t.Fatal(err)
		}
		gs = append(gs, g)
	}
	return gs
}

// spmd runs body on a fresh CM2-parameter machine matching g.
func spmd(t *testing.T, g embed.Grid, body func(e *Env)) {
	t.Helper()
	m := hypercube.MustNew(g.D, costmodel.CM2())
	if _, err := m.Run(func(p *hypercube.Proc) { body(NewEnv(p, g)) }); err != nil {
		t.Fatal(err)
	}
}

func randDense(rng *rand.Rand, r, c int) *serial.Mat {
	dm := serial.NewMat(r, c)
	for i := range dm.A {
		dm.A[i] = rng.NormFloat64()
	}
	return dm
}

func matEqual(t *testing.T, got, want *serial.Mat, tol float64, what string) {
	t.Helper()
	if got.R != want.R || got.C != want.C {
		t.Fatalf("%s: shape %dx%d, want %dx%d", what, got.R, got.C, want.R, want.C)
	}
	for i := 0; i < got.R; i++ {
		for j := 0; j < got.C; j++ {
			if math.Abs(got.At(i, j)-want.At(i, j)) > tol {
				t.Fatalf("%s: (%d,%d) = %v, want %v", what, i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}

func vecEqual(t *testing.T, got, want []float64, tol float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s: [%d] = %v, want %v", what, i, got[i], want[i])
		}
	}
}

func TestFromDenseToDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range testGrids(t) {
		for _, kind := range []embed.MapKind{embed.Block, embed.Cyclic} {
			for _, shape := range [][2]int{{1, 1}, {4, 4}, {5, 7}, {8, 3}, {13, 13}} {
				dm := randDense(rng, shape[0], shape[1])
				a, err := FromDense(g, dm, kind, kind)
				if err != nil {
					t.Fatal(err)
				}
				matEqual(t, a.ToDense(), dm, 0, "round trip")
			}
		}
	}
}

func TestVectorFromSliceToSliceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, g := range testGrids(t) {
		for _, layout := range []Layout{Linear, RowAligned, ColAligned} {
			for _, n := range []int{1, 3, 8, 17} {
				x := make([]float64, n)
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				for _, repl := range []bool{false, true} {
					if layout == Linear && repl {
						continue
					}
					v, err := VectorFromSlice(g, x, layout, embed.Block, 0, repl)
					if err != nil {
						t.Fatal(err)
					}
					vecEqual(t, v.ToSlice(), x, 0, "vector round trip")
					if err := v.CheckReplicas(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
}

func TestExtractRowValues(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, g := range testGrids(t) {
		for _, kind := range []embed.MapKind{embed.Block, embed.Cyclic} {
			dm := randDense(rng, 9, 6)
			a, _ := FromDense(g, dm, kind, kind)
			for _, i := range []int{0, 4, 8} {
				for _, repl := range []bool{false, true} {
					out, _ := NewVector(g, 6, RowAligned, kind, a.RMap.CoordOf(i), repl)
					spmd(t, g, func(e *Env) {
						v := e.ExtractRow(a, i, repl)
						e.StoreVec(out, v)
					})
					vecEqual(t, out.ToSlice(), dm.Row(i), 0, "ExtractRow")
					if err := out.CheckReplicas(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
}

func TestExtractColValues(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, g := range testGrids(t) {
		for _, kind := range []embed.MapKind{embed.Block, embed.Cyclic} {
			dm := randDense(rng, 6, 9)
			a, _ := FromDense(g, dm, kind, kind)
			for _, j := range []int{0, 5, 8} {
				for _, repl := range []bool{false, true} {
					out, _ := NewVector(g, 6, ColAligned, kind, a.CMap.CoordOf(j), repl)
					spmd(t, g, func(e *Env) {
						v := e.ExtractCol(a, j, repl)
						e.StoreVec(out, v)
					})
					vecEqual(t, out.ToSlice(), dm.Col(j), 0, "ExtractCol")
				}
			}
		}
	}
}

func TestInsertRowAllHomes(t *testing.T) {
	// Insert a row-aligned vector homed on every possible grid row
	// into every matrix row: exercises the implicit home-to-owner
	// moves.
	rng := rand.New(rand.NewSource(5))
	for _, g := range testGrids(t) {
		dm := randDense(rng, 5, 6)
		x := make([]float64, 6)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for home := 0; home < g.PRows(); home++ {
			for i := 0; i < 5; i++ {
				a, _ := FromDense(g, dm, embed.Block, embed.Block)
				v, _ := VectorFromSlice(g, x, RowAligned, embed.Block, home, false)
				spmd(t, g, func(e *Env) {
					e.InsertRow(a, v, i)
				})
				want := dm.Clone()
				want.SetRow(i, x)
				matEqual(t, a.ToDense(), want, 0, "InsertRow")
			}
		}
	}
}

func TestInsertColAllHomes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, g := range testGrids(t) {
		dm := randDense(rng, 6, 5)
		x := make([]float64, 6)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for home := 0; home < g.PCols(); home++ {
			for j := 0; j < 5; j++ {
				a, _ := FromDense(g, dm, embed.Block, embed.Block)
				v, _ := VectorFromSlice(g, x, ColAligned, embed.Block, home, false)
				spmd(t, g, func(e *Env) {
					e.InsertCol(a, v, j)
				})
				want := dm.Clone()
				want.SetCol(j, x)
				matEqual(t, a.ToDense(), want, 0, "InsertCol")
			}
		}
	}
}

func TestExtractInsertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, g := range testGrids(t) {
		dm := randDense(rng, 7, 7)
		a, _ := FromDense(g, dm, embed.Cyclic, embed.Block)
		spmd(t, g, func(e *Env) {
			// Move row 2 into row 5 via extract/insert.
			v := e.ExtractRow(a, 2, false)
			e.InsertRow(a, v, 5)
		})
		want := dm.Clone()
		want.SetRow(5, dm.Row(2))
		matEqual(t, a.ToDense(), want, 0, "extract/insert")
	}
}

func TestSwapRows(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, g := range testGrids(t) {
		for _, kind := range []embed.MapKind{embed.Block, embed.Cyclic} {
			dm := randDense(rng, 9, 5)
			a, _ := FromDense(g, dm, kind, kind)
			spmd(t, g, func(e *Env) {
				e.SwapRows(a, 1, 7)
				e.SwapRows(a, 3, 3) // no-op
			})
			want := dm.Clone()
			want.SetRow(1, dm.Row(7))
			want.SetRow(7, dm.Row(1))
			matEqual(t, a.ToDense(), want, 0, "SwapRows")
		}
	}
}

func TestElemAtAndSetElem(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, g := range testGrids(t) {
		dm := randDense(rng, 6, 7)
		a, _ := FromDense(g, dm, embed.Block, embed.Cyclic)
		got := make([][]float64, g.P())
		spmd(t, g, func(e *Env) {
			got[e.P.ID()] = []float64{e.ElemAt(a, 3, 4)}
			e.SetElem(a, 3, 4, 42)
			got[e.P.ID()] = append(got[e.P.ID()], e.ElemAt(a, 3, 4))
		})
		for pid := 0; pid < g.P(); pid++ {
			if got[pid][0] != dm.At(3, 4) {
				t.Fatalf("proc %d ElemAt = %v, want %v", pid, got[pid][0], dm.At(3, 4))
			}
			if got[pid][1] != 42 {
				t.Fatalf("proc %d after SetElem = %v", pid, got[pid][1])
			}
		}
	}
}

func TestVecElemAt(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, g := range testGrids(t) {
		x := make([]float64, 9)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for _, layout := range []Layout{Linear, RowAligned, ColAligned} {
			for _, repl := range []bool{false, true} {
				if layout == Linear && repl {
					continue
				}
				v, _ := VectorFromSlice(g, x, layout, embed.Block, 0, repl)
				got := make([]float64, g.P())
				spmd(t, g, func(e *Env) {
					got[e.P.ID()] = e.VecElemAt(v, 5)
				})
				for pid := 0; pid < g.P(); pid++ {
					if got[pid] != x[5] {
						t.Fatalf("%v repl=%v proc %d: %v, want %v", layout, repl, pid, got[pid], x[5])
					}
				}
			}
		}
	}
}

func TestDistributeReplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, g := range testGrids(t) {
		x := make([]float64, 7)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for home := 0; home < g.PRows(); home++ {
			v, _ := VectorFromSlice(g, x, RowAligned, embed.Block, home, false)
			out, _ := NewVector(g, 7, RowAligned, embed.Block, home, true)
			spmd(t, g, func(e *Env) {
				e.StoreVec(out, e.Distribute(v))
			})
			vecEqual(t, out.ToSlice(), x, 0, "Distribute")
			if err := out.CheckReplicas(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestDistributeColAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, g := range testGrids(t) {
		x := make([]float64, 6)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for home := 0; home < g.PCols(); home++ {
			v, _ := VectorFromSlice(g, x, ColAligned, embed.Cyclic, home, false)
			out, _ := NewVector(g, 6, ColAligned, embed.Cyclic, home, true)
			spmd(t, g, func(e *Env) {
				e.StoreVec(out, e.Distribute(v))
			})
			vecEqual(t, out.ToSlice(), x, 0, "Distribute col")
			if err := out.CheckReplicas(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSpreadRows(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, g := range testGrids(t) {
		x := make([]float64, 5)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		v, _ := VectorFromSlice(g, x, RowAligned, embed.Block, 0, false)
		out, _ := NewMatrix(g, 6, 5, embed.Block, embed.Block)
		spmd(t, g, func(e *Env) {
			e.StoreMatrix(out, e.SpreadRows(v, 6, embed.Block))
		})
		want := serial.NewMat(6, 5)
		for i := 0; i < 6; i++ {
			want.SetRow(i, x)
		}
		matEqual(t, out.ToDense(), want, 0, "SpreadRows")
	}
}

func TestSpreadCols(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, g := range testGrids(t) {
		x := make([]float64, 6)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		v, _ := VectorFromSlice(g, x, ColAligned, embed.Block, 0, false)
		out, _ := NewMatrix(g, 6, 5, embed.Block, embed.Block)
		spmd(t, g, func(e *Env) {
			e.StoreMatrix(out, e.SpreadCols(v, 5, embed.Block))
		})
		want := serial.NewMat(6, 5)
		for j := 0; j < 5; j++ {
			want.SetCol(j, x)
		}
		matEqual(t, out.ToDense(), want, 0, "SpreadCols")
	}
}

func TestMapRangeRestriction(t *testing.T) {
	for _, g := range testGrids(t) {
		dm := serial.NewMat(6, 6)
		a, _ := FromDense(g, dm, embed.Block, embed.Block)
		spmd(t, g, func(e *Env) {
			e.MapRange(a, 2, 5, 1, 4, func(i, j int, v float64) float64 {
				return float64(10*i + j)
			}, 1)
		})
		got := a.ToDense()
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				want := 0.0
				if i >= 2 && i < 5 && j >= 1 && j < 4 {
					want = float64(10*i + j)
				}
				if got.At(i, j) != want {
					t.Fatalf("(%d,%d) = %v, want %v", i, j, got.At(i, j), want)
				}
			}
		}
	}
}

func TestZipMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, g := range testGrids(t) {
		d1 := randDense(rng, 5, 7)
		d2 := randDense(rng, 5, 7)
		a, _ := FromDense(g, d1, embed.Cyclic, embed.Cyclic)
		b, _ := FromDense(g, d2, embed.Cyclic, embed.Cyclic)
		spmd(t, g, func(e *Env) {
			e.ZipMatrix(a, b, func(x, y float64) float64 { return x * y }, 1)
		})
		want := serial.NewMat(5, 7)
		for i := range want.A {
			want.A[i] = d1.A[i] * d2.A[i]
		}
		matEqual(t, a.ToDense(), want, 1e-15, "ZipMatrix")
	}
}

func TestUpdateOuter(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, g := range testGrids(t) {
		for _, kind := range []embed.MapKind{embed.Block, embed.Cyclic} {
			dm := randDense(rng, 7, 6)
			cvals := make([]float64, 7)
			rvals := make([]float64, 6)
			for i := range cvals {
				cvals[i] = rng.NormFloat64()
			}
			for i := range rvals {
				rvals[i] = rng.NormFloat64()
			}
			a, _ := FromDense(g, dm, kind, kind)
			cv, _ := VectorFromSlice(g, cvals, ColAligned, kind, 0, true)
			rv, _ := VectorFromSlice(g, rvals, RowAligned, kind, 0, true)
			rlo, rhi, clo, chi := 1, 6, 2, 5
			spmd(t, g, func(e *Env) {
				e.UpdateOuter(a, cv, rv, rlo, rhi, clo, chi,
					func(aij, ci, rj float64) float64 { return aij - ci*rj }, 2)
			})
			want := dm.Clone()
			for i := rlo; i < rhi; i++ {
				for j := clo; j < chi; j++ {
					want.Set(i, j, dm.At(i, j)-cvals[i]*rvals[j])
				}
			}
			matEqual(t, a.ToDense(), want, 1e-14, "UpdateOuter")
		}
	}
}

func TestUpdateOuterRequiresReplication(t *testing.T) {
	g, _ := embed.NewGrid(1, 1)
	a, _ := NewMatrix(g, 4, 4, embed.Block, embed.Block)
	cv, _ := NewVector(g, 4, ColAligned, embed.Block, 0, false)
	rv, _ := NewVector(g, 4, RowAligned, embed.Block, 0, true)
	m := hypercube.MustNew(g.D, costmodel.CM2())
	m.SetRecvTimeout(2e9)
	_, err := m.Run(func(p *hypercube.Proc) {
		e := NewEnv(p, g)
		e.UpdateOuter(a, cv, rv, 0, 4, 0, 4, func(x, c, r float64) float64 { return x }, 1)
	})
	if err == nil || !strings.Contains(err.Error(), "replicated") {
		t.Fatalf("err = %v", err)
	}
}

func TestMapAndZipVec(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, g := range testGrids(t) {
		x := make([]float64, 8)
		y := make([]float64, 8)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		vx, _ := VectorFromSlice(g, x, ColAligned, embed.Block, 0, true)
		vy, _ := VectorFromSlice(g, y, ColAligned, embed.Block, 0, true)
		spmd(t, g, func(e *Env) {
			e.MapVec(vx, func(gi int, v float64) float64 { return v * 2 }, 1)
			e.ZipVec(vx, vy, func(a, b float64) float64 { return a + b }, 1)
		})
		want := make([]float64, 8)
		for i := range want {
			want[i] = 2*x[i] + y[i]
		}
		vecEqual(t, vx.ToSlice(), want, 1e-15, "MapVec+ZipVec")
		if err := vx.CheckReplicas(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCopyMatrixAndVecAreDeep(t *testing.T) {
	g, _ := embed.NewGrid(1, 1)
	dm := serial.FromRows([][]float64{{1, 2}, {3, 4}})
	a, _ := FromDense(g, dm, embed.Block, embed.Block)
	out, _ := NewMatrix(g, 2, 2, embed.Block, embed.Block)
	spmd(t, g, func(e *Env) {
		cp := e.CopyMatrix(a)
		e.MapMatrix(cp, func(i, j int, v float64) float64 { return v + 100 }, 1)
		e.StoreMatrix(out, cp)
	})
	matEqual(t, a.ToDense(), dm, 0, "original unchanged")
	want := dm.Clone()
	for i := range want.A {
		want.A[i] += 100
	}
	matEqual(t, out.ToDense(), want, 0, "copy modified")
}

func TestEnvValidatesGrid(t *testing.T) {
	g, _ := embed.NewGrid(1, 1)
	m := hypercube.MustNew(3, costmodel.CM2()) // dim 3 != grid dim 2
	_, err := m.Run(func(p *hypercube.Proc) { NewEnv(p, g) })
	if err == nil {
		t.Fatal("mismatched grid accepted")
	}
}

func TestHostAccessorsRejectLocalHandles(t *testing.T) {
	g, _ := embed.NewGrid(0, 0)
	var tempM *Matrix
	var tempV *Vector
	spmd(t, g, func(e *Env) {
		tempM = e.TempMatrix(2, 2, embed.Block, embed.Block)
		tempV = e.TempVector(2, Linear, embed.Block, 0, false)
	})
	for _, f := range []func(){
		func() { tempM.ToDense() },
		func() { tempV.ToSlice() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("local handle accepted by host accessor")
				}
			}()
			f()
		}()
	}
	if err := tempV.CheckReplicas(); err == nil {
		t.Fatal("CheckReplicas accepted local handle")
	}
}

func TestAxisAndLayoutStrings(t *testing.T) {
	if Rows.String() != "rows" || Cols.String() != "cols" {
		t.Fatal("Axis strings")
	}
	if Linear.String() != "linear" || RowAligned.String() != "row-aligned" || ColAligned.String() != "col-aligned" {
		t.Fatal("Layout strings")
	}
	if Layout(9).String() == "" {
		t.Fatal("unknown layout string")
	}
}

func TestOpStringsAndFolds(t *testing.T) {
	if OpSum.String() != "sum" || OpMax.String() != "max" || OpMin.String() != "min" {
		t.Fatal("Op strings")
	}
	if LocMax.String() != "maxloc" || LocMin.String() != "minloc" || LocMaxAbs.String() != "maxabsloc" {
		t.Fatal("LocOp strings")
	}
	if OpSum.fold(2, 3) != 5 || OpMax.fold(2, 3) != 3 || OpMin.fold(2, 3) != 2 {
		t.Fatal("folds")
	}
	if OpSum.identity() != 0 || !math.IsInf(OpMax.identity(), -1) || !math.IsInf(OpMin.identity(), 1) {
		t.Fatal("identities")
	}
	if LocMaxAbs.value(-3) != 3 || LocMax.value(-3) != -3 {
		t.Fatal("LocOp value transform")
	}
}
