// Package serial provides single-processor reference implementations
// of the dense linear-algebra operations and the three application
// algorithms of the SPAA 1989 paper. They serve two roles: ground
// truth for the correctness tests of the distributed primitives and
// applications, and the T_serial denominator in the processor-time
// product (work-efficiency) experiments E2 and F2.
package serial

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix.
type Mat struct {
	R, C int
	A    []float64 // len R*C, element (i,j) at A[i*C+j]
}

// NewMat returns a zero R x C matrix.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("serial: invalid shape %dx%d", r, c))
	}
	return &Mat{R: r, C: c, A: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices (all equal length).
func FromRows(rows [][]float64) *Mat {
	r := len(rows)
	if r == 0 {
		return NewMat(0, 0)
	}
	c := len(rows[0])
	m := NewMat(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("serial: ragged rows")
		}
		copy(m.A[i*c:], row)
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.A[i*m.C+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.A[i*m.C+j] = v }

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.R, m.C)
	copy(c.A, m.A)
	return c
}

// Row returns a copy of row i.
func (m *Mat) Row(i int) []float64 {
	out := make([]float64, m.C)
	copy(out, m.A[i*m.C:(i+1)*m.C])
	return out
}

// Col returns a copy of column j.
func (m *Mat) Col(j int) []float64 {
	out := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// SetRow assigns row i from v.
func (m *Mat) SetRow(i int, v []float64) {
	if len(v) != m.C {
		panic("serial: SetRow length mismatch")
	}
	copy(m.A[i*m.C:], v)
}

// SetCol assigns column j from v.
func (m *Mat) SetCol(j int, v []float64) {
	if len(v) != m.R {
		panic("serial: SetCol length mismatch")
	}
	for i := 0; i < m.R; i++ {
		m.Set(i, j, v[i])
	}
}

// VecMatMul returns y = x*A (x length R, y length C): the paper's
// vector-matrix multiply.
func VecMatMul(x []float64, a *Mat) []float64 {
	if len(x) != a.R {
		panic(fmt.Sprintf("serial: VecMatMul length %d vs %d rows", len(x), a.R))
	}
	y := make([]float64, a.C)
	for i := 0; i < a.R; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.A[i*a.C : (i+1)*a.C]
		for j, v := range row {
			y[j] += xi * v
		}
	}
	return y
}

// MatVecMul returns y = A*x (x length C, y length R).
func MatVecMul(a *Mat, x []float64) []float64 {
	if len(x) != a.C {
		panic(fmt.Sprintf("serial: MatVecMul length %d vs %d cols", len(x), a.C))
	}
	y := make([]float64, a.R)
	for i := 0; i < a.R; i++ {
		row := a.A[i*a.C : (i+1)*a.C]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MatMul returns the product A*B.
func MatMul(a, b *Mat) *Mat {
	if a.C != b.R {
		panic("serial: MatMul shape mismatch")
	}
	out := NewMat(a.R, b.C)
	for i := 0; i < a.R; i++ {
		for k := 0; k < a.C; k++ {
			v := a.At(i, k)
			if v == 0 {
				continue
			}
			brow := b.A[k*b.C : (k+1)*b.C]
			orow := out.A[i*out.C : (i+1)*out.C]
			for j := range brow {
				orow[j] += v * brow[j]
			}
		}
	}
	return out
}

// Transpose returns A^T.
func (m *Mat) Transpose() *Mat {
	t := NewMat(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum-magnitude entry of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Residual returns A*x - b.
func Residual(a *Mat, x, b []float64) []float64 {
	ax := MatVecMul(a, x)
	r := make([]float64, len(b))
	for i := range b {
		r[i] = ax[i] - b[i]
	}
	return r
}

// GaussSolve solves A*x = b by Gaussian elimination with partial
// pivoting followed by back substitution. A and b are not modified.
// It returns an error if the matrix is numerically singular.
func GaussSolve(a *Mat, b []float64) ([]float64, error) {
	if a.R != a.C {
		return nil, fmt.Errorf("serial: GaussSolve needs a square matrix, got %dx%d", a.R, a.C)
	}
	if len(b) != a.R {
		return nil, fmt.Errorf("serial: GaussSolve rhs length %d, want %d", len(b), a.R)
	}
	n := a.R
	// Work on the augmented matrix [A | b].
	w := NewMat(n, n+1)
	for i := 0; i < n; i++ {
		copy(w.A[i*(n+1):], a.A[i*n:(i+1)*n])
		w.Set(i, n, b[i])
	}
	for k := 0; k < n; k++ {
		// Partial pivot: max |w[i][k]| over i >= k, smallest i on ties.
		piv, pivAbs := k, math.Abs(w.At(k, k))
		for i := k + 1; i < n; i++ {
			if ab := math.Abs(w.At(i, k)); ab > pivAbs {
				piv, pivAbs = i, ab
			}
		}
		if pivAbs == 0 {
			return nil, fmt.Errorf("serial: singular matrix at step %d", k)
		}
		if piv != k {
			for j := 0; j <= n; j++ {
				w.A[k*(n+1)+j], w.A[piv*(n+1)+j] = w.A[piv*(n+1)+j], w.A[k*(n+1)+j]
			}
		}
		// Eliminate below the pivot with a rank-1 update.
		inv := 1 / w.At(k, k)
		for i := k + 1; i < n; i++ {
			f := w.At(i, k) * inv
			if f == 0 {
				continue
			}
			for j := k; j <= n; j++ {
				w.Set(i, j, w.At(i, j)-f*w.At(k, j))
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := w.At(i, n)
		for j := i + 1; j < n; j++ {
			s -= w.At(i, j) * x[j]
		}
		x[i] = s / w.At(i, i)
	}
	return x, nil
}

// ForwardEliminate performs in-place Gaussian elimination with partial
// pivoting on the augmented matrix w (R rows, C >= R columns: extra
// columns are right-hand sides), reducing it to upper-triangular form.
// It returns the row permutation applied (perm[k] = original index of
// the row now in position k) so that distributed implementations can
// be compared step by step. It is the serial twin of the parallel
// elimination in internal/apps.
func ForwardEliminate(w *Mat) ([]int, error) {
	n := w.R
	if w.C < n {
		return nil, fmt.Errorf("serial: ForwardEliminate needs C >= R")
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		piv, pivAbs := k, math.Abs(w.At(k, k))
		for i := k + 1; i < n; i++ {
			if ab := math.Abs(w.At(i, k)); ab > pivAbs {
				piv, pivAbs = i, ab
			}
		}
		if pivAbs == 0 {
			return nil, fmt.Errorf("serial: singular matrix at step %d", k)
		}
		if piv != k {
			for j := 0; j < w.C; j++ {
				w.A[k*w.C+j], w.A[piv*w.C+j] = w.A[piv*w.C+j], w.A[k*w.C+j]
			}
			perm[k], perm[piv] = perm[piv], perm[k]
		}
		inv := 1 / w.At(k, k)
		for i := k + 1; i < n; i++ {
			f := w.At(i, k) * inv
			if f == 0 {
				continue
			}
			for j := k; j < w.C; j++ {
				w.Set(i, j, w.At(i, j)-f*w.At(k, j))
			}
		}
	}
	return perm, nil
}

// BackSubstitute solves the upper-triangular system left in w by
// ForwardEliminate, for the single right-hand side in column n.
func BackSubstitute(w *Mat) []float64 {
	n := w.R
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := w.At(i, n)
		for j := i + 1; j < n; j++ {
			s -= w.At(i, j) * x[j]
		}
		x[i] = s / w.At(i, i)
	}
	return x
}

// Determinant computes det(A) by Gaussian elimination with partial
// pivoting: the product of the pivots, negated once per row swap.
func Determinant(a *Mat) (float64, error) {
	if a.R != a.C {
		return 0, fmt.Errorf("serial: Determinant needs a square matrix, got %dx%d", a.R, a.C)
	}
	n := a.R
	w := a.Clone()
	det := 1.0
	for k := 0; k < n; k++ {
		piv, pivAbs := k, math.Abs(w.At(k, k))
		for i := k + 1; i < n; i++ {
			if ab := math.Abs(w.At(i, k)); ab > pivAbs {
				piv, pivAbs = i, ab
			}
		}
		if pivAbs == 0 {
			return 0, nil // singular: determinant is exactly zero
		}
		if piv != k {
			for j := 0; j < n; j++ {
				w.A[k*n+j], w.A[piv*n+j] = w.A[piv*n+j], w.A[k*n+j]
			}
			det = -det
		}
		pivot := w.At(k, k)
		det *= pivot
		inv := 1 / pivot
		for i := k + 1; i < n; i++ {
			f := w.At(i, k) * inv
			if f == 0 {
				continue
			}
			for j := k; j < n; j++ {
				w.Set(i, j, w.At(i, j)-f*w.At(k, j))
			}
		}
	}
	return det, nil
}

// SolveTridiag solves the tridiagonal system
//
//	a[i]*x[i-1] + b[i]*x[i] + c[i]*x[i+1] = d[i]
//
// (a[0] and c[n-1] ignored) by the Thomas algorithm. It returns an
// error if a pivot vanishes (the algorithm does not pivot; diagonally
// dominant systems are safe). Inputs are not modified.
func SolveTridiag(a, b, c, d []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n || len(c) != n || len(d) != n {
		return nil, fmt.Errorf("serial: SolveTridiag band lengths %d/%d/%d/%d", len(a), len(b), len(c), len(d))
	}
	if n == 0 {
		return nil, nil
	}
	cp := make([]float64, n)
	dp := make([]float64, n)
	if b[0] == 0 {
		return nil, fmt.Errorf("serial: zero pivot at row 0")
	}
	cp[0] = c[0] / b[0]
	dp[0] = d[0] / b[0]
	for i := 1; i < n; i++ {
		den := b[i] - a[i]*cp[i-1]
		if den == 0 {
			return nil, fmt.Errorf("serial: zero pivot at row %d", i)
		}
		cp[i] = c[i] / den
		dp[i] = (d[i] - a[i]*dp[i-1]) / den
	}
	x := make([]float64, n)
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return x, nil
}
