package serial

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimplexTextbook(t *testing.T) {
	// maximize 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
	// Optimum: x=2, y=6, z=36 (classic Dantzig example).
	a := FromRows([][]float64{{1, 0}, {0, 2}, {3, 2}})
	res, err := SolveLP([]float64{3, 5}, a, []float64{4, 12, 18}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.Z-36) > 1e-9 || math.Abs(res.X[0]-2) > 1e-9 || math.Abs(res.X[1]-6) > 1e-9 {
		t.Fatalf("z=%v x=%v", res.Z, res.X)
	}
}

func TestSimplexProductionPlanning(t *testing.T) {
	// maximize 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6.
	// Optimum: x=3, y=1.5, z=21.
	a := FromRows([][]float64{{6, 4}, {1, 2}})
	res, err := SolveLP([]float64{5, 4}, a, []float64{24, 6}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Z-21) > 1e-9 {
		t.Fatalf("status %v z=%v x=%v", res.Status, res.Z, res.X)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	// maximize x with only -x <= 1: no upper bound on x.
	a := FromRows([][]float64{{-1}})
	res, err := SolveLP([]float64{1}, a, []float64{1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", res.Status)
	}
}

func TestSimplexAlreadyOptimal(t *testing.T) {
	// maximize -x - y: origin is optimal, zero iterations.
	a := FromRows([][]float64{{1, 1}})
	res, err := SolveLP([]float64{-1, -1}, a, []float64{5}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || res.Iterations != 0 || res.Z != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSimplexIterLimit(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 2}, {3, 2}})
	res, err := SolveLP([]float64{3, 5}, a, []float64{4, 12, 18}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != IterLimit {
		t.Fatalf("status %v, want iteration limit", res.Status)
	}
}

func TestNewTableauValidation(t *testing.T) {
	a := NewMat(2, 2)
	if _, err := NewTableau([]float64{1}, a, []float64{1, 1}); err == nil {
		t.Fatal("bad c accepted")
	}
	if _, err := NewTableau([]float64{1, 1}, a, []float64{1}); err == nil {
		t.Fatal("bad b accepted")
	}
	if _, err := NewTableau([]float64{1, 1}, a, []float64{1, -1}); err == nil {
		t.Fatal("negative rhs accepted")
	}
}

func TestSimplexSolutionsAreFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		m := 1 + rng.Intn(8)
		n := 1 + rng.Intn(8)
		a := NewMat(m, n)
		for i := range a.A {
			a.A[i] = rng.Float64()*4 - 1 // mostly positive coefficients
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.Float64() * 10
		}
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.Float64()*2 - 0.5
		}
		res, err := SolveLP(c, a, b, 500)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Optimal {
			continue // unbounded instances are fine, nothing to check
		}
		// Feasibility: A x <= b + eps, x >= -eps.
		ax := MatVecMul(a, res.X)
		for i := range ax {
			if ax[i] > b[i]+1e-7 {
				t.Fatalf("trial %d: constraint %d violated: %v > %v", trial, i, ax[i], b[i])
			}
		}
		z := 0.0
		for j := range c {
			if res.X[j] < -1e-9 {
				t.Fatalf("trial %d: x[%d] = %v < 0", trial, j, res.X[j])
			}
			z += c[j] * res.X[j]
		}
		if math.Abs(z-res.Z) > 1e-6 {
			t.Fatalf("trial %d: reported z=%v but c.x=%v", trial, res.Z, z)
		}
	}
}

func TestSimplexOptimalityAgainstVertexEnumeration(t *testing.T) {
	// For tiny LPs, check against brute-force enumeration of basic
	// feasible solutions (all vertex candidates of the polytope).
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		// 2 variables, 3 constraints: vertices are intersections of
		// constraint/axis pairs.
		a := NewMat(3, 2)
		for i := range a.A {
			a.A[i] = rng.Float64()*3 + 0.1 // positive: bounded feasible region
		}
		b := []float64{rng.Float64()*5 + 1, rng.Float64()*5 + 1, rng.Float64()*5 + 1}
		c := []float64{rng.Float64()*2 + 0.1, rng.Float64()*2 + 0.1}
		res, err := SolveLP(c, a, b, 200)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v (bounded LP)", trial, res.Status)
		}
		best := bruteForce2D(c, a, b)
		if math.Abs(res.Z-best) > 1e-6 {
			t.Fatalf("trial %d: simplex z=%v, brute force %v", trial, res.Z, best)
		}
	}
}

// bruteForce2D maximizes c.x over {x >= 0, Ax <= b} for 2-variable LPs
// by enumerating all pairwise intersections of the constraint lines
// and axes and keeping the best feasible point.
func bruteForce2D(c []float64, a *Mat, b []float64) float64 {
	// Build line list: each constraint row and the two axes.
	type line struct{ p, q, r float64 } // p*x + q*y = r
	var lines []line
	for i := 0; i < a.R; i++ {
		lines = append(lines, line{a.At(i, 0), a.At(i, 1), b[i]})
	}
	lines = append(lines, line{1, 0, 0}, line{0, 1, 0})
	feasible := func(x, y float64) bool {
		if x < -1e-9 || y < -1e-9 {
			return false
		}
		for i := 0; i < a.R; i++ {
			if a.At(i, 0)*x+a.At(i, 1)*y > b[i]+1e-9 {
				return false
			}
		}
		return true
	}
	best := math.Inf(-1)
	consider := func(x, y float64) {
		if feasible(x, y) {
			if z := c[0]*x + c[1]*y; z > best {
				best = z
			}
		}
	}
	consider(0, 0)
	for i := 0; i < len(lines); i++ {
		for j := i + 1; j < len(lines); j++ {
			l1, l2 := lines[i], lines[j]
			det := l1.p*l2.q - l2.p*l1.q
			if math.Abs(det) < 1e-12 {
				continue
			}
			x := (l1.r*l2.q - l2.r*l1.q) / det
			y := (l1.p*l2.r - l2.p*l1.r) / det
			consider(x, y)
		}
	}
	return best
}

func TestLPStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Unbounded.String() != "unbounded" || IterLimit.String() != "iteration limit" {
		t.Fatal("status strings")
	}
	if LPStatus(9).String() == "" {
		t.Fatal("unknown status string empty")
	}
}

func TestPivotColumnRowHelpers(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 2}, {3, 2}})
	tab, err := NewTableau([]float64{3, 5}, a, []float64{4, 12, 18})
	if err != nil {
		t.Fatal(err)
	}
	jc := PivotColumn(tab)
	if jc != 1 { // -5 is the most negative objective coefficient
		t.Fatalf("PivotColumn = %d, want 1", jc)
	}
	ir := PivotRow(tab, jc)
	if ir != 1 { // ratios: inf, 12/2=6, 18/2=9 -> row 1
		t.Fatalf("PivotRow = %d, want 1", ir)
	}
	Pivot(tab, ir, jc)
	if math.Abs(tab.At(1, 1)-1) > 1e-12 {
		t.Fatal("pivot row not normalized")
	}
	for i := 0; i < tab.R; i++ {
		if i != ir && math.Abs(tab.At(i, jc)) > 1e-12 {
			t.Fatalf("column %d not cleared at row %d", jc, i)
		}
	}
}

func TestSolveLPBlandTextbook(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, 2}, {3, 2}})
	res, err := SolveLPBland([]float64{3, 5}, a, []float64{4, 12, 18}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Z-36) > 1e-9 {
		t.Fatalf("res = %+v", res)
	}
}

func TestSolveLPBlandUnbounded(t *testing.T) {
	a := FromRows([][]float64{{-1}})
	res, err := SolveLPBland([]float64{1}, a, []float64{1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Fatalf("status %v", res.Status)
	}
}

func TestBlandMatchesDantzigObjectiveOnRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		m := 1 + rng.Intn(7)
		n := 1 + rng.Intn(7)
		a := NewMat(m, n)
		for i := range a.A {
			a.A[i] = rng.Float64()*3 + 0.1
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.Float64()*8 + 1
		}
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.Float64()*2 + 0.1
		}
		d, err := SolveLP(c, a, b, 500)
		if err != nil {
			t.Fatal(err)
		}
		bl, err := SolveLPBland(c, a, b, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if d.Status != Optimal || bl.Status != Optimal {
			t.Fatalf("trial %d: statuses %v / %v", trial, d.Status, bl.Status)
		}
		if math.Abs(d.Z-bl.Z) > 1e-7 {
			t.Fatalf("trial %d: z %v vs %v", trial, d.Z, bl.Z)
		}
	}
}
