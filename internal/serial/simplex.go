package serial

import (
	"fmt"
	"math"
)

// LPStatus reports the outcome of a simplex solve.
type LPStatus int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal LPStatus = iota
	// Unbounded means the objective is unbounded above.
	Unbounded
	// IterLimit means the iteration cap was hit before optimality.
	IterLimit
)

// String returns the status name.
func (s LPStatus) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	default:
		return fmt.Sprintf("LPStatus(%d)", int(s))
	}
}

// LPResult is the outcome of a simplex solve.
type LPResult struct {
	Status LPStatus
	// X is the primal solution over the original (non-slack) variables.
	X []float64
	// Z is the objective value c^T X.
	Z float64
	// Iterations is the number of pivots performed.
	Iterations int
}

// The pivot rule shared by the serial and distributed simplex:
// entering column = most negative objective-row coefficient (Dantzig),
// ties to the smallest index; leaving row = minimum ratio, ties to the
// smallest index. Identical rules make the two implementations follow
// identical pivot sequences, so tests can compare them exactly.
const pivotEps = 1e-9

// NewTableau builds the initial dense simplex tableau for
//
//	maximize c^T x  subject to  A x <= b,  x >= 0,  b >= 0
//
// with slack variables forming the initial basis. The tableau has
// m+1 rows and n+m+1 columns: constraint rows [A | I | b] and the
// objective row [-c | 0 | 0]. b must be nonnegative (the generator in
// internal/bench only produces such LPs; two-phase initialization is
// out of scope for the reproduction, as it was for the paper's
// timing experiments).
func NewTableau(c []float64, a *Mat, b []float64) (*Mat, error) {
	m, n := a.R, a.C
	if len(c) != n {
		return nil, fmt.Errorf("serial: objective length %d, want %d", len(c), n)
	}
	if len(b) != m {
		return nil, fmt.Errorf("serial: rhs length %d, want %d", len(b), m)
	}
	for i, v := range b {
		if v < 0 {
			return nil, fmt.Errorf("serial: rhs[%d] = %v < 0 (needs two-phase)", i, v)
		}
	}
	t := NewMat(m+1, n+m+1)
	for i := 0; i < m; i++ {
		copy(t.A[i*t.C:], a.A[i*n:(i+1)*n])
		t.Set(i, n+i, 1)
		t.Set(i, n+m, b[i])
	}
	for j := 0; j < n; j++ {
		t.Set(m, j, -c[j])
	}
	return t, nil
}

// PivotColumn returns the entering column under the shared rule, or -1
// if the tableau is optimal. m is the objective row index (t.R-1).
func PivotColumn(t *Mat) int {
	m := t.R - 1
	best, bestV := -1, -pivotEps
	for j := 0; j < t.C-1; j++ {
		if v := t.At(m, j); v < bestV {
			best, bestV = j, v
		}
	}
	return best
}

// PivotRow returns the leaving row for entering column jc under the
// shared minimum-ratio rule, or -1 if the LP is unbounded.
func PivotRow(t *Mat, jc int) int {
	m := t.R - 1
	rhs := t.C - 1
	best, bestRatio := -1, math.Inf(1)
	for i := 0; i < m; i++ {
		aij := t.At(i, jc)
		if aij <= pivotEps {
			continue
		}
		// Exact comparison, ascending scan: ties keep the smallest row
		// index, the same rule the distributed loc-reduction applies,
		// so serial and parallel runs pivot identically.
		ratio := t.At(i, rhs) / aij
		if ratio < bestRatio {
			best, bestRatio = i, ratio
		}
	}
	return best
}

// Pivot performs the elimination step on pivot element (ir, jc):
// normalize the pivot row, then subtract multiples from all other
// rows. The arithmetic (multiply by the reciprocal, then a - f*p per
// element) is written to match the distributed pivot operation by
// operation, so the two implementations stay bitwise in lockstep.
func Pivot(t *Mat, ir, jc int) {
	inv := 1 / t.At(ir, jc)
	prow := t.A[ir*t.C : (ir+1)*t.C]
	for j := range prow {
		prow[j] *= inv
	}
	for i := 0; i < t.R; i++ {
		if i == ir {
			continue
		}
		f := t.At(i, jc)
		if f == 0 {
			continue
		}
		row := t.A[i*t.C : (i+1)*t.C]
		for j := range row {
			row[j] -= f * prow[j]
		}
	}
}

// SolveLP solves maximize c^T x subject to A x <= b, x >= 0 (b >= 0)
// with the dense tableau simplex method, capped at maxIter pivots.
func SolveLP(c []float64, a *Mat, b []float64, maxIter int) (LPResult, error) {
	t, err := NewTableau(c, a, b)
	if err != nil {
		return LPResult{}, err
	}
	m, n := a.R, a.C
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i // slacks
	}
	res := LPResult{}
	for iter := 0; ; iter++ {
		jc := PivotColumn(t)
		if jc < 0 {
			res.Status = Optimal
			break
		}
		if iter >= maxIter {
			res.Status = IterLimit
			break
		}
		ir := PivotRow(t, jc)
		if ir < 0 {
			res.Status = Unbounded
			res.Iterations = iter
			return res, nil
		}
		Pivot(t, ir, jc)
		basis[ir] = jc
		res.Iterations = iter + 1
	}
	res.X = make([]float64, n)
	rhs := t.C - 1
	for i, bj := range basis {
		if bj < n {
			res.X[bj] = t.At(i, rhs)
		}
	}
	res.Z = t.At(m, rhs)
	return res, nil
}

// Bland's anti-cycling rule: entering variable = the smallest-index
// column with a negative reduced cost; leaving row = minimum ratio,
// ties broken by the smallest basis-variable index. Bland's rule
// guarantees termination on degenerate problems where the Dantzig rule
// can cycle (Beale's classic example does; the tests demonstrate it).

// PivotColumnBland returns the smallest-index improving column, or -1
// at optimality.
func PivotColumnBland(t *Mat) int {
	m := t.R - 1
	for j := 0; j < t.C-1; j++ {
		if t.At(m, j) < -pivotEps {
			return j
		}
	}
	return -1
}

// PivotRowBland returns the leaving row for entering column jc under
// the minimum-ratio rule with ties broken by smallest basis-variable
// index, or -1 if unbounded. Two stages — exact minimum ratio first,
// then the smallest basis index within an epsilon window of it — so
// the distributed implementation can follow the identical sequence
// with two loc-reductions.
func PivotRowBland(t *Mat, jc int, basis []int) int {
	m := t.R - 1
	rhs := t.C - 1
	minRatio := math.Inf(1)
	for i := 0; i < m; i++ {
		aij := t.At(i, jc)
		if aij <= pivotEps {
			continue
		}
		if ratio := t.At(i, rhs) / aij; ratio < minRatio {
			minRatio = ratio
		}
	}
	if math.IsInf(minRatio, 1) {
		return -1
	}
	best := -1
	for i := 0; i < m; i++ {
		aij := t.At(i, jc)
		if aij <= pivotEps {
			continue
		}
		if ratio := t.At(i, rhs) / aij; ratio <= minRatio+pivotEps {
			if best < 0 || basis[i] < basis[best] {
				best = i
			}
		}
	}
	return best
}

// SolveLPBland is SolveLP under Bland's rule.
func SolveLPBland(c []float64, a *Mat, b []float64, maxIter int) (LPResult, error) {
	t, err := NewTableau(c, a, b)
	if err != nil {
		return LPResult{}, err
	}
	m, n := a.R, a.C
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}
	res := LPResult{}
	for iter := 0; ; iter++ {
		jc := PivotColumnBland(t)
		if jc < 0 {
			res.Status = Optimal
			break
		}
		if iter >= maxIter {
			res.Status = IterLimit
			break
		}
		ir := PivotRowBland(t, jc, basis)
		if ir < 0 {
			res.Status = Unbounded
			res.Iterations = iter
			return res, nil
		}
		Pivot(t, ir, jc)
		basis[ir] = jc
		res.Iterations = iter + 1
	}
	res.X = make([]float64, n)
	rhs := t.C - 1
	for i, bj := range basis {
		if bj < n {
			res.X[bj] = t.At(i, rhs)
		}
	}
	res.Z = t.At(m, rhs)
	return res, nil
}
