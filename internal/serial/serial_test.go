package serial

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, r, c int) *Mat {
	m := NewMat(r, c)
	for i := range m.A {
		m.A[i] = rng.NormFloat64()
	}
	return m
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.At(0, 0) != 0 {
		t.Fatal("At/Set")
	}
	c := m.Clone()
	c.Set(1, 2, 9)
	if m.At(1, 2) != 5 {
		t.Fatal("Clone aliases")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.R != 3 || m.C != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows: %+v", m)
	}
	if e := FromRows(nil); e.R != 0 || e.C != 0 {
		t.Fatal("FromRows(nil)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows accepted")
		}
	}()
	FromRows([][]float64{{1}, {1, 2}})
}

func TestRowColAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	r := m.Row(1)
	if r[0] != 4 || r[2] != 6 {
		t.Fatalf("Row: %v", r)
	}
	r[0] = -1
	if m.At(1, 0) != 4 {
		t.Fatal("Row aliases")
	}
	c := m.Col(2)
	if c[0] != 3 || c[1] != 6 {
		t.Fatalf("Col: %v", c)
	}
	m.SetRow(0, []float64{7, 8, 9})
	if m.At(0, 1) != 8 {
		t.Fatal("SetRow")
	}
	m.SetCol(0, []float64{10, 11})
	if m.At(1, 0) != 11 {
		t.Fatal("SetCol")
	}
}

func TestVecMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := VecMatMul([]float64{1, 1, 1}, a)
	if y[0] != 9 || y[1] != 12 {
		t.Fatalf("VecMatMul: %v", y)
	}
}

func TestMatVecMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := MatVecMul(a, []float64{1, -1})
	if y[0] != -1 || y[1] != -1 || y[2] != -1 {
		t.Fatalf("MatVecMul: %v", y)
	}
}

func TestVecMatMulIsTransposeOfMatVecMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 7, 5)
	x := randVec(rng, 7)
	y1 := VecMatMul(x, a)
	y2 := MatVecMul(a.Transpose(), x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("mismatch at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

func TestMatMulAssociatesWithVec(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMat(rng, 4, 6)
	b := randMat(rng, 6, 3)
	x := randVec(rng, 4)
	// (x*A)*B == x*(A*B)
	left := VecMatMul(VecMatMul(x, a), b)
	right := VecMatMul(x, MatMul(a, b))
	for i := range left {
		if math.Abs(left[i]-right[i]) > 1e-10 {
			t.Fatalf("associativity at %d: %v vs %v", i, left[i], right[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 5, 8)
	tt := a.Transpose().Transpose()
	for i := range a.A {
		if a.A[i] != tt.A[i] {
			t.Fatal("transpose not involutive")
		}
	}
}

func TestNorms(t *testing.T) {
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2")
	}
	if NormInf([]float64{-7, 3}) != 7 {
		t.Fatal("NormInf")
	}
	if Norm2(nil) != 0 || NormInf(nil) != 0 {
		t.Fatal("empty norms")
	}
}

func TestGaussSolveKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := GaussSolve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestGaussSolveNeedsPivoting(t *testing.T) {
	// Zero on the initial diagonal: fails without partial pivoting.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := GaussSolve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("x = %v", x)
	}
}

func TestGaussSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := GaussSolve(a, []float64{1, 2}); err == nil {
		t.Fatal("singular matrix accepted")
	}
}

func TestGaussSolveShapeErrors(t *testing.T) {
	if _, err := GaussSolve(NewMat(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := GaussSolve(NewMat(2, 2), []float64{1}); err == nil {
		t.Fatal("bad rhs accepted")
	}
}

func TestGaussSolveRandomResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(40)
		a := randMat(rng, n, n)
		// Diagonal boost keeps condition numbers reasonable.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		b := randVec(rng, n)
		x, err := GaussSolve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if r := Norm2(Residual(a, x, b)); r > 1e-8 {
			t.Fatalf("trial %d: residual %v", trial, r)
		}
	}
}

func TestGaussSolveDoesNotModifyInputs(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	b := []float64{5, 10}
	ac := a.Clone()
	if _, err := GaussSolve(a, b); err != nil {
		t.Fatal(err)
	}
	for i := range a.A {
		if a.A[i] != ac.A[i] {
			t.Fatal("GaussSolve modified A")
		}
	}
	if b[0] != 5 || b[1] != 10 {
		t.Fatal("GaussSolve modified b")
	}
}

func TestForwardEliminateMatchesGaussSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(20)
		a := randMat(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		b := randVec(rng, n)
		w := NewMat(n, n+1)
		for i := 0; i < n; i++ {
			copy(w.A[i*(n+1):], a.A[i*n:(i+1)*n])
			w.Set(i, n, b[i])
		}
		if _, err := ForwardEliminate(w); err != nil {
			t.Fatal(err)
		}
		// Upper triangular below the diagonal.
		for i := 1; i < n; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(w.At(i, j)) > 1e-9 {
					t.Fatalf("not eliminated at (%d,%d): %v", i, j, w.At(i, j))
				}
			}
		}
		x := BackSubstitute(w)
		want, err := GaussSolve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-8 {
				t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
			}
		}
	}
}

func TestResidualQuick(t *testing.T) {
	// Property: Residual(A, x, A*x) == 0.
	rng := rand.New(rand.NewSource(8))
	f := func(nRaw uint8) bool {
		n := int(nRaw)%10 + 1
		a := randMat(rng, n, n)
		x := randVec(rng, n)
		return Norm2(Residual(a, x, MatVecMul(a, x))) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminantKnown(t *testing.T) {
	if d, err := Determinant(FromRows([][]float64{{1, 2}, {3, 4}})); err != nil || math.Abs(d+2) > 1e-12 {
		t.Fatalf("det = %v (%v), want -2", d, err)
	}
	if d, err := Determinant(FromRows([][]float64{{2}})); err != nil || d != 2 {
		t.Fatalf("det 1x1 = %v (%v)", d, err)
	}
	if d, err := Determinant(FromRows([][]float64{{1, 2}, {2, 4}})); err != nil || d != 0 {
		t.Fatalf("singular det = %v (%v), want 0", d, err)
	}
	if _, err := Determinant(NewMat(2, 3)); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestDeterminantMultiplicative(t *testing.T) {
	// det(AB) = det(A) det(B).
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(6)
		a := randMat(rng, n, n)
		b := randMat(rng, n, n)
		da, err := Determinant(a)
		if err != nil {
			t.Fatal(err)
		}
		db, err := Determinant(b)
		if err != nil {
			t.Fatal(err)
		}
		dab, err := Determinant(MatMul(a, b))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dab-da*db) > 1e-8*math.Max(1, math.Abs(da*db)) {
			t.Fatalf("trial %d: det(AB)=%v, det(A)det(B)=%v", trial, dab, da*db)
		}
	}
}

func TestDeterminantPermutationParity(t *testing.T) {
	// A permutation matrix's determinant is the permutation's sign.
	p := FromRows([][]float64{{0, 1, 0}, {0, 0, 1}, {1, 0, 0}}) // 3-cycle: even
	if d, err := Determinant(p); err != nil || math.Abs(d-1) > 1e-12 {
		t.Fatalf("3-cycle det = %v (%v), want 1", d, err)
	}
	s := FromRows([][]float64{{0, 1}, {1, 0}}) // transposition: odd
	if d, err := Determinant(s); err != nil || math.Abs(d+1) > 1e-12 {
		t.Fatalf("swap det = %v (%v), want -1", d, err)
	}
}
