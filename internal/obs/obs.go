// Package obs is the virtual-time observability layer of the
// simulator: hierarchical spans over the SPMD program, per-processor
// attribution of the virtual clock into compute / start-up / transfer
// / idle buckets, per-link word loads, and exporters for a text tree,
// machine-readable JSON, and Chrome trace-event JSON.
//
// The package is deliberately passive: internal/hypercube records the
// raw per-processor data during a Run (span aggregates, bucket
// accumulators, link counters) and hands it to Build, which verifies
// the SPMD symmetry of the span structure and assembles a Profile.
// obs depends only on internal/costmodel, so every layer above the
// machine can import it without cycles.
//
// # Attribution model
//
// Every processor's virtual clock is decomposed into four disjoint
// buckets. Compute is time spent in local arithmetic (Proc.Compute).
// Startup is the fixed per-message cost tau (CommStartup, and the
// router's RouteStartup plus per-message handling). Transfer is the
// per-word volume cost (n*CommPerWord, n*RoutePerWord). Idle is
// everything else: time the clock was advanced waiting for a message
// that had not yet arrived. Idle is derived as clock minus the other
// three, which makes the reconciliation "bucket sums equal the final
// clock" exact by construction; with the integer-valued parameter
// presets every sum is exact in float64, so the identity holds
// digit-for-digit.
//
// # Span model
//
// Spans are SPMD-symmetric: every processor opens and closes the same
// spans in the same order, so the tree structure (names, nesting,
// counts) is recorded once per run while the timings are recorded per
// processor and aggregated. A span's inclusive time is the virtual
// time between BeginSpan and EndSpan summed over all its occurrences;
// exclusive time subtracts the inclusive time of its children.
// Reported times are per-processor means (sums divided by P), so the
// root of the tree reads as the familiar elapsed-time scale.
package obs

import (
	"fmt"
	"sort"

	"vmprim/internal/costmodel"
)

// Buckets splits a stretch of virtual time into the four attribution
// classes. All fields are simulated microseconds.
type Buckets struct {
	// Compute is time spent in local floating-point arithmetic.
	Compute costmodel.Time `json:"compute_us"`
	// Startup is fixed per-message cost: communication start-up tau
	// and the router's start-up and per-message handling overhead.
	Startup costmodel.Time `json:"startup_us"`
	// Transfer is per-word volume cost on cube edges and in the router.
	Transfer costmodel.Time `json:"transfer_us"`
	// Idle is time spent waiting for messages: the clock advance of a
	// Recv beyond the receiver's own activity.
	Idle costmodel.Time `json:"idle_us"`
}

// Total returns the sum of all four buckets.
func (b Buckets) Total() costmodel.Time {
	return b.Compute + b.Startup + b.Transfer + b.Idle
}

// Add accumulates o into b.
func (b *Buckets) Add(o Buckets) {
	b.Compute += o.Compute
	b.Startup += o.Startup
	b.Transfer += o.Transfer
	b.Idle += o.Idle
}

// NodeMeta is the structural description of one span node (a unique
// path in the span tree), identical on every processor.
type NodeMeta struct {
	// Name is the span name passed to BeginSpan.
	Name string
	// Parent is the node id of the enclosing span, or -1 at top level.
	Parent int
	// Note holds embedding-change and other annotations attached with
	// SpanNote; only processor 0 records notes.
	Note string
}

// NodeStats is one processor's aggregate over all occurrences of one
// span node.
type NodeStats struct {
	// Count is how many times this processor executed the span.
	Count int64
	// Incl is the summed inclusive virtual time; Excl subtracts the
	// inclusive time of child spans.
	Incl, Excl costmodel.Time
	// Compute, Startup and Transfer are the inclusive bucket deltas;
	// idle is derived as Incl minus their sum.
	Compute, Startup, Transfer costmodel.Time
	// Pred is the cost model's predicted time accumulated with
	// SpanPredict (zero for spans that record no prediction).
	Pred costmodel.Time
	// Msgs, Words and Flops are inclusive Stats deltas.
	Msgs, Words, Flops int64
}

// Instance is one timed occurrence of a span on one processor, kept
// only for the processors exported to the Chrome trace.
type Instance struct {
	// Node is the span node id (index into the meta table).
	Node int
	// Begin and End are the processor's virtual clock at BeginSpan and
	// EndSpan.
	Begin, End costmodel.Time
}

// ProcData is everything one processor recorded during a Run.
type ProcData struct {
	// Clock is the processor's final virtual time.
	Clock costmodel.Time
	// Compute, Startup and Transfer are the whole-run bucket
	// accumulators; idle is derived as Clock minus their sum.
	Compute, Startup, Transfer costmodel.Time
	// Msgs, Words and Flops are the whole-run counters.
	Msgs, Words, Flops int64
	// Meta is the span structure this processor discovered; Build
	// verifies it is identical to processor 0's.
	Meta []NodeMeta
	// Stats are the per-node aggregates, indexed like Meta.
	Stats []NodeStats
	// Instances is the per-occurrence log (only exported
	// processors keep one; empty elsewhere).
	Instances []Instance
}

// LinkEvent is one link message, used for Chrome-trace flow arrows.
// It mirrors hypercube.TraceEvent without importing it.
type LinkEvent struct {
	// Time is the virtual arrival time of the message.
	Time costmodel.Time
	// Src and Dst are the endpoint processor addresses, Dim the cube
	// dimension of the link, Words the payload length, Tag the
	// protocol tag.
	Src, Dst, Dim, Words, Tag int
}

// HostSched describes the host-side scheduling of the run behind a
// profile: how the machine's processor goroutines were executed, not
// what the simulated machine did. These numbers vary with GOMAXPROCS,
// host load and goroutine interleaving, so they appear only in the
// human-readable text rendering — the JSON and Chrome exports must
// stay bit-identical across host configurations and omit them.
type HostSched struct {
	// GOMAXPROCS is the host parallelism in effect during the run.
	GOMAXPROCS int
	// RecvParks counts host goroutine parks waiting at the
	// virtual-time frontier for a message; SendStalls counts parks on
	// a full link buffer (run-ahead backpressure); Wakeups counts
	// parks resumed by link traffic.
	RecvParks, SendStalls, Wakeups int64
	// MaxParked is the high-water mark of concurrently parked
	// processor goroutines.
	MaxParked int
}

// LinkLoad is the total words carried by one directed link over a Run.
type LinkLoad struct {
	Src   int   `json:"src"`
	Dim   int   `json:"dim"`
	Dst   int   `json:"dst"`
	Words int64 `json:"words"`
}

// Span is one node of the aggregated span tree.
type Span struct {
	// Name is the span name; Note carries annotations (embedding
	// changes and the like) joined with "; ".
	Name string
	Note string
	// Count is the number of occurrences (per processor; all
	// processors execute every span the same number of times).
	Count int64
	// Incl and Excl are inclusive/exclusive virtual time summed over
	// all processors and occurrences (divide by P for the mean).
	Incl, Excl costmodel.Time
	// MaxIncl is the largest single-processor inclusive sum: the load
	// of the slowest processor in this span.
	MaxIncl costmodel.Time
	// Pred is the cost model's predicted time summed over processors
	// (zero for spans without predictions); MaxPred is the largest
	// single-processor sum, which the conformance report compares
	// against MaxIncl.
	Pred, MaxPred costmodel.Time
	// Buckets attributes the inclusive time (summed over processors).
	Buckets Buckets
	// Msgs, Words and Flops are inclusive counter deltas summed over
	// processors.
	Msgs, Words, Flops int64
	// Children are the nested spans in first-seen order.
	Children []*Span
}

// procInstances pairs a processor id with its instance log.
type procInstances struct {
	proc int
	inst []Instance
}

// Profile is the aggregated observability record of one Run.
type Profile struct {
	// Dim and P describe the machine; Elapsed is the run's simulated
	// time (maximum clock).
	Dim, P  int
	Elapsed costmodel.Time
	// Msgs, Words and Flops are the whole-run machine totals.
	Msgs, Words, Flops int64
	// Clocks holds every processor's final virtual clock.
	Clocks []costmodel.Time
	// ProcTotals holds every processor's whole-run bucket split; the
	// four buckets of ProcTotals[i] sum to Clocks[i].
	ProcTotals []Buckets
	// Root is the span tree. Its name is "run", its inclusive time is
	// the sum of all processor clocks, and its exclusive time is
	// whatever ran outside any span.
	Root *Span
	// Links lists the busiest directed links, sorted by descending
	// word count.
	Links []LinkLoad
	// Events are the traced link messages (empty unless the machine
	// had EnableTrace set); the Chrome exporter renders them as flow
	// arrows.
	Events []LinkEvent
	// Sched is the host-scheduler diagnostic of the run, or nil when
	// the producer recorded none. It is rendered by WriteTree only;
	// WriteJSON and ChromeTrace deliberately exclude it (see
	// HostSched).
	Sched *HostSched
	// Crit is the run's critical path, or nil when the producer did
	// not record one. Unlike Sched it is pure virtual time: all three
	// exporters include it and determinism comparisons cover it.
	Crit *CritPath

	nodes []*Span
	inst  []procInstances
}

// Build assembles a Profile from per-processor records. It panics if
// the span structure diverges between processors — SPMD programs must
// open and close the same spans in the same order everywhere.
func Build(dim int, procs []ProcData, events []LinkEvent, links []LinkLoad) *Profile {
	p := len(procs)
	if p == 0 {
		panic("obs: Build needs at least one processor")
	}
	ref := procs[0].Meta
	for pid := 1; pid < p; pid++ {
		meta := procs[pid].Meta
		if len(meta) != len(ref) {
			panic(fmt.Sprintf(
				"obs: processor %d recorded %d distinct spans, processor 0 recorded %d: SPMD span structure diverged",
				pid, len(meta), len(ref)))
		}
		for i := range meta {
			if meta[i].Name != ref[i].Name || meta[i].Parent != ref[i].Parent {
				panic(fmt.Sprintf(
					"obs: processor %d span node %d is %q (parent %d), processor 0 recorded %q (parent %d): SPMD span structure diverged",
					pid, i, meta[i].Name, meta[i].Parent, ref[i].Name, ref[i].Parent))
			}
		}
	}

	nodes := make([]*Span, len(ref))
	for i := range ref {
		nodes[i] = &Span{Name: ref[i].Name, Note: ref[i].Note}
	}
	root := &Span{Name: "run", Count: 1}
	for i := range ref {
		par := root
		if ref[i].Parent >= 0 {
			par = nodes[ref[i].Parent]
		}
		par.Children = append(par.Children, nodes[i])
	}

	pf := &Profile{
		Dim:        dim,
		P:          p,
		Clocks:     make([]costmodel.Time, p),
		ProcTotals: make([]Buckets, p),
		Root:       root,
		Links:      links,
		Events:     events,
		nodes:      nodes,
	}
	for pid := range procs {
		pd := &procs[pid]
		idle := pd.Clock - pd.Compute - pd.Startup - pd.Transfer
		pf.Clocks[pid] = pd.Clock
		pf.ProcTotals[pid] = Buckets{
			Compute: pd.Compute, Startup: pd.Startup, Transfer: pd.Transfer, Idle: idle,
		}
		if pd.Clock > pf.Elapsed {
			pf.Elapsed = pd.Clock
		}
		pf.Msgs += pd.Msgs
		pf.Words += pd.Words
		pf.Flops += pd.Flops

		var topIncl costmodel.Time
		for i := range pd.Stats {
			st := &pd.Stats[i]
			nd := nodes[i]
			if pid == 0 {
				nd.Count = st.Count
			} else if st.Count != nd.Count {
				panic(fmt.Sprintf(
					"obs: processor %d executed span %q %d times, processor 0 executed it %d times: SPMD span structure diverged",
					pid, nd.Name, st.Count, nd.Count))
			}
			nd.Incl += st.Incl
			nd.Excl += st.Excl
			nd.Buckets.Compute += st.Compute
			nd.Buckets.Startup += st.Startup
			nd.Buckets.Transfer += st.Transfer
			nd.Buckets.Idle += st.Incl - st.Compute - st.Startup - st.Transfer
			nd.Msgs += st.Msgs
			nd.Words += st.Words
			nd.Flops += st.Flops
			if st.Incl > nd.MaxIncl {
				nd.MaxIncl = st.Incl
			}
			nd.Pred += st.Pred
			if st.Pred > nd.MaxPred {
				nd.MaxPred = st.Pred
			}
			if ref[i].Parent < 0 {
				topIncl += st.Incl
			}
		}
		root.Incl += pd.Clock
		root.Excl += pd.Clock - topIncl
		root.Buckets.Add(pf.ProcTotals[pid])
		if len(pd.Instances) > 0 {
			pf.inst = append(pf.inst, procInstances{proc: pid, inst: pd.Instances})
		}
	}
	root.MaxIncl = pf.Elapsed
	root.Msgs, root.Words, root.Flops = pf.Msgs, pf.Words, pf.Flops
	sort.Slice(pf.Links, func(i, j int) bool {
		if pf.Links[i].Words != pf.Links[j].Words {
			return pf.Links[i].Words > pf.Links[j].Words
		}
		if pf.Links[i].Src != pf.Links[j].Src {
			return pf.Links[i].Src < pf.Links[j].Src
		}
		return pf.Links[i].Dim < pf.Links[j].Dim
	})
	return pf
}

// BucketSkew returns the largest absolute difference, over all
// processors, between the processor's final clock and the sum of its
// four buckets. With the built-in (integer-valued) parameter presets
// it is exactly zero.
func (pf *Profile) BucketSkew() costmodel.Time {
	var skew costmodel.Time
	for i := range pf.ProcTotals {
		d := pf.ProcTotals[i].Total() - pf.Clocks[i]
		if d < 0 {
			d = -d
		}
		if d > skew {
			skew = d
		}
	}
	return skew
}

// Check verifies the profile's structural invariants: bucket sums
// equal the final clock on every processor, and on every span node
// the inclusive time is at least the inclusive (and exclusive) time
// of its children and no bucket is negative. It returns the first
// violation found, or nil.
func (pf *Profile) Check() error {
	const eps = 1e-6
	if len(pf.Clocks) != pf.P || len(pf.ProcTotals) != pf.P {
		return fmt.Errorf("obs: profile has %d clocks / %d totals for %d processors",
			len(pf.Clocks), len(pf.ProcTotals), pf.P)
	}
	for i := range pf.ProcTotals {
		d := pf.ProcTotals[i].Total() - pf.Clocks[i]
		if d < -eps || d > eps {
			return fmt.Errorf("obs: processor %d buckets sum to %.6f but clock is %.6f",
				i, float64(pf.ProcTotals[i].Total()), float64(pf.Clocks[i]))
		}
	}
	var walk func(s *Span) error
	walk = func(s *Span) error {
		var childIncl, childExcl costmodel.Time
		for _, c := range s.Children {
			childIncl += c.Incl
			childExcl += c.Excl
			if err := walk(c); err != nil {
				return err
			}
		}
		if s.Excl < -eps {
			return fmt.Errorf("obs: span %q has negative exclusive time %.6f", s.Name, float64(s.Excl))
		}
		if childIncl > s.Incl+eps {
			return fmt.Errorf("obs: span %q inclusive %.6f < children inclusive %.6f",
				s.Name, float64(s.Incl), float64(childIncl))
		}
		if childExcl > s.Incl+eps {
			return fmt.Errorf("obs: span %q inclusive %.6f < children exclusive %.6f",
				s.Name, float64(s.Incl), float64(childExcl))
		}
		if s.Buckets.Compute < -eps || s.Buckets.Startup < -eps ||
			s.Buckets.Transfer < -eps || s.Buckets.Idle < -eps {
			return fmt.Errorf("obs: span %q has a negative bucket: %+v", s.Name, s.Buckets)
		}
		return nil
	}
	return walk(pf.Root)
}
