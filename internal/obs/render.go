package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"vmprim/internal/costmodel"
)

// This file renders a Profile three ways: a human text tree, a
// machine-readable JSON document, and Chrome trace-event JSON that
// chrome://tracing and Perfetto load directly.

// WriteTree prints the profile as an indented text tree. Times are
// mean per-processor simulated microseconds (the sum over processors
// divided by P), so the root line matches the familiar elapsed-time
// scale; idle% is the idle share of each span's inclusive time.
func (pf *Profile) WriteTree(w io.Writer) {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "profile: p=%d (d=%d)  elapsed %.1f us  msgs %d  words %d  flops %d\n",
		pf.P, pf.Dim, float64(pf.Elapsed), pf.Msgs, pf.Words, pf.Flops)
	tot := pf.Root.Buckets.Total()
	if tot > 0 {
		fmt.Fprintf(bw, "buckets (share of total processor-time): compute %.1f%%  startup %.1f%%  transfer %.1f%%  idle %.1f%%\n",
			100*float64(pf.Root.Buckets.Compute)/float64(tot),
			100*float64(pf.Root.Buckets.Startup)/float64(tot),
			100*float64(pf.Root.Buckets.Transfer)/float64(tot),
			100*float64(pf.Root.Buckets.Idle)/float64(tot))
	}
	fmt.Fprintf(bw, "bucket reconciliation: max |clock - (compute+startup+transfer+idle)| = %g us\n",
		float64(pf.BucketSkew()))
	if s := pf.Sched; s != nil {
		fmt.Fprintf(bw, "host sched (nondeterministic): gomaxprocs %d  recv parks %d  send stalls %d  wakeups %d  max parked %d\n",
			s.GOMAXPROCS, s.RecvParks, s.SendStalls, s.Wakeups, s.MaxParked)
	}

	label := func(s *Span) string {
		if s.Note != "" {
			return s.Name + " [" + s.Note + "]"
		}
		return s.Name
	}
	nameW := 4
	var measure func(s *Span, depth int)
	measure = func(s *Span, depth int) {
		if n := 2*depth + len(label(s)); n > nameW {
			nameW = n
		}
		for _, c := range s.Children {
			measure(c, depth+1)
		}
	}
	measure(pf.Root, 0)
	if nameW > 48 {
		nameW = 48
	}
	fmt.Fprintf(bw, "%-*s %7s %11s %11s %10s %12s %12s %6s\n",
		nameW, "span", "count", "incl", "excl", "msgs", "words", "flops", "idle%")
	inv := 1.0 / float64(pf.P)
	var print func(s *Span, depth int)
	print = func(s *Span, depth int) {
		idlePct := 0.0
		if s.Incl > 0 {
			idlePct = 100 * float64(s.Buckets.Idle) / float64(s.Incl)
		}
		fmt.Fprintf(bw, "%-*s %7d %11.1f %11.1f %10d %12d %12d %6.1f\n",
			nameW, pad(depth)+label(s), s.Count,
			float64(s.Incl)*inv, float64(s.Excl)*inv,
			s.Msgs, s.Words, s.Flops, idlePct)
		for _, c := range s.Children {
			print(c, depth+1)
		}
	}
	print(pf.Root, 0)
	if len(pf.Links) > 0 {
		k := len(pf.Links)
		if k > 8 {
			k = 8
		}
		fmt.Fprintf(bw, "hottest links (words per directed edge):")
		for _, l := range pf.Links[:k] {
			fmt.Fprintf(bw, "  %d-d%d->%d:%d", l.Src, l.Dim, l.Dst, l.Words)
		}
		fmt.Fprintln(bw)
	}
	bw.Flush()
	if pf.Crit != nil {
		pf.Crit.WriteText(w)
	}
}

func pad(depth int) string {
	const spaces = "                                                "
	n := 2 * depth
	if n > len(spaces) {
		n = len(spaces)
	}
	return spaces[:n]
}

// jsonSpan mirrors Span for export. Times are mean per-processor
// microseconds; max_incl_us is the slowest single processor.
type jsonSpan struct {
	Name      string     `json:"name"`
	Note      string     `json:"note,omitempty"`
	Count     int64      `json:"count"`
	InclUs    float64    `json:"incl_us"`
	ExclUs    float64    `json:"excl_us"`
	MaxInclUs float64    `json:"max_incl_us"`
	Compute   float64    `json:"compute_us"`
	Startup   float64    `json:"startup_us"`
	Transfer  float64    `json:"transfer_us"`
	Idle      float64    `json:"idle_us"`
	PredUs    float64    `json:"pred_us,omitempty"`
	Msgs      int64      `json:"msgs"`
	Words     int64      `json:"words"`
	Flops     int64      `json:"flops"`
	Children  []jsonSpan `json:"children,omitempty"`
}

type jsonProfile struct {
	Dim        int        `json:"dim"`
	P          int        `json:"p"`
	ElapsedUs  float64    `json:"elapsed_us"`
	Msgs       int64      `json:"msgs"`
	Words      int64      `json:"words"`
	Flops      int64      `json:"flops"`
	Buckets    Buckets    `json:"buckets_mean_us"`
	SkewUs     float64    `json:"bucket_skew_us"`
	Congestion []LinkLoad `json:"congestion,omitempty"`
	Spans      jsonSpan   `json:"spans"`
	CritPath   *CritPath  `json:"critpath,omitempty"`
}

// WriteJSON writes the machine-readable profile document. Span times
// are mean per-processor microseconds; buckets_mean_us is the mean
// whole-run bucket split.
func (pf *Profile) WriteJSON(w io.Writer) error {
	inv := 1.0 / float64(pf.P)
	var conv func(s *Span) jsonSpan
	conv = func(s *Span) jsonSpan {
		js := jsonSpan{
			Name:      s.Name,
			Note:      s.Note,
			Count:     s.Count,
			InclUs:    float64(s.Incl) * inv,
			ExclUs:    float64(s.Excl) * inv,
			MaxInclUs: float64(s.MaxIncl),
			Compute:   float64(s.Buckets.Compute) * inv,
			Startup:   float64(s.Buckets.Startup) * inv,
			Transfer:  float64(s.Buckets.Transfer) * inv,
			Idle:      float64(s.Buckets.Idle) * inv,
			PredUs:    float64(s.Pred) * inv,
			Msgs:      s.Msgs,
			Words:     s.Words,
			Flops:     s.Flops,
		}
		for _, c := range s.Children {
			js.Children = append(js.Children, conv(c))
		}
		return js
	}
	mean := pf.Root.Buckets
	mean.Compute = costmodel.Time(float64(mean.Compute) * inv)
	mean.Startup = costmodel.Time(float64(mean.Startup) * inv)
	mean.Transfer = costmodel.Time(float64(mean.Transfer) * inv)
	mean.Idle = costmodel.Time(float64(mean.Idle) * inv)
	links := pf.Links
	if len(links) > 32 {
		links = links[:32]
	}
	doc := jsonProfile{
		Dim:        pf.Dim,
		P:          pf.P,
		ElapsedUs:  float64(pf.Elapsed),
		Msgs:       pf.Msgs,
		Words:      pf.Words,
		Flops:      pf.Flops,
		Buckets:    mean,
		SkewUs:     float64(pf.BucketSkew()),
		Congestion: links,
		Spans:      conv(pf.Root),
		CritPath:   pf.Crit,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ChromeTrace writes Chrome trace-event JSON: one track per exported
// processor on the virtual-time axis (microseconds), spans as
// complete events, and — when the run was traced with EnableTrace —
// messages between exported processors as flow arrows. The exported
// processors are processor 0 and its cube neighbors (the machine
// keeps per-occurrence span logs only for those; see EnableProfile),
// so every dimension's traffic at processor 0 draws an arrow. At most
// maxProcs tracks are written (0 means all exported).
func (pf *Profile) ChromeTrace(w io.Writer, maxProcs int) error {
	if maxProcs <= 0 {
		maxProcs = len(pf.inst)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	sep()
	fmt.Fprint(bw, `{"ph":"M","name":"process_name","pid":0,"args":{"name":"hypercube (virtual time)"}}`)
	shown := make(map[int]bool)
	for _, pi := range pf.inst {
		if len(shown) >= maxProcs {
			break
		}
		shown[pi.proc] = true
		sep()
		fmt.Fprintf(bw, `{"ph":"M","name":"thread_name","pid":0,"tid":%d,"args":{"name":"proc %d"}}`,
			pi.proc, pi.proc)
		for _, in := range pi.inst {
			nd := pf.nodes[in.Node]
			sep()
			fmt.Fprintf(bw, `{"ph":"X","name":%s,"cat":"span","pid":0,"tid":%d,"ts":%s,"dur":%s`,
				strconv.Quote(nd.Name), pi.proc,
				ftoa(float64(in.Begin)), ftoa(float64(in.End-in.Begin)))
			if nd.Note != "" {
				fmt.Fprintf(bw, `,"args":{"note":%s}`, strconv.Quote(nd.Note))
			}
			bw.WriteString("}")
		}
	}
	// The critical path as its own highlighted track: one complete
	// event per chain segment, hops as instants. The tid sits past
	// every processor track so the path renders at the bottom.
	if pf.Crit != nil && len(pf.Crit.Chain) > 0 {
		sep()
		fmt.Fprintf(bw, `{"ph":"M","name":"thread_name","pid":0,"tid":%d,"args":{"name":"critical path"}}`,
			pf.P)
		for _, sg := range pf.Crit.Chain {
			sep()
			if sg.Kind == "hop" {
				fmt.Fprintf(bw, `{"ph":"i","s":"t","name":%s,"cat":"critpath","pid":0,"tid":%d,"ts":%s}`,
					strconv.Quote(fmt.Sprintf("hop %d-d%d->%d", sg.From, sg.Dim, sg.Proc)),
					pf.P, ftoa(float64(sg.T1)))
				continue
			}
			name := sg.Kind
			if sg.Span != "" {
				name = sg.Kind + " " + sg.Span
			}
			fmt.Fprintf(bw, `{"ph":"X","name":%s,"cat":"critpath","pid":0,"tid":%d,"ts":%s,"dur":%s,"args":{"proc":%d}}`,
				strconv.Quote(name), pf.P,
				ftoa(float64(sg.T0)), ftoa(float64(sg.T1-sg.T0)), sg.Proc)
		}
	}
	if len(shown) > 0 {
		id := 0
		for _, ev := range pf.Events {
			if !shown[ev.Src] || !shown[ev.Dst] {
				continue
			}
			id++
			name := strconv.Quote(fmt.Sprintf("msg dim%d tag%d (%dw)", ev.Dim, ev.Tag, ev.Words))
			ts := ftoa(float64(ev.Time))
			sep()
			fmt.Fprintf(bw, `{"ph":"s","name":%s,"cat":"msg","id":%d,"pid":0,"tid":%d,"ts":%s}`,
				name, id, ev.Src, ts)
			sep()
			fmt.Fprintf(bw, `{"ph":"f","bp":"e","name":%s,"cat":"msg","id":%d,"pid":0,"tid":%d,"ts":%s}`,
				name, id, ev.Dst, ts)
		}
	}
	fmt.Fprint(bw, "\n]}\n")
	return bw.Flush()
}

// ftoa formats a trace timestamp without exponent notation, which
// some trace viewers reject.
func ftoa(f float64) string { return strconv.FormatFloat(f, 'f', 3, 64) }
