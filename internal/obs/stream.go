package obs

// Live streaming hook: the machine can emit observability events while
// a run is still executing, so a long run is watchable before its
// profile exists. The hook follows the package's passive discipline —
// internal/hypercube decides when to emit (span opens and closes on
// processor 0, periodic progress marks, the end-of-run link-congestion
// summary) and obs only defines the event vocabulary. Emission never
// touches a virtual clock, so a streamed run's simulated results are
// bit-identical to an unstreamed one; the only cost is the sink call
// itself, paid exclusively on processor 0's goroutine.
//
// Sinks must be cheap and must not block: they run inline on a worker
// goroutine at communication-free points. The serving layer's sink
// appends to a bounded buffer and fans out to subscribers on their own
// goroutines, which is the intended shape.

// Stream event kinds, as they appear on the wire (SSE event names and
// the "kind" JSON field).
const (
	// EvSpanOpen and EvSpanClose bracket one occurrence of a profiler
	// span on processor 0. They carry the span name, nesting depth and
	// the processor's virtual clock at the boundary.
	EvSpanOpen  = "span_open"
	EvSpanClose = "span_close"
	// EvProgress is a periodic heartbeat: every progressEvery span
	// closes on processor 0, carrying the running total of closed
	// spans and the current virtual clock.
	EvProgress = "progress"
	// EvLink is one directed link's word load, emitted for the
	// hottest links when the run's communication has quiesced.
	EvLink = "link_congestion"
)

// StreamEvent is one live observability event. Fields are populated
// according to Kind; unused fields are zero and omitted from JSON.
type StreamEvent struct {
	// Kind is one of the Ev* constants.
	Kind string `json:"kind"`
	// VTUs is the virtual time of the event in simulated microseconds
	// (processor 0's clock for span and progress events, the run's
	// elapsed time for link events).
	VTUs float64 `json:"vt_us"`
	// Name is the span name for span events.
	Name string `json:"name,omitempty"`
	// Depth is the span nesting depth (0 = top level) for span events.
	Depth int `json:"depth,omitempty"`
	// Closed is the running count of closed spans, on progress events.
	Closed int64 `json:"closed,omitempty"`
	// Src, Dim, Dst and Words describe one directed link on
	// link-congestion events.
	Src   int   `json:"src,omitempty"`
	Dim   int   `json:"dim,omitempty"`
	Dst   int   `json:"dst,omitempty"`
	Words int64 `json:"words,omitempty"`
}

// StreamSink consumes live events. It is called from machine worker
// goroutines (and from Run's caller for the link summary), one call at
// a time per machine; implementations must be safe for calls from
// different goroutines in sequence and must return quickly.
type StreamSink func(StreamEvent)
