package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"vmprim/internal/costmodel"
)

// Critical-path attribution: while the profiler's buckets say where
// each processor's clock went, the critical path says why the run's
// makespan is what it is — the single causal chain of compute
// segments, message charges and cross-processor hops whose weights sum
// exactly to the maximum clock. The machine records the chain online
// during the run (see internal/hypercube/critpath.go) and decodes it
// into this structure; obs only models and renders it.

// DefaultConformanceThreshold flags a conformance entry when the
// measured inclusive time of the slowest processor exceeds the cost
// model's prediction by more than this factor. The structured
// collectives land near 1.0 when every member enters together; the
// measured number also absorbs entry skew (a member arriving late
// inflates the slowest member's inclusive time), so the threshold
// leaves 2x of headroom before calling a span divergent. E3's
// hot-spot router runs blow far past it — that gap is the paper's
// router-vs-primitives argument as a per-run measurement.
const DefaultConformanceThreshold = 2.0

// PathSpan attributes the critical path's time to one span (one named
// node of the span tree, qualified as "parent>child").
type PathSpan struct {
	// Name is the ">"-joined path of span names from the top level.
	Name string
	// Buckets is the portion of each attribution class that the chain
	// spent inside this span.
	Buckets Buckets
}

// Total is the span's total time on the critical path.
func (s PathSpan) Total() costmodel.Time { return s.Buckets.Total() }

// PathSegment is one step of the critical chain's bounded tail. The
// machine keeps only the newest segments (a fixed ring, like the
// flight recorder), so the tail shows how the run ended; the Spans
// aggregation covers the whole path exactly.
type PathSegment struct {
	// Proc is the processor whose activity this segment is; for "hop"
	// segments it is the receiver and From is the sender.
	Proc int
	// From is the sending processor of a "hop" segment, -1 otherwise.
	From int
	// Span is the ">"-qualified span the segment ran under ("" if
	// outside any span).
	Span string
	// Kind is "compute", "send" (start-up plus transfer of one
	// message), "route" (router charges), "idle" (clock advanced
	// outside a receive), or "hop" (the chain crossing a link).
	Kind string
	// Dim is the cube dimension for send and hop segments, -1 otherwise.
	Dim int
	// T0 and T1 bound the segment in virtual time (equal for hops).
	T0, T1 costmodel.Time
}

// ConformanceEntry compares one span's measured virtual time against
// the cost model's analytic prediction recorded at the span's entry
// (see costmodel.Predict*).
type ConformanceEntry struct {
	// Name is the ">"-qualified span name.
	Name string
	// Count is the number of occurrences per processor.
	Count int64
	// MeasuredUs is the slowest processor's mean inclusive time per
	// occurrence; PredictedUs is that processor's mean predicted time.
	MeasuredUs, PredictedUs float64
	// Ratio is measured over predicted (the conformance factor).
	Ratio float64
	// PathShare is the fraction of the run's makespan the critical
	// path spent inside this span (0 when the span is off the path).
	PathShare float64
	// Flagged reports Ratio > the report's threshold.
	Flagged bool
}

// CritPath is the decoded critical path of one Run: the longest
// weighted chain through the virtual-time event DAG, ending at the
// processor whose clock is the run's makespan.
type CritPath struct {
	// Dim and P describe the machine; EndProc is where the path ends
	// (the maximum-clock processor, lowest id on ties).
	Dim, P, EndProc int
	// Makespan is the run's elapsed virtual time; the four Buckets sum
	// to it exactly.
	Makespan costmodel.Time
	// Buckets attributes the whole path by class.
	Buckets Buckets
	// Hops is the number of cross-processor edges on the path.
	Hops int
	// ByDim splits the path's transfer time by cube dimension
	// (router volume charges carry no dimension and are excluded).
	ByDim []costmodel.Time
	// Spans attributes the path to named spans, largest share first;
	// Other is the path time spent outside any span.
	Spans []PathSpan
	Other Buckets
	// Chain is the bounded newest-first... oldest-first tail of path
	// segments; ChainDropped counts older segments that fell out of
	// the ring.
	Chain        []PathSegment
	ChainDropped int
	// SkewUs is the largest |chain-sum − clock| over all processors:
	// the online recording's reconciliation error, exactly zero with
	// the integer-valued parameter presets.
	SkewUs float64
	// Threshold is the conformance flagging factor in effect;
	// Conformance holds one entry per span that recorded a prediction,
	// sorted by descending Ratio.
	Threshold   float64
	Conformance []ConformanceEntry
}

// Check verifies the path's structural invariants: buckets sum to the
// makespan, the span attribution (plus Other) reproduces the buckets
// class by class, no class is negative, and chain segments are
// ordered. It returns the first violation, or nil.
func (cp *CritPath) Check() error {
	const eps = 1e-6
	if d := float64(cp.Buckets.Total() - cp.Makespan); d < -eps || d > eps {
		return fmt.Errorf("obs: critical path buckets sum to %.6f but makespan is %.6f",
			float64(cp.Buckets.Total()), float64(cp.Makespan))
	}
	sum := cp.Other
	for _, s := range cp.Spans {
		sum.Add(s.Buckets)
	}
	for _, d := range []costmodel.Time{
		sum.Compute - cp.Buckets.Compute,
		sum.Startup - cp.Buckets.Startup,
		sum.Transfer - cp.Buckets.Transfer,
		sum.Idle - cp.Buckets.Idle,
	} {
		if d < -eps || d > eps {
			return fmt.Errorf("obs: critical path span attribution %+v does not reproduce buckets %+v",
				sum, cp.Buckets)
		}
	}
	if cp.Other.Compute < -eps || cp.Other.Startup < -eps ||
		cp.Other.Transfer < -eps || cp.Other.Idle < -eps {
		return fmt.Errorf("obs: critical path unattributed residue is negative: %+v", cp.Other)
	}
	prev := costmodel.Time(-1)
	for i, sg := range cp.Chain {
		if sg.T1 < sg.T0 {
			return fmt.Errorf("obs: chain segment %d ends at %.3f before it starts at %.3f",
				i, float64(sg.T1), float64(sg.T0))
		}
		if sg.T1 < prev {
			return fmt.Errorf("obs: chain segment %d ends at %.3f, before its predecessor's %.3f",
				i, float64(sg.T1), float64(prev))
		}
		prev = sg.T1
	}
	if cp.SkewUs > eps {
		return fmt.Errorf("obs: critical path reconciliation skew %g us", cp.SkewUs)
	}
	return nil
}

// WorstConformance returns the largest measured/predicted ratio in the
// report and the number of flagged entries (0, 0 with no entries).
func (cp *CritPath) WorstConformance() (ratio float64, flagged int) {
	for _, e := range cp.Conformance {
		if e.Ratio > ratio {
			ratio = e.Ratio
		}
		if e.Flagged {
			flagged++
		}
	}
	return ratio, flagged
}

// WriteText prints the path as a human-readable report: the one-line
// attribution sentence, the span table, the chain tail, and the
// conformance table.
func (cp *CritPath) WriteText(w io.Writer) {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "critical path: p=%d (d=%d)  makespan %.1f us  ends on proc %d  hops %d\n",
		cp.P, cp.Dim, float64(cp.Makespan), cp.EndProc, cp.Hops)
	if cp.Makespan > 0 {
		pct := func(t costmodel.Time) float64 { return 100 * float64(t) / float64(cp.Makespan) }
		fmt.Fprintf(bw, "attribution: compute %.1f%%  startup %.1f%%  transfer %.1f%%  idle %.1f%%\n",
			pct(cp.Buckets.Compute), pct(cp.Buckets.Startup),
			pct(cp.Buckets.Transfer), pct(cp.Buckets.Idle))
		fmt.Fprintf(bw, "%-32s %8s %11s %11s %11s %11s\n",
			"span on path", "share", "compute", "startup", "transfer", "idle")
		row := func(name string, b Buckets) {
			fmt.Fprintf(bw, "%-32s %7.1f%% %11.1f %11.1f %11.1f %11.1f\n",
				name, pct(b.Total()),
				float64(b.Compute), float64(b.Startup), float64(b.Transfer), float64(b.Idle))
		}
		for _, s := range cp.Spans {
			row(s.Name, s.Buckets)
		}
		if cp.Other.Total() > 0 {
			row("(outside spans)", cp.Other)
		}
	}
	if len(cp.ByDim) > 0 {
		fmt.Fprint(bw, "transfer by dimension:")
		for d, t := range cp.ByDim {
			if t > 0 {
				fmt.Fprintf(bw, "  d%d:%.1f", d, float64(t))
			}
		}
		fmt.Fprintln(bw)
	}
	if len(cp.Chain) > 0 {
		fmt.Fprintf(bw, "chain tail (last %d segments", len(cp.Chain))
		if cp.ChainDropped > 0 {
			fmt.Fprintf(bw, ", %d earlier dropped", cp.ChainDropped)
		}
		fmt.Fprint(bw, "):\n")
		for _, sg := range cp.Chain {
			span := sg.Span
			if span == "" {
				span = "-"
			}
			switch sg.Kind {
			case "hop":
				fmt.Fprintf(bw, "  %10.1f            hop %d -d%d-> %d  [%s]\n",
					float64(sg.T1), sg.From, sg.Dim, sg.Proc, span)
			case "send":
				fmt.Fprintf(bw, "  %10.1f %10.1f  proc %d %s d%d  [%s]\n",
					float64(sg.T0), float64(sg.T1), sg.Proc, sg.Kind, sg.Dim, span)
			default:
				fmt.Fprintf(bw, "  %10.1f %10.1f  proc %d %s  [%s]\n",
					float64(sg.T0), float64(sg.T1), sg.Proc, sg.Kind, span)
			}
		}
	}
	if len(cp.Conformance) > 0 {
		fmt.Fprintf(bw, "cost-model conformance (flag at measured/predicted > %.1f):\n", cp.Threshold)
		fmt.Fprintf(bw, "  %-30s %7s %12s %12s %7s %7s\n",
			"span", "count", "measured/op", "predicted/op", "ratio", "path%")
		for _, e := range cp.Conformance {
			mark := " "
			if e.Flagged {
				mark = "!"
			}
			fmt.Fprintf(bw, "%s %-30s %7d %12.1f %12.1f %7.2f %6.1f%%\n",
				mark, e.Name, e.Count, e.MeasuredUs, e.PredictedUs, e.Ratio, 100*e.PathShare)
		}
	}
	bw.Flush()
}

// jsonCritPath is the export schema; scripts/critpath_schema.json
// mirrors it and scripts/check.sh validates generated documents
// against that schema, so field changes must update both.
type jsonCritPath struct {
	Dim         int             `json:"dim"`
	P           int             `json:"p"`
	EndProc     int             `json:"end_proc"`
	MakespanUs  float64         `json:"makespan_us"`
	Buckets     Buckets         `json:"buckets_us"`
	Hops        int             `json:"hops"`
	SkewUs      float64         `json:"skew_us"`
	ByDimUs     []float64       `json:"transfer_by_dim_us"`
	Spans       []jsonPathSpan  `json:"spans"`
	OtherUs     float64         `json:"other_us"`
	Chain       []jsonPathSeg   `json:"chain"`
	Dropped     int             `json:"chain_dropped"`
	Conformance jsonConformance `json:"conformance"`
}

type jsonPathSpan struct {
	Name     string  `json:"name"`
	Compute  float64 `json:"compute_us"`
	Startup  float64 `json:"startup_us"`
	Transfer float64 `json:"transfer_us"`
	Idle     float64 `json:"idle_us"`
	TotalUs  float64 `json:"total_us"`
	Share    float64 `json:"share"`
}

type jsonPathSeg struct {
	Proc int     `json:"proc"`
	From int     `json:"from,omitempty"`
	Span string  `json:"span,omitempty"`
	Kind string  `json:"kind"`
	Dim  int     `json:"dim"`
	T0   float64 `json:"t0_us"`
	T1   float64 `json:"t1_us"`
}

type jsonConformance struct {
	Threshold float64         `json:"threshold"`
	Entries   []jsonConfEntry `json:"entries"`
}

type jsonConfEntry struct {
	Name        string  `json:"name"`
	Count       int64   `json:"count"`
	MeasuredUs  float64 `json:"measured_per_op_us"`
	PredictedUs float64 `json:"predicted_per_op_us"`
	Ratio       float64 `json:"ratio"`
	PathShare   float64 `json:"path_share"`
	Flagged     bool    `json:"flagged"`
}

func (cp *CritPath) jsonDoc() jsonCritPath {
	doc := jsonCritPath{
		Dim:        cp.Dim,
		P:          cp.P,
		EndProc:    cp.EndProc,
		MakespanUs: float64(cp.Makespan),
		Buckets:    cp.Buckets,
		Hops:       cp.Hops,
		SkewUs:     cp.SkewUs,
		ByDimUs:    make([]float64, len(cp.ByDim)),
		Spans:      make([]jsonPathSpan, 0, len(cp.Spans)),
		Chain:      make([]jsonPathSeg, 0, len(cp.Chain)),
		Dropped:    cp.ChainDropped,
		Conformance: jsonConformance{
			Threshold: cp.Threshold,
			Entries:   make([]jsonConfEntry, 0, len(cp.Conformance)),
		},
	}
	for d, t := range cp.ByDim {
		doc.ByDimUs[d] = float64(t)
	}
	share := func(t costmodel.Time) float64 {
		if cp.Makespan <= 0 {
			return 0
		}
		return float64(t) / float64(cp.Makespan)
	}
	for _, s := range cp.Spans {
		doc.Spans = append(doc.Spans, jsonPathSpan{
			Name:     s.Name,
			Compute:  float64(s.Buckets.Compute),
			Startup:  float64(s.Buckets.Startup),
			Transfer: float64(s.Buckets.Transfer),
			Idle:     float64(s.Buckets.Idle),
			TotalUs:  float64(s.Total()),
			Share:    share(s.Total()),
		})
	}
	doc.OtherUs = float64(cp.Other.Total())
	for _, sg := range cp.Chain {
		doc.Chain = append(doc.Chain, jsonPathSeg{
			Proc: sg.Proc, From: sg.From, Span: sg.Span, Kind: sg.Kind,
			Dim: sg.Dim, T0: float64(sg.T0), T1: float64(sg.T1),
		})
	}
	for _, e := range cp.Conformance {
		doc.Conformance.Entries = append(doc.Conformance.Entries, jsonConfEntry{
			Name: e.Name, Count: e.Count, MeasuredUs: e.MeasuredUs,
			PredictedUs: e.PredictedUs, Ratio: e.Ratio,
			PathShare: e.PathShare, Flagged: e.Flagged,
		})
	}
	return doc
}

// WriteJSON writes the machine-readable critical-path document (the
// schema scripts/critpath_schema.json describes).
func (cp *CritPath) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cp.jsonDoc())
}

// MarshalJSON embeds the same document when a CritPath appears inside
// another JSON structure (profile JSON, post-mortem reports).
func (cp *CritPath) MarshalJSON() ([]byte, error) {
	return json.Marshal(cp.jsonDoc())
}

// SortSpansByShare orders the span attribution largest-total first
// (ties by name) — the order WriteText prints and producers store.
func SortSpansByShare(spans []PathSpan) {
	sort.SliceStable(spans, func(i, j int) bool {
		ti, tj := spans[i].Total(), spans[j].Total()
		if ti != tj {
			return ti > tj
		}
		return spans[i].Name < spans[j].Name
	})
}
