package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"vmprim/internal/costmodel"
)

func sampleCritPath() *CritPath {
	return &CritPath{
		Dim: 2, P: 4, EndProc: 3, Makespan: 100,
		Buckets: Buckets{Compute: 40, Startup: 30, Transfer: 20, Idle: 10},
		Hops:    2,
		ByDim:   []costmodel.Time{12, 8},
		Spans: []PathSpan{
			{Name: "eliminate", Buckets: Buckets{Compute: 40, Startup: 20, Transfer: 15}},
			{Name: "eliminate>bcast", Buckets: Buckets{Startup: 10, Transfer: 5, Idle: 4}},
		},
		Other: Buckets{Idle: 6},
		Chain: []PathSegment{
			{Proc: 1, From: -1, Span: "eliminate", Kind: "compute", Dim: -1, T0: 0, T1: 40},
			{Proc: 1, From: -1, Span: "eliminate>bcast", Kind: "send", Dim: 1, T0: 40, T1: 90},
			{Proc: 3, From: 1, Span: "eliminate>bcast", Kind: "hop", Dim: 1, T0: 90, T1: 90},
			{Proc: 3, From: -1, Span: "", Kind: "idle", Dim: -1, T0: 90, T1: 100},
		},
		ChainDropped: 7,
		Threshold:    2.0,
		Conformance: []ConformanceEntry{
			{Name: "route", Count: 2, MeasuredUs: 50, PredictedUs: 10, Ratio: 5, PathShare: 0.3, Flagged: true},
			{Name: "eliminate>bcast", Count: 4, MeasuredUs: 11, PredictedUs: 10, Ratio: 1.1, PathShare: 0.19},
		},
	}
}

func TestCritPathCheckAcceptsConsistentPath(t *testing.T) {
	if err := sampleCritPath().Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCritPathCheckCatchesViolations(t *testing.T) {
	cases := map[string]func(cp *CritPath){
		"buckets != makespan": func(cp *CritPath) { cp.Makespan = 99 },
		"span attribution":    func(cp *CritPath) { cp.Spans[0].Buckets.Compute = 41 },
		"negative other":      func(cp *CritPath) { cp.Other.Idle = -6; cp.Buckets.Idle -= 12 },
		"segment order":       func(cp *CritPath) { cp.Chain[1].T1 = 5 },
		"segment backwards":   func(cp *CritPath) { cp.Chain[0].T1 = -1 },
		"skew":                func(cp *CritPath) { cp.SkewUs = 0.5 },
	}
	for name, mutate := range cases {
		cp := sampleCritPath()
		mutate(cp)
		if err := cp.Check(); err == nil {
			t.Errorf("%s: Check accepted an inconsistent path", name)
		}
	}
}

func TestCritPathWorstConformance(t *testing.T) {
	ratio, flagged := sampleCritPath().WorstConformance()
	if ratio != 5 || flagged != 1 {
		t.Fatalf("WorstConformance = %g, %d; want 5, 1", ratio, flagged)
	}
	empty := &CritPath{}
	if r, f := empty.WorstConformance(); r != 0 || f != 0 {
		t.Fatalf("empty = %g, %d", r, f)
	}
}

func TestCritPathWriteText(t *testing.T) {
	var buf strings.Builder
	sampleCritPath().WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"critical path: p=4 (d=2)  makespan 100.0 us  ends on proc 3  hops 2",
		"compute 40.0%",
		"eliminate",
		"(outside spans)",
		"hop 1 -d1-> 3",
		"7 earlier dropped",
		"cost-model conformance (flag at measured/predicted > 2.0)",
		"! route",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestCritPathJSONRoundTrip(t *testing.T) {
	cp := sampleCritPath()
	var buf strings.Builder
	if err := cp.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Dim        int     `json:"dim"`
		P          int     `json:"p"`
		EndProc    int     `json:"end_proc"`
		MakespanUs float64 `json:"makespan_us"`
		Spans      []struct {
			Name    string  `json:"name"`
			TotalUs float64 `json:"total_us"`
			Share   float64 `json:"share"`
		} `json:"spans"`
		Chain []struct {
			Kind string `json:"kind"`
		} `json:"chain"`
		Conformance struct {
			Threshold float64 `json:"threshold"`
			Entries   []struct {
				Name    string `json:"name"`
				Flagged bool   `json:"flagged"`
			} `json:"entries"`
		} `json:"conformance"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Dim != 2 || doc.P != 4 || doc.EndProc != 3 || doc.MakespanUs != 100 {
		t.Fatalf("header = %+v", doc)
	}
	if len(doc.Spans) != 2 || doc.Spans[0].Name != "eliminate" || doc.Spans[0].TotalUs != 75 {
		t.Fatalf("spans = %+v", doc.Spans)
	}
	if doc.Spans[0].Share != 0.75 {
		t.Fatalf("share = %g", doc.Spans[0].Share)
	}
	if len(doc.Chain) != 4 || doc.Chain[2].Kind != "hop" {
		t.Fatalf("chain = %+v", doc.Chain)
	}
	if doc.Conformance.Threshold != 2.0 || len(doc.Conformance.Entries) != 2 ||
		!doc.Conformance.Entries[0].Flagged {
		t.Fatalf("conformance = %+v", doc.Conformance)
	}
	// MarshalJSON (embedded form) must produce the same document.
	embedded, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	var a, b any
	if err := json.Unmarshal(embedded, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(buf.String()), &b); err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("MarshalJSON and WriteJSON documents differ")
	}
}

func TestSortSpansByShare(t *testing.T) {
	spans := []PathSpan{
		{Name: "b", Buckets: Buckets{Compute: 5}},
		{Name: "a", Buckets: Buckets{Compute: 5}},
		{Name: "c", Buckets: Buckets{Compute: 50}},
	}
	SortSpansByShare(spans)
	if spans[0].Name != "c" || spans[1].Name != "a" || spans[2].Name != "b" {
		t.Fatalf("order = %v", spans)
	}
}
