package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"vmprim/internal/bench"
	"vmprim/internal/obs"
)

// The profiler invariants, checked on real experiment workloads: the
// bench package runs the representative E1–E5 configurations with the
// profiler on, so these tests exercise the whole stack — machine,
// collectives, router, primitives, app drivers — not synthetic data.

// TestProfiledTimesBitIdentical is the core non-perturbation claim:
// running a workload with the profiler on must give digit-for-digit
// the same simulated times as running it with the profiler off.
func TestProfiledTimesBitIdentical(t *testing.T) {
	for _, id := range []string{"E1", "E3"} {
		off, err := bench.ProfileRun(id, false)
		if err != nil {
			t.Fatal(err)
		}
		on, err := bench.ProfileRun(id, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(off.Times) != len(on.Times) {
			t.Fatalf("%s: run counts differ: %d vs %d", id, len(off.Times), len(on.Times))
		}
		for i := range off.Times {
			if off.Times[i] != on.Times[i] {
				t.Errorf("%s run %d: %g us off vs %g us on", id, i, float64(off.Times[i]), float64(on.Times[i]))
			}
		}
		if off.Profile != nil {
			t.Errorf("%s: profile present with enable=false", id)
		}
		if on.Profile == nil {
			t.Errorf("%s: profile missing with enable=true", id)
		}
	}
}

func e2Profile(t *testing.T) *obs.Profile {
	t.Helper()
	res, err := bench.ProfileRun("E2", true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile == nil {
		t.Fatal("no profile")
	}
	return res.Profile
}

func TestProfileInvariants(t *testing.T) {
	pf := e2Profile(t)
	if err := pf.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if skew := pf.BucketSkew(); skew != 0 {
		t.Fatalf("bucket skew %g, want exact 0", float64(skew))
	}
	// Per-processor bucket sums equal the final virtual clocks.
	for pid, b := range pf.ProcTotals {
		if b.Total() != pf.Clocks[pid] {
			t.Fatalf("proc %d: buckets %g != clock %g", pid, float64(b.Total()), float64(pf.Clocks[pid]))
		}
	}
	// Inclusive time of every span covers the exclusive time of its
	// children (summed over processors, both sides).
	var walk func(s *obs.Span)
	walk = func(s *obs.Span) {
		var childExcl, childIncl obs.Span
		for _, c := range s.Children {
			childExcl.Excl += c.Excl
			childIncl.Incl += c.Incl
			walk(c)
		}
		if s.Incl < childExcl.Excl {
			t.Fatalf("span %q: incl %g < sum of children excl %g", s.Name, float64(s.Incl), float64(childExcl.Excl))
		}
		if s.Incl < childIncl.Incl {
			t.Fatalf("span %q: incl %g < sum of children incl %g", s.Name, float64(s.Incl), float64(childIncl.Incl))
		}
	}
	walk(pf.Root)
	// The synthetic root aggregates every processor's whole clock.
	var clocks float64
	for _, c := range pf.Clocks {
		clocks += float64(c)
	}
	if float64(pf.Root.Incl) != clocks {
		t.Fatalf("root incl %g != sum of clocks %g", float64(pf.Root.Incl), clocks)
	}
	if pf.Root.MaxIncl != pf.Elapsed {
		t.Fatalf("root max incl %g != elapsed %g", float64(pf.Root.MaxIncl), float64(pf.Elapsed))
	}
}

func TestProfileExportsAreValidJSON(t *testing.T) {
	pf := e2Profile(t)
	var buf bytes.Buffer
	if err := pf.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		P        int `json:"p"`
		Dim      int `json:"dim"`
		SkewUs   any `json:"bucket_skew_us"`
		Spans    any `json:"spans"`
		Congest  any `json:"congestion"`
		Elapsed  any `json:"elapsed_us"`
		Buckets  any `json:"buckets_mean_us"`
		Messages any `json:"msgs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("profile JSON: %v", err)
	}
	if doc.P != pf.P || doc.Dim != pf.Dim || doc.Spans == nil {
		t.Fatalf("profile JSON missing fields: %+v", doc)
	}

	buf.Reset()
	if err := pf.ChromeTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("Chrome trace JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("Chrome trace has no events")
	}
	var spans, flows int
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
		case "s", "f":
			flows++
		}
	}
	if spans == 0 {
		t.Fatal("Chrome trace has no complete (span) events")
	}
	if flows == 0 {
		t.Fatal("Chrome trace has no flow (message) events — EnableTrace was set, arrows expected")
	}
	var tree bytes.Buffer
	pf.WriteTree(&tree)
	if !bytes.Contains(tree.Bytes(), []byte("reduce-rows")) {
		t.Fatalf("text tree missing expected span:\n%s", tree.String())
	}
}
