package costmodel

// Analytic completion-time predictors for the structured collectives,
// used by the critical-path tracer's conformance report: each
// collective records, at entry, what the cost model says its slowest
// participant should need, and the report compares that against the
// measured virtual time. The formulas mirror the protocols in
// internal/collective step for step (the cost shapes documented in
// that package's comment), so on a run that matches the model —
// simultaneous entry, no upstream skew — the measured/predicted ratio
// is 1.0 and any sustained excess is divergence worth explaining:
// entry skew, congestion, or a protocol regression.
//
// Throughout, k is the subcube dimension (popcount of the mask) and n
// a payload length in words; what n means per collective matches the
// corresponding function in internal/collective.

// PredictBcast is the binomial-tree broadcast of n words over a
// k-dimensional subcube: k serialized full-payload sends, and every
// participant (root and leaves alike) finishes after exactly k steps.
func PredictBcast(p Params, k, n int) Time {
	return Time(k) * p.SendCost(n)
}

// PredictReduce is the binomial-tree reduction: the root's chain is k
// receive-and-combine steps, each one message of n words plus n
// combining flops.
func PredictReduce(p Params, k, n int) Time {
	return Time(k) * (p.SendCost(n) + p.FlopCost(n))
}

// PredictReduceScatter is recursive halving: step i exchanges and
// combines n/2^(i+1) words, so the payload terms telescope to
// n*(1-1/2^k) while the k start-ups remain.
func PredictReduceScatter(p Params, k, n int) Time {
	if k == 0 {
		return 0
	}
	frac := 1 - 1/float64(int64(1)<<uint(k))
	return Time(k)*p.CommStartup +
		Time(float64(n)*frac*float64(p.CommPerWord+p.FlopTime))
}

// PredictAllGather is recursive doubling from a piece-word slice per
// member: step i exchanges piece*2^i words, summing to piece*(2^k-1).
func PredictAllGather(p Params, k, piece int) Time {
	if k == 0 {
		return 0
	}
	words := int64(piece) * (int64(1)<<uint(k) - 1)
	return Time(k)*p.CommStartup + Time(words)*p.CommPerWord
}

// PredictAllReduce mirrors collective.AllReduce's own algorithm
// switch: recursive doubling (k full-payload exchange-and-combine
// steps) unless halving+doubling is modelled cheaper and the length
// divides, exactly the condition the implementation tests.
func PredictAllReduce(p Params, k, n int) Time {
	if k == 0 {
		return 0
	}
	doubling := float64(k) * (float64(p.CommStartup) + float64(n)*float64(p.CommPerWord))
	halving := 2*float64(k)*float64(p.CommStartup) + 2*float64(n)*float64(p.CommPerWord)
	if n%(1<<uint(k)) == 0 && n > 0 && halving < doubling {
		return PredictReduceScatter(p, k, n) + PredictAllGather(p, k, n>>uint(k))
	}
	return Time(k) * (p.SendCost(n) + p.FlopCost(n))
}

// PredictScatter is the binomial-tree scatter of n total payload words
// from the root, counting the hdr header words the implementation
// prefixes to each of the 2^k segments: the deepest leaf's chain (and
// the root's serial send sequence — they coincide) moves n*(1-1/2^k)
// payload words plus headers for 2(2^k-1) forwarded segments over k
// start-ups.
func PredictScatter(p Params, k, n, hdr int) Time {
	if k == 0 {
		return 0
	}
	frac := 1 - 1/float64(int64(1)<<uint(k))
	hdrWords := float64(hdr) * 2 * float64(int64(1)<<uint(k)-1)
	return Time(k)*p.CommStartup +
		Time((float64(n)*frac+hdrWords)*float64(p.CommPerWord))
}

// PredictGather is the mirror image of PredictScatter: piece words per
// member flow up the same tree, so the chain volume is identical with
// n = piece*2^k.
func PredictGather(p Params, k, piece, hdr int) Time {
	return PredictScatter(p, k, piece*(1<<uint(k)), hdr)
}

// PredictAllToAll is pairwise exchange with per-member payloads of sz
// words: each of the k steps moves half of the 2^k slots.
func PredictAllToAll(p Params, k, sz int) Time {
	if k == 0 {
		return 0
	}
	words := int64(sz) * (int64(1) << uint(k-1))
	return Time(k) * p.SendCost(int(words))
}

// PredictScan is the hypercube prefix: k full-payload exchanges, and
// the highest-address member combines both the running total and its
// prefix every step (2n flops).
func PredictScan(p Params, k, n int) Time {
	return Time(k) * (p.SendCost(n) + p.FlopCost(2*n))
}

// PredictBcastAllPort is the rotated-tree all-port broadcast: k steps,
// each charged one start-up plus one n/k-word piece because the k
// trees drive distinct ports concurrently. Only meaningful under
// AllPorts — on a one-port machine the schedule serializes and the
// collective deliberately records no prediction.
func PredictBcastAllPort(p Params, k, n int) Time {
	if k == 0 {
		return 0
	}
	return Time(k) * p.SendCost(n/k)
}

// PredictReduceAllPort adds the per-step piece combining to the
// all-port schedule of PredictBcastAllPort.
func PredictReduceAllPort(p Params, k, n int) Time {
	if k == 0 {
		return 0
	}
	return Time(k) * (p.SendCost(n/k) + p.FlopCost(n/k))
}

// PredictRoute is the congestion-free model of one dimension-ordered
// routing operation for a processor injecting msgs messages totalling
// words payload words (hdr wire-header words per message): under
// uniform traffic each of the dims phases forwards about half the
// local volume, paying the router's phase charge plus the link
// transfer of the flattened batch. Hot-spot traffic concentrates far
// more than half the volume on some processors, which is exactly the
// divergence the conformance report exists to surface — the paper's
// router-vs-primitive gap as a per-run measurement.
func PredictRoute(p Params, dims, msgs, words, hdr int) Time {
	mh := float64(msgs) / 2
	wh := float64(words) / 2
	perPhase := float64(p.RouteStartup) + wh*float64(p.RoutePerWord) + mh*float64(p.RoutePerMsg) +
		float64(p.CommStartup) + (wh+mh*float64(hdr))*float64(p.CommPerWord)
	return Time(float64(dims) * perPhase)
}
