package costmodel

import "testing"

// The predictor values below are hand-computed from the CM2 preset
// (start-up 100, per-word 4, flop 1; router 200/4/2) so a formula
// regression shows up as a concrete number, not a symbolic identity.

func TestPredictorsAgainstHandComputedCM2(t *testing.T) {
	p := CM2()
	cases := []struct {
		name string
		got  Time
		want float64
	}{
		{"bcast k=3 n=10", PredictBcast(p, 3, 10), 3 * (100 + 40)},
		{"reduce k=3 n=10", PredictReduce(p, 3, 10), 3 * (100 + 40 + 10)},
		{"reduce-scatter k=2 n=8", PredictReduceScatter(p, 2, 8), 200 + 8*0.75*(4+1)},
		{"all-gather k=2 piece=4", PredictAllGather(p, 2, 4), 200 + 12*4},
		{"scatter k=2 n=8 hdr=2", PredictScatter(p, 2, 8, 2), 200 + (8*0.75+12)*4},
		{"all-to-all k=2 sz=3", PredictAllToAll(p, 2, 3), 2 * (100 + 6*4)},
		{"scan k=2 n=5", PredictScan(p, 2, 5), 2 * (100 + 20 + 10)},
		{"bcast-allport k=4 n=16", PredictBcastAllPort(p, 4, 16), 4 * (100 + 16)},
		{"reduce-allport k=4 n=16", PredictReduceAllPort(p, 4, 16), 4 * (100 + 16 + 4)},
		{"route d=2 m=4 w=10 hdr=2", PredictRoute(p, 2, 4, 10, 2),
			2 * (200 + 5*4 + 2*2 + 100 + (5+2*2)*4)},
	}
	for _, c := range cases {
		if float64(c.got) != c.want {
			t.Errorf("%s = %g, want %g", c.name, float64(c.got), c.want)
		}
	}
}

func TestPredictGatherMirrorsScatter(t *testing.T) {
	p := IPSC()
	if g, s := PredictGather(p, 3, 16, 2), PredictScatter(p, 3, 16*8, 2); g != s {
		t.Fatalf("gather %g != scatter with the total volume %g", float64(g), float64(s))
	}
}

// TestPredictAllReduceMirrorsAlgorithmSwitch pins the predictor to the
// exact branch condition collective.AllReduce evaluates.
func TestPredictAllReduceMirrorsAlgorithmSwitch(t *testing.T) {
	p := CM2()
	// Long divisible payload: halving+doubling wins, so the prediction
	// is reduce-scatter plus all-gather.
	long := PredictAllReduce(p, 3, 512)
	if want := PredictReduceScatter(p, 3, 512) + PredictAllGather(p, 3, 64); long != want {
		t.Fatalf("long all-reduce = %g, want halving+doubling %g", float64(long), float64(want))
	}
	// Short payload: recursive doubling with combining at every step.
	short := PredictAllReduce(p, 3, 4)
	if want := Time(3) * (p.SendCost(4) + p.FlopCost(4)); short != want {
		t.Fatalf("short all-reduce = %g, want recursive doubling %g", float64(short), float64(want))
	}
}

func TestPredictorsZeroOnEmptySubcube(t *testing.T) {
	p := CM2()
	for name, got := range map[string]Time{
		"bcast":          PredictBcast(p, 0, 100),
		"reduce-scatter": PredictReduceScatter(p, 0, 100),
		"all-gather":     PredictAllGather(p, 0, 100),
		"all-reduce":     PredictAllReduce(p, 0, 100),
		"scatter":        PredictScatter(p, 0, 100, 2),
		"all-to-all":     PredictAllToAll(p, 0, 100),
		"bcast-allport":  PredictBcastAllPort(p, 0, 100),
		"reduce-allport": PredictReduceAllPort(p, 0, 100),
		"route":          PredictRoute(p, 0, 3, 100, 2),
	} {
		if got != 0 {
			t.Errorf("%s with k=0 = %g, want 0", name, float64(got))
		}
	}
}
