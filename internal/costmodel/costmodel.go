// Package costmodel defines the machine parameter sets that drive the
// hypercube simulator's virtual clocks.
//
// The SPAA 1989 analysis of the four vector-matrix primitives is
// expressed in three architectural constants: the communication
// start-up time (tau), the per-word transfer time along a cube edge
// (t_c), and the time of a local floating-point operation (t_f). The
// simulator charges every send tau + n*t_c, every local loop n*t_f,
// and reports the maximum virtual clock over all processors as the run
// time. Reproducing the paper therefore reduces to choosing parameter
// sets with 1989-plausible ratios; the presets below give a Connection
// Machine-like machine (large start-up relative to arithmetic, the
// regime in which structured primitives beat the general router by
// almost an order of magnitude), an Intel iPSC-like machine (even
// larger start-up), and an idealized PRAM-ish machine for asymptotic
// checks.
package costmodel

import "fmt"

// Time is simulated machine time in microseconds. All virtual clocks
// and reported experiment timings use this unit.
type Time float64

// Params is the architectural parameter set of a simulated hypercube.
type Params struct {
	// CommStartup is the fixed cost tau of initiating one message on a
	// cube edge, in microseconds.
	CommStartup Time
	// CommPerWord is the transfer time t_c per 64-bit word on a cube
	// edge, in microseconds.
	CommPerWord Time
	// FlopTime is the time t_f of one local floating-point operation,
	// in microseconds.
	FlopTime Time
	// RouteStartup is the per-hop start-up cost of the general router
	// (the "naive" communication substrate). On the Connection Machine
	// the router was substantially more expensive per access than a
	// NEWS/cube-edge transfer; naive implementations pay this on every
	// hop of every routed message batch.
	RouteStartup Time
	// RoutePerWord is the per-word per-hop transfer cost of the
	// general router.
	RoutePerWord Time
	// RoutePerMsg is the per-message handling overhead of the general
	// router (address decode, queueing) paid on every hop for every
	// message forwarded. It is what punishes the naive implementations
	// for not combining messages: routing m one-element messages costs
	// m times this overhead where a structured primitive pays one
	// start-up for the whole block.
	RoutePerMsg Time
	// AllPorts selects the communication port model. When false (the
	// default, and the model of the paper's implementation section) a
	// processor uses one port at a time, so sends on distinct cube
	// dimensions serialize. When true, sends issued in one exchange
	// phase on distinct dimensions overlap and only the largest is
	// charged; this is the ablation A1 machine.
	AllPorts bool
}

// Validate reports an error if any parameter is negative or the model
// could not make progress (all costs zero is allowed: it is the
// "count-only" machine used by some tests).
func (p Params) Validate() error {
	if p.CommStartup < 0 || p.CommPerWord < 0 || p.FlopTime < 0 ||
		p.RouteStartup < 0 || p.RoutePerWord < 0 || p.RoutePerMsg < 0 {
		return fmt.Errorf("costmodel: negative parameter in %+v", p)
	}
	return nil
}

// SendCost returns the virtual-time cost of transmitting n words over
// one cube edge.
func (p Params) SendCost(n int) Time {
	return p.CommStartup + Time(n)*p.CommPerWord
}

// RouteHopCost returns the virtual-time cost of forwarding n words one
// hop through the general router.
func (p Params) RouteHopCost(n int) Time {
	return p.RouteStartup + Time(n)*p.RoutePerWord
}

// RoutePhaseCost returns the virtual-time cost of one routing phase in
// which a processor forwards msgs messages totalling n words: one
// start-up for the phase, per-word transfer, and per-message handling.
func (p Params) RoutePhaseCost(msgs, n int) Time {
	return p.RouteStartup + Time(n)*p.RoutePerWord + Time(msgs)*p.RoutePerMsg
}

// FlopCost returns the virtual-time cost of n local floating-point
// operations.
func (p Params) FlopCost(n int) Time {
	return Time(n) * p.FlopTime
}

// CM2 returns Connection Machine CM-2-like parameters. The ratios are
// what matter: start-up dominates small transfers (tau/t_c = 25,
// tau/t_f = 100), and the general router costs several times a cube
// edge per hop. These ratios place the primitive-vs-naive gap in the
// "almost an order of magnitude" band the paper reports.
func CM2() Params {
	return Params{
		CommStartup:  100, // microseconds per message start-up
		CommPerWord:  4,
		FlopTime:     1,
		RouteStartup: 200,
		RoutePerWord: 4,
		RoutePerMsg:  2,
	}
}

// IPSC returns Intel iPSC/1-like parameters: very high start-up
// relative to both transfer and arithmetic, the regime in which
// message-combining matters most.
func IPSC() Params {
	return Params{
		CommStartup:  1000,
		CommPerWord:  10,
		FlopTime:     2,
		RouteStartup: 2000,
		RoutePerWord: 10,
		RoutePerMsg:  5,
	}
}

// Ideal returns a machine with unit costs and free start-up. It is
// used for asymptotic property tests, where constant factors would
// obscure the complexity being checked.
func Ideal() Params {
	return Params{
		CommStartup:  0,
		CommPerWord:  1,
		FlopTime:     1,
		RouteStartup: 0,
		RoutePerWord: 1,
		RoutePerMsg:  1,
	}
}

// CountOnly returns the all-zero parameter set: virtual clocks stay at
// zero and only message/flop counters advance. Tests that assert
// communication volumes use it.
func CountOnly() Params { return Params{} }

// WithStartup returns a copy of p with CommStartup set to tau. The
// broadcast and matvec-variant crossover ablations sweep tau this way.
func (p Params) WithStartup(tau Time) Params {
	p.CommStartup = tau
	return p
}

// WithAllPorts returns a copy of p with the port model set.
func (p Params) WithAllPorts(all bool) Params {
	p.AllPorts = all
	return p
}
