package costmodel

import (
	"testing"
	"testing/quick"
)

func TestPresetsValid(t *testing.T) {
	for name, p := range map[string]Params{
		"CM2": CM2(), "IPSC": IPSC(), "Ideal": Ideal(), "CountOnly": CountOnly(),
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestValidateRejectsNegative(t *testing.T) {
	p := CM2()
	p.FlopTime = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative FlopTime accepted")
	}
}

func TestSendCost(t *testing.T) {
	p := Params{CommStartup: 10, CommPerWord: 2}
	if got := p.SendCost(5); got != 20 {
		t.Fatalf("SendCost(5) = %v, want 20", got)
	}
	if got := p.SendCost(0); got != 10 {
		t.Fatalf("SendCost(0) = %v, want 10", got)
	}
}

func TestRouteHopCost(t *testing.T) {
	p := Params{RouteStartup: 7, RoutePerWord: 3}
	if got := p.RouteHopCost(4); got != 19 {
		t.Fatalf("RouteHopCost(4) = %v, want 19", got)
	}
}

func TestFlopCost(t *testing.T) {
	p := Params{FlopTime: 0.5}
	if got := p.FlopCost(8); got != 4 {
		t.Fatalf("FlopCost(8) = %v, want 4", got)
	}
}

func TestSendCostMonotone(t *testing.T) {
	p := CM2()
	f := func(a, b uint16) bool {
		n, m := int(a), int(b)
		if n > m {
			n, m = m, n
		}
		return p.SendCost(n) <= p.SendCost(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRouterDominatesEdge(t *testing.T) {
	// The general router must be at least as expensive per hop as a
	// structured edge transfer in every realistic preset; the naive
	// baseline's disadvantage depends on it.
	for name, p := range map[string]Params{"CM2": CM2(), "IPSC": IPSC()} {
		for _, n := range []int{0, 1, 16, 1024} {
			if p.RouteHopCost(n) < p.SendCost(n) {
				t.Errorf("%s: router cheaper than edge at n=%d", name, n)
			}
		}
	}
}

func TestWithStartup(t *testing.T) {
	p := CM2().WithStartup(42)
	if p.CommStartup != 42 {
		t.Fatal("WithStartup did not set")
	}
	if CM2().CommStartup == 42 {
		t.Fatal("WithStartup mutated the preset")
	}
}

func TestWithAllPorts(t *testing.T) {
	if !CM2().WithAllPorts(true).AllPorts {
		t.Fatal("WithAllPorts(true) not set")
	}
	if CM2().WithAllPorts(false).AllPorts {
		t.Fatal("WithAllPorts(false) set")
	}
}

func TestCountOnlyIsFree(t *testing.T) {
	p := CountOnly()
	if p.SendCost(100) != 0 || p.FlopCost(100) != 0 || p.RouteHopCost(100) != 0 {
		t.Fatal("CountOnly charges time")
	}
}
