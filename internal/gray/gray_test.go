package gray

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for i := 0; i < 1<<14; i++ {
		if got := Decode(Encode(i)); got != i {
			t.Fatalf("Decode(Encode(%d)) = %d", i, got)
		}
	}
}

func TestEncodeAdjacency(t *testing.T) {
	for i := 0; i < 1<<14; i++ {
		d := Encode(i) ^ Encode(i+1)
		if bits.OnesCount(uint(d)) != 1 {
			t.Fatalf("gray(%d) and gray(%d) differ in %d bits", i, i+1, bits.OnesCount(uint(d)))
		}
	}
}

func TestEncodeIsPermutation(t *testing.T) {
	const n = 1 << 12
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		g := Encode(i)
		if g < 0 || g >= n {
			t.Fatalf("Encode(%d) = %d out of range", i, g)
		}
		if seen[g] {
			t.Fatalf("Encode not injective at %d", i)
		}
		seen[g] = true
	}
}

func TestChangeBit(t *testing.T) {
	for i := 0; i < 1<<12; i++ {
		want := bits.TrailingZeros(uint(Encode(i) ^ Encode(i+1)))
		if got := ChangeBit(i); got != want {
			t.Fatalf("ChangeBit(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(x uint16) bool { return Decode(Encode(int(x))) == int(x) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLog2(t *testing.T) {
	for d := 0; d < 30; d++ {
		if got := Log2(1 << d); got != d {
			t.Fatalf("Log2(1<<%d) = %d", d, got)
		}
	}
	for _, bad := range []int{0, -4, 3, 6, 12, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Log2(%d) did not panic", bad)
				}
			}()
			Log2(bad)
		}()
	}
}

func TestIsPow2(t *testing.T) {
	cases := map[int]bool{
		-8: false, -1: false, 0: false, 1: true, 2: true, 3: false,
		4: true, 6: false, 8: true, 1 << 20: true, 1<<20 + 1: false,
	}
	for n, want := range cases {
		if got := IsPow2(n); got != want {
			t.Errorf("IsPow2(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{
		0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 9: 16, 16: 16, 17: 32, 1000: 1024,
	}
	for n, want := range cases {
		if got := CeilPow2(n); got != want {
			t.Errorf("CeilPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestDims(t *testing.T) {
	got := Dims(0b101101)
	want := []int{0, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Dims = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Dims = %v, want %v", got, want)
		}
	}
	if len(Dims(0)) != 0 {
		t.Fatal("Dims(0) not empty")
	}
}

func TestSpreadCompactRoundTrip(t *testing.T) {
	f := func(x uint8, mask uint16) bool {
		m := int(mask)
		n := bits.OnesCount(uint(mask))
		v := int(x) & ((1 << n) - 1)
		if n > 8 {
			v = int(x)
		}
		return Compact(Spread(v, m), m) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSpreadStaysInMask(t *testing.T) {
	f := func(x uint8, mask uint16) bool {
		return Spread(int(x), int(mask))&^int(mask) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSpreadCompactExamples(t *testing.T) {
	// mask 0b1010: positions 1 and 3.
	if got := Spread(0b01, 0b1010); got != 0b0010 {
		t.Fatalf("Spread(01,1010) = %b", got)
	}
	if got := Spread(0b11, 0b1010); got != 0b1010 {
		t.Fatalf("Spread(11,1010) = %b", got)
	}
	if got := Compact(0b1000, 0b1010); got != 0b10 {
		t.Fatalf("Compact(1000,1010) = %b", got)
	}
}

func TestPath(t *testing.T) {
	p := Path(0b0110, 0b1100)
	want := []int{1, 3}
	if len(p) != len(want) || p[0] != want[0] || p[1] != want[1] {
		t.Fatalf("Path = %v, want %v", p, want)
	}
	if len(Path(5, 5)) != 0 {
		t.Fatal("Path(a,a) not empty")
	}
}

func TestOnesCount(t *testing.T) {
	if OnesCount(0b1011) != 3 {
		t.Fatal("OnesCount")
	}
}
