// Package gray provides binary-reflected Gray codes and Boolean-cube
// bit utilities. Gray codes are the embedding substrate of the library:
// a d-bit binary-reflected Gray code maps a ring (or line) of 2^d grid
// coordinates onto a d-dimensional Boolean cube so that adjacent
// coordinates are cube neighbors (Hamming distance one). Matrix and
// vector embeddings in internal/embed use one Gray code per processor
// grid axis, following the load-balanced embeddings of Agrawal,
// Blelloch, Krawitz and Phillips (SPAA 1989) and the mesh-embedding
// literature it builds on (Ho & Johnsson).
package gray

import (
	"math/bits"
	"sync"
)

// Encode returns the binary-reflected Gray code of i: g = i XOR (i >> 1).
// Successive integers map to codes at Hamming distance one.
func Encode(i int) int {
	return i ^ (i >> 1)
}

// Decode inverts Encode: it returns the integer whose Gray code is g.
func Decode(g int) int {
	i := 0
	for ; g != 0; g >>= 1 {
		i ^= g
	}
	return i
}

// ChangeBit returns the index of the bit that changes between the Gray
// codes of i and i+1. For the binary-reflected code this is the number
// of trailing ones of i, equivalently the lowest set bit of i+1.
func ChangeBit(i int) int {
	return bits.TrailingZeros(uint(i + 1))
}

// Log2 returns the base-2 logarithm of the power of two n.
// It panics if n is not a positive power of two: cube sizes, grid
// extents and block counts in this library are powers of two by
// construction, so a non-power is a programming error.
func Log2(n int) int {
	if n <= 0 || n&(n-1) != 0 {
		panic("gray: Log2 of non-power-of-two")
	}
	return bits.TrailingZeros(uint(n))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// CeilPow2 returns the smallest power of two >= n (n >= 1).
func CeilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// CeilLog2 returns ceil(log2(n)) for n >= 1.
func CeilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// OnesCount returns the number of set bits of x (the Hamming weight).
// The Hamming distance between two cube addresses a and b is
// OnesCount(a ^ b): the number of cube edges on a shortest path.
func OnesCount(x int) int {
	return bits.OnesCount(uint(x))
}

// Dims returns the indices of the set bits of mask in increasing
// order. Collectives iterate over subcube dimension masks this way.
func Dims(mask int) []int {
	if cached, ok := dimsCache.Load(mask); ok {
		return cached.([]int)
	}
	ds := make([]int, 0, bits.OnesCount(uint(mask)))
	for m := mask; m != 0; m &= m - 1 {
		ds = append(ds, bits.TrailingZeros(uint(m)))
	}
	dimsCache.Store(mask, ds)
	return ds
}

// dimsCache memoizes Dims per mask: collectives call it on every
// invocation with a handful of distinct masks, so the cache makes the
// hot path allocation-free. Cached slices are shared — callers must
// treat the result as read-only (all in-tree callers do).
var dimsCache sync.Map

// Spread distributes the low bits of x into the set-bit positions of
// mask, lowest bit first. It is the inverse of Compact and maps a
// subcube-relative coordinate to the full cube address contribution.
func Spread(x, mask int) int {
	r := 0
	for m := mask; m != 0; m &= m - 1 {
		bit := m & -m
		if x&1 != 0 {
			r |= bit
		}
		x >>= 1
	}
	return r
}

// Compact gathers the bits of x at the set-bit positions of mask into
// the low bits of the result, lowest mask bit first. It maps a full
// cube address to a subcube-relative coordinate.
func Compact(x, mask int) int {
	r, i := 0, 0
	for m := mask; m != 0; m &= m - 1 {
		bit := m & -m
		if x&bit != 0 {
			r |= 1 << i
		}
		i++
	}
	return r
}

// Path returns the ordered list of cube dimensions along the e-cube
// (dimension-ordered) route from address a to address b, lowest
// dimension first. Its length is the Hamming distance.
func Path(a, b int) []int {
	return Dims(a ^ b)
}
