package serve

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"vmprim/internal/obs"
	"vmprim/internal/testutil"
)

// These tests exist for the race detector: the broadcaster is the one
// piece of the serving plane where the simulator's stream goroutine,
// every SSE handler goroutine and the run-completion path all touch
// the same state. check.sh runs this package under -race; a quiet run
// here is the dynamic counterpart of the lockdiscipline/chanprotocol
// proofs about the same code.

// TestBroadcasterChurn hammers one broadcaster with concurrent
// publishers and subscribe/drain/unsubscribe churn, then closes it and
// checks the terminal contract: replay-only subscriptions, dropped
// publishes, idempotent close.
func TestBroadcasterChurn(t *testing.T) {
	defer testutil.CheckLeaks(t, testutil.Snapshot())
	const (
		publishers = 4
		perPub     = 1500 // 4*1500 > bcastHistory forces replay-bound drops
		churners   = 4
		cycles     = 200
	)
	b := newBroadcaster()
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for n := 0; n < perPub; n++ {
				b.publish(obs.StreamEvent{Kind: obs.EvProgress, VTUs: float64(seed*perPub + n)})
			}
		}(p)
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < cycles; n++ {
				_, live := b.subscribe()
				if live == nil {
					t.Error("subscribe returned no live channel before close")
					return
				}
				for j := 0; j < 4; j++ {
					select {
					case <-live:
					default:
					}
				}
				b.unsubscribe(live)
			}
		}()
	}
	wg.Wait()

	b.close()
	replay, live := b.subscribe()
	if live != nil {
		t.Fatal("subscribe after close returned a live channel")
	}
	if len(replay) != bcastHistory {
		t.Fatalf("replay holds %d events, want the full %d-event bound", len(replay), bcastHistory)
	}
	if d := b.droppedEvents(); d < int64(publishers*perPub-bcastHistory) {
		t.Fatalf("droppedEvents = %d, want at least the %d beyond the replay bound",
			d, publishers*perPub-bcastHistory)
	}
	b.publish(obs.StreamEvent{Kind: obs.EvProgress}) // late publish drops silently
	b.close()                                        // second close is a no-op, not a panic
}

// TestEventsSSEChurn churns real SSE clients — connect, read a little,
// disconnect mid-stream — against a live run, racing the handler's
// unsubscribe path with the worker goroutine's publishes, then checks
// a final full read of the stream still terminates with a done frame.
func TestEventsSSEChurn(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	st := postSpec(t, ts.URL, testSpec, http.StatusAccepted)
	url := ts.URL + "/runs/" + st.ID + "/events"

	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 5; n++ {
				ctx, cancel := context.WithCancel(context.Background())
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
				if err != nil {
					cancel()
					t.Error(err)
					return
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					cancel()
					t.Error(err)
					return
				}
				// Read at most one buffer of frames, then hang up: the
				// handler sees the context cancellation and unsubscribes
				// while the run keeps publishing.
				buf := make([]byte, 2048)
				_, _ = resp.Body.Read(buf)
				cancel()
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	var fin runStatusJSON
	decodeBody(t, mustGet(t, ts.URL+"/runs/"+st.ID+"/wait", http.StatusOK), &fin)
	if fin.State != StateDone {
		t.Fatalf("run finished %s: %s", fin.State, fin.Error)
	}
	resp := mustGet(t, url, http.StatusOK)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "event: done") {
		t.Fatal("post-churn replay stream has no done frame")
	}
}
