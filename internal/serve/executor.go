package serve

import (
	"errors"

	"vmprim/internal/bench"
	"vmprim/internal/flightrec"
	"vmprim/internal/hypercube"
	"vmprim/internal/metrics"
)

// The executor: a fixed pool of worker goroutines drains the submit
// queue, each run borrowing a persistent Machine from the LRU pool
// keyed by the spec's (dimension, cost parameters). Recorders are
// armed exactly as `vmprim -profile` arms them — profiler, message
// trace, critical-path tracer — so the artifacts a run serves are the
// same documents the CLI writes for the same spec. Machine metric
// registries are cumulative across tenants, so each run's own metrics
// are the snapshot delta taken around it; the deltas also fold into
// the server-wide aggregate that /metrics exposes.

// worker drains the queue until the server closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for run := range s.queue {
		s.execute(run)
	}
}

// execute runs one submitted workload to its terminal state.
func (s *Server) execute(run *Run) {
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)
	s.met.runsStarted.Add(1)

	key := hypercube.PoolKey{Dim: run.Spec.D, Params: run.Spec.CostParams()}
	m, hit, err := s.pool.Acquire(key)
	if err != nil {
		s.finishRun(run, nil, nil, nil, err)
		return
	}
	if hit {
		s.met.poolHits.Add(1)
	} else {
		s.met.poolMisses.Add(1)
	}
	run.setRunning(hit)

	before := m.Metrics().Snapshot()
	m.EnableStream(run.bcast.publish)
	res, err := run.Spec.RunOn(m, bench.ProfileOpts{Profile: true, CritPath: true})
	m.EnableStream(nil)

	// Per-run metrics: the machine registry delta around this tenant.
	// On failures RunOn returns no result, so snapshot the machine
	// directly — the failed run's counters are already folded in.
	after := m.Metrics().Snapshot()
	if res != nil {
		after = res.Metrics
	}
	runMetrics := metrics.Delta(after, before)

	// A failed run tears down cleanly (the watchdog aborts and the
	// workers quiesce), so the machine goes back to the pool either way.
	s.pool.Release(key, m)

	var pm *flightrec.Report
	if err != nil {
		var re *hypercube.RunError
		if errors.As(err, &re) {
			pm = re.Report
		}
	}
	s.finishRun(run, res, runMetrics, pm, err)
}

// finishRun publishes the terminal state, folds the run's metrics into
// the server-wide aggregate and applies retention to the backlog.
func (s *Server) finishRun(run *Run, res *bench.ProfileResult, runMetrics *metrics.Snapshot, pm *flightrec.Report, err error) {
	run.complete(res, runMetrics, pm, err)
	if err != nil {
		s.met.runsFailed.Add(1)
	} else {
		s.met.runsDone.Add(1)
	}
	if d := run.bcast.droppedEvents(); d > 0 {
		s.met.eventsDropped.Add(d)
	}
	if runMetrics != nil {
		s.aggMu.Lock()
		s.simAgg = metrics.Merge(s.simAgg, runMetrics)
		s.aggMu.Unlock()
	}
	if n := s.reg.markFinished(run.ID); n > 0 {
		s.met.runsEvicted.Add(int64(n))
	}
}
