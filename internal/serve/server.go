package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vmprim/internal/bench"
	"vmprim/internal/hypercube"
	"vmprim/internal/metrics"
)

// Package serve is vmprimd's engine: a long-lived HTTP+JSON server
// owning a pool of persistent simulated machines and a durable
// in-memory run registry. Submitting a workload spec yields a run ID;
// the run executes on a pooled machine with the full recorder set
// armed, and its artifacts — profile, Chrome trace, critical path,
// per-run metrics, post-mortem — stay addressable under /runs/{id}/*
// until retention evicts them. /runs/{id}/events streams the
// simulator's live span and progress events over SSE, and /metrics
// folds every run's simulated counters with the serving counters into
// one Prometheus exposition.
//
// The simulated artifacts are deterministic server-side documents:
// the same spec served here and run through `vmprim -profile` renders
// byte-identical profile, trace and critical-path JSON (per-run
// metrics match modulo the host-nondeterministic scheduler counters),
// which scripts/check.sh asserts end to end.

// Options configures a Server.
type Options struct {
	// Workers is the executor pool size (default 2).
	Workers int
	// QueueDepth bounds queued-but-not-running submissions; a full
	// queue rejects with 503 (default 1024).
	QueueDepth int
	// RetainRuns bounds the finished-run backlog; beyond it the oldest
	// finished runs are evicted and answer 404 (default 256).
	RetainRuns int
	// PoolMachines bounds the idle machine pool (default 4).
	PoolMachines int
}

func (o Options) withDefaults() Options {
	if o.Workers < 1 {
		o.Workers = 2
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 1024
	}
	if o.RetainRuns < 1 {
		o.RetainRuns = 256
	}
	if o.PoolMachines < 1 {
		o.PoolMachines = 4
	}
	return o
}

// Server owns the machine pool, run registry and executor workers.
type Server struct {
	opts  Options
	reg   *registry
	pool  *hypercube.MachinePool
	queue chan *Run
	wg    sync.WaitGroup

	closedMu sync.Mutex
	closed   bool

	met *serveMetrics
	// simAgg folds every finished run's per-run metric delta; /metrics
	// merges it with the serving registry.
	aggMu  sync.Mutex
	simAgg *metrics.Snapshot

	mux *http.ServeMux
}

// serveMetrics is the serving-plane registry: request and run
// counters, scrape-time gauges and per-endpoint latency histograms.
type serveMetrics struct {
	reg *metrics.Registry

	requests      *metrics.Counter
	runsSubmitted *metrics.Counter
	runsStarted   *metrics.Counter
	runsDone      *metrics.Counter
	runsFailed    *metrics.Counter
	runsEvicted   *metrics.Counter
	poolHits      *metrics.Counter
	poolMisses    *metrics.Counter
	eventsDropped *metrics.Counter

	inflight    atomic.Int64
	inflightG   *metrics.Gauge
	queueDepth  *metrics.Gauge
	poolIdle    *metrics.Gauge
	retained    *metrics.Gauge
	perEndpoint map[string]*metrics.Histogram
}

// latencyBounds are the per-endpoint request-duration buckets, in
// microseconds: 100µs up to 10s, roughly quarter-decade spaced.
var latencyBounds = []float64{
	100, 250, 500, 1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4,
	1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7,
}

func newServeMetrics() *serveMetrics {
	r := metrics.NewRegistry()
	return &serveMetrics{
		reg:           r,
		requests:      r.Counter("vmprimd_http_requests_total", "HTTP requests served"),
		runsSubmitted: r.Counter("vmprimd_runs_submitted_total", "workload submissions accepted"),
		runsStarted:   r.Counter("vmprimd_runs_started_total", "runs handed to an executor worker"),
		runsDone:      r.Counter("vmprimd_runs_done_total", "runs finished successfully"),
		runsFailed:    r.Counter("vmprimd_run_failures_total", "runs that ended in an error"),
		runsEvicted:   r.Counter("vmprimd_runs_evicted_total", "finished runs dropped by retention"),
		poolHits:      r.Counter("vmprimd_pool_hits_total", "machine acquisitions served from the pool"),
		poolMisses:    r.Counter("vmprimd_pool_misses_total", "machine acquisitions that built a new machine"),
		eventsDropped: r.Counter("vmprimd_events_dropped_total", "stream events lost to slow subscribers or replay bounds"),
		inflightG:     r.Gauge("vmprimd_runs_inflight", "runs currently executing"),
		queueDepth:    r.Gauge("vmprimd_queue_depth", "submitted runs waiting for a worker"),
		poolIdle:      r.Gauge("vmprimd_pool_idle_machines", "idle machines in the pool"),
		retained:      r.Gauge("vmprimd_runs_retained", "runs currently addressable in the registry"),
		perEndpoint:   make(map[string]*metrics.Histogram),
	}
}

// endpointHist registers the latency histogram for one route pattern,
// e.g. "POST /runs" -> vmprimd_http_post_runs_duration_us.
func (sm *serveMetrics) endpointHist(pattern string) *metrics.Histogram {
	name := "vmprimd_http_" + sanitizeMetricPart(pattern) + "_duration_us"
	h := sm.reg.Histogram(name, "request latency for "+pattern+" in microseconds", latencyBounds)
	sm.perEndpoint[pattern] = h
	return h
}

// sanitizeMetricPart folds a route pattern into a metric-name segment:
// lowercased, with every illegal run collapsed to one underscore.
func sanitizeMetricPart(pattern string) string {
	var b strings.Builder
	us := false
	for _, c := range strings.ToLower(pattern) {
		ok := c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
		switch {
		case ok:
			b.WriteRune(c)
			us = false
		case !us && b.Len() > 0:
			b.WriteByte('_')
			us = true
		}
	}
	return strings.TrimSuffix(b.String(), "_")
}

// New builds a server and starts its executor workers.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:  opts,
		reg:   newRegistry(opts.RetainRuns),
		pool:  hypercube.NewMachinePool(opts.PoolMachines),
		queue: make(chan *Run, opts.QueueDepth),
		met:   newServeMetrics(),
	}
	s.routes()
	s.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops accepting submissions, drains the queue, waits for
// in-flight runs and retires the pooled machines. Safe to call once.
func (s *Server) Close() {
	s.closedMu.Lock()
	already := s.closed
	s.closed = true
	s.closedMu.Unlock()
	if already {
		return
	}
	close(s.queue)
	s.wg.Wait()
	s.pool.Close()
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// routes wires the mux, wrapping every route in the request counter
// and its per-endpoint latency histogram.
func (s *Server) routes() {
	s.mux = http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		hist := s.met.endpointHist(pattern)
		s.mux.HandleFunc(pattern, func(w http.ResponseWriter, req *http.Request) {
			s.met.requests.Add(1)
			start := time.Now()
			h(w, req)
			hist.Observe(float64(time.Since(start).Microseconds()))
		})
	}
	route("POST /runs", s.handleSubmit)
	route("GET /runs", s.handleList)
	route("GET /runs/{id}", s.withRun(s.handleStatus))
	route("GET /runs/{id}/wait", s.withRun(s.handleWait))
	route("GET /runs/{id}/events", s.withRun(s.handleEvents))
	route("GET /runs/{id}/profile", s.withRun(s.handleProfile))
	route("GET /runs/{id}/trace", s.withRun(s.handleTrace))
	route("GET /runs/{id}/critpath", s.withRun(s.handleCritPath))
	route("GET /runs/{id}/metrics", s.withRun(s.handleRunMetrics))
	route("GET /runs/{id}/postmortem", s.withRun(s.handlePostmortem))
	route("GET /metrics", s.handleMetrics)
	route("GET /healthz", s.handleHealthz)
}

// apiError is the structured error body every non-2xx response
// carries.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Error apiError `json:"error"`
	}{apiError{Code: code, Message: msg}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// withRun resolves {id} and answers the structured 404s itself: the
// "gone" code marks runs that existed but aged out of retention.
func (s *Server) withRun(h func(http.ResponseWriter, *http.Request, *Run)) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		id := req.PathValue("id")
		run, evicted := s.reg.get(id)
		if run == nil {
			if evicted {
				writeError(w, http.StatusNotFound, "gone",
					fmt.Sprintf("run %s was evicted by retention (server keeps the last %d finished runs)", id, s.opts.RetainRuns))
			} else {
				writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("no run %s", id))
			}
			return
		}
		h(w, req, run)
	}
}

// runStatusJSON is the run's API representation.
type runStatusJSON struct {
	ID        string        `json:"id"`
	State     RunState      `json:"state"`
	Spec      bench.RunSpec `json:"spec"`
	Submitted string        `json:"submitted"`
	PoolHit   bool          `json:"pool_hit,omitempty"`
	Error     string        `json:"error,omitempty"`
	// Desc and TimesUs carry the workload's identity and simulated
	// elapsed times (execution order) once the run is done.
	Desc    string    `json:"desc,omitempty"`
	TimesUs []float64 `json:"times_us,omitempty"`
}

func (s *Server) runStatus(run *Run) runStatusJSON {
	run.mu.Lock()
	defer run.mu.Unlock()
	st := runStatusJSON{
		ID:        run.ID,
		State:     run.state,
		Spec:      run.Spec,
		Submitted: run.Submitted.UTC().Format(time.RFC3339Nano),
		PoolHit:   run.poolHit,
		Error:     run.err,
	}
	if run.result != nil {
		st.Desc = run.result.Desc
		st.TimesUs = make([]float64, len(run.result.Times))
		for i, t := range run.result.Times {
			st.TimesUs[i] = float64(t)
		}
	}
	return st
}

// handleSubmit accepts a bench.RunSpec JSON body, validates it,
// registers a run and queues it, answering 202 with the run status.
func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var spec bench.RunSpec
	dec := json.NewDecoder(req.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad_body", "request body is not a workload spec: "+err.Error())
		return
	}
	norm, err := spec.Normalized()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_spec", err.Error())
		return
	}
	s.closedMu.Lock()
	if s.closed {
		s.closedMu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "server is shutting down")
		return
	}
	run := s.reg.add(norm, time.Now())
	select {
	case s.queue <- run:
		s.closedMu.Unlock()
	default:
		s.closedMu.Unlock()
		run.complete(nil, nil, nil, errors.New("submission queue full"))
		s.reg.markFinished(run.ID)
		writeError(w, http.StatusServiceUnavailable, "queue_full",
			fmt.Sprintf("submission queue is full (%d pending)", s.opts.QueueDepth))
		return
	}
	s.met.runsSubmitted.Add(1)
	writeJSON(w, http.StatusAccepted, s.runStatus(run))
}

// handleList serves every retained run's status, submission order.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	runs := s.reg.list()
	out := struct {
		Runs []runStatusJSON `json:"runs"`
	}{Runs: make([]runStatusJSON, 0, len(runs))}
	for _, r := range runs {
		out.Runs = append(out.Runs, s.runStatus(r))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request, run *Run) {
	writeJSON(w, http.StatusOK, s.runStatus(run))
}

// handleWait blocks until the run finishes (or ?timeout= elapses,
// default 60s) and serves the terminal status; on timeout it serves
// the current status with 202 so pollers can retry.
func (s *Server) handleWait(w http.ResponseWriter, req *http.Request, run *Run) {
	timeout := 60 * time.Second
	if v := req.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, "bad_timeout", "timeout must be a positive duration")
			return
		}
		timeout = d
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-run.done:
		writeJSON(w, http.StatusOK, s.runStatus(run))
	case <-t.C:
		writeJSON(w, http.StatusAccepted, s.runStatus(run))
	case <-req.Context().Done():
	}
}

// requireDone gates artifact endpoints: only terminal runs have
// artifacts, and failed runs have only metrics and a post-mortem.
func requireDone(w http.ResponseWriter, run *Run) bool {
	switch run.State() {
	case StateDone, StateFailed:
		return true
	default:
		writeError(w, http.StatusConflict, "not_finished",
			fmt.Sprintf("run %s is %s; wait for it to finish", run.ID, run.State()))
		return false
	}
}

// The artifact endpoints render with the same obs/metrics writers the
// CLI uses, so a served document is byte-identical to the file
// `vmprim -profile`/`-critpath` writes for the same spec.

func (s *Server) handleProfile(w http.ResponseWriter, _ *http.Request, run *Run) {
	if !requireDone(w, run) {
		return
	}
	res, _, _ := run.artifacts()
	if res == nil || res.Profile == nil {
		writeError(w, http.StatusNotFound, "no_artifact", "run has no profile (it failed before producing one)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = res.Profile.WriteJSON(w)
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request, run *Run) {
	if !requireDone(w, run) {
		return
	}
	res, _, _ := run.artifacts()
	if res == nil || res.Profile == nil {
		writeError(w, http.StatusNotFound, "no_artifact", "run has no trace (it failed before producing one)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = res.Profile.ChromeTrace(w, 0)
}

func (s *Server) handleCritPath(w http.ResponseWriter, _ *http.Request, run *Run) {
	if !requireDone(w, run) {
		return
	}
	res, _, _ := run.artifacts()
	if res == nil || res.CritPath == nil {
		writeError(w, http.StatusNotFound, "no_artifact", "run has no critical path (it failed before producing one)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = res.CritPath.WriteJSON(w)
}

// handleRunMetrics serves the run's own metrics — the machine
// registry delta around the run — as JSON, or Prometheus text with
// ?format=prom.
func (s *Server) handleRunMetrics(w http.ResponseWriter, req *http.Request, run *Run) {
	if !requireDone(w, run) {
		return
	}
	_, snap, _ := run.artifacts()
	if snap == nil {
		writeError(w, http.StatusNotFound, "no_artifact", "run recorded no metrics")
		return
	}
	if req.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", promContentType)
		_ = snap.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = snap.WriteJSON(w)
}

func (s *Server) handlePostmortem(w http.ResponseWriter, _ *http.Request, run *Run) {
	if !requireDone(w, run) {
		return
	}
	_, _, pm := run.artifacts()
	if pm == nil {
		writeError(w, http.StatusNotFound, "no_artifact", "run has no post-mortem (it did not fail)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = pm.WriteJSON(w)
}

// promContentType is the Prometheus text exposition content type.
const promContentType = "text/plain; version=0.0.4"

// handleMetrics serves the server-wide exposition: the serving
// registry (with the scrape-time gauges refreshed) merged with the
// fold of every finished run's simulated metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.met.inflightG.Set(float64(s.met.inflight.Load()))
	s.met.queueDepth.Set(float64(len(s.queue)))
	s.met.poolIdle.Set(float64(s.pool.Stats().Idle))
	retained, _ := s.reg.counts()
	s.met.retained.Set(float64(retained))

	s.aggMu.Lock()
	sim := s.simAgg
	s.aggMu.Unlock()
	snap := metrics.Merge(s.met.reg.Snapshot(), sim)
	w.Header().Set("Content-Type", promContentType)
	_ = snap.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}{"ok", s.opts.Workers})
}
