package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"vmprim/internal/bench"
	"vmprim/internal/hypercube"
	"vmprim/internal/testutil"
)

// testSpec is the small workload the tests submit: every primitive on
// a d=4 cube, cheap enough to run many times on the 1-core CI host.
var testSpec = bench.RunSpec{Exp: "E1", D: 4, N: 64}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	// Registered before the close cleanup below so it runs after it
	// (cleanups are LIFO): by the time the leak check polls, Close has
	// already signalled the workers and every run's broadcaster.
	before := testutil.Snapshot()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		testutil.CheckLeaks(t, before)
	})
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// submitAndWait posts spec and blocks on /wait, returning the run ID.
func submitAndWait(t *testing.T, base string, spec bench.RunSpec) string {
	t.Helper()
	st := postSpec(t, base, spec, http.StatusAccepted)
	resp := mustGet(t, base+"/runs/"+st.ID+"/wait", http.StatusOK)
	var fin runStatusJSON
	decodeBody(t, resp, &fin)
	if fin.State != StateDone {
		t.Fatalf("run %s finished %s: %s", st.ID, fin.State, fin.Error)
	}
	return st.ID
}

func postSpec(t *testing.T, base string, spec bench.RunSpec, wantStatus int) runStatusJSON {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("POST /runs = %d, want %d: %s", resp.StatusCode, wantStatus, b)
	}
	var st runStatusJSON
	decodeBody(t, resp, &st)
	return st
}

func mustGet(t *testing.T, url string, wantStatus int) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, wantStatus, b)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp := mustGet(t, url, http.StatusOK)
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Served artifacts must be the same documents the CLI writers produce
// for the same spec: profile, Chrome trace and critical-path JSON
// byte-identical, per-run metrics identical after dropping the
// host-nondeterministic scheduler counters.
func TestServedArtifactsMatchDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	id := submitAndWait(t, ts.URL, testSpec)

	spec, err := testSpec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	m, err := hypercube.New(spec.D, spec.CostParams())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	want, err := spec.RunOn(m, bench.ProfileOpts{Profile: true, CritPath: true})
	if err != nil {
		t.Fatal(err)
	}

	var profBuf, traceBuf, cpBuf, metBuf bytes.Buffer
	if err := want.Profile.WriteJSON(&profBuf); err != nil {
		t.Fatal(err)
	}
	if err := want.Profile.ChromeTrace(&traceBuf, 0); err != nil {
		t.Fatal(err)
	}
	if err := want.CritPath.WriteJSON(&cpBuf); err != nil {
		t.Fatal(err)
	}
	if err := want.Metrics.WriteJSON(&metBuf); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		artifact string
		want     []byte
	}{
		{"profile", profBuf.Bytes()},
		{"trace", traceBuf.Bytes()},
		{"critpath", cpBuf.Bytes()},
	} {
		got := getBody(t, fmt.Sprintf("%s/runs/%s/%s", ts.URL, id, tc.artifact))
		if !bytes.Equal(got, tc.want) {
			t.Errorf("served %s differs from the CLI writer's output (%d vs %d bytes)",
				tc.artifact, len(got), len(tc.want))
		}
	}

	// The run executed on the server's first (fresh) pooled machine, so
	// its delta equals the direct run's cumulative snapshot — except the
	// host-scheduler counters, which are nondeterministic by design.
	got := getBody(t, fmt.Sprintf("%s/runs/%s/metrics", ts.URL, id))
	if diff := diffMetricsJSON(t, got, metBuf.Bytes()); diff != "" {
		t.Errorf("served per-run metrics differ from direct run: %s", diff)
	}
}

// diffMetricsJSON compares two metrics-snapshot JSON documents,
// ignoring the host-nondeterministic scheduler metrics, and returns a
// description of the first difference ("" when equal).
func diffMetricsJSON(t *testing.T, a, b []byte, ignore ...string) string {
	t.Helper()
	parse := func(raw []byte) map[string]json.RawMessage {
		var doc struct {
			Metrics []struct {
				Name string `json:"name"`
			} `json:"metrics"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		var full struct {
			Metrics []json.RawMessage `json:"metrics"`
		}
		if err := json.Unmarshal(raw, &full); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]json.RawMessage)
	metric:
		for i, m := range doc.Metrics {
			if hypercube.HostSchedMetricNames(m.Name) {
				continue
			}
			for _, pre := range ignore {
				if strings.HasPrefix(m.Name, pre) {
					continue metric
				}
			}
			out[m.Name] = full.Metrics[i]
		}
		return out
	}
	ma, mb := parse(a), parse(b)
	if len(ma) != len(mb) {
		return fmt.Sprintf("%d vs %d comparable metrics", len(ma), len(mb))
	}
	for name, ra := range ma {
		rb, ok := mb[name]
		if !ok {
			return "metric " + name + " missing from one side"
		}
		if !bytes.Equal(ra, rb) {
			return fmt.Sprintf("metric %s: %s vs %s", name, ra, rb)
		}
	}
	return ""
}

// A spec resubmitted to a warm server must reuse the pooled machine
// and serve bit-identical simulated artifacts.
func TestPooledRerunIsIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	id1 := submitAndWait(t, ts.URL, testSpec)
	id2 := submitAndWait(t, ts.URL, testSpec)

	var st runStatusJSON
	decodeBody(t, mustGet(t, ts.URL+"/runs/"+id2, http.StatusOK), &st)
	if !st.PoolHit {
		t.Error("second run of the same spec did not hit the machine pool")
	}
	for _, artifact := range []string{"profile", "trace", "critpath"} {
		a := getBody(t, fmt.Sprintf("%s/runs/%s/%s", ts.URL, id1, artifact))
		b := getBody(t, fmt.Sprintf("%s/runs/%s/%s", ts.URL, id2, artifact))
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between identical runs on a pooled machine", artifact)
		}
	}
	// The buffer-pool counters depend on how warm the machine's free
	// lists are, so a fresh-machine first run and a pooled rerun differ
	// there by design; everything simulated must match exactly.
	am := getBody(t, fmt.Sprintf("%s/runs/%s/metrics", ts.URL, id1))
	bm := getBody(t, fmt.Sprintf("%s/runs/%s/metrics", ts.URL, id2))
	if diff := diffMetricsJSON(t, am, bm, "vmprim_pool_"); diff != "" {
		t.Errorf("per-run metric deltas differ between identical runs: %s", diff)
	}
}

// Retention: finished runs beyond the cap are evicted oldest-first,
// retained runs keep serving, and an evicted ID answers a structured
// 404 distinct from an unknown one.
func TestRunRetentionEviction(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, RetainRuns: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		ids = append(ids, submitAndWait(t, ts.URL, testSpec))
	}

	for _, id := range ids[:2] {
		resp := mustGet(t, ts.URL+"/runs/"+id, http.StatusNotFound)
		var e struct {
			Error apiError `json:"error"`
		}
		decodeBody(t, resp, &e)
		if e.Error.Code != "gone" {
			t.Errorf("evicted run %s answered code %q, want gone", id, e.Error.Code)
		}
		if e.Error.Message == "" {
			t.Errorf("evicted run %s has no error message", id)
		}
	}
	for _, id := range ids[2:] {
		if body := getBody(t, ts.URL+"/runs/"+id+"/profile"); len(body) == 0 {
			t.Errorf("retained run %s served an empty profile", id)
		}
	}
	resp := mustGet(t, ts.URL+"/runs/r-999999", http.StatusNotFound)
	var e struct {
		Error apiError `json:"error"`
	}
	decodeBody(t, resp, &e)
	if e.Error.Code != "not_found" {
		t.Errorf("unknown run answered code %q, want not_found", e.Error.Code)
	}

	var list struct {
		Runs []runStatusJSON `json:"runs"`
	}
	decodeBody(t, mustGet(t, ts.URL+"/runs", http.StatusOK), &list)
	if len(list.Runs) != 2 {
		t.Errorf("list shows %d runs after eviction, want 2", len(list.Runs))
	}
}

// The events endpoint is a well-formed SSE stream: span events balance,
// a progress mark and link census arrive, and the final frame is
// `event: done` carrying the terminal status.
func TestEventsSSE(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	id := submitAndWait(t, ts.URL, testSpec)

	resp := mustGet(t, ts.URL+"/runs/"+id+"/events", http.StatusOK)
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", got)
	}

	type frame struct{ event, data string }
	var frames []frame
	sc := bufio.NewScanner(resp.Body)
	cur := frame{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event == "" || cur.data == "" {
				t.Fatalf("malformed SSE frame %+v", cur)
			}
			frames = append(frames, cur)
			cur = frame{}
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("no SSE frames")
	}

	opens, closes, progress, links := 0, 0, 0, 0
	for _, f := range frames[:len(frames)-1] {
		if !json.Valid([]byte(f.data)) {
			t.Fatalf("frame %q carries invalid JSON: %s", f.event, f.data)
		}
		switch f.event {
		case "span_open":
			opens++
		case "span_close":
			closes++
		case "progress":
			progress++
		case "link_congestion":
			links++
		default:
			t.Fatalf("unknown SSE event %q", f.event)
		}
	}
	if opens == 0 || opens != closes {
		t.Errorf("span events unbalanced: %d opens, %d closes", opens, closes)
	}
	if progress == 0 || links == 0 {
		t.Errorf("missing summary events: %d progress, %d link", progress, links)
	}
	last := frames[len(frames)-1]
	if last.event != "done" {
		t.Fatalf("final frame is %q, want done", last.event)
	}
	var st runStatusJSON
	if err := json.Unmarshal([]byte(last.data), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.ID != id {
		t.Fatalf("done frame carries %+v", st)
	}
}

// promLine matches one sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)

// Satellite e2e scrape: /metrics speaks Prometheus text format 0.0.4,
// every line parses, and the exposition folds both the serving
// counters and the simulated per-run metrics.
func TestMetricsScrape(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	submitAndWait(t, ts.URL, testSpec)

	resp := mustGet(t, ts.URL+"/metrics", http.StatusOK)
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != promContentType {
		t.Fatalf("Content-Type = %q, want %q", got, promContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	values := map[string]float64{}
	types := map[string]string{}
	var histSeries []string
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("unparseable exposition line %q", line)
		}
		name, valStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("no value on line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(valStr, "%g", &v); err != nil && valStr != "+Inf" {
			t.Fatalf("bad value on line %q: %v", line, err)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			histSeries = append(histSeries, name)
			name = name[:i]
		}
		values[name] = v
	}

	// Serving counters and gauges.
	if v := values["vmprimd_runs_done_total"]; v < 1 {
		t.Errorf("vmprimd_runs_done_total = %g, want >= 1", v)
	}
	if _, ok := values["vmprimd_runs_inflight"]; !ok {
		t.Error("vmprimd_runs_inflight missing")
	}
	if types["vmprimd_runs_submitted_total"] != "counter" || types["vmprimd_queue_depth"] != "gauge" {
		t.Errorf("serving metric TYPEs wrong: %v %v",
			types["vmprimd_runs_submitted_total"], types["vmprimd_queue_depth"])
	}
	// Folded simulated metrics from the finished run.
	if v := values["vmprim_runs_total"]; v < 1 {
		t.Errorf("folded vmprim_runs_total = %g, want >= 1", v)
	}
	if v := values["vmprim_words_total"]; v <= 0 {
		t.Errorf("folded vmprim_words_total = %g, want > 0", v)
	}
	// Per-endpoint latency histogram: POST /runs must have observed at
	// least one request, with a +Inf bucket equal to its count.
	histName := "vmprimd_http_post_runs_duration_us"
	if types[histName] != "histogram" {
		t.Fatalf("%s TYPE = %q, want histogram", histName, types[histName])
	}
	if v := values[histName+"_count"]; v < 1 {
		t.Errorf("%s_count = %g, want >= 1", histName, v)
	}
	infSeen := false
	for _, series := range histSeries {
		if strings.HasPrefix(series, histName+"_bucket") && strings.Contains(series, `le="+Inf"`) {
			infSeen = true
		}
	}
	if !infSeen {
		t.Errorf("%s has no +Inf bucket", histName)
	}
}

// Bad submissions answer structured 400s; artifact requests against
// unfinished runs answer 409.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for _, body := range []string{
		`{"exp":"E9"}`,
		`{"exp":"E1","d":99}`,
		`{"exp":"E1","frobnicate":1}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error apiError `json:"error"`
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s = %d, want 400", body, resp.StatusCode)
		}
		decodeBody(t, resp, &e)
		if e.Error.Code == "" || e.Error.Message == "" {
			t.Fatalf("POST %s: unstructured error %+v", body, e)
		}
	}
}
