package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"vmprim/internal/obs"
)

// Live event fan-out. The simulator's stream sink runs on processor
// 0's worker goroutine inside the virtual-time engine, so the
// broadcaster must never block it: subscribers get buffered channels
// and a subscriber that falls behind loses events (counted, not
// waited for). A bounded replay buffer lets subscribers who connect
// mid-run catch up before going live.

const (
	// bcastHistory bounds the replay buffer per run; a profiled E-series
	// workload emits a few hundred span events, so 4096 keeps whole runs
	// replayable while bounding a pathological one.
	bcastHistory = 4096
	// subBuffer is each subscriber's channel depth.
	subBuffer = 256
)

type broadcaster struct {
	mu      sync.Mutex
	history []obs.StreamEvent
	// histDropped counts events beyond the replay bound (still fanned
	// out live).
	histDropped int64
	subs        map[chan obs.StreamEvent]struct{}
	// dropped counts per-subscriber backpressure losses.
	dropped int64
	closed  bool
}

func newBroadcaster() *broadcaster {
	return &broadcaster{subs: make(map[chan obs.StreamEvent]struct{})}
}

// publish is the obs.StreamSink: record and fan out without blocking.
func (b *broadcaster) publish(ev obs.StreamEvent) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	if len(b.history) < bcastHistory {
		b.history = append(b.history, ev)
	} else {
		b.histDropped++
	}
	for ch := range b.subs {
		select {
		case ch <- ev:
		default:
			b.dropped++
		}
	}
	b.mu.Unlock()
}

// subscribe returns the replay snapshot and, unless the stream already
// ended, a live channel the caller must unsubscribe.
func (b *broadcaster) subscribe() (replay []obs.StreamEvent, live chan obs.StreamEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	replay = append([]obs.StreamEvent(nil), b.history...)
	if b.closed {
		return replay, nil
	}
	live = make(chan obs.StreamEvent, subBuffer)
	b.subs[live] = struct{}{}
	return replay, live
}

func (b *broadcaster) unsubscribe(ch chan obs.StreamEvent) {
	b.mu.Lock()
	if _, ok := b.subs[ch]; ok {
		delete(b.subs, ch)
		close(ch)
	}
	b.mu.Unlock()
}

// close ends the stream: live channels close, late publishes drop.
func (b *broadcaster) close() {
	b.mu.Lock()
	b.closed = true
	for ch := range b.subs {
		delete(b.subs, ch)
		close(ch)
	}
	b.mu.Unlock()
}

// droppedEvents returns the total events lost to slow subscribers or
// the replay bound.
func (b *broadcaster) droppedEvents() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped + b.histDropped
}

// handleEvents serves GET /runs/{id}/events as a Server-Sent-Events
// stream: every simulator stream event as `event: <kind>` with a JSON
// body, then a final `event: done` carrying the run's terminal status
// once it completes (immediately, for runs already finished).
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request, run *Run) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "no_stream", "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, live := run.bcast.subscribe()
	if live != nil {
		defer run.bcast.unsubscribe(live)
	}
	for _, ev := range replay {
		if writeSSE(w, ev.Kind, ev) != nil {
			return
		}
	}
	fl.Flush()
	if live != nil {
	stream:
		for {
			select {
			case ev, ok := <-live:
				if !ok {
					break stream
				}
				if writeSSE(w, ev.Kind, ev) != nil {
					return
				}
				if len(live) == 0 {
					fl.Flush()
				}
			case <-req.Context().Done():
				return
			}
		}
	}
	// The run is terminal now (the broadcaster closes on completion).
	<-run.done
	_ = writeSSE(w, "done", s.runStatus(run))
	fl.Flush()
}

// writeSSE emits one Server-Sent-Events frame with a JSON data body.
func writeSSE(w http.ResponseWriter, event string, data any) error {
	body, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, body)
	return err
}
