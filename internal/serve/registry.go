package serve

import (
	"fmt"
	"sync"
	"time"

	"vmprim/internal/bench"
	"vmprim/internal/flightrec"
	"vmprim/internal/metrics"
)

// The run registry: every submitted workload becomes a Run with a
// server-assigned ID, and the registry keeps finished runs — results,
// per-run metric deltas, post-mortems — addressable until capacity
// pressure evicts them. Queued and running runs are never evicted;
// only the done/failed backlog is bounded, oldest-completed first, and
// the registry remembers evicted IDs so the API can distinguish "this
// run existed and aged out" from "never heard of it".

// RunState is a run's lifecycle phase.
type RunState string

const (
	StateQueued  RunState = "queued"
	StateRunning RunState = "running"
	StateDone    RunState = "done"
	StateFailed  RunState = "failed"
)

// Run is one submitted workload and, once executed, its artifacts.
// Fields under mu change as the run progresses; everything else is
// written once before the run is published.
type Run struct {
	// ID is the server-assigned identifier, "r-000001" onward.
	ID string
	// Spec is the normalized workload descriptor.
	Spec bench.RunSpec
	// Submitted is the wall-clock arrival time (serving metadata only —
	// simulated artifacts carry no host time).
	Submitted time.Time

	// bcast fans live stream events out to /events subscribers.
	bcast *broadcaster
	// done is closed when the run reaches a terminal state.
	done chan struct{}

	mu      sync.Mutex
	state   RunState
	err     string
	poolHit bool
	// result is the profiled run; nil until done (and on failures that
	// died before producing one).
	result *bench.ProfileResult
	// runMetrics is this run's own metrics: the machine registry delta
	// around the run, so pooled-machine reuse does not leak earlier
	// tenants' counters into it.
	runMetrics *metrics.Snapshot
	// postmortem is the flight-recorder report of a failed run.
	postmortem *flightrec.Report
}

// newRun builds a queued run around a normalized spec.
func newRun(id string, spec bench.RunSpec, now time.Time) *Run {
	return &Run{
		ID:        id,
		Spec:      spec,
		Submitted: now,
		bcast:     newBroadcaster(),
		done:      make(chan struct{}),
		state:     StateQueued,
	}
}

// State returns the run's current lifecycle phase.
func (r *Run) State() RunState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// terminal reports whether the run has finished (done or failed).
func (r *Run) terminal() bool {
	st := r.State()
	return st == StateDone || st == StateFailed
}

// setRunning marks the run as executing and records whether its
// machine came out of the pool warm.
func (r *Run) setRunning(poolHit bool) {
	r.mu.Lock()
	r.state = StateRunning
	r.poolHit = poolHit
	r.mu.Unlock()
}

// complete publishes the run's terminal state and artifacts, closes
// the event stream and wakes every waiter. Idempotence is not needed:
// exactly one executor owns the run.
func (r *Run) complete(res *bench.ProfileResult, runMetrics *metrics.Snapshot, pm *flightrec.Report, err error) {
	r.mu.Lock()
	if err != nil {
		r.state = StateFailed
		r.err = err.Error()
	} else {
		r.state = StateDone
	}
	r.result = res
	r.runMetrics = runMetrics
	r.postmortem = pm
	r.mu.Unlock()
	r.bcast.close()
	close(r.done)
}

// artifacts returns the run's terminal payload (any field may be nil).
func (r *Run) artifacts() (*bench.ProfileResult, *metrics.Snapshot, *flightrec.Report) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.result, r.runMetrics, r.postmortem
}

// registry holds runs by ID and bounds the finished backlog.
type registry struct {
	mu     sync.Mutex
	retain int
	seq    int64
	runs   map[string]*Run
	// finished is completion order, oldest first; its head is evicted
	// when the backlog exceeds retain.
	finished []string
	evicted  map[string]bool
}

func newRegistry(retain int) *registry {
	if retain < 1 {
		retain = 1
	}
	return &registry{
		retain:  retain,
		runs:    make(map[string]*Run),
		evicted: make(map[string]bool),
	}
}

// add registers a new queued run under a fresh ID.
func (g *registry) add(spec bench.RunSpec, now time.Time) *Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seq++
	r := newRun(fmt.Sprintf("r-%06d", g.seq), spec, now)
	g.runs[r.ID] = r
	return r
}

// get looks a run up; evicted reports a formerly retained ID.
func (g *registry) get(id string) (r *Run, evicted bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.runs[id], g.evicted[id]
}

// list returns every retained run, submission (ID) order.
func (g *registry) list() []*Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]*Run, 0, len(g.runs))
	for i := int64(1); i <= g.seq && len(out) < len(g.runs); i++ {
		if r, ok := g.runs[fmt.Sprintf("r-%06d", i)]; ok {
			out = append(out, r)
		}
	}
	return out
}

// markFinished enters a terminal run into the bounded backlog and
// evicts beyond the retention cap, returning how many runs fell out.
func (g *registry) markFinished(id string) (evictions int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.finished = append(g.finished, id)
	for len(g.finished) > g.retain {
		victim := g.finished[0]
		g.finished = g.finished[1:]
		delete(g.runs, victim)
		g.evicted[victim] = true
		evictions++
	}
	return evictions
}

// counts returns (retained, finished) run counts for the scrape-time
// gauges.
func (g *registry) counts() (retained, finished int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.runs), len(g.finished)
}
