// Package router implements general point-to-point message routing on
// the simulated hypercube: the equivalent of the Connection Machine's
// router, and the communication substrate of the paper's "naive"
// application implementations.
//
// Routing is dimension-ordered (e-cube) store-and-forward: a full
// routing operation runs d = lg p phases; in phase i every processor
// forwards to its dimension-i neighbor all messages whose destination
// address differs from its own in bit i. After the d phases every
// message is at its destination. All processors must call Route
// together (it is a machine-wide collective), contributing possibly
// empty outgoing message lists.
//
// The cost difference from the structured collectives is deliberate
// and is the paper's central experimental point: besides the cube-edge
// transfer cost, each phase charges the router's start-up and a
// per-message handling overhead, so traffic that a primitive would
// move as one combined block costs the naive implementation one
// overhead per element-message per hop. Congestion is emergent: a
// processor whose links carry more routed volume accumulates a larger
// virtual clock, and the operation finishes at the slowest processor.
package router

import (
	"fmt"

	"vmprim/internal/costmodel"
	"vmprim/internal/hypercube"
)

// Msg is one routed message: a destination processor, an integer key
// that the application uses to identify the payload (for example a
// matrix element index), and the payload words.
type Msg struct {
	// Dst is the destination processor address in [0, P).
	Dst int
	// Key identifies the message to the receiving application code.
	Key int
	// Words is the payload.
	Words []float64
}

// headerWords is the per-message encoding overhead on the wire. The
// destination and payload length pack exactly into one float64
// (dst*2^32 + len, both well under 2^26 and 2^32 respectively, so the
// sum stays integral below 2^53); the key rides in the second word.
const headerWords = 2

// encode flattens messages for one link transfer.
func encode(msgs []Msg) []float64 {
	n := 0
	for _, m := range msgs {
		n += headerWords + len(m.Words)
	}
	flat := make([]float64, 0, n)
	for _, m := range msgs {
		flat = append(flat, float64(uint64(m.Dst)<<32|uint64(len(m.Words))), float64(m.Key))
		flat = append(flat, m.Words...)
	}
	return flat
}

// decode parses a link transfer back into messages.
func decode(flat []float64) []Msg {
	var msgs []Msg
	for i := 0; i < len(flat); {
		dl := uint64(flat[i])
		dst := int(dl >> 32)
		n := int(dl & 0xffffffff)
		key := int(flat[i+1])
		i += headerWords
		words := make([]float64, n)
		copy(words, flat[i:i+n])
		i += n
		msgs = append(msgs, Msg{Dst: dst, Key: key, Words: words})
	}
	return msgs
}

// Route delivers every processor's outgoing messages to their
// destinations through dimension-ordered routing and returns the
// messages addressed to the calling processor (including any the
// processor sent to itself). Message order in the result is
// deterministic but unspecified; receivers should dispatch on Key.
// Route is a machine-wide collective: every processor must call it
// with the same tag.
func Route(p *hypercube.Proc, tag int, outgoing []Msg) []Msg {
	p.BeginSpan("route")
	defer p.EndSpan()
	p.NoteCollective("route", p.FullMask(), tag)
	if p.Profiling() {
		// Predict from the local injection load: each of the d phases
		// forwards about half of what is pending here on average.
		words := 0
		for _, m := range outgoing {
			words += len(m.Words)
		}
		p.SpanPredict(costmodel.PredictRoute(p.Params(), p.Dim(), len(outgoing), words, headerWords))
	}
	for _, m := range outgoing {
		if m.Dst < 0 || m.Dst >= p.P() {
			panic(fmt.Sprintf("router: destination %d out of range [0,%d)", m.Dst, p.P()))
		}
	}
	pending := make([]Msg, len(outgoing))
	copy(pending, outgoing)
	for i := 0; i < p.Dim(); i++ {
		keep := pending[:0]
		var fwd []Msg
		words := 0
		for _, m := range pending {
			if (m.Dst>>i)&1 != (p.ID()>>i)&1 {
				fwd = append(fwd, m)
				words += len(m.Words)
			} else {
				keep = append(keep, m)
			}
		}
		pending = keep
		// The router charges per-phase start-up plus per-message
		// handling on the payload volume; the link transfer itself
		// (payload + headers) is charged by Exchange.
		p.RoutePhaseCharge(len(fwd), words)
		got := p.Exchange(i, tag<<6|i, encode(fwd))
		pending = append(pending, decode(got)...)
	}
	return pending
}

// Request pairs a round-trip through the router: each processor sends
// read requests for remote values and answers the requests it
// receives. want lists (owner processor, key) pairs; serve must return
// the payload for a key this processor owns. The result maps each
// request index to the fetched payload, in the order of want.
//
// This is the access pattern of the naive implementations: fetch the
// remote operands element by element, with no combining.
func Request(p *hypercube.Proc, tag int, want []Msg, serve func(key int) []float64) [][]float64 {
	p.BeginSpan("route-request")
	defer p.EndSpan()
	p.NoteCollective("route-request", p.FullMask(), tag)
	// Phase 1: route the requests. Key carries the requested item;
	// the payload carries the requester's address and request index.
	reqs := make([]Msg, len(want))
	for i, w := range want {
		reqs[i] = Msg{Dst: w.Dst, Key: w.Key, Words: []float64{float64(p.ID()), float64(i)}}
	}
	arrived := Route(p, tag, reqs)

	// Phase 2: route the responses back.
	resps := make([]Msg, len(arrived))
	for i, r := range arrived {
		requester := int(r.Words[0])
		index := int(r.Words[1])
		payload := serve(r.Key)
		words := make([]float64, 0, 1+len(payload))
		words = append(words, float64(index))
		words = append(words, payload...)
		resps[i] = Msg{Dst: requester, Key: r.Key, Words: words}
	}
	back := Route(p, tag+1, resps)

	out := make([][]float64, len(want))
	for _, r := range back {
		index := int(r.Words[0])
		out[index] = r.Words[1:]
	}
	return out
}
