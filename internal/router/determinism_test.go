package router

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"vmprim/internal/costmodel"
	"vmprim/internal/hypercube"
)

// Host-parallel determinism for the router: dimension-order routing
// sorts and forwards by (Key, program order) at every hop, so the
// delivered message order, the simulated clocks and the link loads
// must be identical at every GOMAXPROCS — the stress here is a random
// permutation plus an all-to-one hotspot, the two traffic patterns
// with the most forwarding contention.
func routerWorkload(t *testing.T) (clocks, links, delivered string) {
	t.Helper()
	m := hypercube.MustNew(5, costmodel.CM2())
	defer m.Close()
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(m.P())
	received := make([][]Msg, m.P())
	_, err := m.Run(func(p *hypercube.Proc) {
		out := []Msg{
			{Dst: perm[p.ID()], Key: p.ID(), Words: []float64{1, 2, 3}},
			{Dst: 7, Key: 1000 + p.ID(), Words: []float64{float64(p.ID())}},
		}
		received[p.ID()] = Route(p, 1, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%v", m.Clocks()), fmt.Sprintf("%v", m.Congestion(0)), fmt.Sprintf("%v", received)
}

func TestRouteGOMAXPROCSDeterminism(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	settings := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		settings = append(settings, n)
	}
	var baseClocks, baseLinks, baseDelivered string
	baseGMP := 0
	for _, gmp := range settings {
		runtime.GOMAXPROCS(gmp)
		clocks, links, delivered := routerWorkload(t)
		if baseGMP == 0 {
			baseClocks, baseLinks, baseDelivered, baseGMP = clocks, links, delivered, gmp
			continue
		}
		if clocks != baseClocks {
			t.Errorf("gomaxprocs %d vs %d: clocks differ:\n%s\n%s", gmp, baseGMP, clocks, baseClocks)
		}
		if links != baseLinks {
			t.Errorf("gomaxprocs %d vs %d: link loads differ", gmp, baseGMP)
		}
		if delivered != baseDelivered {
			t.Errorf("gomaxprocs %d vs %d: delivered message order differs", gmp, baseGMP)
		}
	}
}
