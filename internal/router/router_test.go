package router

import (
	"math/rand"
	"sort"
	"testing"

	"vmprim/internal/costmodel"
	"vmprim/internal/hypercube"
)

func TestRouteAllToOne(t *testing.T) {
	m := hypercube.MustNew(4, costmodel.CM2())
	var got []Msg
	_, err := m.Run(func(p *hypercube.Proc) {
		out := []Msg{{Dst: 5, Key: p.ID(), Words: []float64{float64(p.ID()) * 2}}}
		in := Route(p, 1, out)
		if p.ID() == 5 {
			got = in
		} else if len(in) != 0 {
			panic("non-destination received messages")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != m.P() {
		t.Fatalf("destination received %d messages, want %d", len(got), m.P())
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Key < got[j].Key })
	for i, msg := range got {
		if msg.Key != i || msg.Words[0] != float64(i)*2 || msg.Dst != 5 {
			t.Fatalf("message %d: %+v", i, msg)
		}
	}
}

func TestRouteRandomPermutation(t *testing.T) {
	m := hypercube.MustNew(5, costmodel.CM2())
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(m.P())
	received := make([][]Msg, m.P())
	_, err := m.Run(func(p *hypercube.Proc) {
		out := []Msg{{Dst: perm[p.ID()], Key: p.ID(), Words: []float64{1, 2, 3}}}
		received[p.ID()] = Route(p, 1, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < m.P(); pid++ {
		msgs := received[pid]
		if len(msgs) != 1 {
			t.Fatalf("proc %d received %d messages", pid, len(msgs))
		}
		if perm[msgs[0].Key] != pid {
			t.Fatalf("proc %d got message keyed %d, but perm[%d]=%d", pid, msgs[0].Key, msgs[0].Key, perm[msgs[0].Key])
		}
	}
}

func TestRouteSelfDelivery(t *testing.T) {
	m := hypercube.MustNew(3, costmodel.CM2())
	_, err := m.Run(func(p *hypercube.Proc) {
		in := Route(p, 1, []Msg{{Dst: p.ID(), Key: 9, Words: []float64{7}}})
		if len(in) != 1 || in[0].Key != 9 || in[0].Words[0] != 7 {
			panic("self-delivery failed")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRouteEmpty(t *testing.T) {
	m := hypercube.MustNew(3, costmodel.CM2())
	_, err := m.Run(func(p *hypercube.Proc) {
		if in := Route(p, 1, nil); len(in) != 0 {
			panic("messages from nowhere")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRouteManyToMany(t *testing.T) {
	// Every processor sends one message to every processor; everyone
	// must receive exactly P messages, one from each origin.
	m := hypercube.MustNew(4, costmodel.CM2())
	received := make([][]Msg, m.P())
	_, err := m.Run(func(p *hypercube.Proc) {
		out := make([]Msg, p.P())
		for q := 0; q < p.P(); q++ {
			out[q] = Msg{Dst: q, Key: p.ID(), Words: []float64{float64(p.ID()*p.P() + q)}}
		}
		received[p.ID()] = Route(p, 1, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < m.P(); pid++ {
		if len(received[pid]) != m.P() {
			t.Fatalf("proc %d received %d, want %d", pid, len(received[pid]), m.P())
		}
		seen := make(map[int]bool)
		for _, msg := range received[pid] {
			if seen[msg.Key] {
				t.Fatalf("proc %d received duplicate from %d", pid, msg.Key)
			}
			seen[msg.Key] = true
			if msg.Words[0] != float64(msg.Key*m.P()+pid) {
				t.Fatalf("proc %d message from %d has payload %v", pid, msg.Key, msg.Words)
			}
		}
	}
}

func TestRouteDestinationRangeChecked(t *testing.T) {
	m := hypercube.MustNew(2, costmodel.CM2())
	m.SetRecvTimeout(2e9)
	_, err := m.Run(func(p *hypercube.Proc) {
		if p.ID() == 0 {
			Route(p, 1, []Msg{{Dst: 99}})
		} else {
			Route(p, 1, nil)
		}
	})
	if err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestRouteCostsMoreThanStructured(t *testing.T) {
	// Moving the same volume as P one-element messages through the
	// router must cost more simulated time than one combined
	// structured broadcast-sized transfer; this gap is the paper's
	// naive-vs-primitive story.
	m := hypercube.MustNew(5, costmodel.CM2())
	_, err := m.Run(func(p *hypercube.Proc) {
		out := make([]Msg, 8)
		for j := range out {
			out[j] = Msg{Dst: (p.ID() + j + 1) % p.P(), Key: j, Words: []float64{1}}
		}
		Route(p, 1, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	routed := m.Elapsed()
	_, err = m.Run(func(p *hypercube.Proc) {
		// Equivalent structured volume: one 8-word exchange per dim.
		buf := make([]float64, 8)
		for i := 0; i < p.Dim(); i++ {
			p.Exchange(i, 2, buf)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	structured := m.Elapsed()
	if routed <= structured {
		t.Fatalf("router (%v) not more expensive than structured (%v)", routed, structured)
	}
}

func TestRequestFetchesRemoteValues(t *testing.T) {
	m := hypercube.MustNew(4, costmodel.CM2())
	// Each processor owns value id*100+key for keys 0..3; every
	// processor fetches key (pid mod 4) from every other processor.
	results := make([][][]float64, m.P())
	_, err := m.Run(func(p *hypercube.Proc) {
		key := p.ID() % 4
		want := make([]Msg, p.P())
		for q := 0; q < p.P(); q++ {
			want[q] = Msg{Dst: q, Key: key}
		}
		results[p.ID()] = Request(p, 10, want, func(k int) []float64 {
			return []float64{float64(p.ID()*100 + k)}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < m.P(); pid++ {
		key := pid % 4
		for q := 0; q < m.P(); q++ {
			want := float64(q*100 + key)
			if len(results[pid][q]) != 1 || results[pid][q][0] != want {
				t.Fatalf("proc %d fetch from %d: got %v, want %v", pid, q, results[pid][q], want)
			}
		}
	}
}

func TestRequestNoRequests(t *testing.T) {
	m := hypercube.MustNew(3, costmodel.CM2())
	_, err := m.Run(func(p *hypercube.Proc) {
		out := Request(p, 1, nil, func(int) []float64 { return nil })
		if len(out) != 0 {
			panic("phantom responses")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	msgs := []Msg{
		{Dst: 3, Key: 17, Words: []float64{1.5, -2}},
		{Dst: 0, Key: -1, Words: nil},
		{Dst: 7, Key: 0, Words: []float64{9}},
	}
	got := decode(encode(msgs))
	if len(got) != len(msgs) {
		t.Fatalf("decode count %d", len(got))
	}
	for i := range msgs {
		if got[i].Dst != msgs[i].Dst || got[i].Key != msgs[i].Key || len(got[i].Words) != len(msgs[i].Words) {
			t.Fatalf("message %d: %+v vs %+v", i, got[i], msgs[i])
		}
		for j := range msgs[i].Words {
			if got[i].Words[j] != msgs[i].Words[j] {
				t.Fatalf("message %d word %d", i, j)
			}
		}
	}
	if len(decode(nil)) != 0 {
		t.Fatal("decode(nil) non-empty")
	}
}
