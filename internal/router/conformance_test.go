package router

import (
	"testing"

	"vmprim/internal/costmodel"
	"vmprim/internal/hypercube"
)

// The router's conformance prediction assumes uniform traffic (each
// phase forwards about half the locally pending volume). These tests
// pin both sides of that assumption: uniform traffic lands inside the
// threshold, and hot-spot traffic — the paper's router-vs-primitives
// argument — blows past it and gets flagged.

func routeConformance(t *testing.T, body func(p *hypercube.Proc)) (ratio float64, flagged bool) {
	t.Helper()
	m := hypercube.MustNew(4, costmodel.CM2())
	m.EnableCritPath(true)
	if _, err := m.Run(body); err != nil {
		t.Fatal(err)
	}
	cp := m.CritPath()
	if err := cp.Check(); err != nil {
		t.Fatal(err)
	}
	for _, e := range cp.Conformance {
		if e.Name == "route" {
			return e.Ratio, e.Flagged
		}
	}
	t.Fatalf("no route conformance entry in %+v", cp.Conformance)
	return 0, false
}

func TestRouteConformanceUniformWithinThreshold(t *testing.T) {
	ratio, flagged := routeConformance(t, func(p *hypercube.Proc) {
		// A random-looking permutation: proc i sends to bit-reversed i,
		// spreading volume evenly over the links.
		dst := 0
		for b := 0; b < p.Dim(); b++ {
			if p.ID()>>b&1 == 1 {
				dst |= 1 << (p.Dim() - 1 - b)
			}
		}
		Route(p, 1, []Msg{{Dst: dst, Key: p.ID(), Words: make([]float64, 16)}})
	})
	if flagged {
		t.Errorf("uniform permutation routing flagged at ratio %.2f", ratio)
	}
}

func TestRouteConformanceHotSpotFlagged(t *testing.T) {
	ratio, flagged := routeConformance(t, func(p *hypercube.Proc) {
		// Everyone floods processor 0: the links into 0 serialize the
		// whole machine's volume while the prediction assumes each
		// processor's own injection spreads out.
		var out []Msg
		for i := 0; i < 8; i++ {
			out = append(out, Msg{Dst: 0, Key: p.ID()*8 + i, Words: make([]float64, 16)})
		}
		Route(p, 1, out)
	})
	if !flagged {
		t.Errorf("hot-spot routing unflagged at ratio %.2f: congestion should diverge from the uniform model", ratio)
	}
	if ratio < 2 {
		t.Errorf("hot-spot ratio = %.2f, expected well past the threshold", ratio)
	}
}
