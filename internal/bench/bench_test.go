package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tb := &Table{
		ID:      "X0",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   "a note",
	}
	tb.AddRow(1, 2.5)
	tb.AddRow("wide-cell", 10000.4)
	s := tb.String()
	if !strings.Contains(s, "X0 — demo") || !strings.Contains(s, "wide-cell") {
		t.Fatalf("table output:\n%s", s)
	}
	if !strings.Contains(s, "10000") || !strings.Contains(s, "2.500") {
		t.Fatalf("float formatting:\n%s", s)
	}
	if !strings.Contains(s, "note: a note") {
		t.Fatalf("missing note:\n%s", s)
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "F1", "F2", "F3", "A1", "A2", "A3", "A4", "X1", "X2", "X3"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("%d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if _, ok := ByID(strings.ToLower(id)); !ok {
			t.Fatalf("ByID(%q) failed", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

// cell parses a table cell back to a float.
func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s row %d col %d: %v", tb.ID, row, col, err)
	}
	return v
}

func TestWorkloadGeneratorsDeterministic(t *testing.T) {
	a1, b1 := RandSystem(5, 10)
	a2, b2 := RandSystem(5, 10)
	for i := range a1.A {
		if a1.A[i] != a2.A[i] {
			t.Fatal("RandSystem not deterministic")
		}
	}
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("RandSystem rhs not deterministic")
		}
	}
	c1, m1, r1 := RandLP(7, 4, 6)
	c2, m2, r2 := RandLP(7, 4, 6)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("RandLP c not deterministic")
		}
	}
	for i := range m1.A {
		if m1.A[i] != m2.A[i] {
			t.Fatal("RandLP A not deterministic")
		}
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("RandLP b not deterministic")
		}
	}
	if RandMat(3, 4, 5).At(1, 2) != RandMat(3, 4, 5).At(1, 2) {
		t.Fatal("RandMat not deterministic")
	}
	if RandVec(3, 5)[2] != RandVec(3, 5)[2] {
		t.Fatal("RandVec not deterministic")
	}
}

func TestF1SpeedupShape(t *testing.T) {
	tb, err := F1Speedup()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// Speedup must start at 1, rise, and flatten: final speedup well
	// below ideal p but above the half-way point's.
	if s0 := cell(t, tb, 0, 3); s0 != 1 {
		t.Fatalf("speedup(1) = %v", s0)
	}
	s4 := cell(t, tb, 4, 3)
	s8 := cell(t, tb, 8, 3)
	if s4 <= 2 {
		t.Fatalf("speedup(16) = %v, want > 2", s4)
	}
	if s8 >= 64 {
		t.Fatalf("speedup(256) = %v: no flattening near p lg p = m", s8)
	}
}

func TestF2EfficiencyClimbs(t *testing.T) {
	tb, err := F2Efficiency()
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for r := range tb.Rows {
		eff := cell(t, tb, r, 4)
		if eff <= prev {
			t.Fatalf("efficiency not monotone at row %d: %v after %v", r, eff, prev)
		}
		prev = eff
	}
	if prev < 0.5 {
		t.Fatalf("final efficiency %v, want > 0.5 (work-optimality regime)", prev)
	}
}

func TestE2ReduceNearOptimalAtLargeGrain(t *testing.T) {
	tb, err := E2Scaling()
	if err != nil {
		t.Fatal(err)
	}
	// First row: p=4, m/p=65536 >> lg p: processor-time product within
	// a small constant of serial.
	if ratio := cell(t, tb, 0, 3); ratio > 1.5 {
		t.Fatalf("pT/T1 at large grain = %v, want < 1.5", ratio)
	}
	// Ratio must grow monotonically as grain shrinks.
	prev := 0.0
	for r := range tb.Rows {
		ratio := cell(t, tb, r, 3)
		if ratio < prev {
			t.Fatalf("pT/T1 not monotone at row %d", r)
		}
		prev = ratio
	}
}

func TestA1AllPortRatioIsD(t *testing.T) {
	tb, err := A1Ports()
	if err != nil {
		t.Fatal(err)
	}
	for r := range tb.Rows {
		if ratio := cell(t, tb, r, 3); ratio < 5.5 || ratio > 6.5 {
			t.Fatalf("row %d: all-port ratio %v, want ~6 (=d)", r, ratio)
		}
	}
}

func TestA2CrossoverExists(t *testing.T) {
	tb, err := A2Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	winners := make(map[string]bool)
	for _, row := range tb.Rows {
		winners[row[4]] = true
	}
	if !winners["binomial"] || !winners["scatter/allgather"] {
		t.Fatalf("no crossover: winners = %v", winners)
	}
	// At the highest tau and smallest n the binomial tree must win; at
	// the lowest tau and largest n scatter/all-gather must win.
	if tb.Rows[3][4] != "scatter/allgather" {
		t.Fatalf("low tau, large n: winner %s", tb.Rows[3][4])
	}
	last := tb.Rows[len(tb.Rows)-4]
	if last[4] != "binomial" {
		t.Fatalf("high tau, small n: winner %s", last[4])
	}
}

func TestE1TimesGrowWithN(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner in -short mode")
	}
	tb, err := E1Primitives()
	if err != nil {
		t.Fatal(err)
	}
	for col := 1; col <= 4; col++ {
		prev := 0.0
		for r := range tb.Rows {
			v := cell(t, tb, r, col)
			if v <= 0 || v < prev {
				t.Fatalf("column %d not increasing at row %d", col, r)
			}
			prev = v
		}
	}
}

func TestE3OrderOfMagnitude(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner in -short mode")
	}
	tb, err := E3Matvec()
	if err != nil {
		t.Fatal(err)
	}
	for r := range tb.Rows {
		if ratio := cell(t, tb, r, 4); ratio < 5 {
			t.Fatalf("row %d: naive/fused = %v, want >= 5 (order-of-magnitude claim)", r, ratio)
		}
	}
}

func TestE4E5OrderOfMagnitude(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner in -short mode")
	}
	e4, err := E4Gauss()
	if err != nil {
		t.Fatal(err)
	}
	for r := range e4.Rows {
		ratio := cell(t, e4, r, 3)
		if ratio < 4 || ratio > 40 {
			t.Fatalf("E4 row %d: naive/prim = %v, want in the order-of-magnitude band", r, ratio)
		}
	}
	e5, err := E5Simplex()
	if err != nil {
		t.Fatal(err)
	}
	for r := range e5.Rows {
		ratio := cell(t, e5, r, 4)
		if ratio < 4 || ratio > 40 {
			t.Fatalf("E5 row %d: naive/prim = %v", r, ratio)
		}
	}
}

func TestA3CyclicWins(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner in -short mode")
	}
	tb, err := A3Cyclic()
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for r := range tb.Rows {
		ratio := cell(t, tb, r, 3)
		if ratio < 1 {
			t.Fatalf("row %d: block/cyclic = %v, cyclic should not lose", r, ratio)
		}
		if ratio < prev {
			t.Fatalf("row %d: cyclic advantage should grow with n", r)
		}
		prev = ratio
	}
}

func TestF3EmbeddingRunsAndGrows(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner in -short mode")
	}
	tb, err := F3Embedding()
	if err != nil {
		t.Fatal(err)
	}
	for col := 1; col <= 4; col++ {
		prev := 0.0
		for r := range tb.Rows {
			v := cell(t, tb, r, col)
			if v <= prev {
				t.Fatalf("col %d not increasing at row %d", col, r)
			}
			prev = v
		}
	}
}

func TestX1MatMulShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner in -short mode")
	}
	tb, err := X1MatMul()
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for r := range tb.Rows {
		v := cell(t, tb, r, 1)
		if v <= prev {
			t.Fatalf("matmul time not increasing at row %d", r)
		}
		prev = v
	}
	// Efficiency must improve with n (per-step start-ups amortize).
	if cell(t, tb, len(tb.Rows)-1, 4) <= cell(t, tb, 0, 4) {
		t.Fatal("matmul efficiency did not improve with n")
	}
}

func TestX2CGOvertakesGauss(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner in -short mode")
	}
	tb, err := X2DirectVsIterative()
	if err != nil {
		t.Fatal(err)
	}
	last := len(tb.Rows) - 1
	if ratio := cell(t, tb, last, 4); ratio <= 1 {
		t.Fatalf("gauss/cg = %v at the largest size, want > 1", ratio)
	}
	if cell(t, tb, last, 4) <= cell(t, tb, 0, 4) {
		t.Fatal("CG advantage should grow with n")
	}
}

func TestA4AllPortSpeedupGrows(t *testing.T) {
	tb, err := A4AllPortBroadcast()
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for r := range tb.Rows {
		s := cell(t, tb, r, 3)
		if s < prev {
			t.Fatalf("speedup not monotone at row %d", r)
		}
		prev = s
	}
	if prev < 4 {
		t.Fatalf("final all-port speedup %v, want >= 4 (approaching d=8)", prev)
	}
}

func TestX3TridiagLogDepth(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runner in -short mode")
	}
	tb, err := X3Tridiag()
	if err != nil {
		t.Fatal(err)
	}
	// Simulated time must grow far slower than n (log depth): across
	// the 64x size range, time grows by well under 8x.
	first := cell(t, tb, 0, 1)
	last := cell(t, tb, len(tb.Rows)-1, 1)
	if last/first > 8 {
		t.Fatalf("time grew %vx over a 64x size range: not log-depth", last/first)
	}
	// Speedup over the modelled serial Thomas must grow with n.
	if cell(t, tb, len(tb.Rows)-1, 3) <= cell(t, tb, 0, 3) {
		t.Fatal("speedup did not grow with n")
	}
}
