package bench

import (
	"fmt"

	"vmprim/internal/apps"
	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
	"vmprim/internal/metrics"
	"vmprim/internal/obs"
)

// Profiled experiment runs: one representative workload per evaluation
// table, executed on a machine with the virtual-time profiler (and a
// message trace, for the Chrome export's flow arrows) switched on.
// The workloads reuse the E1–E5 seeds and parameter sets, so a
// profiled run must reproduce the same simulated times as the plain
// tables — the profiler only observes, never perturbs — and the
// obs tests assert exactly that by running each workload with enable
// set both ways.
//
// Each workload is parameterized by a RunSpec (see spec.go): the
// defaults reproduce the tables, while serving and load-harness
// callers override the cube dimension and problem size and run on
// machines they own (typically pooled) via RunSpec.RunOn.

// profileTraceLimit bounds the per-processor message trace kept for
// the Chrome export's flow events. Only processor 0 and its neighbors
// are exported, so a modest bound suffices.
const profileTraceLimit = 4096

// ProfileOpts selects what a profiled workload records and on which
// cost model it runs.
type ProfileOpts struct {
	// Profile arms the span profiler (and the message trace for the
	// Chrome export's flow arrows).
	Profile bool
	// CritPath arms the critical-path tracer; the result's CritPath
	// (and, with Profile also set, Profile.Crit) carries the decoded
	// path and the cost-model conformance report.
	CritPath bool
	// Params overrides the machine's cost model; nil means the tables'
	// default CM2. RunSpec.RunOn ignores it (the caller built the
	// machine); it applies when ProfileRunOpts constructs one.
	Params *costmodel.Params
}

// ProfileResult is one profiled experiment workload.
type ProfileResult struct {
	// ID is the experiment id (E1..E5).
	ID string
	// Desc names the runs behind Times, in order.
	Desc string
	// Times holds the simulated elapsed time of every Run executed by
	// the workload, in execution order. These are bit-identical with
	// profiling on or off.
	Times []costmodel.Time
	// Clocks holds every processor's final virtual clock after the last
	// run, and Links the nonzero directed-link word loads of that run,
	// hottest first. Like Times they are deterministic: bit-identical
	// across profiling settings and across GOMAXPROCS values, which the
	// determinism stress tests assert.
	Clocks []costmodel.Time
	Links  []obs.LinkLoad
	// Profile is the profile of the last run, or nil when enable was
	// false.
	Profile *obs.Profile
	// CritPath is the critical path of the last run, or nil when the
	// tracer was off. Like Times it is simulated truth: bit-identical
	// at every GOMAXPROCS.
	CritPath *obs.CritPath
	// Metrics is the machine's metrics snapshot after the workload:
	// cumulative counters over every run the machine ever executed,
	// plus the last run's gauges. Always populated. On a fresh machine
	// this is exactly the workload's own metrics; on a pooled machine,
	// subtract a pre-run snapshot with metrics.Delta to isolate them.
	Metrics *metrics.Snapshot
}

// ProfileIDs lists the experiment ids ProfileRun accepts.
func ProfileIDs() []string { return []string{"E1", "E2", "E3", "E4", "E5"} }

// ProfileRun executes the representative workload of experiment id on
// a fresh machine, with the profiler and critical-path tracer enabled
// or not, and returns the simulated times of every run plus (when
// enabled) the profile and critical path of the final run. The same
// seeds and machine parameters as the experiment tables are used, so
// the times line up with EXPERIMENTS.md.
func ProfileRun(id string, enable bool) (*ProfileResult, error) {
	return ProfileRunOpts(id, ProfileOpts{Profile: enable, CritPath: enable})
}

// ProfileRunOpts is ProfileRun with the recording switches and cost
// model spelled out.
func ProfileRunOpts(id string, opts ProfileOpts) (*ProfileResult, error) {
	spec, err := RunSpec{Exp: id}.Normalized()
	if err != nil {
		return nil, err
	}
	params := costmodel.CM2()
	if opts.Params != nil {
		params = *opts.Params
	}
	m, err := hypercube.New(spec.D, params)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	return spec.RunOn(m, opts)
}

// finish assembles the result, pulling the machine's profile and
// critical path of the most recent run when their recorders were on.
func finish(s RunSpec, desc string, m *hypercube.Machine, opts ProfileOpts, times ...costmodel.Time) *ProfileResult {
	res := &ProfileResult{
		ID: s.Exp, Desc: desc, Times: times,
		Clocks:  m.Clocks(),
		Links:   m.Congestion(0),
		Metrics: m.Metrics().Snapshot(),
	}
	if opts.Profile {
		res.Profile = m.Profile()
	}
	if opts.CritPath {
		res.CritPath = m.CritPath()
	}
	return res
}

// profileE1 exercises all four primitives back to back in a single
// run; the table configuration is n=512 on the d=10 cube.
func profileE1(m *hypercube.Machine, s RunSpec, opts ProfileOpts) (*ProfileResult, error) {
	d, n := s.D, s.N
	g := embed.SplitFor(d, n, n)
	a, err := core.FromDense(g, RandMat(100+int64(n), n, n), embed.Block, embed.Block)
	if err != nil {
		return nil, err
	}
	xv, err := core.VectorFromSlice(g, RandVec(200+int64(n), n), core.RowAligned, embed.Block, 0, false)
	if err != nil {
		return nil, err
	}
	row := n / 2
	elapsed, err := timedRun(m, g, func(e *core.Env) {
		e.ExtractRow(a, row, true)
		e.InsertRow(a, xv, row)
		e.Distribute(xv)
		e.ReduceRows(a, core.OpSum, true)
	})
	if err != nil {
		return nil, err
	}
	desc := fmt.Sprintf("extract+insert+distribute+reduce, n=%d, p=%d", n, 1<<d)
	return finish(s, desc, m, opts, elapsed), nil
}

// profileE2 runs the E2 Reduce and Distribute pair; the table
// configuration is n=512 on the d=8 machine.
func profileE2(m *hypercube.Machine, s RunSpec, opts ProfileOpts) (*ProfileResult, error) {
	d, n := s.D, s.N
	g := embed.SplitFor(d, n, n)
	a, err := core.FromDense(g, RandMat(300+int64(d), n, n), embed.Block, embed.Block)
	if err != nil {
		return nil, err
	}
	xv, err := core.VectorFromSlice(g, RandVec(400, n), core.RowAligned, embed.Block, 0, false)
	if err != nil {
		return nil, err
	}
	elapsed, err := timedRun(m, g, func(e *core.Env) {
		e.ReduceRows(a, core.OpSum, true)
		e.SpreadRows(xv, n, embed.Block)
	})
	if err != nil {
		return nil, err
	}
	desc := fmt.Sprintf("reduce+spread, n=%d, p=%d", n, 1<<d)
	return finish(s, desc, m, opts, elapsed), nil
}

// profileE3 runs the three vector-matrix variants; the table
// configuration is n=512 on the d=10 machine. The profile is of the
// last (naive) run, whose span tree shows the router storm the
// primitives avoid.
func profileE3(m *hypercube.Machine, s RunSpec, opts ProfileOpts) (*ProfileResult, error) {
	d, n := s.D, s.N
	a := RandMat(500+int64(n), n, n)
	x := RandVec(600+int64(n), n)
	var times []costmodel.Time
	for _, variant := range []apps.MatvecVariant{apps.MatvecPrimitive, apps.MatvecFused, apps.MatvecNaive} {
		_, elapsed, _, err := apps.RunVecMat(m, a, x, variant)
		if err != nil {
			return nil, err
		}
		times = append(times, elapsed)
	}
	desc := fmt.Sprintf("matvec primitive, fused, naive, n=%d, p=%d", n, 1<<d)
	return finish(s, desc, m, opts, times...), nil
}

// profileE4 runs primitive-based Gaussian elimination; the table
// configuration is n=128 on the d=8 machine.
func profileE4(m *hypercube.Machine, s RunSpec, opts ProfileOpts) (*ProfileResult, error) {
	d, n := s.D, s.N
	a, b := RandSystem(700+int64(n), n)
	_, elapsed, err := apps.SolveGauss(m, a, b, apps.DefaultGaussOpts())
	if err != nil {
		return nil, err
	}
	desc := fmt.Sprintf("gauss primitives, n=%d, p=%d", n, 1<<d)
	return finish(s, desc, m, opts, elapsed), nil
}

// profileE5 runs primitive-based simplex on an N x 3N/2 program; the
// table configuration is 32x48 on the d=8 machine.
func profileE5(m *hypercube.Machine, s RunSpec, opts ProfileOpts) (*ProfileResult, error) {
	d, rows := s.D, s.N
	cols := rows + rows/2
	c, a, b := RandLP(800+int64(rows), rows, cols)
	_, elapsed, err := apps.SolveSimplex(m, c, a, b, apps.DefaultSimplexOpts())
	if err != nil {
		return nil, err
	}
	desc := fmt.Sprintf("simplex primitives, %dx%d, p=%d", rows, cols, 1<<d)
	return finish(s, desc, m, opts, elapsed), nil
}
