package bench

import (
	"fmt"
	"strings"

	"vmprim/internal/apps"
	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
	"vmprim/internal/metrics"
	"vmprim/internal/obs"
)

// Profiled experiment runs: one representative workload per evaluation
// table, executed on a machine with the virtual-time profiler (and a
// message trace, for the Chrome export's flow arrows) switched on.
// The workloads reuse the E1–E5 seeds and parameter sets, so a
// profiled run must reproduce the same simulated times as the plain
// tables — the profiler only observes, never perturbs — and the
// obs tests assert exactly that by running each workload with enable
// set both ways.

// profileTraceLimit bounds the per-processor message trace kept for
// the Chrome export's flow events. Only processor 0 and its neighbors
// are exported, so a modest bound suffices.
const profileTraceLimit = 4096

// ProfileOpts selects what a profiled workload records and on which
// cost model it runs.
type ProfileOpts struct {
	// Profile arms the span profiler (and the message trace for the
	// Chrome export's flow arrows).
	Profile bool
	// CritPath arms the critical-path tracer; the result's CritPath
	// (and, with Profile also set, Profile.Crit) carries the decoded
	// path and the cost-model conformance report.
	CritPath bool
	// Params overrides the machine's cost model; nil means the tables'
	// default CM2.
	Params *costmodel.Params
}

// ProfileResult is one profiled experiment workload.
type ProfileResult struct {
	// ID is the experiment id (E1..E5).
	ID string
	// Desc names the runs behind Times, in order.
	Desc string
	// Times holds the simulated elapsed time of every Run executed by
	// the workload, in execution order. These are bit-identical with
	// profiling on or off.
	Times []costmodel.Time
	// Clocks holds every processor's final virtual clock after the last
	// run, and Links the nonzero directed-link word loads of that run,
	// hottest first. Like Times they are deterministic: bit-identical
	// across profiling settings and across GOMAXPROCS values, which the
	// determinism stress tests assert.
	Clocks []costmodel.Time
	Links  []obs.LinkLoad
	// Profile is the profile of the last run, or nil when enable was
	// false.
	Profile *obs.Profile
	// CritPath is the critical path of the last run, or nil when the
	// tracer was off. Like Times it is simulated truth: bit-identical
	// at every GOMAXPROCS.
	CritPath *obs.CritPath
	// Metrics is the machine's metrics snapshot after the workload:
	// cumulative counters over every run the workload executed, plus
	// the last run's gauges. Always populated.
	Metrics *metrics.Snapshot
}

// ProfileIDs lists the experiment ids ProfileRun accepts.
func ProfileIDs() []string { return []string{"E1", "E2", "E3", "E4", "E5"} }

// ProfileRun executes the representative workload of experiment id on
// a fresh machine, with the profiler and critical-path tracer enabled
// or not, and returns the simulated times of every run plus (when
// enabled) the profile and critical path of the final run. The same
// seeds and machine parameters as the experiment tables are used, so
// the times line up with EXPERIMENTS.md.
func ProfileRun(id string, enable bool) (*ProfileResult, error) {
	return ProfileRunOpts(id, ProfileOpts{Profile: enable, CritPath: enable})
}

// ProfileRunOpts is ProfileRun with the recording switches and cost
// model spelled out.
func ProfileRunOpts(id string, opts ProfileOpts) (*ProfileResult, error) {
	switch strings.ToUpper(id) {
	case "E1":
		return profileE1(opts)
	case "E2":
		return profileE2(opts)
	case "E3":
		return profileE3(opts)
	case "E4":
		return profileE4(opts)
	case "E5":
		return profileE5(opts)
	default:
		return nil, fmt.Errorf("bench: no profiled workload for %q (have %v)", id, ProfileIDs())
	}
}

// newProfiledMachine builds the machine every profiled workload runs
// on, with the recorders opts asks for armed.
func newProfiledMachine(d int, opts ProfileOpts) (*hypercube.Machine, error) {
	params := costmodel.CM2()
	if opts.Params != nil {
		params = *opts.Params
	}
	m, err := hypercube.New(d, params)
	if err != nil {
		return nil, err
	}
	if opts.Profile {
		m.EnableProfile(true)
		m.EnableTrace(profileTraceLimit)
	}
	if opts.CritPath {
		m.EnableCritPath(true)
	}
	return m, nil
}

// finish assembles the result, pulling the machine's profile and
// critical path of the most recent run when their recorders were on.
func finish(id, desc string, m *hypercube.Machine, opts ProfileOpts, times ...costmodel.Time) *ProfileResult {
	res := &ProfileResult{
		ID: id, Desc: desc, Times: times,
		Clocks:  m.Clocks(),
		Links:   m.Congestion(0),
		Metrics: m.Metrics().Snapshot(),
	}
	if opts.Profile {
		res.Profile = m.Profile()
	}
	if opts.CritPath {
		res.CritPath = m.CritPath()
	}
	return res
}

// profileE1 exercises all four primitives back to back in a single
// run on the E1 table's n=512, d=10 configuration.
func profileE1(opts ProfileOpts) (*ProfileResult, error) {
	const d, n = 10, 512
	m, err := newProfiledMachine(d, opts)
	if err != nil {
		return nil, err
	}
	g := embed.SplitFor(d, n, n)
	a, err := core.FromDense(g, RandMat(100+int64(n), n, n), embed.Block, embed.Block)
	if err != nil {
		return nil, err
	}
	xv, err := core.VectorFromSlice(g, RandVec(200+int64(n), n), core.RowAligned, embed.Block, 0, false)
	if err != nil {
		return nil, err
	}
	row := n / 2
	elapsed, err := timedRun(m, g, func(e *core.Env) {
		e.ExtractRow(a, row, true)
		e.InsertRow(a, xv, row)
		e.Distribute(xv)
		e.ReduceRows(a, core.OpSum, true)
	})
	if err != nil {
		return nil, err
	}
	return finish("E1", "extract+insert+distribute+reduce, n=512, p=1024", m, opts, elapsed), nil
}

// profileE2 runs the E2 Reduce and Distribute pair at n=512 on the
// d=8 machine.
func profileE2(opts ProfileOpts) (*ProfileResult, error) {
	const d, n = 8, 512
	m, err := newProfiledMachine(d, opts)
	if err != nil {
		return nil, err
	}
	g := embed.SplitFor(d, n, n)
	a, err := core.FromDense(g, RandMat(300+int64(d), n, n), embed.Block, embed.Block)
	if err != nil {
		return nil, err
	}
	xv, err := core.VectorFromSlice(g, RandVec(400, n), core.RowAligned, embed.Block, 0, false)
	if err != nil {
		return nil, err
	}
	elapsed, err := timedRun(m, g, func(e *core.Env) {
		e.ReduceRows(a, core.OpSum, true)
		e.SpreadRows(xv, n, embed.Block)
	})
	if err != nil {
		return nil, err
	}
	return finish("E2", "reduce+spread, n=512, p=256", m, opts, elapsed), nil
}

// profileE3 runs the three vector-matrix variants at n=512 on the
// d=10 machine; the profile is of the last (naive) run, whose span
// tree shows the router storm the primitives avoid.
func profileE3(opts ProfileOpts) (*ProfileResult, error) {
	const d, n = 10, 512
	m, err := newProfiledMachine(d, opts)
	if err != nil {
		return nil, err
	}
	a := RandMat(500+int64(n), n, n)
	x := RandVec(600+int64(n), n)
	var times []costmodel.Time
	for _, variant := range []apps.MatvecVariant{apps.MatvecPrimitive, apps.MatvecFused, apps.MatvecNaive} {
		_, elapsed, _, err := apps.RunVecMat(m, a, x, variant)
		if err != nil {
			return nil, err
		}
		times = append(times, elapsed)
	}
	return finish("E3", "matvec primitive, fused, naive, n=512, p=1024", m, opts, times...), nil
}

// profileE4 runs the E4 table's n=128 primitive-based Gaussian
// elimination on the d=8 machine.
func profileE4(opts ProfileOpts) (*ProfileResult, error) {
	const d, n = 8, 128
	m, err := newProfiledMachine(d, opts)
	if err != nil {
		return nil, err
	}
	a, b := RandSystem(700+int64(n), n)
	_, elapsed, err := apps.SolveGauss(m, a, b, apps.DefaultGaussOpts())
	if err != nil {
		return nil, err
	}
	return finish("E4", "gauss primitives, n=128, p=256", m, opts, elapsed), nil
}

// profileE5 runs the E5 table's 32x48 primitive-based simplex on the
// d=8 machine.
func profileE5(opts ProfileOpts) (*ProfileResult, error) {
	const d, rows, cols = 8, 32, 48
	m, err := newProfiledMachine(d, opts)
	if err != nil {
		return nil, err
	}
	c, a, b := RandLP(800+int64(rows), rows, cols)
	_, elapsed, err := apps.SolveSimplex(m, c, a, b, apps.DefaultSimplexOpts())
	if err != nil {
		return nil, err
	}
	return finish("E5", "simplex primitives, 32x48, p=256", m, opts, elapsed), nil
}
