package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Benchmark snapshot schema and regression comparison.
//
// BENCH_*.json files at the repository root record host-side
// performance snapshots: a top-level description, a host block, and
// one section per measured revision ("seed", "current", ...), each a
// SnapshotRun with per-benchmark results. cmd/hostbench -json emits a
// single-section file in the same schema, and cmd/benchdiff compares
// two sections — from the same file, different files, or a fresh
// hostbench run against the last committed snapshot.
//
// The comparison has two regimes, matching what the numbers mean.
// sim_us_per_op is simulated machine time: deterministic by
// construction, so any difference at all is a correctness regression
// and gates. ns_per_op is host time: noisy across machines and CI
// runs, so it is compared against a relative threshold and is
// informational unless the caller opts into gating.

// SimBuckets is the optional per-processor mean virtual-time split
// recorded by hostbench -profile.
type SimBuckets struct {
	ComputeUs  float64 `json:"compute_us"`
	StartupUs  float64 `json:"startup_us"`
	TransferUs float64 `json:"transfer_us"`
	IdleUs     float64 `json:"idle_us"`
}

// SnapshotResult is one benchmark's measurement in a snapshot.
type SnapshotResult struct {
	Name        string      `json:"name"`
	NsPerOp     int64       `json:"ns_per_op"`
	AllocsPerOp int64       `json:"allocs_per_op"`
	BytesPerOp  int64       `json:"bytes_per_op"`
	SimUsPerOp  float64     `json:"sim_us_per_op"`
	Iterations  int         `json:"iterations"`
	Sim         *SimBuckets `json:"sim_buckets,omitempty"`
}

// SnapshotRun is one measured revision: a labelled set of results.
// GOMAXPROCS records the value actually in effect while this section's
// benchmarks ran (a GOMAXPROCS sweep writes one section per setting),
// so every row is self-describing even when it differs from the host
// block's process-global value.
type SnapshotRun struct {
	Label      string           `json:"label,omitempty"`
	Dim        int              `json:"dim"`
	N          int              `json:"n"`
	Benchtime  string           `json:"benchtime"`
	GoVersion  string           `json:"go_version,omitempty"`
	GOMAXPROCS int              `json:"gomaxprocs,omitempty"`
	Timestamp  string           `json:"timestamp"`
	Results    []SnapshotResult `json:"results"`
}

// HostInfo describes the measuring host. GOMAXPROCS here is the
// process-global value at startup; sweep sections override it per
// measurement in SnapshotRun.GOMAXPROCS, which is authoritative for
// the rows it labels.
type HostInfo struct {
	CPU        string `json:"cpu,omitempty"`
	GOOS       string `json:"goos,omitempty"`
	GOARCH     string `json:"goarch,omitempty"`
	GoVersion  string `json:"go_version,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	NumCPU     int    `json:"num_cpu,omitempty"`
}

// SnapshotFile is one BENCH_*.json document: fixed header fields plus
// named sections.
type SnapshotFile struct {
	Description string
	Host        *HostInfo
	Sections    map[string]*SnapshotRun
}

// UnmarshalJSON treats every top-level key except description and
// host as a section.
func (f *SnapshotFile) UnmarshalJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	f.Sections = make(map[string]*SnapshotRun)
	for key, msg := range raw {
		switch key {
		case "description":
			if err := json.Unmarshal(msg, &f.Description); err != nil {
				return err
			}
		case "host":
			if err := json.Unmarshal(msg, &f.Host); err != nil {
				return err
			}
		default:
			run := &SnapshotRun{}
			if err := json.Unmarshal(msg, run); err != nil {
				return fmt.Errorf("section %q: %w", key, err)
			}
			f.Sections[key] = run
		}
	}
	return nil
}

// MarshalJSON renders the file with description and host first and
// the sections in sorted order ("current" always last, matching the
// committed files' seed-then-current convention).
func (f *SnapshotFile) MarshalJSON() ([]byte, error) {
	buf := []byte("{")
	comma := false
	add := func(key string, v any) error {
		kb, _ := json.Marshal(key)
		vb, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if comma {
			buf = append(buf, ',')
		}
		buf = append(buf, kb...)
		buf = append(buf, ':')
		buf = append(buf, vb...)
		comma = true
		return nil
	}
	if f.Description != "" {
		if err := add("description", f.Description); err != nil {
			return nil, err
		}
	}
	if f.Host != nil {
		if err := add("host", f.Host); err != nil {
			return nil, err
		}
	}
	for _, name := range f.SectionNames() {
		if err := add(name, f.Sections[name]); err != nil {
			return nil, err
		}
	}
	return append(buf, '}'), nil
}

// SectionNames lists the file's sections, sorted, with "current" moved
// to the end.
func (f *SnapshotFile) SectionNames() []string {
	names := make([]string, 0, len(f.Sections))
	for name := range f.Sections {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if (names[i] == "current") != (names[j] == "current") {
			return names[j] == "current"
		}
		return names[i] < names[j]
	})
	return names
}

// Section resolves a section by name; the empty name picks "current"
// if present, otherwise the file's only section.
func (f *SnapshotFile) Section(name string) (*SnapshotRun, error) {
	if name == "" {
		if run, ok := f.Sections["current"]; ok {
			return run, nil
		}
		if len(f.Sections) == 1 {
			for _, run := range f.Sections {
				return run, nil
			}
		}
		return nil, fmt.Errorf("bench: no \"current\" section; pick one of %v", f.SectionNames())
	}
	run, ok := f.Sections[name]
	if !ok {
		return nil, fmt.Errorf("bench: no section %q; have %v", name, f.SectionNames())
	}
	return run, nil
}

// LoadSnapshotFile reads and parses one BENCH_*.json document.
func LoadSnapshotFile(path string) (*SnapshotFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f := &SnapshotFile{}
	if err := json.Unmarshal(data, f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Name string
	// Old and New are nil when the benchmark exists on one side only.
	Old, New *SnapshotResult
	// HostRatio is new/old ns_per_op (1.0 = unchanged); NaN when not
	// comparable.
	HostRatio float64
	// SimChanged reports a sim_us_per_op difference — any difference,
	// since simulated time is deterministic.
	SimChanged bool
	// HostRegressed reports that HostRatio exceeds 1+threshold.
	HostRegressed bool
}

// CompareRuns matches benchmarks by name (in old's order, with
// new-only entries appended) and flags sim changes and host
// regressions beyond hostThreshold (e.g. 0.20 = +20% ns/op).
func CompareRuns(oldRun, newRun *SnapshotRun, hostThreshold float64) []Delta {
	newByName := make(map[string]*SnapshotResult, len(newRun.Results))
	for i := range newRun.Results {
		newByName[newRun.Results[i].Name] = &newRun.Results[i]
	}
	var deltas []Delta
	seen := make(map[string]bool, len(oldRun.Results))
	for i := range oldRun.Results {
		o := &oldRun.Results[i]
		seen[o.Name] = true
		d := Delta{Name: o.Name, Old: o, New: newByName[o.Name], HostRatio: math.NaN()}
		if d.New != nil {
			if o.NsPerOp > 0 {
				d.HostRatio = float64(d.New.NsPerOp) / float64(o.NsPerOp)
				d.HostRegressed = d.HostRatio > 1+hostThreshold
			}
			d.SimChanged = d.New.SimUsPerOp != o.SimUsPerOp
		}
		deltas = append(deltas, d)
	}
	for i := range newRun.Results {
		if n := &newRun.Results[i]; !seen[n.Name] {
			deltas = append(deltas, Delta{Name: n.Name, New: n, HostRatio: math.NaN()})
		}
	}
	return deltas
}

// Verdict summarizes a comparison for gating.
type Verdict struct {
	// SimMismatches names benchmarks whose simulated time changed.
	SimMismatches []string
	// HostRegressions names benchmarks whose ns/op regressed beyond
	// the threshold.
	HostRegressions []string
	// Missing names benchmarks present on only one side.
	Missing []string
}

// Summarize folds deltas into a Verdict.
func Summarize(deltas []Delta) Verdict {
	var v Verdict
	for _, d := range deltas {
		switch {
		case d.Old == nil || d.New == nil:
			v.Missing = append(v.Missing, d.Name)
		default:
			if d.SimChanged {
				v.SimMismatches = append(v.SimMismatches, d.Name)
			}
			if d.HostRegressed {
				v.HostRegressions = append(v.HostRegressions, d.Name)
			}
		}
	}
	return v
}
