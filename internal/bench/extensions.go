package bench

import (
	"fmt"
	"math/rand"

	"vmprim/internal/apps"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
	"vmprim/internal/serial"
)

// Extension experiments X1–X2: beyond the paper's tables, exercising
// the library's extension features (outer-product matrix multiply and
// the iterative solver) under the same cost model.

// X1MatMul times the primitive-composed outer-product matrix multiply
// against the modelled serial time, across sizes.
func X1MatMul() (*Table, error) {
	const d = 6
	params := costmodel.CM2()
	m, err := hypercube.New(d, params)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "X1",
		Title:   fmt.Sprintf("C = A*B by outer products, p=%d (simulated us)", m.P()),
		Columns: []string{"n", "T (us)", "T/step", "pT/T1", "efficiency"},
		Notes:   "each inner-dimension step is ExtractCol + ExtractRow (+Distribute) + rank-1 update; per-step time is flat until the m/p volume term dominates",
	}
	for _, n := range []int{16, 32, 64, 128} {
		a := RandMat(1400+int64(n), n, n)
		b := RandMat(1500+int64(n), n, n)
		_, elapsed, err := apps.MatMul(m, a, b, embed.Block)
		if err != nil {
			return nil, err
		}
		t1 := params.FlopCost(2 * n * n * n)
		p := float64(m.P())
		ratio := p * float64(elapsed) / float64(t1)
		t.AddRow(n, float64(elapsed), float64(elapsed)/float64(n), ratio, 1/ratio)
	}
	return t, nil
}

// X2DirectVsIterative compares the direct elimination solve with
// conjugate gradient on SPD systems: CG's per-iteration cost is one
// matvec (O(m/p + lg p)) and its iteration count is condition-bound,
// so it overtakes O(n) elimination steps as n grows.
func X2DirectVsIterative() (*Table, error) {
	const d = 6
	m, err := hypercube.New(d, costmodel.CM2())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "X2",
		Title:   fmt.Sprintf("SPD solve: elimination vs conjugate gradient, p=%d (simulated us)", m.P()),
		Columns: []string{"n", "gauss", "cg", "cg iters", "gauss/cg"},
		Notes:   "well-conditioned SPD systems: CG converges in far fewer than n steps, each much cheaper than an elimination step, so the gap widens with n",
	}
	for _, n := range []int{32, 64, 128} {
		a, b := spdSystem(1600+int64(n), n)
		_, tGauss, err := apps.SolveGauss(m, a, b, apps.DefaultGaussOpts())
		if err != nil {
			return nil, err
		}
		res, tCG, err := apps.SolveCG(m, a, b, apps.CGOpts{Tol: 1e-8})
		if err != nil {
			return nil, err
		}
		if !res.Converged {
			return nil, fmt.Errorf("bench: X2 CG failed to converge at n=%d", n)
		}
		t.AddRow(n, float64(tGauss), float64(tCG), res.Iterations, float64(tGauss)/float64(tCG))
	}
	return t, nil
}

// spdSystem returns a well-conditioned SPD matrix and right-hand side.
func spdSystem(seed int64, n int) (*serial.Mat, []float64) {
	rng := rand.New(rand.NewSource(seed))
	raw := serial.NewMat(n, n)
	for i := range raw.A {
		raw.A[i] = rng.NormFloat64() / float64(n)
	}
	a := serial.MatMul(raw.Transpose(), raw)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+1)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return a, b
}

// X3Tridiag shows the log-depth of distributed cyclic reduction: the
// simulated solve time grows logarithmically in n once the machine is
// saturated, against the serial Thomas algorithm's linear work.
func X3Tridiag() (*Table, error) {
	const d = 6
	params := costmodel.CM2()
	m, err := hypercube.New(d, params)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "X3",
		Title:   fmt.Sprintf("tridiagonal solve by cyclic reduction, p=%d (simulated us)", m.P()),
		Columns: []string{"n", "T (us)", "T_thomas (modelled)", "speedup"},
		Notes:   "cyclic reduction pays ~2 lg n routed rounds of start-up, so under CM2-like start-up costs it only overtakes the 8n-flop serial Thomas algorithm for large n — the same crossover the hybrid-algorithm literature (Johnsson & Ho) reports; its own time grows only logarithmically",
	}
	for _, n := range []int{256, 1024, 4096, 16384} {
		rng := rand.New(rand.NewSource(1700 + int64(n)))
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		dd := make([]float64, n)
		for i := 0; i < n; i++ {
			if i > 0 {
				a[i] = rng.NormFloat64()
			}
			if i < n-1 {
				c[i] = rng.NormFloat64()
			}
			b[i] = 4 + rng.Float64()
			dd[i] = rng.NormFloat64()
		}
		_, elapsed, err := apps.SolveTridiag(m, a, b, c, dd)
		if err != nil {
			return nil, err
		}
		thomas := params.FlopCost(8 * n)
		t.AddRow(n, float64(elapsed), float64(thomas), float64(thomas)/float64(elapsed))
	}
	return t, nil
}
