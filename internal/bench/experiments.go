package bench

import (
	"fmt"

	"vmprim/internal/apps"
	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
	"vmprim/internal/serial"
)

// Tables E1–E5: the reconstructed evaluation tables (see DESIGN.md).
// All timings are simulated microseconds on the CM2-like parameter
// set; shapes, ratios and crossovers are the reproduction target.

// timedRun executes one SPMD body and returns the simulated time.
func timedRun(m *hypercube.Machine, g embed.Grid, body func(e *core.Env)) (costmodel.Time, error) {
	return m.Run(func(p *hypercube.Proc) { body(core.NewEnv(p, g)) })
}

// E1Primitives times each of the four primitives on n x n matrices at
// a fixed machine size (d=10, p=1024), the shape of the paper's
// primitive-timing table.
func E1Primitives() (*Table, error) {
	const d = 10
	m, err := hypercube.New(d, costmodel.CM2())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E1",
		Title:   fmt.Sprintf("primitive timings, p=%d, CM2-like params (simulated us)", m.P()),
		Columns: []string{"n", "extract(row)", "insert(row)", "distribute", "reduce(rows,+)"},
		Notes:   "times grow as m/p + lg p; at small n the lg p start-up term dominates, at large n the m/p volume term",
	}
	for _, n := range []int{64, 128, 256, 512, 1024} {
		g := embed.SplitFor(d, n, n)
		dm := RandMat(100+int64(n), n, n)
		a, err := core.FromDense(g, dm, embed.Block, embed.Block)
		if err != nil {
			return nil, err
		}
		xv, err := core.VectorFromSlice(g, RandVec(200+int64(n), n), core.RowAligned, embed.Block, 0, false)
		if err != nil {
			return nil, err
		}
		row := n / 2
		tExtract, err := timedRun(m, g, func(e *core.Env) { e.ExtractRow(a, row, true) })
		if err != nil {
			return nil, err
		}
		tInsert, err := timedRun(m, g, func(e *core.Env) { e.InsertRow(a, xv, row) })
		if err != nil {
			return nil, err
		}
		tDist, err := timedRun(m, g, func(e *core.Env) { e.Distribute(xv) })
		if err != nil {
			return nil, err
		}
		tReduce, err := timedRun(m, g, func(e *core.Env) { e.ReduceRows(a, core.OpSum, true) })
		if err != nil {
			return nil, err
		}
		t.AddRow(n, float64(tExtract), float64(tInsert), float64(tDist), float64(tReduce))
	}
	return t, nil
}

// E2Scaling times Reduce and Distribute for a fixed 512 x 512 matrix
// while the machine grows, and reports the processor-time product
// relative to the modelled serial time: the m > p lg p optimality
// claim makes the ratio flatten while m/p >> lg p and rise once
// start-ups dominate.
func E2Scaling() (*Table, error) {
	const n = 512
	params := costmodel.CM2()
	t := &Table{
		ID:      "E2",
		Title:   fmt.Sprintf("Reduce/Distribute on %dx%d vs machine size (simulated us)", n, n),
		Columns: []string{"p", "m/p", "T_reduce", "pT/T1_reduce", "T_dist", "pT/T1_dist"},
		Notes:   "pT/T1 is the processor-time product over the serial time; near-constant while m/p > lg p (the paper's optimality regime), rising once start-up dominates",
	}
	// Modelled serial baselines: m combining operations for the
	// reduction, m element moves for the distribution.
	serialReduce := params.FlopCost(n * n)
	serialDist := params.FlopCost(n * n)
	for _, d := range []int{2, 4, 6, 8, 10} {
		m, err := hypercube.New(d, params)
		if err != nil {
			return nil, err
		}
		g := embed.SplitFor(d, n, n)
		dm := RandMat(300+int64(d), n, n)
		a, err := core.FromDense(g, dm, embed.Block, embed.Block)
		if err != nil {
			return nil, err
		}
		xv, err := core.VectorFromSlice(g, RandVec(400, n), core.RowAligned, embed.Block, 0, false)
		if err != nil {
			return nil, err
		}
		tReduce, err := timedRun(m, g, func(e *core.Env) { e.ReduceRows(a, core.OpSum, true) })
		if err != nil {
			return nil, err
		}
		tDist, err := timedRun(m, g, func(e *core.Env) { e.SpreadRows(xv, n, embed.Block) })
		if err != nil {
			return nil, err
		}
		p := float64(m.P())
		t.AddRow(m.P(), n*n/m.P(),
			float64(tReduce), p*float64(tReduce)/float64(serialReduce),
			float64(tDist), p*float64(tDist)/float64(serialDist))
	}
	return t, nil
}

// E3Matvec compares the naive router-based vector-matrix multiply with
// the primitive composition and the fused kernel: the paper's
// "almost an order of magnitude" table.
func E3Matvec() (*Table, error) {
	const d = 10
	m, err := hypercube.New(d, costmodel.CM2())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E3",
		Title:   fmt.Sprintf("y = x*A, p=%d: naive vs primitives (simulated us)", m.P()),
		Columns: []string{"n", "naive", "primitive", "fused", "naive/fused"},
		Notes:   "the paper reports almost an order of magnitude between the naive router implementation and the primitives",
	}
	for _, n := range []int{256, 512, 1024} {
		a := RandMat(500+int64(n), n, n)
		x := RandVec(600+int64(n), n)
		var times [3]costmodel.Time
		for vi, variant := range []apps.MatvecVariant{apps.MatvecNaive, apps.MatvecPrimitive, apps.MatvecFused} {
			_, elapsed, _, err := apps.RunVecMat(m, a, x, variant)
			if err != nil {
				return nil, err
			}
			times[vi] = elapsed
		}
		t.AddRow(n, float64(times[0]), float64(times[1]), float64(times[2]), float64(times[0])/float64(times[2]))
	}
	return t, nil
}

// E4Gauss compares naive and primitive-based Gaussian elimination.
func E4Gauss() (*Table, error) {
	const d = 8
	m, err := hypercube.New(d, costmodel.CM2())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E4",
		Title:   fmt.Sprintf("Gaussian elimination Ax=b, p=%d (simulated us)", m.P()),
		Columns: []string{"n", "naive", "primitives", "naive/prim", "residual"},
		Notes:   "identical pivoting and arithmetic; only the communication differs",
	}
	for _, n := range []int{32, 64, 128} {
		a, b := RandSystem(700+int64(n), n)
		xp, tPrim, err := apps.SolveGauss(m, a, b, apps.DefaultGaussOpts())
		if err != nil {
			return nil, err
		}
		opts := apps.DefaultGaussOpts()
		opts.Naive = true
		_, tNaive, err := apps.SolveGauss(m, a, b, opts)
		if err != nil {
			return nil, err
		}
		res := serial.Norm2(serial.Residual(a, xp, b))
		t.AddRow(n, float64(tNaive), float64(tPrim), float64(tNaive)/float64(tPrim), fmt.Sprintf("%.1e", res))
	}
	return t, nil
}

// E5Simplex compares naive and primitive-based simplex per-iteration
// cost on random dense LPs.
func E5Simplex() (*Table, error) {
	const d = 8
	m, err := hypercube.New(d, costmodel.CM2())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E5",
		Title:   fmt.Sprintf("dense simplex, p=%d (simulated us)", m.P()),
		Columns: []string{"rows x cols", "iters", "prim/iter", "naive/iter", "naive/prim"},
		Notes:   "per-pivot cost; both kernels follow the identical pivot sequence",
	}
	for _, shape := range [][2]int{{16, 24}, {32, 48}, {64, 96}} {
		rows, cols := shape[0], shape[1]
		c, a, b := RandLP(800+int64(rows), rows, cols)
		resP, tPrim, err := apps.SolveSimplex(m, c, a, b, apps.DefaultSimplexOpts())
		if err != nil {
			return nil, err
		}
		opts := apps.DefaultSimplexOpts()
		opts.Naive = true
		resN, tNaive, err := apps.SolveSimplex(m, c, a, b, opts)
		if err != nil {
			return nil, err
		}
		if resP.Iterations != resN.Iterations {
			return nil, fmt.Errorf("bench: E5 pivot sequences diverged (%d vs %d iterations)", resP.Iterations, resN.Iterations)
		}
		iters := float64(resP.Iterations)
		if iters == 0 {
			iters = 1
		}
		t.AddRow(fmt.Sprintf("%dx%d", rows, cols), resP.Iterations,
			float64(tPrim)/iters, float64(tNaive)/iters, float64(tNaive)/float64(tPrim))
	}
	return t, nil
}
