// Package bench is the experiment harness: one runner per table and
// figure of the reconstructed evaluation (E1–E5, F1–F3, A1–A3 in
// DESIGN.md), each producing a formatted Table of simulated-time
// measurements. The top-level bench_test.go benchmarks and the
// cmd/vmprim CLI both call these runners, so `go test -bench` and
// `vmprim -exp E3` print the same rows.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a titled grid of formatted cells.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes describes the expected shape from the paper and how to
	// read the table.
	Notes string
}

// AddRow appends a row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	printRow(rule)
	for _, row := range t.Rows {
		printRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Notes)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// Experiment pairs an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

// All returns every experiment in DESIGN.md order.
func All() []Experiment {
	return []Experiment{
		{"E1", "four primitive timings vs problem size", E1Primitives},
		{"E2", "primitive timings and work-efficiency vs machine size", E2Scaling},
		{"E3", "vector-matrix multiply: naive vs primitives", E3Matvec},
		{"E4", "Gaussian elimination: naive vs primitives", E4Gauss},
		{"E5", "simplex: naive vs primitives, per-iteration", E5Simplex},
		{"F1", "matvec speedup vs machine size (strong scaling)", F1Speedup},
		{"F2", "Reduce work-efficiency vs grain m/p", F2Efficiency},
		{"F3", "embedding-change costs vs problem size", F3Embedding},
		{"A1", "ablation: one-port vs all-port communication", A1Ports},
		{"A2", "ablation: binomial vs scatter/all-gather broadcast", A2Broadcast},
		{"A3", "ablation: block vs cyclic embedding in elimination", A3Cyclic},
		{"A4", "ablation: all-port rotated-tree broadcast", A4AllPortBroadcast},
		{"X1", "extension: outer-product matrix multiply", X1MatMul},
		{"X2", "extension: elimination vs conjugate gradient", X2DirectVsIterative},
		{"X3", "extension: tridiagonal cyclic reduction log-depth", X3Tridiag},
	}
}

// ByID finds an experiment by its (case-insensitive) id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}
