package bench

import (
	"testing"

	"vmprim/internal/hypercube"
	"vmprim/internal/metrics"
)

func TestRunSpecNormalized(t *testing.T) {
	s, err := RunSpec{Exp: "e4"}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if s.Exp != "E4" || s.D != 8 || s.N != 128 || s.Model != "cm2" {
		t.Fatalf("normalized e4 = %+v, want table defaults", s)
	}
	s, err = RunSpec{Exp: "E1", D: 4, N: 64, Model: "IPSC"}.Normalized()
	if err != nil || s.D != 4 || s.N != 64 || s.Model != "ipsc" {
		t.Fatalf("override spec = %+v, %v", s, err)
	}
	for _, bad := range []RunSpec{
		{Exp: "E9"},
		{Exp: "E1", D: specMaxD + 1},
		{Exp: "E1", N: 2},
		{Exp: "E1", N: specMaxN * 2},
		{Exp: "E1", Model: "lognormal"},
	} {
		if _, err := bad.Normalized(); err == nil {
			t.Fatalf("spec %+v normalized without error", bad)
		}
	}
}

// A default-spec RunOn on a fresh machine is the same computation as
// ProfileRun: same simulated times, clocks and metric totals. E4 is
// the cheapest full-size workload.
func TestRunSpecMatchesProfileRun(t *testing.T) {
	want, err := ProfileRun("E4", true)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := RunSpec{Exp: "E4"}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	m, err := hypercube.New(spec.D, spec.CostParams())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	got, err := spec.RunOn(m, ProfileOpts{Profile: true, CritPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Times) != len(want.Times) {
		t.Fatalf("%d times vs %d", len(got.Times), len(want.Times))
	}
	for i := range want.Times {
		if got.Times[i] != want.Times[i] {
			t.Fatalf("time %d: %v != %v", i, got.Times[i], want.Times[i])
		}
	}
	for i := range want.Clocks {
		if got.Clocks[i] != want.Clocks[i] {
			t.Fatalf("clock %d: %v != %v", i, got.Clocks[i], want.Clocks[i])
		}
	}
	if got.Desc != want.Desc {
		t.Fatalf("desc %q != %q", got.Desc, want.Desc)
	}
	if got.Profile == nil || got.CritPath == nil {
		t.Fatal("RunOn with recorders armed returned nil profile or critpath")
	}
	if got.CritPath.Makespan != want.CritPath.Makespan {
		t.Fatalf("critpath makespan %v != %v", got.CritPath.Makespan, want.CritPath.Makespan)
	}
}

// Reusing one machine across specs must be deterministic run to run,
// recorder hygiene included: a profiled tenant followed by an
// unprofiled one leaves no profile, and per-run metric deltas around
// each tenant are identical.
func TestRunSpecPooledReuse(t *testing.T) {
	spec, err := RunSpec{Exp: "E1", D: 4, N: 64}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	m, err := hypercube.New(spec.D, spec.CostParams())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	before := m.Metrics().Snapshot()
	first, err := spec.RunOn(m, ProfileOpts{Profile: true, CritPath: true})
	if err != nil {
		t.Fatal(err)
	}
	d1 := metrics.Delta(first.Metrics, before)

	before = m.Metrics().Snapshot()
	second, err := spec.RunOn(m, ProfileOpts{})
	if err != nil {
		t.Fatal(err)
	}
	d2 := metrics.Delta(second.Metrics, before)

	if second.Profile != nil || second.CritPath != nil {
		t.Fatal("recorders left armed from the previous tenant")
	}
	if first.Times[0] != second.Times[0] {
		t.Fatalf("reused machine drifted: %v then %v", first.Times[0], second.Times[0])
	}
	for _, name := range []string{"vmprim_runs_total", "vmprim_messages_total", "vmprim_words_total"} {
		v1, ok1 := d1.Value(name)
		v2, ok2 := d2.Value(name)
		if !ok1 || !ok2 {
			t.Fatalf("metric %s missing from deltas", name)
		}
		if hypercube.HostSchedMetricNames(name) {
			continue
		}
		if v1 != v2 {
			t.Fatalf("per-run delta of %s differs across identical tenants: %g vs %g", name, v1, v2)
		}
	}
	// Different experiment family on the same machine shape also works.
	if _, err := (RunSpec{Exp: "E2", D: 4, N: 64}).RunOn(m, ProfileOpts{}); err != nil {
		t.Fatal(err)
	}
}
