package bench

import (
	"fmt"

	"vmprim/internal/apps"
	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
)

// Figures F1–F3: the scaling and embedding-change series (printed as
// tables of the plotted points).

// F1Speedup measures strong scaling of the fused vector-matrix
// multiply at fixed problem size: speedup flattens as p lg p
// approaches m, the boundary of the paper's optimality regime.
func F1Speedup() (*Table, error) {
	const n = 64
	t := &Table{
		ID:      "F1",
		Title:   fmt.Sprintf("matvec strong scaling, fixed n=%d (m=%d)", n, n*n),
		Columns: []string{"p", "p*lg p", "T (us)", "speedup", "ideal"},
		Notes:   "near-linear speedup while p lg p << m, flattening as p lg p approaches m = 4096",
	}
	a := RandMat(900, n, n)
	x := RandVec(901, n)
	var t1 costmodel.Time
	for d := 0; d <= 8; d++ {
		m, err := hypercube.New(d, costmodel.CM2())
		if err != nil {
			return nil, err
		}
		_, elapsed, _, err := apps.RunVecMat(m, a, x, apps.MatvecFused)
		if err != nil {
			return nil, err
		}
		if d == 0 {
			t1 = elapsed
		}
		p := 1 << d
		t.AddRow(p, p*d, float64(elapsed), float64(t1)/float64(elapsed), p)
	}
	return t, nil
}

// F2Efficiency measures the work-efficiency of the Reduce primitive as
// the grain m/p varies at fixed machine size: the processor-time
// product settles to a small constant multiple of serial once
// m/p >> lg p.
func F2Efficiency() (*Table, error) {
	const d = 8
	const cols = 512
	params := costmodel.CM2()
	m, err := hypercube.New(d, params)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F2",
		Title:   fmt.Sprintf("Reduce(rows,+) work-efficiency vs grain, p=%d", m.P()),
		Columns: []string{"rows", "m/p", "T (us)", "pT/T1", "efficiency"},
		Notes:   "efficiency = T1/(p*T); climbs toward a constant as m/p grows past lg p = 8",
	}
	g, err := embed.NewGrid(d/2, d-d/2)
	if err != nil {
		return nil, err
	}
	for _, rows := range []int{16, 32, 128, 512, 2048} {
		dm := RandMat(1000+int64(rows), rows, cols)
		a, err := core.FromDense(g, dm, embed.Block, embed.Block)
		if err != nil {
			return nil, err
		}
		elapsed, err := timedRun(m, g, func(e *core.Env) { e.ReduceRows(a, core.OpSum, true) })
		if err != nil {
			return nil, err
		}
		mElems := rows * cols
		t1 := params.FlopCost(mElems)
		p := float64(m.P())
		ratio := p * float64(elapsed) / float64(t1)
		t.AddRow(rows, mElems/m.P(), float64(elapsed), ratio, 1/ratio)
	}
	return t, nil
}

// F3Embedding measures the cost of the embedding changes a primitive
// may imply — vector realignment and matrix transposition — against
// the cost of the matvec that typically follows them.
func F3Embedding() (*Table, error) {
	const d = 8
	m, err := hypercube.New(d, costmodel.CM2())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F3",
		Title:   fmt.Sprintf("embedding-change costs, p=%d (simulated us)", m.P()),
		Columns: []string{"n", "realign row->linear", "realign row->col", "transpose nxn", "matvec (fused)"},
		Notes:   "embedding changes ride the router with per-pair message combining; vector realignments cost a few matvecs, while the transpose moves all m elements through lg p routing phases and scales accordingly",
	}
	for _, n := range []int{128, 256, 512, 1024} {
		g := embed.SplitFor(d, n, n)
		dm := RandMat(1100+int64(n), n, n)
		a, err := core.FromDense(g, dm, embed.Block, embed.Block)
		if err != nil {
			return nil, err
		}
		xv, err := core.VectorFromSlice(g, RandVec(1200, n), core.RowAligned, embed.Block, 0, false)
		if err != nil {
			return nil, err
		}
		tLin, err := timedRun(m, g, func(e *core.Env) { e.ToLinear(xv) })
		if err != nil {
			return nil, err
		}
		tCol, err := timedRun(m, g, func(e *core.Env) {
			e.Realign(xv, core.ColAligned, embed.Block, 0, false)
		})
		if err != nil {
			return nil, err
		}
		tTrans, err := timedRun(m, g, func(e *core.Env) { e.Transpose(a) })
		if err != nil {
			return nil, err
		}
		x := RandVec(1201, n)
		_, tMv, _, err := apps.RunVecMat(m, dm, x, apps.MatvecFused)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, float64(tLin), float64(tCol), float64(tTrans), float64(tMv))
	}
	return t, nil
}
