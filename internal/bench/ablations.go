package bench

import (
	"fmt"

	"vmprim/internal/apps"
	"vmprim/internal/collective"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
)

// Ablations A1–A3: design-choice experiments DESIGN.md calls out.

// A1Ports compares the one-port machine (the paper's implementation
// model) with an all-port machine on the operations that can overlap
// their links: a d-way neighbor exchange and a barrier.
func A1Ports() (*Table, error) {
	const d = 6
	t := &Table{
		ID:      "A1",
		Title:   fmt.Sprintf("one-port vs all-port, d=%d (simulated us)", d),
		Columns: []string{"words/link", "one-port", "all-port", "ratio"},
		Notes:   "a d-way neighbor exchange serializes on one port (d sends) but overlaps on all ports; the ratio approaches d for start-up-bound sizes",
	}
	for _, n := range []int{1, 16, 256, 4096} {
		var times [2]costmodel.Time
		for pi, allPorts := range []bool{false, true} {
			m, err := hypercube.New(d, costmodel.CM2().WithAllPorts(allPorts))
			if err != nil {
				return nil, err
			}
			elapsed, err := m.Run(func(p *hypercube.Proc) {
				dims := make([]int, d)
				payloads := make([][]float64, d)
				for i := range dims {
					dims[i] = i
					payloads[i] = make([]float64, n)
				}
				p.ExchangeAll(dims, 1, payloads)
			})
			if err != nil {
				return nil, err
			}
			times[pi] = elapsed
		}
		t.AddRow(n, float64(times[0]), float64(times[1]), float64(times[0])/float64(times[1]))
	}
	return t, nil
}

// A2Broadcast compares the binomial-tree broadcast with the
// scatter/all-gather broadcast across message lengths and start-up
// costs: the crossover moves with tau exactly as the cost model
// predicts.
func A2Broadcast() (*Table, error) {
	const d = 8
	t := &Table{
		ID:      "A2",
		Title:   fmt.Sprintf("broadcast algorithms, p=%d (simulated us)", 1<<d),
		Columns: []string{"tau", "n", "binomial", "scatter/allgather", "winner"},
		Notes:   "binomial wins while tau dominates (short messages, high start-up); scatter/all-gather wins once n*t_c >> tau",
	}
	mask := (1 << d) - 1
	for _, tau := range []costmodel.Time{10, 100, 1000} {
		params := costmodel.CM2().WithStartup(tau)
		m, err := hypercube.New(d, params)
		if err != nil {
			return nil, err
		}
		for _, n := range []int{256, 1024, 4096, 16384} {
			data := make([]float64, n)
			var times [2]costmodel.Time
			for ai, large := range []bool{false, true} {
				elapsed, err := m.Run(func(p *hypercube.Proc) {
					var src []float64
					if p.ID() == 0 {
						src = data
					}
					if large {
						collective.BcastLarge(p, mask, 1, 0, src)
					} else {
						collective.Bcast(p, mask, 1, 0, src)
					}
				})
				if err != nil {
					return nil, err
				}
				times[ai] = elapsed
			}
			winner := "binomial"
			if times[1] < times[0] {
				winner = "scatter/allgather"
			}
			t.AddRow(float64(tau), n, float64(times[0]), float64(times[1]), winner)
		}
	}
	return t, nil
}

// A3Cyclic compares block (consecutive) and cyclic row/column
// embeddings in Gaussian elimination: as the active submatrix shrinks,
// the block embedding idles whole processor rows while the cyclic one
// stays balanced.
func A3Cyclic() (*Table, error) {
	const d = 6
	m, err := hypercube.New(d, costmodel.CM2())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "A3",
		Title:   fmt.Sprintf("Gaussian elimination embeddings, p=%d (simulated us)", m.P()),
		Columns: []string{"n", "block", "cyclic", "block/cyclic"},
		Notes:   "cyclic embedding keeps the shrinking active submatrix spread over all processors",
	}
	for _, n := range []int{64, 128, 256} {
		a, b := RandSystem(1300+int64(n), n)
		_, tBlock, err := apps.SolveGauss(m, a, b, apps.GaussOpts{RKind: embed.Block, CKind: embed.Block})
		if err != nil {
			return nil, err
		}
		_, tCyclic, err := apps.SolveGauss(m, a, b, apps.GaussOpts{RKind: embed.Cyclic, CKind: embed.Cyclic})
		if err != nil {
			return nil, err
		}
		t.AddRow(n, float64(tBlock), float64(tCyclic), float64(tBlock)/float64(tCyclic))
	}
	return t, nil
}

// A4AllPortBroadcast measures the rotated-tree all-port broadcast
// (Johnsson-Ho) against the one-port binomial tree on the all-port
// machine: the bandwidth term improves by up to a factor d.
func A4AllPortBroadcast() (*Table, error) {
	const d = 8
	m, err := hypercube.New(d, costmodel.CM2().WithAllPorts(true))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "A4",
		Title:   fmt.Sprintf("all-port broadcast (d rotated trees) vs binomial, p=%d, all-port machine (simulated us)", m.P()),
		Columns: []string{"n", "binomial", "rotated trees", "speedup"},
		Notes:   "the d edge-disjoint rotated binomial trees overlap their transfers on the d ports; speedup approaches d = 8 once bandwidth dominates start-up",
	}
	mask := (1 << d) - 1
	for _, n := range []int{256, 2048, 16384, 65536} {
		data := make([]float64, n)
		var times [2]costmodel.Time
		for ai, rotated := range []bool{false, true} {
			elapsed, err := m.Run(func(p *hypercube.Proc) {
				var src []float64
				if p.ID() == 0 {
					src = data
				}
				if rotated {
					collective.BcastAllPort(p, mask, 1, 0, src)
				} else {
					collective.Bcast(p, mask, 1, 0, src)
				}
			})
			if err != nil {
				return nil, err
			}
			times[ai] = elapsed
		}
		t.AddRow(n, float64(times[0]), float64(times[1]), float64(times[0])/float64(times[1]))
	}
	return t, nil
}
