package bench

import (
	"fmt"
	"strings"

	"vmprim/internal/costmodel"
	"vmprim/internal/hypercube"
)

// RunSpec names one profiled workload instance: an experiment family
// (E1..E5) plus optional size and cost-model overrides. The zero
// overrides select the EXPERIMENTS.md table configuration, and with
// them a RunSpec run is bit-identical to ProfileRun — same machine
// shape, same seeds, same simulated times. Overriding D or N keeps the
// same seed formulas but at the requested size, which is how the load
// harness drives thousands of small runs without paying the full-size
// workloads. The spec is JSON-shaped so serving layers can embed it in
// request bodies directly.
type RunSpec struct {
	// Exp is the experiment family, E1..E5 (case-insensitive).
	Exp string `json:"exp"`
	// D is the cube dimension; 0 means the experiment's table default.
	D int `json:"d,omitempty"`
	// N is the problem size (matrix order for E1..E4, LP row count for
	// E5, whose column count is fixed at 3N/2); 0 means the table
	// default.
	N int `json:"n,omitempty"`
	// Model selects the cost model: "cm2" (default) or "ipsc".
	Model string `json:"model,omitempty"`
}

// specDefaults maps each experiment to its table configuration.
var specDefaults = map[string]struct{ d, n int }{
	"E1": {10, 512},
	"E2": {8, 512},
	"E3": {10, 512},
	"E4": {8, 128},
	"E5": {8, 32},
}

// Spec size bounds: the server accepts untrusted specs, so Normalized
// refuses shapes that would hog the host (a d=20 cube is a million
// goroutines) before any machine is built.
const (
	specMaxD = 12
	specMinN = 4
	specMaxN = 4096
)

// Normalized validates the spec and fills in the experiment defaults
// for any zero field, returning the fully concrete spec.
func (s RunSpec) Normalized() (RunSpec, error) {
	s.Exp = strings.ToUpper(strings.TrimSpace(s.Exp))
	def, ok := specDefaults[s.Exp]
	if !ok {
		return s, fmt.Errorf("bench: no profiled workload for %q (have %v)", s.Exp, ProfileIDs())
	}
	if s.D == 0 {
		s.D = def.d
	}
	if s.N == 0 {
		s.N = def.n
	}
	if s.D < 1 || s.D > specMaxD {
		return s, fmt.Errorf("bench: spec d=%d out of range [1, %d]", s.D, specMaxD)
	}
	if s.N < specMinN || s.N > specMaxN {
		return s, fmt.Errorf("bench: spec n=%d out of range [%d, %d]", s.N, specMinN, specMaxN)
	}
	switch strings.ToLower(s.Model) {
	case "":
		s.Model = "cm2"
	case "cm2", "ipsc":
		s.Model = strings.ToLower(s.Model)
	default:
		return s, fmt.Errorf("bench: unknown cost model %q (have cm2, ipsc)", s.Model)
	}
	return s, nil
}

// CostParams returns the cost-model parameters the spec's Model names.
// Call on a normalized spec; an unknown model answers CM2.
func (s RunSpec) CostParams() costmodel.Params {
	if strings.EqualFold(s.Model, "ipsc") {
		return costmodel.IPSC()
	}
	return costmodel.CM2()
}

// RunOn executes the spec's workload on m, arming (or explicitly
// disarming — m may be pooled, with recorders left over from its
// previous tenant) the profiler, message trace and critical-path
// tracer per opts. The machine must have the spec's dimension; its
// cost model is whatever it was built with, so callers constructing
// machines from a spec should use CostParams. Host-side workload
// panics (degenerate embeddings and the like) are returned as errors
// rather than taking the process down.
func (s RunSpec) RunOn(m *hypercube.Machine, opts ProfileOpts) (res *ProfileResult, err error) {
	ns, err := s.Normalized()
	if err != nil {
		return nil, err
	}
	if m.Dim() != ns.D {
		return nil, fmt.Errorf("bench: spec wants d=%d but machine has d=%d", ns.D, m.Dim())
	}
	m.EnableProfile(opts.Profile)
	if opts.Profile {
		m.EnableTrace(profileTraceLimit)
	} else {
		m.EnableTrace(0)
	}
	m.EnableCritPath(opts.CritPath)
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("bench: %s workload panicked: %v", ns.Exp, r)
		}
	}()
	switch ns.Exp {
	case "E1":
		return profileE1(m, ns, opts)
	case "E2":
		return profileE2(m, ns, opts)
	case "E3":
		return profileE3(m, ns, opts)
	case "E4":
		return profileE4(m, ns, opts)
	default:
		return profileE5(m, ns, opts)
	}
}
