package bench

import (
	"math/rand"

	"vmprim/internal/serial"
)

// Workload generators. Seeds are fixed so every invocation of an
// experiment sees identical data; the simulated timings are then fully
// deterministic.

// RandMat returns an r x c matrix of standard normals.
func RandMat(seed int64, r, c int) *serial.Mat {
	rng := rand.New(rand.NewSource(seed))
	m := serial.NewMat(r, c)
	for i := range m.A {
		m.A[i] = rng.NormFloat64()
	}
	return m
}

// RandVec returns a length-n vector of standard normals.
func RandVec(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// RandSystem returns a well-conditioned n x n system (diagonally
// boosted normals) with a random right-hand side.
func RandSystem(seed int64, n int) (*serial.Mat, []float64) {
	rng := rand.New(rand.NewSource(seed))
	a := serial.NewMat(n, n)
	for i := range a.A {
		a.A[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return a, b
}

// RandLP returns a dense feasible bounded LP: maximize c^T x subject
// to A x <= b, x >= 0, with strictly positive A, b and c, so the
// feasible region is a bounded polytope containing the origin. This is
// the workload shape of the paper's dense-simplex timings.
func RandLP(seed int64, m, n int) (c []float64, a *serial.Mat, b []float64) {
	rng := rand.New(rand.NewSource(seed))
	a = serial.NewMat(m, n)
	for i := range a.A {
		a.A[i] = rng.Float64()*3 + 0.1
	}
	b = make([]float64, m)
	for i := range b {
		b[i] = rng.Float64()*8 + 1
	}
	c = make([]float64, n)
	for i := range c {
		c[i] = rng.Float64()*2 + 0.1
	}
	return c, a, b
}
