package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func snapRun(ns []int64, sim []float64) *SnapshotRun {
	run := &SnapshotRun{Dim: 3, N: 64, Benchtime: "1x", Timestamp: "2026-08-05T00:00:00Z"}
	names := []string{"ExtractRow", "ReduceRows", "Transpose"}
	for i := range ns {
		run.Results = append(run.Results, SnapshotResult{
			Name: names[i], NsPerOp: ns[i], SimUsPerOp: sim[i], Iterations: 1,
		})
	}
	return run
}

func TestCompareRunsFlagsSyntheticHostRegression(t *testing.T) {
	oldRun := snapRun([]int64{1000, 2000, 3000}, []float64{10, 20, 30})
	// ExtractRow +25% (beyond the 20% threshold), ReduceRows +15%
	// (within it), Transpose unchanged.
	newRun := snapRun([]int64{1250, 2300, 3000}, []float64{10, 20, 30})
	v := Summarize(CompareRuns(oldRun, newRun, 0.20))
	if len(v.HostRegressions) != 1 || v.HostRegressions[0] != "ExtractRow" {
		t.Fatalf("host regressions = %v, want exactly ExtractRow (+25%% > 20%%)", v.HostRegressions)
	}
	if len(v.SimMismatches) != 0 || len(v.Missing) != 0 {
		t.Fatalf("unexpected sim/missing findings: %+v", v)
	}
}

func TestCompareRunsGatesAnySimDifference(t *testing.T) {
	oldRun := snapRun([]int64{1000, 2000, 3000}, []float64{10, 20, 30})
	// Host time identical; one sim value off by a hair — deterministic
	// simulated time means even that gates.
	newRun := snapRun([]int64{1000, 2000, 3000}, []float64{10, 20.000001, 30})
	v := Summarize(CompareRuns(oldRun, newRun, 0.20))
	if len(v.SimMismatches) != 1 || v.SimMismatches[0] != "ReduceRows" {
		t.Fatalf("sim mismatches = %v, want exactly ReduceRows", v.SimMismatches)
	}
	if len(v.HostRegressions) != 0 {
		t.Fatalf("no host regression expected, got %v", v.HostRegressions)
	}
}

func TestCompareRunsReportsMissingBenchmarks(t *testing.T) {
	oldRun := snapRun([]int64{1000, 2000, 3000}, []float64{10, 20, 30})
	newRun := snapRun([]int64{1000, 2000}, []float64{10, 20})
	newRun.Results = append(newRun.Results, SnapshotResult{Name: "Shiny", NsPerOp: 5, Iterations: 1})
	v := Summarize(CompareRuns(oldRun, newRun, 0.20))
	if len(v.Missing) != 2 || v.Missing[0] != "Transpose" || v.Missing[1] != "Shiny" {
		t.Fatalf("missing = %v, want [Transpose Shiny]", v.Missing)
	}
}

func TestSnapshotFileRoundTripAndSections(t *testing.T) {
	f := &SnapshotFile{
		Description: "test snapshot",
		Host:        &HostInfo{GOOS: "linux", GoVersion: "go1.24.0"},
		Sections: map[string]*SnapshotRun{
			"current": snapRun([]int64{1}, []float64{2}),
			"seed":    snapRun([]int64{3}, []float64{4}),
		},
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	// Sections order: seed before current (current always renders last).
	var order []string
	dec := json.NewDecoder(bytes.NewReader(data))
	if tok, _ := dec.Token(); tok != json.Delim('{') {
		t.Fatalf("not an object: %s", data)
	}
	for dec.More() {
		key, _ := dec.Token()
		order = append(order, key.(string))
		var skip json.RawMessage
		if err := dec.Decode(&skip); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"description", "host", "seed", "current"}
	if len(order) != len(want) {
		t.Fatalf("keys = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("keys = %v, want %v", order, want)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Description != f.Description || len(got.Sections) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	cur, err := got.Section("")
	if err != nil || cur.Results[0].NsPerOp != 1 {
		t.Fatalf("default section = %+v, %v; want current", cur, err)
	}
	seed, err := got.Section("seed")
	if err != nil || seed.Results[0].NsPerOp != 3 {
		t.Fatalf("seed section = %+v, %v", seed, err)
	}
	if _, err := got.Section("nope"); err == nil {
		t.Fatal("unknown section did not error")
	}
}
