package bench

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"vmprim/internal/hypercube"
	"vmprim/internal/metrics"
)

// GOMAXPROCS determinism stress: the same E1–E5 workloads executed at
// GOMAXPROCS 1, 2 and NumCPU must produce bit-identical simulated
// results — elapsed times, per-processor clocks, link loads, the
// profile document and the Chrome trace, and every metric except the
// host-scheduling diagnostics. This is the contract that lets the
// engine run worker goroutines host-parallel between communication
// points: simulated behavior may depend only on the program and the
// cost model, never on the host interleaving.

// gomaxprocsSettings returns the distinct settings to stress: 1, 2 and
// NumCPU (deduplicated, so a single-core host still exercises 1 vs 2 —
// oversubscription shuffles goroutine interleavings just as well).
func gomaxprocsSettings() []int {
	settings := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		settings = append(settings, n)
	}
	return settings
}

// simCapture is everything about a profiled run that must be
// bit-identical across GOMAXPROCS.
type simCapture struct {
	times    string
	clocks   string
	links    string
	profile  []byte
	chrome   []byte
	critpath []byte
	metrics  []metrics.MetricValue
}

func captureRun(t *testing.T, id string) *simCapture {
	t.Helper()
	res, err := ProfileRun(id, true)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	c := &simCapture{
		times:  fmt.Sprintf("%v", res.Times),
		clocks: fmt.Sprintf("%v", res.Clocks),
		links:  fmt.Sprintf("%v", res.Links),
	}
	var buf bytes.Buffer
	if err := res.Profile.WriteJSON(&buf); err != nil {
		t.Fatalf("%s: profile JSON: %v", id, err)
	}
	c.profile = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := res.Profile.ChromeTrace(&buf, 0); err != nil {
		t.Fatalf("%s: chrome trace: %v", id, err)
	}
	c.chrome = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if res.CritPath == nil {
		t.Fatalf("%s: no critical path recorded", id)
	}
	if err := res.CritPath.Check(); err != nil {
		t.Fatalf("%s: critical path invariants: %v", id, err)
	}
	if err := res.CritPath.WriteJSON(&buf); err != nil {
		t.Fatalf("%s: critpath JSON: %v", id, err)
	}
	c.critpath = append([]byte(nil), buf.Bytes()...)
	for _, mv := range res.Metrics.Metrics {
		if hypercube.HostSchedMetricNames(mv.Name) {
			continue
		}
		c.metrics = append(c.metrics, mv)
	}
	return c
}

func TestGOMAXPROCSDeterminism(t *testing.T) {
	ids := ProfileIDs()
	if testing.Short() {
		ids = []string{"E2", "E5"}
	}
	settings := gomaxprocsSettings()
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, id := range ids {
		t.Run(id, func(t *testing.T) {
			var base *simCapture
			baseGMP := 0
			for _, gmp := range settings {
				runtime.GOMAXPROCS(gmp)
				c := captureRun(t, id)
				if base == nil {
					base, baseGMP = c, gmp
					continue
				}
				if c.times != base.times {
					t.Errorf("gomaxprocs %d vs %d: elapsed times differ:\n%s\n%s", gmp, baseGMP, c.times, base.times)
				}
				if c.clocks != base.clocks {
					t.Errorf("gomaxprocs %d vs %d: per-processor clocks differ", gmp, baseGMP)
				}
				if c.links != base.links {
					t.Errorf("gomaxprocs %d vs %d: link loads differ:\n%s\n%s", gmp, baseGMP, c.links, base.links)
				}
				if !bytes.Equal(c.profile, base.profile) {
					t.Errorf("gomaxprocs %d vs %d: profile JSON differs (%d vs %d bytes)",
						gmp, baseGMP, len(c.profile), len(base.profile))
				}
				if !bytes.Equal(c.chrome, base.chrome) {
					t.Errorf("gomaxprocs %d vs %d: Chrome trace differs (%d vs %d bytes)",
						gmp, baseGMP, len(c.chrome), len(base.chrome))
				}
				if !bytes.Equal(c.critpath, base.critpath) {
					t.Errorf("gomaxprocs %d vs %d: critical path differs (%d vs %d bytes)",
						gmp, baseGMP, len(c.critpath), len(base.critpath))
				}
				if len(c.metrics) != len(base.metrics) {
					t.Fatalf("gomaxprocs %d vs %d: metric count differs (%d vs %d)",
						gmp, baseGMP, len(c.metrics), len(base.metrics))
				}
				for i := range c.metrics {
					got, want := c.metrics[i], base.metrics[i]
					if got.Name != want.Name {
						t.Fatalf("gomaxprocs %d vs %d: metric order differs at %d: %s vs %s",
							gmp, baseGMP, i, got.Name, want.Name)
					}
					if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
						t.Errorf("gomaxprocs %d vs %d: metric %s differs:\n  %+v\n  %+v",
							gmp, baseGMP, got.Name, got, want)
					}
				}
			}
		})
	}
}

// TestHostSchedMetricsExcluded pins the quarantine boundary: the
// host-scheduling metrics exist in the registry (so operators see
// them) and are exactly the ones the determinism comparison skips.
func TestHostSchedMetricsExcluded(t *testing.T) {
	res, err := ProfileRun("E2", false)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"vmprim_sched_recv_parks_total",
		"vmprim_sched_send_stalls_total",
		"vmprim_sched_wakeups_total",
		"vmprim_sched_max_parked_procs",
		"vmprim_watchdog_arms_total",
		"vmprim_watchdog_rearms_total",
	}
	have := make(map[string]bool)
	for _, mv := range res.Metrics.Metrics {
		have[mv.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("registry is missing %s", name)
		}
		if !hypercube.HostSchedMetricNames(name) {
			t.Errorf("HostSchedMetricNames(%q) = false, want true", name)
		}
	}
	if hypercube.HostSchedMetricNames("vmprim_messages_total") {
		t.Error("HostSchedMetricNames must not exempt simulated-machine metrics")
	}
}
