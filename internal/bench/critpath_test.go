package bench

import (
	"testing"

	"vmprim/internal/costmodel"
)

// TestProfileCritPathInvariants: every profiled workload's critical
// path satisfies the structural invariants and its weights sum to the
// last run's makespan exactly.
func TestProfileCritPathInvariants(t *testing.T) {
	ids := ProfileIDs()
	if testing.Short() {
		ids = []string{"E2", "E4"}
	}
	for _, id := range ids {
		res, err := ProfileRun(id, true)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		cp := res.CritPath
		if cp == nil {
			t.Fatalf("%s: no critical path", id)
		}
		if err := cp.Check(); err != nil {
			t.Errorf("%s: %v", id, err)
		}
		if last := res.Times[len(res.Times)-1]; cp.Makespan != last {
			t.Errorf("%s: path makespan %g != last run elapsed %g", id, float64(cp.Makespan), float64(last))
		}
		if cp.Buckets.Total() != cp.Makespan {
			t.Errorf("%s: path weights sum to %g, want the makespan %g",
				id, float64(cp.Buckets.Total()), float64(cp.Makespan))
		}
		// The profile embeds the same path object.
		if res.Profile == nil || res.Profile.Crit != cp {
			t.Errorf("%s: profile does not embed the critical path", id)
		}
	}
}

// TestConformanceE1E4WithinThreshold pins the acceptance criterion:
// the primitive-based workloads E1 and E4 reproduce the paper's
// predicted costs within the documented threshold, under both machine
// models.
func TestConformanceE1E4WithinThreshold(t *testing.T) {
	models := map[string]costmodel.Params{"cm2": costmodel.CM2(), "ipsc": costmodel.IPSC()}
	for _, id := range []string{"E1", "E4"} {
		for name, params := range models {
			p := params
			res, err := ProfileRunOpts(id, ProfileOpts{CritPath: true, Params: &p})
			if err != nil {
				t.Fatalf("%s/%s: %v", id, name, err)
			}
			cp := res.CritPath
			if len(cp.Conformance) == 0 {
				t.Fatalf("%s/%s: no conformance entries", id, name)
			}
			worst, flagged := cp.WorstConformance()
			if flagged != 0 {
				t.Errorf("%s/%s: %d spans flagged (worst ratio %.2f, threshold %.1f): %+v",
					id, name, flagged, worst, cp.Threshold, cp.Conformance)
			}
		}
	}
}

// TestConformanceE3RouteEntriesPresent: the router-based naive matvec
// records route predictions, so its conformance shows up in the report
// (the hot-spot flagging itself is pinned in the router package's
// conformance test).
func TestConformanceE3RouteEntriesPresent(t *testing.T) {
	if testing.Short() {
		t.Skip("E3 runs all three matvec variants")
	}
	res, err := ProfileRun("E3", true)
	if err != nil {
		t.Fatal(err)
	}
	routes := 0
	for _, e := range res.CritPath.Conformance {
		if e.Name == "matvec(naive)>route-products>route" ||
			e.Name == "matvec(naive)>fetch-x>route-request>route" {
			routes++
		}
	}
	if routes != 2 {
		t.Errorf("found %d route conformance entries, want 2: %+v", routes, res.CritPath.Conformance)
	}
}
