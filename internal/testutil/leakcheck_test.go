package testutil

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeTB records the failure CheckLeaks reports instead of failing
// the real test.
type fakeTB struct {
	testing.TB
	failed bool
	msg    string
}

func (f *fakeTB) Helper() {}

func (f *fakeTB) Errorf(format string, args ...any) {
	f.failed = true
	f.msg = fmt.Sprintf(format, args...)
}

// TestCheckLeaksCatchesLeak: a goroutine parked past the grace period
// is reported with its signature.
func TestCheckLeaksCatchesLeak(t *testing.T) {
	old := leakGrace
	leakGrace = 100 * time.Millisecond
	defer func() { leakGrace = old }()

	before := Snapshot()
	stop := make(chan struct{})
	go func() { <-stop }()

	f := &fakeTB{}
	CheckLeaks(f, before)
	close(stop)
	if !f.failed {
		t.Fatal("parked goroutine not reported as a leak")
	}
	if !strings.Contains(f.msg, "TestCheckLeaksCatchesLeak") {
		t.Errorf("leak report does not name the spawning test: %q", f.msg)
	}
}

// TestCheckLeaksAllowsAsyncExit: a goroutine that finishes within the
// grace period is not a leak — Close is a signal, not a join.
func TestCheckLeaksAllowsAsyncExit(t *testing.T) {
	before := Snapshot()
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	CheckLeaks(t, before)
	<-done
}
