// Package testutil holds helpers shared by the host-side test suites.
//
// The leak checker is the runtime counterpart of the goroutinelife
// analyzer: the analyzer proves every go statement carries a
// termination obligation, and CheckLeaks proves the obligations are
// actually discharged — a test that returns while one of its
// goroutines still runs fails with the leaked stacks' signatures.
//
// Usage, first line of the test:
//
//	defer testutil.CheckLeaks(t, testutil.Snapshot())
//
// Snapshot records the goroutines alive before the test body;
// CheckLeaks polls for a few seconds afterwards (goroutines are
// allowed to *finish* asynchronously — Close is typically a signal,
// not a join) and fails if any signature's count stays above its
// starting value.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// leakGrace bounds how long CheckLeaks waits for goroutines to finish
// on their own. A variable so the package's own tests can shorten it.
var leakGrace = 5 * time.Second

// Snapshot returns the multiset of currently-running goroutine
// signatures: one entry per distinct (top function, created-by) pair,
// with runtime, testing and signal-handling internals filtered out.
func Snapshot() map[string]int {
	return signatures()
}

// CheckLeaks fails the test if goroutines beyond the snapshot are
// still alive once the grace period runs out. Deferred first in the
// test, it runs after the body's own defers have closed whatever they
// close, so a surviving goroutine is a genuine leak, not a race with
// teardown.
func CheckLeaks(tb testing.TB, before map[string]int) {
	tb.Helper()
	const step = 20 * time.Millisecond
	deadline := time.Now().Add(leakGrace)
	var leaked []string
	for {
		leaked = leaked[:0]
		for sig, n := range signatures() {
			if extra := n - before[sig]; extra > 0 {
				leaked = append(leaked, fmt.Sprintf("%d leaked: %s", extra, sig))
			}
		}
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(step)
	}
	sort.Strings(leaked)
	tb.Errorf("goroutines survived the test:\n\t%s", strings.Join(leaked, "\n\t"))
}

// signatures parses runtime.Stack(all) into the signature multiset.
func signatures() map[string]int {
	buf := make([]byte, 1<<16)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	sigs := make(map[string]int)
	for _, block := range strings.Split(string(buf), "\n\n") {
		if sig, ok := parseBlock(block); ok {
			sigs[sig]++
		}
	}
	return sigs
}

// parseBlock reduces one goroutine's stack dump to its signature: the
// function on top of the stack plus the function that spawned it —
// stable across runs, unlike goroutine IDs, addresses or line
// offsets. Runtime background workers, the testing framework's own
// goroutines, and signal plumbing are not ours to account for.
func parseBlock(block string) (string, bool) {
	lines := strings.Split(strings.TrimSpace(block), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "goroutine ") {
		return "", false
	}
	top := funcName(lines[1])
	sig := top
	for _, l := range lines {
		if rest, ok := strings.CutPrefix(l, "created by "); ok {
			creator, _, _ := strings.Cut(rest, " in goroutine")
			sig = top + " ← " + creator
			break
		}
	}
	for _, skip := range []string{"runtime.", "testing.", "os/signal."} {
		if strings.HasPrefix(sig, skip) {
			return "", false
		}
	}
	return sig, true
}

// funcName strips the argument list from a stack frame's function
// line: everything from the last '(' on — method receivers keep their
// own parenthesized form, e.g. "serve.(*Server).worker".
func funcName(line string) string {
	if i := strings.LastIndex(line, "("); i > 0 {
		return line[:i]
	}
	return line
}
