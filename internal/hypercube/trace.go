package hypercube

import (
	"fmt"
	"sort"

	"vmprim/internal/costmodel"
)

// Message tracing: when enabled, every link transfer is recorded with
// its virtual send time, endpoints and size. Traces are the simulator's
// debugging microscope — they show exactly which communication pattern
// an algorithm generated, and their per-link volumes expose congestion.

// TraceEvent records one link message.
type TraceEvent struct {
	// Time is the virtual time at which the message completed sending.
	Time costmodel.Time
	// Src and Dst are the endpoint processor addresses.
	Src, Dst int
	// Dim is the cube dimension of the link used.
	Dim int
	// Words is the payload length.
	Words int
	// Tag is the protocol tag.
	Tag int
}

// String renders the event compactly.
func (ev TraceEvent) String() string {
	return fmt.Sprintf("t=%.1f %d->%d dim%d %dw tag%d", float64(ev.Time), ev.Src, ev.Dst, ev.Dim, ev.Words, ev.Tag)
}

// EnableTrace turns on message tracing for subsequent runs, keeping at
// most limit events per processor (0 disables). Must be called between
// runs, never during one — the same restriction as EnableProfile, and
// the two compose: profiling records spans and clock buckets without
// tracing, but the Chrome-trace exporter draws message flow arrows
// only from traced events, so set both before the run you want to
// visualize.
func (m *Machine) EnableTrace(limit int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.traceLimit = limit
}

// Trace returns the events of the most recent traced run, ordered by
// virtual time (ties by source address). It returns nil if tracing was
// off. Tracing is independent of EnableProfile — a profiled run has a
// trace only if EnableTrace was also set before it — but per-link word
// volumes no longer need it: LinkVolumes and Congestion read always-on
// counters.
func (m *Machine) Trace() []TraceEvent {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]TraceEvent, len(m.trace))
	copy(out, m.trace)
	return out
}

// LinkVolumes returns, for the most recent run, the total words
// carried by each directed link, keyed by [src][dim]. Congestion
// analyses read hot links directly from this. The volumes come from
// the always-on per-link counters — tracing need not be enabled — and
// are computed once per run: the first call after a Run builds a
// cached map in O(p*dim) and every call returns a copy of the cache,
// instead of the old per-call O(events) rescan of the trace.
func (m *Machine) LinkVolumes() map[int]map[int]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.vols == nil {
		vols := make(map[int]map[int]int)
		for pid, pr := range m.procs {
			for d, w := range pr.linkWords {
				if w > 0 {
					if vols[pid] == nil {
						vols[pid] = make(map[int]int)
					}
					vols[pid][d] = int(w)
				}
			}
		}
		m.vols = vols
	}
	out := make(map[int]map[int]int, len(m.vols))
	for src, dims := range m.vols {
		cp := make(map[int]int, len(dims))
		for d, w := range dims {
			cp[d] = w
		}
		out[src] = cp
	}
	return out
}

// collectTrace gathers and orders the per-processor event buffers.
func (m *Machine) collectTrace(procs []*Proc) {
	if m.traceLimit <= 0 {
		m.trace = nil
		return
	}
	var all []TraceEvent
	for _, pr := range procs {
		all = append(all, pr.trace...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Time != all[j].Time {
			return all[i].Time < all[j].Time
		}
		return all[i].Src < all[j].Src
	})
	m.trace = all
}
