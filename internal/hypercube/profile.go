package hypercube

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"vmprim/internal/costmodel"
	"vmprim/internal/obs"
)

// Virtual-time profiling: hierarchical spans over the SPMD program and
// per-processor attribution of the clock into compute / start-up /
// transfer / idle buckets. The bucket and per-link counters are always
// on (a handful of float/int adds per operation); the span machinery
// activates only under EnableProfile, so the hot paths stay
// allocation-free when profiling is off and the simulated times are
// bit-identical either way — spans observe the clock, never advance
// it.

// profInstProc reports whether a processor keeps a full
// per-occurrence span log for the Chrome-trace exporter: processor 0
// and each of its neighbors (the powers of two), so that every cube
// dimension's traffic at processor 0 has both endpoints exported and
// shows up as a flow arrow. Aggregates are kept on every processor;
// the occurrence logs are the expensive part (O(spans) each), so only
// these dim+1 tracks pay for them.
func profInstProc(id int) bool { return id&(id-1) == 0 }

// spanFrame is one open span on a processor's span stack.
type spanFrame struct {
	node  int
	begin costmodel.Time
	// Snapshots of the bucket and stat accumulators at BeginSpan;
	// EndSpan turns them into inclusive deltas.
	comp, start, xfer  costmodel.Time
	msgs, words, flops int64
	// childIncl accumulates the inclusive time of completed direct
	// children, giving the exclusive time without a second pass.
	childIncl costmodel.Time
}

// profNode is one discovered span-tree node: a unique (parent, name)
// path. SPMD symmetry makes every processor discover the same nodes
// in the same order.
type profNode struct {
	name     string
	parent   int // node id, -1 at top level
	note     string
	children []int
}

// nodeAgg is a processor's aggregate over all occurrences of a node.
// pred accumulates the cost model's predicted time recorded with
// SpanPredict; the conformance report compares it against incl.
type nodeAgg struct {
	count              int64
	incl, excl         costmodel.Time
	comp, start, xfer  costmodel.Time
	pred               costmodel.Time
	msgs, words, flops int64
}

// profState is a processor's span recorder, reset by every Run.
type profState struct {
	nodes []profNode
	roots []int
	agg   []nodeAgg
	stack []spanFrame
	inst  []obs.Instance
}

func (ps *profState) reset() {
	ps.nodes = ps.nodes[:0]
	ps.roots = ps.roots[:0]
	ps.agg = ps.agg[:0]
	ps.stack = ps.stack[:0]
	ps.inst = ps.inst[:0]
}

// findOrAddNode resolves name under parent (-1 for top level),
// appending a new node on first sight.
func (ps *profState) findOrAddNode(parent int, name string) int {
	var siblings []int
	if parent < 0 {
		siblings = ps.roots
	} else {
		siblings = ps.nodes[parent].children
	}
	for _, id := range siblings {
		if ps.nodes[id].name == name {
			return id
		}
	}
	id := len(ps.nodes)
	ps.nodes = append(ps.nodes, profNode{name: name, parent: parent})
	ps.agg = append(ps.agg, nodeAgg{})
	if parent < 0 {
		ps.roots = append(ps.roots, id)
	} else {
		ps.nodes[parent].children = append(ps.nodes[parent].children, id)
	}
	return id
}

// Profiling reports whether span recording is active for the current
// run. Use it to guard annotation work (string building for SpanNote)
// that would otherwise run with profiling off.
func (p *Proc) Profiling() bool { return p.prof }

// BeginSpan opens a named span on this processor's span stack. Spans
// nest and must be closed in LIFO order with EndSpan before the SPMD
// body returns. The SPMD contract applies: every processor must open
// and close the same spans in the same order, so the span tree is
// recorded once per run while the timings are aggregated over
// processors. A no-op unless the machine's EnableProfile is set.
func (p *Proc) BeginSpan(name string) {
	if !p.prof {
		return
	}
	ps := &p.ps
	parent := -1
	if n := len(ps.stack); n > 0 {
		parent = ps.stack[n-1].node
	}
	node := ps.findOrAddNode(parent, name)
	if p.stream != nil {
		p.emitSpanOpen(name, len(ps.stack))
	}
	ps.stack = append(ps.stack, spanFrame{
		node:  node,
		begin: p.clock,
		comp:  p.tComp, start: p.tStart, xfer: p.tXfer,
		msgs: p.nMsgs, words: p.nWords, flops: p.nFlops,
	})
}

// EndSpan closes the innermost open span, recording its inclusive and
// exclusive virtual time, bucket deltas and counter deltas. It panics
// if no span is open — an unbalanced Begin/End pair is a program bug.
func (p *Proc) EndSpan() {
	if !p.prof {
		return
	}
	ps := &p.ps
	n := len(ps.stack)
	if n == 0 {
		panic("hypercube: EndSpan without matching BeginSpan")
	}
	f := &ps.stack[n-1]
	incl := p.clock - f.begin
	a := &ps.agg[f.node]
	a.count++
	a.incl += incl
	a.excl += incl - f.childIncl
	a.comp += p.tComp - f.comp
	a.start += p.tStart - f.start
	a.xfer += p.tXfer - f.xfer
	a.msgs += p.nMsgs - f.msgs
	a.words += p.nWords - f.words
	a.flops += p.nFlops - f.flops
	if profInstProc(p.id) {
		ps.inst = append(ps.inst, obs.Instance{Node: f.node, Begin: f.begin, End: p.clock})
	}
	if p.stream != nil {
		p.emitSpanClose(ps.nodes[f.node].name, n-1)
	}
	ps.stack = ps.stack[:n-1]
	if n > 1 {
		ps.stack[n-2].childIncl += incl
	}
}

// SpanPredict records the cost model's analytic prediction for the
// innermost open span's current occurrence (see costmodel.Predict*).
// Collectives call it right after entry, when the step count and
// payload size are known; the critical-path tracer's conformance
// report compares the accumulated predictions against the measured
// inclusive times. Guard the prediction arithmetic at the call site
// with Profiling(). A no-op when span recording is off or no span is
// open.
func (p *Proc) SpanPredict(t costmodel.Time) {
	if !p.prof {
		return
	}
	n := len(p.ps.stack)
	if n == 0 {
		return
	}
	p.ps.agg[p.ps.stack[n-1].node].pred += t
}

// SpanNote attaches an annotation (an embedding change, a chosen
// algorithm variant, ...) to the innermost open span's tree node.
// Notes are recorded on processor 0 only and deduplicated; guard any
// string building at the call site with Profiling(). A no-op when
// profiling is off or no span is open.
func (p *Proc) SpanNote(note string) {
	if !p.prof || p.id != 0 {
		return
	}
	n := len(p.ps.stack)
	if n == 0 {
		return
	}
	nd := &p.ps.nodes[p.ps.stack[n-1].node]
	switch {
	case nd.note == "":
		nd.note = note
	case !strings.Contains(nd.note, note):
		nd.note += "; " + note
	}
}

// checkSpansClosed panics if the SPMD body returned with spans still
// open; runBody calls it so the mismatch surfaces as a Run error
// naming the processor.
func (p *Proc) checkSpansClosed() {
	if !p.prof {
		return
	}
	if n := len(p.ps.stack); n > 0 {
		name := p.ps.nodes[p.ps.stack[n-1].node].name
		panic(fmt.Sprintf(
			"hypercube: %d span(s) left open at end of run (innermost %q): BeginSpan without matching EndSpan",
			n, name))
	}
}

// EnableProfile turns span recording on or off for subsequent runs.
// Like EnableTrace it must be called between runs, not during one.
// The per-processor clock buckets and per-link word counters are
// always on; EnableProfile only controls the span tree (and therefore
// whether Profile returns a value). For Chrome-trace flow arrows,
// also call EnableTrace: the exporter reuses the traced messages.
func (m *Machine) EnableProfile(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.profEnabled = on
}

// Profile returns the profile of the most recent Run, or nil if
// profiling was off or the run failed. The returned value is a
// snapshot; it stays valid across later runs.
func (m *Machine) Profile() *obs.Profile {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.profile
}

// buildProfile assembles the obs.Profile after a successful profiled
// run. Caller must not hold m.mu.
func (m *Machine) buildProfile() *obs.Profile {
	procs := make([]obs.ProcData, m.p)
	for pid, pr := range m.procs {
		pd := &procs[pid]
		pd.Clock = pr.clock
		pd.Compute, pd.Startup, pd.Transfer = pr.tComp, pr.tStart, pr.tXfer
		pd.Msgs, pd.Words, pd.Flops = pr.nMsgs, pr.nWords, pr.nFlops
		ps := &pr.ps
		pd.Meta = make([]obs.NodeMeta, len(ps.nodes))
		pd.Stats = make([]obs.NodeStats, len(ps.nodes))
		for i := range ps.nodes {
			pd.Meta[i] = obs.NodeMeta{
				Name: ps.nodes[i].name, Parent: ps.nodes[i].parent, Note: ps.nodes[i].note,
			}
			a := &ps.agg[i]
			pd.Stats[i] = obs.NodeStats{
				Count: a.count,
				Incl:  a.incl, Excl: a.excl,
				Compute: a.comp, Startup: a.start, Transfer: a.xfer,
				Pred: a.pred,
				Msgs: a.msgs, Words: a.words, Flops: a.flops,
			}
		}
		if len(ps.inst) > 0 {
			pd.Instances = append([]obs.Instance(nil), ps.inst...)
		}
	}
	var events []obs.LinkEvent
	for _, ev := range m.trace {
		events = append(events, obs.LinkEvent{
			Time: ev.Time, Src: ev.Src, Dst: ev.Dst, Dim: ev.Dim, Words: ev.Words, Tag: ev.Tag,
		})
	}
	pf := obs.Build(m.dim, procs, events, m.linkLoads(0))
	pf.Sched = &obs.HostSched{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		RecvParks:  m.sched.RecvParks,
		SendStalls: m.sched.SendStalls,
		Wakeups:    m.sched.Wakeups,
		MaxParked:  m.sched.MaxParked,
	}
	return pf
}

// linkLoads lists the nonzero directed-link word counts of the most
// recent run, hottest first; k > 0 truncates to the top k. Caller may
// hold m.mu or not — the method reads only per-proc counters, which
// are quiescent between runs.
func (m *Machine) linkLoads(k int) []obs.LinkLoad {
	var loads []obs.LinkLoad
	for pid, pr := range m.procs {
		for d, w := range pr.linkWords {
			if w > 0 {
				loads = append(loads, obs.LinkLoad{
					Src: pid, Dim: d, Dst: pid ^ (1 << d), Words: w,
				})
			}
		}
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].Words != loads[j].Words {
			return loads[i].Words > loads[j].Words
		}
		if loads[i].Src != loads[j].Src {
			return loads[i].Src < loads[j].Src
		}
		return loads[i].Dim < loads[j].Dim
	})
	if k > 0 && len(loads) > k {
		loads = loads[:k]
	}
	return loads
}

// Congestion returns the k busiest directed links of the most recent
// run (all nonzero links if k <= 0), hottest first. It reads the
// always-on per-link word counters, so it works whether or not
// tracing or profiling was enabled.
func (m *Machine) Congestion(k int) []obs.LinkLoad {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.linkLoads(k)
}
