package hypercube

import (
	"runtime"
	"testing"

	"vmprim/internal/costmodel"
)

// Tests for the zero-allocation hot paths: the persistent engine, the
// per-processor buffer pools, and the dimension-derived link capacity.

func TestLinkCapScalesWithDimension(t *testing.T) {
	// Matched exchange phases only need capacity 1 for deadlock
	// freedom; linkCap provides O(dim) headroom for run-ahead senders.
	prev := 0
	for dim := 0; dim <= 20; dim++ {
		c := linkCap(dim)
		if c < 1 {
			t.Fatalf("linkCap(%d) = %d < 1", dim, c)
		}
		if c < prev {
			t.Fatalf("linkCap not monotone at dim %d: %d < %d", dim, c, prev)
		}
		prev = c
	}
	if got := linkCap(8); got != 36 {
		t.Fatalf("linkCap(8) = %d, want 36", got)
	}
}

func TestLinksEmptyAfterAbortedRun(t *testing.T) {
	// Processor 0 posts messages nobody consumes and then panics; the
	// post-run drain must leave every link channel empty.
	m := MustNew(3, costmodel.Ideal())
	_, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(0, 1, []float64{1, 2, 3})
			p.Send(1, 2, []float64{4})
			p.Send(2, 3, nil)
			panic("abort with messages in flight")
		}
		p.Recv(2, 99) // blocks until the abort
	})
	if err == nil {
		t.Fatal("expected the run to fail")
	}
	if !m.linksEmpty() {
		t.Fatal("links not empty after aborted run")
	}
	// And the machine still works.
	if _, err := m.Run(func(p *Proc) {
		out := p.Exchange(0, 7, []float64{float64(p.ID())})
		if int(out[0]) != p.ID()^1 {
			panic("stale message leaked past drain")
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSenderMayMutateSliceAfterSend(t *testing.T) {
	// Send copies the payload into a pooled buffer, so the caller may
	// overwrite its slice immediately — even with pools recycling
	// buffers between iterations.
	m := MustNew(2, costmodel.Ideal())
	if _, err := m.Run(func(p *Proc) {
		buf := make([]float64, 4)
		for i := 0; i < 16; i++ {
			want := float64(p.ID()*100 + i)
			for j := range buf {
				buf[j] = want
			}
			p.Send(0, i, buf)
			for j := range buf {
				buf[j] = -1 // mutate right after Send
			}
			got := p.Recv(0, i)
			for j, v := range got {
				if v != float64((p.ID()^1)*100+i) {
					panic("receiver saw mutated payload at " +
						string(rune('0'+j)))
				}
			}
			p.Recycle(got)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// exerciseBody is a deterministic mixed workload: exchanges along every
// dimension with per-processor payload sizes, plus compute charges.
func exerciseBody(p *Proc) {
	buf := p.GetBuf(8)
	for i := range buf {
		buf[i] = float64(p.ID() + i)
	}
	for d := 0; d < p.Dim(); d++ {
		got := p.Exchange(d, 10+d, buf[:1+(p.ID()+d)%5])
		p.Compute(len(got))
		p.Recycle(got)
	}
	p.Recycle(buf)
}

func TestFreshVsReusedMachineDeterminism(t *testing.T) {
	// Repeated runs on one persistent machine must report exactly the
	// same Elapsed and Stats as a fresh machine running the same body:
	// pooling and engine reuse must not leak into simulated results.
	for _, dim := range []int{4, 8} {
		reused := MustNew(dim, costmodel.CM2())
		var elapsed []costmodel.Time
		var stats []Stats
		for i := 0; i < 3; i++ {
			e, err := reused.Run(exerciseBody)
			if err != nil {
				t.Fatalf("dim %d run %d: %v", dim, i, err)
			}
			elapsed = append(elapsed, e)
			stats = append(stats, reused.LastStats())
		}
		fresh := MustNew(dim, costmodel.CM2())
		e, err := fresh.Run(exerciseBody)
		if err != nil {
			t.Fatalf("dim %d fresh: %v", dim, err)
		}
		for i := 1; i < len(elapsed); i++ {
			if elapsed[i] != elapsed[0] || stats[i] != stats[0] {
				t.Fatalf("dim %d: run %d diverged: %v/%+v vs %v/%+v",
					dim, i, elapsed[i], stats[i], elapsed[0], stats[0])
			}
		}
		if e != elapsed[0] || fresh.LastStats() != stats[0] {
			t.Fatalf("dim %d: fresh machine diverged: %v/%+v vs %v/%+v",
				dim, e, fresh.LastStats(), elapsed[0], stats[0])
		}
	}
}

// mallocsPerRun reports the average number of heap allocations per
// call of f after warming up, in the spirit of testing.AllocsPerRun
// but tolerant of the worker goroutines' concurrent activity.
func mallocsPerRun(warm, runs int, f func()) float64 {
	for i := 0; i < warm; i++ {
		f()
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

func TestSendRecvSteadyStateAllocs(t *testing.T) {
	// After the pools equilibrate, a run full of Send/Recv pairs must
	// allocate only the per-Run fixed overhead (run context, error
	// channel, ...), not per-message buffers: 16 procs x 32 exchanges
	// would cost >1000 allocations unpooled.
	m := MustNew(4, costmodel.Ideal())
	const exchanges = 32
	body := func(p *Proc) {
		buf := p.GetBuf(8)
		for i := range buf {
			buf[i] = float64(i)
		}
		for i := 0; i < exchanges; i++ {
			got := p.Exchange(i%4, i, buf)
			p.Recycle(got)
		}
		p.Recycle(buf)
	}
	per := mallocsPerRun(5, 10, func() {
		if _, err := m.Run(body); err != nil {
			t.Fatal(err)
		}
	})
	if per > 200 {
		t.Fatalf("steady-state Send/Recv allocates %.0f objects per run, want <= 200", per)
	}
}

func TestPoolGetPutClasses(t *testing.T) {
	var bp bufPool
	// A recycled buffer must come back only for requests it can hold.
	b := bp.get(100)
	if len(b) != 100 || cap(b) < 100 {
		t.Fatalf("get(100): len=%d cap=%d", len(b), cap(b))
	}
	bp.put(b)
	c := bp.get(128)
	if len(c) != 128 {
		t.Fatalf("get(128): len=%d", len(c))
	}
	if cap(c) < 128 {
		t.Fatalf("get(128) returned too-small capacity %d", cap(c))
	}
	// Zero-length requests and recycles must be safe.
	z := bp.get(0)
	if len(z) != 0 {
		t.Fatalf("get(0): len=%d", len(z))
	}
	bp.put(z)
	bp.put(nil)
}

func TestCloseIdempotentAndFreshMachineStillRuns(t *testing.T) {
	m := MustNew(3, costmodel.Ideal())
	if _, err := m.Run(func(p *Proc) { p.Compute(1) }); err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close() // must be a no-op
	m2 := MustNew(3, costmodel.Ideal())
	defer m2.Close()
	if _, err := m2.Run(func(p *Proc) { p.Compute(1) }); err != nil {
		t.Fatal(err)
	}
}
