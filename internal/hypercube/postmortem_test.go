package hypercube

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"vmprim/internal/costmodel"
	"vmprim/internal/flightrec"
)

// exchangeDim picks the dimension a processor uses in the mismatched
// exchange below: the parity of the two address bits. Flipping either
// bit changes the parity, so every processor's chosen partner picked
// the other dimension — all four processors send, then block in Recv
// forever, a genuine all-blocked deadlock with every link holding one
// undelivered message.
func exchangeDim(id int) int { return (id & 1) ^ ((id >> 1) & 1) }

func TestDeadlockPostMortemNamesEveryBlockedProc(t *testing.T) {
	m := MustNew(2, costmodel.CM2())
	defer m.Close()
	m.SetRecvTimeout(100 * time.Millisecond)
	const tag = 9
	_, err := m.Run(func(p *Proc) {
		p.Exchange(exchangeDim(p.id), tag, []float64{1, 2, 3})
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("Run error = %v, want deadlock", err)
	}

	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error %T does not wrap *RunError", err)
	}
	rep := re.Report
	if rep == nil || rep != m.PostMortem() {
		t.Fatalf("report %p not surfaced via PostMortem (%p)", rep, m.PostMortem())
	}
	if !strings.Contains(rep.Cause, "deadlock") {
		t.Fatalf("cause = %q, want deadlock", rep.Cause)
	}
	if rep.Blocked != 4 || len(rep.Procs) != 4 {
		t.Fatalf("blocked = %d/%d procs, want 4/4", rep.Blocked, len(rep.Procs))
	}
	for pid, ps := range rep.Procs {
		if ps.Wait != "recv" || ps.WaitDim != exchangeDim(pid) || ps.WaitTag != tag {
			t.Fatalf("proc %d blocked on %q dim %d tag %d, want recv dim %d tag %d",
				pid, ps.Wait, ps.WaitDim, ps.WaitTag, exchangeDim(pid), tag)
		}
		// Flight events are in virtual-time (causal) order.
		for i := 1; i < len(ps.Events); i++ {
			if ps.Events[i].VT < ps.Events[i-1].VT {
				t.Fatalf("proc %d events out of VT order: %+v", pid, ps.Events)
			}
		}
		// The one send each processor completed is on the record.
		found := false
		for _, ev := range ps.Events {
			if ev.Kind == flightrec.KindSend && ev.Dim == exchangeDim(pid) && ev.Tag == tag && ev.Words == 3 {
				found = true
			}
		}
		if !found {
			t.Fatalf("proc %d flight record missing its send: %+v", pid, ps.Events)
		}
	}
	// Every link holds exactly the one message its receiver never took.
	if len(rep.Links) != 4 {
		t.Fatalf("links = %+v, want 4 occupied", rep.Links)
	}
	for _, l := range rep.Links {
		if l.Queued != 1 || l.QueuedWords != 3 || l.HeadTag != tag {
			t.Fatalf("link %+v, want 1 msg of 3 words tag %d", l, tag)
		}
		if l.Dim != exchangeDim(l.Src) || l.Dst != l.Src^(1<<l.Dim) {
			t.Fatalf("link %+v inconsistent with the mismatched exchange", l)
		}
	}
	if !m.linksEmpty() {
		t.Fatal("links not drained after post-mortem census")
	}

	// Both renderings work on a real report.
	var txt, js bytes.Buffer
	rep.WriteText(&txt)
	for _, want := range []string{"blocked 4/4 procs", "recv dim 0 tag 9", "recv dim 1 tag 9", "undelivered link messages"} {
		if !strings.Contains(txt.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, txt.String())
		}
	}
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}

	// A subsequent successful run clears the post-mortem.
	if _, err := m.Run(func(p *Proc) { p.Barrier(p.FullMask(), 1) }); err != nil {
		t.Fatal(err)
	}
	if m.PostMortem() != nil {
		t.Fatal("PostMortem not cleared by a successful run")
	}
}

func TestTagMismatchCapturesPayload(t *testing.T) {
	m := MustNew(1, costmodel.CM2())
	defer m.Close()
	payload := []float64{42, 43, 44, 45, 46}
	_, err := m.Run(func(p *Proc) {
		if p.id == 0 {
			p.Send(0, 5, payload)
			return
		}
		p.Recv(0, 6)
	})
	if err == nil || !strings.Contains(err.Error(), "tag mismatch") {
		t.Fatalf("Run error = %v, want tag mismatch", err)
	}
	rep := m.PostMortem()
	if rep == nil || rep.FailedProc != 1 {
		t.Fatalf("report %+v, want failure on proc 1", rep)
	}
	caps := rep.Procs[1].Captured
	if len(caps) != 1 || caps[0].Len != 5 {
		t.Fatalf("captured = %+v, want the 5-word payload", caps)
	}
	if len(caps[0].Head) != 4 || caps[0].Head[0] != 42 {
		t.Fatalf("captured head = %v, want first 4 words starting at 42", caps[0].Head)
	}
}

func TestFlightRecorderDepthBoundsReportTail(t *testing.T) {
	m := MustNew(1, costmodel.CM2())
	defer m.Close()
	m.SetFlightRecorderDepth(4)
	_, err := m.Run(func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Recycle(p.Exchange(0, i, []float64{float64(i)}))
		}
		panic("stop here")
	})
	if err == nil || !strings.Contains(err.Error(), "stop here") {
		t.Fatalf("Run error = %v, want injected panic", err)
	}
	rep := m.PostMortem()
	for pid, ps := range rep.Procs {
		if len(ps.Events) != 4 {
			t.Fatalf("proc %d kept %d events, want ring depth 4", pid, len(ps.Events))
		}
		if ps.EventsTotal != 20 { // 10 sends + 10 recvs
			t.Fatalf("proc %d events_total = %d, want 20", pid, ps.EventsTotal)
		}
		// The tail is the newest events: the last recorded exchanges.
		if ps.Events[len(ps.Events)-1].Tag != 9 {
			t.Fatalf("proc %d tail = %+v, want newest tag 9", pid, ps.Events)
		}
	}
	m.SetFlightRecorderDepth(defaultFlightDepth)
}

func TestPostMortemOpenSpansAndCollectives(t *testing.T) {
	m := MustNew(2, costmodel.CM2())
	defer m.Close()
	m.EnableProfile(true)
	_, err := m.Run(func(p *Proc) {
		p.BeginSpan("phase")
		// The shape of a collective entry, as internal/collective does
		// it: its own span plus a NoteCollective (the real package is
		// not importable from here without a cycle).
		p.BeginSpan("bcast")
		p.NoteCollective("bcast", p.FullMask(), 3)
		p.Barrier(p.FullMask(), 3)
		p.EndSpan()
		panic("mid-phase failure")
	})
	if err == nil {
		t.Fatal("expected the injected panic")
	}
	rep := m.PostMortem()
	if rep == nil {
		t.Fatal("no post-mortem")
	}
	for pid, ps := range rep.Procs {
		// Every processor died inside the phase; ones aborted while
		// still in the barrier also have the bcast span open.
		if len(ps.OpenSpans) == 0 || ps.OpenSpans[0] != "phase" {
			t.Fatalf("proc %d open spans = %v, want phase outermost", pid, ps.OpenSpans)
		}
		foundColl := false
		for _, ev := range ps.Events {
			if ev.Label == "bcast" {
				foundColl = true
				// The collective entry is recorded inside its own span,
				// nested under the still-open phase (depth 2).
				if ev.SpanName != "bcast" || ev.Depth != 2 {
					t.Fatalf("proc %d bcast event span = %q depth %d, want bcast at depth 2", pid, ev.SpanName, ev.Depth)
				}
			}
		}
		if !foundColl {
			t.Fatalf("proc %d flight record missing the bcast entry: %+v", pid, ps.Events)
		}
	}
	m.EnableProfile(false)
}

func TestSetDefaultRecvTimeout(t *testing.T) {
	SetDefaultRecvTimeout(123 * time.Millisecond)
	defer SetDefaultRecvTimeout(0)
	m := MustNew(0, costmodel.CM2())
	defer m.Close()
	if m.recvTimeout != 123*time.Millisecond {
		t.Fatalf("recvTimeout = %v, want 123ms", m.recvTimeout)
	}
	SetDefaultRecvTimeout(0)
	m2 := MustNew(0, costmodel.CM2())
	defer m2.Close()
	if m2.recvTimeout != DefaultRecvTimeout {
		t.Fatalf("recvTimeout = %v, want restored default %v", m2.recvTimeout, DefaultRecvTimeout)
	}
}

func TestMetricsReconcileWithObservability(t *testing.T) {
	m := MustNew(3, costmodel.CM2())
	defer m.Close()
	m.EnableTrace(1 << 20)
	// Recursive-doubling all-reduce, hand-rolled (internal/collective
	// cannot be imported from here without a cycle).
	body := func(p *Proc) {
		p.NoteCollective("all-reduce", p.FullMask(), 2)
		acc := p.GetBuf(4)
		for i := range acc {
			acc[i] = float64(p.id + i)
		}
		for d := 0; d < p.Dim(); d++ {
			got := p.Exchange(d, 2, acc)
			for i := range acc {
				acc[i] += got[i]
			}
			p.Compute(len(acc))
			p.Recycle(got)
		}
		p.Recycle(acc)
		p.Compute(17)
	}
	if _, err := m.Run(body); err != nil {
		t.Fatal(err)
	}
	snap := m.Metrics().Snapshot()
	st := m.LastStats()

	// Counters reconcile with the machine's own observability surfaces:
	// words vs the always-on per-link counters, messages vs the trace.
	var linkWords int64
	for _, l := range m.Congestion(0) {
		linkWords += l.Words
	}
	if v, _ := snap.Value("vmprim_words_total"); int64(v) != linkWords || int64(v) != st.Words {
		t.Fatalf("words_total = %v, link sum = %d, stats = %d", v, linkWords, st.Words)
	}
	if v, _ := snap.Value("vmprim_messages_total"); int(v) != len(m.Trace()) || int64(v) != st.Messages {
		t.Fatalf("messages_total = %v, trace = %d, stats = %d", v, len(m.Trace()), st.Messages)
	}
	if v, _ := snap.Value("vmprim_flops_total"); int64(v) != st.Flops {
		t.Fatalf("flops_total = %v, stats = %d", v, st.Flops)
	}
	if v, _ := snap.Value("vmprim_runs_total"); v != 1 {
		t.Fatalf("runs_total = %v, want 1", v)
	}
	if v, _ := snap.Value("vmprim_run_failures_total"); v != 0 {
		t.Fatalf("failures = %v, want 0", v)
	}
	// Every message is one histogram observation; the histogram sum is
	// the total words.
	if v, _ := snap.Value("vmprim_message_words"); int64(v) != st.Messages {
		t.Fatalf("message_words count = %v, want %d", v, st.Messages)
	}
	for _, mv := range snap.Metrics {
		if mv.Name == "vmprim_message_words" && int64(mv.Sum) != st.Words {
			t.Fatalf("message_words sum = %v, want %d", mv.Sum, st.Words)
		}
	}
	// One AllReduce entered per processor.
	if v, _ := snap.Value("vmprim_collectives_total"); v != 8 {
		t.Fatalf("collectives_total = %v, want 8", v)
	}
	if gets, _ := snap.Value("vmprim_pool_gets_total"); gets > 0 {
		hits, _ := snap.Value("vmprim_pool_hits_total")
		if hits > gets {
			t.Fatalf("pool hits %v exceed gets %v", hits, gets)
		}
	}

	// Counters are cumulative across runs; gauges describe the last.
	if _, err := m.Run(body); err != nil {
		t.Fatal(err)
	}
	snap2 := m.Metrics().Snapshot()
	if v, _ := snap2.Value("vmprim_runs_total"); v != 2 {
		t.Fatalf("runs_total after 2nd run = %v, want 2", v)
	}
	if v, _ := snap2.Value("vmprim_words_total"); int64(v) != 2*st.Words {
		t.Fatalf("words_total after 2nd run = %v, want %d", v, 2*st.Words)
	}
	if v, _ := snap2.Value("vmprim_last_elapsed_us"); v != float64(m.Elapsed()) {
		t.Fatalf("last_elapsed_us = %v, want %v", v, float64(m.Elapsed()))
	}
	// The second run hits the warmed pool on every get.
	if v, _ := snap2.Value("vmprim_pool_hit_rate"); v != 1 {
		t.Fatalf("pool_hit_rate = %v, want 1 on the warmed second run", v)
	}
}

func TestWatchdogRearmCountsAsProgress(t *testing.T) {
	m := MustNew(1, costmodel.CM2())
	defer m.Close()
	m.SetRecvTimeout(100 * time.Millisecond)
	if _, err := m.Run(func(p *Proc) {
		if p.id == 0 {
			// First message arrives inside proc 1's first watchdog
			// window; the second only inside the window the watchdog
			// opens when its fire finds progress and re-arms.
			time.Sleep(20 * time.Millisecond)
			p.Send(0, 1, []float64{1})
			time.Sleep(130 * time.Millisecond)
			p.Send(0, 2, []float64{2})
			return
		}
		p.Recycle(p.Recv(0, 1))
		p.Recycle(p.Recv(0, 2))
	}); err != nil {
		t.Fatal(err)
	}
	snap := m.Metrics().Snapshot()
	if v, _ := snap.Value("vmprim_watchdog_arms_total"); v < 1 {
		t.Fatalf("watchdog_arms_total = %v, want >= 1", v)
	}
	if v, _ := snap.Value("vmprim_watchdog_rearms_total"); v < 1 {
		t.Fatalf("watchdog_rearms_total = %v, want >= 1: the fire at 100ms sees the first delivery and re-arms", v)
	}
}
