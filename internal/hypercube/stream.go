package hypercube

import "vmprim/internal/obs"

// Live event streaming (see internal/obs stream.go for the event
// vocabulary). The machine emits span-open/span-close/progress events
// from processor 0's goroutine while the run executes, and a
// link-congestion summary once the workers have quiesced. Emission
// only observes clocks, never advances them, so a streamed run's
// simulated results are bit-identical to an unstreamed one — the same
// contract the profiler keeps.

// streamProgressEvery is the span-close period of progress heartbeats.
const streamProgressEvery = 64

// streamLinkTopK bounds the link-congestion events emitted at the end
// of a streamed run (the hottest directed links, like the profile's
// congestion table).
const streamLinkTopK = 8

// EnableStream attaches a live event sink to subsequent runs (nil
// detaches). Span events require the span machinery, so they flow only
// when EnableProfile (or EnableCritPath) is also set; progress and
// link-congestion events flow regardless. Like EnableProfile it must
// be called between runs, never during one. The sink is invoked inline
// on processor 0's worker goroutine (and on Run's caller for the link
// summary), so it must be cheap and must not block.
func (m *Machine) EnableStream(sink obs.StreamSink) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stream = sink
}

// emitSpanOpen streams one BeginSpan on processor 0. Hot-path cost
// when streaming is off: one nil check in BeginSpan.
func (p *Proc) emitSpanOpen(name string, depth int) {
	p.stream(obs.StreamEvent{
		Kind: obs.EvSpanOpen, VTUs: float64(p.clock), Name: name, Depth: depth,
	})
}

// emitSpanClose streams one EndSpan on processor 0 and, every
// streamProgressEvery closes, a progress heartbeat.
func (p *Proc) emitSpanClose(name string, depth int) {
	p.stream(obs.StreamEvent{
		Kind: obs.EvSpanClose, VTUs: float64(p.clock), Name: name, Depth: depth,
	})
	p.streamClosed++
	if p.streamClosed%streamProgressEvery == 0 {
		p.stream(obs.StreamEvent{
			Kind: obs.EvProgress, VTUs: float64(p.clock), Closed: p.streamClosed,
		})
	}
}

// emitRunSummary streams the final progress mark and the hottest-link
// census after the workers have quiesced; Run calls it on the caller's
// goroutine.
func (m *Machine) emitRunSummary(sink obs.StreamSink, elapsed float64) {
	closed := m.procs[0].streamClosed
	sink(obs.StreamEvent{Kind: obs.EvProgress, VTUs: elapsed, Closed: closed})
	for _, l := range m.linkLoads(streamLinkTopK) {
		sink(obs.StreamEvent{
			Kind: obs.EvLink, VTUs: elapsed,
			Src: l.Src, Dim: l.Dim, Dst: l.Dst, Words: l.Words,
		})
	}
}
