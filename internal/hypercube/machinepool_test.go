package hypercube

import (
	"sync"
	"testing"

	"vmprim/internal/costmodel"
	"vmprim/internal/testutil"
)

func TestMachinePoolHitMissEvict(t *testing.T) {
	defer testutil.CheckLeaks(t, testutil.Snapshot())
	mp := NewMachinePool(2)
	defer mp.Close()
	k4 := PoolKey{Dim: 2, Params: costmodel.CM2()}
	k8 := PoolKey{Dim: 3, Params: costmodel.CM2()}
	kIpsc := PoolKey{Dim: 2, Params: costmodel.IPSC()}

	m1, hit, err := mp.Acquire(k4)
	if err != nil || hit {
		t.Fatalf("first acquire: hit=%v err=%v, want miss", hit, err)
	}
	if m1.Dim() != 2 {
		t.Fatalf("acquired dim %d, want 2", m1.Dim())
	}
	mp.Release(k4, m1)

	// Same key: must hand back the identical machine.
	m2, hit, err := mp.Acquire(k4)
	if err != nil || !hit {
		t.Fatalf("second acquire: hit=%v err=%v, want hit", hit, err)
	}
	if m2 != m1 {
		t.Fatalf("pool returned a different machine for the same key")
	}

	// Same dim, different cost params: distinct configuration, miss.
	m3, hit, err := mp.Acquire(kIpsc)
	if err != nil || hit {
		t.Fatalf("ipsc acquire: hit=%v err=%v, want miss", hit, err)
	}

	// Fill past capacity: k4 (released first) must be evicted, the
	// two most recent keys retained.
	m4, _, err := mp.Acquire(k8)
	if err != nil {
		t.Fatal(err)
	}
	mp.Release(k4, m2)
	mp.Release(kIpsc, m3)
	mp.Release(k8, m4)

	st := mp.Stats()
	if st.Evictions != 1 || st.Idle != 2 {
		t.Fatalf("stats after overflow: %+v, want 1 eviction, 2 idle", st)
	}
	// The pool's Close only retires idle machines, so these acquired
	// ones are ours to close — the leak check holds us to it.
	m5, hit, _ := mp.Acquire(k4)
	if hit {
		t.Fatalf("evicted key still hit the pool")
	}
	defer m5.Close()
	m6, hit, _ := mp.Acquire(kIpsc)
	if !hit {
		t.Fatalf("recently released key missed the pool")
	}
	defer m6.Close()
	m7, hit, _ := mp.Acquire(k8)
	if !hit {
		t.Fatalf("most recently released key missed the pool")
	}
	defer m7.Close()
	st = mp.Stats()
	if st.Hits != 3 || st.Misses != 4 {
		t.Fatalf("final stats %+v, want 3 hits / 4 misses", st)
	}
}

// Pooled machines must still run correctly after a round trip, and the
// pool must tolerate concurrent acquire/release traffic.
func TestMachinePoolConcurrentRuns(t *testing.T) {
	defer testutil.CheckLeaks(t, testutil.Snapshot())
	mp := NewMachinePool(2)
	defer mp.Close()
	key := PoolKey{Dim: 2, Params: costmodel.CM2()}

	ref, _, err := mp.Acquire(key)
	if err != nil {
		t.Fatal(err)
	}
	want, err := runPing(ref)
	if err != nil {
		t.Fatal(err)
	}
	mp.Release(key, ref)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				m, _, err := mp.Acquire(key)
				if err != nil {
					errs <- err
					return
				}
				got, err := runPing(m)
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					t.Errorf("pooled run elapsed %v, want %v", got, want)
				}
				mp.Release(key, m)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// runPing exchanges one word along dimension 0 and returns the
// simulated elapsed time (deterministic for a given cost model).
func runPing(m *Machine) (costmodel.Time, error) {
	return m.Run(func(p *Proc) {
		got := p.Exchange(0, 1, []float64{float64(p.ID())})
		p.Recycle(got)
	})
}
