package hypercube

import (
	"sync"

	"vmprim/internal/costmodel"
)

// MachinePool is an LRU cache of idle Machines keyed by configuration,
// for serving layers that run many workloads against a small set of
// machine shapes. Construction of a Machine is cheap but its steady
// state is expensive to rebuild: the persistent worker goroutines,
// per-processor buffer pools and link channels all warm up over the
// first runs, so a pool hit hands the caller a machine whose pools are
// already equilibrated. Acquire removes the machine from the pool (a
// Machine is single-tenant: one Run at a time), Release returns it;
// machines evicted by capacity pressure are Closed.
//
// The pool is safe for concurrent use. The machines themselves are
// not shared: between Acquire and Release exactly one goroutine owns
// the machine.

// PoolKey identifies one machine configuration: the cube dimension and
// the full cost-parameter set (which includes the port model).
type PoolKey struct {
	Dim    int
	Params costmodel.Params
}

// MachinePool caches idle machines, most recently released first.
type MachinePool struct {
	mu  sync.Mutex
	cap int
	// idle is ordered most-recently-released first; eviction takes
	// from the tail.
	idle []poolSlot

	hits, misses, evictions int64
}

type poolSlot struct {
	key PoolKey
	m   *Machine
}

// NewMachinePool returns a pool retaining at most capacity idle
// machines (capacity < 1 is treated as 1).
func NewMachinePool(capacity int) *MachinePool {
	if capacity < 1 {
		capacity = 1
	}
	return &MachinePool{cap: capacity}
}

// Acquire returns a machine for key, reusing an idle pooled machine
// when one matches (hit reports which). The caller owns the machine
// until it calls Release (or Close, to retire it).
func (mp *MachinePool) Acquire(key PoolKey) (m *Machine, hit bool, err error) {
	mp.mu.Lock()
	for i := range mp.idle {
		if mp.idle[i].key == key {
			m = mp.idle[i].m
			mp.idle = append(mp.idle[:i], mp.idle[i+1:]...)
			mp.hits++
			mp.mu.Unlock()
			return m, true, nil
		}
	}
	mp.misses++
	mp.mu.Unlock()
	m, err = New(key.Dim, key.Params)
	return m, false, err
}

// Release returns a machine to the pool under its key, evicting (and
// Closing) the least recently released machine when the pool is over
// capacity.
func (mp *MachinePool) Release(key PoolKey, m *Machine) {
	var evicted []*Machine
	mp.mu.Lock()
	mp.idle = append([]poolSlot{{key: key, m: m}}, mp.idle...)
	for len(mp.idle) > mp.cap {
		last := mp.idle[len(mp.idle)-1]
		mp.idle = mp.idle[:len(mp.idle)-1]
		evicted = append(evicted, last.m)
		mp.evictions++
	}
	mp.mu.Unlock()
	for _, em := range evicted {
		em.Close()
	}
}

// PoolStats is a point-in-time summary of pool traffic.
type PoolStats struct {
	// Hits and Misses count Acquire calls served from the pool versus
	// by constructing a new machine; Evictions counts machines closed
	// by capacity pressure.
	Hits, Misses, Evictions int64
	// Idle is the number of machines currently pooled.
	Idle int
}

// Stats returns the pool's counters.
func (mp *MachinePool) Stats() PoolStats {
	mp.mu.Lock()
	defer mp.mu.Unlock()
	return PoolStats{
		Hits: mp.hits, Misses: mp.misses, Evictions: mp.evictions,
		Idle: len(mp.idle),
	}
}

// Close retires every pooled machine and empties the pool. Machines
// currently acquired are unaffected; releasing them afterwards pools
// them again (callers shutting down should Close machines instead of
// releasing them once the pool itself is closed).
func (mp *MachinePool) Close() {
	mp.mu.Lock()
	idle := mp.idle
	mp.idle = nil
	mp.mu.Unlock()
	for _, s := range idle {
		s.m.Close()
	}
}
