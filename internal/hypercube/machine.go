// Package hypercube simulates a Boolean-cube (hypercube) distributed-
// memory multiprocessor, the machine model of the SPAA 1989 paper.
//
// A Machine with dimension d has p = 2^d processors, one goroutine
// each, connected by bidirectional links along the d cube dimensions:
// processors a and a XOR 2^i are neighbors along dimension i. All
// inter-processor data moves through these links as messages of 64-bit
// words. Each processor carries a virtual clock driven by the cost
// model in internal/costmodel: a send advances the sender's clock by
// tau + n*t_c, a receive advances the receiver's clock to at least the
// message's arrival time, and local arithmetic advances the clock by
// n*t_f. The run time of an SPMD program is the maximum clock over all
// processors when every goroutine has returned, which is how the
// Connection Machine timings of the paper are reproduced as simulated
// microseconds independent of the host.
//
// The port model follows the paper's implementation section: by
// default a processor drives one port at a time, so sends on distinct
// dimensions serialize. The all-port machine (every processor can use
// all d links concurrently) is available through the cost model for
// the A1 ablation; ExchangeAll charges the maximum rather than the sum
// of the per-dimension costs under that model.
//
// # Host parallelism
//
// The 2^d processor goroutines execute host-parallel: between
// communication points a processor's body runs freely on whatever
// host core the Go scheduler gives it, and it parks only at the
// virtual-time frontier — a Recv whose message has not been posted
// yet, or a Send against a full link buffer (run-ahead backpressure,
// see linkCap). Simulated results are bit-identical at every
// GOMAXPROCS value because nothing in the simulation depends on host
// interleaving: every directed link is a single-producer
// single-consumer FIFO (the only sender along (dst, d) is dst's
// dimension-d neighbor), receives are addressed by (link, program
// order) rather than by time, virtual arrival times travel inside the
// messages, and all remaining hot-path state (clock, counters, trace,
// span recorder, flight ring, buffer pool) is owned by exactly one
// goroutine. Cross-goroutine handoffs — payload buffers inside
// messages, per-run setup and the post-run fold — synchronize through
// the link channels, the work channels and rc.wg, which provide the
// happens-before edges. The only concurrency-shaped machine state is
// the host-scheduler instrumentation (SchedStats), which uses atomics
// on the park slow paths and is explicitly excluded from every
// determinism guarantee.
package hypercube

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vmprim/internal/costmodel"
	"vmprim/internal/flightrec"
	"vmprim/internal/gray"
	"vmprim/internal/obs"
)

// DefaultRecvTimeout bounds how long a processor waits for a message
// before declaring the program deadlocked. Collective protocols in
// this library complete in well under a second of host time; a stuck
// Recv means a protocol bug, and failing fast beats hanging a test
// run.
const DefaultRecvTimeout = 30 * time.Second

// defaultRecvTimeoutNs, when nonzero, overrides DefaultRecvTimeout for
// machines constructed afterwards (set from cmd/vmprim's -recv-timeout
// flag before any machine exists; atomic so tests may race it safely).
var defaultRecvTimeoutNs atomic.Int64

// SetDefaultRecvTimeout changes the deadlock-watchdog timeout applied
// to machines constructed from now on; existing machines keep theirs
// (use SetRecvTimeout for a per-machine override). d <= 0 restores
// DefaultRecvTimeout.
func SetDefaultRecvTimeout(d time.Duration) {
	if d <= 0 {
		defaultRecvTimeoutNs.Store(0)
		return
	}
	defaultRecvTimeoutNs.Store(int64(d))
}

// currentDefaultRecvTimeout resolves the timeout New applies.
func currentDefaultRecvTimeout() time.Duration {
	if ns := defaultRecvTimeoutNs.Load(); ns > 0 {
		return time.Duration(ns)
	}
	return DefaultRecvTimeout
}

// defaultFlightDepth is the per-processor flight-recorder capacity
// (events retained) unless overridden with SetFlightRecorderDepth.
const defaultFlightDepth = 32

// message is one inter-processor transfer: a payload of words, a
// protocol tag for error detection, and the virtual arrival time.
// Under critical-path recording cp carries a snapshot of the sender's
// chain-attribution vector (see critpath.go), pooled like the payload.
type message struct {
	words  []float64
	tag    int
	arrive costmodel.Time
	cp     []float64
}

// Machine is a simulated hypercube multiprocessor. Construct it with
// New, then execute SPMD programs with Run. A Machine is reusable: Run
// may be called any number of times, sequentially.
//
// The machine keeps one worker goroutine per processor alive across
// Run calls (spawned lazily on the first Run), so benchmark loops and
// multi-phase applications that Run once per step do not pay goroutine
// spawn and teardown for every call. The workers exit when Close is
// called or, failing that, when the Machine is garbage collected.
type Machine struct {
	dim    int
	p      int
	params costmodel.Params

	// in[pid][d] carries messages addressed to pid along dimension d.
	in [][]chan message

	recvTimeout time.Duration

	// procs are the persistent per-processor handles, reset and reused
	// by every Run.
	procs []*Proc
	eng   *engine

	mu         sync.Mutex
	elapsed    costmodel.Time
	stats      Stats
	sched      SchedStats
	clocks     []costmodel.Time
	traceLimit int
	trace      []TraceEvent

	// Host-scheduler gauges, touched only on the park slow paths:
	// parked counts processor goroutines currently blocked at the
	// virtual-time frontier, maxParked its per-run high-water mark.
	// These are the one piece of machine state written concurrently by
	// the workers; they feed SchedStats and never the simulation.
	parked    atomic.Int32
	maxParked atomic.Int32

	// Profiling state (see profile.go): profEnabled gates the span
	// machinery for the next Run, profile holds the last profiled
	// run's result. vols caches LinkVolumes' per-link word map, built
	// lazily from the always-on counters and invalidated by Run.
	profEnabled bool
	profile     *obs.Profile
	vols        map[int]map[int]int

	// stream is the live event sink armed with EnableStream (see
	// stream.go), nil when streaming is off.
	stream obs.StreamSink

	// Critical-path state (see critpath.go): critEnabled gates chain
	// recording for the next Run, crit holds the last recorded path,
	// confThreshold the conformance flagging ratio (0 means
	// obs.DefaultConformanceThreshold).
	critEnabled   bool
	crit          *obs.CritPath
	confThreshold float64

	// postmortem is the report of the most recent failed Run (see
	// postmortem.go); nil after a successful one. met is the machine's
	// metrics registry, folded from the per-processor counters once per
	// Run.
	postmortem *flightrec.Report
	met        machMetrics
}

// engine is the persistent worker pool. It is a separate object so the
// worker goroutines hold no reference to the Machine: when the Machine
// becomes unreachable its finalizer closes stop and the workers exit,
// instead of pinning the Machine alive forever.
type engine struct {
	work []chan *runCtx // one slot per worker, buffered 1
	stop chan struct{}
}

// runCtx carries one Run invocation to the workers, including the
// per-run configuration each worker needs to reset its own Proc
// (resetForRun executes on the worker goroutine, so the reset work
// parallelizes across host cores and every Proc field stays
// single-writer).
type runCtx struct {
	body   func(*Proc)
	procs  []*Proc
	abort  chan struct{}
	errs   chan procError
	prof   bool
	crit   bool
	stream obs.StreamSink

	wg        sync.WaitGroup
	abortOnce sync.Once
}

// linkCap returns the buffer capacity of each link channel for a cube
// of dimension dim. The invariant that sizes it: collectives are built
// from matched exchange phases in which each directed link carries at
// most one message before the partner receives, so capacity 1 already
// guarantees deadlock freedom. Capacity above that only controls how
// far a fast processor may pipeline ahead of a slow neighbor on one
// link without parking its goroutine; a full-cube collective issues at
// most one message per link per step and has O(dim) steps, so a small
// multiple of dim absorbs a whole collective of run-ahead. Beyond the
// buffer the sender blocks, which throttles host-side pipelining but
// never affects simulated time.
func linkCap(dim int) int { return 4 * (dim + 1) }

// Stats aggregates communication and arithmetic counters over one Run.
type Stats struct {
	// Messages is the total number of link messages sent.
	Messages int64
	// Words is the total number of 64-bit words transferred over links.
	Words int64
	// Flops is the total number of local floating-point operations.
	Flops int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Messages += other.Messages
	s.Words += other.Words
	s.Flops += other.Flops
}

// SchedStats describes the host-side scheduling of one Run: how often
// processor goroutines parked at the virtual-time frontier and how
// far host parallelism was throttled. Unlike every simulated quantity
// these counters are NOT deterministic — they depend on GOMAXPROCS,
// host load and goroutine interleaving — so they are diagnostics
// only, excluded from profiles' JSON/Chrome exports and from the
// bit-identity guarantees. A high RecvParks/Messages ratio means the
// workload synchronizes at nearly every message (little run-ahead to
// overlap); SendStalls > 0 means linkCap backpressure bounded a fast
// processor's run-ahead.
type SchedStats struct {
	// RecvParks counts receives that found the link empty and parked
	// the goroutine until the message was posted (frontier waits).
	RecvParks int64
	// SendStalls counts sends that found the link buffer full and
	// parked until the receiver drained it (run-ahead backpressure).
	SendStalls int64
	// Wakeups counts parks resumed by link traffic (as opposed to
	// aborts); RecvParks + SendStalls - Wakeups parks died with the run.
	Wakeups int64
	// MaxParked is the high-water mark of concurrently parked
	// processor goroutines over the run.
	MaxParked int
}

// Add accumulates other into s.
func (s *SchedStats) Add(other SchedStats) {
	s.RecvParks += other.RecvParks
	s.SendStalls += other.SendStalls
	s.Wakeups += other.Wakeups
	if other.MaxParked > s.MaxParked {
		s.MaxParked = other.MaxParked
	}
}

// parkEnter registers a processor goroutine blocking at the frontier;
// parkExit undoes it. Both run only on the slow (already-blocking)
// paths, so the atomics never tax a run that keeps its links warm.
func (m *Machine) parkEnter() {
	n := m.parked.Add(1)
	for {
		max := m.maxParked.Load()
		if n <= max || m.maxParked.CompareAndSwap(max, n) {
			return
		}
	}
}

func (m *Machine) parkExit() { m.parked.Add(-1) }

// New returns a machine of dimension dim (2^dim processors) governed
// by the given cost parameters. It returns an error if dim is negative
// or unreasonably large, or if the parameters are invalid.
func New(dim int, params costmodel.Params) (*Machine, error) {
	if dim < 0 || dim > 20 {
		return nil, fmt.Errorf("hypercube: dimension %d out of range [0,20]", dim)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	p := 1 << dim
	m := &Machine{
		dim:         dim,
		p:           p,
		params:      params,
		in:          make([][]chan message, p),
		recvTimeout: currentDefaultRecvTimeout(),
		procs:       make([]*Proc, p),
		clocks:      make([]costmodel.Time, p),
		met:         newMachMetrics(),
	}
	for pid := 0; pid < p; pid++ {
		chans := make([]chan message, dim)
		for d := 0; d < dim; d++ {
			// Buffered so that matched exchange phases (both sides
			// send, then both receive) never block on the send; see
			// linkCap for how the capacity is derived.
			chans[d] = make(chan message, linkCap(dim))
		}
		m.in[pid] = chans
		m.procs[pid] = &Proc{m: m, id: pid, linkWords: make([]int64, dim)}
		m.procs[pid].rec.Init(defaultFlightDepth)
	}
	return m, nil
}

// SetFlightRecorderDepth resizes every processor's flight-recorder
// ring to hold k events (rounded up to a power of two; k <= 0 disables
// recording). It must be called between runs, not during one.
func (m *Machine) SetFlightRecorderDepth(k int) {
	for _, pr := range m.procs {
		pr.rec.Init(k)
	}
}

// MustNew is New for callers with static arguments; it panics on error.
func MustNew(dim int, params costmodel.Params) *Machine {
	m, err := New(dim, params)
	if err != nil {
		panic(err)
	}
	return m
}

// Dim returns the cube dimension d.
func (m *Machine) Dim() int { return m.dim }

// P returns the number of processors, 2^d.
func (m *Machine) P() int { return m.p }

// Params returns the machine's cost parameters.
func (m *Machine) Params() costmodel.Params { return m.params }

// SetRecvTimeout overrides the deadlock-detection timeout. It must be
// called between runs, not during one.
func (m *Machine) SetRecvTimeout(d time.Duration) { m.recvTimeout = d }

// RecvTimeout reports the machine's current deadlock-detection
// timeout.
func (m *Machine) RecvTimeout() time.Duration { return m.recvTimeout }

// Elapsed returns the simulated time of the most recent Run: the
// maximum virtual clock over all processors.
func (m *Machine) Elapsed() costmodel.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.elapsed
}

// LastStats returns the communication/arithmetic counters of the most
// recent Run.
func (m *Machine) LastStats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// SchedStats returns the host-scheduler instrumentation of the most
// recent Run: frontier parks, backpressure stalls, wakeups and the
// parked-goroutine high-water mark. These describe the host
// execution, vary with GOMAXPROCS, and are NOT covered by the
// simulator's determinism guarantees.
func (m *Machine) SchedStats() SchedStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sched
}

// Clocks returns every processor's final virtual clock from the most
// recent Run, indexed by processor address. The spread between the
// minimum and maximum is the run's load imbalance.
func (m *Machine) Clocks() []costmodel.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]costmodel.Time, len(m.clocks))
	copy(out, m.clocks)
	return out
}

// procError carries a panic out of a processor goroutine.
type procError struct {
	pid int
	val any
}

// Run executes body as an SPMD program: one invocation per processor,
// concurrently, each receiving its own *Proc. Run returns the
// simulated elapsed time (maximum clock over processors) and the first
// error; a panic in any processor aborts the run and is reported as an
// error with the processor id. Run drains all links afterwards so the
// machine is clean for the next program.
func (m *Machine) Run(body func(*Proc)) (costmodel.Time, error) {
	m.ensureEngine()
	rc := &runCtx{
		body:  body,
		procs: m.procs,
		abort: make(chan struct{}),
		errs:  make(chan procError, m.p),
	}
	rc.prof = m.profEnabled
	rc.crit = m.critEnabled
	rc.stream = m.stream
	rc.wg.Add(m.p)
	for pid := 0; pid < m.p; pid++ {
		// The per-run Proc reset happens on the worker goroutine
		// (resetForRun, called from runBody): the O(p*dim) reset work
		// parallelizes across host cores, and every Proc field is
		// written only by its owning goroutine. From here until
		// rc.wg.Wait returns, this goroutine must not touch any Proc.
		m.eng.work[pid] <- rc
	}
	rc.wg.Wait()
	close(rc.errs)

	var firstErr error
	failedPid := -1
	perrs := make([]procError, 0)
	for pe := range rc.errs {
		perrs = append(perrs, pe)
	}
	sort.Slice(perrs, func(i, j int) bool { return perrs[i].pid < perrs[j].pid })
	for _, pe := range perrs {
		if _, aborted := pe.val.(abortedError); aborted {
			continue // secondary casualty of the first panic
		}
		firstErr = fmt.Errorf("hypercube: processor %d: %v", pe.pid, pe.val)
		failedPid = pe.pid
		break
	}
	if firstErr == nil && len(perrs) > 0 {
		firstErr = fmt.Errorf("hypercube: processor %d aborted", perrs[0].pid)
		failedPid = perrs[0].pid
	}

	var elapsed costmodel.Time
	var st Stats
	var sch SchedStats
	for _, pr := range m.procs {
		sch.RecvParks += pr.nRecvParks
		sch.SendStalls += pr.nSendStalls
		sch.Wakeups += pr.nWakeups
	}
	sch.MaxParked = int(m.maxParked.Load())
	m.parked.Store(0)
	m.maxParked.Store(0)
	m.mu.Lock()
	for i, pr := range m.procs {
		m.clocks[i] = pr.clock
		if pr.clock > elapsed {
			elapsed = pr.clock
		}
		st.Messages += pr.nMsgs
		st.Words += pr.nWords
		st.Flops += pr.nFlops
	}
	m.elapsed = elapsed
	m.stats = st
	m.sched = sch
	m.vols = nil // link counters changed; LinkVolumes rebuilds lazily
	m.mu.Unlock()
	m.collectTrace(m.procs)
	if rc.stream != nil {
		m.emitRunSummary(rc.stream, float64(elapsed))
	}

	// The critical path is built on success and on failure alike: a
	// failed run's chain up to the death rides along in the
	// post-mortem.
	var crit *obs.CritPath
	if m.critEnabled {
		crit = m.buildCritPath(elapsed)
	}
	var prof *obs.Profile
	if m.profEnabled && firstErr == nil {
		prof = m.buildProfile()
		prof.Crit = crit
	}

	// On failure, assemble the post-mortem while the links still hold
	// their undelivered messages (buildPostMortem census-drains them);
	// the report rides along on the returned error.
	var pm *flightrec.Report
	if firstErr != nil {
		pm = m.buildPostMortem(firstErr.Error(), failedPid)
		pm.Crit = crit
		firstErr = &RunError{Err: firstErr, Report: pm}
	}
	m.mu.Lock()
	m.profile = prof
	m.postmortem = pm
	m.crit = crit
	m.mu.Unlock()

	m.updateMetrics(elapsed, sch, firstErr != nil, crit)
	m.drain()
	return elapsed, firstErr
}

// ensureEngine lazily starts the persistent worker pool and arms the
// garbage-collection backstop that shuts it down.
func (m *Machine) ensureEngine() {
	if m.eng != nil {
		return
	}
	eng := &engine{
		work: make([]chan *runCtx, m.p),
		stop: make(chan struct{}),
	}
	for pid := 0; pid < m.p; pid++ {
		eng.work[pid] = make(chan *runCtx, 1)
		go worker(pid, eng.work[pid], eng.stop)
	}
	m.eng = eng
	runtime.SetFinalizer(m, (*Machine).Close)
}

// worker is the persistent goroutine of one processor. It deliberately
// closes over only its channels, never the Machine (see engine).
func worker(pid int, work chan *runCtx, stop chan struct{}) {
	for {
		select {
		case rc := <-work:
			runBody(pid, rc)
		case <-stop:
			return
		}
	}
}

// runBody executes one processor's share of a Run with the same panic
// containment the seed's per-run goroutines had.
func runBody(pid int, rc *runCtx) {
	defer rc.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			rc.errs <- procError{pid: pid, val: r}
			rc.abortOnce.Do(func() { close(rc.abort) })
		}
	}()
	pr := rc.procs[pid]
	pr.resetForRun(rc)
	rc.body(pr)
	pr.checkSpansClosed()
}

// resetForRun clears the processor's per-run state. It runs on the
// processor's own worker goroutine, never the Run caller's, so every
// hot-path Proc field keeps a single writer; the work-channel handoff
// orders it after Run's bookkeeping and before the SPMD body, and
// rc.wg orders the previous run's reads before it.
func (p *Proc) resetForRun(rc *runCtx) {
	p.clock = 0
	p.nMsgs, p.nWords, p.nFlops = 0, 0, 0
	p.tComp, p.tStart, p.tXfer = 0, 0, 0
	for d := range p.linkWords {
		p.linkWords[d] = 0
	}
	// Chain recording attributes the path to spans, so it activates
	// the span machinery even when no Profile will be built.
	p.prof = rc.prof || rc.crit
	if p.prof || len(p.ps.nodes) > 0 {
		p.ps.reset()
	}
	p.stream = nil
	if rc.stream != nil && p.prof && p.id == 0 {
		p.stream = rc.stream
	}
	p.streamClosed = 0
	p.crit = rc.crit
	if p.crit {
		p.cpReset()
	} else if len(p.cp) > 0 {
		p.cp = p.cp[:0]
	}
	p.nColl, p.nArms, p.nRearms = 0, 0, 0
	p.nRecvParks, p.nSendStalls, p.nWakeups = 0, 0, 0
	p.pool.gets, p.pool.hits = 0, 0
	p.msgHist = [msgHistBins]int64{}
	p.rec.Reset()
	p.waitKind = flightrec.WaitNone
	for i := range p.captured {
		p.captured[i] = nil
	}
	p.captured = p.captured[:0]
	p.abort = rc.abort
	p.trace = p.trace[:0]
	if p.timerArmed {
		// Disarm the watchdog between runs so a timeout changed via
		// SetRecvTimeout takes effect at the next arming.
		p.timer.Stop()
		p.timerArmed = false
	}
}

// Close shuts down the persistent worker goroutines. It is optional —
// an unreachable Machine is cleaned up by the garbage collector — and
// idempotent, but Run must not be called after Close.
func (m *Machine) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.eng != nil {
		close(m.eng.stop)
		m.eng = nil
		runtime.SetFinalizer(m, nil)
	}
}

// drain empties every link channel (messages left behind by an aborted
// or buggy program).
func (m *Machine) drain() {
	for pid := range m.in {
		for d := range m.in[pid] {
			ch := m.in[pid][d]
			for drained := false; !drained; {
				select {
				case <-ch:
				default:
					drained = true
				}
			}
		}
	}
}

// linksEmpty reports whether every link channel is empty; tests use it
// to assert that drain left the machine clean.
func (m *Machine) linksEmpty() bool {
	for pid := range m.in {
		for d := range m.in[pid] {
			if len(m.in[pid][d]) != 0 {
				return false
			}
		}
	}
	return true
}

// abortedError is the panic value used when a processor is cancelled
// because a sibling failed first.
type abortedError struct{}

func (abortedError) Error() string { return "aborted by sibling failure" }

// Proc is one simulated processor's handle, valid only inside the body
// passed to Run and only on that processor's goroutine. Procs are
// persistent: the machine reuses them (and their buffer pools) across
// runs.
type Proc struct {
	m     *Machine
	id    int
	clock costmodel.Time
	abort chan struct{}

	nMsgs  int64
	nWords int64
	nFlops int64
	trace  []TraceEvent

	// Always-on attribution counters: the clock split into compute /
	// start-up / transfer (idle is derived as clock minus their sum),
	// and the words posted per outgoing link. A few adds per
	// operation; never allocated on the hot path.
	tComp, tStart, tXfer costmodel.Time
	linkWords            []int64

	// Span recorder, active only when the machine's EnableProfile is
	// set (see profile.go).
	prof bool
	ps   profState

	// Live event sink (see stream.go), non-nil only on processor 0 of
	// a streamed profiled run; streamClosed counts closed spans for
	// the periodic progress events.
	stream       obs.StreamSink
	streamClosed int64

	// Critical-path chain state, active only under EnableCritPath:
	// crit gates the hot-path hooks, cp is the encoded
	// chain-attribution vector (see critpath.go).
	crit bool
	cp   []float64

	pool bufPool

	// Flight recorder and post-mortem state (see postmortem.go). rec is
	// the bounded event ring; the wait registers say what the processor
	// is blocked on right now (written by this goroutine on the slow
	// paths, read by the machine only after the run has ended); captured
	// holds payloads handed over with Capture. All feed the post-mortem
	// report of a failed run.
	rec       flightrec.Ring
	waitKind  flightrec.WaitKind
	waitDim   int
	waitTag   int
	waitSince costmodel.Time
	captured  [][]float64

	// Per-run metric counters, folded into the machine's registry once
	// per Run: collective entries, watchdog arms/re-arms, and the
	// message-size histogram bins (bounds in msgWordBounds).
	nColl   int64
	nArms   int64
	nRearms int64
	msgHist [msgHistBins]int64

	// Host-scheduler counters (see SchedStats): parks taken at the
	// virtual-time frontier and their resumptions. Bumped only on the
	// blocking slow paths; host-nondeterministic by nature.
	nRecvParks  int64
	nSendStalls int64
	nWakeups    int64

	// Deadlock watchdog state. The timer is armed at most once per
	// timeout window (not per blocking Recv): recvSeq counts delivered
	// messages and timerSeq records its value at arming, so a fire with
	// progress in between just re-arms. Busy steady-state runs touch
	// the timer heap only once per window.
	timer      *time.Timer
	timerArmed bool
	recvSeq    uint64
	timerSeq   uint64
}

// GetBuf returns a scratch buffer of length n from this processor's
// pool, with arbitrary contents: the caller must fully overwrite it
// before reading. Pair with Recycle for allocation-free steady state.
func (p *Proc) GetBuf(n int) []float64 { return p.pool.get(n) }

// Recycle returns a buffer to this processor's pool. The caller must
// own buf and must not touch it afterwards; recycling a payload that is
// still referenced elsewhere (still in flight, or retained by another
// holder) corrupts later messages. Collectives recycle the payloads
// they consume; payloads returned to application code are the
// application's to keep or recycle.
func (p *Proc) Recycle(buf []float64) { p.pool.put(buf) }

// ID returns this processor's cube address in [0, P).
func (p *Proc) ID() int { return p.id }

// Dim returns the cube dimension.
func (p *Proc) Dim() int { return p.m.dim }

// P returns the number of processors.
func (p *Proc) P() int { return p.m.p }

// Params returns the machine cost parameters.
func (p *Proc) Params() costmodel.Params { return p.m.params }

// Clock returns this processor's current virtual time.
func (p *Proc) Clock() costmodel.Time { return p.clock }

// AdvanceTo moves the virtual clock forward to at least t. It never
// moves the clock backwards. Under critical-path recording the
// advance counts as idle time on the chain (Recv accounts its own
// advances causally and does not go through here).
func (p *Proc) AdvanceTo(t costmodel.Time) {
	if t > p.clock {
		if p.crit {
			p.cpIdle(p.clock, t)
		}
		p.clock = t
	}
}

// Neighbor returns the cube address of the neighbor along dimension d.
func (p *Proc) Neighbor(d int) int {
	p.checkDim(d)
	return p.id ^ (1 << d)
}

// Compute charges flops local floating-point operations to the clock.
func (p *Proc) Compute(flops int) {
	if flops < 0 {
		panic("hypercube: negative flop count")
	}
	p.nFlops += int64(flops)
	c := p.m.params.FlopCost(flops)
	p.clock += c
	p.tComp += c
	if p.crit {
		p.cpCompute(c)
	}
}

// Send transmits words to the neighbor along dimension d with the
// given protocol tag. The payload is copied, so the caller may reuse
// the slice. The sender's clock advances by the send cost and the
// message arrives at that time.
func (p *Proc) Send(d, tag int, words []float64) {
	p.checkDim(d)
	p.clock += p.m.params.SendCost(len(words))
	p.tStart += p.m.params.CommStartup
	p.tXfer += costmodel.Time(len(words)) * p.m.params.CommPerWord
	if p.crit {
		p.cpChargeSend(d, len(words))
	}
	p.post(d, tag, words, p.clock)
}

// post enqueues a copy of words on the neighbor's inbound link with
// the given arrival time. The copy comes from the sender's buffer pool
// and is recycled into the receiver's pool once the receiver consumes
// it.
func (p *Proc) post(d, tag int, words []float64, arrive costmodel.Time) {
	cp := p.pool.get(len(words))
	copy(cp, words)
	p.nMsgs++
	p.nWords += int64(len(words))
	p.linkWords[d] += int64(len(words))
	dst := p.id ^ (1 << d)
	if lim := p.m.traceLimit; lim > 0 && len(p.trace) < lim {
		p.trace = append(p.trace, TraceEvent{
			Time: arrive, Src: p.id, Dst: dst, Dim: d, Words: len(words), Tag: tag,
		})
	}
	p.msgHist[msgBin(len(words))]++
	p.record(flightrec.KindSend, "", d, tag, len(words), arrive)
	msg := message{words: cp, tag: tag, arrive: arrive}
	if p.crit {
		msg.cp = p.cpSnapshot()
	}
	ch := p.m.in[dst][d]
	select {
	case ch <- msg:
	default:
		// Link buffer full: run-ahead backpressure. Note the blocked
		// send in the wait registers so a post-mortem can name it,
		// count the stall for SchedStats, then park.
		p.waitKind = flightrec.WaitSend
		p.waitDim, p.waitTag = d, tag
		p.waitSince = arrive
		p.nSendStalls++
		p.m.parkEnter()
		select {
		case ch <- msg:
			p.m.parkExit()
			p.nWakeups++
			p.waitKind = flightrec.WaitNone
		case <-p.abort:
			p.m.parkExit()
			panic(abortedError{})
		}
	}
}

// record appends one event to this processor's flight recorder,
// stamping the current open profiler span (if any). One struct store
// per call; labels must be static strings so recording never
// allocates.
func (p *Proc) record(kind flightrec.Kind, label string, dim, tag, words int, vt costmodel.Time) {
	span := -1
	depth := len(p.ps.stack)
	if depth > 0 {
		span = p.ps.stack[depth-1].node
	}
	p.rec.Record(flightrec.Event{
		VT: vt, Kind: kind, Label: label,
		Dim: dim, Tag: tag, Words: words,
		Span: span, Depth: depth,
	})
}

// NoteCollective records the entry into a named collective protocol
// (or router phase) on this processor's flight recorder and counts it
// toward the machine's collective-invocation metric. mask is the
// subcube dimension mask and tag the protocol tag; name must be a
// static string so recording never allocates.
func (p *Proc) NoteCollective(name string, mask, tag int) {
	p.nColl++
	p.record(flightrec.KindCollective, name, mask, tag, 0, p.clock)
}

// maxCaptured bounds the payloads the recorder retains per processor.
const maxCaptured = 4

// Capture hands buf to the flight recorder for post-mortem inspection:
// ownership transfers to the recorder, so the caller must not use or
// Recycle buf afterwards. The recorder keeps the newest maxCaptured
// payloads; they appear in the post-mortem report of a failed run and
// are dropped at the next Run. Recv uses it to preserve the offending
// payload of a tag mismatch; application code may capture its own
// evidence before panicking.
func (p *Proc) Capture(buf []float64) {
	if len(p.captured) < maxCaptured {
		p.captured = append(p.captured, buf)
	} else {
		copy(p.captured, p.captured[1:])
		p.captured[maxCaptured-1] = buf
	}
	p.record(flightrec.KindCapture, "", -1, 0, len(buf), p.clock)
}

// Recv receives the next message on dimension d, checks that its tag
// matches wantTag (a mismatch is a protocol bug and panics), advances
// the clock to the arrival time, and returns the payload. The returned
// slice is owned by the caller.
func (p *Proc) Recv(d, wantTag int) []float64 {
	p.checkDim(d)
	var msg message
	ch := p.m.in[p.id][d]
	select {
	case msg = <-ch:
	case <-p.abort:
		panic(abortedError{})
	default:
		// Slow path: wait under the deadlock watchdog. The go directive
		// is >= 1.23, so Stop/Reset leave no stale fire in the timer
		// channel. The timer is not stopped on a successful receive; a
		// later fire that finds progress (recvSeq advanced past
		// timerSeq) re-arms and keeps waiting, so a genuine deadlock is
		// reported within two timeout windows while the steady state
		// pays no per-Recv timer traffic. The wait registers make the
		// blocked state visible to the post-mortem assembler.
		p.waitKind = flightrec.WaitRecv
		p.waitDim, p.waitTag = d, wantTag
		p.waitSince = p.clock
		p.nRecvParks++
		p.m.parkEnter()
		for {
			if !p.timerArmed {
				if p.timer == nil {
					p.timer = time.NewTimer(p.m.recvTimeout)
				} else {
					p.timer.Reset(p.m.recvTimeout)
				}
				p.timerArmed = true
				p.timerSeq = p.recvSeq
				p.nArms++
			}
			fired := false
			select {
			case msg = <-ch:
			case <-p.abort:
				p.m.parkExit()
				panic(abortedError{})
			case <-p.timer.C:
				p.timerArmed = false
				if p.recvSeq == p.timerSeq {
					p.m.parkExit()
					panic(fmt.Sprintf("recv timeout on dim %d (tag %d): deadlock", d, wantTag))
				}
				p.nRearms++
				fired = true
			}
			if !fired {
				break
			}
		}
		p.m.parkExit()
		p.nWakeups++
		p.waitKind = flightrec.WaitNone
	}
	p.recvSeq++
	if msg.tag != wantTag {
		// Preserve the offending payload for the post-mortem before
		// dying: the report shows its length and leading words.
		p.Capture(msg.words)
		panic(fmt.Sprintf("tag mismatch on dim %d: got %d, want %d", d, msg.tag, wantTag))
	}
	if p.crit {
		p.cpRecv(&msg, d)
	}
	if msg.arrive > p.clock {
		p.clock = msg.arrive
	}
	p.record(flightrec.KindRecv, "", d, wantTag, len(msg.words), p.clock)
	return msg.words
}

// Exchange performs the paired send/receive with the neighbor along
// dimension d that underlies every recursive-halving and -doubling
// collective: both sides send words, both receive the partner's words.
func (p *Proc) Exchange(d, tag int, words []float64) []float64 {
	p.Send(d, tag, words)
	return p.Recv(d, tag)
}

// ExchangeAll performs one exchange phase on several distinct
// dimensions at once: payloads[i] goes to the neighbor along dims[i],
// and the returned slice holds the corresponding received payloads.
// Under the one-port model the sends serialize (costs add); under the
// all-port model (Params.AllPorts) the phase is charged the maximum
// single-dimension cost, which is ablation A1's machine.
func (p *Proc) ExchangeAll(dims []int, tag int, payloads [][]float64) [][]float64 {
	if len(dims) != len(payloads) {
		panic("hypercube: ExchangeAll dims/payloads length mismatch")
	}
	seen := 0
	for _, d := range dims {
		p.checkDim(d)
		bit := 1 << d
		if seen&bit != 0 {
			panic(fmt.Sprintf("hypercube: ExchangeAll duplicate dimension %d", d))
		}
		seen |= bit
	}
	start := p.clock
	if p.m.params.AllPorts {
		// Under chain recording every posted message must carry the
		// chain as of the phase start plus its own send charge (the
		// ports run concurrently, so the per-message chains branch from
		// the same snapshot rather than accumulating).
		var pre []float64
		if p.crit {
			pre = p.cpSnapshot()
		}
		var maxCost costmodel.Time
		maxWords, maxDim := 0, -1
		for i, d := range dims {
			c := p.m.params.SendCost(len(payloads[i]))
			if c > maxCost {
				maxCost = c
			}
			if maxDim < 0 || len(payloads[i]) > maxWords {
				maxWords, maxDim = len(payloads[i]), d
			}
			p.clock = start + c
			if p.crit {
				p.cpRestore(pre)
				p.cpChargeSend(d, len(payloads[i]))
			}
			p.post(d, tag, payloads[i], p.clock)
		}
		p.clock = start + maxCost
		// The phase charges the largest single send; attribute one
		// start-up and the largest payload's transfer time.
		if len(dims) > 0 {
			p.tStart += p.m.params.CommStartup
			p.tXfer += costmodel.Time(maxWords) * p.m.params.CommPerWord
			if p.crit {
				p.cpRestore(pre)
				p.cpChargeSend(maxDim, maxWords)
			}
		}
		if pre != nil {
			p.pool.put(pre)
		}
	} else {
		for i, d := range dims {
			p.Send(d, tag, payloads[i])
		}
	}
	out := make([][]float64, len(dims))
	for i, d := range dims {
		out[i] = p.Recv(d, tag)
	}
	return out
}

// Barrier synchronizes all processors in the subcube spanned by the
// dimension mask (use FullMask for the whole machine) and equalizes
// their virtual clocks to the maximum participant clock plus the
// synchronization cost. It is implemented as a zero-payload dimension
// exchange, which is also how a real cube synchronizes.
func (p *Proc) Barrier(mask, tag int) {
	for _, d := range gray.Dims(mask) {
		p.Exchange(d, tag, nil)
	}
}

// FullMask returns the dimension mask covering the whole cube.
func (p *Proc) FullMask() int { return (1 << p.m.dim) - 1 }

// RouteCharge charges the clock for forwarding n words one hop through
// the general router. The router package uses it so that routed and
// structured traffic share one clock.
func (p *Proc) RouteCharge(n int) {
	p.clock += p.m.params.RouteHopCost(n)
	p.tStart += p.m.params.RouteStartup
	p.tXfer += costmodel.Time(n) * p.m.params.RoutePerWord
	if p.crit {
		p.cpRoute(p.m.params.RouteStartup, costmodel.Time(n)*p.m.params.RoutePerWord)
	}
}

// RoutePhaseCharge charges the clock for one dimension-ordered routing
// phase in which this processor forwards msgs messages totalling n
// words: router start-up, per-word transfer, and per-message handling
// overhead (the cost of not combining messages).
func (p *Proc) RoutePhaseCharge(msgs, n int) {
	p.clock += p.m.params.RoutePhaseCost(msgs, n)
	p.tStart += p.m.params.RouteStartup + costmodel.Time(msgs)*p.m.params.RoutePerMsg
	p.tXfer += costmodel.Time(n) * p.m.params.RoutePerWord
	if p.crit {
		p.cpRoute(p.m.params.RouteStartup+costmodel.Time(msgs)*p.m.params.RoutePerMsg,
			costmodel.Time(n)*p.m.params.RoutePerWord)
	}
}

func (p *Proc) checkDim(d int) {
	if d < 0 || d >= p.m.dim {
		panic(fmt.Sprintf("hypercube: dimension %d out of range [0,%d)", d, p.m.dim))
	}
}
