// Package hypercube simulates a Boolean-cube (hypercube) distributed-
// memory multiprocessor, the machine model of the SPAA 1989 paper.
//
// A Machine with dimension d has p = 2^d processors, one goroutine
// each, connected by bidirectional links along the d cube dimensions:
// processors a and a XOR 2^i are neighbors along dimension i. All
// inter-processor data moves through these links as messages of 64-bit
// words. Each processor carries a virtual clock driven by the cost
// model in internal/costmodel: a send advances the sender's clock by
// tau + n*t_c, a receive advances the receiver's clock to at least the
// message's arrival time, and local arithmetic advances the clock by
// n*t_f. The run time of an SPMD program is the maximum clock over all
// processors when every goroutine has returned, which is how the
// Connection Machine timings of the paper are reproduced as simulated
// microseconds independent of the host.
//
// The port model follows the paper's implementation section: by
// default a processor drives one port at a time, so sends on distinct
// dimensions serialize. The all-port machine (every processor can use
// all d links concurrently) is available through the cost model for
// the A1 ablation; ExchangeAll charges the maximum rather than the sum
// of the per-dimension costs under that model.
package hypercube

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"vmprim/internal/costmodel"
	"vmprim/internal/gray"
)

// DefaultRecvTimeout bounds how long a processor waits for a message
// before declaring the program deadlocked. Collective protocols in
// this library complete in well under a second of host time; a stuck
// Recv means a protocol bug, and failing fast beats hanging a test
// run.
const DefaultRecvTimeout = 30 * time.Second

// message is one inter-processor transfer: a payload of words, a
// protocol tag for error detection, and the virtual arrival time.
type message struct {
	words  []float64
	tag    int
	arrive costmodel.Time
}

// Machine is a simulated hypercube multiprocessor. Construct it with
// New, then execute SPMD programs with Run. A Machine is reusable: Run
// may be called any number of times, sequentially.
type Machine struct {
	dim    int
	p      int
	params costmodel.Params

	// in[pid][d] carries messages addressed to pid along dimension d.
	in [][]chan message

	recvTimeout time.Duration

	mu         sync.Mutex
	elapsed    costmodel.Time
	stats      Stats
	clocks     []costmodel.Time
	traceLimit int
	trace      []TraceEvent
}

// Stats aggregates communication and arithmetic counters over one Run.
type Stats struct {
	// Messages is the total number of link messages sent.
	Messages int64
	// Words is the total number of 64-bit words transferred over links.
	Words int64
	// Flops is the total number of local floating-point operations.
	Flops int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Messages += other.Messages
	s.Words += other.Words
	s.Flops += other.Flops
}

// New returns a machine of dimension dim (2^dim processors) governed
// by the given cost parameters. It returns an error if dim is negative
// or unreasonably large, or if the parameters are invalid.
func New(dim int, params costmodel.Params) (*Machine, error) {
	if dim < 0 || dim > 20 {
		return nil, fmt.Errorf("hypercube: dimension %d out of range [0,20]", dim)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	p := 1 << dim
	m := &Machine{
		dim:         dim,
		p:           p,
		params:      params,
		in:          make([][]chan message, p),
		recvTimeout: DefaultRecvTimeout,
	}
	for pid := 0; pid < p; pid++ {
		chans := make([]chan message, dim)
		for d := 0; d < dim; d++ {
			// Buffered so that matched exchange phases (both sides
			// send, then both receive) never block on the send.
			chans[d] = make(chan message, 64)
		}
		m.in[pid] = chans
	}
	return m, nil
}

// MustNew is New for callers with static arguments; it panics on error.
func MustNew(dim int, params costmodel.Params) *Machine {
	m, err := New(dim, params)
	if err != nil {
		panic(err)
	}
	return m
}

// Dim returns the cube dimension d.
func (m *Machine) Dim() int { return m.dim }

// P returns the number of processors, 2^d.
func (m *Machine) P() int { return m.p }

// Params returns the machine's cost parameters.
func (m *Machine) Params() costmodel.Params { return m.params }

// SetRecvTimeout overrides the deadlock-detection timeout. It must be
// called between runs, not during one.
func (m *Machine) SetRecvTimeout(d time.Duration) { m.recvTimeout = d }

// Elapsed returns the simulated time of the most recent Run: the
// maximum virtual clock over all processors.
func (m *Machine) Elapsed() costmodel.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.elapsed
}

// LastStats returns the communication/arithmetic counters of the most
// recent Run.
func (m *Machine) LastStats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Clocks returns every processor's final virtual clock from the most
// recent Run, indexed by processor address. The spread between the
// minimum and maximum is the run's load imbalance.
func (m *Machine) Clocks() []costmodel.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]costmodel.Time, len(m.clocks))
	copy(out, m.clocks)
	return out
}

// procError carries a panic out of a processor goroutine.
type procError struct {
	pid int
	val any
}

// Run executes body as an SPMD program: one invocation per processor,
// concurrently, each receiving its own *Proc. Run returns the
// simulated elapsed time (maximum clock over processors) and the first
// error; a panic in any processor aborts the run and is reported as an
// error with the processor id. Run drains all links afterwards so the
// machine is clean for the next program.
func (m *Machine) Run(body func(*Proc)) (costmodel.Time, error) {
	procs := make([]*Proc, m.p)
	abort := make(chan struct{})
	errs := make(chan procError, m.p)
	var wg sync.WaitGroup
	var abortOnce sync.Once

	for pid := 0; pid < m.p; pid++ {
		procs[pid] = &Proc{m: m, id: pid, abort: abort}
		wg.Add(1)
		go func(pr *Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs <- procError{pid: pr.id, val: r}
					abortOnce.Do(func() { close(abort) })
				}
			}()
			body(pr)
		}(procs[pid])
	}
	wg.Wait()
	close(errs)

	var firstErr error
	perrs := make([]procError, 0)
	for pe := range errs {
		perrs = append(perrs, pe)
	}
	sort.Slice(perrs, func(i, j int) bool { return perrs[i].pid < perrs[j].pid })
	for _, pe := range perrs {
		if _, aborted := pe.val.(abortedError); aborted {
			continue // secondary casualty of the first panic
		}
		firstErr = fmt.Errorf("hypercube: processor %d: %v", pe.pid, pe.val)
		break
	}
	if firstErr == nil && len(perrs) > 0 {
		firstErr = fmt.Errorf("hypercube: processor %d aborted", perrs[0].pid)
	}

	var elapsed costmodel.Time
	var st Stats
	clocks := make([]costmodel.Time, len(procs))
	for i, pr := range procs {
		clocks[i] = pr.clock
		if pr.clock > elapsed {
			elapsed = pr.clock
		}
		st.Messages += pr.nMsgs
		st.Words += pr.nWords
		st.Flops += pr.nFlops
	}
	m.mu.Lock()
	m.elapsed = elapsed
	m.stats = st
	m.clocks = clocks
	m.mu.Unlock()
	m.collectTrace(procs)

	m.drain()
	return elapsed, firstErr
}

// drain empties every link channel (messages left behind by an aborted
// or buggy program).
func (m *Machine) drain() {
	for pid := range m.in {
		for d := range m.in[pid] {
			for {
				select {
				case <-m.in[pid][d]:
				default:
					goto next
				}
			}
		next:
		}
	}
}

// abortedError is the panic value used when a processor is cancelled
// because a sibling failed first.
type abortedError struct{}

func (abortedError) Error() string { return "aborted by sibling failure" }

// Proc is one simulated processor's handle, valid only inside the body
// passed to Run and only on that processor's goroutine.
type Proc struct {
	m     *Machine
	id    int
	clock costmodel.Time
	abort chan struct{}

	nMsgs  int64
	nWords int64
	nFlops int64
	trace  []TraceEvent
}

// ID returns this processor's cube address in [0, P).
func (p *Proc) ID() int { return p.id }

// Dim returns the cube dimension.
func (p *Proc) Dim() int { return p.m.dim }

// P returns the number of processors.
func (p *Proc) P() int { return p.m.p }

// Params returns the machine cost parameters.
func (p *Proc) Params() costmodel.Params { return p.m.params }

// Clock returns this processor's current virtual time.
func (p *Proc) Clock() costmodel.Time { return p.clock }

// AdvanceTo moves the virtual clock forward to at least t. It never
// moves the clock backwards.
func (p *Proc) AdvanceTo(t costmodel.Time) {
	if t > p.clock {
		p.clock = t
	}
}

// Neighbor returns the cube address of the neighbor along dimension d.
func (p *Proc) Neighbor(d int) int {
	p.checkDim(d)
	return p.id ^ (1 << d)
}

// Compute charges flops local floating-point operations to the clock.
func (p *Proc) Compute(flops int) {
	if flops < 0 {
		panic("hypercube: negative flop count")
	}
	p.nFlops += int64(flops)
	p.clock += p.m.params.FlopCost(flops)
}

// Send transmits words to the neighbor along dimension d with the
// given protocol tag. The payload is copied, so the caller may reuse
// the slice. The sender's clock advances by the send cost and the
// message arrives at that time.
func (p *Proc) Send(d, tag int, words []float64) {
	p.checkDim(d)
	p.clock += p.m.params.SendCost(len(words))
	p.post(d, tag, words, p.clock)
}

// post enqueues a copy of words on the neighbor's inbound link with
// the given arrival time.
func (p *Proc) post(d, tag int, words []float64, arrive costmodel.Time) {
	cp := make([]float64, len(words))
	copy(cp, words)
	p.nMsgs++
	p.nWords += int64(len(words))
	dst := p.id ^ (1 << d)
	if lim := p.m.traceLimit; lim > 0 && len(p.trace) < lim {
		p.trace = append(p.trace, TraceEvent{
			Time: arrive, Src: p.id, Dst: dst, Dim: d, Words: len(words), Tag: tag,
		})
	}
	select {
	case p.m.in[dst][d] <- message{words: cp, tag: tag, arrive: arrive}:
	case <-p.abort:
		panic(abortedError{})
	}
}

// Recv receives the next message on dimension d, checks that its tag
// matches wantTag (a mismatch is a protocol bug and panics), advances
// the clock to the arrival time, and returns the payload. The returned
// slice is owned by the caller.
func (p *Proc) Recv(d, wantTag int) []float64 {
	p.checkDim(d)
	var msg message
	select {
	case msg = <-p.m.in[p.id][d]:
	case <-p.abort:
		panic(abortedError{})
	default:
		select {
		case msg = <-p.m.in[p.id][d]:
		case <-p.abort:
			panic(abortedError{})
		case <-time.After(p.m.recvTimeout):
			panic(fmt.Sprintf("recv timeout on dim %d (tag %d): deadlock", d, wantTag))
		}
	}
	if msg.tag != wantTag {
		panic(fmt.Sprintf("tag mismatch on dim %d: got %d, want %d", d, msg.tag, wantTag))
	}
	p.AdvanceTo(msg.arrive)
	return msg.words
}

// Exchange performs the paired send/receive with the neighbor along
// dimension d that underlies every recursive-halving and -doubling
// collective: both sides send words, both receive the partner's words.
func (p *Proc) Exchange(d, tag int, words []float64) []float64 {
	p.Send(d, tag, words)
	return p.Recv(d, tag)
}

// ExchangeAll performs one exchange phase on several distinct
// dimensions at once: payloads[i] goes to the neighbor along dims[i],
// and the returned slice holds the corresponding received payloads.
// Under the one-port model the sends serialize (costs add); under the
// all-port model (Params.AllPorts) the phase is charged the maximum
// single-dimension cost, which is ablation A1's machine.
func (p *Proc) ExchangeAll(dims []int, tag int, payloads [][]float64) [][]float64 {
	if len(dims) != len(payloads) {
		panic("hypercube: ExchangeAll dims/payloads length mismatch")
	}
	seen := 0
	for _, d := range dims {
		p.checkDim(d)
		bit := 1 << d
		if seen&bit != 0 {
			panic(fmt.Sprintf("hypercube: ExchangeAll duplicate dimension %d", d))
		}
		seen |= bit
	}
	start := p.clock
	if p.m.params.AllPorts {
		var maxCost costmodel.Time
		for i, d := range dims {
			c := p.m.params.SendCost(len(payloads[i]))
			if c > maxCost {
				maxCost = c
			}
			p.clock = start + c
			p.post(d, tag, payloads[i], p.clock)
		}
		p.clock = start + maxCost
	} else {
		for i, d := range dims {
			p.Send(d, tag, payloads[i])
		}
	}
	out := make([][]float64, len(dims))
	for i, d := range dims {
		out[i] = p.Recv(d, tag)
	}
	return out
}

// Barrier synchronizes all processors in the subcube spanned by the
// dimension mask (use FullMask for the whole machine) and equalizes
// their virtual clocks to the maximum participant clock plus the
// synchronization cost. It is implemented as a zero-payload dimension
// exchange, which is also how a real cube synchronizes.
func (p *Proc) Barrier(mask, tag int) {
	for _, d := range gray.Dims(mask) {
		p.Exchange(d, tag, nil)
	}
}

// FullMask returns the dimension mask covering the whole cube.
func (p *Proc) FullMask() int { return (1 << p.m.dim) - 1 }

// RouteCharge charges the clock for forwarding n words one hop through
// the general router. The router package uses it so that routed and
// structured traffic share one clock.
func (p *Proc) RouteCharge(n int) {
	p.clock += p.m.params.RouteHopCost(n)
}

// RoutePhaseCharge charges the clock for one dimension-ordered routing
// phase in which this processor forwards msgs messages totalling n
// words: router start-up, per-word transfer, and per-message handling
// overhead (the cost of not combining messages).
func (p *Proc) RoutePhaseCharge(msgs, n int) {
	p.clock += p.m.params.RoutePhaseCost(msgs, n)
}

func (p *Proc) checkDim(d int) {
	if d < 0 || d >= p.m.dim {
		panic(fmt.Sprintf("hypercube: dimension %d out of range [0,%d)", d, p.m.dim))
	}
}
