package hypercube

import (
	"strings"
	"testing"

	"vmprim/internal/costmodel"
)

// profiledPingPong is a small SPMD body exercising spans, compute and
// neighbor exchanges in both span scopes.
func profiledPingPong(p *Proc) {
	p.BeginSpan("outer")
	p.Compute(10)
	p.BeginSpan("exchange")
	for d := 0; d < p.Dim(); d++ {
		p.Exchange(d, 7+d, []float64{float64(p.ID())})
	}
	p.EndSpan()
	p.Compute(5)
	p.EndSpan()
}

func TestEndSpanWithoutBeginPanics(t *testing.T) {
	m := MustNew(2, costmodel.Ideal())
	m.EnableProfile(true)
	_, err := m.Run(func(p *Proc) { p.EndSpan() })
	if err == nil || !strings.Contains(err.Error(), "EndSpan without matching BeginSpan") {
		t.Fatalf("err = %v", err)
	}
}

func TestOpenSpanAtRunEndPanics(t *testing.T) {
	m := MustNew(2, costmodel.Ideal())
	m.EnableProfile(true)
	_, err := m.Run(func(p *Proc) { p.BeginSpan("leaky") })
	if err == nil || !strings.Contains(err.Error(), "leaky") {
		t.Fatalf("err = %v", err)
	}
	// The machine must stay usable after the failed run.
	if _, err := m.Run(profiledPingPong); err != nil {
		t.Fatal(err)
	}
}

func TestSpanOpsIgnoredWhenProfilingOff(t *testing.T) {
	m := MustNew(2, costmodel.Ideal())
	if _, err := m.Run(func(p *Proc) {
		if p.Profiling() {
			t.Error("Profiling() true without EnableProfile")
		}
		p.BeginSpan("ignored") // deliberately unbalanced: all no-ops
	}); err != nil {
		t.Fatal(err)
	}
	if pf := m.Profile(); pf != nil {
		t.Fatal("Profile() non-nil without EnableProfile")
	}
}

func TestProfileBucketsReconcileExactly(t *testing.T) {
	for _, params := range []costmodel.Params{costmodel.CM2(), costmodel.IPSC(), costmodel.Ideal()} {
		m := MustNew(3, params)
		m.EnableProfile(true)
		if _, err := m.Run(profiledPingPong); err != nil {
			t.Fatal(err)
		}
		pf := m.Profile()
		if pf == nil {
			t.Fatal("Profile() nil after profiled run")
		}
		if err := pf.Check(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
		if skew := pf.BucketSkew(); skew != 0 {
			t.Fatalf("bucket skew = %g, want exact 0 (integer-valued params)", float64(skew))
		}
		// Per-processor bucket sums equal the final clocks exactly.
		for pid, b := range pf.ProcTotals {
			if b.Total() != pf.Clocks[pid] {
				t.Fatalf("proc %d: bucket total %g != clock %g", pid, float64(b.Total()), float64(pf.Clocks[pid]))
			}
		}
	}
}

func TestProfileSpanTree(t *testing.T) {
	m := MustNew(3, costmodel.CM2())
	m.EnableProfile(true)
	if _, err := m.Run(profiledPingPong); err != nil {
		t.Fatal(err)
	}
	pf := m.Profile()
	root := pf.Root
	if root.Name != "run" || len(root.Children) != 1 {
		t.Fatalf("root = %q with %d children", root.Name, len(root.Children))
	}
	outer := root.Children[0]
	if outer.Name != "outer" || outer.Count != 1 {
		t.Fatalf("outer = %q count %d (spans are SPMD-symmetric: counted once per run, not per processor)", outer.Name, outer.Count)
	}
	if len(outer.Children) != 1 || outer.Children[0].Name != "exchange" {
		t.Fatalf("outer children = %v", outer.Children)
	}
	ex := outer.Children[0]
	if ex.Incl > outer.Incl || outer.Excl != outer.Incl-ex.Incl {
		t.Fatalf("inclusive/exclusive mismatch: outer incl %g excl %g, child incl %g",
			float64(outer.Incl), float64(outer.Excl), float64(ex.Incl))
	}
	// All messages were sent inside the exchange span.
	if ex.Msgs != int64(m.P()*m.Dim()) {
		t.Fatalf("exchange msgs = %d, want %d", ex.Msgs, m.P()*m.Dim())
	}
	if outer.Excl <= 0 {
		t.Fatal("outer exclusive time should cover its own compute")
	}
}

func TestProfilingDoesNotPerturbClocks(t *testing.T) {
	run := func(profile bool) costmodel.Time {
		m := MustNew(4, costmodel.CM2())
		m.EnableProfile(profile)
		elapsed, err := m.Run(profiledPingPong)
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	if off, on := run(false), run(true); off != on {
		t.Fatalf("elapsed differs: off %g vs on %g", float64(off), float64(on))
	}
}

func TestCongestionAndLinkVolumesAgree(t *testing.T) {
	m := MustNew(3, costmodel.CM2())
	// No EnableTrace: volumes must come from the always-on counters.
	if _, err := m.Run(func(p *Proc) {
		// Dimension 0 carries double traffic.
		p.Exchange(0, 5, []float64{1, 2})
		p.Exchange(0, 6, []float64{3, 4})
		p.Exchange(1, 7, []float64{5, 6})
	}); err != nil {
		t.Fatal(err)
	}
	vols := m.LinkVolumes()
	if len(vols) != m.P() {
		t.Fatalf("LinkVolumes covers %d processors, want %d", len(vols), m.P())
	}
	for pid, dims := range vols {
		if dims[0] != 4 || dims[1] != 2 {
			t.Fatalf("proc %d volumes = %v, want dim0:4 dim1:2", pid, dims)
		}
	}
	top := m.Congestion(4)
	if len(top) != 4 {
		t.Fatalf("Congestion(4) returned %d entries", len(top))
	}
	for _, l := range top {
		if l.Dim != 0 || l.Words != 4 {
			t.Fatalf("hottest links should be dim-0 with 4 words, got %+v", l)
		}
		if vols[l.Src][l.Dim] != int(l.Words) {
			t.Fatalf("Congestion %+v disagrees with LinkVolumes %v", l, vols[l.Src])
		}
	}
}

func TestLinkVolumesCachedPerRun(t *testing.T) {
	m := MustNew(2, costmodel.Ideal())
	body := func(p *Proc) { p.Exchange(0, 3, []float64{1}) }
	if _, err := m.Run(body); err != nil {
		t.Fatal(err)
	}
	a := m.LinkVolumes()
	b := m.LinkVolumes()
	if a[0][0] != 1 || b[0][0] != 1 {
		t.Fatalf("volumes = %v / %v", a, b)
	}
	// Returned maps are copies: mutating one must not leak into the
	// cache.
	a[0][0] = 99
	if c := m.LinkVolumes(); c[0][0] != 1 {
		t.Fatalf("cache was mutated through the returned copy: %v", c)
	}
	// A new run invalidates the cache.
	if _, err := m.Run(func(p *Proc) {
		body(p)
		body(p)
	}); err != nil {
		t.Fatal(err)
	}
	if c := m.LinkVolumes(); c[0][0] != 2 {
		t.Fatalf("stale cache after second run: %v", c)
	}
}

// BenchmarkLinkVolumes guards the satellite fix: LinkVolumes is a
// cached copy, not an O(trace events) rescan per call.
func BenchmarkLinkVolumes(b *testing.B) {
	m := MustNew(6, costmodel.CM2())
	m.EnableTrace(1 << 14)
	if _, err := m.Run(func(p *Proc) {
		for i := 0; i < 64; i++ {
			p.Exchange(i%p.Dim(), 100+i, []float64{1, 2, 3, 4})
		}
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := m.LinkVolumes(); len(v) == 0 {
			b.Fatal("empty volumes")
		}
	}
}
