package hypercube

import (
	"fmt"

	"vmprim/internal/costmodel"
	"vmprim/internal/flightrec"
	"vmprim/internal/metrics"
	"vmprim/internal/obs"
)

// Post-mortem assembly and the machine's metrics registry.
//
// Both follow the observability discipline of profile.go: the hot
// paths only bump plain per-processor int64 counters and write into
// preallocated rings; everything here runs once per Run, after the
// worker goroutines have quiesced (rc.wg.Wait establishes the
// happens-before edge that makes reading their state safe).

// RunError is the error Run returns when a processor fails. It wraps
// the underlying failure ("hypercube: processor N: ...") so existing
// error-string matching keeps working, and carries the structured
// post-mortem assembled at death. Retrieve it with errors.As from any
// error that wraps a Run failure, or via (*Machine).PostMortem.
type RunError struct {
	// Err is the underlying first failure.
	Err error
	// Report is the post-mortem report of the failed run.
	Report *flightrec.Report
}

// Error includes the underlying failure verbatim and a pointer at the
// report.
func (e *RunError) Error() string {
	return fmt.Sprintf("%v [%d/%d procs blocked; post-mortem attached]",
		e.Err, e.Report.Blocked, e.Report.P)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// PostMortem returns the post-mortem report of the most recent Run,
// or nil if it succeeded. The report is a snapshot; it stays valid
// across later runs.
func (m *Machine) PostMortem() *flightrec.Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.postmortem
}

// buildPostMortem assembles the report of a failed run from the
// quiescent per-processor state and the messages still queued on the
// links (which it census-drains; Run's drain afterwards is then a
// no-op). Caller must not hold m.mu.
func (m *Machine) buildPostMortem(cause string, failedPid int) *flightrec.Report {
	rep := &flightrec.Report{
		Cause:      cause,
		FailedProc: failedPid,
		Dim:        m.dim,
		P:          m.p,
	}
	var maxClock costmodel.Time
	for _, pr := range m.procs {
		if pr.clock > maxClock {
			maxClock = pr.clock
		}
	}
	rep.MaxClockUs = float64(maxClock)

	rep.Procs = make([]flightrec.ProcState, m.p)
	for pid, pr := range m.procs {
		ps := &rep.Procs[pid]
		ps.ID = pid
		ps.ClockUs = float64(pr.clock)
		ps.BehindUs = float64(maxClock - pr.clock)
		ps.Buckets = obs.Buckets{
			Compute:  pr.tComp,
			Startup:  pr.tStart,
			Transfer: pr.tXfer,
			Idle:     pr.clock - pr.tComp - pr.tStart - pr.tXfer,
		}
		if pr.waitKind != flightrec.WaitNone {
			ps.Wait = pr.waitKind.String()
			ps.WaitDim = pr.waitDim
			ps.WaitTag = pr.waitTag
			ps.WaitSinceUs = float64(pr.waitSince)
			rep.Blocked++
		}
		for _, f := range pr.ps.stack {
			ps.OpenSpans = append(ps.OpenSpans, pr.ps.nodes[f.node].name)
		}
		for _, buf := range pr.captured {
			head := buf
			if len(head) > capturedHeadWords {
				head = head[:capturedHeadWords]
			}
			ps.Captured = append(ps.Captured, flightrec.CapturedBuf{
				Len: len(buf), Head: append([]float64(nil), head...),
			})
		}
		ps.Events = pr.rec.Snapshot(nil)
		ps.EventsTotal = pr.rec.Total()
		for i := range ps.Events {
			if n := ps.Events[i].Span; n >= 0 && n < len(pr.ps.nodes) {
				ps.Events[i].SpanName = pr.ps.nodes[n].name
			}
		}
	}

	// Census-drain the links: every undelivered message becomes link
	// occupancy in the report — the queue a blocked receiver never
	// consumed, or the mate of a mismatched exchange.
	for pid := range m.in {
		for d, ch := range m.in[pid] {
			queued, words, headTag := 0, 0, 0
			var headVT costmodel.Time
			for drained := false; !drained; {
				select {
				case msg := <-ch:
					if queued == 0 {
						headTag, headVT = msg.tag, msg.arrive
					}
					queued++
					words += len(msg.words)
				default:
					drained = true
				}
			}
			if queued > 0 {
				rep.Links = append(rep.Links, flightrec.LinkState{
					Src: pid ^ (1 << d), Dim: d, Dst: pid,
					Queued: queued, QueuedWords: words,
					HeadTag: headTag, HeadVT: float64(headVT),
				})
			}
		}
	}
	return rep
}

// capturedHeadWords bounds the payload prefix shown per captured
// buffer in the report.
const capturedHeadWords = 4

// msgWordBounds are the finite upper bounds of the message-size
// histogram (words per link message); msgWordBins mirrors them as ints
// for the hot-path binning and msgHistBins counts the bins including
// the implicit +Inf bucket.
var (
	msgWordBounds = []float64{0, 1, 4, 16, 64, 256, 1024, 4096}
	msgWordBins   = [...]int{0, 1, 4, 16, 64, 256, 1024, 4096}
)

const msgHistBins = len(msgWordBins) + 1

// msgBin returns the non-cumulative histogram bin for an n-word
// message.
func msgBin(n int) int {
	i := 0
	for i < len(msgWordBins) && n > msgWordBins[i] {
		i++
	}
	return i
}

// machMetrics is the machine's metrics registry and its handles.
// Counters are cumulative over the machine's lifetime; gauges describe
// the most recent run.
type machMetrics struct {
	reg *metrics.Registry

	runs, failures           *metrics.Counter
	msgs, words, flops       *metrics.Counter
	colls                    *metrics.Counter
	poolGets, poolHits       *metrics.Counter
	wdArms, wdRearms         *metrics.Counter
	recvParks, sendStalls    *metrics.Counter
	wakeups                  *metrics.Counter
	lastElapsed, poolHitRate *metrics.Gauge
	maxParked                *metrics.Gauge
	msgWords                 *metrics.Histogram

	// Critical-path gauges, describing the most recent run recorded
	// under EnableCritPath (zero otherwise). Pure virtual-time values:
	// deterministic, and included in determinism comparisons.
	cpCompute, cpStartup    *metrics.Gauge
	cpTransfer, cpIdle      *metrics.Gauge
	cpHops, cpEndProc       *metrics.Gauge
	cpWorstRatio, cpFlagged *metrics.Gauge
}

// schedMetricNames lists the registry entries fed by the host
// scheduler (plus the watchdog counters, which share its host-timing
// dependence). They describe host execution, not the simulated
// machine, so they are exempt from the bit-identical-across-GOMAXPROCS
// guarantee; the determinism stress tests exclude exactly this set.
var schedMetricNames = map[string]bool{
	"vmprim_sched_recv_parks_total":  true,
	"vmprim_sched_send_stalls_total": true,
	"vmprim_sched_wakeups_total":     true,
	"vmprim_sched_max_parked_procs":  true,
	"vmprim_watchdog_arms_total":     true,
	"vmprim_watchdog_rearms_total":   true,
}

// HostSchedMetricNames reports whether name is one of the
// host-scheduling metrics exempt from determinism comparisons.
func HostSchedMetricNames(name string) bool { return schedMetricNames[name] }

func newMachMetrics() machMetrics {
	reg := metrics.NewRegistry()
	return machMetrics{
		reg:         reg,
		runs:        reg.Counter("vmprim_runs_total", "SPMD programs executed on this machine"),
		failures:    reg.Counter("vmprim_run_failures_total", "runs that ended in a panic or deadlock"),
		msgs:        reg.Counter("vmprim_messages_total", "link messages sent"),
		words:       reg.Counter("vmprim_words_total", "64-bit words moved over links"),
		flops:       reg.Counter("vmprim_flops_total", "local floating-point operations"),
		colls:       reg.Counter("vmprim_collectives_total", "collective protocol invocations"),
		poolGets:    reg.Counter("vmprim_pool_gets_total", "buffer-pool get requests"),
		poolHits:    reg.Counter("vmprim_pool_hits_total", "buffer-pool gets served from a free list"),
		wdArms:      reg.Counter("vmprim_watchdog_arms_total", "deadlock-watchdog timer arms"),
		wdRearms:    reg.Counter("vmprim_watchdog_rearms_total", "watchdog fires that found progress and re-armed"),
		recvParks:   reg.Counter("vmprim_sched_recv_parks_total", "host goroutine parks waiting at the virtual-time frontier for a message (host-nondeterministic)"),
		sendStalls:  reg.Counter("vmprim_sched_send_stalls_total", "host goroutine parks on a full link buffer, run-ahead backpressure (host-nondeterministic)"),
		wakeups:     reg.Counter("vmprim_sched_wakeups_total", "frontier parks resumed by link traffic (host-nondeterministic)"),
		lastElapsed: reg.Gauge("vmprim_last_elapsed_us", "simulated time of the most recent run"),
		poolHitRate: reg.Gauge("vmprim_pool_hit_rate", "fraction of pool gets served from a free list in the most recent run"),
		maxParked:   reg.Gauge("vmprim_sched_max_parked_procs", "high-water mark of concurrently parked processor goroutines in the most recent run (host-nondeterministic)"),
		msgWords:    reg.Histogram("vmprim_message_words", "payload size of link messages in 64-bit words", msgWordBounds),

		cpCompute:    reg.Gauge("vmprim_critpath_compute_us", "compute time on the most recent run's critical path"),
		cpStartup:    reg.Gauge("vmprim_critpath_startup_us", "start-up time on the most recent run's critical path"),
		cpTransfer:   reg.Gauge("vmprim_critpath_transfer_us", "transfer time on the most recent run's critical path"),
		cpIdle:       reg.Gauge("vmprim_critpath_idle_us", "idle time on the most recent run's critical path"),
		cpHops:       reg.Gauge("vmprim_critpath_hops", "cross-processor hops on the most recent run's critical path"),
		cpEndProc:    reg.Gauge("vmprim_critpath_end_proc", "processor the most recent run's critical path ends on"),
		cpWorstRatio: reg.Gauge("vmprim_critpath_conformance_worst_ratio", "largest measured/predicted ratio in the most recent conformance report"),
		cpFlagged:    reg.Gauge("vmprim_critpath_conformance_flagged", "conformance entries exceeding the flagging threshold in the most recent run"),
	}
}

// Metrics returns the machine's metrics registry; snapshot it after
// runs to export JSON or Prometheus text (see internal/metrics).
func (m *Machine) Metrics() *metrics.Registry { return m.met.reg }

// updateMetrics folds the per-processor counters of the run that just
// ended into the registry. Called once per Run, after the workers have
// quiesced; crit is the run's critical path, or nil when recording was
// off (the critpath gauges then read zero).
func (m *Machine) updateMetrics(elapsed costmodel.Time, sch SchedStats, failed bool, crit *obs.CritPath) {
	mm := &m.met
	mm.runs.Add(1)
	if failed {
		mm.failures.Add(1)
	}
	mm.recvParks.Add(sch.RecvParks)
	mm.sendStalls.Add(sch.SendStalls)
	mm.wakeups.Add(sch.Wakeups)
	mm.maxParked.Set(float64(sch.MaxParked))
	var msgs, words, flops, colls, gets, hits, arms, rearms int64
	var hist [msgHistBins]int64
	for _, pr := range m.procs {
		msgs += pr.nMsgs
		words += pr.nWords
		flops += pr.nFlops
		colls += pr.nColl
		gets += pr.pool.gets
		hits += pr.pool.hits
		arms += pr.nArms
		rearms += pr.nRearms
		for i, c := range pr.msgHist {
			hist[i] += c
		}
	}
	mm.msgs.Add(msgs)
	mm.words.Add(words)
	mm.flops.Add(flops)
	mm.colls.Add(colls)
	mm.poolGets.Add(gets)
	mm.poolHits.Add(hits)
	mm.wdArms.Add(arms)
	mm.wdRearms.Add(rearms)
	mm.lastElapsed.Set(float64(elapsed))
	rate := 1.0
	if gets > 0 {
		rate = float64(hits) / float64(gets)
	}
	mm.poolHitRate.Set(rate)
	mm.msgWords.AddBuckets(hist[:], float64(words))
	if crit != nil {
		mm.cpCompute.Set(float64(crit.Buckets.Compute))
		mm.cpStartup.Set(float64(crit.Buckets.Startup))
		mm.cpTransfer.Set(float64(crit.Buckets.Transfer))
		mm.cpIdle.Set(float64(crit.Buckets.Idle))
		mm.cpHops.Set(float64(crit.Hops))
		mm.cpEndProc.Set(float64(crit.EndProc))
		ratio, flagged := crit.WorstConformance()
		mm.cpWorstRatio.Set(ratio)
		mm.cpFlagged.Set(float64(flagged))
	} else {
		for _, g := range []*metrics.Gauge{
			mm.cpCompute, mm.cpStartup, mm.cpTransfer, mm.cpIdle,
			mm.cpHops, mm.cpEndProc, mm.cpWorstRatio, mm.cpFlagged,
		} {
			g.Set(0)
		}
	}
}
