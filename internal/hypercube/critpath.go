package hypercube

import (
	"sort"

	"vmprim/internal/costmodel"
	"vmprim/internal/obs"
)

// Critical-path recording: the online computation of the longest
// weighted chain through a run's virtual-time event DAG.
//
// Rather than materializing the DAG and extracting the path afterwards
// (a bounded ring would drop edges and break the "weights sum exactly
// to the makespan" guarantee), every processor carries a
// chain-attribution vector: the decomposition of the longest causal
// chain that ends at its current clock. Local charges (compute, send,
// router, idle) extend the chain in place; every posted message
// carries a snapshot of the sender's vector; and a receive whose
// arrival is strictly later than the receiver's own clock adopts the
// sender's chain wholesale — that is exactly the dynamic-programming
// recurrence for the longest path, evaluated incrementally with O(1)
// state per processor. Ties (arrival equal to the receiver's clock)
// keep the receiver's own chain, which both breaks ties
// deterministically and avoids inventing hops that carry no time.
//
// The vector is a flat []float64 so message snapshots reuse the
// per-processor buffer pools (the same recycle discipline as
// payloads): four category cells that always sum to the clock, hop and
// ring bookkeeping, per-dimension transfer cells, a bounded ring of
// displayable chain segments (the flight-recorder pattern — the
// aggregate cells stay exact when the ring drops old segments), and
// one 4-cell block per discovered span node attributing the chain to
// named spans. Everything is virtual time, so the recorded path is
// bit-identical at every GOMAXPROCS.

const (
	// Category cells: the chain's time split by attribution class.
	// Their sum is an invariant: always exactly the owning processor's
	// clock (buildCritPath reports the residual as SkewUs).
	cpCatCompute  = 0
	cpCatStartup  = 1
	cpCatTransfer = 2
	cpCatIdle     = 3

	// Bookkeeping cells: cross-processor hops on the chain, segments
	// evicted from the ring, live segment count, ring start slot.
	cpHops     = 4
	cpDropped  = 5
	cpSegCount = 6
	cpSegStart = 7

	cpHdrWords = 8

	// The segment ring: cpSegCap slots of cpSegWords cells
	// {proc, node, kind, dim, t0, t1}, oldest overwritten first.
	cpSegCap   = 32
	cpSegWords = 6

	// Segment kinds.
	cpKindCompute = 0
	cpKindSend    = 1
	cpKindRoute   = 2
	cpKindIdle    = 3
	cpKindHop     = 4
)

// cpKindName maps a segment kind to its export name.
func cpKindName(k int) string {
	switch k {
	case cpKindCompute:
		return "compute"
	case cpKindSend:
		return "send"
	case cpKindRoute:
		return "route"
	case cpKindIdle:
		return "idle"
	case cpKindHop:
		return "hop"
	}
	return "?"
}

// cpBase is the first ring cell; cpSpanBase the first span cell. Both
// depend only on the cube dimension.
func (p *Proc) cpBase() int     { return cpHdrWords + p.m.dim }
func (p *Proc) cpSpanBase() int { return p.cpBase() + cpSegCap*cpSegWords }

// cpReset clears the chain vector for a new run, reusing its capacity.
// Zeroing the full capacity matters: the vector's length only grows
// within a run (adoption never shrinks it), so in-run growth via
// append always lands on cells append itself writes.
func (p *Proc) cpReset() {
	base := p.cpSpanBase()
	if cap(p.cp) < base {
		p.cp = make([]float64, base)
		return
	}
	p.cp = p.cp[:cap(p.cp)]
	for i := range p.cp {
		p.cp[i] = 0
	}
	p.cp = p.cp[:base]
}

// cpNode is the innermost open span node, -1 outside any span.
func (p *Proc) cpNode() int {
	if n := len(p.ps.stack); n > 0 {
		return p.ps.stack[n-1].node
	}
	return -1
}

// cpAcc extends the chain by t in category cat, crediting the
// per-dimension transfer cell (dim >= 0) and the innermost span's
// block. Span blocks grow lazily as nodes are discovered — amortized
// allocation-free across runs, like the span recorder itself.
func (p *Proc) cpAcc(cat int, t costmodel.Time, dim int) {
	if t == 0 {
		return
	}
	p.cp[cat] += float64(t)
	if dim >= 0 {
		p.cp[cpHdrWords+dim] += float64(t)
	}
	if node := p.cpNode(); node >= 0 {
		need := p.cpSpanBase() + 4*(node+1)
		for len(p.cp) < need {
			p.cp = append(p.cp, 0)
		}
		p.cp[p.cpSpanBase()+4*node+cat] += float64(t)
	}
}

// cpSeg appends one displayable segment to the bounded ring,
// coalescing a segment that continues the newest one (same processor,
// span, kind and dimension, contiguous in time).
func (p *Proc) cpSeg(kind, dim int, t0, t1 costmodel.Time) {
	node := p.cpNode()
	base := p.cpBase()
	cnt := int(p.cp[cpSegCount])
	if cnt > 0 {
		off := base + ((int(p.cp[cpSegStart])+cnt-1)%cpSegCap)*cpSegWords
		if int(p.cp[off]) == p.id && int(p.cp[off+1]) == node &&
			int(p.cp[off+2]) == kind && int(p.cp[off+3]) == dim &&
			p.cp[off+5] == float64(t0) {
			p.cp[off+5] = float64(t1)
			return
		}
	}
	var slot int
	if cnt == cpSegCap {
		slot = int(p.cp[cpSegStart])
		p.cp[cpSegStart] = float64((slot + 1) % cpSegCap)
		p.cp[cpDropped]++
	} else {
		slot = (int(p.cp[cpSegStart]) + cnt) % cpSegCap
		p.cp[cpSegCount]++
	}
	off := base + slot*cpSegWords
	p.cp[off] = float64(p.id)
	p.cp[off+1] = float64(node)
	p.cp[off+2] = float64(kind)
	p.cp[off+3] = float64(dim)
	p.cp[off+4] = float64(t0)
	p.cp[off+5] = float64(t1)
}

// cpCompute extends the chain by a local-arithmetic charge that just
// advanced the clock by c.
func (p *Proc) cpCompute(c costmodel.Time) {
	if c == 0 {
		return
	}
	p.cpAcc(cpCatCompute, c, -1)
	p.cpSeg(cpKindCompute, -1, p.clock-c, p.clock)
}

// cpChargeSend extends the chain by one message's send cost (start-up
// plus words transfer on dimension d), which the caller just added to
// the clock.
func (p *Proc) cpChargeSend(d, words int) {
	su := p.m.params.CommStartup
	xf := costmodel.Time(words) * p.m.params.CommPerWord
	if su == 0 && xf == 0 {
		return
	}
	p.cpAcc(cpCatStartup, su, -1)
	p.cpAcc(cpCatTransfer, xf, d)
	p.cpSeg(cpKindSend, d, p.clock-su-xf, p.clock)
}

// cpRoute extends the chain by a router charge split into its start-up
// and transfer parts (no cube dimension — router volume is charged at
// the processor, not a single link).
func (p *Proc) cpRoute(su, xf costmodel.Time) {
	if su == 0 && xf == 0 {
		return
	}
	p.cpAcc(cpCatStartup, su, -1)
	p.cpAcc(cpCatTransfer, xf, -1)
	p.cpSeg(cpKindRoute, -1, p.clock-su-xf, p.clock)
}

// cpIdle extends the chain by a clock advance outside a receive
// (public AdvanceTo, or a defensive gap).
func (p *Proc) cpIdle(from, to costmodel.Time) {
	p.cpAcc(cpCatIdle, to-from, -1)
	p.cpSeg(cpKindIdle, -1, from, to)
}

// cpSnapshot copies the chain vector into a pooled buffer; post
// attaches one to every message, and the receiver recycles it into its
// own pool — the payload discipline exactly.
func (p *Proc) cpSnapshot() []float64 {
	s := p.pool.get(len(p.cp))
	copy(s, p.cp)
	return s
}

// cpRestore copies src back over the chain vector (ExchangeAll's
// all-port branch restores the pre-phase chain before charging each
// message), zeroing any cells grown since the snapshot.
func (p *Proc) cpRestore(src []float64) {
	n := copy(p.cp, src)
	for i := n; i < len(p.cp); i++ {
		p.cp[i] = 0
	}
}

// cpRecv resolves the longest-path recurrence at a receive on
// dimension d: an arrival strictly later than the receiver's clock
// means the sender's chain bounds this processor from now on — adopt
// its vector and append the hop. Otherwise the receiver's own chain
// already dominates and nothing changes. The caller advances the clock
// afterwards; adoption keeps the category-sum invariant because the
// snapshot sums exactly to the arrival time.
func (p *Proc) cpRecv(msg *message, d int) {
	if msg.arrive > p.clock {
		if msg.cp != nil {
			for len(p.cp) < len(msg.cp) {
				p.cp = append(p.cp, 0)
			}
			n := copy(p.cp, msg.cp)
			for i := n; i < len(p.cp); i++ {
				p.cp[i] = 0
			}
			p.cp[cpHops]++
			p.cpSeg(cpKindHop, d, msg.arrive, msg.arrive)
		} else {
			// No chain travelled with the message (cannot happen within
			// one machine; defensive): account the gap as idle so the
			// invariant holds.
			p.cpIdle(p.clock, msg.arrive)
		}
	}
	if msg.cp != nil {
		p.pool.put(msg.cp)
		msg.cp = nil
	}
}

// EnableCritPath turns critical-path recording on or off for
// subsequent runs. Like EnableProfile it must be called between runs.
// Recording activates the span machinery too (the path attributes
// itself to spans), but building the full Profile still requires
// EnableProfile. The recorded path is simulated truth: bit-identical
// at every GOMAXPROCS and included in determinism comparisons.
func (m *Machine) EnableCritPath(on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.critEnabled = on
}

// SetConformanceThreshold sets the measured/predicted ratio above
// which conformance entries are flagged; r <= 0 restores
// obs.DefaultConformanceThreshold. It must be called between runs.
func (m *Machine) SetConformanceThreshold(r float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.confThreshold = r
}

// CritPath returns the critical path of the most recent Run, or nil if
// recording was off. The returned value is a snapshot; it stays valid
// across later runs.
func (m *Machine) CritPath() *obs.CritPath {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crit
}

// qualSpanNames joins each span node's path from the top level with
// ">" (children always have larger ids than their parents, so one
// forward pass resolves every prefix).
func qualSpanNames(ps *profState) []string {
	out := make([]string, len(ps.nodes))
	for i := range ps.nodes {
		n := ps.nodes[i].name
		if par := ps.nodes[i].parent; par >= 0 {
			n = out[par] + ">" + n
		}
		out[i] = n
	}
	return out
}

// buildCritPath decodes the winning processor's chain vector into the
// exported obs.CritPath and assembles the conformance report. It runs
// once per Run after the workers have quiesced (on failed runs too —
// the post-mortem embeds the chain up to the death). Caller must not
// hold m.mu.
func (m *Machine) buildCritPath(elapsed costmodel.Time) *obs.CritPath {
	end := 0
	for pid, pr := range m.procs {
		if pr.clock > m.procs[end].clock {
			end = pid
		}
	}
	w := m.procs[end]
	cp := &obs.CritPath{
		Dim: m.dim, P: m.p, EndProc: end, Makespan: elapsed,
		Threshold: m.confThreshold,
	}
	if cp.Threshold <= 0 {
		cp.Threshold = obs.DefaultConformanceThreshold
	}
	if len(w.cp) < cpHdrWords {
		return cp
	}
	cp.Buckets = obs.Buckets{
		Compute:  costmodel.Time(w.cp[cpCatCompute]),
		Startup:  costmodel.Time(w.cp[cpCatStartup]),
		Transfer: costmodel.Time(w.cp[cpCatTransfer]),
		Idle:     costmodel.Time(w.cp[cpCatIdle]),
	}
	cp.Hops = int(w.cp[cpHops])
	cp.ChainDropped = int(w.cp[cpDropped])
	cp.ByDim = make([]costmodel.Time, m.dim)
	for d := 0; d < m.dim; d++ {
		cp.ByDim[d] = costmodel.Time(w.cp[cpHdrWords+d])
	}
	for _, pr := range m.procs {
		if len(pr.cp) < cpHdrWords {
			continue
		}
		s := pr.cp[cpCatCompute] + pr.cp[cpCatStartup] +
			pr.cp[cpCatTransfer] + pr.cp[cpCatIdle] - float64(pr.clock)
		if s < 0 {
			s = -s
		}
		if s > cp.SkewUs {
			cp.SkewUs = s
		}
	}

	qual := qualSpanNames(&w.ps)
	name := func(node int) string {
		if node >= 0 && node < len(qual) {
			return qual[node]
		}
		return ""
	}

	base := w.cpBase()
	cnt := int(w.cp[cpSegCount])
	startIdx := int(w.cp[cpSegStart])
	for s := 0; s < cnt; s++ {
		off := base + ((startIdx+s)%cpSegCap)*cpSegWords
		kind := int(w.cp[off+2])
		seg := obs.PathSegment{
			Proc: int(w.cp[off]),
			From: -1,
			Span: name(int(w.cp[off+1])),
			Kind: cpKindName(kind),
			Dim:  int(w.cp[off+3]),
			T0:   costmodel.Time(w.cp[off+4]),
			T1:   costmodel.Time(w.cp[off+5]),
		}
		if kind == cpKindHop && seg.Dim >= 0 {
			seg.From = seg.Proc ^ (1 << seg.Dim)
		}
		cp.Chain = append(cp.Chain, seg)
	}

	spanBase := w.cpSpanBase()
	var attributed obs.Buckets
	for nd := 0; 4*nd+spanBase+3 < len(w.cp); nd++ {
		b := obs.Buckets{
			Compute:  costmodel.Time(w.cp[spanBase+4*nd+cpCatCompute]),
			Startup:  costmodel.Time(w.cp[spanBase+4*nd+cpCatStartup]),
			Transfer: costmodel.Time(w.cp[spanBase+4*nd+cpCatTransfer]),
			Idle:     costmodel.Time(w.cp[spanBase+4*nd+cpCatIdle]),
		}
		if b.Total() == 0 {
			continue
		}
		cp.Spans = append(cp.Spans, obs.PathSpan{Name: name(nd), Buckets: b})
		attributed.Add(b)
	}
	obs.SortSpansByShare(cp.Spans)
	cp.Other = obs.Buckets{
		Compute:  cp.Buckets.Compute - attributed.Compute,
		Startup:  cp.Buckets.Startup - attributed.Startup,
		Transfer: cp.Buckets.Transfer - attributed.Transfer,
		Idle:     cp.Buckets.Idle - attributed.Idle,
	}

	m.buildConformance(cp, w, qual)
	return cp
}

// buildConformance fills cp.Conformance with one entry per span node
// that recorded a cost-model prediction (SpanPredict), comparing the
// slowest processor's measured inclusive time against the slowest
// predicted one. Measured inclusive time absorbs entry skew — a
// member arriving late at a collective shows up in the slowest
// member's wait — which is why the flagging threshold leaves headroom
// (see obs.DefaultConformanceThreshold).
func (m *Machine) buildConformance(cp *obs.CritPath, w *Proc, qual []string) {
	ref := &m.procs[0].ps
	spanBase := w.cpSpanBase()
	for nd := range ref.nodes {
		var maxIncl, maxPred costmodel.Time
		for _, pr := range m.procs {
			if nd >= len(pr.ps.agg) {
				continue
			}
			a := &pr.ps.agg[nd]
			if a.incl > maxIncl {
				maxIncl = a.incl
			}
			if a.pred > maxPred {
				maxPred = a.pred
			}
		}
		count := ref.agg[nd].count
		if maxPred <= 0 || count == 0 {
			continue
		}
		var share float64
		if idx := spanBase + 4*nd; idx+3 < len(w.cp) && cp.Makespan > 0 {
			share = (w.cp[idx] + w.cp[idx+1] + w.cp[idx+2] + w.cp[idx+3]) /
				float64(cp.Makespan)
		}
		name := ""
		if nd < len(qual) {
			name = qual[nd]
		}
		ratio := float64(maxIncl) / float64(maxPred)
		cp.Conformance = append(cp.Conformance, obs.ConformanceEntry{
			Name:        name,
			Count:       count,
			MeasuredUs:  float64(maxIncl) / float64(count),
			PredictedUs: float64(maxPred) / float64(count),
			Ratio:       ratio,
			PathShare:   share,
			Flagged:     ratio > cp.Threshold,
		})
	}
	sort.SliceStable(cp.Conformance, func(i, j int) bool {
		if cp.Conformance[i].Ratio != cp.Conformance[j].Ratio {
			return cp.Conformance[i].Ratio > cp.Conformance[j].Ratio
		}
		return cp.Conformance[i].Name < cp.Conformance[j].Name
	})
}
