package hypercube

import (
	"strings"
	"testing"
	"time"

	"vmprim/internal/costmodel"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, costmodel.Ideal()); err == nil {
		t.Fatal("negative dim accepted")
	}
	if _, err := New(21, costmodel.Ideal()); err == nil {
		t.Fatal("huge dim accepted")
	}
	bad := costmodel.Ideal()
	bad.FlopTime = -1
	if _, err := New(3, bad); err == nil {
		t.Fatal("bad params accepted")
	}
	m, err := New(0, costmodel.Ideal())
	if err != nil {
		t.Fatal(err)
	}
	if m.P() != 1 || m.Dim() != 0 {
		t.Fatalf("P=%d Dim=%d", m.P(), m.Dim())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(-1) did not panic")
		}
	}()
	MustNew(-1, costmodel.Ideal())
}

func TestRunAllProcsExecute(t *testing.T) {
	m := MustNew(4, costmodel.Ideal())
	hits := make([]bool, m.P())
	if _, err := m.Run(func(p *Proc) { hits[p.ID()] = true }); err != nil {
		t.Fatal(err)
	}
	for pid, h := range hits {
		if !h {
			t.Fatalf("processor %d did not run", pid)
		}
	}
}

func TestNeighborExchange(t *testing.T) {
	m := MustNew(3, costmodel.Ideal())
	got := make([]float64, m.P())
	_, err := m.Run(func(p *Proc) {
		// Every processor sends its id along dimension 1 and records
		// what it receives: must be the neighbor's id.
		out := p.Exchange(1, 7, []float64{float64(p.ID())})
		got[p.ID()] = out[0]
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid := range got {
		if int(got[pid]) != pid^2 {
			t.Fatalf("proc %d received %v, want %d", pid, got[pid], pid^2)
		}
	}
}

func TestSendRecvClockAdvance(t *testing.T) {
	params := costmodel.Params{CommStartup: 10, CommPerWord: 2, FlopTime: 1}
	m := MustNew(1, params)
	var clock0, clock1 costmodel.Time
	_, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Compute(5)                     // clock = 5
			p.Send(0, 1, []float64{1, 2, 3}) // +10+6 -> 21
			clock0 = p.Clock()
		} else {
			p.Recv(0, 1) // arrives at 21
			clock1 = p.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if clock0 != 21 {
		t.Fatalf("sender clock %v, want 21", clock0)
	}
	if clock1 != 21 {
		t.Fatalf("receiver clock %v, want 21", clock1)
	}
	if m.Elapsed() != 21 {
		t.Fatalf("elapsed %v, want 21", m.Elapsed())
	}
}

func TestRecvDoesNotRewindClock(t *testing.T) {
	params := costmodel.Params{CommStartup: 1, FlopTime: 1}
	m := MustNew(1, params)
	var clock1 costmodel.Time
	_, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(0, 1, nil) // arrives at t=1
		} else {
			p.Compute(100) // clock 100 before the receive
			p.Recv(0, 1)
			clock1 = p.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if clock1 != 100 {
		t.Fatalf("receiver clock %v, want 100 (no rewind)", clock1)
	}
}

func TestPayloadIsCopied(t *testing.T) {
	m := MustNew(1, costmodel.Ideal())
	var received []float64
	_, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			buf := []float64{42}
			p.Send(0, 1, buf)
			buf[0] = -1 // must not affect the in-flight message
		} else {
			received = p.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if received[0] != 42 {
		t.Fatalf("received %v, want 42: payload aliased", received[0])
	}
}

func TestTagMismatchPanics(t *testing.T) {
	m := MustNew(1, costmodel.Ideal())
	m.SetRecvTimeout(2 * time.Second)
	_, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(0, 1, nil)
		} else {
			p.Recv(0, 2)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "tag mismatch") {
		t.Fatalf("err = %v, want tag mismatch", err)
	}
}

func TestPanicPropagatesWithProcID(t *testing.T) {
	m := MustNew(2, costmodel.Ideal())
	m.SetRecvTimeout(2 * time.Second)
	_, err := m.Run(func(p *Proc) {
		if p.ID() == 3 {
			panic("boom")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "processor 3") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestAbortUnblocksBlockedReceivers(t *testing.T) {
	// Processor 0 panics; everyone else is blocked in Recv. The run
	// must finish promptly (well under the recv timeout) and report
	// the original panic.
	m := MustNew(3, costmodel.Ideal())
	m.SetRecvTimeout(time.Minute)
	start := time.Now()
	_, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			panic("original failure")
		}
		p.Recv(0, 9) // never satisfied
	})
	if err == nil || !strings.Contains(err.Error(), "original failure") {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("abort did not unblock receivers promptly")
	}
}

func TestDeadlockDetection(t *testing.T) {
	m := MustNew(1, costmodel.Ideal())
	m.SetRecvTimeout(200 * time.Millisecond)
	_, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Recv(0, 1) // nobody sends
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestMachineReusableAfterError(t *testing.T) {
	m := MustNew(2, costmodel.Ideal())
	m.SetRecvTimeout(2 * time.Second)
	_, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(0, 5, []float64{1}) // left in flight: run aborts
			panic("first run fails")
		}
	})
	if err == nil {
		t.Fatal("expected first run to fail")
	}
	// Second run must not see the stale message from the first.
	_, err = m.Run(func(p *Proc) {
		out := p.Exchange(0, 6, []float64{float64(p.ID())})
		if int(out[0]) != p.ID()^1 {
			panic("stale message leaked between runs")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierEqualizesClocks(t *testing.T) {
	params := costmodel.Params{CommStartup: 1, FlopTime: 1}
	m := MustNew(3, params)
	clocks := make([]costmodel.Time, m.P())
	_, err := m.Run(func(p *Proc) {
		p.Compute(p.ID() * 10) // skewed clocks
		p.Barrier(p.FullMask(), 99)
		clocks[p.ID()] = p.Clock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for pid := 1; pid < m.P(); pid++ {
		if clocks[pid] != clocks[0] {
			t.Fatalf("clocks not equalized: %v", clocks)
		}
	}
	// Max pre-barrier clock is 70; the barrier itself costs 3 startups.
	if clocks[0] < 70 {
		t.Fatalf("barrier clock %v below straggler clock", clocks[0])
	}
}

func TestStatsCounting(t *testing.T) {
	m := MustNew(1, costmodel.CountOnly())
	_, err := m.Run(func(p *Proc) {
		p.Compute(7)
		p.Exchange(0, 1, []float64{1, 2, 3})
	})
	if err != nil {
		t.Fatal(err)
	}
	st := m.LastStats()
	if st.Messages != 2 || st.Words != 6 || st.Flops != 14 {
		t.Fatalf("stats = %+v, want 2 msgs, 6 words, 14 flops", st)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Messages: 1, Words: 2, Flops: 3}
	a.Add(Stats{Messages: 10, Words: 20, Flops: 30})
	if a.Messages != 11 || a.Words != 22 || a.Flops != 33 {
		t.Fatalf("Add = %+v", a)
	}
}

func TestExchangeAllOnePortCostsAdd(t *testing.T) {
	params := costmodel.Params{CommStartup: 10, CommPerWord: 1}
	m := MustNew(2, params)
	var clock costmodel.Time
	_, err := m.Run(func(p *Proc) {
		got := p.ExchangeAll([]int{0, 1}, 3, [][]float64{{1, 2}, {3}})
		if p.ID() == 0 {
			clock = p.Clock()
			if int(got[0][0]) != 1 && len(got[0]) != 2 {
				panic("wrong payload on dim 0")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// One-port: sends cost (10+2)+(10+1)=23; receives arrive no later
	// than the symmetric partner's send completion.
	if clock < 23 {
		t.Fatalf("one-port clock %v, want >= 23", clock)
	}
}

func TestExchangeAllAllPortsCostsMax(t *testing.T) {
	params := costmodel.Params{CommStartup: 10, CommPerWord: 1, AllPorts: true}
	m := MustNew(2, params)
	clocks := make([]costmodel.Time, m.P())
	_, err := m.Run(func(p *Proc) {
		p.ExchangeAll([]int{0, 1}, 3, [][]float64{{1, 2}, {3}})
		clocks[p.ID()] = p.Clock()
	})
	if err != nil {
		t.Fatal(err)
	}
	// All-port: the phase costs max(12, 11) = 12 at every symmetric
	// participant.
	for pid, c := range clocks {
		if c != 12 {
			t.Fatalf("proc %d all-port clock %v, want 12", pid, c)
		}
	}
}

func TestExchangeAllRejectsDuplicateDims(t *testing.T) {
	m := MustNew(2, costmodel.Ideal())
	m.SetRecvTimeout(2 * time.Second)
	_, err := m.Run(func(p *Proc) {
		p.ExchangeAll([]int{0, 0}, 1, [][]float64{{1}, {2}})
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate dimension") {
		t.Fatalf("err = %v", err)
	}
}

func TestExchangeAllRejectsLengthMismatch(t *testing.T) {
	m := MustNew(2, costmodel.Ideal())
	m.SetRecvTimeout(2 * time.Second)
	_, err := m.Run(func(p *Proc) {
		p.ExchangeAll([]int{0, 1}, 1, [][]float64{{1}})
	})
	if err == nil || !strings.Contains(err.Error(), "length mismatch") {
		t.Fatalf("err = %v", err)
	}
}

func TestDimRangeChecked(t *testing.T) {
	m := MustNew(2, costmodel.Ideal())
	m.SetRecvTimeout(2 * time.Second)
	_, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Send(2, 1, nil)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v", err)
	}
}

func TestNegativeFlopsPanics(t *testing.T) {
	m := MustNew(0, costmodel.Ideal())
	_, err := m.Run(func(p *Proc) { p.Compute(-1) })
	if err == nil {
		t.Fatal("negative flops accepted")
	}
}

func TestNeighborAddress(t *testing.T) {
	m := MustNew(4, costmodel.Ideal())
	_, err := m.Run(func(p *Proc) {
		for d := 0; d < p.Dim(); d++ {
			if p.Neighbor(d) != p.ID()^(1<<d) {
				panic("bad neighbor")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRouteCharge(t *testing.T) {
	params := costmodel.Params{RouteStartup: 5, RoutePerWord: 2}
	m := MustNew(0, params)
	var clock costmodel.Time
	if _, err := m.Run(func(p *Proc) {
		p.RouteCharge(3)
		clock = p.Clock()
	}); err != nil {
		t.Fatal(err)
	}
	if clock != 11 {
		t.Fatalf("route charge clock %v, want 11", clock)
	}
}

func TestManySequentialRuns(t *testing.T) {
	m := MustNew(5, costmodel.CM2())
	for i := 0; i < 20; i++ {
		if _, err := m.Run(func(p *Proc) {
			p.Barrier(p.FullMask(), i)
		}); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

func TestClocksExposed(t *testing.T) {
	params := costmodel.Params{FlopTime: 1}
	m := MustNew(2, params)
	if _, err := m.Run(func(p *Proc) { p.Compute(p.ID() * 3) }); err != nil {
		t.Fatal(err)
	}
	clocks := m.Clocks()
	if len(clocks) != m.P() {
		t.Fatalf("clocks len %d", len(clocks))
	}
	for pid, c := range clocks {
		if c != costmodel.Time(pid*3) {
			t.Fatalf("proc %d clock %v, want %d", pid, c, pid*3)
		}
	}
	// The returned slice is a copy.
	clocks[0] = 999
	if m.Clocks()[0] == 999 {
		t.Fatal("Clocks returns aliased storage")
	}
}

func TestTraceRecordsMessages(t *testing.T) {
	m := MustNew(2, costmodel.Ideal())
	m.EnableTrace(100)
	if _, err := m.Run(func(p *Proc) {
		p.Exchange(0, 7, []float64{1, 2})
		p.Exchange(1, 8, []float64{3})
	}); err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	if len(tr) != 2*m.P() {
		t.Fatalf("%d events, want %d", len(tr), 2*m.P())
	}
	// Ordered by time; endpoints consistent; tags preserved.
	for i := 1; i < len(tr); i++ {
		if tr[i].Time < tr[i-1].Time {
			t.Fatal("trace not time-ordered")
		}
	}
	seenTags := map[int]int{}
	for _, ev := range tr {
		if ev.Dst != ev.Src^(1<<ev.Dim) {
			t.Fatalf("inconsistent endpoints: %v", ev)
		}
		seenTags[ev.Tag]++
		if ev.String() == "" {
			t.Fatal("empty event string")
		}
	}
	if seenTags[7] != m.P() || seenTags[8] != m.P() {
		t.Fatalf("tags: %v", seenTags)
	}
	vols := m.LinkVolumes()
	if vols[0][0] != 2 || vols[0][1] != 1 {
		t.Fatalf("link volumes: %v", vols)
	}
}

func TestTraceLimitRespected(t *testing.T) {
	m := MustNew(1, costmodel.Ideal())
	m.EnableTrace(3)
	if _, err := m.Run(func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Exchange(0, i, []float64{1})
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Trace()); got != 3*m.P() {
		t.Fatalf("%d events, want %d (limit 3 per proc)", got, 3*m.P())
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	m := MustNew(1, costmodel.Ideal())
	if _, err := m.Run(func(p *Proc) { p.Exchange(0, 1, nil) }); err != nil {
		t.Fatal(err)
	}
	if m.Trace() != nil && len(m.Trace()) != 0 {
		t.Fatal("trace recorded while disabled")
	}
}

// SchedStats is host-nondeterministic by design, so these tests assert
// its structural invariants — accounting identities, bounds, per-run
// reset, and the metrics fold — never specific counts.

func TestSchedStatsInvariants(t *testing.T) {
	m := MustNew(3, costmodel.CM2())
	defer m.Close()
	if _, err := m.Run(func(p *Proc) {
		buf := []float64{1, 2, 3, 4}
		for round := 0; round < 50; round++ {
			for d := 0; d < 3; d++ {
				buf = p.Exchange(d, round, buf)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	s := m.SchedStats()
	if s.RecvParks < 0 || s.SendStalls < 0 || s.Wakeups < 0 {
		t.Fatalf("negative sched counters: %+v", s)
	}
	if s.MaxParked < 0 || s.MaxParked > m.P() {
		t.Fatalf("max parked %d out of range [0,%d]", s.MaxParked, m.P())
	}
	// Every wakeup resumes exactly one completed park; aborted parks
	// don't count, so completions never exceed park entries.
	if s.Wakeups > s.RecvParks+s.SendStalls {
		t.Fatalf("wakeups %d exceed parks %d + stalls %d", s.Wakeups, s.RecvParks, s.SendStalls)
	}

	// A communication-free run parks nobody: SchedStats describes the
	// most recent run only, deterministically zero here.
	if _, err := m.Run(func(p *Proc) { p.Compute(1) }); err != nil {
		t.Fatal(err)
	}
	if got := m.SchedStats(); got != (SchedStats{}) {
		t.Fatalf("sched stats not reset by a communication-free run: %+v", got)
	}
}

func TestSchedStatsAdd(t *testing.T) {
	a := SchedStats{RecvParks: 1, SendStalls: 2, Wakeups: 3, MaxParked: 4}
	a.Add(SchedStats{RecvParks: 10, SendStalls: 20, Wakeups: 30, MaxParked: 2})
	want := SchedStats{RecvParks: 11, SendStalls: 22, Wakeups: 33, MaxParked: 4}
	if a != want {
		t.Fatalf("got %+v, want %+v", a, want)
	}
}

func TestSchedMetricsFold(t *testing.T) {
	m := MustNew(2, costmodel.CM2())
	defer m.Close()
	if _, err := m.Run(func(p *Proc) {
		for round := 0; round < 20; round++ {
			p.Exchange(round%2, round, []float64{float64(round)})
		}
	}); err != nil {
		t.Fatal(err)
	}
	s := m.SchedStats()
	snap := m.Metrics().Snapshot()
	checks := []struct {
		name string
		want float64
	}{
		{"vmprim_sched_recv_parks_total", float64(s.RecvParks)},
		{"vmprim_sched_send_stalls_total", float64(s.SendStalls)},
		{"vmprim_sched_wakeups_total", float64(s.Wakeups)},
		{"vmprim_sched_max_parked_procs", float64(s.MaxParked)},
	}
	for _, c := range checks {
		got, ok := snap.Value(c.name)
		if !ok {
			t.Fatalf("metric %s not registered", c.name)
		}
		if got != c.want {
			t.Errorf("metric %s = %v, want %v (single run on a fresh machine)", c.name, got, c.want)
		}
	}
}
