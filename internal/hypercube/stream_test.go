package hypercube

import (
	"testing"

	"vmprim/internal/costmodel"
	"vmprim/internal/obs"
	"vmprim/internal/testutil"
)

// streamWorkload runs a small multi-collective SPMD program: a few
// spans around exchanges, enough traffic to produce link events.
func streamWorkload(p *Proc) {
	for step := 0; step < 3; step++ {
		p.BeginSpan("phase")
		for d := 0; d < p.Dim(); d++ {
			p.BeginSpan("exchange")
			got := p.Exchange(d, 9, []float64{float64(p.ID()), 1, 2, 3})
			p.Recycle(got)
			p.EndSpan()
		}
		p.EndSpan()
	}
}

func TestStreamEventsWellFormed(t *testing.T) {
	defer testutil.CheckLeaks(t, testutil.Snapshot())
	m := MustNew(3, costmodel.CM2())
	defer m.Close()
	m.EnableProfile(true)
	var events []obs.StreamEvent
	m.EnableStream(func(ev obs.StreamEvent) { events = append(events, ev) })
	elapsed, err := m.Run(streamWorkload)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no stream events emitted")
	}

	opens, closes, links, progress := 0, 0, 0, 0
	depth := 0
	lastVT := -1.0
	for i, ev := range events {
		if ev.VTUs < lastVT && ev.Kind != obs.EvLink {
			t.Fatalf("event %d (%s) vt %.1f went backwards from %.1f", i, ev.Kind, ev.VTUs, lastVT)
		}
		if ev.Kind != obs.EvLink {
			lastVT = ev.VTUs
		}
		switch ev.Kind {
		case obs.EvSpanOpen:
			if ev.Depth != depth {
				t.Fatalf("event %d: span %q opened at depth %d, tracker says %d", i, ev.Name, ev.Depth, depth)
			}
			depth++
			opens++
		case obs.EvSpanClose:
			depth--
			if ev.Depth != depth {
				t.Fatalf("event %d: span %q closed at depth %d, tracker says %d", i, ev.Name, ev.Depth, depth)
			}
			closes++
		case obs.EvLink:
			if ev.Words <= 0 {
				t.Fatalf("event %d: link event with %d words", i, ev.Words)
			}
			links++
		case obs.EvProgress:
			progress++
		default:
			t.Fatalf("event %d: unknown kind %q", i, ev.Kind)
		}
	}
	// 3 phases x (1 phase span + dim exchange spans) on processor 0.
	wantSpans := 3 * (1 + m.Dim())
	if opens != wantSpans || closes != wantSpans {
		t.Fatalf("streamed %d opens / %d closes, want %d each", opens, closes, wantSpans)
	}
	if links == 0 {
		t.Fatal("no link-congestion events at end of run")
	}
	if links > streamLinkTopK {
		t.Fatalf("%d link events exceed the top-%d bound", links, streamLinkTopK)
	}
	if progress == 0 {
		t.Fatal("no progress event (run summary must always emit one)")
	}
	if events[len(events)-links-1].Kind != obs.EvProgress {
		t.Fatalf("expected final progress mark before link census, got %q", events[len(events)-links-1].Kind)
	}
	if got := events[len(events)-links-1].VTUs; got != float64(elapsed) {
		t.Fatalf("final progress vt %.1f, want elapsed %.1f", got, float64(elapsed))
	}
}

// Streaming must not perturb the simulation: elapsed time, clocks and
// link loads are bit-identical with the sink attached or not.
func TestStreamDoesNotPerturbSim(t *testing.T) {
	defer testutil.CheckLeaks(t, testutil.Snapshot())
	run := func(sink obs.StreamSink) (costmodel.Time, []costmodel.Time) {
		m := MustNew(3, costmodel.CM2())
		defer m.Close()
		m.EnableProfile(true)
		m.EnableStream(sink)
		elapsed, err := m.Run(streamWorkload)
		if err != nil {
			t.Fatal(err)
		}
		return elapsed, m.Clocks()
	}
	e1, c1 := run(nil)
	n := 0
	e2, c2 := run(func(obs.StreamEvent) { n++ })
	if n == 0 {
		t.Fatal("sink never called")
	}
	if e1 != e2 {
		t.Fatalf("streamed elapsed %v != unstreamed %v", e2, e1)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("proc %d clock differs streamed vs not: %v vs %v", i, c2[i], c1[i])
		}
	}
}

// Without profiling, span events stay off but the run summary still
// streams; detaching the sink stops emission entirely.
func TestStreamGating(t *testing.T) {
	defer testutil.CheckLeaks(t, testutil.Snapshot())
	m := MustNew(2, costmodel.CM2())
	defer m.Close()
	var events []obs.StreamEvent
	m.EnableStream(func(ev obs.StreamEvent) { events = append(events, ev) })
	if _, err := m.Run(streamWorkload); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if ev.Kind == obs.EvSpanOpen || ev.Kind == obs.EvSpanClose {
			t.Fatalf("span event %q streamed with profiling off", ev.Name)
		}
	}
	if len(events) == 0 {
		t.Fatal("run summary missing with profiling off")
	}

	m.EnableStream(nil)
	events = nil
	if _, err := m.Run(streamWorkload); err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("%d events streamed after detaching the sink", len(events))
	}
}
