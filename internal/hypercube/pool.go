package hypercube

import "math/bits"

// Per-processor message-buffer pooling.
//
// Every Send copies its payload so the caller may reuse the slice; on
// the seed engine that copy was a fresh heap allocation per message,
// which dominated host time in benchmark loops (the simulated machine
// is unaffected either way — payload words and arrival times are
// identical). Each Proc now owns a free list of buffers segregated by
// power-of-two capacity class. Buffers are handed out by the sender's
// pool, travel inside the message, and are returned to the *receiver's*
// pool when the receiver calls Recycle after consuming the payload.
// Exchange-heavy collectives are symmetric, so pools equilibrate and
// the steady state allocates nothing.
//
// The pool is single-goroutine by construction: each Proc's pool is
// touched only by that processor's worker goroutine (or by host code
// between runs), so get/put need no synchronization.

// poolClasses bounds the capacity classes kept (2^27 floats = 1 GiB of
// payload per buffer is far beyond any simulated message).
const poolClasses = 28

// bufPool is a segregated free list of []float64 scratch buffers. The
// gets/hits counters feed the machine's metrics registry (pool hit
// rate); they are reset by every Run and, like the free lists, are
// touched only by the owning processor's goroutine.
type bufPool struct {
	free [poolClasses][][]float64

	gets int64 // pooled-size get requests this run
	hits int64 // gets served from a free list this run
}

// get returns a buffer of length n with arbitrary contents (callers
// must fully overwrite it). Capacity is the smallest power of two >= n
// so that recycled buffers land back in the class they came from.
func (bp *bufPool) get(n int) []float64 {
	if n == 0 {
		return make([]float64, 0)
	}
	bp.gets++
	c := bits.Len(uint(n - 1))
	if c >= poolClasses {
		return make([]float64, n)
	}
	if s := bp.free[c]; len(s) > 0 {
		b := s[len(s)-1]
		s[len(s)-1] = nil
		bp.free[c] = s[:len(s)-1]
		bp.hits++
		return b[:n]
	}
	return make([]float64, n, 1<<c)
}

// put returns b to the pool. Buffers with capacity that is not an
// exact power of two (sub-slices, foreign allocations) are classed by
// the largest power of two not exceeding their capacity, so a later
// get never receives a buffer too small for its class.
func (bp *bufPool) put(b []float64) {
	if cap(b) == 0 {
		return
	}
	c := bits.Len(uint(cap(b))) - 1
	if c >= poolClasses {
		return
	}
	bp.free[c] = append(bp.free[c], b[:0])
}
