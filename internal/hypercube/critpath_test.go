package hypercube

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"vmprim/internal/costmodel"
)

func TestCritPathNilWhenDisabled(t *testing.T) {
	m := MustNew(2, costmodel.CM2())
	if _, err := m.Run(profiledPingPong); err != nil {
		t.Fatal(err)
	}
	if cp := m.CritPath(); cp != nil {
		t.Fatal("CritPath() non-nil without EnableCritPath")
	}
}

func TestCritPathSumsToMakespan(t *testing.T) {
	for _, params := range []costmodel.Params{costmodel.CM2(), costmodel.IPSC(), costmodel.Ideal()} {
		m := MustNew(3, params)
		m.EnableCritPath(true)
		elapsed, err := m.Run(profiledPingPong)
		if err != nil {
			t.Fatal(err)
		}
		cp := m.CritPath()
		if cp == nil {
			t.Fatal("CritPath() nil after traced run")
		}
		if err := cp.Check(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
		// Integer-valued presets: the path weights sum to the makespan
		// bit-exactly, not just within epsilon.
		if cp.Buckets.Total() != elapsed {
			t.Fatalf("path buckets total %g != makespan %g",
				float64(cp.Buckets.Total()), float64(elapsed))
		}
		if cp.Makespan != elapsed {
			t.Fatalf("Makespan = %g, run elapsed %g", float64(cp.Makespan), float64(elapsed))
		}
		if cp.SkewUs != 0 {
			t.Fatalf("skew = %g, want exact 0", cp.SkewUs)
		}
	}
}

// TestCritPathAdoption pins the longest-path recurrence on a 2-proc
// machine: the receiver's makespan is bounded by the sender's chain, so
// the path must hop across the link and carry the sender's compute.
func TestCritPathAdoption(t *testing.T) {
	m := MustNew(1, costmodel.CM2()) // flop 1, startup 100, perword 4
	m.EnableCritPath(true)
	elapsed, err := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Compute(100)
			p.Send(0, 5, make([]float64, 8))
		} else {
			p.Recycle(p.Recv(0, 5))
			p.Compute(10)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Proc 0: 100 compute + 100 startup + 32 transfer = 232.
	// Proc 1: adopts at arrival 232, then 10 compute = 242.
	if elapsed != 242 {
		t.Fatalf("elapsed = %g, want 242", float64(elapsed))
	}
	cp := m.CritPath()
	if err := cp.Check(); err != nil {
		t.Fatal(err)
	}
	if cp.EndProc != 1 || cp.Hops != 1 {
		t.Fatalf("end proc %d hops %d, want 1 and 1", cp.EndProc, cp.Hops)
	}
	want := struct{ comp, start, xfer, idle float64 }{110, 100, 32, 0}
	got := cp.Buckets
	if float64(got.Compute) != want.comp || float64(got.Startup) != want.start ||
		float64(got.Transfer) != want.xfer || float64(got.Idle) != want.idle {
		t.Fatalf("buckets %+v, want %+v", got, want)
	}
	if len(cp.ByDim) != 1 || float64(cp.ByDim[0]) != 32 {
		t.Fatalf("ByDim = %v, want [32]", cp.ByDim)
	}
	// The chain tail must walk proc 0's work, the hop, then proc 1's
	// compute, in virtual-time order.
	var kinds []string
	for _, sg := range cp.Chain {
		kinds = append(kinds, fmt.Sprintf("%s@%d", sg.Kind, sg.Proc))
	}
	wantKinds := "compute@0 send@0 hop@1 compute@1"
	if strings.Join(kinds, " ") != wantKinds {
		t.Fatalf("chain = %v, want %s", kinds, wantKinds)
	}
	hop := cp.Chain[2]
	if hop.From != 0 || hop.Dim != 0 || hop.T0 != 232 || hop.T1 != 232 {
		t.Fatalf("hop = %+v", hop)
	}
}

// TestCritPathTieKeepsOwnChain: a symmetric exchange arrives exactly at
// the receiver's own clock; the tie must keep the local chain, so no
// hop and no idle appear anywhere.
func TestCritPathTieKeepsOwnChain(t *testing.T) {
	m := MustNew(2, costmodel.CM2())
	m.EnableCritPath(true)
	if _, err := m.Run(func(p *Proc) {
		p.Compute(50)
		for d := 0; d < p.Dim(); d++ {
			p.Recycle(p.Exchange(d, 3+d, []float64{1, 2}))
		}
	}); err != nil {
		t.Fatal(err)
	}
	cp := m.CritPath()
	if err := cp.Check(); err != nil {
		t.Fatal(err)
	}
	if cp.Hops != 0 {
		t.Fatalf("hops = %d, want 0 (symmetric arrivals tie and keep the local chain)", cp.Hops)
	}
	if cp.Buckets.Idle != 0 {
		t.Fatalf("idle = %g, want 0", float64(cp.Buckets.Idle))
	}
}

// TestCritPathSpanAttribution runs with spans and checks that the span
// table reproduces the buckets exactly and attributes to the
// ">"-qualified names.
func TestCritPathSpanAttribution(t *testing.T) {
	m := MustNew(2, costmodel.CM2())
	m.EnableCritPath(true)
	if _, err := m.Run(profiledPingPong); err != nil {
		t.Fatal(err)
	}
	cp := m.CritPath()
	if err := cp.Check(); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, s := range cp.Spans {
		names[s.Name] = true
	}
	if !names["outer"] && !names["outer>exchange"] {
		t.Fatalf("span attribution %v missing qualified pingpong spans", names)
	}
	for i := 1; i < len(cp.Spans); i++ {
		if cp.Spans[i].Total() > cp.Spans[i-1].Total() {
			t.Fatal("spans not sorted by descending share")
		}
	}
}

// TestCritPathRingTruncation overflows the bounded segment ring and
// checks the aggregate cells stay exact while the tail drops oldest
// first.
func TestCritPathRingTruncation(t *testing.T) {
	m := MustNew(0, costmodel.CM2())
	m.EnableCritPath(true)
	const rounds = 50
	elapsed, err := m.Run(func(p *Proc) {
		for i := 0; i < rounds; i++ {
			// Alternate span identity so consecutive compute segments
			// cannot coalesce into one ring slot.
			if i%2 == 0 {
				p.BeginSpan("a")
			} else {
				p.BeginSpan("b")
			}
			p.Compute(1)
			p.EndSpan()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cp := m.CritPath()
	if err := cp.Check(); err != nil {
		t.Fatal(err)
	}
	if float64(elapsed) != rounds {
		t.Fatalf("elapsed = %g, want %d", float64(elapsed), rounds)
	}
	if float64(cp.Buckets.Compute) != rounds {
		t.Fatalf("compute = %g: ring truncation must not lose aggregate time", float64(cp.Buckets.Compute))
	}
	if len(cp.Chain) != 32 {
		t.Fatalf("chain tail = %d segments, want the ring capacity 32", len(cp.Chain))
	}
	if cp.ChainDropped != rounds-32 {
		t.Fatalf("dropped = %d, want %d", cp.ChainDropped, rounds-32)
	}
	// Oldest dropped: the tail must cover the run's end.
	if cp.Chain[len(cp.Chain)-1].T1 != elapsed {
		t.Fatalf("tail ends at %g, want %g", float64(cp.Chain[len(cp.Chain)-1].T1), float64(elapsed))
	}
}

// TestCritPathConformance records predictions through SpanPredict and
// checks the report's ratios and flags.
func TestCritPathConformance(t *testing.T) {
	m := MustNew(1, costmodel.CM2())
	m.EnableCritPath(true)
	if _, err := m.Run(func(p *Proc) {
		p.BeginSpan("exact")
		if p.Profiling() {
			p.SpanPredict(100)
		}
		p.Compute(100)
		p.EndSpan()
		p.BeginSpan("divergent")
		if p.Profiling() {
			p.SpanPredict(10)
		}
		p.Compute(100)
		p.EndSpan()
	}); err != nil {
		t.Fatal(err)
	}
	cp := m.CritPath()
	if len(cp.Conformance) != 2 {
		t.Fatalf("conformance entries = %d, want 2", len(cp.Conformance))
	}
	// Sorted by descending ratio: divergent first.
	div, exact := cp.Conformance[0], cp.Conformance[1]
	if div.Name != "divergent" || exact.Name != "exact" {
		t.Fatalf("order = %q, %q", div.Name, exact.Name)
	}
	if exact.Ratio != 1 || exact.Flagged {
		t.Fatalf("exact entry = %+v, want ratio 1 unflagged", exact)
	}
	if div.Ratio != 10 || !div.Flagged {
		t.Fatalf("divergent entry = %+v, want ratio 10 flagged", div)
	}
	if worst, flagged := cp.WorstConformance(); worst != 10 || flagged != 1 {
		t.Fatalf("WorstConformance = %g, %d", worst, flagged)
	}
}

// TestCritPathConformanceThresholdOverride checks SetConformanceThreshold
// moves the flag line.
func TestCritPathConformanceThresholdOverride(t *testing.T) {
	m := MustNew(0, costmodel.CM2())
	m.EnableCritPath(true)
	m.SetConformanceThreshold(50)
	if _, err := m.Run(func(p *Proc) {
		p.BeginSpan("s")
		p.SpanPredict(10)
		p.Compute(100)
		p.EndSpan()
	}); err != nil {
		t.Fatal(err)
	}
	cp := m.CritPath()
	if cp.Threshold != 50 {
		t.Fatalf("threshold = %g", cp.Threshold)
	}
	if len(cp.Conformance) != 1 || cp.Conformance[0].Flagged {
		t.Fatalf("entry = %+v, want unflagged under threshold 50", cp.Conformance)
	}
	m.SetConformanceThreshold(0) // restore the default
	if _, err := m.Run(func(p *Proc) {}); err != nil {
		t.Fatal(err)
	}
	if got := m.CritPath().Threshold; got != 2.0 {
		t.Fatalf("restored threshold = %g, want the obs default 2.0", got)
	}
}

// TestCritPathSurvivesFailedRun: the post-mortem report embeds the
// chain recorded up to the failure.
func TestCritPathInPostMortem(t *testing.T) {
	m := MustNew(1, costmodel.CM2())
	m.SetRecvTimeout(100 * time.Millisecond)
	m.EnableCritPath(true)
	_, err := m.Run(func(p *Proc) {
		p.Compute(10)
		if p.ID() == 0 {
			p.Recv(0, 1) // never sent: deadlock
		}
	})
	if err == nil {
		t.Fatal("expected a deadlock error")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error %T does not wrap *RunError", err)
	}
	if re.Report.Crit == nil {
		t.Fatal("post-mortem report missing the critical path")
	}
	var buf strings.Builder
	re.Report.WriteText(&buf)
	if !strings.Contains(buf.String(), "critical path:") {
		t.Fatal("post-mortem text does not render the critical path")
	}
}

// TestCritPathJSONStable: the exported document round-trips and carries
// the schema's required keys.
func TestCritPathJSON(t *testing.T) {
	m := MustNew(2, costmodel.CM2())
	m.EnableCritPath(true)
	if _, err := m.Run(profiledPingPong); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := m.CritPath().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"dim", "p", "end_proc", "makespan_us", "buckets_us", "hops",
		"skew_us", "transfer_by_dim_us", "spans", "other_us", "chain",
		"chain_dropped", "conformance",
	} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("JSON document missing %q", key)
		}
	}
	conf, ok := doc["conformance"].(map[string]any)
	if !ok {
		t.Fatalf("conformance = %T", doc["conformance"])
	}
	if _, ok := conf["threshold"]; !ok {
		t.Fatal("conformance missing threshold")
	}
}

// TestCritPathDoesNotPerturbClocks: tracing observes the clock, never
// advances it.
func TestCritPathDoesNotPerturbClocks(t *testing.T) {
	run := func(crit bool) costmodel.Time {
		m := MustNew(3, costmodel.CM2())
		m.EnableCritPath(crit)
		elapsed, err := m.Run(profiledPingPong)
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	if on, off := run(true), run(false); on != off {
		t.Fatalf("elapsed with tracing %g != without %g", float64(on), float64(off))
	}
}
