package embed

import "testing"

// The fused kernels in internal/core rely on the valid-prefix property
// of Map1D: for both kinds, valid elements occupy local offsets
// 0..ValidCount(coord)-1 with globals strictly increasing by
// GlobalStride. These tests cross-check ValidCount, LocalRange, and
// GlobalStride exhaustively against the GlobalOf definition.

func prefixMaps(t *testing.T, n int) []Map1D {
	t.Helper()
	var ms []Map1D
	for k := 0; k <= 5; k++ {
		for _, kind := range []MapKind{Block, Cyclic} {
			m, err := NewMap1D(n, k, kind)
			if err != nil {
				t.Fatalf("NewMap1D(%d,%d,%v): %v", n, k, kind, err)
			}
			ms = append(ms, m)
		}
	}
	return ms
}

func TestValidCountMatchesGlobalOf(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 17, 31, 32} {
		for _, m := range prefixMaps(t, n) {
			for coord := 0; coord < m.Coords(); coord++ {
				// Count by definition, and require the valid slots
				// to be a prefix of the local block.
				count := 0
				prefix := true
				for l := 0; l < m.B; l++ {
					if g := m.GlobalOf(coord, l); g >= 0 && g < n {
						if !prefix {
							t.Fatalf("n=%d %v k=%d coord=%d: valid slot %d after invalid one",
								n, m.Kind, m.K, coord, l)
						}
						count++
					} else {
						prefix = false
					}
				}
				if got := m.ValidCount(coord); got != count {
					t.Fatalf("n=%d %v k=%d: ValidCount(%d) = %d, want %d",
						n, m.Kind, m.K, coord, got, count)
				}
			}
		}
	}
}

func TestGlobalStrideMatchesGlobalOf(t *testing.T) {
	for _, n := range []int{1, 5, 16, 17, 31, 32} {
		for _, m := range prefixMaps(t, n) {
			s := m.GlobalStride()
			for coord := 0; coord < m.Coords(); coord++ {
				nv := m.ValidCount(coord)
				for l := 1; l < nv; l++ {
					if m.GlobalOf(coord, l)-m.GlobalOf(coord, l-1) != s {
						t.Fatalf("n=%d %v k=%d coord=%d: stride at %d != %d",
							n, m.Kind, m.K, coord, l, s)
					}
				}
			}
		}
	}
}

func TestLocalRangeMatchesGlobalOf(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 17, 31, 32} {
		for _, m := range prefixMaps(t, n) {
			for coord := 0; coord < m.Coords(); coord++ {
				for lo := 0; lo <= n; lo++ {
					for hi := lo; hi <= n; hi++ {
						l0, l1 := m.LocalRange(coord, lo, hi)
						// Reference: the set of locals whose global
						// lands in [lo, hi).
						r0, r1 := -1, -1
						for l := 0; l < m.B; l++ {
							g := m.GlobalOf(coord, l)
							if g >= lo && g < hi {
								if r0 < 0 {
									r0 = l
								}
								r1 = l + 1
							}
						}
						if r0 < 0 { // empty window
							if l0 != l1 {
								t.Fatalf("n=%d %v k=%d coord=%d [%d,%d): got [%d,%d), want empty",
									n, m.Kind, m.K, coord, lo, hi, l0, l1)
							}
							continue
						}
						if l0 != r0 || l1 != r1 {
							t.Fatalf("n=%d %v k=%d coord=%d [%d,%d): got [%d,%d), want [%d,%d)",
								n, m.Kind, m.K, coord, lo, hi, l0, l1, r0, r1)
						}
					}
				}
			}
		}
	}
}

func TestLocalRangePanicsOnBadBounds(t *testing.T) {
	m, err := NewMap1D(16, 2, Block)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ lo, hi int }{{-1, 4}, {4, 3}, {0, 17}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("LocalRange(0, %d, %d) did not panic", tc.lo, tc.hi)
				}
			}()
			m.LocalRange(0, tc.lo, tc.hi)
		}()
	}
}
