// Package embed defines the load-balanced embeddings of dense matrices
// and vectors on the hypercube, following the embedding scheme of the
// SPAA 1989 paper: the cube's d address bits are split into dr "row"
// bits and dc "column" bits, giving a 2^dr x 2^dc processor grid; grid
// coordinates are binary-reflected Gray codes of the address bits so
// that adjacent grid rows and columns are cube neighbors; and matrix
// rows (columns) are dealt to grid rows (columns) by either a
// consecutive (block) or a cyclic map. With m matrix elements on p
// processors every processor holds an m/p-element block, which is the
// load balance the primitives' optimality argument rests on.
//
// This package is pure index arithmetic; the communication performed
// when a primitive changes one embedding into another lives in
// internal/core on top of internal/collective.
package embed

import (
	"fmt"

	"vmprim/internal/gray"
)

// Grid is a two-dimensional processor grid carved out of a cube of
// dimension D: the low Dc address bits select the grid column, the
// high Dr bits the grid row, each through a Gray code.
type Grid struct {
	D  int // cube dimension; D = Dr + Dc
	Dr int // row address bits
	Dc int // column address bits
}

// NewGrid returns a grid with dr row bits and dc column bits.
func NewGrid(dr, dc int) (Grid, error) {
	if dr < 0 || dc < 0 || dr+dc > 20 {
		return Grid{}, fmt.Errorf("embed: invalid grid split dr=%d dc=%d", dr, dc)
	}
	return Grid{D: dr + dc, Dr: dr, Dc: dc}, nil
}

// SplitFor chooses a balanced grid for an R x C matrix on a cube of
// dimension d: the split of d into dr+dc that best matches the matrix
// aspect ratio (so blocks stay as square as the matrix allows), the
// shape the paper recommends for minimizing communication volume.
func SplitFor(d, rows, cols int) Grid {
	best, bestScore := 0, -1.0
	for dr := 0; dr <= d; dr++ {
		dc := d - dr
		// Penalize grids with more processors than rows/cols along an
		// axis (idle processors), then prefer aspect-matched blocks.
		br := float64(rows) / float64(int(1)<<dr)
		bc := float64(cols) / float64(int(1)<<dc)
		score := -abs(br - bc)
		if br < 1 {
			score -= 1e6 * (1 - br)
		}
		if bc < 1 {
			score -= 1e6 * (1 - bc)
		}
		if bestScore == -1 || score > bestScore {
			best, bestScore = dr, score
		}
	}
	g, _ := NewGrid(best, d-best)
	return g
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// PRows returns the number of grid rows, 2^Dr.
func (g Grid) PRows() int { return 1 << g.Dr }

// PCols returns the number of grid columns, 2^Dc.
func (g Grid) PCols() int { return 1 << g.Dc }

// P returns the number of processors, 2^D.
func (g Grid) P() int { return 1 << g.D }

// RowMask returns the cube-dimension mask of the row address bits.
// Broadcasting "down a grid column" (to all grid rows) spans exactly
// this mask.
func (g Grid) RowMask() int { return ((1 << g.Dr) - 1) << g.Dc }

// ColMask returns the cube-dimension mask of the column address bits.
func (g Grid) ColMask() int { return (1 << g.Dc) - 1 }

// ProcAt returns the cube address of the processor at grid coordinate
// (gr, gc). Coordinates are Gray-coded into the address so that
// adjacent coordinates are cube neighbors.
func (g Grid) ProcAt(gr, gc int) int {
	if gr < 0 || gr >= g.PRows() || gc < 0 || gc >= g.PCols() {
		panic(fmt.Sprintf("embed: grid coordinate (%d,%d) out of %dx%d", gr, gc, g.PRows(), g.PCols()))
	}
	return gray.Encode(gr)<<g.Dc | gray.Encode(gc)
}

// RowOf returns the grid row of cube address pid.
func (g Grid) RowOf(pid int) int { return gray.Decode(pid >> g.Dc) }

// ColOf returns the grid column of cube address pid.
func (g Grid) ColOf(pid int) int { return gray.Decode(pid & (g.PCols() - 1)) }

// RowRel returns the subcube-relative address (in the sense of the
// collective package: compacted masked bits) of the processor at grid
// row gr. Collectives over RowMask identify members by this value.
func (g Grid) RowRel(gr int) int { return gray.Encode(gr) }

// ColRel returns the subcube-relative address of grid column gc
// within ColMask.
func (g Grid) ColRel(gc int) int { return gray.Encode(gc) }

// MapKind selects how global indices are dealt to grid coordinates.
type MapKind int

const (
	// Block deals consecutive runs of indices to each coordinate:
	// index e lives at coordinate e/B with local offset e%B, where B
	// is the block size. This is the paper's "consecutive" embedding.
	Block MapKind = iota
	// Cyclic deals indices round-robin: index e lives at coordinate
	// e%2^K with local offset e/2^K. Cyclic embeddings keep shrinking
	// active regions (Gaussian elimination, simplex) load-balanced.
	Cyclic
)

// String returns the map kind's name.
func (k MapKind) String() string {
	switch k {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	default:
		return fmt.Sprintf("MapKind(%d)", int(k))
	}
}

// Map1D distributes N global indices over 2^K grid coordinates with
// equal local storage B = ceil(N/2^K) per coordinate (the final
// partial block is padded; padded slots satisfy GlobalOf(...) < 0).
type Map1D struct {
	N    int     // number of real indices
	K    int     // log2 of the number of grid coordinates
	Kind MapKind // block or cyclic
	B    int     // local storage per coordinate
}

// NewMap1D returns a map of n indices over 2^k coordinates.
func NewMap1D(n, k int, kind MapKind) (Map1D, error) {
	if n < 0 || k < 0 || k > 20 {
		return Map1D{}, fmt.Errorf("embed: invalid Map1D n=%d k=%d", n, k)
	}
	coords := 1 << k
	b := (n + coords - 1) / coords
	if n == 0 {
		b = 0
	}
	return Map1D{N: n, K: k, Kind: kind, B: b}, nil
}

// Coords returns the number of grid coordinates, 2^K.
func (m Map1D) Coords() int { return 1 << m.K }

// PaddedN returns the total local storage across coordinates, B*2^K.
func (m Map1D) PaddedN() int { return m.B << m.K }

// CoordOf returns the grid coordinate owning global index e.
func (m Map1D) CoordOf(e int) int {
	m.check(e)
	if m.Kind == Cyclic {
		return e & (m.Coords() - 1)
	}
	return e / m.B
}

// LocalOf returns the local offset of global index e at its owner.
func (m Map1D) LocalOf(e int) int {
	m.check(e)
	if m.Kind == Cyclic {
		return e >> m.K
	}
	return e % m.B
}

// GlobalOf returns the global index stored at (coord, local), or -1
// if that slot is padding.
func (m Map1D) GlobalOf(coord, local int) int {
	if coord < 0 || coord >= m.Coords() || local < 0 || local >= m.B {
		panic(fmt.Sprintf("embed: slot (%d,%d) out of %dx%d", coord, local, m.Coords(), m.B))
	}
	var e int
	if m.Kind == Cyclic {
		e = local<<m.K | coord
	} else {
		e = coord*m.B + local
	}
	if e >= m.N {
		return -1
	}
	return e
}

// ValidCount returns the number of non-padding local slots at coord.
// Both map kinds assign global indices in increasing order of local
// offset, so the valid slots always form the prefix
// [0, ValidCount(coord)); kernels use this to run tight unguarded
// loops instead of testing GlobalOf per element.
func (m Map1D) ValidCount(coord int) int {
	if coord < 0 || coord >= m.Coords() {
		panic(fmt.Sprintf("embed: coordinate %d out of [0,%d)", coord, m.Coords()))
	}
	if m.B == 0 {
		return 0
	}
	if m.Kind == Cyclic {
		if coord >= m.N {
			return 0
		}
		return min(m.B, (m.N-coord+m.Coords()-1)>>m.K)
	}
	return max(0, min(m.B, m.N-coord*m.B))
}

// LocalRange returns the half-open interval [l0, l1) of local slots at
// coord whose global indices fall in [lo, hi). For both map kinds the
// matching slots are contiguous: Block globals are coord*B + l, Cyclic
// globals are l*2^K + coord, both strictly increasing in l. Restricted
// elementwise updates loop over this interval with no per-element
// bounds tests. lo and hi must satisfy 0 <= lo <= hi <= N.
func (m Map1D) LocalRange(coord, lo, hi int) (l0, l1 int) {
	if coord < 0 || coord >= m.Coords() {
		panic(fmt.Sprintf("embed: coordinate %d out of [0,%d)", coord, m.Coords()))
	}
	if lo < 0 || hi < lo || hi > m.N {
		panic(fmt.Sprintf("embed: range [%d,%d) out of [0,%d]", lo, hi, m.N))
	}
	if m.Kind == Cyclic {
		c := m.Coords()
		if lo > coord {
			l0 = (lo - coord + c - 1) / c
		}
		if hi > coord {
			l1 = (hi - coord + c - 1) / c
		}
	} else {
		base := coord * m.B
		l0 = min(max(lo-base, 0), m.B)
		l1 = min(max(hi-base, 0), m.B)
	}
	l0 = min(l0, m.B)
	l1 = min(l1, m.B)
	if l1 < l0 {
		l1 = l0
	}
	return l0, l1
}

// GlobalStride returns the difference between the global indices of
// consecutive local slots: 1 for Block maps, 2^K for Cyclic. Together
// with GlobalOf(coord, l0) it lets loops carry the global index
// incrementally.
func (m Map1D) GlobalStride() int {
	if m.Kind == Cyclic {
		return m.Coords()
	}
	return 1
}

func (m Map1D) check(e int) {
	if e < 0 || e >= m.N {
		panic(fmt.Sprintf("embed: index %d out of [0,%d)", e, m.N))
	}
}
