package embed

import (
	"testing"
	"testing/quick"

	"vmprim/internal/gray"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := NewGrid(-1, 2); err == nil {
		t.Fatal("negative dr accepted")
	}
	if _, err := NewGrid(2, -1); err == nil {
		t.Fatal("negative dc accepted")
	}
	if _, err := NewGrid(15, 15); err == nil {
		t.Fatal("oversized grid accepted")
	}
	g, err := NewGrid(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.PRows() != 4 || g.PCols() != 8 || g.P() != 32 || g.D != 5 {
		t.Fatalf("grid = %+v", g)
	}
}

func TestGridMasksPartitionCube(t *testing.T) {
	for dr := 0; dr <= 4; dr++ {
		for dc := 0; dc <= 4; dc++ {
			g, err := NewGrid(dr, dc)
			if err != nil {
				t.Fatal(err)
			}
			if g.RowMask()&g.ColMask() != 0 {
				t.Fatalf("dr=%d dc=%d: masks overlap", dr, dc)
			}
			if g.RowMask()|g.ColMask() != (1<<g.D)-1 {
				t.Fatalf("dr=%d dc=%d: masks do not cover the cube", dr, dc)
			}
		}
	}
}

func TestProcAtRoundTrip(t *testing.T) {
	g, _ := NewGrid(3, 2)
	seen := make(map[int]bool)
	for gr := 0; gr < g.PRows(); gr++ {
		for gc := 0; gc < g.PCols(); gc++ {
			pid := g.ProcAt(gr, gc)
			if pid < 0 || pid >= g.P() {
				t.Fatalf("ProcAt(%d,%d) = %d out of range", gr, gc, pid)
			}
			if seen[pid] {
				t.Fatalf("ProcAt not injective at (%d,%d)", gr, gc)
			}
			seen[pid] = true
			if g.RowOf(pid) != gr || g.ColOf(pid) != gc {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", gr, gc, pid, g.RowOf(pid), g.ColOf(pid))
			}
		}
	}
}

func TestGridAdjacency(t *testing.T) {
	// Gray coding: neighboring grid coordinates are cube neighbors.
	g, _ := NewGrid(3, 3)
	for gr := 0; gr+1 < g.PRows(); gr++ {
		a, b := g.ProcAt(gr, 2), g.ProcAt(gr+1, 2)
		if gray.OnesCount(a^b) != 1 {
			t.Fatalf("grid rows %d,%d not cube neighbors", gr, gr+1)
		}
	}
	for gc := 0; gc+1 < g.PCols(); gc++ {
		a, b := g.ProcAt(1, gc), g.ProcAt(1, gc+1)
		if gray.OnesCount(a^b) != 1 {
			t.Fatalf("grid cols %d,%d not cube neighbors", gc, gc+1)
		}
	}
}

func TestRowRelMatchesCompact(t *testing.T) {
	g, _ := NewGrid(2, 3)
	for gr := 0; gr < g.PRows(); gr++ {
		for gc := 0; gc < g.PCols(); gc++ {
			pid := g.ProcAt(gr, gc)
			if gray.Compact(pid, g.RowMask()) != g.RowRel(gr) {
				t.Fatalf("RowRel(%d) inconsistent with Compact", gr)
			}
			if gray.Compact(pid, g.ColMask()) != g.ColRel(gc) {
				t.Fatalf("ColRel(%d) inconsistent with Compact", gc)
			}
		}
	}
}

func TestProcAtPanicsOutOfRange(t *testing.T) {
	g, _ := NewGrid(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	g.ProcAt(2, 0)
}

func TestSplitForSquare(t *testing.T) {
	g := SplitFor(6, 512, 512)
	if g.Dr != 3 || g.Dc != 3 {
		t.Fatalf("square split = %+v, want 3+3", g)
	}
}

func TestSplitForWide(t *testing.T) {
	// 16 x 4096: all processors should go to the column axis.
	g := SplitFor(4, 16, 4096)
	if g.Dc <= g.Dr {
		t.Fatalf("wide split = %+v, want dc > dr", g)
	}
}

func TestSplitForAvoidsIdleProcs(t *testing.T) {
	// 2 rows on a 16-proc cube: at most 1 row bit is usable.
	g := SplitFor(4, 2, 1024)
	if g.Dr > 1 {
		t.Fatalf("split %+v idles row processors", g)
	}
}

func TestMap1DBlock(t *testing.T) {
	m, err := NewMap1D(10, 2, Block) // 10 over 4 coords: B=3
	if err != nil {
		t.Fatal(err)
	}
	if m.B != 3 || m.PaddedN() != 12 || m.Coords() != 4 {
		t.Fatalf("map = %+v", m)
	}
	wantCoord := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3}
	wantLocal := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}
	for e := 0; e < 10; e++ {
		if m.CoordOf(e) != wantCoord[e] || m.LocalOf(e) != wantLocal[e] {
			t.Fatalf("e=%d: (%d,%d), want (%d,%d)", e, m.CoordOf(e), m.LocalOf(e), wantCoord[e], wantLocal[e])
		}
	}
	if m.GlobalOf(3, 1) != -1 || m.GlobalOf(3, 2) != -1 {
		t.Fatal("padding slots not detected")
	}
}

func TestMap1DCyclic(t *testing.T) {
	m, err := NewMap1D(10, 2, Cyclic)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 10; e++ {
		if m.CoordOf(e) != e%4 || m.LocalOf(e) != e/4 {
			t.Fatalf("e=%d: (%d,%d)", e, m.CoordOf(e), m.LocalOf(e))
		}
	}
	// Padded: coords 2,3 at local 2 are indices 10, 11 -> padding.
	if m.GlobalOf(2, 2) != -1 || m.GlobalOf(3, 2) != -1 {
		t.Fatal("cyclic padding slots not detected")
	}
	if m.GlobalOf(1, 2) != 9 {
		t.Fatalf("GlobalOf(1,2) = %d, want 9", m.GlobalOf(1, 2))
	}
}

func TestMap1DRoundTripQuick(t *testing.T) {
	f := func(nRaw uint16, kRaw, kindRaw uint8) bool {
		n := int(nRaw)%2000 + 1
		k := int(kRaw) % 6
		kind := Block
		if kindRaw%2 == 1 {
			kind = Cyclic
		}
		m, err := NewMap1D(n, k, kind)
		if err != nil {
			return false
		}
		for e := 0; e < n; e++ {
			if m.GlobalOf(m.CoordOf(e), m.LocalOf(e)) != e {
				return false
			}
		}
		// Every non-padding slot maps back consistently.
		count := 0
		for c := 0; c < m.Coords(); c++ {
			for l := 0; l < m.B; l++ {
				if g := m.GlobalOf(c, l); g >= 0 {
					count++
					if m.CoordOf(g) != c || m.LocalOf(g) != l {
						return false
					}
				}
			}
		}
		return count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMap1DLoadBalance(t *testing.T) {
	// No coordinate may hold more than ceil(n/coords) real elements,
	// and blocks differ in size by at most... B (block) or 1 (cyclic).
	for _, kind := range []MapKind{Block, Cyclic} {
		m, _ := NewMap1D(1000, 4, kind)
		counts := make([]int, m.Coords())
		for e := 0; e < m.N; e++ {
			counts[m.CoordOf(e)]++
		}
		for c, cnt := range counts {
			if cnt > m.B {
				t.Fatalf("%v: coord %d holds %d > B=%d", kind, c, cnt, m.B)
			}
		}
		if kind == Cyclic {
			min, max := counts[0], counts[0]
			for _, c := range counts {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			if max-min > 1 {
				t.Fatalf("cyclic imbalance %d", max-min)
			}
		}
	}
}

func TestMap1DZeroElements(t *testing.T) {
	m, err := NewMap1D(0, 3, Block)
	if err != nil {
		t.Fatal(err)
	}
	if m.B != 0 || m.PaddedN() != 0 {
		t.Fatalf("empty map = %+v", m)
	}
}

func TestMap1DValidation(t *testing.T) {
	if _, err := NewMap1D(-1, 2, Block); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := NewMap1D(5, -1, Block); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestMapKindString(t *testing.T) {
	if Block.String() != "block" || Cyclic.String() != "cyclic" {
		t.Fatal("MapKind strings")
	}
	if MapKind(9).String() == "" {
		t.Fatal("unknown MapKind string empty")
	}
}

func TestMapPanicsOnBadIndex(t *testing.T) {
	m, _ := NewMap1D(5, 1, Block)
	for _, f := range []func(){
		func() { m.CoordOf(5) },
		func() { m.CoordOf(-1) },
		func() { m.LocalOf(99) },
		func() { m.GlobalOf(2, 0) },
		func() { m.GlobalOf(0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}
