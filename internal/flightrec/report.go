package flightrec

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"vmprim/internal/obs"
)

// Post-mortem report model. The machine assembles a Report after a
// failed run — deadlock watchdog, tag mismatch, or any panic in a
// processor body — from state that is quiescent by then: per-processor
// wait registers, flight-recorder rings, open profiler span stacks,
// bucket accumulators, and the messages still queued on the links.

// WaitKind names what a processor was blocked on when the run died.
type WaitKind uint8

const (
	// WaitNone means the processor was not blocked in the machine when
	// the run ended (it finished, was computing, or panicked itself).
	WaitNone WaitKind = iota
	// WaitRecv means the processor was blocked receiving.
	WaitRecv
	// WaitSend means the processor was blocked posting to a full link.
	WaitSend
)

// String returns the wait-kind name used in the report.
func (k WaitKind) String() string {
	switch k {
	case WaitRecv:
		return "recv"
	case WaitSend:
		return "send"
	default:
		return ""
	}
}

// CapturedBuf summarizes one payload handed to the recorder with
// Proc.Capture: its length and a short prefix of its words.
type CapturedBuf struct {
	Len  int       `json:"len"`
	Head []float64 `json:"head,omitempty"`
}

// ProcState is one processor's post-mortem entry.
type ProcState struct {
	// ID is the processor's cube address.
	ID int `json:"proc"`
	// ClockUs is the processor's virtual clock when the run died.
	ClockUs float64 `json:"clock_us"`
	// BehindUs is the gap to the most advanced processor's clock: how
	// far this processor had fallen idle in virtual time.
	BehindUs float64 `json:"behind_us"`
	// Buckets splits the clock into compute/startup/transfer/idle.
	Buckets obs.Buckets `json:"buckets"`
	// Wait, WaitDim and WaitTag say what the processor was blocked on
	// ("recv" or "send" with the link dimension and protocol tag);
	// Wait is empty if it was not blocked. WaitDim and WaitTag carry no
	// omitempty: dimension 0 and tag 0 are meaningful values.
	Wait    string `json:"wait,omitempty"`
	WaitDim int    `json:"wait_dim"`
	WaitTag int    `json:"wait_tag"`
	// WaitSinceUs is the virtual clock at which the blocking operation
	// began (equal to ClockUs: a blocked clock does not advance).
	WaitSinceUs float64 `json:"wait_since_us,omitempty"`
	// OpenSpans is the profiler span stack left open when the run died
	// (outermost first); empty unless the run was profiled.
	OpenSpans []string `json:"open_spans,omitempty"`
	// Captured lists payloads handed to the recorder with Capture,
	// oldest first.
	Captured []CapturedBuf `json:"captured,omitempty"`
	// Events is the flight-recorder tail, oldest first. EventsTotal
	// counts all events recorded this run, including overwritten ones.
	Events      []Event `json:"events"`
	EventsTotal uint64  `json:"events_total"`
}

// kindedEvent adds the kind string to the Event JSON without keeping a
// redundant field live in the hot ring struct.
type kindedEvent struct {
	Kind string `json:"kind"`
	Event
}

// MarshalJSON renders ProcState with event kinds spelled out.
func (ps ProcState) MarshalJSON() ([]byte, error) {
	type alias ProcState
	evs := make([]kindedEvent, len(ps.Events))
	for i, ev := range ps.Events {
		evs[i] = kindedEvent{Kind: ev.KindName(), Event: ev}
	}
	return json.Marshal(struct {
		alias
		Events []kindedEvent `json:"events"`
	}{alias(ps), evs})
}

// LinkState is one directed link that still held undelivered messages
// when the run died — the queue the blocked receiver never drained, or
// the mate of a mismatched exchange.
type LinkState struct {
	Src int `json:"src"`
	Dim int `json:"dim"`
	Dst int `json:"dst"`
	// Queued is the number of undelivered messages; QueuedWords their
	// total payload.
	Queued      int `json:"queued"`
	QueuedWords int `json:"queued_words"`
	// HeadTag and HeadVT describe the oldest undelivered message.
	HeadTag int     `json:"head_tag"`
	HeadVT  float64 `json:"head_vt_us"`
}

// Report is the structured post-mortem of one failed run.
type Report struct {
	// Cause is the failure message (the first processor panic).
	Cause string `json:"cause"`
	// FailedProc is the processor whose panic ended the run, or -1.
	FailedProc int `json:"failed_proc"`
	// Dim and P describe the machine.
	Dim int `json:"dim"`
	P   int `json:"p"`
	// MaxClockUs is the most advanced virtual clock at death.
	MaxClockUs float64 `json:"max_clock_us"`
	// Blocked counts processors with a non-empty Wait.
	Blocked int `json:"blocked"`
	// Procs holds one entry per processor, by cube address.
	Procs []ProcState `json:"procs"`
	// Links lists the links with undelivered messages, by source then
	// dimension.
	Links []LinkState `json:"links,omitempty"`
	// Crit is the critical path through the run up to the failure,
	// present when the machine ran with critical-path tracing enabled.
	// For a deadlock it shows which causal chain the machine was stuck
	// behind when the watchdog fired.
	Crit *obs.CritPath `json:"critpath,omitempty"`
}

// WriteJSON writes the report as an indented JSON document.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report for a terminal: the cause, the per-
// processor blocked-state table, each processor's flight-recorder
// tail, and the link occupancy.
func (r *Report) WriteText(w io.Writer) {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "post-mortem: %s\n", r.Cause)
	fmt.Fprintf(bw, "machine: p=%d (d=%d)  max clock %.1f us  blocked %d/%d procs",
		r.P, r.Dim, r.MaxClockUs, r.Blocked, r.P)
	if r.FailedProc >= 0 {
		fmt.Fprintf(bw, "  first failure on proc %d", r.FailedProc)
	}
	fmt.Fprintln(bw)

	fmt.Fprintf(bw, "\n%-5s %12s %10s  %-22s %s\n", "proc", "clock", "behind", "blocked on", "open spans")
	for i := range r.Procs {
		ps := &r.Procs[i]
		blocked := "-"
		if ps.Wait != "" {
			blocked = fmt.Sprintf("%s dim %d tag %d", ps.Wait, ps.WaitDim, ps.WaitTag)
		}
		spans := strings.Join(ps.OpenSpans, " > ")
		fmt.Fprintf(bw, "%-5d %12.1f %10.1f  %-22s %s\n", ps.ID, ps.ClockUs, ps.BehindUs, blocked, spans)
	}

	for i := range r.Procs {
		ps := &r.Procs[i]
		if len(ps.Events) == 0 && len(ps.Captured) == 0 {
			continue
		}
		fmt.Fprintf(bw, "\nproc %d flight recorder (last %d of %d events):\n",
			ps.ID, len(ps.Events), ps.EventsTotal)
		if dropped := ps.EventsTotal - uint64(len(ps.Events)); dropped > 0 {
			fmt.Fprintf(bw, "  … %d earlier events dropped\n", dropped)
		}
		for _, ev := range ps.Events {
			fmt.Fprintf(bw, "  #%-5d t=%-10.1f %-4s", ev.Seq, float64(ev.VT), ev.Kind)
			if ev.Kind == KindCollective {
				fmt.Fprintf(bw, " %-14s mask %#x tag %d", ev.Label, ev.Dim, ev.Tag)
			} else {
				fmt.Fprintf(bw, " dim %d tag %d %dw", ev.Dim, ev.Tag, ev.Words)
			}
			if ev.SpanName != "" {
				fmt.Fprintf(bw, "  in %s", ev.SpanName)
			}
			fmt.Fprintln(bw)
		}
		for _, c := range ps.Captured {
			fmt.Fprintf(bw, "  captured payload: %d words, head %v\n", c.Len, c.Head)
		}
	}

	if len(r.Links) > 0 {
		fmt.Fprintf(bw, "\nundelivered link messages:\n")
		for _, l := range r.Links {
			fmt.Fprintf(bw, "  %d -dim%d-> %d: %d msg(s), %d words, oldest tag %d sent t=%.1f\n",
				l.Src, l.Dim, l.Dst, l.Queued, l.QueuedWords, l.HeadTag, l.HeadVT)
		}
	}
	if r.Crit != nil {
		fmt.Fprintln(bw)
		r.Crit.WriteText(bw)
	}
	bw.Flush()
}
