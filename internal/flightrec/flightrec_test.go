package flightrec

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vmprim/internal/costmodel"
)

func TestRingRecordAndSnapshot(t *testing.T) {
	var r Ring
	// Zero ring drops everything.
	r.Record(Event{Kind: KindSend})
	if got := r.Snapshot(nil); len(got) != 0 || r.Total() != 0 {
		t.Fatalf("zero ring retained events: %v (total %d)", got, r.Total())
	}

	r.Init(3) // rounds up to 4
	if r.Depth() != 4 {
		t.Fatalf("Depth = %d, want 4", r.Depth())
	}
	for i := 0; i < 3; i++ {
		r.Record(Event{Kind: KindSend, Tag: i})
	}
	got := r.Snapshot(nil)
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, ev := range got {
		if ev.Seq != uint64(i) || ev.Tag != i {
			t.Fatalf("event %d = %+v, want seq/tag %d", i, ev, i)
		}
	}
}

func TestRingWrapsKeepingNewest(t *testing.T) {
	var r Ring
	r.Init(4)
	for i := 0; i < 11; i++ {
		r.Record(Event{Kind: KindRecv, Tag: i, VT: costmodel.Time(10 * i)})
	}
	if r.Total() != 11 {
		t.Fatalf("Total = %d, want 11", r.Total())
	}
	got := r.Snapshot(nil)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	for i, ev := range got {
		wantSeq := uint64(7 + i)
		if ev.Seq != wantSeq || ev.Tag != int(wantSeq) {
			t.Fatalf("event %d = %+v, want seq %d", i, ev, wantSeq)
		}
		if i > 0 && ev.VT < got[i-1].VT {
			t.Fatalf("VT order violated at %d: %v after %v", i, ev.VT, got[i-1].VT)
		}
	}
	r.Reset()
	if r.Total() != 0 || len(r.Snapshot(nil)) != 0 {
		t.Fatal("Reset did not clear the ring")
	}
}

// TestRingTruncationBoundary pins the exact point where truncation
// starts: a ring holding exactly Depth events has dropped nothing;
// one more record evicts precisely the oldest event.
func TestRingTruncationBoundary(t *testing.T) {
	var r Ring
	r.Init(8)
	for i := 0; i < r.Depth(); i++ {
		r.Record(Event{Kind: KindSend, Tag: i})
	}
	got := r.Snapshot(nil)
	if len(got) != 8 || got[0].Seq != 0 {
		t.Fatalf("full ring: len %d oldest seq %d, want 8 and 0 (nothing dropped)", len(got), got[0].Seq)
	}
	if dropped := r.Total() - uint64(len(got)); dropped != 0 {
		t.Fatalf("full ring reports %d dropped", dropped)
	}

	r.Record(Event{Kind: KindSend, Tag: 8})
	got = r.Snapshot(got[:0])
	if len(got) != 8 || got[0].Seq != 1 || got[7].Seq != 8 {
		t.Fatalf("after one wrap: len %d seqs %d..%d, want 8 and 1..8", len(got), got[0].Seq, got[7].Seq)
	}
	if dropped := r.Total() - uint64(len(got)); dropped != 1 {
		t.Fatalf("after one wrap: %d dropped, want 1", dropped)
	}
}

func sampleReport() *Report {
	return &Report{
		Cause:      "hypercube: processor 0: recv timeout on dim 1 (tag 7): deadlock",
		FailedProc: 0,
		Dim:        1,
		P:          2,
		MaxClockUs: 12.5,
		Blocked:    2,
		Procs: []ProcState{
			{
				ID: 0, ClockUs: 12.5, Wait: "recv", WaitDim: 1, WaitTag: 7, WaitSinceUs: 12.5,
				OpenSpans: []string{"phase", "exchange"},
				Events: []Event{
					{Seq: 3, VT: 10, Kind: KindCollective, Label: "Bcast", Dim: 3, Tag: 6},
					{Seq: 4, VT: 12.5, Kind: KindSend, Dim: 1, Tag: 7, Words: 8, SpanName: "exchange"},
				},
				EventsTotal: 5,
				Captured:    []CapturedBuf{{Len: 8, Head: []float64{1, 2}}},
			},
			{
				ID: 1, ClockUs: 11, BehindUs: 1.5, Wait: "recv", WaitDim: 0, WaitTag: 7, WaitSinceUs: 11,
				Events:      []Event{{Seq: 0, VT: 11, Kind: KindRecv, Dim: 0, Tag: 7, Words: 4}},
				EventsTotal: 1,
			},
		},
		Links: []LinkState{{Src: 0, Dim: 1, Dst: 1, Queued: 1, QueuedWords: 8, HeadTag: 7, HeadVT: 12.5}},
	}
}

func TestReportWriteText(t *testing.T) {
	var buf bytes.Buffer
	sampleReport().WriteText(&buf)
	out := buf.String()
	for _, want := range []string{
		"post-mortem:", "deadlock",
		"blocked 2/2 procs",
		"recv dim 1 tag 7",
		"phase > exchange",
		"flight recorder (last 2 of 5 events)",
		"… 3 earlier events dropped",
		"Bcast",
		"captured payload: 8 words",
		"undelivered link messages",
		"0 -dim1-> 1: 1 msg(s), 8 words",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}

// The dropped-events marker appears only when the ring actually
// truncated: a proc whose ring kept everything shows no such line.
func TestReportWriteTextNoDroppedLineWhenComplete(t *testing.T) {
	r := sampleReport()
	for i := range r.Procs {
		r.Procs[i].EventsTotal = uint64(len(r.Procs[i].Events))
	}
	var buf bytes.Buffer
	r.WriteText(&buf)
	if strings.Contains(buf.String(), "earlier events dropped") {
		t.Fatalf("dropped marker printed for a complete ring:\n%s", buf.String())
	}
}

func TestReportWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cause   string `json:"cause"`
		Blocked int    `json:"blocked"`
		Procs   []struct {
			Proc    int    `json:"proc"`
			Wait    string `json:"wait"`
			WaitDim int    `json:"wait_dim"`
			Events  []struct {
				Kind string  `json:"kind"`
				VT   float64 `json:"vt_us"`
				Span string  `json:"span"`
			} `json:"events"`
		} `json:"procs"`
		Links []struct {
			Queued int `json:"queued"`
		} `json:"links"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report JSON does not parse: %v\n%s", err, buf.String())
	}
	if !strings.Contains(doc.Cause, "deadlock") || doc.Blocked != 2 {
		t.Fatalf("unexpected header: %+v", doc)
	}
	if len(doc.Procs) != 2 || doc.Procs[0].Wait != "recv" || doc.Procs[0].WaitDim != 1 {
		t.Fatalf("unexpected procs: %+v", doc.Procs)
	}
	evs := doc.Procs[0].Events
	if len(evs) != 2 || evs[0].Kind != "coll" || evs[1].Kind != "send" || evs[1].Span != "exchange" {
		t.Fatalf("unexpected events: %+v", evs)
	}
	if len(doc.Links) != 1 || doc.Links[0].Queued != 1 {
		t.Fatalf("unexpected links: %+v", doc.Links)
	}
}
