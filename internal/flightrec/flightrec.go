// Package flightrec is the simulator's flight recorder: a bounded,
// always-on, per-processor ring buffer of recent simulator events
// (sends, receives, collective entries) and the post-mortem report the
// machine assembles from it when a run dies — by deadlock-watchdog
// timeout or by a panic inside a processor body.
//
// The package follows the same discipline as internal/obs: it is
// passive and cheap. internal/hypercube records events into each
// processor's Ring on the communication hot paths (a single struct
// store per message, no allocation, no locking — each ring is touched
// only by its processor's goroutine during a run), and assembles a
// Report only after a run has already failed. flightrec depends only
// on internal/costmodel, so every layer above the machine can import
// it without cycles.
//
// Events are kept in causal (sequence) order per processor. Under the
// one-port machine model a processor's virtual clock is nondecreasing
// across events, so the sequence order is also virtual-time order;
// all-port ExchangeAll phases may post their per-dimension messages
// with non-monotone arrival stamps inside the single phase, which is
// the one documented exception.
package flightrec

import "vmprim/internal/costmodel"

// Kind classifies one recorded event.
type Kind uint8

const (
	// KindSend is a link message posted to a neighbor.
	KindSend Kind = iota
	// KindRecv is a link message consumed from a neighbor.
	KindRecv
	// KindCollective is the entry into a collective protocol (or a
	// router phase); Label carries the protocol name and Dim the
	// subcube dimension mask.
	KindCollective
	// KindCapture is a payload handed to the recorder with
	// Proc.Capture for post-mortem inspection.
	KindCapture
)

// String returns the compact event-kind name used by the renderers.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindCollective:
		return "coll"
	case KindCapture:
		return "capt"
	default:
		return "?"
	}
}

// Event is one recorded simulator event. The ring stores events by
// value; Label is always a static string (a collective name), so
// recording never allocates.
type Event struct {
	// Seq is the processor-local sequence number, counted from 0 at
	// the start of the run over all events ever recorded (not just the
	// ones still in the ring).
	Seq uint64 `json:"seq"`
	// VT is the processor's virtual time when the event was recorded;
	// for sends it is the message's arrival stamp.
	VT costmodel.Time `json:"vt_us"`
	// Kind classifies the event.
	Kind Kind `json:"-"`
	// Label is the collective protocol name for KindCollective, empty
	// otherwise.
	Label string `json:"label,omitempty"`
	// Dim is the cube dimension of the link (KindSend/KindRecv) or the
	// subcube dimension mask (KindCollective).
	Dim int `json:"dim"`
	// Tag is the protocol tag.
	Tag int `json:"tag"`
	// Words is the payload length in 64-bit words.
	Words int `json:"words"`
	// Span is the node id of the innermost open profiler span at
	// record time (-1 when profiling is off or no span is open); the
	// report resolves it to SpanName.
	Span int `json:"-"`
	// Depth is the open-span-stack depth at record time.
	Depth int `json:"span_depth,omitempty"`
	// SpanName is the resolved name of Span, filled in by the report
	// assembler (empty in the ring).
	SpanName string `json:"span,omitempty"`
}

// KindName is the string form of Kind for the JSON report (Kind itself
// is excluded from marshalling so the document stays readable).
func (ev Event) KindName() string { return ev.Kind.String() }

// Ring is a bounded buffer of the most recent events on one processor.
// The zero Ring drops everything; size it with Init. All methods are
// single-goroutine: the owning processor records during a run, and the
// machine snapshots only after the run has ended.
type Ring struct {
	buf []Event // capacity is a power of two; mask = len-1
	n   uint64  // total events recorded since the last Reset
}

// Init (re)allocates the ring to hold k events, rounding k up to the
// next power of two; k <= 0 disables recording.
func (r *Ring) Init(k int) {
	if k <= 0 {
		r.buf = nil
		r.n = 0
		return
	}
	c := 1
	for c < k {
		c <<= 1
	}
	r.buf = make([]Event, c)
	r.n = 0
}

// Reset forgets all recorded events without releasing the buffer.
func (r *Ring) Reset() { r.n = 0 }

// Depth returns the ring capacity in events.
func (r *Ring) Depth() int { return len(r.buf) }

// Total returns how many events were recorded since the last Reset,
// including ones that have already been overwritten.
func (r *Ring) Total() uint64 { return r.n }

// Record appends ev, stamping its sequence number and overwriting the
// oldest event once the ring is full.
func (r *Ring) Record(ev Event) {
	if len(r.buf) == 0 {
		return
	}
	ev.Seq = r.n
	r.buf[r.n&uint64(len(r.buf)-1)] = ev
	r.n++
}

// Snapshot appends the retained events to dst, oldest first, and
// returns the extended slice.
func (r *Ring) Snapshot(dst []Event) []Event {
	if len(r.buf) == 0 || r.n == 0 {
		return dst
	}
	mask := uint64(len(r.buf) - 1)
	start := uint64(0)
	if r.n > uint64(len(r.buf)) {
		start = r.n - uint64(len(r.buf))
	}
	for s := start; s < r.n; s++ {
		dst = append(dst, r.buf[s&mask])
	}
	return dst
}
