// Package taint is the shared identity-taint engine of the SPMD
// analyzers (spmdsym, collorder, collectives): it decides which local
// variables and expressions of a function derive from processor
// identity.
//
// The model is deliberately simple and shared so the analyzers agree
// on what "identity-derived" means:
//
//   - sources are direct identity reads (Proc.ID, Env.GridRow/GridCol
//     — vmlib.IsIdentityRead) plus any call the Config classifies as
//     an identity source (helpers summarized in the same package, or
//     cross-package via the collectives analyzer's facts);
//   - taint propagates through local assignments and declarations to
//     a fixpoint;
//   - collective results sanitize: a collective's result is
//     replicated — identical on every processor even when its
//     arguments differ per processor — so a call the Config
//     classifies as replicated contributes no taint;
//   - a function literal in an expression does not taint the
//     host-side result of the call it is passed to (the SPMD body
//     handed to Machine.Run is its own scope).
package taint

import (
	"go/ast"
	"go/types"

	"vmprim/internal/analysis/vmlib"
)

// Config parameterizes the engine with the two call classifications
// that differ per analyzer invocation.
type Config struct {
	Info *types.Info

	// IsIdentityCall reports calls whose results derive from
	// processor identity beyond the direct vmlib.IsIdentityRead
	// sources (identity-source helper functions). May be nil.
	IsIdentityCall func(*ast.CallExpr) bool

	// IsReplicatedCall reports calls whose results are replicated
	// across processors (collectives) and therefore sanitize taint.
	// May be nil.
	IsReplicatedCall func(*ast.CallExpr) bool
}

// Objects computes the set of objects in fn tainted by processor
// identity, to a fixpoint over local assignments and declarations.
func (c Config) Objects(fn ast.Node) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, r := range n.Rhs {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && c.Expr(tainted, r) {
							changed = taintIdent(c.Info, tainted, id) || changed
						}
					}
				} else if len(n.Rhs) == 1 && c.Expr(tainted, n.Rhs[0]) {
					for _, l := range n.Lhs {
						if id, ok := l.(*ast.Ident); ok {
							changed = taintIdent(c.Info, tainted, id) || changed
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if c.Expr(tainted, v) {
						if len(n.Names) == len(n.Values) {
							changed = taintIdent(c.Info, tainted, n.Names[i]) || changed
						} else {
							for _, name := range n.Names {
								changed = taintIdent(c.Info, tainted, name) || changed
							}
						}
					}
				}
			}
			return true
		})
	}
	return tainted
}

// Expr reports whether e reads processor identity, given the tainted
// object set.
func (c Config) Expr(tainted map[types.Object]bool, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if vmlib.IsIdentityRead(c.Info, n) || (c.IsIdentityCall != nil && c.IsIdentityCall(n)) {
				found = true
				return false
			}
			if c.IsReplicatedCall != nil && c.IsReplicatedCall(n) {
				return false // replicated result: no taint in, none out
			}
		case *ast.Ident:
			if obj := c.Info.Uses[n]; obj != nil && tainted[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// taintIdent marks id's object tainted, reporting whether that is new
// information.
func taintIdent(info *types.Info, tainted map[types.Object]bool, id *ast.Ident) bool {
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil || tainted[obj] {
		return false
	}
	tainted[obj] = true
	return true
}
