package framework_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmprim/internal/analysis/analysistest"
	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/recyclecheck"
)

// TestStaleSuppressionAudit: a //lint:allow directive that suppresses
// nothing is itself reported (pseudo-analyzer "directive") with a
// whole-line deletion fix matching the fixture's .golden, while the
// directive over a real diagnostic survives and is audited as used.
func TestStaleSuppressionAudit(t *testing.T) {
	testdata := filepath.Join("..", "testdata")
	res, fset := analysistest.Result(t, testdata, recyclecheck.Analyzer,
		"vmprim/internal/apps/stale", true)

	if len(res.Findings) != 1 {
		t.Fatalf("want exactly the stale-directive finding, got %v", res.Findings)
	}
	fd := res.Findings[0]
	if fd.Analyzer != "directive" || !strings.Contains(fd.Message, "suppresses no diagnostic") {
		t.Errorf("unexpected finding: %s", fd)
	}
	if len(fd.Fixes) != 1 {
		t.Fatalf("stale directive carries no deletion fix: %s", fd)
	}

	var sups []framework.Suppression
	for _, s := range res.Suppressions {
		if filepath.Base(s.File) == "stale.go" {
			sups = append(sups, s)
		}
	}
	if len(sups) != 2 {
		t.Fatalf("want 2 audited suppressions, got %+v", sups)
	}
	for _, s := range sups {
		if s.Analyzer != "recyclecheck" || s.Reason == "" {
			t.Errorf("suppression missing analyzer or reason: %+v", s)
		}
	}
	if sups[0].Used || sups[0].Line != fd.Pos.Line {
		t.Errorf("stale directive should be audited unused at the finding's line: %+v", sups[0])
	}
	if !sups[1].Used {
		t.Errorf("directive over the real leak should be audited used: %+v", sups[1])
	}

	fixed, err := framework.ApplyFixes(fset, res.Findings)
	if err != nil {
		t.Fatal(err)
	}
	if len(fixed) != 1 {
		t.Fatalf("want one fixed file, got %d", len(fixed))
	}
	for file, got := range fixed {
		want, err := os.ReadFile(file + ".golden")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("deleting the stale directive diverges from golden:\n%s",
				framework.Diff(file, want, got))
		}
	}
}
