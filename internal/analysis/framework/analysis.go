// Package framework is a self-contained reimplementation of the slice
// of golang.org/x/tools/go/analysis that the vmlint analyzers need:
// the Analyzer/Pass/Diagnostic vocabulary, package facts with a
// Requires graph, suggested fixes, a package loader, a standalone
// runner with //lint:allow suppression, and the go vet -vettool
// unit-checker protocol.
//
// The build environment for this repository is hermetic — the module
// proxy is unreachable and the module must stay dependency-free — so
// the real x/tools packages cannot be added to go.mod. The API below
// mirrors theirs closely enough that swapping this package for
// golang.org/x/tools/go/analysis (plus unitchecker and analysistest)
// is a mechanical import change, which is the intended migration once
// the dependency is available.
//
// Differences from the real framework, chosen for simplicity:
//
//   - facts are package-level only: an analyzer summarizes a package
//     (which functions perform collectives, which discharge buffer
//     parameters) rather than attaching facts to individual objects;
//   - no SSA or CFG: analyzers work on the AST and go/types info;
//   - package loading shells out to `go list -export` and feeds the
//     compiler's export data to go/importer, instead of using
//     go/packages.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// An Analyzer is one static check: a name, a documentation string, and
// a Run function invoked once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then details.
	Doc string

	// Requires lists the analyzers whose results this one consumes.
	// The runner executes them first (on the same package) and makes
	// their results available through Pass.ResultOf.
	Requires []*Analyzer

	// FactTypes lists the concrete types (pointers to gob-encodable
	// structs implementing Fact) this analyzer may export or import.
	// Declaring them here registers them for serialization through the
	// vet -vettool protocol.
	FactTypes []Fact

	// Run applies the analyzer to a package. It reports findings via
	// pass.Report/Reportf, returns a result value for dependent
	// analyzers (or nil), and returns an error only for internal
	// analyzer failures (never for findings).
	Run func(pass *Pass) (any, error)
}

// A Fact is a serializable per-package summary produced by one
// analyzer while analyzing a package and consumed when analyzing its
// importers — the mechanism that carries spmdsym's identity-taint
// summaries and recyclecheck's ownership summaries across package
// boundaries. Concrete fact types must be pointers to gob-encodable
// structs, and a zero-valued fact must be distinguishable from an
// absent one (ImportPackageFact reports presence separately).
type Fact interface {
	// AFact is a marker method tying the type to this interface.
	AFact()
}

// A PackageFact pairs a fact with the package it describes.
type PackageFact struct {
	Path string
	Fact Fact
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being applied.
	Analyzer *Analyzer

	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet

	// Files are the package's parsed syntax trees (comments included).
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info

	// ResultOf holds the results of the analyzers named in
	// Analyzer.Requires, computed on this same package.
	ResultOf map[*Analyzer]any

	// Report delivers one diagnostic. The runner installs it; analyzer
	// code should prefer Reportf.
	Report func(Diagnostic)

	// facts is the run-wide fact store (shared across packages and
	// analyzers within one runner invocation).
	facts *FactStore
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportPackageFact records fact as this package's summary for the
// fact's concrete type, replacing any previous fact of that type. The
// type must be declared in Analyzer.FactTypes.
func (p *Pass) ExportPackageFact(fact Fact) {
	p.checkFactType(fact)
	p.facts.set(p.Pkg.Path(), fact)
}

// ImportPackageFact copies the fact of fact's concrete type recorded
// for pkg (by this or an earlier pass, or read from a dependency's
// vetx file) into *fact, reporting whether one was present. The type
// must be declared in Analyzer.FactTypes.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	p.checkFactType(fact)
	return p.facts.get(pkg.Path(), fact)
}

// AllPackageFacts returns every fact in the store whose concrete type
// is declared in Analyzer.FactTypes, across all packages seen so far
// (analyzed earlier in this run, or imported through vetx files).
func (p *Pass) AllPackageFacts() []PackageFact {
	allowed := make(map[reflect.Type]bool, len(p.Analyzer.FactTypes))
	for _, ft := range p.Analyzer.FactTypes {
		allowed[reflect.TypeOf(ft)] = true
	}
	var out []PackageFact
	for _, pf := range p.facts.all() {
		if allowed[reflect.TypeOf(pf.Fact)] {
			out = append(out, pf)
		}
	}
	return out
}

// checkFactType panics unless fact's type is declared in FactTypes —
// an undeclared type would silently fail to round-trip through the
// vet protocol, so it is an analyzer bug.
func (p *Pass) checkFactType(fact Fact) {
	t := reflect.TypeOf(fact)
	for _, ft := range p.Analyzer.FactTypes {
		if reflect.TypeOf(ft) == t {
			return
		}
	}
	panic(fmt.Sprintf("analyzer %s: fact type %s not declared in FactTypes", p.Analyzer.Name, t))
}

// A Diagnostic is one finding at a source position, optionally
// carrying machine-applicable fixes.
type Diagnostic struct {
	Pos     token.Pos
	Message string

	// SuggestedFixes are edits that resolve the diagnostic. Each fix
	// must be self-contained; the driver applies at most one fix per
	// diagnostic (the first), and drops fixes whose edits overlap
	// edits already taken from earlier diagnostics.
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one machine-applicable resolution of a
// diagnostic: a short description and the text edits that realize it.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces the source range [Pos, End) with NewText.
// End == token.NoPos means a pure insertion at Pos.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// WalkStack traverses root in depth-first source order, calling fn for
// every node with the stack of enclosing nodes (outermost first, not
// including n itself). If fn returns false the node's children are
// skipped. Analyzers use it where x/tools code would use
// inspector.WithStack.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}
