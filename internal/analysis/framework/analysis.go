// Package framework is a self-contained reimplementation of the slice
// of golang.org/x/tools/go/analysis that the vmlint analyzers need:
// the Analyzer/Pass/Diagnostic vocabulary, a package loader, a
// standalone runner with //lint:allow suppression, and the go vet
// -vettool unit-checker protocol.
//
// The build environment for this repository is hermetic — the module
// proxy is unreachable and the module must stay dependency-free — so
// the real x/tools packages cannot be added to go.mod. The API below
// mirrors theirs closely enough that swapping this package for
// golang.org/x/tools/go/analysis (plus unitchecker and analysistest)
// is a mechanical import change, which is the intended migration once
// the dependency is available.
//
// Differences from the real framework, chosen for simplicity:
//
//   - no Facts and no Requires graph: the vmlint analyzers are all
//     intra-package, so cross-package fact flow is unnecessary;
//   - no SSA or CFG: analyzers work on the AST and go/types info;
//   - package loading shells out to `go list -export` and feeds the
//     compiler's export data to go/importer, instead of using
//     go/packages.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check: a name, a documentation string, and
// a Run function invoked once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then details.
	Doc string

	// Run applies the analyzer to a package. It reports findings via
	// pass.Report/Reportf and returns an error only for internal
	// analyzer failures (never for findings).
	Run func(pass *Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being applied.
	Analyzer *Analyzer

	// Fset maps token positions of Files to file/line/column.
	Fset *token.FileSet

	// Files are the package's parsed syntax trees (comments included).
	Files []*ast.File

	// Pkg is the type-checked package.
	Pkg *types.Package

	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info

	// Report delivers one diagnostic. The runner installs it; analyzer
	// code should prefer Reportf.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// WalkStack traverses root in depth-first source order, calling fn for
// every node with the stack of enclosing nodes (outermost first, not
// including n itself). If fn returns false the node's children are
// skipped. Analyzers use it where x/tools code would use
// inspector.WithStack.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}
