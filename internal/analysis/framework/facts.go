package framework

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"reflect"
	"sort"
	"sync"
)

// The fact store.
//
// Facts are per-package summaries keyed by (package path, concrete
// fact type). Within one standalone run the store is shared across
// packages, so analyzing packages in dependency order makes every
// dependency's facts visible to its importers. Under the vet -vettool
// protocol each package is a separate process invocation; the store
// is then serialized (gob) into the unit's .vetx output file and
// reconstituted from the dependencies' .vetx inputs, which is how
// facts cross both package and process boundaries.

// A FactStore holds the package facts of one analysis run.
type FactStore struct {
	m map[factKey]Fact
}

type factKey struct {
	path string
	typ  reflect.Type
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]Fact)}
}

func (s *FactStore) set(path string, fact Fact) {
	s.m[factKey{path, reflect.TypeOf(fact)}] = fact
}

// get copies the stored fact for (path, type of *fact) into *fact,
// reporting whether one was present. fact must be a non-nil pointer.
func (s *FactStore) get(path string, fact Fact) bool {
	stored, ok := s.m[factKey{path, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	dv := reflect.ValueOf(fact).Elem()
	dv.Set(reflect.ValueOf(stored).Elem())
	return true
}

// all returns the store's contents sorted by package path then type
// name, for deterministic serialization and listings.
func (s *FactStore) all() []PackageFact {
	out := make([]PackageFact, 0, len(s.m))
	for k, f := range s.m {
		out = append(out, PackageFact{Path: k.path, Fact: f})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Path != out[j].Path {
			return out[i].Path < out[j].Path
		}
		return factTypeName(out[i].Fact) < factTypeName(out[j].Fact)
	})
	return out
}

// gobFact is the serialized form of one store entry.
type gobFact struct {
	Path string
	Fact Fact
}

// Encode writes the whole store to w in gob form. The output includes
// facts imported from dependencies, not only facts exported by the
// current unit: the vet driver hands each unit the vetx files of its
// direct imports only, so re-exporting everything seen makes facts
// flow transitively.
func (s *FactStore) Encode(w io.Writer) error {
	var gfs []gobFact
	for _, pf := range s.all() {
		gfs = append(gfs, gobFact{Path: pf.Path, Fact: pf.Fact})
	}
	return gob.NewEncoder(w).Encode(gfs)
}

// Decode merges the gob-encoded facts in data into the store. Empty
// input is accepted silently: an empty vetx file is what a fact-free
// build (or the v1 tool) writes, and treating it as "no facts" keeps
// mixed-version build caches working.
func (s *FactStore) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var gfs []gobFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&gfs); err != nil {
		return fmt.Errorf("decoding facts: %v", err)
	}
	for _, gf := range gfs {
		s.set(gf.Path, gf.Fact)
	}
	return nil
}

// factTypeName is the stable registration name for a fact's concrete
// type: the %T rendering, e.g. "*collectives.Fact".
func factTypeName(f Fact) string {
	return fmt.Sprintf("%T", f)
}

var (
	registerMu sync.Mutex
	registered = make(map[string]bool)
)

// registerFactTypes registers every fact type declared by the
// analyzers (and their Requires closure) with gob, under the stable
// %T name, so stores round-trip across processes regardless of
// registration order.
func registerFactTypes(analyzers []*Analyzer) {
	registerMu.Lock()
	defer registerMu.Unlock()
	for _, a := range closure(analyzers) {
		for _, ft := range a.FactTypes {
			name := factTypeName(ft)
			if !registered[name] {
				registered[name] = true
				gob.RegisterName(name, ft)
			}
		}
	}
}
