package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives.
//
// A comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// silences diagnostics from the named analyzer (or from every analyzer,
// for the name "all"). The reason is mandatory: a suppression without a
// recorded justification is itself a defect, and the driver rejects
// bare directives. A directive applies to
//
//   - the source line it appears on (trailing comment),
//   - the line immediately below its comment group — so several
//     directives stacked above one statement all apply to it — and
//   - the whole declaration, when it is part of a declaration's doc
//     comment.

// directivePrefix introduces a suppression comment.
const directivePrefix = "//lint:allow"

// A directive is one parsed //lint:allow comment.
type directive struct {
	analyzer string // analyzer name, or "all"
	reason   string
	file     string // filename of the comment
	line     int    // line of the comment
	// groupEnd is the last line of the comment group the directive sits
	// in: the directive also covers groupEnd+1, so a stack of
	// directives above one statement all reach it.
	groupEnd int
	pos, end token.Pos
	used     bool // suppressed at least one diagnostic this run
	// declRange is set when the directive sits in a declaration's doc
	// comment: the directive then covers [declPos, declEnd].
	declPos, declEnd token.Pos
}

// malformedDirective records a //lint:allow comment missing its
// analyzer name or reason, so the driver can fail loudly instead of
// silently suppressing nothing.
type malformedDirective struct {
	pos token.Pos
	msg string
}

// parseDirectives extracts every suppression directive from a file,
// attaching doc-comment directives to their declaration's range.
func parseDirectives(fset *token.FileSet, f *ast.File) (ds []*directive, bad []malformedDirective) {
	// Map each doc comment group to its declaration's extent.
	docRange := make(map[*ast.CommentGroup][2]token.Pos)
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Doc != nil {
				docRange[d.Doc] = [2]token.Pos{d.Pos(), d.End()}
			}
		case *ast.GenDecl:
			if d.Doc != nil {
				docRange[d.Doc] = [2]token.Pos{d.Pos(), d.End()}
			}
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:allowance — not a directive
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				bad = append(bad, malformedDirective{c.Pos(), "directive missing analyzer name: " + c.Text})
				continue
			}
			if len(fields) < 2 {
				bad = append(bad, malformedDirective{c.Pos(), "directive missing reason: " + c.Text})
				continue
			}
			pos := fset.Position(c.Pos())
			d := &directive{
				analyzer: fields[0],
				reason:   strings.Join(fields[1:], " "),
				file:     pos.Filename,
				line:     pos.Line,
				groupEnd: fset.Position(cg.End()).Line,
				pos:      c.Pos(),
				end:      c.End(),
			}
			if r, ok := docRange[cg]; ok {
				d.declPos, d.declEnd = r[0], r[1]
			}
			ds = append(ds, d)
		}
	}
	return ds, bad
}

// suppresses reports whether directive d silences a diagnostic from
// analyzer at the given position.
func (d *directive) suppresses(analyzer string, pos token.Position, tokPos token.Pos) bool {
	if d.analyzer != "all" && d.analyzer != analyzer {
		return false
	}
	if d.declPos.IsValid() && d.declPos <= tokPos && tokPos <= d.declEnd {
		return true
	}
	return d.file == pos.Filename && (d.line == pos.Line || d.groupEnd+1 == pos.Line)
}
