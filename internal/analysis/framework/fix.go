package framework

import (
	"bytes"
	"fmt"
	"go/token"
	"os"
	"sort"
)

// Suggested-fix application (vmlint -fix / -diff).
//
// Each finding contributes at most its first SuggestedFix. Edits are
// deduplicated (several diagnostics may propose the identical edit,
// e.g. one defer-EndSpan insertion fixing every unbalanced path) and
// applied in one pass per file; of two overlapping edits the earlier
// one wins and the later is dropped. Application is by construction
// idempotent at the tool level: every fix removes the diagnostic that
// proposed it, so a second run proposes nothing.

// fileEdit is one TextEdit resolved to byte offsets within its file.
type fileEdit struct {
	start, end int
	newText    []byte
}

// ApplyFixes computes the fixed contents of every file changed by the
// findings' suggested fixes, returning path -> new content. Nothing
// is written to disk; see WriteFixedFiles.
func ApplyFixes(fset *token.FileSet, findings []Finding) (map[string][]byte, error) {
	perFile := make(map[string][]fileEdit)
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			continue
		}
		for _, te := range f.Fixes[0].TextEdits {
			pos := fset.Position(te.Pos)
			end := pos
			if te.End.IsValid() {
				end = fset.Position(te.End)
			}
			if end.Filename != pos.Filename || end.Offset < pos.Offset {
				return nil, fmt.Errorf("%s: malformed suggested fix range", f)
			}
			perFile[pos.Filename] = append(perFile[pos.Filename],
				fileEdit{start: pos.Offset, end: end.Offset, newText: te.NewText})
		}
	}

	out := make(map[string][]byte, len(perFile))
	for path, edits := range perFile {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		fixed := applyEdits(src, edits)
		if !bytes.Equal(fixed, src) {
			out[path] = fixed
		}
	}
	return out, nil
}

// WriteFixedFiles writes the ApplyFixes result back to disk.
func WriteFixedFiles(fixed map[string][]byte) error {
	for path, content := range fixed {
		info, err := os.Stat(path)
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, content, info.Mode().Perm()); err != nil {
			return err
		}
	}
	return nil
}

// applyEdits applies edits to src: dedupe, sort, drop overlaps,
// widen whole-line deletions, then splice back to front.
func applyEdits(src []byte, edits []fileEdit) []byte {
	// Dedupe identical edits.
	seen := make(map[string]bool, len(edits))
	uniq := edits[:0]
	for _, e := range edits {
		key := fmt.Sprintf("%d:%d:%s", e.start, e.end, e.newText)
		if !seen[key] {
			seen[key] = true
			uniq = append(uniq, e)
		}
	}
	sort.Slice(uniq, func(i, j int) bool {
		if uniq[i].start != uniq[j].start {
			return uniq[i].start < uniq[j].start
		}
		return uniq[i].end < uniq[j].end
	})
	// Drop edits overlapping an earlier-kept one.
	kept := uniq[:0]
	prevEnd := -1
	for _, e := range uniq {
		if e.start < prevEnd {
			continue
		}
		kept = append(kept, e)
		if e.end > prevEnd {
			prevEnd = e.end
		}
	}
	// Widen pure deletions that leave only whitespace on their line to
	// delete the whole line: removing a stale //lint:allow comment
	// must not leave a blank (or trailing-whitespace) line behind,
	// which gofmt would then flag.
	for i, e := range kept {
		if len(e.newText) != 0 {
			continue
		}
		ls := e.start
		for ls > 0 && src[ls-1] != '\n' {
			ls--
		}
		le := e.end
		for le < len(src) && src[le] != '\n' {
			le++
		}
		if !isBlank(src[ls:e.start]) || !isBlank(src[e.end:le]) {
			continue
		}
		if le < len(src) {
			le++ // take the newline too
		}
		kept[i].start, kept[i].end = ls, le
	}
	var buf bytes.Buffer
	last := 0
	for _, e := range kept {
		buf.Write(src[last:e.start])
		buf.Write(e.newText)
		last = e.end
	}
	buf.Write(src[last:])
	return buf.Bytes()
}

func isBlank(b []byte) bool {
	for _, c := range b {
		if c != ' ' && c != '\t' {
			return false
		}
	}
	return true
}

// Diff renders a compact unified-style diff of one file's pending
// fixes: the common prefix and suffix are trimmed and the differing
// middle is shown as one hunk with two lines of context. It is a
// review aid for -diff dry runs, not a patch format.
func Diff(path string, old, new []byte) string {
	if bytes.Equal(old, new) {
		return ""
	}
	ol := splitLines(old)
	nl := splitLines(new)
	p := 0
	for p < len(ol) && p < len(nl) && ol[p] == nl[p] {
		p++
	}
	s := 0
	for s < len(ol)-p && s < len(nl)-p && ol[len(ol)-1-s] == nl[len(nl)-1-s] {
		s++
	}
	const ctx = 2
	lead := p - ctx
	if lead < 0 {
		lead = 0
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "--- %s\n+++ %s (fixed)\n", path, path)
	fmt.Fprintf(&buf, "@@ -%d,%d +%d,%d @@\n",
		lead+1, len(ol)-s-lead, lead+1, len(nl)-s-lead)
	for _, l := range ol[lead:p] {
		fmt.Fprintf(&buf, " %s", l)
	}
	for _, l := range ol[p : len(ol)-s] {
		fmt.Fprintf(&buf, "-%s", l)
	}
	for _, l := range nl[p : len(nl)-s] {
		fmt.Fprintf(&buf, "+%s", l)
	}
	tail := len(ol) - s
	for _, l := range ol[tail:min(tail+ctx, len(ol))] {
		fmt.Fprintf(&buf, " %s", l)
	}
	return buf.String()
}

// splitLines splits keeping the trailing newline on each line, so a
// missing final newline is visible in the diff.
func splitLines(b []byte) []string {
	var out []string
	for len(b) > 0 {
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			out = append(out, string(b)+"\n\\ no newline at end of file\n")
			break
		}
		out = append(out, string(b[:i+1]))
		b = b[i+1:]
	}
	return out
}
