package framework

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// go vet -vettool support.
//
// When the go command drives an external vet tool it execs it twice:
// once as `tool -V=full` to obtain a version line for the build cache
// key, then once per package as `tool <unit>.cfg`, where the cfg file
// is a JSON description of one compiled package (files, import maps,
// export-data locations, and the path of a "vetx" facts file to
// write). Diagnostics go to stderr as file:line:col: messages and a
// nonzero exit marks the package as failing.
//
// This file implements that contract without x/tools. The vmlint
// analyzers exchange no facts, so the vetx outputs are written empty
// and dependency units (VetxOnly) return immediately.

// vetConfig mirrors the JSON the go command writes for a vet unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
	GoVersion                 string
}

// UnitcheckerMain handles a go vet -vettool invocation if the argument
// list matches the protocol (-V=full handshake or a *.cfg unit file).
// It returns false if args look like a standalone invocation instead;
// on a protocol match it never returns — it exits with the unit's
// status (0 clean, 2 findings, 1 internal failure).
func UnitcheckerMain(args []string, analyzers []*Analyzer) bool {
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		// Version handshake. The go command's tool-ID probe parses
		// "<name> version devel ... buildID=<id>" and folds the ID into
		// its cache key, so hashing our own binary makes vet results
		// invalidate exactly when the analyzers change.
		id := "unknown"
		if exe, err := os.Executable(); err == nil {
			if data, err := os.ReadFile(exe); err == nil {
				sum := sha256.Sum256(data)
				id = fmt.Sprintf("%x", sum[:16])
			}
		}
		fmt.Printf("vmlint version devel buildID=%s\n", id)
		os.Exit(0)
	}
	if len(args) == 1 && args[0] == "-flags" {
		// Flag-description probe: the go command asks which flags the
		// tool accepts so it can forward matching vet flags. vmlint
		// takes none; an empty JSON list says so.
		fmt.Println("[]")
		os.Exit(0)
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		return false
	}
	exit, err := runUnit(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vmlint: %v\n", err)
		os.Exit(1)
	}
	os.Exit(exit)
	panic("unreachable")
}

// runUnit processes one vet unit file.
func runUnit(cfgFile string, analyzers []*Analyzer) (exit int, err error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}
	// The analyzers are fact-free, so a facts-only unit has no work;
	// an empty vetx file satisfies the driver either way.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	ignored := make(map[string]bool, len(cfg.IgnoredFiles))
	for _, f := range cfg.IgnoredFiles {
		ignored[f] = true
	}
	var files []*ast.File
	for _, gf := range cfg.GoFiles {
		if ignored[gf] {
			continue
		}
		if !filepath.IsAbs(gf) {
			gf = filepath.Join(cfg.Dir, gf)
		}
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg := &Package{PkgPath: cfg.ImportPath, Dir: cfg.Dir, Fset: fset, Files: files, Info: NewInfo()}
	conf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error:     func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(cfg.ImportPath, fset, files, pkg.Info)
	if len(pkg.TypeErrors) > 0 && cfg.SucceedOnTypecheckFailure {
		return 0, nil
	}

	findings, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	if len(findings) > 0 {
		return 2, nil
	}
	return 0, nil
}
