package framework

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// go vet -vettool support.
//
// When the go command drives an external vet tool it execs it twice:
// once as `tool -V=full` to obtain a version line for the build cache
// key, then once per package as `tool <unit>.cfg`, where the cfg file
// is a JSON description of one compiled package (files, import maps,
// export-data locations, and the path of a "vetx" facts file to
// write). Diagnostics go to stderr as file:line:col: messages and a
// nonzero exit marks the package as failing.
//
// This file implements that contract without x/tools, facts included:
// the unit's PackageVetx map names the facts files of its
// dependencies, which seed the run's fact store, and the store (with
// the unit's own exported facts merged in) is gob-encoded to
// VetxOutput for the unit's importers. Dependency units (VetxOnly)
// run the analyzers for their facts alone and report nothing.

// vetConfig mirrors the JSON the go command writes for a vet unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
	GoVersion                 string
}

// UnitcheckerMain handles a go vet -vettool invocation if the argument
// list matches the protocol (-V=full handshake or a *.cfg unit file).
// It returns false if args look like a standalone invocation instead;
// on a protocol match it never returns — it exits with the unit's
// status (0 clean, 2 findings, 1 internal failure).
func UnitcheckerMain(args []string, analyzers []*Analyzer) bool {
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		// Version handshake. The go command's tool-ID probe parses
		// "<name> version devel ... buildID=<id>" and folds the ID into
		// its cache key, so hashing our own binary makes vet results
		// invalidate exactly when the analyzers change.
		id := "unknown"
		if exe, err := os.Executable(); err == nil {
			if data, err := os.ReadFile(exe); err == nil {
				sum := sha256.Sum256(data)
				id = fmt.Sprintf("%x", sum[:16])
			}
		}
		fmt.Printf("vmlint version devel buildID=%s\n", id)
		os.Exit(0)
	}
	if len(args) == 1 && args[0] == "-flags" {
		// Flag-description probe: the go command asks which flags the
		// tool accepts so it can forward matching vet flags. vmlint's
		// own flags (-fix, -diff, -suppressions) are standalone-only;
		// an empty JSON list keeps vet from forwarding anything.
		fmt.Println("[]")
		os.Exit(0)
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		return false
	}
	res, vetxOnly, err := RunUnit(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vmlint: %v\n", err)
		os.Exit(1)
	}
	if !vetxOnly {
		for _, f := range res.Findings {
			fmt.Fprintf(os.Stderr, "%s\n", f)
		}
		if len(res.Findings) > 0 {
			os.Exit(2)
		}
	}
	os.Exit(0)
	panic("unreachable")
}

// RunUnit processes one vet unit file: it loads the unit package from
// the cfg, seeds the fact store from the dependencies' vetx files,
// runs the analyzers, and writes the resulting facts to the unit's
// vetx output. It is exported for the facts round-trip test; the vet
// driver goes through UnitcheckerMain. vetxOnly reports that the unit
// exists only to produce facts (its findings, if any, were discarded).
func RunUnit(cfgFile string, analyzers []*Analyzer) (res *RunResult, vetxOnly bool, err error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, false, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, false, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	// Facts in: the driver hands us the vetx file of every dependency
	// it ran the tool on. Each file holds that dependency's transitive
	// fact view, so merging them reconstructs everything our imports
	// know. Fact types must be registered before decoding.
	registerFactTypes(analyzers)
	facts := NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue // missing facts degrade to v1 behavior
		}
		if err := facts.Decode(data); err != nil {
			return nil, false, fmt.Errorf("reading facts from %s: %v", vetx, err)
		}
	}
	writeFacts := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		f, err := os.Create(cfg.VetxOutput)
		if err != nil {
			return err
		}
		if err := facts.Encode(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	fset := token.NewFileSet()
	ignored := make(map[string]bool, len(cfg.IgnoredFiles))
	for _, f := range cfg.IgnoredFiles {
		ignored[f] = true
	}
	var files []*ast.File
	for _, gf := range cfg.GoFiles {
		if ignored[gf] {
			continue
		}
		if !filepath.IsAbs(gf) {
			gf = filepath.Join(cfg.Dir, gf)
		}
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return &RunResult{}, cfg.VetxOnly, writeFacts()
			}
			return nil, false, err
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg := &Package{
		PkgPath: cfg.ImportPath, Dir: cfg.Dir, Fset: fset, Files: files,
		Info: NewInfo(), FactsOnly: cfg.VetxOnly,
	}
	conf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error:     func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(cfg.ImportPath, fset, files, pkg.Info)
	if len(pkg.TypeErrors) > 0 && cfg.SucceedOnTypecheckFailure {
		return &RunResult{}, cfg.VetxOnly, writeFacts()
	}

	res, err = RunWithFacts([]*Package{pkg}, analyzers, facts)
	if err != nil {
		return nil, false, err
	}
	return res, cfg.VetxOnly, writeFacts()
}
