package framework

import (
	"strings"
	"testing"
)

func TestApplyEditsDedupesIdenticalInsertions(t *testing.T) {
	src := []byte("abcdef")
	// Two diagnostics proposing the same insertion (the defer-EndSpan
	// shape: every unbalanced path proposes the one defer) apply once.
	e := fileEdit{start: 3, end: 3, newText: []byte("XX")}
	if got := string(applyEdits(src, []fileEdit{e, e})); got != "abcXXdef" {
		t.Errorf("got %q, want %q", got, "abcXXdef")
	}
}

func TestApplyEditsDropsOverlaps(t *testing.T) {
	src := []byte("abcdef")
	got := string(applyEdits(src, []fileEdit{
		{start: 2, end: 4, newText: []byte("X")},
		{start: 3, end: 5, newText: []byte("Y")},
	}))
	// The later edit overlaps the earlier one and is dropped whole.
	if got != "abXef" {
		t.Errorf("got %q, want %q", got, "abXef")
	}
}

func TestApplyEditsWidensWholeLineDeletion(t *testing.T) {
	src := "keep\n\t// stale\nnext\n"
	start := strings.Index(src, "//")
	end := start + len("// stale")
	got := string(applyEdits([]byte(src), []fileEdit{{start: start, end: end}}))
	// Deleting just the comment would leave "\t\n"; the edit widens to
	// take the whole line including its newline.
	if got != "keep\nnext\n" {
		t.Errorf("got %q, want %q", got, "keep\nnext\n")
	}
}

func TestApplyEditsKeepsPartialLineDeletion(t *testing.T) {
	src := "x := 1 // stale\nnext\n"
	start := strings.Index(src, "//")
	end := start + len("// stale")
	got := string(applyEdits([]byte(src), []fileEdit{{start: start, end: end}}))
	// Code shares the line, so the deletion must not widen.
	if got != "x := 1 \nnext\n" {
		t.Errorf("got %q, want %q", got, "x := 1 \nnext\n")
	}
}

func TestDiff(t *testing.T) {
	old := []byte("l1\nl2\nl3\nl4\nl5\nl6\n")
	fixed := []byte("l1\nl2\nl3\nl4x\nl5\nl6\n")
	if d := Diff("f.go", old, old); d != "" {
		t.Errorf("identical contents diffed: %q", d)
	}
	d := Diff("f.go", old, fixed)
	for _, want := range []string{
		"--- f.go\n", "+++ f.go (fixed)\n", "-l4\n", "+l4x\n", " l3\n", " l5\n",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q:\n%s", want, d)
		}
	}
	if strings.Contains(d, " l1\n") {
		t.Errorf("diff shows more than two context lines:\n%s", d)
	}
}

func TestDiffMarksMissingFinalNewline(t *testing.T) {
	d := Diff("f.go", []byte("a"), []byte("a\n"))
	if !strings.Contains(d, "no newline at end of file") {
		t.Errorf("missing final newline not marked:\n%s", d)
	}
}
