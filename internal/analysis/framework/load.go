package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, parsed and type-checked package, ready for
// analysis.
type Package struct {
	// PkgPath is the package's import path.
	PkgPath string

	// Dir is the directory holding the package's sources.
	Dir string

	// Fset positions the package's syntax (shared across a Load call).
	Fset *token.FileSet

	// Files are the parsed non-test Go files, with comments.
	Files []*ast.File

	// Types is the type-checked package object.
	Types *types.Package

	// Info holds the type-checker's results for Files.
	Info *types.Info

	// TypeErrors collects type-check problems. A package with type
	// errors is not analyzed; the driver reports the errors instead,
	// because analyzers assume complete type information.
	TypeErrors []error

	// FactsOnly marks a package loaded only because a requested
	// package depends on it: it is analyzed so its facts are available
	// to importers, but its diagnostics are discarded.
	FactsOnly bool
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load lists patterns with the go command (from dir), parses every
// matched non-dependency package, and type-checks it against the
// compiler's export data for its dependencies. The returned packages
// are sorted by import path and share one FileSet.
//
// In-module dependencies of the matched packages that the patterns
// themselves do not match are loaded too, marked FactsOnly: when
// vmlint is pointed at a subtree (`vmlint ./internal/apps`), the
// packages beneath it still see the facts of the packages they
// import, exactly as they would under `vmlint ./...`.
//
// Loading needs no network and no GOPATH contents beyond the module
// itself: `go list -export` compiles dependencies into the build cache
// and hands back their export-data files, which go/importer consumes
// directly.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export",
		"-deps", "-json=ImportPath,Export,Dir,GoFiles,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %v: %s", patterns, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.Standard {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		p := &Package{PkgPath: t.ImportPath, Dir: t.Dir, Fset: fset, FactsOnly: t.DepOnly}
		var parseErr error
		for _, gf := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, gf), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				parseErr = err
				break
			}
			p.Files = append(p.Files, f)
		}
		if parseErr != nil {
			return nil, fmt.Errorf("parsing %s: %v", t.ImportPath, parseErr)
		}
		p.Info = NewInfo()
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
		}
		// Check returns the (possibly incomplete) package even on
		// error; TypeErrors carries the details.
		p.Types, _ = conf.Check(t.ImportPath, fset, p.Files, p.Info)
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
