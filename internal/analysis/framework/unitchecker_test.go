package framework

import (
	"encoding/json"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// The facts round-trip test drives RunUnit exactly the way `go vet
// -vettool` does — one process-shaped invocation per package, with
// hand-written cfg files and real export data from `go tool compile`
// — and watches a toy fact cross the package (and notional process)
// boundary through the vetx files.

// declFact lists the function names a package declares: a toy summary
// whose only job is to be observable on the far side of the protocol.
type declFact struct{ Funcs []string }

func (*declFact) AFact() {}

func declAnalyzers() []*Analyzer {
	export := &Analyzer{
		Name:      "exportdecls",
		Doc:       "exports each package's declared function names as a fact",
		FactTypes: []Fact{(*declFact)(nil)},
		Run: func(pass *Pass) (any, error) {
			var fns []string
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fn, ok := d.(*ast.FuncDecl); ok {
						fns = append(fns, fn.Name.Name)
					}
				}
			}
			if len(fns) > 0 {
				sort.Strings(fns)
				pass.ExportPackageFact(&declFact{Funcs: fns})
			}
			return nil, nil
		},
	}
	sees := &Analyzer{
		Name:      "seesfacts",
		Doc:       "reports every declFact visible to the pass",
		FactTypes: []Fact{(*declFact)(nil)},
		Run: func(pass *Pass) (any, error) {
			for _, pf := range pass.AllPackageFacts() {
				f := pf.Fact.(*declFact)
				pass.Reportf(pass.Files[0].Name.Pos(), "sees %s:%s",
					pf.Path, strings.Join(f.Funcs, ","))
			}
			return nil, nil
		},
	}
	return []*Analyzer{export, sees}
}

// compileUnit produces gc export data for one single-file package, so
// RunUnit's importer can type-check code importing it.
func compileUnit(t *testing.T, dir, pkgpath, file string) string {
	t.Helper()
	out := filepath.Join(dir, pkgpath+".a")
	cmd := exec.Command("go", "tool", "compile", "-p", pkgpath, "-I", dir, "-o", out, file)
	cmd.Dir = dir
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go tool compile %s: %v\n%s", file, err, b)
	}
	return out
}

func writeUnitCfg(t *testing.T, dir string, cfg vetConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, cfg.ID+".cfg")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func messages(res *RunResult) []string {
	var out []string
	for _, f := range res.Findings {
		out = append(out, f.Message)
	}
	return out
}

func contains(msgs []string, want string) bool {
	for _, m := range msgs {
		if m == want {
			return true
		}
	}
	return false
}

func TestUnitCheckerFactsRoundTrip(t *testing.T) {
	tmp := t.TempDir()
	write := func(name, src string) {
		if err := os.WriteFile(filepath.Join(tmp, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", "package facta\n\nfunc Helper() {}\n\nfunc Other() {}\n")
	write("b.go", "package factb\n\nimport \"facta\"\n\nfunc UseIt() { facta.Helper() }\n")
	write("c.go", "package factc\n\nimport \"factb\"\n\nfunc Chain() { factb.UseIt() }\n")

	analyzers := declAnalyzers()
	aObj := compileUnit(t, tmp, "facta", "a.go")
	bObj := compileUnit(t, tmp, "factb", "b.go")
	aVetx := filepath.Join(tmp, "facta.vetx")
	bVetx := filepath.Join(tmp, "factb.vetx")

	// Unit 1: the dependency, VetxOnly — the driver wants its facts,
	// not its findings.
	cfgA := writeUnitCfg(t, tmp, vetConfig{
		ID: "facta", Compiler: "gc", Dir: tmp, ImportPath: "facta",
		GoFiles: []string{"a.go"}, VetxOnly: true, VetxOutput: aVetx,
	})
	res, vetxOnly, err := RunUnit(cfgA, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if !vetxOnly {
		t.Error("unit facta: want vetxOnly")
	}
	if len(res.Findings) != 0 {
		t.Errorf("facts-only unit reported findings: %v", res.Findings)
	}
	if fi, err := os.Stat(aVetx); err != nil || fi.Size() == 0 {
		t.Fatalf("vetx output missing or empty: %v", err)
	}

	// Unit 2: the importer, handed the dependency's vetx — its pass
	// sees both its own fact and the imported one.
	cfgB := writeUnitCfg(t, tmp, vetConfig{
		ID: "factb", Compiler: "gc", Dir: tmp, ImportPath: "factb",
		GoFiles:     []string{"b.go"},
		ImportMap:   map[string]string{"facta": "facta"},
		PackageFile: map[string]string{"facta": aObj},
		PackageVetx: map[string]string{"facta": aVetx},
		VetxOutput:  bVetx,
	})
	res, vetxOnly, err = RunUnit(cfgB, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if vetxOnly {
		t.Error("unit factb: want findings, got vetxOnly")
	}
	msgs := messages(res)
	if !contains(msgs, "sees facta:Helper,Other") {
		t.Errorf("dependency fact did not cross the vetx boundary: %v", msgs)
	}
	if !contains(msgs, "sees factb:UseIt") {
		t.Errorf("unit's own fact not visible to its pass: %v", msgs)
	}

	// Control: the same unit without the vetx handoff degrades to
	// facts-free analysis, not an error.
	cfgB0 := writeUnitCfg(t, tmp, vetConfig{
		ID: "factb-nofacts", Compiler: "gc", Dir: tmp, ImportPath: "factb",
		GoFiles:     []string{"b.go"},
		ImportMap:   map[string]string{"facta": "facta"},
		PackageFile: map[string]string{"facta": aObj},
	})
	res, _, err = RunUnit(cfgB0, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if msgs := messages(res); contains(msgs, "sees facta:Helper,Other") {
		t.Errorf("dependency fact visible without its vetx file: %v", msgs)
	}

	// Unit 3: transitivity. The driver hands each unit only its DIRECT
	// imports' vetx files; factb's whole-store output must therefore
	// re-export facta's facts for its own importers.
	cfgC := writeUnitCfg(t, tmp, vetConfig{
		ID: "factc", Compiler: "gc", Dir: tmp, ImportPath: "factc",
		GoFiles:     []string{"c.go"},
		ImportMap:   map[string]string{"factb": "factb", "facta": "facta"},
		PackageFile: map[string]string{"factb": bObj, "facta": aObj},
		PackageVetx: map[string]string{"factb": bVetx},
	})
	res, _, err = RunUnit(cfgC, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	if msgs := messages(res); !contains(msgs, "sees facta:Helper,Other") {
		t.Errorf("transitive fact lost through the whole-store encoding: %v", msgs)
	}
}
