package framework

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one diagnostic after suppression, positioned and
// attributed to its analyzer, carrying any machine-applicable fixes.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Fixes    []SuggestedFix
}

// String renders the finding in the conventional file:line:col form
// consumed by editors and CI annotators.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// A Suppression is one live //lint:allow directive, for audit
// listings (vmlint -suppressions).
type Suppression struct {
	File     string
	Line     int
	Analyzer string
	Reason   string
	// Used reports whether the directive suppressed at least one
	// diagnostic in this run. An unused directive is also reported as
	// a "directive" finding: it documents an exception that no longer
	// exists, which is exactly the kind of drift the audit catches.
	Used bool
}

// A RunResult is the outcome of applying the analyzer suite.
type RunResult struct {
	Findings     []Finding
	Suppressions []Suppression
}

// Run applies the analyzers (and, first, their Requires closure) to
// every package, honors //lint:allow directives, and returns the
// surviving findings sorted by position together with the suppression
// audit. Only findings from the requested analyzers are reported;
// required-but-unrequested analyzers run for their results and facts
// alone. Malformed directives (missing analyzer or reason) and stale
// directives (suppressing nothing) are reported as findings of the
// pseudo-analyzer "directive" so they fail the lint gate.
//
// Packages are processed in dependency order so that package facts
// flow from imports to importers; pkgs marked FactsOnly contribute
// facts but no findings.
//
// Packages with type errors are not analyzed; Run returns an error
// naming them, since findings over broken types would be unreliable.
func Run(pkgs []*Package, analyzers []*Analyzer) (*RunResult, error) {
	return RunWithFacts(pkgs, analyzers, NewFactStore())
}

// RunWithFacts is Run against a caller-provided fact store, which may
// be pre-seeded (the unitchecker seeds it from dependency vetx files)
// and is left holding every fact exported during the run.
func RunWithFacts(pkgs []*Package, analyzers []*Analyzer, facts *FactStore) (*RunResult, error) {
	registerFactTypes(analyzers)
	ordered, err := analyzerOrder(analyzers)
	if err != nil {
		return nil, err
	}
	requested := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		requested[a.Name] = true
	}

	res := &RunResult{}
	for _, pkg := range packageOrder(pkgs) {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("package %s has type errors (first: %v)", pkg.PkgPath, pkg.TypeErrors[0])
		}
		var dirs []*directive
		for _, f := range pkg.Files {
			ds, bad := parseDirectives(pkg.Fset, f)
			dirs = append(dirs, ds...)
			if pkg.FactsOnly {
				continue
			}
			for _, b := range bad {
				res.Findings = append(res.Findings, Finding{
					Analyzer: "directive",
					Pos:      pkg.Fset.Position(b.pos),
					Message:  b.msg,
				})
			}
		}
		results := make(map[*Analyzer]any, len(ordered))
		for _, a := range ordered {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				ResultOf:  make(map[*Analyzer]any, len(a.Requires)),
				facts:     facts,
			}
			for _, dep := range a.Requires {
				pass.ResultOf[dep] = results[dep]
			}
			report := requested[a.Name] && !pkg.FactsOnly
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				for _, dir := range dirs {
					if dir.suppresses(a.Name, pos, d.Pos) {
						dir.used = true
						return
					}
				}
				if report {
					res.Findings = append(res.Findings, Finding{
						Analyzer: a.Name, Pos: pos, Message: d.Message, Fixes: d.SuggestedFixes,
					})
				}
			}
			result, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			results[a] = result
		}
		// Suppression audit: a directive that suppressed nothing is
		// dead weight (the exception it documented is gone) and is
		// itself reported, with a fix that deletes it. Directives
		// naming analyzers outside this run's set cannot be judged and
		// are skipped, as are facts-only packages.
		for _, dir := range dirs {
			auditable := dir.analyzer == "all" || requested[dir.analyzer]
			if !pkg.FactsOnly {
				res.Suppressions = append(res.Suppressions, Suppression{
					File: dir.file, Line: dir.line,
					Analyzer: dir.analyzer, Reason: dir.reason,
					Used: dir.used || !auditable,
				})
			}
			if pkg.FactsOnly || dir.used || !auditable {
				continue
			}
			res.Findings = append(res.Findings, Finding{
				Analyzer: "directive",
				Pos:      pkg.Fset.Position(dir.pos),
				Message: fmt.Sprintf("//lint:allow %s directive suppresses no diagnostic; remove it",
					dir.analyzer),
				Fixes: []SuggestedFix{{
					Message:   "delete the stale directive",
					TextEdits: []TextEdit{{Pos: dir.pos, End: dir.end, NewText: nil}},
				}},
			})
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	sort.Slice(res.Suppressions, func(i, j int) bool {
		a, b := res.Suppressions[i], res.Suppressions[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	return res, nil
}

// closure expands analyzers to include their transitive Requires, in
// an order where dependencies precede dependents.
func closure(analyzers []*Analyzer) []*Analyzer {
	var out []*Analyzer
	seen := make(map[*Analyzer]bool)
	var visit func(a *Analyzer)
	visit = func(a *Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, dep := range a.Requires {
			visit(dep)
		}
		out = append(out, a)
	}
	for _, a := range analyzers {
		visit(a)
	}
	return out
}

// analyzerOrder is closure plus cycle detection: a Requires cycle
// would deadlock the real framework's scheduler and is a programming
// error here too.
func analyzerOrder(analyzers []*Analyzer) ([]*Analyzer, error) {
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[*Analyzer]int)
	var out []*Analyzer
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analyzer Requires cycle through %s", a.Name)
		}
		state[a] = visiting
		for _, dep := range a.Requires {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[a] = done
		out = append(out, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// packageOrder sorts pkgs so that every package follows the packages
// it imports (restricted to the given set), which is what lets facts
// exported while analyzing a dependency be imported while analyzing
// its dependents in the same run. Ties keep the incoming (sorted)
// order, so output remains deterministic.
func packageOrder(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	var out []*Package
	state := make(map[*Package]int) // 1 = visiting, 2 = done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return // done, or a cycle (impossible in valid Go) — either way stop
		}
		state[p] = 1
		if p.Types != nil {
			for _, imp := range p.Types.Imports() {
				if dep, ok := byPath[imp.Path()]; ok {
					visit(dep)
				}
			}
		}
		state[p] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}
