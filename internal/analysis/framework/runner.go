package framework

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one diagnostic after suppression, positioned and
// attributed to its analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form
// consumed by editors and CI annotators.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Run applies every analyzer to every package, honors //lint:allow
// directives, and returns the surviving findings sorted by position.
// Malformed directives (missing analyzer or reason) are reported as
// findings of the pseudo-analyzer "directive" so they fail the lint
// gate rather than silently suppressing nothing.
//
// Packages with type errors are not analyzed; Run returns an error
// naming them, since findings over broken types would be unreliable.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("package %s has type errors (first: %v)", pkg.PkgPath, pkg.TypeErrors[0])
		}
		var dirs []directive
		for _, f := range pkg.Files {
			ds, bad := parseDirectives(pkg.Fset, f)
			dirs = append(dirs, ds...)
			for _, b := range bad {
				findings = append(findings, Finding{
					Analyzer: "directive",
					Pos:      pkg.Fset.Position(b.pos),
					Message:  b.msg,
				})
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				for i := range dirs {
					if dirs[i].suppresses(a.Name, pos, d.Pos) {
						return
					}
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
