package spmdsym_test

import (
	"path/filepath"
	"testing"

	"vmprim/internal/analysis/analysistest"
	"vmprim/internal/analysis/spmdsym"
)

func TestSPMDSym(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), spmdsym.Analyzer,
		"vmprim/internal/apps/spmd")
}

// TestCrossPackageFacts: the guard's identity taint and the guarded
// call's collectiveness both come from another package's facts; the
// diagnostic must appear with facts and vanish without them.
func TestCrossPackageFacts(t *testing.T) {
	testdata := filepath.Join("..", "testdata")
	analysistest.Run(t, testdata, spmdsym.Analyzer, "vmprim/internal/apps/spmdx")

	findings := analysistest.Findings(t, testdata, spmdsym.Analyzer,
		"vmprim/internal/apps/spmdx", false)
	for _, f := range findings {
		t.Errorf("with facts disabled, cross-package diagnostic still reported: %s", f)
	}
}

// TestFacadeScope: example code that only touches the vmprim facade
// (aliased Proc/Env types, package-level kernel wrappers) is analyzed
// through the facade re-export rules in vmlib.
func TestFacadeScope(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), spmdsym.Analyzer,
		"vmprim/examples/exfix")
}
