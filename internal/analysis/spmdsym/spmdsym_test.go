package spmdsym_test

import (
	"path/filepath"
	"testing"

	"vmprim/internal/analysis/analysistest"
	"vmprim/internal/analysis/spmdsym"
)

func TestSPMDSym(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), spmdsym.Analyzer,
		"vmprim/internal/apps/spmd")
}
