// Package spmdsym statically enforces the SPMD-symmetry contract of
// the simulator: inside code that runs as an SPMD body, collective
// operations (and the BeginSpan/EndSpan pair, whose tree discovery
// relies on every processor opening the same spans in the same order)
// must not be control-dependent on processor identity. A collective
// guarded by `if p.ID() == 0` is executed by one processor and skipped
// by the rest, which deadlocks the run — the watchdog catches it only
// after a full timeout window, and only on the executions that reach
// the guard.
//
// Processor identity flows from Proc.ID (and the grid coordinates
// Env.GridRow/GridCol, which are derived from it). The analyzer taints
// every local variable assigned from an expression involving those
// sources, then flags any collective call, early return, break or
// continue that sits inside an if/switch/loop whose condition reads a
// tainted value.
//
// The check is applied to the packages built on top of the collective
// layer (core, apps, bench). The collective and hypercube packages
// themselves are exempt: their internals are deliberately
// rank-asymmetric — a binomial-tree broadcast is nothing but
// rank-dependent sends and receives — and their point-to-point
// structure is what the collectives' own protocol tests verify.
//
// Helpers are handled interprocedurally within a package: a function
// that (transitively) performs a collective is itself treated as one
// at its call sites, so hiding a Reduce inside a helper and calling
// the helper under a rank guard is still flagged.
package spmdsym

import (
	"go/ast"
	"go/token"
	"go/types"

	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/vmlib"
)

// Analyzer is the spmdsym entry point.
var Analyzer = &framework.Analyzer{
	Name: "spmdsym",
	Doc:  "check that collectives are not control-dependent on processor identity inside SPMD code",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if !vmlib.InScope(pass.Pkg.Path(), vmlib.CorePath, vmlib.AppsPath, vmlib.BenchPath) {
		return nil
	}
	// Interprocedural summary: which package-level functions
	// (transitively) perform a collective operation.
	collectiveFns := summarize(pass)

	isCollective := func(call *ast.CallExpr) bool {
		if vmlib.IsCollectiveCall(pass.TypesInfo, call) {
			return true
		}
		f := vmlib.Callee(pass.TypesInfo, call)
		return f != nil && collectiveFns[f]
	}

	for _, file := range pass.Files {
		if vmlib.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkFunc(pass, fn, isCollective)
			}
		}
	}
	return nil
}

// summarize computes, to a fixpoint, the set of functions declared in
// this package whose bodies (transitively) contain a collective call.
func summarize(pass *framework.Pass) map[*types.Func]bool {
	bodies := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					bodies[obj] = fn
				}
			}
		}
	}
	summary := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for obj, fn := range bodies {
			if summary[obj] {
				continue
			}
			found := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if vmlib.IsCollectiveCall(pass.TypesInfo, call) {
					found = true
					return false
				}
				if f := vmlib.Callee(pass.TypesInfo, call); f != nil && summary[f] {
					found = true
					return false
				}
				return true
			})
			if found {
				summary[obj] = true
				changed = true
			}
		}
	}
	return summary
}

// checkFunc taints identity-derived locals and flags collectives under
// tainted control.
func checkFunc(pass *framework.Pass, fn *ast.FuncDecl, isCollective func(*ast.CallExpr) bool) {
	info := pass.TypesInfo
	tainted := make(map[types.Object]bool)

	// exprTainted reports whether e reads processor identity: an ID /
	// GridRow / GridCol call, or a tainted variable. Two sanitizers:
	// the result of a collective is replicated — identical on every
	// processor even when its arguments differ per processor — so a
	// collective call contributes no taint; and a function literal in
	// the expression (the SPMD body handed to Machine.Run) does not
	// taint the host-side result of the call it is passed to.
	exprTainted := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if vmlib.IsProcMethod(info, n, "ID") ||
					vmlib.IsEnvMethod(info, n, "GridRow", "GridCol") {
					found = true
					return false
				}
				if isCollective(n) {
					return false // replicated result: no taint in, none out
				}
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil && tainted[obj] {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}

	// Propagate taint through local assignments to a fixpoint.
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, r := range n.Rhs {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && exprTainted(r) {
							changed = taintIdent(info, tainted, id) || changed
						}
					}
				} else if len(n.Rhs) == 1 && exprTainted(n.Rhs[0]) {
					for _, l := range n.Lhs {
						if id, ok := l.(*ast.Ident); ok {
							changed = taintIdent(info, tainted, id) || changed
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if exprTainted(v) {
						if len(n.Names) == len(n.Values) {
							changed = taintIdent(info, tainted, n.Names[i]) || changed
						} else {
							for _, name := range n.Names {
								changed = taintIdent(info, tainted, name) || changed
							}
						}
					}
				}
			}
			return true
		})
	}

	// Each function literal is its own SPMD scope: the closure passed
	// to Machine.Run is the SPMD body while the enclosing function is
	// host code, so divergence is judged per scope, never across a
	// closure boundary.
	reported := make(map[token.Pos]bool)
	scopes := []*ast.BlockStmt{fn.Body}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scopes = append(scopes, lit.Body)
		}
		return true
	})
	for _, scope := range scopes {
		checkScope(pass, scope, isCollective, exprTainted, reported)
	}
}

// checkScope flags identity-dependent collectives and early returns
// within one function scope (a declared body or one closure body),
// never descending into nested literals.
func checkScope(pass *framework.Pass, scope *ast.BlockStmt, isCollective func(*ast.CallExpr) bool, exprTainted func(ast.Expr) bool, reported map[token.Pos]bool) {
	// Positions of the scope's non-deferred collective calls. An early
	// return only diverges processors when it skips a collective the
	// other processors go on to execute; deferred calls (the idiomatic
	// defer e.EndSpan()) run on every exit and cannot be skipped.
	var collPos []token.Pos
	ast.Inspect(scope, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if isCollective(n) {
				collPos = append(collPos, n.Pos())
			}
		}
		return true
	})
	collectiveAfter := func(pos token.Pos) bool {
		for _, p := range collPos {
			if p > pos {
				return true
			}
		}
		return false
	}

	// Find tainted control statements and flag collectives and
	// divergent early exits inside them. Nested tainted conditions
	// would re-flag the same call once per level; report each position
	// once.
	ast.Inspect(scope, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		var cond ast.Expr
		var body []ast.Node
		switch s := n.(type) {
		case *ast.IfStmt:
			cond = s.Cond
			body = append(body, s.Body)
			if s.Else != nil {
				body = append(body, s.Else)
			}
		case *ast.SwitchStmt:
			if s.Tag == nil {
				// Condition-less switch: the case guards run in order,
				// so everything from the first tainted guard on is
				// identity-dependent — reaching a later case requires
				// the tainted guard to have failed. Earlier cases are
				// untainted territory.
				for i, c := range s.Body.List {
					cc := c.(*ast.CaseClause)
					for _, e := range cc.List {
						if exprTainted(e) {
							cond = e
							break
						}
					}
					if cond != nil {
						for _, later := range s.Body.List[i:] {
							body = append(body, later)
						}
						break
					}
				}
			} else {
				cond = s.Tag
				body = append(body, s.Body)
			}
		case *ast.ForStmt:
			cond = s.Cond
			body = append(body, s.Body)
		default:
			return true
		}
		if cond == nil || !exprTainted(cond) {
			return true
		}
		for _, b := range body {
			flagIn(pass, b, isCollective, collectiveAfter, reported)
		}
		return true
	})
}

// flagIn reports every collective call, and every early return that
// skips a later collective, lexically inside root.
func flagIn(pass *framework.Pass, root ast.Node, isCollective func(*ast.CallExpr) bool, collectiveAfter func(token.Pos) bool, reported map[token.Pos]bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own scope, checked separately
		case *ast.CallExpr:
			if isCollective(n) && !reported[n.Pos()] {
				reported[n.Pos()] = true
				name := "collective"
				if f := vmlib.Callee(pass.TypesInfo, n); f != nil {
					name = f.Name()
				}
				pass.Reportf(n.Pos(),
					"%s is control-dependent on processor identity: processors diverge and the run deadlocks",
					name)
			}
		case *ast.ReturnStmt:
			if collectiveAfter(n.Pos()) && !reported[n.Pos()] {
				reported[n.Pos()] = true
				pass.Reportf(n.Pos(),
					"early return under a processor-identity condition skips the collective(s) after it: processors diverge and the run deadlocks")
			}
		}
		return true
	})
}

// taintIdent marks id's object tainted, reporting whether that is new
// information.
func taintIdent(info *types.Info, tainted map[types.Object]bool, id *ast.Ident) bool {
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil || tainted[obj] {
		return false
	}
	tainted[obj] = true
	return true
}
