// Package spmdsym statically enforces the SPMD-symmetry contract of
// the simulator: inside code that runs as an SPMD body, collective
// operations (and the BeginSpan/EndSpan pair, whose tree discovery
// relies on every processor opening the same spans in the same order)
// must not be control-dependent on processor identity. A collective
// guarded by `if p.ID() == 0` is executed by one processor and skipped
// by the rest, which deadlocks the run — the watchdog catches it only
// after a full timeout window, and only on the executions that reach
// the guard.
//
// Processor identity flows from Proc.ID (and the grid coordinates
// Env.GridRow/GridCol, which are derived from it). The analyzer taints
// every local variable assigned from an expression involving those
// sources, then flags any collective call, early return, break or
// continue that sits inside an if/switch/loop whose condition reads a
// tainted value.
//
// The check is applied to the packages built on top of the collective
// layer (core, apps, bench) and to the top-level code written against
// the facade (the vmprim package itself, examples, commands). The
// collective and hypercube packages themselves are exempt: their
// internals are deliberately rank-asymmetric — a binomial-tree
// broadcast is nothing but rank-dependent sends and receives — and
// their point-to-point structure is what the collectives' own protocol
// tests verify.
//
// Helpers are handled interprocedurally through the collectives base
// analyzer: a function that (transitively) performs a collective is
// itself treated as one at its call sites, and a function that returns
// an identity-derived value is itself an identity source — in the same
// package or, via package facts, across package boundaries. Hiding a
// Reduce inside a helper in another package and calling the helper
// under a rank guard is still flagged.
package spmdsym

import (
	"go/ast"
	"go/token"

	"vmprim/internal/analysis/collectives"
	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/vmlib"
)

// Analyzer is the spmdsym entry point.
var Analyzer = &framework.Analyzer{
	Name:     "spmdsym",
	Doc:      "check that collectives are not control-dependent on processor identity inside SPMD code",
	Requires: []*framework.Analyzer{collectives.Analyzer},
	Run:      run,
}

func run(pass *framework.Pass) (any, error) {
	if !vmlib.InScope(pass.Pkg.Path(), vmlib.CorePath, vmlib.AppsPath, vmlib.BenchPath) &&
		!vmlib.InTopLevelScope(pass.Pkg.Path()) {
		return nil, nil
	}
	summary := pass.ResultOf[collectives.Analyzer].(*collectives.Result)

	for _, file := range pass.Files {
		if vmlib.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkFunc(pass, fn, summary)
			}
		}
	}
	return nil, nil
}

// checkFunc taints identity-derived locals and flags collectives under
// tainted control.
func checkFunc(pass *framework.Pass, fn *ast.FuncDecl, summary *collectives.Result) {
	cfg := summary.TaintConfig()
	tainted := cfg.Objects(fn)
	exprTainted := func(e ast.Expr) bool { return cfg.Expr(tainted, e) }

	// Each function literal is its own SPMD scope: the closure passed
	// to Machine.Run is the SPMD body while the enclosing function is
	// host code, so divergence is judged per scope, never across a
	// closure boundary.
	reported := make(map[token.Pos]bool)
	scopes := []*ast.BlockStmt{fn.Body}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scopes = append(scopes, lit.Body)
		}
		return true
	})
	for _, scope := range scopes {
		checkScope(pass, scope, summary.IsCollectiveCall, exprTainted, reported)
	}
}

// checkScope flags identity-dependent collectives and early returns
// within one function scope (a declared body or one closure body),
// never descending into nested literals.
func checkScope(pass *framework.Pass, scope *ast.BlockStmt, isCollective func(*ast.CallExpr) bool, exprTainted func(ast.Expr) bool, reported map[token.Pos]bool) {
	// Positions of the scope's non-deferred collective calls. An early
	// return only diverges processors when it skips a collective the
	// other processors go on to execute; deferred calls (the idiomatic
	// defer e.EndSpan()) run on every exit and cannot be skipped.
	var collPos []token.Pos
	ast.Inspect(scope, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if isCollective(n) {
				collPos = append(collPos, n.Pos())
			}
		}
		return true
	})
	collectiveAfter := func(pos token.Pos) bool {
		for _, p := range collPos {
			if p > pos {
				return true
			}
		}
		return false
	}

	// Find tainted control statements and flag collectives and
	// divergent early exits inside them. Nested tainted conditions
	// would re-flag the same call once per level; report each position
	// once.
	ast.Inspect(scope, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		var cond ast.Expr
		var body []ast.Node
		switch s := n.(type) {
		case *ast.IfStmt:
			cond = s.Cond
			body = append(body, s.Body)
			if s.Else != nil {
				body = append(body, s.Else)
			}
		case *ast.SwitchStmt:
			if s.Tag == nil {
				// Condition-less switch: the case guards run in order,
				// so everything from the first tainted guard on is
				// identity-dependent — reaching a later case requires
				// the tainted guard to have failed. Earlier cases are
				// untainted territory.
				for i, c := range s.Body.List {
					cc := c.(*ast.CaseClause)
					for _, e := range cc.List {
						if exprTainted(e) {
							cond = e
							break
						}
					}
					if cond != nil {
						for _, later := range s.Body.List[i:] {
							body = append(body, later)
						}
						break
					}
				}
			} else {
				cond = s.Tag
				body = append(body, s.Body)
			}
		case *ast.ForStmt:
			cond = s.Cond
			body = append(body, s.Body)
		default:
			return true
		}
		if cond == nil || !exprTainted(cond) {
			return true
		}
		for _, b := range body {
			flagIn(pass, b, isCollective, collectiveAfter, reported)
		}
		return true
	})
}

// flagIn reports every collective call, and every early return that
// skips a later collective, lexically inside root.
func flagIn(pass *framework.Pass, root ast.Node, isCollective func(*ast.CallExpr) bool, collectiveAfter func(token.Pos) bool, reported map[token.Pos]bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own scope, checked separately
		case *ast.CallExpr:
			if isCollective(n) && !reported[n.Pos()] {
				reported[n.Pos()] = true
				name := "collective"
				if f := vmlib.Callee(pass.TypesInfo, n); f != nil {
					name = f.Name()
				}
				pass.Reportf(n.Pos(),
					"%s is control-dependent on processor identity: processors diverge and the run deadlocks",
					name)
			}
		case *ast.ReturnStmt:
			if collectiveAfter(n.Pos()) && !reported[n.Pos()] {
				reported[n.Pos()] = true
				pass.Reportf(n.Pos(),
					"early return under a processor-identity condition skips the collective(s) after it: processors diverge and the run deadlocks")
			}
		}
		return true
	})
}
