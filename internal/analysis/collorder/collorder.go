// Package collorder statically checks the all-paths sequence of
// communication operations in SPMD code. The runtime contract behind
// it: a run is deadlock-free only if every processor of a (sub)machine
// executes the same collectives in the same order with agreeing
// structural arguments (dimensions, masks, tags, roots), and pairwise
// operations (Send/Recv/Exchange) only pair off when both sides agree
// on the dimension and tag. spmdsym already rejects collectives under
// identity-dependent *control flow*; collorder closes the two gaps
// left open:
//
//   - identity-dependent *data* in a structural argument. The
//     canonical example ships in this repository as `vmprim
//     -demo-deadlock`:
//
//     d := (p.ID() & 1) ^ ((p.ID() >> 1) & 1)
//     p.Exchange(d, 7, payload)
//
//     Control flow is identical on every processor, but the exchange
//     dimension differs per rank, nobody's partner agrees, and all
//     four processors block in Recv. The payload may be rank-dependent
//     (it usually is); the *structural* arguments may not.
//
//   - identity-dependent *branches with divergent continuations*. For
//     each `if`/`switch` whose condition reads processor identity, the
//     analyzer compares the full sequence of communication events on
//     each arm, including everything after the statement (an early
//     `return` on one arm skips the collectives that follow). Arms
//     that perform the same events with the same structural arguments
//     are fine — `if p.GridRow() == 0 { sum = AllGather(...) } else {
//     sum = AllGather(...) }` with matching arguments is symmetric —
//     but a mismatch in operation, order, dim or tag is a static
//     deadlock.
//
// Sequences are compared symbolically: constant arguments by value,
// identity-derived arguments as "rank-dependent", everything else by
// normalized source text. Untainted branches become choice points and
// loops become repetition groups, so differing-but-rank-independent
// control flow does not produce false positives: whichever way an
// untainted condition goes, it goes that way on every processor.
//
// Scope matches spmdsym: the packages above the collective layer
// (core, apps, bench) and the top-level facade/example/command code.
// The collective and hypercube internals are exempt — rank-dependent
// sends along tree edges are exactly how the collectives are built.
// Identity and collective summaries come from the collectives base
// analyzer, facts included, so a helper computing a dimension from
// p.ID() in another package still marks its callers' arguments
// rank-dependent.
package collorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vmprim/internal/analysis/collectives"
	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/taint"
	"vmprim/internal/analysis/vmlib"
)

// Analyzer is the collorder entry point.
var Analyzer = &framework.Analyzer{
	Name:     "collorder",
	Doc:      "check that all processors execute the same communication sequence with agreeing structural arguments",
	Requires: []*framework.Analyzer{collectives.Analyzer},
	Run:      run,
}

// structuralParams are the parameter names that determine how an
// operation pairs or groups processors. They follow the simulator's
// uniform naming: d/dim/dims for hypercube dimensions, mask for
// subcube selection, tag/wantTag for message matching, rootRel/root
// for collective roots. Payload parameters (words, data, piece) are
// deliberately absent: per-rank payloads are the point of SPMD.
var structuralParams = map[string]bool{
	"d": true, "dim": true, "dims": true,
	"mask": true,
	"tag":  true, "wantTag": true,
	"rootRel": true, "root": true,
}

// pairwiseMethods are the point-to-point Proc operations whose
// structural arguments must also agree (between the two sides of the
// pairing) even though they are not collectives.
var pairwiseMethods = []string{"Send", "Recv", "Exchange", "ExchangeAll"}

func run(pass *framework.Pass) (any, error) {
	if !vmlib.InScope(pass.Pkg.Path(), vmlib.CorePath, vmlib.AppsPath, vmlib.BenchPath) &&
		!vmlib.InTopLevelScope(pass.Pkg.Path()) {
		return nil, nil
	}
	summary := pass.ResultOf[collectives.Analyzer].(*collectives.Result)
	for _, file := range pass.Files {
		if vmlib.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkFunc(pass, fn, summary)
			}
		}
	}
	return nil, nil
}

// checker carries the per-scope analysis state.
type checker struct {
	pass     *framework.Pass
	summary  *collectives.Result
	cfg      taint.Config
	tainted  map[types.Object]bool
	reported map[string]bool // position-keyed dedup across nested tainted branches
}

func checkFunc(pass *framework.Pass, fn *ast.FuncDecl, summary *collectives.Result) {
	cfg := summary.TaintConfig()
	c := &checker{
		pass:     pass,
		summary:  summary,
		cfg:      cfg,
		tainted:  cfg.Objects(fn),
		reported: make(map[string]bool),
	}
	// As in spmdsym, every function literal is its own SPMD scope: the
	// closure handed to Machine.Run is the SPMD body, the enclosing
	// function is host code.
	scopes := []*ast.BlockStmt{fn.Body}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			scopes = append(scopes, lit.Body)
		}
		return true
	})
	for _, scope := range scopes {
		c.checkArgs(scope)
		c.seqOf(scope.List)
	}
}

// isComm classifies the calls whose order and structural arguments the
// contract constrains: collectives (summaries and facts included) and
// the pairwise Proc operations.
func (c *checker) isComm(call *ast.CallExpr) bool {
	return c.summary.IsCollectiveCall(call) ||
		vmlib.IsProcMethod(c.pass.TypesInfo, call, pairwiseMethods...)
}

// checkArgs is the structural-argument rule: within one scope, flag
// every communication call that receives an identity-derived value in
// a structural parameter.
func (c *checker) checkArgs(scope *ast.BlockStmt) {
	ast.Inspect(scope, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !c.isComm(call) {
			return true
		}
		f := vmlib.Callee(c.pass.TypesInfo, call)
		sig, _ := f.Type().(*types.Signature)
		if sig == nil {
			return true
		}
		for i, arg := range call.Args {
			name := paramName(sig, i)
			if !structuralParams[name] || !c.cfg.Expr(c.tainted, arg) {
				continue
			}
			key := fmt.Sprintf("arg:%d", arg.Pos())
			if c.reported[key] {
				continue
			}
			c.reported[key] = true
			c.pass.Reportf(arg.Pos(),
				"%s argument %q derives from processor identity: processors disagree on the pairing of this %s and the run deadlocks",
				f.Name(), name, opKind(c.pass.TypesInfo, call))
		}
		return true
	})
}

// opKind names the operation class for diagnostics.
func opKind(info *types.Info, call *ast.CallExpr) string {
	if vmlib.IsProcMethod(info, call, pairwiseMethods...) {
		return "exchange"
	}
	return "collective"
}

// paramName maps an argument index to its parameter name, folding
// variadic tails onto the final parameter.
func paramName(sig *types.Signature, i int) string {
	n := sig.Params().Len()
	if n == 0 {
		return ""
	}
	if i >= n {
		if sig.Variadic() {
			return sig.Params().At(n - 1).Name()
		}
		return ""
	}
	return sig.Params().At(i).Name()
}

// seqOf runs the symbolic sequence walk over a statement list. It
// returns the serialized communication events of the list and whether
// control cannot continue past it — either because every path
// terminates, or because a tainted branch folded the remainder of the
// list into its per-arm comparison already.
func (c *checker) seqOf(stmts []ast.Stmt) (items []string, term bool) {
	for idx, s := range stmts {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			items = append(items, c.events(s)...)
			return items, true

		case *ast.BranchStmt:
			return items, true // break/continue/goto: control leaves the list

		case *ast.BlockStmt:
			sub, t := c.seqOf(s.List)
			items = append(items, sub...)
			if t {
				return items, true
			}

		case *ast.LabeledStmt:
			sub, t := c.seqOf([]ast.Stmt{s.Stmt})
			items = append(items, sub...)
			if t {
				return items, true
			}

		case *ast.IfStmt:
			if s.Init != nil {
				items = append(items, c.events(s.Init)...)
			}
			var elseList []ast.Stmt
			if s.Else != nil {
				if blk, ok := s.Else.(*ast.BlockStmt); ok {
					elseList = blk.List
				} else {
					elseList = []ast.Stmt{s.Else}
				}
			}
			thenItems, thenTerm := c.seqOf(s.Body.List)
			elseItems, elseTerm := c.seqOf(elseList)
			if c.cfg.Expr(c.tainted, s.Cond) {
				rest, _ := c.seqOf(stmts[idx+1:])
				full := func(arm []string, t bool) []string {
					if t {
						return arm
					}
					return append(append([]string{}, arm...), rest...)
				}
				fullThen := full(thenItems, thenTerm)
				fullElse := full(elseItems, elseTerm)
				c.compareArms(s.Pos(), "branch", fullThen, fullElse)
				// The remainder of the list is folded into the per-arm
				// comparison, so consume it here — but control only
				// terminates if both arms do; otherwise the enclosing
				// list continues past this block, and reporting a false
				// termination would make the enclosing arm look like it
				// communicates nothing. Represent the statement by a
				// non-terminating arm so the folded continuation stays
				// visible to outer comparisons.
				rep, allTerm := fullThen, thenTerm && elseTerm
				if thenTerm && !elseTerm {
					rep = fullElse
				}
				return append(items, rep...), allTerm
			}
			items = append(items, choice(thenItems, thenTerm, elseItems, elseTerm)...)
			if thenTerm && elseTerm {
				return items, true
			}

		case *ast.SwitchStmt, *ast.TypeSwitchStmt:
			init, tag, bodies, hasDefault, taintFrom := c.switchParts(s)
			if init != nil {
				items = append(items, c.events(init)...)
			}
			if tag != nil {
				items = append(items, c.exprEvents(tag)...)
			}
			var arms [][]string
			var terms []bool
			for _, b := range bodies {
				sub, t := c.seqOf(b)
				arms = append(arms, sub)
				terms = append(terms, t)
			}
			if taintFrom >= 0 {
				// Guards before the first tainted one are uniform:
				// every processor agrees whether one of those arms is
				// taken (owner-subcube code leads with an untainted
				// "replicate everywhere" case). Divergence is only
				// possible among the arms from the first tainted guard
				// onward, plus the implicit empty default.
				rest, _ := c.seqOf(stmts[idx+1:])
				cArms, cTerms := arms[taintFrom:], terms[taintFrom:]
				if !hasDefault {
					cArms = append(cArms, nil)
					cTerms = append(cTerms, false)
				}
				var fulls [][]string
				for i := range cArms {
					if cTerms[i] {
						fulls = append(fulls, cArms[i])
					} else {
						fulls = append(fulls, append(append([]string{}, cArms[i]...), rest...))
					}
				}
				for i := 1; i < len(fulls); i++ {
					c.compareArms(s.Pos(), "switch", fulls[0], fulls[i])
				}
				var pre []string
				allTerm := true
				for i := 0; i < taintFrom; i++ {
					if p := serialize(arms[i], terms[i]); p != "" {
						pre = append(pre, p)
					}
					allTerm = allTerm && terms[i]
				}
				if len(pre) > 0 {
					items = append(items, "case{"+strings.Join(pre, "|")+"}")
				}
				// As with tainted ifs: the remainder is consumed into
				// the comparison; represent the switch by a
				// non-terminating arm and terminate only if every path
				// does.
				rep := fulls[0]
				for i := range fulls {
					allTerm = allTerm && cTerms[i]
					if !cTerms[i] {
						rep = fulls[i]
					}
				}
				return append(items, rep...), allTerm
			}
			if !hasDefault {
				arms = append(arms, nil)
				terms = append(terms, false)
			}
			all := true
			var parts []string
			for i := range arms {
				parts = append(parts, serialize(arms[i], terms[i]))
				all = all && terms[i]
			}
			if !uniform(parts) {
				items = append(items, "case{"+strings.Join(parts, "|")+"}")
			} else if len(arms) > 0 {
				items = append(items, arms[0]...)
			}
			if all {
				return items, true
			}

		case *ast.ForStmt:
			if s.Init != nil {
				items = append(items, c.events(s.Init)...)
			}
			// A loop condition reading identity is spmdsym's case
			// (control dependence); here an untainted loop is one
			// repetition group — every processor iterates alike. A
			// body with no communication events contributes nothing:
			// its breaks and continues gate only the loop itself, so
			// even a body full of control flow cannot skew the
			// communication sequence.
			body, _ := c.seqOf(s.Body.List)
			if hasEvent(body) {
				items = append(items, "loop{"+strings.Join(body, " ")+"}")
			}

		case *ast.RangeStmt:
			body, _ := c.seqOf(s.Body.List)
			if hasEvent(body) {
				items = append(items, "loop{"+strings.Join(body, " ")+"}")
			}

		case *ast.SelectStmt:
			var parts []string
			for _, cl := range s.Body.List {
				sub, t := c.seqOf(cl.(*ast.CommClause).Body)
				parts = append(parts, serialize(sub, t))
			}
			if !uniform(parts) {
				items = append(items, "select{"+strings.Join(parts, "|")+"}")
			}

		case *ast.DeferStmt, *ast.GoStmt:
			// Deferred calls run on every exit path alike; goroutines
			// communicate on their own span of control.

		default:
			items = append(items, c.events(s)...)
		}
	}
	return items, false
}

// switchParts normalizes value and type switches into their shared
// shape and locates the identity taint in the dispatch: taintFrom is
// the index of the first arm whose selection can differ between
// processors (0 when the switch tag itself is tainted, the first
// tainted guard of a condition-less switch otherwise), or -1 when the
// dispatch is uniform.
func (c *checker) switchParts(s ast.Stmt) (init ast.Stmt, tag ast.Expr, bodies [][]ast.Stmt, hasDefault bool, taintFrom int) {
	taintFrom = -1
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init = s.Init
		tag = s.Tag
		if tag != nil && c.cfg.Expr(c.tainted, tag) {
			taintFrom = 0
		}
		for i, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			if tag == nil && taintFrom < 0 {
				// Condition-less switch: the case guards are the
				// conditions, evaluated in order, so every guard
				// before the first tainted one is a uniform decision.
				for _, e := range cc.List {
					if c.cfg.Expr(c.tainted, e) {
						taintFrom = i
						break
					}
				}
			}
			bodies = append(bodies, cc.Body)
		}
	case *ast.TypeSwitchStmt:
		init = s.Init
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			bodies = append(bodies, cc.Body)
		}
	}
	return init, tag, bodies, hasDefault, taintFrom
}

// compareArms reports if two arms of an identity-dependent branch
// perform different communication sequences (the statement's own arms
// plus everything that follows it, folded in by the caller).
func (c *checker) compareArms(pos token.Pos, kind string, a, b []string) {
	sa, sb := strings.Join(a, " "), strings.Join(b, " ")
	if sa == sb {
		return
	}
	key := fmt.Sprintf("seq:%d", pos)
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.pass.Reportf(pos,
		"communication sequence diverges on this identity-dependent %s: one side runs [%s], the other [%s]; processors fall out of step and the run deadlocks",
		kind, abbrev(sa), abbrev(sb))
}

// abbrev keeps diagnostics readable when a divergent continuation is
// long.
func abbrev(s string) string {
	if s == "" {
		return "nothing"
	}
	const max = 90
	if len(s) > max {
		return s[:max] + "…"
	}
	return s
}

// choice renders an untainted two-way branch: equal arms collapse to
// their shared sequence, differing arms become one choice item.
func choice(thenItems []string, thenTerm bool, elseItems []string, elseTerm bool) []string {
	t := serialize(thenItems, thenTerm)
	e := serialize(elseItems, elseTerm)
	if t == e {
		return thenItems
	}
	if len(thenItems) == 0 && len(elseItems) == 0 && thenTerm == elseTerm {
		return nil
	}
	return []string{"if{" + t + "|" + e + "}"}
}

// serialize renders one arm's sequence, marking termination so that
// "does a collective then returns" differs from "does a collective".
func serialize(items []string, term bool) string {
	s := strings.Join(items, " ")
	if term {
		s += " ↩"
	}
	return s
}

// hasEvent reports whether a rendered sequence contains an actual
// communication event, as opposed to only control markers (if{…},
// ↩ and friends). Every event renders as "Name(…)", so a parenthesis
// is the reliable tell.
func hasEvent(items []string) bool {
	for _, it := range items {
		if strings.Contains(it, "(") {
			return true
		}
	}
	return false
}

// uniform reports whether all rendered arms are identical.
func uniform(parts []string) bool {
	for i := 1; i < len(parts); i++ {
		if parts[i] != parts[0] {
			return false
		}
	}
	return true
}

// events collects the communication events of one non-branching
// statement, in source order, without descending into function
// literals.
func (c *checker) events(s ast.Node) []string {
	var out []string
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && c.isComm(call) {
			out = append(out, c.eventOf(call))
		}
		return true
	})
	return out
}

func (c *checker) exprEvents(e ast.Expr) []string { return c.events(e) }

// eventOf renders one communication call as a comparable event:
// operation name plus its structural arguments, each shown as a
// constant value, as "rank-dependent" when identity-tainted, or as
// normalized source text.
func (c *checker) eventOf(call *ast.CallExpr) string {
	f := vmlib.Callee(c.pass.TypesInfo, call)
	if f == nil {
		return "comm()"
	}
	sig, _ := f.Type().(*types.Signature)
	var parts []string
	if sig != nil {
		for i, arg := range call.Args {
			name := paramName(sig, i)
			if !structuralParams[name] {
				continue
			}
			parts = append(parts, name+"="+c.renderArg(arg))
		}
	}
	return f.Name() + "(" + strings.Join(parts, ",") + ")"
}

// renderArg normalizes a structural argument for comparison.
func (c *checker) renderArg(e ast.Expr) string {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return tv.Value.String()
	}
	if c.cfg.Expr(c.tainted, e) {
		return "rank-dependent"
	}
	// A dimension-list literal ([]int{0, 1}) must be rendered per
	// element: types.ExprString collapses every composite literal to
	// the same "(composite literal)" placeholder, which would make
	// ExchangeAll over []int{0, 1} compare equal to one over
	// []int{1, 2} and hide a real divergence.
	if lit, ok := ast.Unparen(e).(*ast.CompositeLit); ok {
		parts := make([]string, len(lit.Elts))
		for i, el := range lit.Elts {
			parts[i] = c.renderArg(el)
		}
		return "[" + strings.Join(parts, " ") + "]"
	}
	return types.ExprString(e)
}
