package collorder_test

import (
	"path/filepath"
	"testing"

	"vmprim/internal/analysis/analysistest"
	"vmprim/internal/analysis/collorder"
)

func TestCollOrder(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), collorder.Analyzer,
		"vmprim/internal/apps/corder")
}

// TestCrossPackageFacts drives the same fixture with and without
// dependency facts: the identity taint of xhelp.Quadrant and the
// collectiveness of xhelp.SumAll are known only through package
// facts, so the diagnostics must appear when facts flow and vanish
// when they do not.
func TestCrossPackageFacts(t *testing.T) {
	testdata := filepath.Join("..", "testdata")
	analysistest.Run(t, testdata, collorder.Analyzer, "vmprim/internal/apps/xuse")

	findings := analysistest.Findings(t, testdata, collorder.Analyzer,
		"vmprim/internal/apps/xuse", false)
	for _, f := range findings {
		t.Errorf("with facts disabled, cross-package diagnostic still reported: %s", f)
	}
}
