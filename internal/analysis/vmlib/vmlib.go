// Package vmlib holds the type-resolution helpers shared by the
// vmlint analyzers: resolving call targets against the simulator's
// types (hypercube.Proc, core.Env, the collective package) and the
// package-scope rules that decide which parts of the tree each
// analyzer audits.
//
// All matching is by package path and name, never by object identity,
// so the analyzers work identically on the real tree and on the
// analysistest fixtures, whose stub packages are declared under the
// same import paths.
package vmlib

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Import paths of the simulator packages the analyzers know about.
const (
	HypercubePath  = "vmprim/internal/hypercube"
	CollectivePath = "vmprim/internal/collective"
	CorePath       = "vmprim/internal/core"
	AppsPath       = "vmprim/internal/apps"
	RouterPath     = "vmprim/internal/router"
	BenchPath      = "vmprim/internal/bench"
	GrayPath       = "vmprim/internal/gray"

	// FacadePath is the public facade package, which re-exports the
	// machine model and kernels; ExamplesPath and CmdPath are the
	// top-level consumers written against it. SPMD code there is held
	// to the same contracts as the internal tree.
	FacadePath   = "vmprim"
	ExamplesPath = "vmprim/examples"
	CmdPath      = "vmprim/cmd"

	// The host-concurrent packages: the serving plane and its load
	// driver, audited by the hostconc analyzer family (which also
	// covers the pool/stream files of HypercubePath).
	ServePath   = "vmprim/internal/serve"
	MetricsPath = "vmprim/internal/metrics"
	VmprimdPath = "vmprim/cmd/vmprimd"
	VmloadPath  = "vmprim/cmd/vmload"
)

// InScope reports whether pkgPath is one of the listed audit roots or
// lies beneath one (fixture packages sit beneath the real paths).
func InScope(pkgPath string, roots ...string) bool {
	for _, r := range roots {
		if pkgPath == r || strings.HasPrefix(pkgPath, r+"/") {
			return true
		}
	}
	return false
}

// InTopLevelScope reports whether pkgPath is the facade package
// itself or one of the example/command packages written against it.
// (FacadePath cannot go through InScope: every package in the module
// sits beneath "vmprim/".)
func InTopLevelScope(pkgPath string) bool {
	return pkgPath == FacadePath || InScope(pkgPath, ExamplesPath, CmdPath)
}

// IsTestFile reports whether the file containing pos is a _test.go
// file. The analyzers audit only non-test sources: tests deliberately
// exercise the failing runtime paths (unbalanced spans, seeded random
// workloads, host-time measurement) that the analyzers exist to keep
// out of the simulator proper.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// Callee resolves the *types.Func a call invokes, or nil for calls
// through non-constant function values (combiners, kernel variables).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// IsMethod reports whether f is a method named name on the (possibly
// pointer) named type pkgPath.typeName.
func IsMethod(f *types.Func, pkgPath, typeName, name string) bool {
	if f == nil || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsProcMethod reports whether call invokes the named method on
// *hypercube.Proc.
func IsProcMethod(info *types.Info, call *ast.CallExpr, names ...string) bool {
	f := Callee(info, call)
	for _, n := range names {
		if IsMethod(f, HypercubePath, "Proc", n) {
			return true
		}
	}
	return false
}

// IsEnvMethod reports whether call invokes the named method on
// *core.Env.
func IsEnvMethod(info *types.Info, call *ast.CallExpr, names ...string) bool {
	f := Callee(info, call)
	for _, n := range names {
		if IsMethod(f, CorePath, "Env", n) {
			return true
		}
	}
	return false
}

// envLocalMethods are the exported core.Env methods that perform no
// collective communication and may therefore run under
// processor-identity conditions: tag bookkeeping, grid coordinates,
// and profiling accessors. Every other exported Env method is treated
// as a collective by the SPMD-symmetry analyzer, which matches the
// package contract: Env operations are SPMD and must be called by
// every processor. Unexported Env methods are package-internal
// helpers with no such contract; callers inside core rely on the
// analyzer's interprocedural summary to classify them by what their
// bodies actually do.
var envLocalMethods = map[string]bool{
	"NextTag":   true,
	"NextTag2":  true,
	"Profiling": true,
	"GridRow":   true,
	"GridCol":   true,
	"SpanNote":  true,
}

// IsCollectiveCall reports whether call is an operation that every
// processor of the (sub)machine must execute together: a function of
// the collective package taking a *hypercube.Proc, a router entry
// point, a facade re-export (a package-level vmprim function whose
// first parameter is a *Proc or *Env — the kernels), a whole-cube
// Proc method (Barrier and the span pair), or an exported core.Env
// method outside the local allowlist.
//
// The facade's type aliases (vmprim.Proc = hypercube.Proc and so on)
// need no special handling — a method called through an alias still
// resolves to the underlying named type — but its package-level
// kernel functions carry the facade's own package path, which is why
// it appears here explicitly: without it, example and top-level test
// code calling vmprim.MatVecKernel would escape analysis.
func IsCollectiveCall(info *types.Info, call *ast.CallExpr) bool {
	f := Callee(info, call)
	if f == nil {
		return false
	}
	if pkg := f.Pkg(); pkg != nil && f.Type().(*types.Signature).Recv() == nil {
		if InScope(pkg.Path(), CollectivePath, RouterPath) && firstParamIsProc(f) {
			return true
		}
		if pkg.Path() == FacadePath && (firstParamIsProc(f) || firstParamIsEnv(f)) {
			return true
		}
	}
	if IsMethod(f, HypercubePath, "Proc", "Barrier") ||
		IsMethod(f, HypercubePath, "Proc", "BeginSpan") ||
		IsMethod(f, HypercubePath, "Proc", "EndSpan") {
		return true
	}
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && IsMethod(f, CorePath, "Env", f.Name()) {
		return token.IsExported(f.Name()) && !envLocalMethods[f.Name()]
	}
	return false
}

// firstParamIsProc reports whether f's first parameter is a
// *hypercube.Proc — the signature convention of every collective.
func firstParamIsProc(f *types.Func) bool {
	return firstParamIsNamed(f, HypercubePath, "Proc")
}

// firstParamIsEnv reports whether f's first parameter is a *core.Env
// — the signature convention of the facade's SPMD kernels.
func firstParamIsEnv(f *types.Func) bool {
	return firstParamIsNamed(f, CorePath, "Env")
}

func firstParamIsNamed(f *types.Func, pkgPath, typeName string) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	p, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsIdentityRead reports whether call reads processor identity
// directly: Proc.ID, or the grid coordinates Env.GridRow/GridCol
// derived from it. These are the taint sources of the SPMD-symmetry
// analyses; values computed from them differ across processors.
func IsIdentityRead(info *types.Info, call *ast.CallExpr) bool {
	return IsProcMethod(info, call, "ID") || IsEnvMethod(info, call, "GridRow", "GridCol")
}

// IsSpanCall classifies call as BeginSpan or EndSpan on either
// hypercube.Proc or core.Env. The bool result reports a match; begin
// distinguishes the two.
func IsSpanCall(info *types.Info, call *ast.CallExpr) (begin, ok bool) {
	f := Callee(info, call)
	for _, owner := range [][2]string{{HypercubePath, "Proc"}, {CorePath, "Env"}} {
		if IsMethod(f, owner[0], owner[1], "BeginSpan") {
			return true, true
		}
		if IsMethod(f, owner[0], owner[1], "EndSpan") {
			return false, true
		}
	}
	return false, false
}

// IsPanicCall reports whether call invokes the builtin panic.
func IsPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
