// Package simdeterminism statically protects the simulator's
// bit-identical-times guarantee: the EXPERIMENTS tables are reproduced
// digit for digit on every host, which holds only because nothing in
// the simulation layer reads wall-clock time, process-seeded
// randomness, or Go's randomized map iteration order in a way that
// feeds message traffic or reduction order.
//
// Inside the simulation packages (hypercube, collective, core, apps,
// router) the analyzer forbids, in non-test files:
//
//   - time.Now, time.Since, time.Until and time.Sleep — wall-clock
//     reads and waits (time.Duration values and timers used for the
//     deadlock watchdog are fine: they never feed the virtual clock);
//   - package-level math/rand and math/rand/v2 functions, which draw
//     from the process-global generator seeded differently every run;
//     explicitly seeded generators (rand.New(rand.NewSource(seed)))
//     are untouched;
//   - ranging over a map when the loop body sends messages, calls a
//     collective, or opens spans: map order varies per execution, so
//     message order, floating-point reduction order, and the
//     SPMD span-discovery order would too.
package simdeterminism

import (
	"fmt"
	"go/ast"
	"go/types"

	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/vmlib"
)

// Analyzer is the simdeterminism entry point.
var Analyzer = &framework.Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock reads, global rand, and map-order-dependent communication in the simulator",
	Run:  run,
}

// forbiddenTime are the wall-clock entry points of package time.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
}

// randConstructors are the math/rand functions that build explicitly
// seeded generators and are therefore allowed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func run(pass *framework.Pass) (any, error) {
	if !vmlib.InScope(pass.Pkg.Path(),
		vmlib.HypercubePath, vmlib.CollectivePath, vmlib.CorePath, vmlib.AppsPath, vmlib.RouterPath) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if vmlib.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkCall flags wall-clock and global-rand calls.
func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	f := vmlib.Callee(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (rand.Rand.Float64, Timer.Reset) are fine
	}
	switch f.Pkg().Path() {
	case "time":
		if forbiddenTime[f.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; simulated times must depend only on the cost model",
				f.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[f.Name()] {
			d := framework.Diagnostic{
				Pos: call.Pos(),
				Message: fmt.Sprintf(
					"rand.%s draws from the process-global generator; use rand.New(rand.NewSource(seed)) so runs are reproducible",
					f.Name()),
			}
			if fix := seededRandFix(pass, call, f); fix != nil {
				d.SuggestedFixes = []framework.SuggestedFix{*fix}
			}
			pass.Report(d)
		}
	}
}

// seededRandFix rewrites a package-level rand call to draw from an
// explicitly seeded generator by replacing the package qualifier:
// rand.Intn(n) becomes rand.New(rand.NewSource(1)).Intn(n) (or the
// NewPCG form for math/rand/v2). Every forbidden package-level
// function is also a *rand.Rand method except v2's generic rand.N, so
// the rewrite always compiles; seed 1 is a placeholder the author is
// expected to thread through properly, but even unedited it restores
// run-to-run reproducibility, which is the invariant being enforced.
func seededRandFix(pass *framework.Pass, call *ast.CallExpr, f *types.Func) *framework.SuggestedFix {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	qual, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	var repl string
	switch f.Pkg().Path() {
	case "math/rand":
		repl = qual.Name + ".New(" + qual.Name + ".NewSource(1))"
	case "math/rand/v2":
		if f.Name() == "N" {
			return nil // generic helper, not a Rand method
		}
		repl = qual.Name + ".New(" + qual.Name + ".NewPCG(1, 2))"
	default:
		return nil
	}
	return &framework.SuggestedFix{
		Message:   "draw from an explicitly seeded generator",
		TextEdits: []framework.TextEdit{{Pos: qual.Pos(), End: qual.End(), NewText: []byte(repl)}},
	}
}

// checkMapRange flags map-ordered loops that feed communication.
func checkMapRange(pass *framework.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var culprit *ast.CallExpr
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if culprit != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if vmlib.IsProcMethod(pass.TypesInfo, call, "Send", "Exchange", "ExchangeAll", "Barrier", "BeginSpan") ||
			vmlib.IsCollectiveCall(pass.TypesInfo, call) {
			culprit = call
			return false
		}
		return true
	})
	if culprit != nil {
		name := "a communication call"
		if f := vmlib.Callee(pass.TypesInfo, culprit); f != nil {
			name = f.Name()
		}
		pass.Reportf(rng.Pos(),
			"map iteration order is nondeterministic and this loop feeds %s; iterate over sorted keys instead",
			name)
	}
}
