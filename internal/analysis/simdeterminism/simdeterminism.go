// Package simdeterminism statically protects the simulator's
// bit-identical-times guarantee: the EXPERIMENTS tables are reproduced
// digit for digit on every host, which holds only because nothing in
// the simulation layer reads wall-clock time, process-seeded
// randomness, or Go's randomized map iteration order in a way that
// feeds message traffic or reduction order.
//
// Inside the simulation packages (hypercube, collective, core, apps,
// router) the analyzer forbids, in non-test files:
//
//   - time.Now, time.Since, time.Until and time.Sleep — wall-clock
//     reads and waits (time.Duration values and timers used for the
//     deadlock watchdog are fine: they never feed the virtual clock);
//   - package-level math/rand and math/rand/v2 functions, which draw
//     from the process-global generator seeded differently every run;
//     explicitly seeded generators (rand.New(rand.NewSource(seed)))
//     are untouched;
//   - ranging over a map when the loop body sends messages, calls a
//     collective, or opens spans: map order varies per execution, so
//     message order, floating-point reduction order, and the
//     SPMD span-discovery order would too.
//
// Host-parallel execution adds two failure modes, also checked here:
//
//   - runtime.Gosched — a host-scheduler yield inside the simulation
//     layer means the code is timing itself against the host
//     interleaving, which GOMAXPROCS changes; correct SPMD code
//     synchronizes only through sends, receives and collectives;
//   - unsynchronized writes to captured variables from SPMD bodies —
//     with workers running host-parallel between communication points,
//     every processor executes the body concurrently, so a plain
//     assignment to a variable declared outside the body is a data
//     race unless it is guarded by a processor-identity check
//     (if p.ID() == 0 { ... }) or indexed per processor
//     (out[p.ID()] = ...).
package simdeterminism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/vmlib"
)

// Analyzer is the simdeterminism entry point.
var Analyzer = &framework.Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock reads, global rand, and map-order-dependent communication in the simulator",
	Run:  run,
}

// forbiddenTime are the wall-clock entry points of package time.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
}

// randConstructors are the math/rand functions that build explicitly
// seeded generators and are therefore allowed.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func run(pass *framework.Pass) (any, error) {
	if !vmlib.InScope(pass.Pkg.Path(),
		vmlib.HypercubePath, vmlib.CollectivePath, vmlib.CorePath, vmlib.AppsPath, vmlib.RouterPath) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if vmlib.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
		checkSPMDBodies(pass, file)
	}
	return nil, nil
}

// checkCall flags wall-clock and global-rand calls.
func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	f := vmlib.Callee(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (rand.Rand.Float64, Timer.Reset) are fine
	}
	switch f.Pkg().Path() {
	case "time":
		if forbiddenTime[f.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; simulated times must depend only on the cost model",
				f.Name())
		}
	case "runtime":
		if f.Name() == "Gosched" {
			pass.Reportf(call.Pos(),
				"runtime.Gosched yields to the host scheduler; SPMD code must synchronize only through sends, receives and collectives, never host interleaving")
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[f.Name()] {
			d := framework.Diagnostic{
				Pos: call.Pos(),
				Message: fmt.Sprintf(
					"rand.%s draws from the process-global generator; use rand.New(rand.NewSource(seed)) so runs are reproducible",
					f.Name()),
			}
			if fix := seededRandFix(pass, call, f); fix != nil {
				d.SuggestedFixes = []framework.SuggestedFix{*fix}
			}
			pass.Report(d)
		}
	}
}

// seededRandFix rewrites a package-level rand call to draw from an
// explicitly seeded generator by replacing the package qualifier:
// rand.Intn(n) becomes rand.New(rand.NewSource(1)).Intn(n) (or the
// NewPCG form for math/rand/v2). Every forbidden package-level
// function is also a *rand.Rand method except v2's generic rand.N, so
// the rewrite always compiles; seed 1 is a placeholder the author is
// expected to thread through properly, but even unedited it restores
// run-to-run reproducibility, which is the invariant being enforced.
func seededRandFix(pass *framework.Pass, call *ast.CallExpr, f *types.Func) *framework.SuggestedFix {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	qual, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	var repl string
	switch f.Pkg().Path() {
	case "math/rand":
		repl = qual.Name + ".New(" + qual.Name + ".NewSource(1))"
	case "math/rand/v2":
		if f.Name() == "N" {
			return nil // generic helper, not a Rand method
		}
		repl = qual.Name + ".New(" + qual.Name + ".NewPCG(1, 2))"
	default:
		return nil
	}
	return &framework.SuggestedFix{
		Message:   "draw from an explicitly seeded generator",
		TextEdits: []framework.TextEdit{{Pos: qual.Pos(), End: qual.End(), NewText: []byte(repl)}},
	}
}

// checkMapRange flags map-ordered loops that feed communication.
func checkMapRange(pass *framework.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var culprit *ast.CallExpr
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if culprit != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if vmlib.IsProcMethod(pass.TypesInfo, call, "Send", "Exchange", "ExchangeAll", "Barrier", "BeginSpan") ||
			vmlib.IsCollectiveCall(pass.TypesInfo, call) {
			culprit = call
			return false
		}
		return true
	})
	if culprit != nil {
		name := "a communication call"
		if f := vmlib.Callee(pass.TypesInfo, culprit); f != nil {
			name = f.Name()
		}
		pass.Reportf(rng.Pos(),
			"map iteration order is nondeterministic and this loop feeds %s; iterate over sorted keys instead",
			name)
	}
}

// checkSPMDBodies finds the SPMD entry points of a file — function
// literals and declarations with a *hypercube.Proc or *core.Env
// parameter — and audits each for unsynchronized writes to shared
// state. Literals nested inside an already-audited SPMD body are
// covered by the enclosing audit (their captured-variable test runs
// against the outermost body's scope) and are not audited twice.
func checkSPMDBodies(pass *framework.Pass, file *ast.File) {
	var bodies []*ast.FuncLit // outermost SPMD literals, in order
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || !isSPMDFunc(pass, lit.Type) {
			return true
		}
		for _, b := range bodies {
			if lit.Pos() >= b.Pos() && lit.End() <= b.End() {
				return true // nested inside an audited body
			}
		}
		bodies = append(bodies, lit)
		return true
	})
	for _, lit := range bodies {
		checkSharedWrites(pass, lit.Body, lit.Pos(), lit.End())
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !isSPMDFunc(pass, fd.Type) {
			continue
		}
		checkSharedWrites(pass, fd.Body, fd.Pos(), fd.End())
	}
}

// isSPMDFunc reports whether the signature marks an SPMD body: a
// parameter of type *hypercube.Proc or *core.Env.
func isSPMDFunc(pass *framework.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		ptr, ok := tv.Type.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() == nil {
			continue
		}
		switch {
		case obj.Name() == "Proc" && obj.Pkg().Path() == vmlib.HypercubePath,
			obj.Name() == "Env" && obj.Pkg().Path() == vmlib.CorePath:
			return true
		}
	}
	return false
}

// checkSharedWrites flags plain assignments and increments to
// variables declared outside [bodyStart, bodyEnd] — state every
// processor's goroutine would write concurrently under host-parallel
// execution. Writes inside an if whose condition reads processor
// identity (p.ID(), e.GridRow/GridCol) are the sanctioned
// one-writer idiom and pass; so do indexed writes (out[p.ID()] = ...),
// whose element is per-processor by convention and whose aliasing the
// race detector, not a linter, must judge.
func checkSharedWrites(pass *framework.Pass, body *ast.BlockStmt, bodyStart, bodyEnd token.Pos) {
	// Collect the guarded regions: bodies (and else branches — both
	// sides of an identity branch execute on disjoint processor sets)
	// of ifs conditioned on processor identity.
	var guarded [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !readsIdentity(pass, ifs.Cond) {
			return true
		}
		guarded = append(guarded, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
		if ifs.Else != nil {
			guarded = append(guarded, [2]token.Pos{ifs.Else.Pos(), ifs.Else.End()})
		}
		return true
	})
	isGuarded := func(pos token.Pos) bool {
		for _, g := range guarded {
			if pos >= g[0] && pos <= g[1] {
				return true
			}
		}
		return false
	}
	flag := func(id *ast.Ident) {
		if id.Name == "_" || isGuarded(id.Pos()) {
			return
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return
		}
		if obj.Pos() >= bodyStart && obj.Pos() <= bodyEnd {
			return // declared inside the SPMD body: per-processor state
		}
		pass.Reportf(id.Pos(),
			"write to %s, captured from outside the SPMD body, races across processors under host-parallel execution; index it by p.ID() or guard the write with a processor-identity check",
			id.Name)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range st.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					flag(id)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := st.X.(*ast.Ident); ok {
				flag(id)
			}
		}
		return true
	})
}

// readsIdentity reports whether expr contains a direct processor-
// identity read.
func readsIdentity(pass *framework.Pass, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && vmlib.IsIdentityRead(pass.TypesInfo, call) {
			found = true
			return false
		}
		return true
	})
	return found
}
