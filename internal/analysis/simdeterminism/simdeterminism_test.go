package simdeterminism_test

import (
	"path/filepath"
	"testing"

	"vmprim/internal/analysis/analysistest"
	"vmprim/internal/analysis/simdeterminism"
)

func TestSimDeterminism(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), simdeterminism.Analyzer,
		"vmprim/internal/apps/det")
}
