package simdeterminism_test

import (
	"path/filepath"
	"testing"

	"vmprim/internal/analysis/analysistest"
	"vmprim/internal/analysis/simdeterminism"
)

func TestSimDeterminism(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), simdeterminism.Analyzer,
		"vmprim/internal/apps/det")
}

// TestSuggestedFixes validates the seeded-generator rewrite against
// the .golden file and proves applying it twice changes nothing.
func TestSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, filepath.Join("..", "testdata"), simdeterminism.Analyzer,
		"vmprim/internal/apps/detfix")
}
