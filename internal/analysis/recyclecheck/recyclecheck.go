// Package recyclecheck statically enforces the buffer-ownership
// discipline of the simulator's per-processor pools: every buffer a
// function obtains from Proc.GetBuf, Proc.Recv, Proc.Exchange or
// Proc.ExchangeAll must be discharged — recycled back to the pool,
// returned to the caller, or handed off into a longer-lived structure
// — before the function is done with it. A buffer with no discharging
// use at all is a guaranteed pool leak that the runtime allocation
// guards only observe in aggregate, after the fact.
//
// The check is intentionally flow-insensitive: it asks whether a
// discharging use exists anywhere in the function, not whether one
// exists on every path. That keeps it free of false positives on the
// collectives' branch-heavy protocol code, at the cost of missing
// leaks that occur only on some paths. Leaks on panic paths are
// deliberately out of scope — a panic aborts the whole Run and the
// pools are per-run state, so nothing is actually lost.
//
// Discharging uses of a tracked buffer v:
//
//   - p.Recycle(v) — returned to the pool;
//   - p.Capture(v) — handed to the flight recorder, which keeps it
//     for the post-mortem report;
//   - any appearance inside a return statement — ownership passes to
//     the caller;
//   - v (or a reslice v[i:j], which shares the backing array) assigned
//     to another variable, stored into a field, element or composite
//     literal, or appended as an element — ownership moves to the new
//     holder, whose own obligations are that holder's problem;
//   - v passed directly to a call as a fresh expression (f(p.GetBuf(n))
//     — an explicit hand-off).
//
// Everything else — indexing, ranging, len/cap, copy, payload
// arguments to Send/Exchange (which copy), combiner arguments — is a
// borrow and leaves the obligation standing.
package recyclecheck

import (
	"go/ast"
	"go/types"

	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/vmlib"
)

// Analyzer is the recyclecheck entry point.
var Analyzer = &framework.Analyzer{
	Name: "recyclecheck",
	Doc:  "check that pooled buffers from GetBuf/Recv are recycled, returned, or handed off",
	Run:  run,
}

// originMethods obtain pool-owned buffers.
var originMethods = []string{"GetBuf", "Recv", "Exchange", "ExchangeAll"}

func run(pass *framework.Pass) error {
	if !vmlib.InScope(pass.Pkg.Path(), vmlib.CollectivePath, vmlib.CorePath, vmlib.AppsPath) {
		return nil
	}
	for _, file := range pass.Files {
		if vmlib.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkFunc(pass, fn)
			}
		}
	}
	return nil
}

// obligation is one tracked buffer: the variable bound to an origin
// call, and whether any discharging use was seen.
type obligation struct {
	obj        types.Object
	origin     *ast.CallExpr
	method     string
	discharged bool
}

func checkFunc(pass *framework.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	var obls []*obligation

	// Pass 1: find origin calls and classify their immediate context.
	framework.WalkStack(fn, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !vmlib.IsProcMethod(info, call, originMethods...) {
			return true
		}
		method := vmlib.Callee(info, call).Name()
		// Walk up through reslices of the fresh buffer (GetBuf(n)[:0])
		// to the node that gives the call its meaning.
		top := ast.Node(call)
		i := len(stack) - 1
		for ; i >= 0; i-- {
			if se, ok := stack[i].(*ast.SliceExpr); ok && se.X == top {
				top = se
				continue
			}
			if pe, ok := stack[i].(*ast.ParenExpr); ok {
				top = pe
				continue
			}
			break
		}
		if i < 0 {
			return true
		}
		switch parent := stack[i].(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "result of %s is dropped; the buffer can never be recycled", method)
		case *ast.AssignStmt:
			if obj := lhsObject(info, parent, top); obj != nil {
				obls = append(obls, &obligation{obj: obj, origin: call, method: method})
			} else if blankLHS(parent, top) {
				pass.Reportf(call.Pos(), "result of %s is assigned to _; the buffer can never be recycled", method)
			}
			// A non-ident LHS (field, element) is an escaping store:
			// ownership moves into the structure, nothing to track.
		case *ast.ValueSpec:
			for j, v := range parent.Values {
				if v == top && j < len(parent.Names) {
					if obj := info.Defs[parent.Names[j]]; obj != nil && parent.Names[j].Name != "_" {
						obls = append(obls, &obligation{obj: obj, origin: call, method: method})
					}
				}
			}
		}
		// Direct use as a call argument, return value, etc. is an
		// explicit hand-off of the fresh buffer: nothing to track.
		return true
	})
	if len(obls) == 0 {
		return
	}
	byObj := make(map[types.Object][]*obligation, len(obls))
	for _, o := range obls {
		byObj[o.obj] = append(byObj[o.obj], o)
	}

	// Pass 2: scan every use of the tracked variables for a
	// discharging context.
	framework.WalkStack(fn, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		os, tracked := byObj[obj]
		if !tracked {
			return true
		}
		if discharges(info, id, stack) {
			for _, o := range os {
				o.discharged = true
			}
		}
		return true
	})

	for _, o := range obls {
		if !o.discharged {
			pass.Reportf(o.origin.Pos(),
				"buffer %q from %s is never recycled, returned, or handed off (pool leak)",
				o.obj.Name(), o.method)
		}
	}
}

// lhsObject returns the object of the simple identifier on the LHS
// matching rhs in a one-to-one assignment, for both := and =.
func lhsObject(info *types.Info, as *ast.AssignStmt, rhs ast.Node) types.Object {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	for i, r := range as.Rhs {
		if r != rhs {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	return nil
}

// blankLHS reports whether rhs is assigned to the blank identifier.
func blankLHS(as *ast.AssignStmt, rhs ast.Node) bool {
	if len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for i, r := range as.Rhs {
		if r == rhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			return ok && id.Name == "_"
		}
	}
	return false
}

// discharges reports whether this use of a tracked buffer transfers
// ownership. stack is the chain of enclosing nodes, outermost first.
func discharges(info *types.Info, id *ast.Ident, stack []ast.Node) bool {
	// Walk outwards from the identifier through ownership-transparent
	// wrappers (reslices and parens keep the same backing array).
	child := ast.Node(id)
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			child = parent
			continue
		case *ast.SliceExpr:
			if parent.X == child {
				child = parent
				continue
			}
			return false // an index bound like buf[:n] — a read
		case *ast.ReturnStmt:
			return true
		case *ast.CallExpr:
			return callDischarges(info, parent, child)
		case *ast.AssignStmt:
			// Discharge only when the (possibly resliced) buffer itself
			// is a RHS value; appearing on the LHS or inside an index
			// computation is not a transfer.
			for _, r := range parent.Rhs {
				if r == child {
					return true
				}
			}
			return false
		case *ast.KeyValueExpr:
			if parent.Value != child {
				return false
			}
			child = parent
			continue
		case *ast.CompositeLit:
			// The buffer is stored into a literal; ownership escapes
			// with the literal regardless of where it flows next.
			return true
		case *ast.SendStmt:
			return parent.Value == child
		case *ast.IndexExpr:
			// Indexing a slice-of-slices (the ExchangeAll result)
			// extracts an owned buffer: the element use decides.
			// Indexing a flat buffer is an element read, and a use as
			// the index is a read of something else entirely.
			if parent.X == child {
				if tv, ok := info.Types[parent]; ok {
					if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
						child = parent
						continue
					}
				}
			}
			return false
		case *ast.UnaryExpr, *ast.BinaryExpr, *ast.StarExpr, *ast.TypeAssertExpr:
			return false
		case *ast.RangeStmt:
			return false // iteration is a read
		default:
			return false
		}
	}
	return false
}

// callDischarges decides whether passing the buffer as arg to call
// transfers ownership: Recycle always does, and so does Capture (the
// flight recorder takes the buffer for the post-mortem, so it must
// not go back to the pool); append does for element arguments (not
// for the slice being grown, and not for v... which copies); every
// other call is a borrow.
func callDischarges(info *types.Info, call *ast.CallExpr, arg ast.Node) bool {
	if vmlib.IsProcMethod(info, call, "Recycle", "Capture") {
		return true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
			for i, a := range call.Args {
				if a == arg {
					return i > 0 && call.Ellipsis == 0
				}
			}
		}
	}
	return false
}
