// Package recyclecheck statically enforces the buffer-ownership
// discipline of the simulator's per-processor pools: every buffer a
// function obtains from Proc.GetBuf, Proc.Recv, Proc.Exchange or
// Proc.ExchangeAll must be discharged — recycled back to the pool,
// returned to the caller, or handed off into a longer-lived structure
// — before the function is done with it. A buffer with no discharging
// use at all is a guaranteed pool leak that the runtime allocation
// guards only observe in aggregate, after the fact.
//
// The check is intentionally flow-insensitive: it asks whether a
// discharging use exists anywhere in the function, not whether one
// exists on every path. That keeps it free of false positives on the
// collectives' branch-heavy protocol code, at the cost of missing
// leaks that occur only on some paths. Leaks on panic paths are
// deliberately out of scope — a panic aborts the whole Run and the
// pools are per-run state, so nothing is actually lost.
//
// Discharging uses of a tracked buffer v:
//
//   - p.Recycle(v) — returned to the pool;
//   - p.Capture(v) — handed to the flight recorder, which keeps it
//     for the post-mortem report;
//   - any appearance inside a return statement — ownership passes to
//     the caller;
//   - v (or a reslice v[i:j], which shares the backing array) assigned
//     to another variable, stored into a field, element or composite
//     literal, or appended as an element — ownership moves to the new
//     holder, whose own obligations are that holder's problem;
//   - v passed directly to a call as a fresh expression (f(p.GetBuf(n))
//     — an explicit hand-off);
//   - v passed to a function known to discharge that parameter — a
//     sink. Sinks are summarized per package (any function that
//     recycles, captures, stores or returns one of its slice
//     parameters) and the summary is exported as a package fact, so a
//     caller in another package that hands its buffer to
//     rcout.Consume(p, buf) is credited exactly as a same-package
//     caller would be.
//
// Everything else — indexing, ranging, len/cap, copy, payload
// arguments to Send/Exchange (which copy), combiner arguments — is a
// borrow and leaves the obligation standing.
//
// Missing-Recycle diagnostics carry a suggested fix (inserting
// p.Recycle(buf) after the buffer's last use) when the insertion point
// is unambiguous; vmlint -fix applies it.
package recyclecheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/vmlib"
)

// Analyzer is the recyclecheck entry point.
var Analyzer = &framework.Analyzer{
	Name:      "recyclecheck",
	Doc:       "check that pooled buffers from GetBuf/Recv are recycled, returned, or handed off",
	FactTypes: []framework.Fact{(*Fact)(nil)},
	Run:       run,
}

// Fact is one package's ownership summary: its sink functions — the
// package-level functions that discharge one or more of their slice
// parameters — with the zero-based indices of the discharged
// parameters. Both lists are sorted, so the encoding is deterministic.
type Fact struct {
	Sinks []Sink
}

// A Sink names one parameter-discharging function.
type Sink struct {
	Name   string
	Params []int
}

// AFact marks Fact as a framework fact.
func (*Fact) AFact() {}

// originMethods obtain pool-owned buffers.
var originMethods = []string{"GetBuf", "Recv", "Exchange", "ExchangeAll"}

// sinkSet answers "does passing an argument at this parameter index of
// this function transfer ownership?" for both local functions (by
// object) and imported ones (by package-qualified name, from facts).
type sinkSet struct {
	local    map[*types.Func]map[int]bool
	imported map[string]map[int]bool // "pkgpath:Name" -> param indices
}

func (s *sinkSet) discharges(f *types.Func, param int) bool {
	if f == nil {
		return false
	}
	if ps, ok := s.local[f]; ok && ps[param] {
		return true
	}
	if f.Pkg() != nil {
		if ps, ok := s.imported[f.Pkg().Path()+":"+f.Name()]; ok && ps[param] {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) (any, error) {
	sinks := &sinkSet{
		local:    make(map[*types.Func]map[int]bool),
		imported: make(map[string]map[int]bool),
	}
	for _, pf := range pass.AllPackageFacts() {
		for _, s := range pf.Fact.(*Fact).Sinks {
			ps := make(map[int]bool, len(s.Params))
			for _, i := range s.Params {
				ps[i] = true
			}
			sinks.imported[pf.Path+":"+s.Name] = ps
		}
	}

	var fns []*ast.FuncDecl
	for _, file := range pass.Files {
		if vmlib.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				fns = append(fns, fn)
			}
		}
	}

	// Summarize local sinks to a fixpoint before checking obligations:
	// a helper that forwards its parameter to another sink is itself a
	// sink, and obligations discharged through either must not be
	// reported.
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if summarizeSinks(pass, fn, sinks) {
				changed = true
			}
		}
	}

	// The audit scope gates only the reporting. Sinks are summarized
	// and exported everywhere: a core function that hands its buffer
	// to a helper in an out-of-scope package still deserves the
	// credit, so that package's fact must exist.
	if vmlib.InScope(pass.Pkg.Path(), vmlib.CollectivePath, vmlib.CorePath, vmlib.AppsPath) ||
		vmlib.InTopLevelScope(pass.Pkg.Path()) {
		for _, fn := range fns {
			checkFunc(pass, fn, sinks)
		}
	}

	exportFact(pass, sinks)
	return nil, nil
}

// summarizeSinks records which of fn's slice parameters fn discharges,
// reporting whether that added new information.
func summarizeSinks(pass *framework.Pass, fn *ast.FuncDecl, sinks *sinkSet) bool {
	obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok || fn.Recv != nil {
		return false // method sinks are out of scope: facts name package-level functions
	}
	sig := obj.Type().(*types.Signature)
	paramIndex := make(map[types.Object]int)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if _, isSlice := p.Type().Underlying().(*types.Slice); isSlice {
			paramIndex[p] = i
		}
	}
	if len(paramIndex) == 0 {
		return false
	}
	changed := false
	framework.WalkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		pobj := pass.TypesInfo.Uses[id]
		i, isParam := paramIndex[pobj]
		if !isParam || (sinks.local[obj] != nil && sinks.local[obj][i]) {
			return true
		}
		if discharges(pass.TypesInfo, id, stack, sinks) {
			if sinks.local[obj] == nil {
				sinks.local[obj] = make(map[int]bool)
			}
			sinks.local[obj][i] = true
			changed = true
		}
		return true
	})
	return changed
}

// exportFact publishes the package's sink summary for its importers.
func exportFact(pass *framework.Pass, sinks *sinkSet) {
	var fact Fact
	for f, ps := range sinks.local {
		if !f.Exported() {
			continue // unexported functions are uncallable from importers
		}
		s := Sink{Name: f.Name()}
		for i := range ps {
			s.Params = append(s.Params, i)
		}
		sort.Ints(s.Params)
		fact.Sinks = append(fact.Sinks, s)
	}
	if len(fact.Sinks) == 0 {
		return
	}
	sort.Slice(fact.Sinks, func(i, j int) bool { return fact.Sinks[i].Name < fact.Sinks[j].Name })
	pass.ExportPackageFact(&fact)
}

// obligation is one tracked buffer: the variable bound to an origin
// call, and whether any discharging use was seen.
type obligation struct {
	obj        types.Object
	origin     *ast.CallExpr
	method     string
	discharged bool
}

func checkFunc(pass *framework.Pass, fn *ast.FuncDecl, sinks *sinkSet) {
	info := pass.TypesInfo
	var obls []*obligation

	// Pass 1: find origin calls and classify their immediate context.
	framework.WalkStack(fn, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !vmlib.IsProcMethod(info, call, originMethods...) {
			return true
		}
		method := vmlib.Callee(info, call).Name()
		// Walk up through reslices of the fresh buffer (GetBuf(n)[:0])
		// to the node that gives the call its meaning.
		top := ast.Node(call)
		i := len(stack) - 1
		for ; i >= 0; i-- {
			if se, ok := stack[i].(*ast.SliceExpr); ok && se.X == top {
				top = se
				continue
			}
			if pe, ok := stack[i].(*ast.ParenExpr); ok {
				top = pe
				continue
			}
			break
		}
		if i < 0 {
			return true
		}
		switch parent := stack[i].(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "result of %s is dropped; the buffer can never be recycled", method)
		case *ast.AssignStmt:
			if obj := lhsObject(info, parent, top); obj != nil {
				obls = append(obls, &obligation{obj: obj, origin: call, method: method})
			} else if blankLHS(parent, top) {
				pass.Reportf(call.Pos(), "result of %s is assigned to _; the buffer can never be recycled", method)
			}
			// A non-ident LHS (field, element) is an escaping store:
			// ownership moves into the structure, nothing to track.
		case *ast.ValueSpec:
			for j, v := range parent.Values {
				if v == top && j < len(parent.Names) {
					if obj := info.Defs[parent.Names[j]]; obj != nil && parent.Names[j].Name != "_" {
						obls = append(obls, &obligation{obj: obj, origin: call, method: method})
					}
				}
			}
		}
		// Direct use as a call argument, return value, etc. is an
		// explicit hand-off of the fresh buffer: nothing to track.
		return true
	})
	if len(obls) == 0 {
		return
	}
	byObj := make(map[types.Object][]*obligation, len(obls))
	for _, o := range obls {
		byObj[o.obj] = append(byObj[o.obj], o)
	}

	// Pass 2: scan every use of the tracked variables for a
	// discharging context, remembering the last statement each tracked
	// variable appears in — the insertion point for the Recycle fix.
	lastUse := make(map[types.Object]ast.Stmt)
	framework.WalkStack(fn, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		os, tracked := byObj[obj]
		if !tracked {
			return true
		}
		if st := blockStmtOf(stack); st != nil {
			if prev := lastUse[obj]; prev == nil || st.End() > prev.End() {
				lastUse[obj] = st
			}
		}
		if info.Uses[id] != nil && discharges(info, id, stack, sinks) {
			for _, o := range os {
				o.discharged = true
			}
		}
		return true
	})

	for _, o := range obls {
		if o.discharged {
			continue
		}
		d := framework.Diagnostic{
			Pos: o.origin.Pos(),
			Message: fmt.Sprintf(
				"buffer %q from %s is never recycled, returned, or handed off (pool leak)",
				o.obj.Name(), o.method),
		}
		if fix := recycleFix(pass, o, lastUse[o.obj]); fix != nil {
			d.SuggestedFixes = []framework.SuggestedFix{*fix}
		}
		pass.Report(d)
	}
}

// blockStmtOf returns the outermost statement in stack whose parent is
// a block — the statement a fix can insert after — or nil when the
// identifier is not inside such a statement.
func blockStmtOf(stack []ast.Node) ast.Stmt {
	for i := len(stack) - 1; i > 0; i-- {
		st, ok := stack[i].(ast.Stmt)
		if !ok {
			continue
		}
		if _, ok := stack[i-1].(*ast.BlockStmt); ok {
			return st
		}
	}
	return nil
}

// recycleFix builds the "insert p.Recycle(buf) after the last use"
// fix, or nil when there is no unambiguous insertion point: the last
// use must be a plain statement (inserting after a return, branch or
// defer would be dead or wrong) and the origin must name its receiver
// with a simple expression the fix can repeat.
func recycleFix(pass *framework.Pass, o *obligation, last ast.Stmt) *framework.SuggestedFix {
	if last == nil {
		return nil
	}
	switch last.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt, *ast.DeferStmt:
		return nil
	}
	sel, ok := ast.Unparen(o.origin.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pos := pass.Fset.Position(last.Pos())
	indent := ""
	for i := 1; i < pos.Column; i++ {
		indent += "\t" // gofmt indents with tabs; a fixed file must stay gofmt-clean
	}
	text := "\n" + indent + recv.Name + ".Recycle(" + o.obj.Name() + ")"
	return &framework.SuggestedFix{
		Message:   "recycle the buffer after its last use",
		TextEdits: []framework.TextEdit{{Pos: last.End(), End: token.NoPos, NewText: []byte(text)}},
	}
}

// lhsObject returns the object of the simple identifier on the LHS
// matching rhs in a one-to-one assignment, for both := and =.
func lhsObject(info *types.Info, as *ast.AssignStmt, rhs ast.Node) types.Object {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	for i, r := range as.Rhs {
		if r != rhs {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	return nil
}

// blankLHS reports whether rhs is assigned to the blank identifier.
func blankLHS(as *ast.AssignStmt, rhs ast.Node) bool {
	if len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for i, r := range as.Rhs {
		if r == rhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			return ok && id.Name == "_"
		}
	}
	return false
}

// discharges reports whether this use of a tracked buffer transfers
// ownership. stack is the chain of enclosing nodes, outermost first.
func discharges(info *types.Info, id *ast.Ident, stack []ast.Node, sinks *sinkSet) bool {
	// Walk outwards from the identifier through ownership-transparent
	// wrappers (reslices and parens keep the same backing array).
	child := ast.Node(id)
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			child = parent
			continue
		case *ast.SliceExpr:
			if parent.X == child {
				child = parent
				continue
			}
			return false // an index bound like buf[:n] — a read
		case *ast.ReturnStmt:
			return true
		case *ast.CallExpr:
			return callDischarges(info, parent, child, sinks)
		case *ast.AssignStmt:
			// Discharge only when the (possibly resliced) buffer itself
			// is a RHS value; appearing on the LHS or inside an index
			// computation is not a transfer.
			for _, r := range parent.Rhs {
				if r == child {
					return true
				}
			}
			return false
		case *ast.KeyValueExpr:
			if parent.Value != child {
				return false
			}
			child = parent
			continue
		case *ast.CompositeLit:
			// The buffer is stored into a literal; ownership escapes
			// with the literal regardless of where it flows next.
			return true
		case *ast.SendStmt:
			return parent.Value == child
		case *ast.IndexExpr:
			// Indexing a slice-of-slices (the ExchangeAll result)
			// extracts an owned buffer: the element use decides.
			// Indexing a flat buffer is an element read, and a use as
			// the index is a read of something else entirely.
			if parent.X == child {
				if tv, ok := info.Types[parent]; ok {
					if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
						child = parent
						continue
					}
				}
			}
			return false
		case *ast.UnaryExpr, *ast.BinaryExpr, *ast.StarExpr, *ast.TypeAssertExpr:
			return false
		case *ast.RangeStmt:
			return false // iteration is a read
		default:
			return false
		}
	}
	return false
}

// callDischarges decides whether passing the buffer as arg to call
// transfers ownership: Recycle always does, and so does Capture (the
// flight recorder takes the buffer for the post-mortem, so it must
// not go back to the pool); append does for element arguments (not
// for the slice being grown, and not for v... which copies); a call
// to a summarized sink does for the discharged parameter positions;
// every other call is a borrow.
func callDischarges(info *types.Info, call *ast.CallExpr, arg ast.Node, sinks *sinkSet) bool {
	if vmlib.IsProcMethod(info, call, "Recycle", "Capture") {
		return true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
			for i, a := range call.Args {
				if a == arg {
					return i > 0 && call.Ellipsis == 0
				}
			}
		}
	}
	if f := vmlib.Callee(info, call); f != nil && call.Ellipsis == 0 {
		for i, a := range call.Args {
			if a == arg && sinks.discharges(f, i) {
				return true
			}
		}
	}
	return false
}
