package recyclecheck_test

import (
	"path/filepath"
	"testing"

	"vmprim/internal/analysis/analysistest"
	"vmprim/internal/analysis/recyclecheck"
)

func TestRecycleCheck(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), recyclecheck.Analyzer,
		"vmprim/internal/apps/rc",
		// Outside the audit scope: the same leak, zero findings.
		"vmprim/internal/other/rcout",
	)
}
