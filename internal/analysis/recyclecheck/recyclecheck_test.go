package recyclecheck_test

import (
	"path/filepath"
	"testing"

	"vmprim/internal/analysis/analysistest"
	"vmprim/internal/analysis/recyclecheck"
)

func TestRecycleCheck(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), recyclecheck.Analyzer,
		"vmprim/internal/apps/rc",
		// Outside the audit scope: the same leak, zero findings.
		"vmprim/internal/other/rcout",
	)
}

// TestSinkFacts: handing a buffer to another package's sink function
// discharges the obligation only because the sink summary crosses the
// package boundary as a fact (including through a chain of sinks);
// borrowing through a non-sink stays a leak.
func TestSinkFacts(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), recyclecheck.Analyzer,
		"vmprim/internal/apps/rcfacts")
}

// TestSuggestedFixes validates the missing-Recycle insertion against
// the .golden file and proves applying it twice changes nothing.
func TestSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, filepath.Join("..", "testdata"), recyclecheck.Analyzer,
		"vmprim/internal/apps/rcfix")
}
