// Package analysistest runs a vmlint analyzer over fixture packages
// and compares its diagnostics against expectations written in the
// fixture sources, mirroring golang.org/x/tools/go/analysis/analysistest
// closely enough that a future migration is mechanical.
//
// Fixtures live in a GOPATH-shaped tree:
//
//	testdata/src/<import/path>/*.go
//
// so a stub package can be declared under the exact import path the
// analyzers match against (vmprim/internal/hypercube and friends) —
// name-and-path matching in vmlib is what makes the same analyzer
// logic work on the real tree and on the stubs.
//
// An expected diagnostic is a trailing comment on the offending line:
//
//	buf := p.GetBuf(8) // want `never recycled`
//
// with one or more quoted or backquoted regular expressions matched
// against the diagnostic message. Every diagnostic must be wanted and
// every want must be matched; anything else fails the test.
//
// Fixture imports of other fixture packages are type-checked from
// source, recursively; imports with no fixture directory (time,
// math/rand) fall back to the compiler's export data via `go list
// -export`, so fixtures may use the standard library freely without
// the test shipping stubs for it. Imported fixture packages are also
// analyzed, facts-only, so cross-package facts flow as they do under
// the real drivers.
//
// RunWithSuggestedFixes additionally applies the findings' suggested
// fixes and compares each changed file against its <file>.golden
// sibling, then re-analyzes the fixed tree to prove the fixes are
// complete and idempotent.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"vmprim/internal/analysis/framework"
)

// Run applies a to each fixture package (by import path, rooted at
// testdata/src) and reports every mismatch between the diagnostics
// and the fixtures' // want expectations as a test error.
//
// Fixture packages the target imports are analyzed too, facts-only —
// their diagnostics are discarded but their package facts flow to the
// target, mirroring what `vmlint ./...` and the vet driver do. A
// cross-package expectation (a taint source in one fixture package, a
// want comment in its importer) therefore tests the fact path.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, path := range pkgpaths {
		res, l := analyze(t, testdata, a, path, true)
		checkExpectations(t, l.fset, l.pkgs[path], res.Findings)
	}
}

// Findings runs a over one fixture package and returns the raw
// findings, ignoring want comments. withFacts controls whether the
// target's fixture dependencies are analyzed for their facts first;
// a test asserts cross-package detection by comparing the two modes.
func Findings(t *testing.T, testdata string, a *framework.Analyzer, path string, withFacts bool) []framework.Finding {
	t.Helper()
	res, _ := analyze(t, testdata, a, path, withFacts)
	return res.Findings
}

// Result runs a over one fixture package and returns the complete
// run result — findings plus the suppression audit — together with
// the FileSet positioning them, for tests that assert on suppressions
// or drive framework.ApplyFixes themselves. withFacts is as in
// Findings.
func Result(t *testing.T, testdata string, a *framework.Analyzer, path string, withFacts bool) (*framework.RunResult, *token.FileSet) {
	t.Helper()
	res, l := analyze(t, testdata, a, path, withFacts)
	return res, l.fset
}

// RunWithSuggestedFixes is Run plus fix validation: the fixes carried
// by the findings are applied, each changed file must match its
// checked-in <file>.golden sibling, and re-analyzing the fixed tree
// must produce no further fixable findings (fix application is
// complete and idempotent).
func RunWithSuggestedFixes(t *testing.T, testdata string, a *framework.Analyzer, pkgpaths ...string) {
	t.Helper()
	Run(t, testdata, a, pkgpaths...)
	for _, path := range pkgpaths {
		res, l := analyze(t, testdata, a, path, true)
		fixed, err := framework.ApplyFixes(l.fset, res.Findings)
		if err != nil {
			t.Fatalf("applying fixes for %s: %v", path, err)
		}
		for file, got := range fixed {
			want, err := os.ReadFile(file + ".golden")
			if err != nil {
				t.Errorf("%s: fixes were applied but no .golden file exists: %v", file, err)
				continue
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: fixed output differs from %s.golden:\n%s",
					file, filepath.Base(file), framework.Diff(file, want, got))
			}
		}
		if len(fixed) > 0 {
			checkIdempotent(t, testdata, a, path, fixed)
		}
	}
}

// checkIdempotent re-analyzes the fixture tree with the fixed files
// swapped in and fails if any finding still carries a fix: applying
// fixes twice must be the same as applying them once.
func checkIdempotent(t *testing.T, testdata string, a *framework.Analyzer, path string, fixed map[string][]byte) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	tmp := t.TempDir()
	tmpSrc := filepath.Join(tmp, "src")
	if err := copyTree(src, tmpSrc); err != nil {
		t.Fatalf("copying fixtures: %v", err)
	}
	for file, content := range fixed {
		rel, err := filepath.Rel(src, file)
		if err != nil {
			t.Fatalf("fixed file %s outside testdata: %v", file, err)
		}
		if err := os.WriteFile(filepath.Join(tmpSrc, rel), content, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	res, _ := analyze(t, tmp, a, path, true)
	for _, f := range res.Findings {
		if len(f.Fixes) > 0 {
			t.Errorf("after applying fixes, %s still offers a fix (fix application is not idempotent)", f)
		}
	}
}

// copyTree copies a fixture directory recursively.
func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}

// analyze loads path (plus, optionally, its fixture dependencies as
// facts-only packages) into one runner invocation and returns the
// result with the loader.
func analyze(t *testing.T, testdata string, a *framework.Analyzer, path string, withFacts bool) (*framework.RunResult, *loader) {
	t.Helper()
	l := newLoader(testdata)
	target, err := l.load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	pkgs := []*framework.Package{target}
	if withFacts {
		// The loader cache now holds every fixture package the target
		// (transitively) imports; analyze them facts-only, exactly as
		// the standalone driver treats in-module dependencies.
		var deps []string
		for p := range l.pkgs {
			if p != path {
				deps = append(deps, p)
			}
		}
		sort.Strings(deps)
		for _, p := range deps {
			dep := l.pkgs[p]
			dep.FactsOnly = true
			pkgs = append(pkgs, dep)
		}
	}
	res, err := framework.Run(pkgs, []*framework.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, path, err)
	}
	return res, l
}

// expectation is one parsed // want regexp.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// checkExpectations matches findings against the fixture's // want
// comments: same file, same line, message matching the pattern.
func checkExpectations(t *testing.T, fset *token.FileSet, pkg *framework.Package, findings []framework.Finding) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(t, fset, c)...)
			}
		}
	}
	for _, fd := range findings {
		matched := false
		for _, w := range wants {
			if !w.used && w.file == fd.Pos.Filename && w.line == fd.Pos.Line && w.re.MatchString(fd.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", fd)
		}
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].line < wants[j].line })
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// parseWants extracts the expectations from one comment, which holds
// zero or more quoted or backquoted patterns after the marker:
//
//	// want `regexp` "another"
func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment) []*expectation {
	t.Helper()
	const marker = "// want "
	if !strings.HasPrefix(c.Text, marker) {
		return nil
	}
	pos := fset.Position(c.Pos())
	rest := strings.TrimPrefix(c.Text, marker)
	var wants []*expectation
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s:%d: malformed want pattern %q", pos.Filename, pos.Line, rest)
		}
		lit, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s:%d: malformed want pattern %q: %v", pos.Filename, pos.Line, q, err)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, lit, err)
		}
		wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
		rest = rest[len(q):]
	}
	return wants
}

// loader type-checks fixture packages from source, resolving fixture
// imports recursively and everything else from export data.
type loader struct {
	root       string // testdata/src
	fset       *token.FileSet
	pkgs       map[string]*framework.Package
	std        types.Importer
	stdExports map[string]string // import path -> export data file
	listed     map[string]bool   // go list already attempted
}

func newLoader(testdata string) *loader {
	l := &loader{
		root:       filepath.Join(testdata, "src"),
		fset:       token.NewFileSet(),
		pkgs:       make(map[string]*framework.Package),
		stdExports: make(map[string]string),
		listed:     make(map[string]bool),
	}
	l.std = importer.ForCompiler(l.fset, "gc", l.lookupExport)
	return l
}

// Import implements types.Importer over the two source kinds.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, filepath.FromSlash(path)); dirExists(dir) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if len(p.TypeErrors) > 0 {
			return nil, fmt.Errorf("fixture %s has type errors (first: %v)", path, p.TypeErrors[0])
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one fixture package.
func (l *loader) load(path string) (*framework.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	p := &framework.Package{PkgPath: path, Dir: dir, Fset: l.fset, Info: framework.NewInfo()}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
	}
	if len(p.Files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.Types, _ = conf.Check(path, l.fset, p.Files, p.Info)
	l.pkgs[path] = p
	return p, nil
}

// lookupExport resolves export data for non-fixture imports, listing
// each root package (with its dependency closure) at most once.
func (l *loader) lookupExport(path string) (io.ReadCloser, error) {
	if f, ok := l.stdExports[path]; ok {
		return os.Open(f)
	}
	if !l.listed[path] {
		l.listed[path] = true
		out, err := exec.Command("go", "list", "-e", "-export", "-deps", "-json=ImportPath,Export", path).Output()
		if err == nil {
			dec := json.NewDecoder(bytes.NewReader(out))
			for {
				var lp struct{ ImportPath, Export string }
				if err := dec.Decode(&lp); err != nil {
					break
				}
				if lp.Export != "" {
					l.stdExports[lp.ImportPath] = lp.Export
				}
			}
		}
	}
	if f, ok := l.stdExports[path]; ok {
		return os.Open(f)
	}
	return nil, fmt.Errorf("no export data for %q", path)
}

func dirExists(dir string) bool {
	fi, err := os.Stat(dir)
	return err == nil && fi.IsDir()
}
