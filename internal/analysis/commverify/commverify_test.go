package commverify

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"vmprim/internal/analysis/analysistest"
)

func TestCommverify(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), Analyzer, "vmprim/internal/apps/cv")
}

// TestCrossPackageFacts proves the RelaySkew finding rides on the
// xrelay protocol facts: with the dependency analyzed the tag
// mismatch is found, without it the scope is unverifiable and the
// checker stays silent rather than guessing.
func TestCrossPackageFacts(t *testing.T) {
	testdata := filepath.Join("..", "testdata")
	count := func(withFacts bool) int {
		n := 0
		for _, f := range analysistest.Findings(t, testdata, Analyzer, "vmprim/internal/apps/cv", withFacts) {
			if strings.Contains(f.Message, "carries tag 4") {
				n++
			}
		}
		return n
	}
	if got := count(true); got != 1 {
		t.Errorf("with facts: got %d RelaySkew findings, want 1", got)
	}
	if got := count(false); got != 0 {
		t.Errorf("without facts: got %d RelaySkew findings, want 0 (unverifiable scopes must stay silent)", got)
	}
}

// TestProtocolRoundTrip pins the fact wire format: marshal → parse →
// marshal must be the identity on a protocol exercising every IR
// construct.
func TestProtocolRoundTrip(t *testing.T) {
	inner := &protocol{
		params: []string{"$1"},
		body: []stmt{
			&opStmt{kind: opSend, dim: constE(0), tag: varE("$1")},
			&retStmt{},
		},
	}
	inner.comm, inner.p2p = scan(inner.body)
	p := &protocol{
		body: []stmt{
			&ifStmt{
				cond: binE(token.EQL, binE(token.AND, &expr{kind: eID}, constE(1)), constE(0)),
				then: []stmt{&opStmt{kind: opExchange, dim: constE(0), tag: constE(7)}},
				els:  []stmt{&opStmt{kind: opRecv, dim: constE(0), tag: unE(token.SUB, constE(7))}},
			},
			&forStmt{v: "v1", from: constE(0), to: &expr{kind: eDim}, incl: false, body: []stmt{
				&opStmt{kind: opExchangeAll, dims: []*expr{varE("v1")}, tag: constE(3)},
			}},
			&opStmt{kind: opColl, name: "Bcast", mask: constE(3), tag: constE(4), root: constE(0)},
			&callStmt{callee: inner, args: []*expr{constE(9)}},
		},
	}
	p.comm, p.p2p = scan(p.body)

	once := marshalProtocol(p)
	parsed, err := parseProtocol(once, 0)
	if err != nil {
		t.Fatalf("parsing %q: %v", once, err)
	}
	twice := marshalProtocol(parsed)
	if once != twice {
		t.Errorf("round trip not stable:\n once: %s\ntwice: %s", once, twice)
	}
	if !parsed.comm || !parsed.p2p {
		t.Errorf("parsed protocol lost its comm/p2p summary: comm=%v p2p=%v", parsed.comm, parsed.p2p)
	}
}
