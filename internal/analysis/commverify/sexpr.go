package commverify

import (
	"fmt"
	"go/token"
	"strconv"
	"strings"
)

// Protocol summaries cross package boundaries as S-expressions inside
// the commverify package fact. The format is closed: callees are
// embedded inline at marshal time (recursive protocols are opaque
// long before this point), so a parsed protocol never references
// another fact. All positions in a parsed protocol are the importing
// call site's — a diagnostic against an imported summary points at
// the call, which is the line the importing package controls.

// marshalProtocol renders p in the fact wire format.
func marshalProtocol(p *protocol) string {
	var b strings.Builder
	b.WriteString("(proto (params")
	for _, v := range p.params {
		b.WriteByte(' ')
		b.WriteString(v)
	}
	b.WriteByte(')')
	marshalStmts(&b, p.body)
	b.WriteByte(')')
	return b.String()
}

func marshalStmts(b *strings.Builder, body []stmt) {
	for _, s := range body {
		b.WriteByte(' ')
		marshalStmt(b, s)
	}
}

func marshalStmt(b *strings.Builder, s stmt) {
	switch s := s.(type) {
	case *opStmt:
		switch s.kind {
		case opSend, opRecv, opExchange:
			fmt.Fprintf(b, "(%s ", map[opKind]string{opSend: "send", opRecv: "recv", opExchange: "exch"}[s.kind])
			marshalExpr(b, s.dim)
			b.WriteByte(' ')
			marshalExpr(b, s.tag)
			b.WriteByte(')')
		case opExchangeAll:
			b.WriteString("(exall (dims")
			for _, d := range s.dims {
				b.WriteByte(' ')
				marshalExpr(b, d)
			}
			b.WriteString(") ")
			marshalExpr(b, s.tag)
			b.WriteByte(')')
		case opColl:
			fmt.Fprintf(b, "(coll %s ", s.name)
			marshalExpr(b, s.mask)
			b.WriteByte(' ')
			marshalExpr(b, s.tag)
			b.WriteByte(' ')
			marshalExpr(b, s.root)
			b.WriteByte(')')
		}
	case *ifStmt:
		b.WriteString("(if ")
		marshalExpr(b, s.cond)
		b.WriteString(" (")
		marshalStmts(b, s.then)
		b.WriteString(") (")
		marshalStmts(b, s.els)
		b.WriteString("))")
	case *forStmt:
		fmt.Fprintf(b, "(for %s ", s.v)
		marshalExpr(b, s.from)
		b.WriteByte(' ')
		marshalExpr(b, s.to)
		incl := "0"
		if s.incl {
			incl = "1"
		}
		b.WriteString(" " + incl + " (")
		marshalStmts(b, s.body)
		b.WriteString("))")
	case *retStmt:
		b.WriteString("(ret)")
	case *callStmt:
		b.WriteString("(call ")
		b.WriteString(marshalProtocol(s.callee))
		for _, a := range s.args {
			b.WriteByte(' ')
			marshalExpr(b, a)
		}
		b.WriteByte(')')
	}
}

func marshalExpr(b *strings.Builder, e *expr) {
	switch e.kind {
	case eConst:
		b.WriteString(strconv.FormatInt(e.val, 10))
	case eID:
		b.WriteString("id")
	case eDim:
		b.WriteString("dim")
	case eVar:
		b.WriteString(e.name)
	case eUnary:
		fmt.Fprintf(b, "(u%s ", e.tok.String())
		marshalExpr(b, e.x)
		b.WriteByte(')')
	case eBinary:
		fmt.Fprintf(b, "(%s ", e.tok.String())
		marshalExpr(b, e.x)
		b.WriteByte(' ')
		marshalExpr(b, e.y)
		b.WriteByte(')')
	}
}

// ---- parsing ----

// sexpr is the generic parse tree: either an atom or a list.
type sexpr struct {
	atom string
	list []*sexpr
}

func parseSexpr(s string) (*sexpr, error) {
	toks := tokenize(s)
	node, rest, err := parseNode(toks)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("trailing tokens")
	}
	return node, nil
}

func tokenize(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		switch c := s[i]; {
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == ' ':
			i++
		default:
			j := i
			for j < len(s) && s[j] != '(' && s[j] != ')' && s[j] != ' ' {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

func parseNode(toks []string) (*sexpr, []string, error) {
	if len(toks) == 0 {
		return nil, nil, fmt.Errorf("unexpected end")
	}
	if toks[0] != "(" {
		if toks[0] == ")" {
			return nil, nil, fmt.Errorf("unexpected )")
		}
		return &sexpr{atom: toks[0]}, toks[1:], nil
	}
	toks = toks[1:]
	node := &sexpr{list: []*sexpr{}}
	for {
		if len(toks) == 0 {
			return nil, nil, fmt.Errorf("unclosed list")
		}
		if toks[0] == ")" {
			return node, toks[1:], nil
		}
		child, rest, err := parseNode(toks)
		if err != nil {
			return nil, nil, err
		}
		node.list = append(node.list, child)
		toks = rest
	}
}

func (n *sexpr) isList(head string) bool {
	return n.list != nil && len(n.list) > 0 && n.list[0].atom == head
}

// parseProtocol decodes a fact summary, stamping every operation with
// pos (the importing call site).
func parseProtocol(src string, pos token.Pos) (*protocol, error) {
	root, err := parseSexpr(src)
	if err != nil {
		return nil, err
	}
	return protocolFromSexpr(root, pos)
}

func protocolFromSexpr(root *sexpr, pos token.Pos) (*protocol, error) {
	if !root.isList("proto") || len(root.list) < 2 || !root.list[1].isList("params") {
		return nil, fmt.Errorf("not a proto")
	}
	p := &protocol{}
	for _, v := range root.list[1].list[1:] {
		if v.atom == "" {
			return nil, fmt.Errorf("bad param")
		}
		p.params = append(p.params, v.atom)
	}
	body, err := stmtsFromSexpr(root.list[2:], pos)
	if err != nil {
		return nil, err
	}
	p.body = body
	p.comm, p.p2p = scan(body)
	return p, nil
}

func stmtsFromSexpr(nodes []*sexpr, pos token.Pos) ([]stmt, error) {
	var out []stmt
	for _, n := range nodes {
		s, err := stmtFromSexpr(n, pos)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func stmtFromSexpr(n *sexpr, pos token.Pos) (stmt, error) {
	if n.list == nil || len(n.list) == 0 {
		return nil, fmt.Errorf("atom in statement position")
	}
	bad := fmt.Errorf("malformed %q statement", n.list[0].atom)
	switch n.list[0].atom {
	case "send", "recv", "exch":
		if len(n.list) != 3 {
			return nil, bad
		}
		dim, err1 := exprFromSexpr(n.list[1])
		tag, err2 := exprFromSexpr(n.list[2])
		if err1 != nil || err2 != nil {
			return nil, bad
		}
		kind := map[string]opKind{"send": opSend, "recv": opRecv, "exch": opExchange}[n.list[0].atom]
		return &opStmt{kind: kind, pos: pos, dim: dim, tag: tag}, nil
	case "exall":
		if len(n.list) != 3 || !n.list[1].isList("dims") {
			return nil, bad
		}
		op := &opStmt{kind: opExchangeAll, pos: pos}
		for _, d := range n.list[1].list[1:] {
			e, err := exprFromSexpr(d)
			if err != nil {
				return nil, bad
			}
			op.dims = append(op.dims, e)
		}
		var err error
		if op.tag, err = exprFromSexpr(n.list[2]); err != nil {
			return nil, bad
		}
		return op, nil
	case "coll":
		if len(n.list) != 5 || n.list[1].atom == "" {
			return nil, bad
		}
		op := &opStmt{kind: opColl, name: n.list[1].atom, pos: pos}
		var e1, e2, e3 error
		op.mask, e1 = exprFromSexpr(n.list[2])
		op.tag, e2 = exprFromSexpr(n.list[3])
		op.root, e3 = exprFromSexpr(n.list[4])
		if e1 != nil || e2 != nil || e3 != nil {
			return nil, bad
		}
		return op, nil
	case "if":
		if len(n.list) != 4 || n.list[2].list == nil || n.list[3].list == nil {
			return nil, bad
		}
		cond, err := exprFromSexpr(n.list[1])
		if err != nil {
			return nil, bad
		}
		then, err := stmtsFromSexpr(n.list[2].list, pos)
		if err != nil {
			return nil, err
		}
		els, err := stmtsFromSexpr(n.list[3].list, pos)
		if err != nil {
			return nil, err
		}
		return &ifStmt{cond: cond, then: then, els: els}, nil
	case "for":
		if len(n.list) != 6 || n.list[1].atom == "" || n.list[5].list == nil {
			return nil, bad
		}
		from, err1 := exprFromSexpr(n.list[2])
		to, err2 := exprFromSexpr(n.list[3])
		if err1 != nil || err2 != nil || (n.list[4].atom != "0" && n.list[4].atom != "1") {
			return nil, bad
		}
		body, err := stmtsFromSexpr(n.list[5].list, pos)
		if err != nil {
			return nil, err
		}
		return &forStmt{v: n.list[1].atom, from: from, to: to, incl: n.list[4].atom == "1", body: body}, nil
	case "ret":
		return &retStmt{}, nil
	case "call":
		if len(n.list) < 2 {
			return nil, bad
		}
		callee, err := protocolFromSexpr(n.list[1], pos)
		if err != nil {
			return nil, err
		}
		cs := &callStmt{pos: pos, callee: callee}
		for _, a := range n.list[2:] {
			e, err := exprFromSexpr(a)
			if err != nil {
				return nil, bad
			}
			cs.args = append(cs.args, e)
		}
		if len(cs.args) != len(callee.params) {
			return nil, bad
		}
		return cs, nil
	}
	return nil, bad
}

func exprFromSexpr(n *sexpr) (*expr, error) {
	if n.list == nil {
		switch {
		case n.atom == "id":
			return &expr{kind: eID}, nil
		case n.atom == "dim":
			return &expr{kind: eDim}, nil
		case n.atom == "":
			return nil, fmt.Errorf("empty atom")
		default:
			if v, err := strconv.ParseInt(n.atom, 10, 64); err == nil {
				return constE(v), nil
			}
			return varE(n.atom), nil
		}
	}
	if len(n.list) == 0 || n.list[0].list != nil {
		return nil, fmt.Errorf("malformed expression")
	}
	head := n.list[0].atom
	if strings.HasPrefix(head, "u") && len(n.list) == 2 {
		tok, ok := tokenOf(head[1:])
		if !ok {
			return nil, fmt.Errorf("bad unary op %q", head)
		}
		x, err := exprFromSexpr(n.list[1])
		if err != nil {
			return nil, err
		}
		return unE(tok, x), nil
	}
	if len(n.list) == 3 {
		tok, ok := tokenOf(head)
		if !ok {
			return nil, fmt.Errorf("bad binary op %q", head)
		}
		x, err1 := exprFromSexpr(n.list[1])
		y, err2 := exprFromSexpr(n.list[2])
		if err1 != nil {
			return nil, err1
		}
		if err2 != nil {
			return nil, err2
		}
		return binE(tok, x, y), nil
	}
	return nil, fmt.Errorf("malformed expression")
}

// exprTokens are the operator tokens the IR admits, keyed by their
// source rendering.
var exprTokens = map[string]token.Token{
	"+": token.ADD, "-": token.SUB, "*": token.MUL, "/": token.QUO, "%": token.REM,
	"&": token.AND, "|": token.OR, "^": token.XOR, "&^": token.AND_NOT,
	"<<": token.SHL, ">>": token.SHR,
	"==": token.EQL, "!=": token.NEQ, "<": token.LSS, "<=": token.LEQ,
	">": token.GTR, ">=": token.GEQ, "&&": token.LAND, "||": token.LOR,
	"!": token.NOT,
}

func tokenOf(s string) (token.Token, bool) {
	t, ok := exprTokens[s]
	return t, ok
}
