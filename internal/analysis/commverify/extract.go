package commverify

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"vmprim/internal/analysis/collectives"
	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/vmlib"
)

// Extraction: lower one SPMD scope (a function declaration or
// function literal) to the protocol IR. The lowering is deliberately
// partial — anything it cannot model exactly makes the scope
// unverifiable, and unverifiable scopes are skipped silently. That is
// the analyzer's soundness boundary: commverify only speaks about
// protocols it can concretize, and never guesses.

// p2pMethods are the point-to-point Proc operations the checker
// models as queue operations.
var p2pMethods = []string{"Send", "Recv", "Exchange", "ExchangeAll"}

// pureProcMethods are the Proc methods that neither communicate nor
// block: identity/geometry reads, buffer-pool traffic, cost charging,
// and the profiler/flight-recorder surface (spans, conformance
// predictions, critical-path capture). They are invisible to the
// protocol.
var pureProcMethods = map[string]bool{
	"ID": true, "Dim": true, "P": true, "FullMask": true, "Neighbor": true,
	"GetBuf": true, "Recycle": true, "Capture": true, "Compute": true,
	"AdvanceTo": true, "Clock": true, "Params": true, "Profiling": true,
	"BeginSpan": true, "EndSpan": true, "SpanNote": true, "SpanPredict": true,
	"NoteCollective": true, "RouteCharge": true, "RoutePhaseCharge": true,
}

// pureEnvMethods are the core.Env methods with the same status (the
// span/conformance forwarding surface plus the local accessors vmlib
// already exempts from the collective contract).
var pureEnvMethods = map[string]bool{
	"BeginSpan": true, "EndSpan": true, "SpanNote": true, "SpanPredict": true,
	"NextTag": true, "NextTag2": true, "Profiling": true,
	"GridRow": true, "GridCol": true,
}

// exemptPaths are the simulator internals beneath the protocol
// abstraction: rank-asymmetric by design, never summarized, and —
// collective entry points aside — pure from a caller's point of view.
var exemptPaths = []string{
	vmlib.HypercubePath, vmlib.CollectivePath, vmlib.RouterPath, vmlib.GrayPath,
}

// errUnverifiable aborts extraction of one scope: it communicates,
// but not in a form the IR can express.
var errUnverifiable = fmt.Errorf("protocol not extractable")

// protoEntry is the memoized summary of one local function.
type protoEntry struct {
	proto  *protocol // non-nil when the body lowered cleanly
	opaque bool      // communicates, but is not summarizable
}

// extractor carries the per-package lowering state.
type extractor struct {
	pass    *framework.Pass
	summary *collectives.Result
	bodies  map[*types.Func]*ast.FuncDecl
	protos  map[*types.Func]*protoEntry
	inwork  map[*types.Func]bool
	facts   map[string]*Fact // package path → imported commverify fact
	nvar    int              // fresh-name counter for loop variables
}

func newExtractor(pass *framework.Pass, summary *collectives.Result) *extractor {
	x := &extractor{
		pass:    pass,
		summary: summary,
		bodies:  make(map[*types.Func]*ast.FuncDecl),
		protos:  make(map[*types.Func]*protoEntry),
		inwork:  make(map[*types.Func]bool),
		facts:   make(map[string]*Fact),
	}
	for _, file := range pass.Files {
		if vmlib.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil && fn.Recv == nil {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					x.bodies[obj] = fn
				}
			}
		}
	}
	for _, pf := range pass.AllPackageFacts() {
		if f, ok := pf.Fact.(*Fact); ok {
			x.facts[pf.Path] = f
		}
	}
	return x
}

// env maps in-scope integer variables to their symbolic values.
// poisoned marks values the extractor lost track of.
type env map[types.Object]*expr

func (ev env) clone() env {
	out := make(env, len(ev))
	for k, v := range ev {
		out[k] = v
	}
	return out
}

// protocolOf summarizes a local function (memoized): its protocol if
// the body lowers cleanly, opaque if it communicates but does not,
// and a nil-protocol non-opaque entry when it performs no modeled
// communication at all.
func (x *extractor) protocolOf(f *types.Func) *protoEntry {
	if e, ok := x.protos[f]; ok {
		return e
	}
	decl, ok := x.bodies[f]
	if !ok || x.inwork[f] {
		// No body here (imported, or a method), or a recursive cycle:
		// unsummarizable, so opaque iff it may communicate.
		e := &protoEntry{opaque: decl == nil || x.mayComm(decl.Body)}
		if !ok {
			e.opaque = true
		}
		return e
	}
	x.inwork[f] = true
	proto, err := x.extractFunc(decl.Type, decl.Body)
	delete(x.inwork, f)
	e := &protoEntry{}
	switch {
	case err == nil && proto.comm:
		e.proto = proto
	case err == nil:
		// Lowered cleanly but communicates nothing: pure.
	default:
		e.opaque = x.mayComm(decl.Body)
	}
	x.protos[f] = e
	return e
}

// extractFunc lowers one function-shaped scope: integer parameters
// become protocol parameters, everything else starts unknown.
func (x *extractor) extractFunc(ft *ast.FuncType, body *ast.BlockStmt) (*protocol, error) {
	ev := make(env)
	proto := &protocol{}
	argIdx := 0
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				obj := x.pass.TypesInfo.Defs[name]
				if obj != nil && isIntType(obj.Type()) {
					v := paramName(argIdx)
					ev[obj] = varE(v)
					proto.params = append(proto.params, v)
				}
				argIdx++
			}
			if len(field.Names) == 0 {
				argIdx++
			}
		}
	}
	stmts, err := x.extractStmts(body.List, ev)
	if err != nil {
		return nil, err
	}
	proto.body = stmts
	proto.comm, proto.p2p = scan(stmts)
	return proto, nil
}

func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// ---- expressions ----

// exprOf lowers e to the IR, or returns nil when it cannot.
func (x *extractor) exprOf(e ast.Expr, ev env) *expr {
	if tv, ok := x.pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		switch tv.Value.Kind() {
		case constant.Int:
			if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
				return constE(v)
			}
		case constant.Bool:
			if constant.BoolVal(tv.Value) {
				return constE(1)
			}
			return constE(0)
		}
		return nil
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := ev[x.pass.TypesInfo.Uses[e]]; ok && v != poisoned {
			return v
		}
		return nil
	case *ast.CallExpr:
		return x.callExprOf(e, ev)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.SUB, token.XOR, token.NOT, token.ADD:
			v := x.exprOf(e.X, ev)
			if v == nil {
				return nil
			}
			if e.Op == token.ADD {
				return v
			}
			return unE(e.Op, v)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.AND, token.OR, token.XOR, token.AND_NOT, token.SHL, token.SHR,
			token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			a := x.exprOf(e.X, ev)
			b := x.exprOf(e.Y, ev)
			if a == nil || b == nil {
				return nil
			}
			return binE(e.Op, a, b)
		}
	}
	return nil
}

// callExprOf lowers the calls that may appear inside expressions:
// identity/geometry reads on the Proc, and integer conversions.
func (x *extractor) callExprOf(call *ast.CallExpr, ev env) *expr {
	if tv, ok := x.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isIntType(tv.Type) {
			return x.exprOf(call.Args[0], ev)
		}
		return nil
	}
	info := x.pass.TypesInfo
	switch {
	case vmlib.IsProcMethod(info, call, "ID"):
		return &expr{kind: eID}
	case vmlib.IsProcMethod(info, call, "Dim"):
		return &expr{kind: eDim}
	case vmlib.IsProcMethod(info, call, "P"):
		return binE(token.SHL, constE(1), &expr{kind: eDim})
	case vmlib.IsProcMethod(info, call, "FullMask"):
		return binE(token.SUB, binE(token.SHL, constE(1), &expr{kind: eDim}), constE(1))
	case vmlib.IsProcMethod(info, call, "Neighbor"):
		if len(call.Args) == 1 {
			if a := x.exprOf(call.Args[0], ev); a != nil {
				return binE(token.XOR, &expr{kind: eID}, binE(token.SHL, constE(1), a))
			}
		}
	}
	return nil
}

// ---- communication classification ----

// isPureCall reports whether call is known not to communicate or
// block: pure Proc/Env methods, builtins, conversions, and calls into
// packages that cannot reach the simulator.
func (x *extractor) isPureCall(call *ast.CallExpr) bool {
	if tv, ok := x.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return true // conversion
	}
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := x.pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			return true
		}
	}
	f := vmlib.Callee(x.pass.TypesInfo, call)
	if f == nil {
		return false
	}
	if vmlib.IsMethod(f, vmlib.HypercubePath, "Proc", f.Name()) {
		return pureProcMethods[f.Name()]
	}
	if vmlib.IsMethod(f, vmlib.CorePath, "Env", f.Name()) && pureEnvMethods[f.Name()] {
		return true
	}
	if pkg := f.Pkg(); pkg == nil || !inModule(pkg.Path()) {
		return true // stdlib (or builtin-ish): cannot touch the simulator
	}
	return false
}

func inModule(path string) bool {
	return path == vmlib.FacadePath || vmlib.InScope(path, vmlib.FacadePath)
}

// mayComm conservatively reports whether n can perform a blocking
// communication op, without descending into nested function literals
// (each literal is its own SPMD scope). Unresolvable calls count as
// communication: the checker must never treat a send or receive as
// absent.
func (x *extractor) mayComm(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if x.isPureCall(call) {
			return true
		}
		info := x.pass.TypesInfo
		if vmlib.IsProcMethod(info, call, p2pMethods...) ||
			vmlib.IsProcMethod(info, call, "Barrier") ||
			x.summary.IsCollectiveCall(call) {
			found = true
			return false
		}
		f := vmlib.Callee(info, call)
		if f == nil {
			found = true // dynamic call: could be anything
			return false
		}
		if f.Pkg() != nil && f.Pkg() == x.pass.Pkg && x.bodies[f] != nil {
			e := x.protocolOf(f)
			if e.opaque || (e.proto != nil && e.proto.comm) {
				found = true
				return false
			}
			return true
		}
		if f.Pkg() != nil && vmlib.InScope(f.Pkg().Path(), exemptPaths...) {
			return true // non-collective entry into the exempt internals
		}
		// Imported module function: only a commverify fact can clear it.
		if fact, ok := x.factFor(f); ok {
			if _, comm := fact.Protocols[f.Name()]; !comm && !contains(fact.Opaque, f.Name()) {
				return true
			}
		}
		found = true
		return false
	})
	return found
}

func (x *extractor) factFor(f *types.Func) (*Fact, bool) {
	if f.Pkg() == nil {
		return nil, false
	}
	fact, ok := x.facts[f.Pkg().Path()]
	return fact, ok
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// ---- statements ----

func (x *extractor) extractStmts(list []ast.Stmt, ev env) ([]stmt, error) {
	var out []stmt
	for _, s := range list {
		stmts, err := x.extractStmt(s, ev)
		if err != nil {
			return nil, err
		}
		out = append(out, stmts...)
	}
	return out, nil
}

func (x *extractor) extractStmt(s ast.Stmt, ev env) ([]stmt, error) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			return x.extractCall(call, ev)
		}
		return x.fallback(s, ev)

	case *ast.AssignStmt:
		return x.extractAssign(s, ev)

	case *ast.IncDecStmt:
		if id, ok := s.X.(*ast.Ident); ok {
			obj := x.pass.TypesInfo.Uses[id]
			if v, ok := ev[obj]; ok && v != poisoned {
				op := token.ADD
				if s.Tok == token.DEC {
					op = token.SUB
				}
				ev[obj] = binE(op, v, constE(1))
			} else if obj != nil {
				ev[obj] = poisoned
			}
		}
		return nil, nil

	case *ast.DeclStmt:
		return x.extractDecl(s, ev)

	case *ast.ReturnStmt:
		var out []stmt
		if len(s.Results) == 1 {
			if call, ok := s.Results[0].(*ast.CallExpr); ok && x.isCommCall(call) {
				ops, err := x.extractCall(call, ev)
				if err != nil {
					return nil, err
				}
				return append(ops, &retStmt{}), nil
			}
		}
		for _, r := range s.Results {
			if x.mayComm(r) {
				return nil, errUnverifiable
			}
		}
		return append(out, &retStmt{}), nil

	case *ast.IfStmt:
		return x.extractIf(s, ev)

	case *ast.ForStmt:
		return x.extractFor(s, ev)

	case *ast.SwitchStmt:
		return x.extractSwitch(s, ev)

	case *ast.BlockStmt:
		return x.extractStmts(s.List, ev)

	case *ast.LabeledStmt:
		return x.extractStmt(s.Stmt, ev)

	case *ast.BranchStmt:
		// break/continue/goto at a point the IR models: only loops are
		// modeled, and modeled loop bodies reject branch statements, so
		// reaching one here means unstructured flow around the
		// statements already extracted.
		return nil, errUnverifiable

	case *ast.DeferStmt:
		if x.mayComm(s.Call) {
			return nil, errUnverifiable
		}
		return nil, nil

	case *ast.GoStmt:
		if x.mayComm(s.Call) {
			return nil, errUnverifiable
		}
		return nil, nil

	case *ast.EmptyStmt:
		return nil, nil

	default:
		// RangeStmt, TypeSwitchStmt, SelectStmt, SendStmt, …
		return x.fallback(s, ev)
	}
}

// fallback handles any construct the IR does not model: fine when it
// cannot communicate (its variable writes are just forgotten),
// unverifiable when it can.
func (x *extractor) fallback(s ast.Stmt, ev env) ([]stmt, error) {
	if x.mayComm(s) {
		return nil, errUnverifiable
	}
	x.poisonAssigned(s, ev)
	return nil, nil
}

// isCommCall reports whether call is a modeled communication
// operation or a call that (transitively) performs one.
func (x *extractor) isCommCall(call *ast.CallExpr) bool {
	return !x.isPureCall(call) && x.mayComm(call)
}

// extractCall lowers a statement-position call.
func (x *extractor) extractCall(call *ast.CallExpr, ev env) ([]stmt, error) {
	info := x.pass.TypesInfo

	// Nested communication inside argument expressions is not modeled
	// (its ordering relative to the call is entangled with evaluation
	// order); require it to be hoisted into its own statement.
	for _, a := range call.Args {
		if x.mayComm(a) {
			return nil, errUnverifiable
		}
	}

	// Point-to-point Proc operations.
	if vmlib.IsProcMethod(info, call, p2pMethods...) {
		return x.extractP2P(call, ev)
	}
	if vmlib.IsProcMethod(info, call, "Barrier") && len(call.Args) == 2 {
		mask := x.exprOf(call.Args[0], ev)
		tag := x.exprOf(call.Args[1], ev)
		if mask == nil || tag == nil {
			return nil, errUnverifiable
		}
		return []stmt{&opStmt{kind: opColl, name: "Barrier", pos: call.Pos(),
			mask: mask, tag: tag, root: constE(-1)}}, nil
	}

	if x.isPureCall(call) {
		return nil, nil
	}

	f := vmlib.Callee(info, call)
	if f == nil {
		if x.mayComm(call) {
			return nil, errUnverifiable
		}
		return nil, nil
	}

	// Local functions inline their extracted protocol; a commverify
	// fact does the same across package boundaries, and the collective
	// summary (which includes the collectives analyzer's facts) covers
	// the collective entry points by signature.
	local := f.Pkg() != nil && f.Pkg() == x.pass.Pkg && x.bodies[f] != nil
	if local {
		e := x.protocolOf(f)
		switch {
		case e.opaque:
			return nil, errUnverifiable
		case e.proto != nil && e.proto.comm:
			return x.inlineCall(call, e.proto, ev)
		default:
			return nil, nil
		}
	}
	if fact, ok := x.factFor(f); ok {
		if src, ok := fact.Protocols[f.Name()]; ok {
			proto, err := parseProtocol(src, call.Pos())
			if err != nil {
				return nil, errUnverifiable
			}
			return x.inlineCall(call, proto, ev)
		}
		if contains(fact.Opaque, f.Name()) {
			return nil, errUnverifiable
		}
		if !x.summary.IsCollectiveCall(call) {
			return nil, nil // summarized package, non-communicating function
		}
	}
	if x.summary.IsCollectiveCall(call) {
		return x.extractCollective(call, f, ev)
	}
	if f.Pkg() != nil && vmlib.InScope(f.Pkg().Path(), exemptPaths...) {
		return nil, nil
	}
	// A module-internal function with no fact in sight: without its
	// summary the protocol is incomplete, so give up rather than treat
	// a possible send or receive as absent.
	return nil, errUnverifiable
}

// extractP2P lowers Send/Recv/Exchange/ExchangeAll.
func (x *extractor) extractP2P(call *ast.CallExpr, ev env) ([]stmt, error) {
	f := vmlib.Callee(x.pass.TypesInfo, call)
	op := &opStmt{pos: call.Pos()}
	switch f.Name() {
	case "Send":
		op.kind = opSend
	case "Recv":
		op.kind = opRecv
	case "Exchange":
		op.kind = opExchange
	case "ExchangeAll":
		op.kind = opExchangeAll
	}
	if op.kind == opExchangeAll {
		if len(call.Args) < 2 {
			return nil, errUnverifiable
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
		if !ok {
			return nil, errUnverifiable
		}
		for _, el := range lit.Elts {
			d := x.exprOf(el, ev)
			if d == nil {
				return nil, errUnverifiable
			}
			op.dims = append(op.dims, d)
		}
		if op.tag = x.exprOf(call.Args[1], ev); op.tag == nil {
			return nil, errUnverifiable
		}
		return []stmt{op}, nil
	}
	if len(call.Args) < 2 {
		return nil, errUnverifiable
	}
	op.dim = x.exprOf(call.Args[0], ev)
	op.tag = x.exprOf(call.Args[1], ev)
	if op.dim == nil || op.tag == nil {
		return nil, errUnverifiable
	}
	return []stmt{op}, nil
}

// extractCollective lowers a collective entry point by signature: the
// uniform parameter naming (mask, tag, rootRel/root) identifies the
// structural arguments. Entry points without that shape are not
// modelable.
func (x *extractor) extractCollective(call *ast.CallExpr, f *types.Func, ev env) ([]stmt, error) {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return nil, errUnverifiable
	}
	op := &opStmt{kind: opColl, name: f.Name(), pos: call.Pos(), root: constE(-1)}
	n := sig.Params().Len()
	for i, arg := range call.Args {
		if i >= n {
			break
		}
		var dst **expr
		switch sig.Params().At(i).Name() {
		case "mask":
			dst = &op.mask
		case "tag":
			dst = &op.tag
		case "rootRel", "root":
			dst = &op.root
		default:
			continue
		}
		if *dst = x.exprOf(arg, ev); *dst == nil {
			return nil, errUnverifiable
		}
	}
	if op.mask == nil || op.tag == nil {
		return nil, errUnverifiable
	}
	return []stmt{op}, nil
}

// inlineCall binds the callee protocol's parameters to the
// call-site's argument expressions.
func (x *extractor) inlineCall(call *ast.CallExpr, proto *protocol, ev env) ([]stmt, error) {
	cs := &callStmt{pos: call.Pos(), callee: proto}
	for _, p := range proto.params {
		k, ok := paramIndex(p)
		if !ok || k >= len(call.Args) {
			return nil, errUnverifiable
		}
		a := x.exprOf(call.Args[k], ev)
		if a == nil {
			return nil, errUnverifiable
		}
		cs.args = append(cs.args, a)
	}
	return []stmt{cs}, nil
}

// extractAssign threads assignments through the environment: integer
// right-hand sides are substituted eagerly, communication calls emit
// their ops and poison their targets (payloads are never structural),
// anything else poisons.
func (x *extractor) extractAssign(s *ast.AssignStmt, ev env) ([]stmt, error) {
	var out []stmt
	// x, y := f() and x := <comm call> shapes: one call on the right.
	if len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok && x.isCommCall(call) {
			ops, err := x.extractCall(call, ev)
			if err != nil {
				return nil, err
			}
			out = ops
			x.poisonTargets(s.Lhs, ev)
			return out, nil
		}
	}
	if len(s.Lhs) != len(s.Rhs) {
		for _, r := range s.Rhs {
			if x.mayComm(r) {
				return nil, errUnverifiable
			}
		}
		x.poisonTargets(s.Lhs, ev)
		return nil, nil
	}
	for i, lhs := range s.Lhs {
		rhs := s.Rhs[i]
		if x.mayComm(rhs) {
			return nil, errUnverifiable
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue // writes through indices/fields are never read back symbolically
		}
		if id.Name == "_" {
			continue
		}
		obj := x.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = x.pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		v := x.exprOf(rhs, ev)
		switch {
		case v == nil:
			ev[obj] = poisoned
		case s.Tok == token.ASSIGN || s.Tok == token.DEFINE:
			ev[obj] = v
		default:
			// Compound assignment: fold the operator.
			cur, ok := ev[obj]
			if !ok || cur == poisoned {
				ev[obj] = poisoned
				break
			}
			op, ok := compoundOp(s.Tok)
			if !ok {
				ev[obj] = poisoned
				break
			}
			ev[obj] = binE(op, cur, v)
		}
	}
	return out, nil
}

func compoundOp(tok token.Token) (token.Token, bool) {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	case token.REM_ASSIGN:
		return token.REM, true
	case token.AND_ASSIGN:
		return token.AND, true
	case token.OR_ASSIGN:
		return token.OR, true
	case token.XOR_ASSIGN:
		return token.XOR, true
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT, true
	case token.SHL_ASSIGN:
		return token.SHL, true
	case token.SHR_ASSIGN:
		return token.SHR, true
	}
	return token.ILLEGAL, false
}

func (x *extractor) extractDecl(s *ast.DeclStmt, ev env) ([]stmt, error) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok == token.CONST || gd.Tok == token.TYPE {
		return nil, nil
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			obj := x.pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			switch {
			case len(vs.Values) == 0:
				if isIntType(obj.Type()) {
					ev[obj] = constE(0) // zero value
				}
			case i < len(vs.Values):
				if x.mayComm(vs.Values[i]) {
					return nil, errUnverifiable
				}
				if v := x.exprOf(vs.Values[i], ev); v != nil {
					ev[obj] = v
				} else {
					ev[obj] = poisoned
				}
			default:
				ev[obj] = poisoned
			}
		}
	}
	return nil, nil
}

func (x *extractor) extractIf(s *ast.IfStmt, ev env) ([]stmt, error) {
	if s.Init != nil {
		if _, err := x.extractStmt(s.Init, ev); err != nil {
			return nil, err
		}
	}
	cond := x.exprOf(s.Cond, ev)
	if cond == nil {
		return x.fallback(s, ev)
	}
	thenEv := ev.clone()
	elseEv := ev.clone()
	then, err := x.extractStmts(s.Body.List, thenEv)
	if err != nil {
		return nil, err
	}
	var els []stmt
	if s.Else != nil {
		els, err = x.extractStmt(s.Else, elseEv)
		if err != nil {
			return nil, err
		}
	}
	mergeEnvs(ev, thenEv, elseEv)
	return []stmt{&ifStmt{cond: cond, then: then, els: els}}, nil
}

// mergeEnvs reconciles the branch environments into the outer one:
// values the arms agree on survive, everything else is poisoned.
func mergeEnvs(ev, a, b env) {
	for obj := range ev {
		va, vb := a[obj], b[obj]
		if exprEq(va, vb) {
			ev[obj] = va
		} else {
			ev[obj] = poisoned
		}
	}
	// Variables first defined inside the arms go out of scope; nothing
	// to merge for them.
}

func (x *extractor) extractFor(s *ast.ForStmt, ev env) ([]stmt, error) {
	if !x.mayComm(s.Body) {
		// A communication-free loop only perturbs variables.
		x.poisonAssigned(s, ev)
		return nil, nil
	}
	// Modeled shape: for v := from; v < to; v++ with a branch-free body
	// that leaves v alone.
	init, ok := s.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 || len(init.Rhs) != 1 {
		return nil, errUnverifiable
	}
	vId, ok := init.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, errUnverifiable
	}
	vObj := x.pass.TypesInfo.Defs[vId]
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
		return nil, errUnverifiable
	}
	cx, ok := ast.Unparen(cond.X).(*ast.Ident)
	if !ok || x.pass.TypesInfo.Uses[cx] != vObj {
		return nil, errUnverifiable
	}
	post, ok := s.Post.(*ast.IncDecStmt)
	if !ok || post.Tok != token.INC {
		return nil, errUnverifiable
	}
	px, ok := post.X.(*ast.Ident)
	if !ok || x.pass.TypesInfo.Uses[px] != vObj {
		return nil, errUnverifiable
	}
	if hasBranch(s.Body) {
		return nil, errUnverifiable
	}
	assigned := x.assignedObjs(s.Body)
	if assigned[vObj] {
		return nil, errUnverifiable
	}

	from := x.exprOf(init.Rhs[0], ev)
	if from == nil {
		return nil, errUnverifiable
	}
	// Body-assigned variables change per iteration: poison them before
	// reading the bound or the body.
	for obj := range assigned {
		if _, ok := ev[obj]; ok {
			ev[obj] = poisoned
		}
	}
	to := x.exprOf(cond.Y, ev)
	if to == nil {
		return nil, errUnverifiable
	}

	x.nvar++
	name := fmt.Sprintf("v%d", x.nvar)
	bodyEv := ev.clone()
	bodyEv[vObj] = varE(name)
	body, err := x.extractStmts(s.Body.List, bodyEv)
	if err != nil {
		return nil, err
	}
	return []stmt{&forStmt{v: name, from: from, to: to, incl: cond.Op == token.LEQ, body: body}}, nil
}

// extractSwitch lowers a value switch with extractable tag and guards
// to an if-chain.
func (x *extractor) extractSwitch(s *ast.SwitchStmt, ev env) ([]stmt, error) {
	if s.Init != nil {
		if _, err := x.extractStmt(s.Init, ev); err != nil {
			return nil, err
		}
	}
	var tag *expr
	if s.Tag != nil {
		if tag = x.exprOf(s.Tag, ev); tag == nil {
			return x.fallback(s, ev)
		}
	}
	type arm struct {
		cond *expr // nil for default
		body []ast.Stmt
	}
	var arms []arm
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CaseClause)
		if hasFallthrough(cc.Body) {
			return x.fallback(s, ev)
		}
		if cc.List == nil {
			arms = append(arms, arm{body: cc.Body})
			continue
		}
		var cond *expr
		for _, e := range cc.List {
			g := x.exprOf(e, ev)
			if g == nil {
				return x.fallback(s, ev)
			}
			if tag != nil {
				g = binE(token.EQL, tag, g)
			}
			if cond == nil {
				cond = g
			} else {
				cond = binE(token.LOR, cond, g)
			}
		}
		arms = append(arms, arm{cond: cond, body: cc.Body})
	}
	// Build the chain back to front; every arm extracts in its own
	// environment clone, and the whole statement poisons what any arm
	// assigned (conservative but simple).
	var build func(i int) ([]stmt, error)
	build = func(i int) ([]stmt, error) {
		if i >= len(arms) {
			return nil, nil
		}
		armEv := ev.clone()
		body, err := x.extractStmts(arms[i].body, armEv)
		if err != nil {
			return nil, err
		}
		if arms[i].cond == nil { // default: swallow the rest of the chain
			return body, nil
		}
		els, err := build(i + 1)
		if err != nil {
			return nil, err
		}
		return []stmt{&ifStmt{cond: arms[i].cond, then: body, els: els}}, nil
	}
	out, err := build(0)
	if err != nil {
		return nil, err
	}
	x.poisonAssigned(s.Body, ev)
	return out, nil
}

// hasFallthrough reports a fallthrough directly in a case body.
func hasFallthrough(body []ast.Stmt) bool {
	for _, s := range body {
		if b, ok := s.(*ast.BranchStmt); ok && b.Tok == token.FALLTHROUGH {
			return true
		}
	}
	return false
}

// hasBranch reports any break/continue/goto anywhere under n (nested
// loops and switches included — the IR models none of them inside a
// communicating loop body), ignoring function literals.
func hasBranch(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		switch b := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if b.Tok != token.FALLTHROUGH {
				found = true
			}
			return false
		}
		return true
	})
	return found
}

// assignedObjs collects every object assigned (or ++/--'d, or
// range-bound) under n, ignoring function literals.
func (x *extractor) assignedObjs(n ast.Node) map[types.Object]bool {
	out := make(map[types.Object]bool)
	add := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := x.pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := x.pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				add(l)
			}
		case *ast.IncDecStmt:
			add(n.X)
		case *ast.RangeStmt:
			add(n.Key)
			if n.Value != nil {
				add(n.Value)
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				add(name)
			}
		}
		return true
	})
	return out
}

// poisonAssigned forgets every variable n assigns.
func (x *extractor) poisonAssigned(n ast.Node, ev env) {
	for obj := range x.assignedObjs(n) {
		ev[obj] = poisoned
	}
}

// poisonTargets forgets the identifier targets of an assignment.
func (x *extractor) poisonTargets(lhs []ast.Expr, ev env) {
	for _, l := range lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
			if obj := x.pass.TypesInfo.Defs[id]; obj != nil {
				ev[obj] = poisoned
			} else if obj := x.pass.TypesInfo.Uses[id]; obj != nil {
				ev[obj] = poisoned
			}
		}
	}
}
