package commverify

import (
	"errors"
	"fmt"
	"go/token"
	"strings"
)

// Bounded model checking: a closed protocol (no free parameters) is
// instantiated for every processor identity of a d-dimensional cube,
// d = 1..maxDim, and the resulting per-proc automata are executed
// against each other under the runtime's semantics — Send is
// non-blocking (links buffer), Recv pops the FIFO for its (proc, dim)
// and panics on a tag mismatch, a collective fires when every member
// of its subcube is parked at the same (name, mask, tag, root).
//
// Point-to-point queues on a hypercube are single-producer (the
// (dst, dim) queue receives only from dst^(1<<dim)), so the system is
// confluent: one canonical round-based schedule decides reachability
// of completion, and that schedule doubles as the counterexample.
//
// Instantiations that use a dimension or mask the cube does not have
// skip that d (the protocol is written for bigger cubes); evaluation
// failures (unbound variable, division by zero, blown unroll caps)
// make the whole scope unverifiable and silent.

const (
	maxDim  = 4    // cubes checked: d = 1..maxDim (2..16 procs)
	maxOps  = 4096 // per-proc unrolled op budget
	maxIter = 1024 // per-loop iteration budget
)

// errSkipDim aborts one (d, id) instantiation without condemning the
// protocol: the op addressed a dimension or mask outside this cube.
var errSkipDim = errors.New("dimension outside this cube")

// ckind discriminates the concrete (fully evaluated) operations.
type ckind int

const (
	cSend ckind = iota
	cRecv
	cColl
)

// cop is one concrete operation of one processor's automaton.
type cop struct {
	kind       ckind
	dim, tag   int64
	mask, root int64  // cColl
	name       string // cColl
	pos        token.Pos
}

func (c cop) String() string {
	switch c.kind {
	case cSend:
		return fmt.Sprintf("Send(dim=%d, tag=%d)", c.dim, c.tag)
	case cRecv:
		return fmt.Sprintf("Recv(dim=%d, tag=%d)", c.dim, c.tag)
	default:
		if c.root >= 0 {
			return fmt.Sprintf("%s(mask=%d, tag=%d, root=%d)", c.name, c.mask, c.tag, c.root)
		}
		return fmt.Sprintf("%s(mask=%d, tag=%d)", c.name, c.mask, c.tag)
	}
}

// verdict is one protocol violation with its anchoring position.
type verdict struct {
	pos token.Pos
	msg string
}

// ---- expression evaluation ----

type frame map[string]int64

func eval(e *expr, fr frame, id, d int64) (int64, error) {
	switch e.kind {
	case eConst:
		return e.val, nil
	case eID:
		return id, nil
	case eDim:
		return d, nil
	case eVar:
		v, ok := fr[e.name]
		if !ok {
			return 0, fmt.Errorf("unbound variable %s", e.name)
		}
		return v, nil
	case eUnary:
		x, err := eval(e.x, fr, id, d)
		if err != nil {
			return 0, err
		}
		switch e.tok {
		case token.SUB:
			return -x, nil
		case token.XOR:
			return ^x, nil
		case token.NOT:
			if x == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("bad unary op")
	case eBinary:
		x, err := eval(e.x, fr, id, d)
		if err != nil {
			return 0, err
		}
		y, err := eval(e.y, fr, id, d)
		if err != nil {
			return 0, err
		}
		b2i := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		switch e.tok {
		case token.ADD:
			return x + y, nil
		case token.SUB:
			return x - y, nil
		case token.MUL:
			return x * y, nil
		case token.QUO:
			if y == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return x / y, nil
		case token.REM:
			if y == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return x % y, nil
		case token.AND:
			return x & y, nil
		case token.OR:
			return x | y, nil
		case token.XOR:
			return x ^ y, nil
		case token.AND_NOT:
			return x &^ y, nil
		case token.SHL, token.SHR:
			if y < 0 || y > 62 {
				return 0, fmt.Errorf("shift out of range")
			}
			if e.tok == token.SHL {
				return x << uint(y), nil
			}
			return x >> uint(y), nil
		case token.EQL:
			return b2i(x == y), nil
		case token.NEQ:
			return b2i(x != y), nil
		case token.LSS:
			return b2i(x < y), nil
		case token.LEQ:
			return b2i(x <= y), nil
		case token.GTR:
			return b2i(x > y), nil
		case token.GEQ:
			return b2i(x >= y), nil
		case token.LAND:
			return b2i(x != 0 && y != 0), nil
		case token.LOR:
			return b2i(x != 0 || y != 0), nil
		}
		return 0, fmt.Errorf("bad binary op")
	}
	return 0, fmt.Errorf("poisoned expression")
}

// ---- unrolling ----

// unroller flattens one protocol instantiation to a linear op list.
type unroller struct {
	id, d int64
	ops   []cop
	bad   *verdict // statically certain runtime panic (duplicate ExchangeAll dim)
}

func (u *unroller) exec(body []stmt, fr frame) (returned bool, err error) {
	for _, s := range body {
		switch s := s.(type) {
		case *opStmt:
			if err := u.op(s, fr); err != nil {
				return false, err
			}
			if u.bad != nil {
				return true, nil // stop unrolling past a certain panic
			}
		case *ifStmt:
			c, err := eval(s.cond, fr, u.id, u.d)
			if err != nil {
				return false, err
			}
			arm := s.els
			if c != 0 {
				arm = s.then
			}
			ret, err := u.exec(arm, fr)
			if ret || err != nil {
				return ret, err
			}
		case *forStmt:
			from, err := eval(s.from, fr, u.id, u.d)
			if err != nil {
				return false, err
			}
			to, err := eval(s.to, fr, u.id, u.d)
			if err != nil {
				return false, err
			}
			if s.incl {
				to++
			}
			if to-from > maxIter {
				return false, fmt.Errorf("loop bound too large")
			}
			for i := from; i < to; i++ {
				fr[s.v] = i
				ret, err := u.exec(s.body, fr)
				if ret || err != nil {
					delete(fr, s.v)
					return ret, err
				}
			}
			delete(fr, s.v)
		case *retStmt:
			return true, nil
		case *callStmt:
			inner := make(frame, len(s.args))
			for i, a := range s.args {
				v, err := eval(a, fr, u.id, u.d)
				if err != nil {
					return false, err
				}
				inner[s.callee.params[i]] = v
			}
			// A return inside the callee terminates the callee only.
			if _, err := u.exec(s.callee.body, inner); err != nil {
				return false, err
			}
			if u.bad != nil {
				return true, nil
			}
		}
	}
	return false, nil
}

func (u *unroller) op(s *opStmt, fr frame) error {
	if len(u.ops) >= maxOps {
		return fmt.Errorf("op budget exceeded")
	}
	evalAt := func(e *expr) (int64, error) { return eval(e, fr, u.id, u.d) }
	switch s.kind {
	case opSend, opRecv, opExchange:
		dim, err := evalAt(s.dim)
		if err != nil {
			return err
		}
		if dim < 0 || dim >= u.d {
			return errSkipDim
		}
		tag, err := evalAt(s.tag)
		if err != nil {
			return err
		}
		if s.kind != opRecv {
			u.ops = append(u.ops, cop{kind: cSend, dim: dim, tag: tag, pos: s.pos})
		}
		if s.kind != opSend {
			u.ops = append(u.ops, cop{kind: cRecv, dim: dim, tag: tag, pos: s.pos})
		}
	case opExchangeAll:
		tag, err := evalAt(s.tag)
		if err != nil {
			return err
		}
		seen := make(map[int64]bool, len(s.dims))
		var dims []int64
		for _, de := range s.dims {
			dim, err := evalAt(de)
			if err != nil {
				return err
			}
			if dim < 0 || dim >= u.d {
				return errSkipDim
			}
			if seen[dim] {
				u.bad = &verdict{pos: s.pos, msg: fmt.Sprintf(
					"ExchangeAll dimension list contains dim %d twice for p%d on the d=%d cube: the runtime panics on duplicate dimensions",
					dim, u.id, u.d)}
				return nil
			}
			seen[dim] = true
			dims = append(dims, dim)
		}
		for _, dim := range dims {
			u.ops = append(u.ops, cop{kind: cSend, dim: dim, tag: tag, pos: s.pos})
		}
		for _, dim := range dims {
			u.ops = append(u.ops, cop{kind: cRecv, dim: dim, tag: tag, pos: s.pos})
		}
	case opColl:
		mask, err := evalAt(s.mask)
		if err != nil {
			return err
		}
		full := int64(1)<<uint(u.d) - 1
		if mask&^full != 0 || mask < 0 {
			return errSkipDim
		}
		tag, err := evalAt(s.tag)
		if err != nil {
			return err
		}
		root, err := evalAt(s.root)
		if err != nil {
			return err
		}
		u.ops = append(u.ops, cop{kind: cColl, name: s.name, mask: mask, tag: tag, root: root, pos: s.pos})
	}
	return nil
}

// ---- simulation ----

type message struct {
	tag int64
	src int
	pos token.Pos
}

// boundedCheck instantiates and executes proto on every cube size up
// to maxDim and returns the first violation found, smallest cube
// first — the minimal counterexample. A nil result means every
// checkable instantiation ran to completion with drained links.
func boundedCheck(proto *protocol) *verdict {
	if len(proto.params) != 0 {
		return nil // open protocol: checked at its call sites, inlined
	}
	for d := int64(1); d <= maxDim; d++ {
		n := 1 << uint(d)
		perProc := make([][]cop, n)
		skip := false
		for id := 0; id < n && !skip; id++ {
			u := &unroller{id: int64(id), d: d}
			_, err := u.exec(proto.body, make(frame))
			switch {
			case err == errSkipDim:
				skip = true
			case err != nil:
				return nil // unverifiable: stay silent
			case u.bad != nil:
				return u.bad
			default:
				perProc[id] = u.ops
			}
		}
		if skip {
			continue
		}
		if v := simulate(int(d), perProc); v != nil {
			return v
		}
	}
	return nil
}

// simulate runs the canonical round-based schedule on the d-cube.
func simulate(d int, perProc [][]cop) *verdict {
	n := 1 << uint(d)
	pc := make([]int, n)
	queues := make([][]message, n*d)
	var schedule []string

	for step := 0; step < n*maxOps+1; step++ {
		progress := false
		var acts []string

		// Point-to-point steps, one per proc, in rank order.
		for id := 0; id < n; id++ {
			if pc[id] >= len(perProc[id]) {
				continue
			}
			op := perProc[id][pc[id]]
			switch op.kind {
			case cSend:
				dst := id ^ (1 << uint(op.dim))
				queues[dst*d+int(op.dim)] = append(queues[dst*d+int(op.dim)],
					message{tag: op.tag, src: id, pos: op.pos})
				pc[id]++
				progress = true
				acts = append(acts, fmt.Sprintf("p%d %s", id, op))
			case cRecv:
				q := queues[id*d+int(op.dim)]
				if len(q) == 0 {
					continue // blocked
				}
				if q[0].tag != op.tag {
					return &verdict{pos: op.pos, msg: fmt.Sprintf(
						"tag mismatch on the d=%d cube: p%d Recv(dim=%d) expects tag %d but the message from p%d carries tag %d (the runtime panics here)",
						d, id, op.dim, op.tag, q[0].src, q[0].tag)}
				}
				queues[id*d+int(op.dim)] = q[1:]
				pc[id]++
				progress = true
				acts = append(acts, fmt.Sprintf("p%d %s", id, op))
			}
		}

		// Collective steps: fire every subcube whose members are all
		// parked at the same operation; cascade within the step.
		for fired := true; fired; {
			fired = false
			for id := 0; id < n; id++ {
				if pc[id] >= len(perProc[id]) {
					continue
				}
				op := perProc[id][pc[id]]
				if op.kind != cColl {
					continue
				}
				members, ok := collReady(d, id, op, pc, perProc)
				if !ok {
					continue
				}
				for _, q := range members {
					pc[q]++
				}
				fired = true
				progress = true
				acts = append(acts, fmt.Sprintf("%s %s", procSet(members), op))
			}
		}

		if progress {
			schedule = append(schedule, fmt.Sprintf("step %d: %s", step, strings.Join(acts, ", ")))
			continue
		}

		// Quiescent. Anyone unfinished is deadlocked.
		var blocked []int
		for id := 0; id < n; id++ {
			if pc[id] < len(perProc[id]) {
				blocked = append(blocked, id)
			}
		}
		if len(blocked) > 0 {
			return deadlockVerdict(d, step, blocked, pc, perProc, queues, schedule)
		}
		// Everyone completed: leftover queued messages were never received.
		for dst := 0; dst < n; dst++ {
			for dim := 0; dim < d; dim++ {
				if q := queues[dst*d+dim]; len(q) > 0 {
					return &verdict{pos: q[0].pos, msg: fmt.Sprintf(
						"Send(dim=%d, tag=%d) from p%d is never received by p%d on the d=%d cube: all processors ran to completion with the message still queued",
						dim, q[0].tag, q[0].src, dst, d)}
				}
			}
		}
		return nil
	}
	return nil // step budget blown: treat as unverifiable
}

// collReady reports whether the collective op that proc id is parked
// at can fire: every member of its subcube parked at an equal op.
func collReady(d, id int, op cop, pc []int, perProc [][]cop) ([]int, bool) {
	n := 1 << uint(d)
	base := id &^ int(op.mask)
	var members []int
	for q := 0; q < n; q++ {
		if q&^int(op.mask) != base {
			continue
		}
		members = append(members, q)
		if pc[q] >= len(perProc[q]) {
			return nil, false
		}
		oq := perProc[q][pc[q]]
		if oq.kind != cColl || oq.name != op.name || oq.mask != op.mask ||
			oq.tag != op.tag || oq.root != op.root {
			return nil, false
		}
	}
	return members, true
}

// procSet renders a member list compactly.
func procSet(members []int) string {
	if len(members) <= 4 {
		parts := make([]string, len(members))
		for i, m := range members {
			parts[i] = fmt.Sprintf("p%d", m)
		}
		return strings.Join(parts, ",")
	}
	return fmt.Sprintf("p%d..p%d (%d procs)", members[0], members[len(members)-1], len(members))
}

// deadlockVerdict renders the blocked table and the counterexample
// schedule. The finding anchors at the lowest blocked proc's op.
func deadlockVerdict(d, step int, blocked, pc []int, perProc [][]cop, queues [][]message, schedule []string) *verdict {
	n := 1 << uint(d)
	var parts []string
	for i, id := range blocked {
		if i == 3 {
			parts = append(parts, fmt.Sprintf("(+%d more)", len(blocked)-i))
			break
		}
		op := perProc[id][pc[id]]
		hint := ""
		switch op.kind {
		case cRecv:
			hint = fmt.Sprintf(" [no message pending on dim %d]", op.dim)
		case cColl:
			if w := firstAbsentMember(d, id, op, pc, perProc); w >= 0 {
				hint = fmt.Sprintf(" [waiting for p%d]", w)
			}
		}
		parts = append(parts, fmt.Sprintf("p%d at %s%s", id, op, hint))
	}
	msg := fmt.Sprintf("protocol deadlocks on the d=%d cube: %d/%d procs blocked at VT step %d — %s",
		d, len(blocked), n, step, strings.Join(parts, ", "))
	if s := renderSchedule(schedule); s != "" {
		msg += "; schedule: " + s
	}
	first := blocked[0]
	return &verdict{pos: perProc[first][pc[first]].pos, msg: msg}
}

// firstAbsentMember finds the lowest subcube member not parked at an
// equal collective, for the blocked-table hint.
func firstAbsentMember(d, id int, op cop, pc []int, perProc [][]cop) int {
	n := 1 << uint(d)
	base := id &^ int(op.mask)
	for q := 0; q < n; q++ {
		if q&^int(op.mask) != base || q == id {
			continue
		}
		if pc[q] >= len(perProc[q]) {
			return q
		}
		oq := perProc[q][pc[q]]
		if oq.kind != cColl || oq.name != op.name || oq.mask != op.mask ||
			oq.tag != op.tag || oq.root != op.root {
			return q
		}
	}
	return -1
}

// renderSchedule joins the per-step action lines, truncated: the
// counterexample should orient, not overwhelm.
func renderSchedule(schedule []string) string {
	const cap = 400
	s := strings.Join(schedule, "; ")
	if len(s) > cap {
		s = s[:cap] + "…"
	}
	return s
}
