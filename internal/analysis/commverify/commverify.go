// Package commverify proves deadlock-freedom of SPMD communication
// protocols by bounded model checking.
//
// collorder checks that every processor executes the same *collective*
// sequence; nothing there speaks about point-to-point Send/Recv
// pairing, the bug class the runtime watchdog only reports after the
// deadlock has happened. commverify is the static twin of that
// post-mortem: it lowers each SPMD scope to a small protocol IR —
// communication ops whose dimension/tag/mask arguments are integer
// expressions over p.ID(), p.Dim(), loop variables and inlined call
// arguments — then instantiates all 2^d processor identities for
// every cube dimension d ≤ 4 and executes the per-proc automata
// against each other under the runtime's own semantics. Unreceived
// sends, tag mismatches, statically certain ExchangeAll panics, and
// cyclically blocked states become diagnostics carrying a minimal
// counterexample schedule (which procs, which ops, which VT step).
//
// The checker is deliberately one-sided. Scopes it can fully
// concretize are genuinely proven (for the checked cube sizes):
// point-to-point queues on a hypercube are single-producer, so the
// protocol system is confluent and one canonical schedule decides
// whether completion is reachable. Scopes it cannot concretize —
// dynamic tags from NextTag, data-dependent branches, unmodeled
// control flow — are skipped silently rather than guessed at. A
// finding is therefore always a real property of the extracted
// protocol, never a "could not verify" shrug.
//
// Exported protocol summaries travel between packages as package
// facts, so a wrapper in one package and its caller in another are
// checked as one protocol (and functions whose protocol cannot be
// summarized are recorded as opaque, keeping callers honest).
package commverify

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"vmprim/internal/analysis/collectives"
	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/vmlib"
)

// Analyzer is the commverify entry point.
var Analyzer = &framework.Analyzer{
	Name:      "commverify",
	Doc:       "bounded model-check SPMD point-to-point protocols for deadlocks, unmatched sends and tag mismatches",
	Requires:  []*framework.Analyzer{collectives.Analyzer},
	FactTypes: []framework.Fact{(*Fact)(nil)},
	Run:       run,
}

// Fact is one package's exported protocol summary: the marshalled
// protocol of every exported communicating function, plus the names
// of exported functions that communicate in ways the IR cannot
// express. The fact is exported even when both lists are empty — its
// presence tells importers "this package was analyzed, anything not
// listed is communication-free", which is what lets cross-package
// calls to plain helpers stay verifiable.
type Fact struct {
	Protocols map[string]string
	Opaque    []string
}

// AFact marks Fact as a framework fact.
func (*Fact) AFact() {}

func run(pass *framework.Pass) (any, error) {
	path := pass.Pkg.Path()
	factScope := inModule(path) && !vmlib.InScope(path, exemptPaths...)
	reportScope := vmlib.InScope(path, vmlib.CorePath, vmlib.AppsPath, vmlib.BenchPath) ||
		vmlib.InTopLevelScope(path)
	if !factScope && !reportScope {
		return nil, nil
	}
	summary := pass.ResultOf[collectives.Analyzer].(*collectives.Result)
	x := newExtractor(pass, summary)

	if factScope {
		x.exportFact()
	}
	if !reportScope {
		return nil, nil
	}

	reported := make(map[token.Pos]bool)
	report := func(v *verdict) {
		if v != nil && !reported[v.pos] {
			reported[v.pos] = true
			pass.Reportf(v.pos, "%s", v.msg)
		}
	}

	for _, file := range pass.Files {
		if vmlib.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// The declaration itself (functions go through the memoized
			// summary so local inlining is shared; methods are lowered
			// directly).
			var proto *protocol
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok && fn.Recv == nil {
				if e := x.protocolOf(obj); e.proto != nil {
					proto = e.proto
				}
			} else if p, err := x.extractFunc(fn.Type, fn.Body); err == nil {
				proto = p
			}
			if proto != nil && proto.comm {
				report(boundedCheck(proto))
			}
			// Every function literal underneath is its own SPMD scope.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				if p, err := x.extractFunc(lit.Type, lit.Body); err == nil && p.comm {
					report(boundedCheck(p))
				}
				return true
			})
		}
	}
	return nil, nil
}

// exportFact summarizes the package's exported functions for
// importers.
func (x *extractor) exportFact() {
	fact := &Fact{Protocols: make(map[string]string)}
	for f, decl := range x.bodies {
		if !decl.Name.IsExported() {
			continue
		}
		e := x.protocolOf(f)
		switch {
		case e.opaque:
			fact.Opaque = append(fact.Opaque, f.Name())
		case e.proto != nil && e.proto.comm:
			fact.Protocols[f.Name()] = marshalProtocol(e.proto)
		}
	}
	sort.Strings(fact.Opaque)
	x.pass.ExportPackageFact(fact)
}
