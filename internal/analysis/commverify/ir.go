package commverify

import (
	"go/token"
	"strconv"
)

// The protocol IR. Extraction lowers the Go AST of one SPMD scope to
// this small language; the bounded model checker then instantiates it
// for every processor identity of a d-dimensional cube and executes
// the resulting automata against each other. Everything a protocol
// may branch or index on is an integer expression over the processor
// rank, the cube dimension, enclosing loop variables, and inlined
// call arguments — exactly the vocabulary of the paper's primitives
// (rank bits, gray codes, dimension induction).

// exprKind discriminates the expression nodes.
type exprKind int

const (
	eConst  exprKind = iota // integer literal: val
	eID                     // p.ID() — the processor rank
	eDim                    // p.Dim() — the cube dimension d
	eVar                    // loop variable or inlined parameter: name
	eUnary                  // tok in {-, ^, !}: x
	eBinary                 // tok: x, y
)

// expr is one node of an integer (or boolean, encoded 0/1) expression.
type expr struct {
	kind exprKind
	val  int64
	name string
	tok  token.Token
	x, y *expr
}

// poisoned is the sentinel for a variable whose value the extractor
// cannot track (assigned under unmodeled control flow, or from an
// unevaluable right-hand side). Reading it in a structural position
// makes the scope unverifiable.
var poisoned = &expr{}

func constE(v int64) *expr   { return &expr{kind: eConst, val: v} }
func varE(name string) *expr { return &expr{kind: eVar, name: name} }
func unE(tok token.Token, x *expr) *expr {
	return &expr{kind: eUnary, tok: tok, x: x}
}
func binE(tok token.Token, x, y *expr) *expr {
	return &expr{kind: eBinary, tok: tok, x: x, y: y}
}

// exprEq is structural equality, used when merging the variable
// environments of branch arms.
func exprEq(a, b *expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.kind != b.kind || a.val != b.val || a.name != b.name || a.tok != b.tok {
		return false
	}
	return exprEq(a.x, b.x) && exprEq(a.y, b.y)
}

// opKind discriminates the communication operations.
type opKind int

const (
	opSend opKind = iota
	opRecv
	opExchange    // Send then Recv on the same dim/tag
	opExchangeAll // sends on every listed dim, then receives in order
	opColl        // named collective over a subcube mask
)

var opNames = map[opKind]string{
	opSend: "Send", opRecv: "Recv", opExchange: "Exchange",
	opExchangeAll: "ExchangeAll", opColl: "collective",
}

// stmt is one statement of the protocol IR.
type stmt interface{ isStmt() }

// opStmt is one communication operation.
type opStmt struct {
	kind opKind
	name string // collective name for opColl (Barrier, Bcast, …)
	pos  token.Pos
	dim  *expr   // Send/Recv/Exchange
	tag  *expr   // every op
	mask *expr   // opColl
	root *expr   // opColl; constE(-1) when the collective has no root
	dims []*expr // opExchangeAll
}

// ifStmt is a two-way branch on an extractable condition.
type ifStmt struct {
	cond      *expr
	then, els []stmt
}

// forStmt is counted iteration: for v := from; v < to; v++ (incl
// flips the bound to <=). The body may reference v.
type forStmt struct {
	v        string
	from, to *expr
	incl     bool
	body     []stmt
}

// retStmt terminates the enclosing protocol frame (a function return;
// panic is modeled the same way, as "this processor stops").
type retStmt struct{}

// callStmt inlines another extracted protocol with bound integer
// arguments, preserving call-return semantics (a retStmt inside the
// callee terminates only the callee's frame).
type callStmt struct {
	pos    token.Pos
	callee *protocol
	args   []*expr // aligned with callee.params
}

func (*opStmt) isStmt()   {}
func (*ifStmt) isStmt()   {}
func (*forStmt) isStmt()  {}
func (*retStmt) isStmt()  {}
func (*callStmt) isStmt() {}

// protocol is one extracted SPMD scope: a statement body over the
// IR, with the inlinable integer parameters it is generic over.
// params[i] is the IR variable name "$<k>" where k is the call-site
// argument index that binds it.
type protocol struct {
	params []string
	body   []stmt
	comm   bool // contains at least one communication op
	p2p    bool // contains at least one point-to-point op
}

// paramName renders the IR variable bound to call-site argument k.
func paramName(k int) string { return "$" + strconv.Itoa(k) }

// paramIndex inverts paramName; ok is false for non-parameter names.
func paramIndex(name string) (int, bool) {
	if len(name) < 2 || name[0] != '$' {
		return 0, false
	}
	k, err := strconv.Atoi(name[1:])
	return k, err == nil
}

// scan computes the comm/p2p summary of a body, through nested
// inlined calls.
func scan(body []stmt) (comm, p2p bool) {
	for _, s := range body {
		var c, p bool
		switch s := s.(type) {
		case *opStmt:
			c = true
			p = s.kind != opColl
		case *ifStmt:
			c1, p1 := scan(s.then)
			c2, p2 := scan(s.els)
			c, p = c1 || c2, p1 || p2
		case *forStmt:
			c, p = scan(s.body)
		case *callStmt:
			c, p = s.callee.comm, s.callee.p2p
		}
		comm = comm || c
		p2p = p2p || p
	}
	return comm, p2p
}
