// Package spanbalance statically proves that every BeginSpan has a
// matching EndSpan on every control-flow path, subsuming the runtime
// "EndSpan without matching BeginSpan" / "span(s) left open at end of
// run" panics that otherwise fire only when a profiled run happens to
// take the broken path.
//
// The proof is a symbolic walk of each function body tracking two
// counters: the number of spans opened by non-deferred BeginSpan calls
// (depth) and the number of deferred EndSpan calls registered so far
// (credits). The rules:
//
//   - at every return, and at the end of a function that can fall off,
//     depth must equal credits — the deferred ends close exactly the
//     spans still open;
//   - the two arms of an if (and all non-terminating cases of a
//     switch or select) must agree on both counters, since the
//     following code cannot know which arm ran;
//   - a loop body must be neutral: net depth change zero, and no
//     deferred EndSpan inside the loop (a defer in a loop runs at
//     function return, not at iteration end — the classic bug);
//   - break and continue must occur at the loop's entry depth,
//     because they jump to code that assumes it.
//
// Functions containing goto are skipped (the walk cannot follow
// arbitrary jumps), as are the one-line BeginSpan/EndSpan forwarding
// wrappers (core.Env delegating to hypercube.Proc), which are
// intentionally "unbalanced" in isolation.
//
// When a function opens exactly one span at its top level and closes
// none, the unbalanced-exit diagnostics carry a suggested fix that
// inserts the idiomatic `defer x.EndSpan()` right after the BeginSpan;
// vmlint -fix applies it.
package spanbalance

import (
	"fmt"
	"go/ast"
	"go/token"

	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/vmlib"
)

// Analyzer is the spanbalance entry point.
var Analyzer = &framework.Analyzer{
	Name: "spanbalance",
	Doc:  "check that BeginSpan/EndSpan pairs balance on every control-flow path",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	for _, file := range pass.Files {
		if vmlib.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// Forwarding wrappers (Env.BeginSpan calling P.BeginSpan)
			// are unbalanced by design.
			if fn.Name.Name == "BeginSpan" || fn.Name.Name == "EndSpan" {
				continue
			}
			checkFunc(pass, fn.Body)
			// Function literals get their own independent walk: a
			// closure's spans balance against its own body, not its
			// lexical surroundings.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFunc(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// deferFix builds the "insert defer x.EndSpan() after the BeginSpan"
// fix when the body's span usage is the simple forgotten-defer shape:
// exactly one BeginSpan, as a top-level statement of the body, and no
// EndSpan anywhere (inline or deferred). Anything more structured has
// no single right repair, and the fix stays nil.
func deferFix(pass *framework.Pass, body *ast.BlockStmt) *framework.SuggestedFix {
	begins, ends := 0, 0
	var begin *ast.ExprStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if isBegin, ok := vmlib.IsSpanCall(pass.TypesInfo, call); ok {
				if isBegin {
					begins++
				} else {
					ends++
				}
			}
		}
		return true
	})
	if begins != 1 || ends != 0 {
		return nil
	}
	for _, s := range body.List {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if isBegin, ok := vmlib.IsSpanCall(pass.TypesInfo, call); ok && isBegin {
			begin = es
			break
		}
	}
	if begin == nil {
		return nil // the one BeginSpan is nested in inner control flow
	}
	sel, ok := ast.Unparen(begin.X.(*ast.CallExpr).Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pos := pass.Fset.Position(begin.Pos())
	indent := ""
	for i := 1; i < pos.Column; i++ {
		indent += "\t" // gofmt indents with tabs; a fixed file must stay gofmt-clean
	}
	text := "\n" + indent + "defer " + recv.Name + ".EndSpan()"
	return &framework.SuggestedFix{
		Message:   "defer the matching EndSpan",
		TextEdits: []framework.TextEdit{{Pos: begin.End(), End: token.NoPos, NewText: []byte(text)}},
	}
}

// state is the symbolic span bookkeeping at one program point.
type state struct {
	depth   int // spans opened and not yet closed by inline EndSpan
	credits int // deferred EndSpan calls registered so far
}

// walker carries the per-function check context.
type walker struct {
	pass *framework.Pass
	// fix, when non-nil, is the defer-EndSpan repair attached to this
	// function's unbalanced-exit diagnostics.
	fix *framework.SuggestedFix
	// loopDepth holds the entry depth of each enclosing loop, for
	// validating break/continue.
	loopDepth []int
	inLoop    int
	bailed    bool // goto seen: abandon the function silently
}

// reportOpen emits an unbalanced-exit diagnostic, carrying the
// function's defer-EndSpan fix when one applies.
func (w *walker) reportOpen(pos token.Pos, format string, args ...any) {
	d := framework.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)}
	if w.fix != nil {
		d.SuggestedFixes = []framework.SuggestedFix{*w.fix}
	}
	w.pass.Report(d)
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	// A function containing goto cannot be verified structurally.
	hasGoto := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literals are checked separately
		}
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok.String() == "goto" {
			hasGoto = true
		}
		return true
	})
	if hasGoto {
		return
	}
	w := &walker{pass: pass, fix: deferFix(pass, body)}
	st, diverged := w.walkStmts(body.List, state{})
	if w.bailed || diverged {
		return
	}
	if st.depth != st.credits {
		w.reportOpen(body.Rbrace,
			"function ends with %d span(s) still open (BeginSpan without matching EndSpan)",
			st.depth-st.credits)
	}
}

// walkStmts runs the symbolic walk over a statement list, returning
// the resulting state and whether control cannot fall off the end.
func (w *walker) walkStmts(stmts []ast.Stmt, st state) (state, bool) {
	for _, s := range stmts {
		var diverged bool
		st, diverged = w.walkStmt(s, st)
		if w.bailed {
			return st, false
		}
		if diverged {
			return st, true
		}
	}
	return st, false
}

func (w *walker) walkStmt(s ast.Stmt, st state) (state, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if begin, ok := vmlib.IsSpanCall(w.pass.TypesInfo, call); ok {
				if begin {
					st.depth++
				} else {
					if st.depth <= 0 {
						w.pass.Reportf(call.Pos(), "EndSpan without an open span on this path")
					} else {
						st.depth--
					}
				}
				return st, false
			}
			if vmlib.IsPanicCall(w.pass.TypesInfo, call) {
				return st, true // run aborts; open spans are moot
			}
		}
		return st, false

	case *ast.DeferStmt:
		if _, ok := vmlib.IsSpanCall(w.pass.TypesInfo, s.Call); ok {
			if begin, _ := vmlib.IsSpanCall(w.pass.TypesInfo, s.Call); !begin {
				if w.inLoop > 0 {
					w.pass.Reportf(s.Pos(),
						"deferred EndSpan inside a loop runs at function return, not at iteration end")
					return st, false
				}
				st.credits++
			}
		} else if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// defer func() { ...EndSpan()... }(): count the literal's
			// top-level EndSpan calls as credits.
			for _, inner := range lit.Body.List {
				if es, ok := inner.(*ast.ExprStmt); ok {
					if call, ok := es.X.(*ast.CallExpr); ok {
						if begin, ok := vmlib.IsSpanCall(w.pass.TypesInfo, call); ok && !begin {
							if w.inLoop > 0 {
								w.pass.Reportf(s.Pos(),
									"deferred EndSpan inside a loop runs at function return, not at iteration end")
							} else {
								st.credits++
							}
						}
					}
				}
			}
		}
		return st, false

	case *ast.ReturnStmt:
		if st.depth != st.credits {
			w.reportOpen(s.Pos(),
				"return leaves %d span(s) open on this path (EndSpan is not deferred and this exit misses it)",
				st.depth-st.credits)
		}
		return st, true

	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		thenSt, thenDiv := w.walkStmts(s.Body.List, st)
		elseSt, elseDiv := st, false
		if s.Else != nil {
			elseSt, elseDiv = w.walkStmt(s.Else, st)
		}
		if w.bailed {
			return st, false
		}
		switch {
		case thenDiv && elseDiv:
			return st, true
		case thenDiv:
			return elseSt, false
		case elseDiv:
			return thenSt, false
		default:
			if thenSt != elseSt {
				w.pass.Reportf(s.Pos(),
					"span depth differs between the branches of this if (one side is missing a BeginSpan or EndSpan)")
			}
			return thenSt, false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		w.pushLoop(st)
		bodySt, _ := w.walkStmts(s.Body.List, st)
		w.popLoop()
		if w.bailed {
			return st, false
		}
		if bodySt.depth != st.depth {
			w.pass.Reportf(s.Pos(),
				"loop body changes open-span depth by %d per iteration", bodySt.depth-st.depth)
		}
		return st, false

	case *ast.RangeStmt:
		w.pushLoop(st)
		bodySt, _ := w.walkStmts(s.Body.List, st)
		w.popLoop()
		if w.bailed {
			return st, false
		}
		if bodySt.depth != st.depth {
			w.pass.Reportf(s.Pos(),
				"loop body changes open-span depth by %d per iteration", bodySt.depth-st.depth)
		}
		return st, false

	case *ast.BranchStmt:
		// break/continue jump to code expecting the loop's entry
		// depth. (goto was excluded up front.)
		if n := len(w.loopDepth); n > 0 && st.depth != w.loopDepth[n-1] {
			w.pass.Reportf(s.Pos(),
				"%s leaves %d span(s) open relative to the enclosing loop", s.Tok, st.depth-w.loopDepth[n-1])
		}
		return st, true

	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		return w.walkCases(s.Pos(), st, caseBodies(s.Body), hasDefaultClause(s.Body))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		return w.walkCases(s.Pos(), st, caseBodies(s.Body), hasDefaultClause(s.Body))

	case *ast.SelectStmt:
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			bodies = append(bodies, c.(*ast.CommClause).Body)
		}
		// A select without default blocks until a case runs, so there
		// is no implicit fall-through path; treat like a switch with a
		// default.
		return w.walkCases(s.Pos(), st, bodies, true)

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)

	case *ast.GoStmt:
		return st, false // runs on another goroutine's span stack

	default:
		return st, false
	}
}

// walkCases applies the branch-agreement rule to switch/select case
// bodies. Cases are checked independently from the incoming state; a
// switch without a default keeps the fall-through path, which must
// agree with every case.
func (w *walker) walkCases(pos token.Pos, st state, bodies [][]ast.Stmt, hasDefault bool) (state, bool) {
	outs := make([]state, 0, len(bodies)+1)
	allDiverge := len(bodies) > 0
	for _, b := range bodies {
		// "break" at case top level terminates the case, not a loop;
		// the symbolic walk treats it as divergence at the current
		// state, which walkStmt's loop check would misjudge. Strip the
		// trailing break, the only form that appears in this tree.
		out, div := w.walkStmts(stripTrailingBreak(b), st)
		if w.bailed {
			return st, false
		}
		if !div {
			outs = append(outs, out)
			allDiverge = false
		}
	}
	if !hasDefault {
		outs = append(outs, st)
		allDiverge = false
	}
	for i := 1; i < len(outs); i++ {
		if outs[i] != outs[0] {
			w.pass.Reportf(pos,
				"span depth differs between the cases of this switch")
			break
		}
	}
	if allDiverge {
		return st, true
	}
	if len(outs) > 0 {
		return outs[0], false
	}
	return st, false
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		out = append(out, c.(*ast.CaseClause).Body)
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// stripTrailingBreak drops a bare trailing break from a case body.
func stripTrailingBreak(b []ast.Stmt) []ast.Stmt {
	if n := len(b); n > 0 {
		if br, ok := b[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "break" && br.Label == nil {
			return b[:n-1]
		}
	}
	return b
}

func (w *walker) pushLoop(st state) {
	w.loopDepth = append(w.loopDepth, st.depth)
	w.inLoop++
}

func (w *walker) popLoop() {
	w.loopDepth = w.loopDepth[:len(w.loopDepth)-1]
	w.inLoop--
}
