package spanbalance_test

import (
	"path/filepath"
	"testing"

	"vmprim/internal/analysis/analysistest"
	"vmprim/internal/analysis/spanbalance"
)

func TestSpanBalance(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), spanbalance.Analyzer,
		"vmprim/internal/apps/span")
}

// TestSuggestedFixes validates the defer-EndSpan insertion against
// the .golden file and proves applying it twice changes nothing.
func TestSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, filepath.Join("..", "testdata"), spanbalance.Analyzer,
		"vmprim/internal/apps/spanfix")
}
