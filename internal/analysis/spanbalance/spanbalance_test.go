package spanbalance_test

import (
	"path/filepath"
	"testing"

	"vmprim/internal/analysis/analysistest"
	"vmprim/internal/analysis/spanbalance"
)

func TestSpanBalance(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "testdata"), spanbalance.Analyzer,
		"vmprim/internal/apps/span")
}
