// Package collectives is the base analyzer the SPMD checks build on:
// it computes, per package, which functions (transitively) perform a
// collective operation and which functions return values derived from
// processor identity — and it exports both summaries as package
// facts, so they survive package boundaries.
//
// It reports no diagnostics of its own. spmdsym and collorder list it
// in Requires and consume its Result: a classifier that answers "is
// this call a collective?" and "does this call's result depend on the
// processor's identity?" for local functions (summarized in this
// pass), for imported functions (summarized when their package was
// analyzed, carried here as facts), and for the directly-matched
// simulator entry points (vmlib).
//
// Cross-package flow is the point: a helper like
//
//	package grid
//	func MyRank(p *hypercube.Proc) int { return p.ID() % 4 }
//
// makes every caller of grid.MyRank identity-dependent, and a wrapper
// that hides a Reduce behind an exported function is still a
// collective at its call sites in other packages. Without facts both
// summaries stop at the package boundary and the dependent analyzers
// silently miss the divergence.
package collectives

import (
	"go/ast"
	"go/types"
	"sort"

	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/taint"
	"vmprim/internal/analysis/vmlib"
)

// Analyzer is the collectives entry point.
var Analyzer = &framework.Analyzer{
	Name:      "collectives",
	Doc:       "summarize collective-performing and identity-returning functions (facts only, no diagnostics)",
	FactTypes: []framework.Fact{(*Fact)(nil)},
	Run:       run,
}

// Fact is one package's summary: the qualified names (TypeName.Method
// for methods, plain name for functions) of its collective-performing
// and identity-returning functions.
type Fact struct {
	Collective []string
	Identity   []string
}

// AFact marks Fact as a framework fact.
func (*Fact) AFact() {}

// Result is the classifier handed to dependent analyzers.
type Result struct {
	info *types.Info
	// localColl / localIdent summarize this package's functions.
	localColl, localIdent map[*types.Func]bool
	// collNames / identNames hold "pkgpath:qualified" keys for
	// imported functions, resolved from facts.
	collNames, identNames map[string]bool
}

// IsCollectiveCall reports whether call is a collective: a directly
// matched simulator entry point, or a function summarized (locally or
// by facts) as transitively performing one.
func (r *Result) IsCollectiveCall(call *ast.CallExpr) bool {
	if vmlib.IsCollectiveCall(r.info, call) {
		return true
	}
	f := vmlib.Callee(r.info, call)
	return f != nil && (r.localColl[f] || r.collNames[factKey(f)])
}

// IsIdentityCall reports whether call's result derives from processor
// identity: a direct identity read, or a call to a function
// summarized (locally or by facts) as returning identity.
func (r *Result) IsIdentityCall(call *ast.CallExpr) bool {
	if vmlib.IsIdentityRead(r.info, call) {
		return true
	}
	f := vmlib.Callee(r.info, call)
	return f != nil && (r.localIdent[f] || r.identNames[factKey(f)])
}

// TaintConfig is the taint engine configuration using this result's
// classifications.
func (r *Result) TaintConfig() taint.Config {
	return taint.Config{
		Info:             r.info,
		IsIdentityCall:   r.IsIdentityCall,
		IsReplicatedCall: r.IsCollectiveCall,
	}
}

// factKey is the cross-package lookup key of a function: package path
// plus the qualified name used in facts.
func factKey(f *types.Func) string {
	if f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path() + ":" + qualifiedName(f)
}

// qualifiedName renders a function as it appears in a Fact:
// "TypeName.Method" for methods, the bare name for functions.
func qualifiedName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + f.Name()
		}
	}
	return f.Name()
}

func run(pass *framework.Pass) (any, error) {
	res := &Result{
		info:       pass.TypesInfo,
		localColl:  make(map[*types.Func]bool),
		localIdent: make(map[*types.Func]bool),
		collNames:  make(map[string]bool),
		identNames: make(map[string]bool),
	}

	// Resolve every visible fact into name sets. The store holds the
	// facts of all packages analyzed before this one (standalone) or
	// reachable through dependency vetx files (vet driver).
	for _, pf := range pass.AllPackageFacts() {
		fact := pf.Fact.(*Fact)
		for _, n := range fact.Collective {
			res.collNames[pf.Path+":"+n] = true
		}
		for _, n := range fact.Identity {
			res.identNames[pf.Path+":"+n] = true
		}
	}

	// Collect this package's function bodies (test files excluded, as
	// everywhere: tests deliberately exercise the broken patterns).
	bodies := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		if vmlib.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					bodies[obj] = fn
				}
			}
		}
	}

	// Two fixpoints, in order. Collective status first: it depends
	// only on itself (a caller of a collective-performing helper is
	// collective). Identity second: its taint engine uses collective
	// status as the sanitizer, so it must see the *complete* collective
	// set — judging a return value before a helper it flows through is
	// known to be replicated would taint it permanently (fixpoints only
	// add), misclassifying functions like ReduceColLoc whose results
	// ride an all-reduce and are identical on every processor.
	for changed := true; changed; {
		changed = false
		for obj, fn := range bodies {
			if !res.localColl[obj] && bodyPerformsCollective(res, fn) {
				res.localColl[obj] = true
				changed = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, fn := range bodies {
			if !res.localIdent[obj] && returnsIdentity(res, fn) {
				res.localIdent[obj] = true
				changed = true
			}
		}
	}

	// Export the summary for importers. An empty fact is not exported:
	// absence and emptiness mean the same thing to consumers.
	fact := &Fact{}
	for obj := range res.localColl {
		fact.Collective = append(fact.Collective, qualifiedName(obj))
	}
	for obj := range res.localIdent {
		fact.Identity = append(fact.Identity, qualifiedName(obj))
	}
	sort.Strings(fact.Collective)
	sort.Strings(fact.Identity)
	if len(fact.Collective) > 0 || len(fact.Identity) > 0 {
		pass.ExportPackageFact(fact)
	}
	return res, nil
}

// bodyPerformsCollective reports whether fn's body contains a
// collective call under the current summaries, including inside
// nested function literals: a function that builds and runs an SPMD
// closure performs that closure's collectives.
func bodyPerformsCollective(res *Result, fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && res.IsCollectiveCall(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// returnsIdentity reports whether any return value of fn derives from
// processor identity under the current summaries. Nested literals are
// skipped: their returns are not fn's returns.
func returnsIdentity(res *Result, fn *ast.FuncDecl) bool {
	cfg := res.TaintConfig()
	tainted := cfg.Objects(fn)
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if cfg.Expr(tainted, r) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
