package chanprotocol_test

import (
	"path/filepath"
	"testing"

	"vmprim/internal/analysis/analysistest"
	"vmprim/internal/analysis/hostconc/chanprotocol"
)

func TestChanProtocol(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "..", "testdata"), chanprotocol.Analyzer,
		"vmprim/internal/serve/hcchan")
}
