// Package chanprotocol enforces the channel ownership discipline of
// the host-concurrent packages:
//
//   - single-owner close: no path closes a channel a previous point of
//     the same function may already have closed (double close panics),
//     and no close of a loop-independent channel sits inside a loop
//     (the second iteration panics);
//   - no send on a channel *any* path has closed — the state is the
//     union over branches, matching the runtime's worst case (send on
//     a closed channel panics);
//   - no go/defer closure inside a loop capturing a variable the loop
//     body keeps writing: the goroutine's read races with later
//     iterations, and a deferred closure observes only the final
//     value. (Per-iteration loop variables — Go ≥ 1.22 semantics —
//     and variables written only inside the closure itself are fine;
//     the cure is passing the value as an argument.)
//
// The close/send walk is path-sensitive and intra-procedural: channel
// identity is the receiver-expression text, branch joins take the
// union of closed sets, return/panic/break end a path, and
// reassigning a channel variable (ch = make(...)) revives it. The
// single-owner convention keeps the serving plane analyzable this way
// — the broadcaster closes subscriber channels only under its own
// mutex after removing them from the map, the registry's Run closes
// done exactly once in complete.
package chanprotocol

import (
	"go/ast"
	"go/types"

	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/hostconc"
	"vmprim/internal/analysis/vmlib"
)

// Analyzer is the chanprotocol entry point.
var Analyzer = &framework.Analyzer{
	Name: "chanprotocol",
	Doc:  "check close ownership, sends on closed channels and loop-captured variables in go/defer closures",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hostconc.InDiagScope(pass, fn.Pos()) {
				continue
			}
			checkFunc(pass, fn.Body)
			checkCaptures(pass, fn.Body)
			// Function literals get their own independent close walk: a
			// closure's closes are its own protocol.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFunc(pass, lit.Body)
					checkCaptures(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// closedSet is the set of channel keys some path may have closed.
type closedSet map[string]bool

func (c closedSet) clone() closedSet {
	out := make(closedSet, len(c))
	for k := range c {
		out[k] = true
	}
	return out
}

func (c closedSet) union(o closedSet) {
	for k := range o {
		c[k] = true
	}
}

// cwalker carries the per-function close/send walk.
type cwalker struct {
	pass *framework.Pass
	// loops holds the enclosing loop nodes, for deciding whether a
	// closed channel's identity depends on the iteration.
	loops []ast.Node
}

func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	hasGoto := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok.String() == "goto" {
			hasGoto = true
		}
		return true
	})
	if hasGoto {
		return
	}
	w := &cwalker{pass: pass}
	w.walkStmts(body.List, closedSet{})
}

// walkStmts walks a statement list, mutating and returning the closed
// set, plus whether control cannot fall off the end.
func (w *cwalker) walkStmts(stmts []ast.Stmt, set closedSet) (closedSet, bool) {
	for _, s := range stmts {
		var diverged bool
		set, diverged = w.walkStmt(s, set)
		if diverged {
			return set, true
		}
	}
	return set, false
}

func (w *cwalker) walkStmt(s ast.Stmt, set closedSet) (closedSet, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if ch, ok := w.closeArg(call); ok {
				key := types.ExprString(ch)
				if set[key] {
					w.pass.Reportf(call.Pos(), "close of %s, which an earlier point on this path may already have closed (a second close panics)", key)
				}
				if len(w.loops) > 0 && !w.loopDependent(ch) {
					w.pass.Reportf(call.Pos(), "close of %s inside a loop runs on every iteration (the second close panics)", key)
				}
				set[key] = true
				return set, false
			}
			if vmlib.IsPanicCall(w.pass.TypesInfo, call) {
				return set, true
			}
		}
		return set, false

	case *ast.SendStmt:
		key := types.ExprString(s.Chan)
		if set[key] {
			w.pass.Reportf(s.Arrow, "send on %s, which some path may already have closed (a send on a closed channel panics)", key)
		}
		return set, false

	case *ast.AssignStmt:
		// Reassigning a channel variable revives it.
		for _, lhs := range s.Lhs {
			delete(set, types.ExprString(lhs))
		}
		return set, false

	case *ast.ReturnStmt:
		return set, true

	case *ast.BranchStmt:
		if s.Tok.String() == "fallthrough" {
			return set, false
		}
		// break/continue leave this statement list; the loop join
		// below already unions body outcomes conservatively.
		return set, true

	case *ast.BlockStmt:
		return w.walkStmts(s.List, set)

	case *ast.IfStmt:
		if s.Init != nil {
			set, _ = w.walkStmt(s.Init, set)
		}
		thenSet, thenDiv := w.walkStmts(s.Body.List, set.clone())
		elseSet, elseDiv := set.clone(), false
		if s.Else != nil {
			elseSet, elseDiv = w.walkStmt(s.Else, set.clone())
		}
		switch {
		case thenDiv && elseDiv:
			return set, true
		case thenDiv:
			return elseSet, false
		case elseDiv:
			return thenSet, false
		default:
			thenSet.union(elseSet)
			return thenSet, false
		}

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkBranches(s, set)

	case *ast.ForStmt:
		if s.Init != nil {
			set, _ = w.walkStmt(s.Init, set)
		}
		w.loops = append(w.loops, s)
		bodySet, _ := w.walkStmts(s.Body.List, set.clone())
		w.loops = w.loops[:len(w.loops)-1]
		set.union(bodySet)
		return set, false

	case *ast.RangeStmt:
		w.loops = append(w.loops, s)
		bodySet, _ := w.walkStmts(s.Body.List, set.clone())
		w.loops = w.loops[:len(w.loops)-1]
		set.union(bodySet)
		return set, false

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, set)

	case *ast.GoStmt, *ast.DeferStmt:
		return set, false // the closure's closes happen later, on its own walk

	default:
		return set, false
	}
}

// walkBranches handles switch/select: each case walks from a copy and
// the result is the union of the non-diverged outcomes (plus the
// fall-through when there is no default).
func (w *cwalker) walkBranches(s ast.Stmt, set closedSet) (closedSet, bool) {
	var bodies [][]ast.Stmt
	hasDefault := false
	var commStmts []ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			bodies = append(bodies, cc.Body)
			hasDefault = hasDefault || cc.List == nil
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			bodies = append(bodies, cc.Body)
			hasDefault = hasDefault || cc.List == nil
		}
	case *ast.SelectStmt:
		hasDefault = true // a select runs exactly one case; no fall-through
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				commStmts = append(commStmts, cc.Comm)
			}
			bodies = append(bodies, cc.Body)
		}
	}
	// A select's comm sends are checked against the incoming set.
	for _, cs := range commStmts {
		if send, ok := cs.(*ast.SendStmt); ok {
			if key := types.ExprString(send.Chan); set[key] {
				w.pass.Reportf(send.Arrow, "send on %s, which some path may already have closed (a send on a closed channel panics)", key)
			}
		}
	}
	out := closedSet{}
	any := false
	allDiverge := len(bodies) > 0
	for _, b := range bodies {
		bset, div := w.walkStmts(stripTrailingBreak(b), set.clone())
		if !div {
			out.union(bset)
			any = true
			allDiverge = false
		}
	}
	if !hasDefault {
		out.union(set)
		any = true
		allDiverge = false
	}
	if allDiverge {
		return set, true
	}
	if !any {
		return set, false
	}
	return out, false
}

// closeArg returns the operand of a builtin close call.
func (w *cwalker) closeArg(call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) != 1 {
		return nil, false
	}
	b, ok := w.pass.TypesInfo.Uses[id].(*types.Builtin)
	if !ok || b.Name() != "close" {
		return nil, false
	}
	return call.Args[0], true
}

// loopDependent reports whether the channel expression involves an
// identifier declared inside one of the enclosing loops (the range
// variable, or a variable created per iteration) — in which case each
// iteration closes a different channel and the loop close is fine.
func (w *cwalker) loopDependent(ch ast.Expr) bool {
	dep := false
	ast.Inspect(ch, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = w.pass.TypesInfo.Defs[id]
		}
		if obj == nil {
			return true
		}
		for _, loop := range w.loops {
			if obj.Pos() >= loop.Pos() && obj.Pos() <= loop.End() {
				dep = true
				return false
			}
		}
		return true
	})
	return dep
}

func stripTrailingBreak(b []ast.Stmt) []ast.Stmt {
	if n := len(b); n > 0 {
		if br, ok := b[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "break" && br.Label == nil {
			return b[:n-1]
		}
	}
	return b
}

// checkCaptures reports go/defer closures inside loops that read a
// variable declared outside the loop while the loop body keeps
// writing it outside the closure.
func checkCaptures(pass *framework.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // inner literals run their own checkCaptures
		}
		var loopBody *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			loopBody = loop.Body
		case *ast.RangeStmt:
			loopBody = loop.Body
		default:
			return true
		}
		checkLoopCaptures(pass, n, loopBody)
		return true
	})
}

func checkLoopCaptures(pass *framework.Pass, loop ast.Node, body *ast.BlockStmt) {
	// Variables the loop body writes outside any closure, declared
	// outside the loop. (Per-iteration declarations and range
	// variables are new objects each iteration under Go ≥ 1.22.)
	writes := map[*types.Var]bool{}
	recordWrite := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		obj, _ := pass.TypesInfo.Uses[id].(*types.Var)
		if obj == nil {
			return
		}
		if obj.Pos() < loop.Pos() || obj.Pos() > loop.End() {
			writes[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				recordWrite(lhs)
			}
		case *ast.IncDecStmt:
			recordWrite(n.X)
		}
		return true
	})
	if len(writes) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		var lit *ast.FuncLit
		var deferred bool
		switch n := n.(type) {
		case *ast.GoStmt:
			lit, _ = ast.Unparen(n.Call.Fun).(*ast.FuncLit)
		case *ast.DeferStmt:
			lit, _ = ast.Unparen(n.Call.Fun).(*ast.FuncLit)
			deferred = true
		default:
			return true
		}
		if lit == nil {
			return true
		}
		reported := map[*types.Var]bool{}
		ast.Inspect(lit.Body, func(inner ast.Node) bool {
			id, ok := inner.(*ast.Ident)
			if !ok {
				return true
			}
			obj, _ := pass.TypesInfo.Uses[id].(*types.Var)
			if obj == nil || !writes[obj] || reported[obj] {
				return true
			}
			reported[obj] = true
			if deferred {
				pass.Reportf(id.Pos(),
					"deferred closure captures %s, which the loop keeps writing; every deferred call will observe only the final value — pass it as an argument instead", id.Name)
			} else {
				pass.Reportf(id.Pos(),
					"go closure captures %s, which the loop body writes on every iteration; the goroutine's read races with later iterations — pass it as an argument instead", id.Name)
			}
			return true
		})
		return false // the literal's own loops run their own checkCaptures
	})
}
