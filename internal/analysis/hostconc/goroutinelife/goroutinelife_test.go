package goroutinelife_test

import (
	"path/filepath"
	"strings"
	"testing"

	"vmprim/internal/analysis/analysistest"
	"vmprim/internal/analysis/hostconc/goroutinelife"
)

func TestGoroutineLife(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "..", "testdata"), goroutinelife.Analyzer,
		"vmprim/internal/serve/hcgo")
}

// TestSuppressionAudit: the reasoned //lint:allow over the real
// daemon-lifetime goroutine survives as used, while the directive
// whose leak was fixed is reported stale.
func TestSuppressionAudit(t *testing.T) {
	res, _ := analysistest.Result(t, filepath.Join("..", "..", "testdata"), goroutinelife.Analyzer,
		"vmprim/internal/serve/hcallow", true)

	if len(res.Findings) != 1 {
		t.Fatalf("want exactly the stale-directive finding, got %v", res.Findings)
	}
	fd := res.Findings[0]
	if fd.Analyzer != "directive" || !strings.Contains(fd.Message, "suppresses no diagnostic") {
		t.Errorf("unexpected finding: %s", fd)
	}

	if len(res.Suppressions) != 2 {
		t.Fatalf("want 2 audited suppressions, got %+v", res.Suppressions)
	}
	for _, s := range res.Suppressions {
		if s.Analyzer != "goroutinelife" || s.Reason == "" {
			t.Errorf("suppression missing analyzer or reason: %+v", s)
		}
	}
	if !res.Suppressions[0].Used {
		t.Errorf("directive over the real daemon goroutine should be audited used: %+v", res.Suppressions[0])
	}
	if res.Suppressions[1].Used {
		t.Errorf("directive over the fixed goroutine should be audited stale: %+v", res.Suppressions[1])
	}
}
