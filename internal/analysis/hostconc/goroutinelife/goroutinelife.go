// Package goroutinelife requires every go statement in the
// host-concurrent packages to carry a termination obligation — the
// static version of the leakcheck test helper's runtime assertion. A
// goroutine a long-lived daemon spawns must provably stop: the
// executor workers exit when the queue channel closes, the submit
// workers when the shared counter runs out and the WaitGroup collects
// them. A goroutine with no such obligation outlives every run and
// accumulates — the leak class that kills servers slowly.
//
// A spawned body discharges the obligation if it (or a same-package
// function it calls, transitively):
//
//   - receives from a done-signal channel — any chan struct{}, which
//     is also what ctx.Done() returns — in a select case or a direct
//     receive;
//   - calls sync.WaitGroup.Done, tying it to a collected Add/Wait
//     pair;
//   - ranges over a channel, terminating when the owner closes it.
//
// Anything else — including a go statement whose callee lives outside
// the package, where this analyzer cannot look — is reported, and the
// escape hatch is a reasoned //lint:allow goroutinelife directive:
// the two legitimate daemon-lifetime goroutines in cmd/vmprimd and
// cmd/vmload (http.Server.Serve adapters whose termination is the
// listener's Close) document themselves exactly that way.
package goroutinelife

import (
	"go/ast"
	"go/token"
	"go/types"

	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/hostconc"
	"vmprim/internal/analysis/vmlib"
)

// Analyzer is the goroutinelife entry point.
var Analyzer = &framework.Analyzer{
	Name: "goroutinelife",
	Doc:  "require every go statement to carry a termination obligation (done channel, WaitGroup, or reasoned allow)",
	Run:  run,
}

func run(pass *framework.Pass) (any, error) {
	// Summarize which local functions discharge a termination
	// obligation, transitively: `go consume(ch)` is fine when consume
	// ranges over the channel.
	bodies := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		if vmlib.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					bodies[obj] = fn
				}
			}
		}
	}
	terminates := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for obj, fn := range bodies {
			if !terminates[obj] && discharges(pass, terminates, fn.Body) {
				terminates[obj] = true
				changed = true
			}
		}
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hostconc.InDiagScope(pass, fn.Pos()) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				check(pass, terminates, bodies, g)
				return true
			})
		}
	}
	return nil, nil
}

func check(pass *framework.Pass, terminates map[*types.Func]bool, bodies map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if !discharges(pass, terminates, lit.Body) {
			pass.Reportf(g.Pos(),
				"goroutine has no termination obligation: select on a done channel, pair it with a sync.WaitGroup Done, or annotate //lint:allow goroutinelife <reason>")
		}
		return
	}
	f := vmlib.Callee(pass.TypesInfo, g.Call)
	if f != nil {
		if _, local := bodies[f]; local {
			if !terminates[f] {
				pass.Reportf(g.Pos(),
					"goroutine has no termination obligation: %s neither receives from a done channel nor signals a sync.WaitGroup; add one or annotate //lint:allow goroutinelife <reason>", f.Name())
			}
			return
		}
	}
	what := "a function value"
	if f != nil {
		what = f.FullName()
	}
	pass.Reportf(g.Pos(),
		"goroutine runs %s, whose termination this analyzer cannot prove; wrap it in a closure with a done-channel select or annotate //lint:allow goroutinelife <reason>", what)
}

// discharges reports whether body contains a termination obligation
// under the current summaries: a receive from a done-signal channel,
// a WaitGroup.Done, a range over a channel, or a call to a local
// function already known to discharge one. Nested literals are
// included — a helper closure carrying the done-select is still this
// goroutine's exit path.
func discharges(pass *framework.Pass, terminates map[*types.Func]bool, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && hostconc.IsDoneChan(pass.TypesInfo.TypeOf(n.X)) {
				found = true
			}
		case *ast.RangeStmt:
			if hostconc.IsChan(pass.TypesInfo.TypeOf(n.X)) {
				found = true
			}
		case *ast.CallExpr:
			f := vmlib.Callee(pass.TypesInfo, n)
			if f == nil {
				return true
			}
			if vmlib.IsMethod(f, "sync", "WaitGroup", "Done") || terminates[f] {
				found = true
			}
		}
		return !found
	})
	return found
}
