// Package lockdiscipline statically proves three mutex contracts over
// the host-concurrent packages (serve, metrics, the hypercube pool and
// stream files, vmprimd, vmload):
//
//   - every Lock has a matching Unlock on every control-flow path —
//     the same symbolic engine spanbalance runs over BeginSpan/EndSpan,
//     here one walk per distinct mutex of the function;
//   - no path re-acquires a mutex it already holds, directly or
//     through a same-package call chain (hostconc's "acquires" fact):
//     sync.Mutex is not reentrant, so a double acquire self-deadlocks;
//   - no *blocking* operation runs while a mutex is held — channel
//     sends/receives outside a select with a default, selects without
//     a default, network I/O, Machine.Run, WaitGroup waits — directly
//     or through any call hostconc's "mayBlock" fact classifies. This
//     is the liveness contract the SSE broadcaster documents ("must
//     never block" under b.mu): a blocked lock holder stalls every
//     other goroutine that touches the same mutex, and on the serving
//     plane that is the whole daemon.
//
// The walk mirrors spanbalance: per-path depth/credit counters with
// divergence on return/panic, branch agreement across if/switch/select
// arms, loop-body neutrality, and the defer-in-a-loop trap. Function
// literals are walked independently — a closure's locks balance
// against its own body. Deferred calls other than the mutex ops
// themselves are not scanned for blocking operations: whether a lock
// is still held when a defer fires is path-dependent, and hostconc's
// interprocedural summary already catches the caller-side version.
//
// When a function locks exactly once at its top level and never
// unlocks, the unbalanced-exit diagnostics carry a suggested fix that
// inserts the idiomatic `defer x.Unlock()`; vmlint -fix applies it.
package lockdiscipline

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/hostconc"
	"vmprim/internal/analysis/vmlib"
)

// Analyzer is the lockdiscipline entry point.
var Analyzer = &framework.Analyzer{
	Name:     "lockdiscipline",
	Doc:      "check Lock/Unlock balance, double acquires and blocking operations under held mutexes",
	Requires: []*framework.Analyzer{hostconc.Analyzer},
	Run:      run,
}

func run(pass *framework.Pass) (any, error) {
	res := pass.ResultOf[hostconc.Analyzer].(*hostconc.Result)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hostconc.InDiagScope(pass, fn.Pos()) {
				continue
			}
			checkFunc(pass, res, fn.Body)
			// Function literals get their own independent walk: a
			// closure's locks balance against its own body, not its
			// lexical surroundings.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFunc(pass, res, lit.Body)
				}
				return true
			})
		}
	}
	return nil, nil
}

// lockSite identifies one mutex a function touches.
type lockSite struct {
	key     string // receiver-expression text, e.g. "b.mu" — the walk identity
	typeKey string // cross-function key from hostconc.MutexKey, e.g. "broadcaster.mu"
	root    string // receiver-path text, e.g. "b", for matching call receivers
}

// checkFunc runs one symbolic walk per distinct mutex the body
// touches (lock sites inside nested literals belong to the literals'
// own walks).
func checkFunc(pass *framework.Pass, res *hostconc.Result, body *ast.BlockStmt) {
	hasGoto := false
	sites := map[string]lockSite{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if n.Tok.String() == "goto" {
				hasGoto = true
			}
		case *ast.CallExpr:
			if mx, _, ok := hostconc.MutexOp(pass.TypesInfo, n); ok {
				key := types.ExprString(mx)
				if _, seen := sites[key]; !seen {
					tk, root := hostconc.MutexKey(pass.TypesInfo, mx)
					sites[key] = lockSite{key: key, typeKey: tk, root: root}
				}
			}
		}
		return true
	})
	if hasGoto {
		return // a function containing goto cannot be verified structurally
	}
	keys := make([]string, 0, len(sites))
	for k := range sites {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w := &walker{pass: pass, res: res, site: sites[k], fix: deferFix(pass, body, k)}
		st, diverged := w.walkStmts(body.List, state{})
		if diverged {
			continue
		}
		switch {
		case st.depth > st.credits:
			w.reportOpen(body.Rbrace,
				"function ends with %s still locked (Lock without a matching Unlock)", k)
		case st.depth < st.credits:
			pass.Reportf(body.Rbrace,
				"deferred Unlock of %s fires with the mutex already unlocked on this path", k)
		}
	}
}

// deferFix builds the "insert defer x.Unlock() after the Lock" fix
// when the body's usage is the simple forgotten-defer shape: exactly
// one Lock of this mutex, as a top-level statement, and no Unlock of
// it anywhere. Anything more structured has no single right repair.
func deferFix(pass *framework.Pass, body *ast.BlockStmt, key string) *framework.SuggestedFix {
	locks, unlocks := 0, 0
	var lock *ast.ExprStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if mx, acquire, ok := hostconc.MutexOp(pass.TypesInfo, call); ok && types.ExprString(mx) == key {
				if acquire {
					locks++
				} else {
					unlocks++
				}
			}
		}
		return true
	})
	if locks != 1 || unlocks != 0 {
		return nil
	}
	for _, s := range body.List {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if mx, acquire, ok := hostconc.MutexOp(pass.TypesInfo, call); ok && acquire && types.ExprString(mx) == key {
			lock = es
			break
		}
	}
	if lock == nil {
		return nil // the one Lock is nested in inner control flow
	}
	pos := pass.Fset.Position(lock.Pos())
	indent := strings.Repeat("\t", pos.Column-1) // gofmt indents with tabs
	text := "\n" + indent + "defer " + key + ".Unlock()"
	return &framework.SuggestedFix{
		Message:   "defer the matching Unlock",
		TextEdits: []framework.TextEdit{{Pos: lock.End(), End: token.NoPos, NewText: []byte(text)}},
	}
}

// state is the symbolic lock bookkeeping at one program point.
type state struct {
	depth   int // times this mutex is held by non-deferred Locks
	credits int // deferred Unlocks registered so far
}

// walker carries the per-function, per-mutex check context.
type walker struct {
	pass *framework.Pass
	res  *hostconc.Result
	site lockSite
	fix  *framework.SuggestedFix
	// loopDepth holds the entry depth of each enclosing loop, for
	// validating break/continue.
	loopDepth []int
	inLoop    int
}

func (w *walker) reportOpen(pos token.Pos, format string, args ...any) {
	d := framework.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)}
	if w.fix != nil {
		d.SuggestedFixes = []framework.SuggestedFix{*w.fix}
	}
	w.pass.Report(d)
}

// scanLocked audits one leaf statement (or expression) reached with
// the mutex held: blocking operations and calls that re-acquire the
// held mutex are reported.
func (w *walker) scanLocked(n ast.Node, st state) {
	if st.depth <= 0 {
		return
	}
	w.res.BlockOps(n, func(pos token.Pos, desc, _ string) {
		w.pass.Reportf(pos, "%s while %s is held (a blocked holder stalls every contender; release the lock first or make the operation non-blocking)",
			desc, w.site.key)
	})
	if w.site.typeKey == "" {
		return
	}
	hostconc.InspectSync(n, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, _, isMutexOp := hostconc.MutexOp(w.pass.TypesInfo, call); isMutexOp {
			return true // ops on our own mutex are the walk's business, on others layered locking
		}
		f := vmlib.Callee(w.pass.TypesInfo, call)
		s := w.res.Summary(f)
		if s == nil {
			return true
		}
		for _, k := range s.Acquires {
			if k != w.site.typeKey {
				continue
			}
			// A package-level mutex needs no receiver match, but only
			// within the declaring package ("#mu" keys from different
			// packages are different mutexes). A field mutex must be
			// reached through the same receiver path.
			if strings.HasPrefix(k, "#") {
				if f.Pkg() != w.pass.Pkg {
					continue
				}
			} else if receiverText(call) != w.site.root {
				continue
			}
			w.pass.Reportf(call.Pos(), "call to %s acquires %s, which is already held on this path (sync.Mutex is not reentrant: this self-deadlocks)",
				f.Name(), w.site.key)
		}
		return true
	})
}

// receiverText renders the receiver expression of a method call, for
// matching against the held mutex's root ("b" of "b.mu").
func receiverText(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X)
	}
	return ""
}

// ourOp classifies call as a Lock/Unlock of this walk's mutex.
func (w *walker) ourOp(call *ast.CallExpr) (acquire, ok bool) {
	mx, acquire, isOp := hostconc.MutexOp(w.pass.TypesInfo, call)
	if !isOp || types.ExprString(mx) != w.site.key {
		return false, false
	}
	return acquire, true
}

// walkStmts runs the symbolic walk over a statement list, returning
// the resulting state and whether control cannot fall off the end.
func (w *walker) walkStmts(stmts []ast.Stmt, st state) (state, bool) {
	for _, s := range stmts {
		var diverged bool
		st, diverged = w.walkStmt(s, st)
		if diverged {
			return st, true
		}
	}
	return st, false
}

func (w *walker) walkStmt(s ast.Stmt, st state) (state, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if acquire, ok := w.ourOp(call); ok {
				if acquire {
					if st.depth > 0 {
						w.pass.Reportf(call.Pos(), "Lock of %s while already held on this path (sync.Mutex is not reentrant: this self-deadlocks)", w.site.key)
					}
					st.depth++
				} else {
					if st.depth <= 0 && st.credits <= 0 {
						w.pass.Reportf(call.Pos(), "Unlock of %s without a matching Lock on this path", w.site.key)
					} else {
						st.depth--
					}
				}
				return st, false
			}
			if vmlib.IsPanicCall(w.pass.TypesInfo, call) {
				return st, true // the goroutine unwinds; deferred unlocks fire
			}
		}
		w.scanLocked(s, st)
		return st, false

	case *ast.DeferStmt:
		if acquire, ok := w.ourOp(s.Call); ok && !acquire {
			if w.inLoop > 0 {
				w.pass.Reportf(s.Pos(),
					"deferred Unlock of %s inside a loop runs at function return, not at iteration end", w.site.key)
				return st, false
			}
			st.credits++
			return st, false
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// defer func() { ...Unlock()... }(): count the literal's
			// top-level Unlocks of our mutex as credits.
			for _, inner := range lit.Body.List {
				if es, ok := inner.(*ast.ExprStmt); ok {
					if call, ok := es.X.(*ast.CallExpr); ok {
						if acquire, ok := w.ourOp(call); ok && !acquire {
							if w.inLoop > 0 {
								w.pass.Reportf(s.Pos(),
									"deferred Unlock of %s inside a loop runs at function return, not at iteration end", w.site.key)
							} else {
								st.credits++
							}
						}
					}
				}
			}
		}
		return st, false // other defers run at exit; path-dependent, not scanned

	case *ast.ReturnStmt:
		w.scanLocked(s, st)
		if st.depth > st.credits {
			w.reportOpen(s.Pos(),
				"return leaves %s locked on this path (Unlock is not deferred and this exit misses it)", w.site.key)
		}
		return st, true

	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		w.scanLocked(s.Cond, st)
		thenSt, thenDiv := w.walkStmts(s.Body.List, st)
		elseSt, elseDiv := st, false
		if s.Else != nil {
			elseSt, elseDiv = w.walkStmt(s.Else, st)
		}
		switch {
		case thenDiv && elseDiv:
			return st, true
		case thenDiv:
			return elseSt, false
		case elseDiv:
			return thenSt, false
		default:
			if thenSt != elseSt {
				w.pass.Reportf(s.Pos(),
					"lock state of %s differs between the branches of this if (one side is missing a Lock or Unlock)", w.site.key)
			}
			return thenSt, false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		w.scanLocked(s.Cond, st)
		w.pushLoop(st)
		bodySt, _ := w.walkStmts(s.Body.List, st)
		w.popLoop()
		if bodySt.depth != st.depth {
			w.pass.Reportf(s.Pos(),
				"loop body changes the hold depth of %s by %d per iteration", w.site.key, bodySt.depth-st.depth)
		}
		return st, false

	case *ast.RangeStmt:
		if st.depth > 0 && hostconc.IsChan(w.pass.TypesInfo.TypeOf(s.X)) {
			w.pass.Reportf(s.For, "a range over channel %s while %s is held (a blocked holder stalls every contender; release the lock first or make the operation non-blocking)",
				types.ExprString(s.X), w.site.key)
		}
		w.scanLocked(s.X, st)
		w.pushLoop(st)
		bodySt, _ := w.walkStmts(s.Body.List, st)
		w.popLoop()
		if bodySt.depth != st.depth {
			w.pass.Reportf(s.Pos(),
				"loop body changes the hold depth of %s by %d per iteration", w.site.key, bodySt.depth-st.depth)
		}
		return st, false

	case *ast.BranchStmt:
		// break/continue jump to code expecting the loop's entry
		// depth. (goto was excluded up front.)
		if n := len(w.loopDepth); n > 0 && st.depth != w.loopDepth[n-1] {
			w.pass.Reportf(s.Pos(),
				"%s jumps with %s at a different hold depth than the enclosing loop's entry", s.Tok, w.site.key)
		}
		return st, true

	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanLocked(s.Tag, st)
		}
		return w.walkCases(s.Pos(), st, caseBodies(s.Body), hasDefaultClause(s.Body))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = w.walkStmt(s.Init, st)
		}
		return w.walkCases(s.Pos(), st, caseBodies(s.Body), hasDefaultClause(s.Body))

	case *ast.SelectStmt:
		if st.depth > 0 && !hostconc.SelectHasDefault(s) {
			w.pass.Reportf(s.Select,
				"a select with no default case while %s is held (a blocked holder stalls every contender; release the lock first or make the operation non-blocking)", w.site.key)
		}
		var bodies [][]ast.Stmt
		for _, c := range s.Body.List {
			bodies = append(bodies, c.(*ast.CommClause).Body)
		}
		// A select blocks until a case runs: there is no implicit
		// fall-through path, so treat like a switch with a default.
		return w.walkCases(s.Pos(), st, bodies, true)

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)

	case *ast.GoStmt:
		w.scanLocked(s, st) // argument expressions evaluate synchronously
		return st, false

	default:
		// Leaf statements — assignments, declarations, sends,
		// increments: scan them for blocking operations under the lock.
		w.scanLocked(s, st)
		return st, false
	}
}

// walkCases applies the branch-agreement rule to switch/select case
// bodies, exactly as spanbalance does.
func (w *walker) walkCases(pos token.Pos, st state, bodies [][]ast.Stmt, hasDefault bool) (state, bool) {
	outs := make([]state, 0, len(bodies)+1)
	allDiverge := len(bodies) > 0
	for _, b := range bodies {
		out, div := w.walkStmts(stripTrailingBreak(b), st)
		if !div {
			outs = append(outs, out)
			allDiverge = false
		}
	}
	if !hasDefault {
		outs = append(outs, st)
		allDiverge = false
	}
	for i := 1; i < len(outs); i++ {
		if outs[i] != outs[0] {
			w.pass.Reportf(pos,
				"lock state of %s differs between the cases of this switch", w.site.key)
			break
		}
	}
	if allDiverge {
		return st, true
	}
	if len(outs) > 0 {
		return outs[0], false
	}
	return st, false
}

func caseBodies(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		out = append(out, c.(*ast.CaseClause).Body)
	}
	return out
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// stripTrailingBreak drops a bare trailing break from a case body.
func stripTrailingBreak(b []ast.Stmt) []ast.Stmt {
	if n := len(b); n > 0 {
		if br, ok := b[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "break" && br.Label == nil {
			return b[:n-1]
		}
	}
	return b
}

func (w *walker) pushLoop(st state) {
	w.loopDepth = append(w.loopDepth, st.depth)
	w.inLoop++
}

func (w *walker) popLoop() {
	w.loopDepth = w.loopDepth[:len(w.loopDepth)-1]
	w.inLoop--
}
