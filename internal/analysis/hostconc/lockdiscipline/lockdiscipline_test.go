package lockdiscipline_test

import (
	"path/filepath"
	"testing"

	"vmprim/internal/analysis/analysistest"
	"vmprim/internal/analysis/hostconc/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "..", "testdata"), lockdiscipline.Analyzer,
		"vmprim/internal/serve/hclock")
}

// TestPoolFileScope: inside the hypercube package only machinepool.go
// and stream.go are host-concurrent; the identical violation in
// helper.go must stay silent.
func TestPoolFileScope(t *testing.T) {
	analysistest.Run(t, filepath.Join("..", "..", "testdata"), lockdiscipline.Analyzer,
		"vmprim/internal/hypercube/hcpool")
}

// TestSuggestedFixes validates the defer-Unlock insertion against the
// .golden file and proves applying it twice changes nothing.
func TestSuggestedFixes(t *testing.T) {
	analysistest.RunWithSuggestedFixes(t, filepath.Join("..", "..", "testdata"), lockdiscipline.Analyzer,
		"vmprim/internal/serve/hclockfix")
}

// TestCrossPackageFacts: the blocking classification of hcdep's
// helpers crosses the package boundary as hostconc facts; the
// diagnostics must appear with facts and vanish without them.
func TestCrossPackageFacts(t *testing.T) {
	testdata := filepath.Join("..", "..", "testdata")
	analysistest.Run(t, testdata, lockdiscipline.Analyzer, "vmprim/internal/serve/hcx")

	findings := analysistest.Findings(t, testdata, lockdiscipline.Analyzer,
		"vmprim/internal/serve/hcx", false)
	for _, f := range findings {
		t.Errorf("with facts disabled, cross-package diagnostic still reported: %s", f)
	}
}
