// Package hostconc is the base analyzer of the host-concurrency
// family: it computes, per package, which functions may *block* the
// calling goroutine (channel operations, selects without a default,
// network I/O, Machine.Run, WaitGroup waits — transitively through
// same-package calls) and which mutexes each function (transitively)
// acquires — and exports both summaries as a package fact, so they
// survive package boundaries.
//
// It reports no diagnostics of its own. lockdiscipline lists it in
// Requires and consumes its Result: a classifier that answers "can
// this call block?" and "which locks does this call take?" for local
// functions (summarized in this pass), for imported functions
// (summarized when their package was analyzed, carried here as
// facts), and for the directly-matched blocking entry points
// (WaitGroup.Wait, net/http writes, hypercube.Machine.Run).
//
// Cross-package flow is the point: serve's SSE handler writes frames
// through a helper that wraps fmt.Fprintf over an http.ResponseWriter,
// and the executor runs workloads through bench.RunSpec.RunOn, which
// hides Machine.Run two calls deep. Without facts the may-block
// summary stops at the package boundary and "blocking call while a
// mutex is held" silently misses exactly the interesting sites.
//
// Unlike the SPMD analyzers, summaries are computed for *every*
// package (any function anywhere can end up called under a lock), but
// the family's diagnostics are scoped to the host-concurrent code:
// internal/serve, internal/metrics, cmd/vmprimd, cmd/vmload, and the
// machinepool.go/stream.go files of internal/hypercube — the rest of
// the hypercube package is the virtual-time simulator, whose channel
// protocol is commverify's jurisdiction, not this family's.
package hostconc

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/vmlib"
)

// Analyzer is the hostconc entry point.
var Analyzer = &framework.Analyzer{
	Name:      "hostconc",
	Doc:       "summarize may-block and mutex-acquire behavior of functions (facts only, no diagnostics)",
	FactTypes: []framework.Fact{(*Fact)(nil)},
	Run:       run,
}

// FuncSummary is one function's host-concurrency summary.
type FuncSummary struct {
	// Name is the qualified name used in facts: "TypeName.Method" for
	// methods, the bare name for functions.
	Name string
	// Blocker, when non-empty, says why the function may block the
	// calling goroutine — the root cause, e.g. "a send on ch" or "a
	// network Write (net/http)", even when it is reached through a
	// chain of calls.
	Blocker string
	// Acquires lists the mutexes the function (transitively) locks,
	// as type-level keys: "TypeName.field" for struct-field mutexes,
	// "#name" for package-level ones.
	Acquires []string
}

// Fact is one package's summary: every function with a non-empty
// blocker or acquire set.
type Fact struct {
	Funcs []FuncSummary
}

// AFact marks Fact as a framework fact.
func (*Fact) AFact() {}

// InDiagScope reports whether the hostconc family reports diagnostics
// for the file holding pos: the serving plane and its load driver as
// whole packages (fixture packages beneath them included), plus the
// host-side pool/stream files of the hypercube package. Test files
// are excluded, as everywhere.
func InDiagScope(pass *framework.Pass, pos token.Pos) bool {
	if vmlib.IsTestFile(pass.Fset, pos) {
		return false
	}
	p := pass.Pkg.Path()
	switch {
	case vmlib.InScope(p, vmlib.ServePath, vmlib.MetricsPath, vmlib.VmprimdPath, vmlib.VmloadPath):
		return true
	case vmlib.InScope(p, vmlib.HypercubePath):
		base := filepath.Base(pass.Fset.Position(pos).Filename)
		return base == "machinepool.go" || base == "stream.go"
	}
	return false
}

// InspectSync walks node visiting only code that runs synchronously on
// the current goroutine: it descends into immediately-invoked function
// literals, but skips literal values that merely escape and the
// spawned call of a go statement (whose arguments are still evaluated
// synchronously, and are visited).
func InspectSync(node ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				InspectSync(a, visit)
			}
			return false
		case *ast.CallExpr:
			if !visit(n) {
				return false
			}
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				InspectSync(lit.Body, visit)
				for _, a := range n.Args {
					InspectSync(a, visit)
				}
				return false
			}
			return true
		}
		return visit(n)
	})
}

// MutexOp classifies call as a sync.Mutex/RWMutex acquire or release,
// returning the mutex-valued receiver expression.
func MutexOp(info *types.Info, call *ast.CallExpr) (mx ast.Expr, acquire, ok bool) {
	f := vmlib.Callee(info, call)
	if f == nil {
		return nil, false, false
	}
	switch f.Name() {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return nil, false, false
	}
	if !vmlib.IsMethod(f, "sync", "Mutex", f.Name()) && !vmlib.IsMethod(f, "sync", "RWMutex", f.Name()) {
		return nil, false, false
	}
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return nil, false, false // method value; no receiver expression to track
	}
	return sel.X, acquire, true
}

// MutexKey renders the mutex expression of a MutexOp as a type-level
// key usable across functions ("TypeName.field" for struct fields,
// "#name" for package-level vars, "TypeName.Mutex" for a promoted
// embedded mutex) plus the receiver-path text ("b" for b.mu) that
// lets a caller match the key against a specific instance. Local
// mutex variables have no cross-function identity and yield "".
func MutexKey(info *types.Info, mx ast.Expr) (typeKey, root string) {
	switch e := ast.Unparen(mx).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "#" + e.Name, ""
		}
		// s.Lock() on a struct embedding sync.Mutex: the receiver is
		// the struct itself.
		if named := derefNamed(info.TypeOf(e)); named != nil && !isSyncType(named) {
			return named.Obj().Name() + ".Mutex", types.ExprString(e)
		}
	case *ast.SelectorExpr:
		if named := derefNamed(info.TypeOf(e.X)); named != nil {
			return named.Obj().Name() + "." + e.Sel.Name, types.ExprString(e.X)
		}
	}
	return "", ""
}

func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func isSyncType(named *types.Named) bool {
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// IsChan reports whether t's underlying type is a channel.
func IsChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// IsDoneChan reports whether t is a done-signal channel: any-direction
// chan struct{} (which is also what context's Done() returns).
func IsDoneChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// SelectHasDefault reports whether sel carries a default clause.
func SelectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// Result is the classifier handed to dependent analyzers.
type Result struct {
	info *types.Info
	// local summarizes this package's functions.
	local map[*types.Func]*FuncSummary
	// imported holds summaries resolved from facts, keyed
	// "pkgpath:qualified".
	imported map[string]*FuncSummary
}

// Summary returns f's summary — local or fact-imported — or nil when
// nothing blocking or lock-acquiring is known about it.
func (r *Result) Summary(f *types.Func) *FuncSummary {
	if f == nil {
		return nil
	}
	if s, ok := r.local[f]; ok {
		return s
	}
	return r.imported[factKey(f)]
}

// ioVerbs are the method/function names that perform network I/O when
// they belong to net or net/http: writes flush through the kernel
// socket buffer, reads and accepts park until data arrives, and the
// client/server entry points do both.
var ioVerbs = map[string]bool{
	"Write": true, "WriteString": true, "WriteHeader": true, "Flush": true,
	"Read": true, "ReadFrom": true, "WriteTo": true, "Accept": true,
	"Serve": true, "ServeTLS": true, "ListenAndServe": true, "ListenAndServeTLS": true,
	"Shutdown": true, "Dial": true, "DialTimeout": true,
	"Do": true, "Get": true, "Head": true, "Post": true, "PostForm": true,
}

// BlockingCall reports why call may block the current goroutine, or
// ("", "") when it cannot tell. desc is the site message ("a call to
// writeSSE, which may block (a fmt.Fprintf to a network writer)");
// root is the underlying cause alone, suitable for storing in a
// summary without growing along call chains. sync.Mutex.Lock is
// deliberately *not* a blocker: waiting on a lock is layered locking,
// which the double-acquire check polices instead — this classifier
// targets unbounded waits on I/O and channel peers.
func (r *Result) BlockingCall(call *ast.CallExpr) (desc, root string) {
	f := vmlib.Callee(r.info, call)
	if f == nil {
		return "", ""
	}
	if d := knownBlocker(f); d != "" {
		return d, d
	}
	if d := r.netPrint(f, call); d != "" {
		return d, d
	}
	if s := r.Summary(f); s != nil && s.Blocker != "" {
		return "a call to " + qualifiedName(f) + ", which may block (" + s.Blocker + ")", s.Blocker
	}
	return "", ""
}

// knownBlocker matches the directly-known blocking entry points.
func knownBlocker(f *types.Func) string {
	if vmlib.IsMethod(f, "sync", "WaitGroup", "Wait") {
		return "a sync.WaitGroup Wait"
	}
	if vmlib.IsMethod(f, "sync", "Cond", "Wait") {
		return "a sync.Cond Wait"
	}
	if vmlib.IsMethod(f, vmlib.HypercubePath, "Machine", "Run") {
		return "a Machine.Run"
	}
	if vmlib.IsMethod(f, vmlib.HypercubePath, "Machine", "Close") {
		return "a Machine.Close"
	}
	pkg := f.Pkg()
	if pkg == nil {
		return ""
	}
	if pkg.Path() == "time" && f.Name() == "Sleep" {
		return "a time.Sleep"
	}
	if (pkg.Path() == "net" || vmlib.InScope(pkg.Path(), "net")) && ioVerbs[f.Name()] {
		return "a network " + f.Name() + " (" + pkg.Path() + ")"
	}
	return ""
}

// netPrint matches fmt print calls whose writer is a net or net/http
// type (the SSE frame writer's shape); a print into a socket parks
// with the socket.
func (r *Result) netPrint(f *types.Func, call *ast.CallExpr) string {
	if f.Pkg() == nil || f.Pkg().Path() != "fmt" || len(call.Args) == 0 {
		return ""
	}
	switch f.Name() {
	case "Fprint", "Fprintf", "Fprintln":
	default:
		return ""
	}
	named := derefNamed(r.info.TypeOf(call.Args[0]))
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	if p := named.Obj().Pkg().Path(); p == "net" || vmlib.InScope(p, "net") {
		return "a fmt." + f.Name() + " to a network writer"
	}
	return ""
}

// BlockOps visits every operation in node that can block the
// executing goroutine: channel sends and receives, ranges over
// channels, selects without a default, and calls BlockingCall
// classifies. Escaping function literals and spawned go calls are
// skipped (they run on other goroutines); the clauses of a select
// with a default are non-blocking by construction, so only their
// bodies are scanned.
func (r *Result) BlockOps(node ast.Node, visit func(pos token.Pos, desc, root string)) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			for _, a := range n.Call.Args {
				r.BlockOps(a, visit)
			}
			return false
		case *ast.SelectStmt:
			if !SelectHasDefault(n) {
				d := "a select with no default case"
				visit(n.Select, d, d)
			}
			for _, c := range n.Body.List {
				for _, s := range c.(*ast.CommClause).Body {
					r.BlockOps(s, visit)
				}
			}
			return false
		case *ast.SendStmt:
			d := "a send on " + types.ExprString(n.Chan)
			visit(n.Arrow, d, d)
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				d := "a receive from " + types.ExprString(n.X)
				visit(n.OpPos, d, d)
			}
			return true
		case *ast.RangeStmt:
			if IsChan(r.info.TypeOf(n.X)) {
				d := "a range over channel " + types.ExprString(n.X)
				visit(n.For, d, d)
			}
			return true
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
				r.BlockOps(lit.Body, visit)
				for _, a := range n.Args {
					r.BlockOps(a, visit)
				}
				return false
			}
			if desc, root := r.BlockingCall(n); desc != "" {
				visit(n.Pos(), desc, root)
			}
			return true
		}
		return true
	})
}

// factKey is the cross-package lookup key of a function.
func factKey(f *types.Func) string {
	if f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path() + ":" + qualifiedName(f)
}

// qualifiedName renders a function as it appears in a Fact:
// "TypeName.Method" for methods, the bare name for functions.
func qualifiedName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + f.Name()
		}
	}
	return f.Name()
}

func (s *FuncSummary) acquires(key string) bool {
	for _, k := range s.Acquires {
		if k == key {
			return true
		}
	}
	return false
}

// inModule reports whether path is one of this module's packages.
// Summaries exist only for them: the go vet driver also runs facts
// analyzers over the standard library's source units, and summarizing
// those drowns the classifier in runtime internals (every allocation
// "may block" because the GC's start-the-world handshake receives from
// a channel). The standard library is modeled solely by the explicit
// knownBlocker/netPrint entries, which name the operations that block
// on behalf of the *caller*.
func inModule(path string) bool {
	return path == "vmprim" || strings.HasPrefix(path, "vmprim/")
}

func run(pass *framework.Pass) (any, error) {
	res := &Result{
		info:     pass.TypesInfo,
		local:    make(map[*types.Func]*FuncSummary),
		imported: make(map[string]*FuncSummary),
	}
	if !inModule(pass.Pkg.Path()) {
		return res, nil
	}

	// Resolve every visible fact. The store holds the facts of all
	// packages analyzed before this one (standalone) or reachable
	// through dependency vetx files (vet driver). Facts from outside
	// the module are skipped for the same reason run skips computing
	// them — defense against a store populated by an older binary.
	for _, pf := range pass.AllPackageFacts() {
		if !inModule(pf.Path) {
			continue
		}
		fact := pf.Fact.(*Fact)
		for i := range fact.Funcs {
			s := fact.Funcs[i]
			res.imported[pf.Path+":"+s.Name] = &s
		}
	}

	// Collect this package's function bodies (test files excluded, as
	// everywhere).
	bodies := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		if vmlib.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					bodies[obj] = fn
					res.local[obj] = &FuncSummary{Name: qualifiedName(obj)}
				}
			}
		}
	}

	// Direct acquires, then one fixpoint growing blockers and
	// transitive acquires together: a caller of a blocking helper
	// blocks, a caller of a locking helper locks.
	for obj, fn := range bodies {
		s := res.local[obj]
		InspectSync(fn.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if mx, acquire, ok := MutexOp(pass.TypesInfo, call); ok && acquire {
					if tk, _ := MutexKey(pass.TypesInfo, mx); tk != "" && !s.acquires(tk) {
						s.Acquires = append(s.Acquires, tk)
					}
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for obj, fn := range bodies {
			s := res.local[obj]
			if s.Blocker == "" {
				res.BlockOps(fn.Body, func(_ token.Pos, _, root string) {
					if s.Blocker == "" {
						s.Blocker = root
						changed = true
					}
				})
			}
			InspectSync(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				cs := res.Summary(vmlib.Callee(pass.TypesInfo, call))
				if cs == nil || cs == s {
					return true
				}
				for _, k := range cs.Acquires {
					if !s.acquires(k) {
						s.Acquires = append(s.Acquires, k)
						changed = true
					}
				}
				return true
			})
		}
	}

	// Export the summary for importers. Empty summaries are not
	// exported: absence and emptiness mean the same thing.
	fact := &Fact{}
	for _, s := range res.local {
		if s.Blocker == "" && len(s.Acquires) == 0 {
			continue
		}
		sort.Strings(s.Acquires)
		fact.Funcs = append(fact.Funcs, *s)
	}
	sort.Slice(fact.Funcs, func(i, j int) bool { return fact.Funcs[i].Name < fact.Funcs[j].Name })
	if len(fact.Funcs) > 0 {
		pass.ExportPackageFact(fact)
	}
	return res, nil
}
