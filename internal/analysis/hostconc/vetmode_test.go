package hostconc_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"vmprim/internal/analysis/framework"
	"vmprim/internal/analysis/hostconc"
	"vmprim/internal/analysis/hostconc/goroutinelife"
	"vmprim/internal/analysis/hostconc/lockdiscipline"
)

// These tests drive framework.RunUnit exactly the way `go vet
// -vettool=vmlint` does — one process-shaped invocation per package
// with hand-written cfg files — and prove that the seeded hostconc
// violations are caught in vet mode too: the goroutine leak directly,
// and the blocking-call-under-lock through a hostconc fact carried in
// a dependency's vetx file.

// vetCfg mirrors the JSON shape the go command writes for a vet unit
// (the framework's own type is unexported; the protocol is the JSON).
type vetCfg struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
}

func writeCfg(t *testing.T, dir string, cfg vetCfg) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, cfg.ID+".cfg")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func hostconcAnalyzers() []*framework.Analyzer {
	return []*framework.Analyzer{hostconc.Analyzer, lockdiscipline.Analyzer, goroutinelife.Analyzer}
}

// TestVetModeGoroutineLeak: an import-free unit with a seeded leak is
// reported through the unit protocol.
func TestVetModeGoroutineLeak(t *testing.T) {
	tmp := t.TempDir()
	src := `package hcvleak

func Spin(ch chan int) {
	go func() {
		for {
			_ = <-ch
		}
	}()
}
`
	if err := os.WriteFile(filepath.Join(tmp, "leak.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := writeCfg(t, tmp, vetCfg{
		ID: "hcvleak", Compiler: "gc", Dir: tmp,
		ImportPath: "vmprim/internal/serve/hcvleak",
		GoFiles:    []string{"leak.go"},
	})
	res, vetxOnly, err := framework.RunUnit(cfg, hostconcAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	if vetxOnly {
		t.Fatal("leak unit: want findings, got vetxOnly")
	}
	if len(res.Findings) != 1 || res.Findings[0].Analyzer != "goroutinelife" ||
		!strings.Contains(res.Findings[0].Message, "no termination obligation") {
		t.Fatalf("want the seeded goroutine leak, got %v", res.Findings)
	}
}

// stdExports asks the go command for the export data of a standard
// package and its dependencies, as the vet driver would hand it over.
func stdExports(t *testing.T, pkgs ...string) map[string]string {
	t.Helper()
	args := append([]string{"list", "-e", "-export", "-deps",
		"-f", "{{.ImportPath}}\t{{.Export}}"}, pkgs...)
	out, err := exec.Command("go", args...).Output()
	if err != nil {
		t.Skipf("go list -export unavailable: %v", err)
	}
	exports := make(map[string]string)
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		path, file, ok := strings.Cut(sc.Text(), "\t")
		if ok && file != "" {
			exports[path] = file
		}
	}
	return exports
}

// TestVetModeSendUnderLockFacts: the dependency's may-block summary
// travels through its vetx file; the importer's unit reports both the
// direct send under the lock and the blocking call classified only by
// the imported fact. Without the vetx handoff the fact-based finding
// degrades away while the direct one survives.
func TestVetModeSendUnderLockFacts(t *testing.T) {
	tmp := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(tmp, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	const depPath = "vmprim/internal/other/hcvdep"
	write("dep.go", `package hcvdep

func Drain(ch chan int) {
	for range ch {
	}
}
`)
	write("main.go", `package hcvmain

import (
	"sync"

	"vmprim/internal/other/hcvdep"
)

type box struct {
	mu sync.Mutex
	ch chan int
}

func (b *box) bad() {
	b.mu.Lock()
	b.ch <- 1
	hcvdep.Drain(b.ch)
	b.mu.Unlock()
}
`)

	// Compile the dependency so the importing unit can type-check, and
	// collect the standard library's export data the same way the vet
	// driver does.
	depObj := filepath.Join(tmp, "hcvdep.a")
	cmd := exec.Command("go", "tool", "compile", "-p", depPath, "-o", depObj, "dep.go")
	cmd.Dir = tmp
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go tool compile dep.go: %v\n%s", err, b)
	}
	pkgFiles := stdExports(t, "sync")
	pkgFiles[depPath] = depObj

	// Unit 1: the dependency, facts only.
	depVetx := filepath.Join(tmp, "hcvdep.vetx")
	cfgDep := writeCfg(t, tmp, vetCfg{
		ID: "hcvdep", Compiler: "gc", Dir: tmp, ImportPath: depPath,
		GoFiles: []string{"dep.go"}, VetxOnly: true, VetxOutput: depVetx,
	})
	res, vetxOnly, err := framework.RunUnit(cfgDep, hostconcAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	if !vetxOnly || len(res.Findings) != 0 {
		t.Fatalf("dep unit: want facts-only and no findings, got %v", res.Findings)
	}

	// Unit 2: the importer, handed the dependency's vetx.
	cfgMain := writeCfg(t, tmp, vetCfg{
		ID: "hcvmain", Compiler: "gc", Dir: tmp,
		ImportPath:  "vmprim/internal/serve/hcvmain",
		GoFiles:     []string{"main.go"},
		ImportMap:   map[string]string{"sync": "sync", depPath: depPath},
		PackageFile: pkgFiles,
		PackageVetx: map[string]string{depPath: depVetx},
	})
	res, _, err = framework.RunUnit(cfgMain, hostconcAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	var sawSend, sawCall bool
	for _, f := range res.Findings {
		if f.Analyzer != "lockdiscipline" {
			t.Errorf("unexpected analyzer: %s", f)
		}
		if strings.Contains(f.Message, "a send on b.ch while b.mu is held") {
			sawSend = true
		}
		if strings.Contains(f.Message, "a call to Drain, which may block (a range over channel ch) while b.mu is held") {
			sawCall = true
		}
	}
	if !sawSend || !sawCall || len(res.Findings) != 2 {
		t.Fatalf("want the send and the fact-classified call under the lock, got %v", res.Findings)
	}

	// Control: without the vetx handoff the fact-based finding degrades
	// away; the direct send is still caught.
	cfgNoFacts := writeCfg(t, tmp, vetCfg{
		ID: "hcvmain-nofacts", Compiler: "gc", Dir: tmp,
		ImportPath:  "vmprim/internal/serve/hcvmain",
		GoFiles:     []string{"main.go"},
		ImportMap:   map[string]string{"sync": "sync", depPath: depPath},
		PackageFile: pkgFiles,
	})
	res, _, err = framework.RunUnit(cfgNoFacts, hostconcAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 1 || !strings.Contains(res.Findings[0].Message, "a send on b.ch") {
		t.Fatalf("without facts: want only the direct send finding, got %v", res.Findings)
	}
}
