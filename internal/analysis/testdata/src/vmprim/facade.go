// Package vmprim is a typecheck-only stub of the real public facade:
// type aliases onto the internal packages plus package-level kernel
// re-exports. vmlib treats package-level vmprim functions whose first
// parameter is a *Proc or *Env as collectives, which is what brings
// example and command code into the analyzers' scope; the exfix
// fixture depends on exactly that.
package vmprim

import (
	"vmprim/internal/core"
	"vmprim/internal/hypercube"
)

// Proc and Env alias the internal types, as the real facade does.
type (
	Proc = hypercube.Proc
	Env  = core.Env
)

// MatVecKernel stands in for the facade's re-exported SPMD kernels.
func MatVecKernel(e *Env) float64 { return e.DotVec() }

// Ring stands in for a facade helper taking the raw Proc.
func Ring(p *Proc, tag int, data []float64) []float64 {
	return p.Exchange(0, tag, data)
}
