// Fixtures for the top-level scope: example code written against the
// facade. The kernels called here are facade re-exports — collectives
// only because vmlib matches package-level vmprim functions by their
// *Proc/*Env first parameter — so these diagnostics prove that
// top-level example code is held to the SPMD contracts.
package exfix

import (
	"vmprim"
)

// Lopsided runs a facade kernel on row zero only.
func Lopsided(e *vmprim.Env) {
	if e.GridRow() == 0 {
		vmprim.MatVecKernel(e) // want `MatVecKernel is control-dependent on processor identity`
	}
}

// Balanced is fine: every processor calls the kernel.
func Balanced(e *vmprim.Env) float64 {
	return vmprim.MatVecKernel(e)
}

// RingByRank feeds a rank-derived tag into a facade helper; this is
// collorder territory and must stay clean under spmdsym, so no want
// comment — the collorder test covers the same package path shape in
// its own fixture.
func RingByRank(p *vmprim.Proc, data []float64) []float64 {
	return vmprim.Ring(p, 4, data)
}
