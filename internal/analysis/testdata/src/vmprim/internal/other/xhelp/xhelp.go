// Package xhelp sits outside every analyzer's reporting scope but
// inside the collectives base analyzer's summary: Quadrant is an
// identity source and SumAll a collective wrapper. Both classifications
// travel to importers as package facts; the xuse and spmdx fixtures
// assert that the dependent analyzers see them — and that without
// facts they see nothing.
package xhelp

import (
	"vmprim/internal/collective"
	"vmprim/internal/hypercube"
)

// Quadrant returns a value derived from processor identity.
func Quadrant(p *hypercube.Proc) int { return (p.ID() >> 1) & 1 }

// SumAll hides a collective behind an exported helper.
func SumAll(p *hypercube.Proc, data []float64) {
	collective.AllReduce(p, 3, 9, data, nil)
}
