// Package xrelay exercises commverify's cross-package protocol facts:
// each half of a one-hop relay lives behind an exported function, so
// an importer's pairing can only be verified if the summaries flow.
package xrelay

import "vmprim/internal/hypercube"

// HopSend pushes data one hop along dim 0 from even ranks.
func HopSend(p *hypercube.Proc, tag int, data []float64) {
	if p.ID()&1 == 0 {
		p.Send(0, tag, data)
	}
}

// HopRecv receives the hop on odd ranks.
func HopRecv(p *hypercube.Proc, tag int) []float64 {
	if p.ID()&1 == 1 {
		return p.Recv(0, tag)
	}
	return nil
}

// Scramble communicates in a way the protocol IR cannot express (a
// data-dependent dimension from a float), so the fact must record it
// as opaque and importers must stay silent about scopes that call it.
func Scramble(p *hypercube.Proc, x []float64) {
	d := int(x[0])
	p.Send(d, 1, x)
}
