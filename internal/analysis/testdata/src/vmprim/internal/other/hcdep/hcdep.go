// Package hcdep lies outside the hostconc family's diagnostic scope:
// nothing here is ever reported. Its summaries — WaitAll and Quiesce
// may block, Bump acquires the package mutex — are exported as facts,
// and the serve-side fixture hcx is reported at its call sites only
// when those facts crossed the package boundary.
package hcdep

import "sync"

var mu sync.Mutex

// WaitAll blocks on the group.
func WaitAll(wg *sync.WaitGroup) {
	wg.Wait()
}

// Quiesce drains the channel.
func Quiesce(ch chan int) {
	for range ch {
	}
}

// Bump takes this package's lock.
func Bump() {
	mu.Lock()
	defer mu.Unlock()
}
