// Package sink is outside recyclecheck's reporting scope, but its
// ownership summary is still computed and exported as a package fact:
// Keep discharges its parameter, Peek only borrows it. The rcfacts
// fixture asserts callers are credited (or not) accordingly.
package sink

var store [][]float64

// Keep stores its argument; ownership transfers to the package.
func Keep(buf []float64) { store = append(store, buf) }

// KeepVia forwards to Keep; the sink fixpoint makes it a sink too.
func KeepVia(buf []float64) { Keep(buf) }

// Peek only reads; the caller keeps the obligation.
func Peek(buf []float64) float64 { return buf[0] }
