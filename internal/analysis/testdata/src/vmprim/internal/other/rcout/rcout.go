// Package rcout leaks exactly like the rc fixtures but sits outside
// every analyzer's audit scope; nothing here may be reported.
package rcout

import "vmprim/internal/hypercube"

func leakOutOfScope(p *hypercube.Proc) float64 {
	buf := p.GetBuf(8)
	buf[0] = 1
	return buf[0]
}
