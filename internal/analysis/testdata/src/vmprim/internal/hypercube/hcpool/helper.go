// helper.go is neither machinepool.go nor stream.go: it belongs to
// the simulator side of the hypercube package, where the hostconc
// family stays silent — the identical violation here must produce no
// finding.
package hcpool

import "vmprim/internal/hypercube"

func runLockedElsewhere(p *pool, m *hypercube.Machine) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m.Run(func(q *hypercube.Proc) {})
}
