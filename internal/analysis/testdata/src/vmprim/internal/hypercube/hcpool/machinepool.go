// Fixture for the family's file-level scoping inside the hypercube
// package: only machinepool.go and stream.go are host-concurrent —
// the rest of the package is the virtual-time simulator. This file is
// named machinepool.go, so its findings are reported; helper.go in
// the same package is not.
package hcpool

import (
	"sync"

	"vmprim/internal/hypercube"
)

type pool struct {
	mu   sync.Mutex
	free []*hypercube.Machine
}

// closeLocked tears a machine down with the pool lock held: the
// seeded version of the window the real MachinePool.Release avoids.
func (p *pool) closeLocked(m *hypercube.Machine) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m.Close() // want `a Machine\.Close while p\.mu is held`
}

// evict mirrors the real pool: collect the victims under the lock,
// close them outside it. Clean.
func (p *pool) evict() {
	p.mu.Lock()
	victims := p.free
	p.free = nil
	p.mu.Unlock()
	for _, m := range victims {
		m.Close()
	}
}
