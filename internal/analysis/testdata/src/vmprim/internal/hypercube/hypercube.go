// Package hypercube is a typecheck-only stub of the real simulator
// package for the analyzer fixtures: the same import path, type name
// and method signatures, and no behavior. The analyzers match calls
// by package path and name, so code written against this stub is
// classified exactly as code written against the real package.
package hypercube

// Proc mirrors the real per-processor handle.
type Proc struct{}

func (p *Proc) ID() int                                        { return 0 }
func (p *Proc) Dim() int                                       { return 0 }
func (p *Proc) P() int                                         { return 0 }
func (p *Proc) FullMask() int                                  { return 0 }
func (p *Proc) Neighbor(d int) int                             { return 0 }
func (p *Proc) GetBuf(n int) []float64                         { return nil }
func (p *Proc) Recycle(buf []float64)                          {}
func (p *Proc) Send(d, tag int, words []float64)               {}
func (p *Proc) Recv(d, wantTag int) []float64                  { return nil }
func (p *Proc) Exchange(d, tag int, words []float64) []float64 { return nil }
func (p *Proc) ExchangeAll(dims []int, tag int, payloads [][]float64) [][]float64 {
	return nil
}
func (p *Proc) Barrier(mask, tag int) {}
func (p *Proc) Capture(buf []float64) {}
func (p *Proc) BeginSpan(name string) {}
func (p *Proc) EndSpan()              {}
func (p *Proc) SpanPredict(t float64) {}
func (p *Proc) SpanNote(note string)  {}
func (p *Proc) Compute(flops int)     {}
func (p *Proc) Profiling() bool       { return false }

type Machine struct{}

func (m *Machine) Run(body func(p *Proc)) (float64, error) { return 0, nil }
func (m *Machine) Close()                                  {}
