// Fixture for lockdiscipline's suggested fix: the forgotten-defer
// shape (one top-level Lock, no Unlock anywhere) gets the idiomatic
// `defer c.mu.Unlock()` inserted right after the Lock. The .golden
// sibling holds the expected output of vmlint -fix.
package hclockfix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// Bump locks and never releases on any exit.
func (c *counter) Bump() {
	c.mu.Lock()
	c.n++
} // want `function ends with c\.mu still locked \(Lock without a matching Unlock\)`

// Clean already defers; it must survive -fix byte for byte.
func (c *counter) Clean() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}
