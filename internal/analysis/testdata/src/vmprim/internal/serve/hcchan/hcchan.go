// Fixture for chanprotocol: close ownership, sends on possibly-closed
// channels, and loop-captured variables in go/defer closures.
package hcchan

// doubleClose closes the same channel twice on one path.
func doubleClose(ch chan int) {
	close(ch)
	close(ch) // want `close of ch, which an earlier point on this path may already have closed \(a second close panics\)`
}

// sendAfterClose sends on a channel this path closed.
func sendAfterClose(ch chan int) {
	close(ch)
	ch <- 1 // want `send on ch, which some path may already have closed \(a send on a closed channel panics\)`
}

// maybeClosed sends after only one branch closed: the analyzer takes
// the union, matching the runtime's worst case.
func maybeClosed(ch chan int, done bool) {
	if done {
		close(ch)
	}
	ch <- 1 // want `send on ch, which some path may already have closed`
}

// trySend is the same union through a select's comm clause.
func trySend(ch chan int, done bool) {
	if done {
		close(ch)
	}
	select {
	case ch <- 1: // want `send on ch, which some path may already have closed`
	default:
	}
}

// closeAll closes a loop-independent channel once per iteration.
func closeAll(chans []chan int, victim chan int) {
	for range chans {
		close(victim) // want `close of victim inside a loop runs on every iteration \(the second close panics\)`
	}
}

// captureRace's goroutine reads a variable later iterations write.
func captureRace(items []int) {
	var last int
	for _, it := range items {
		last = it
		go func() {
			_ = last // want `go closure captures last, which the loop body writes on every iteration; the goroutine's read races with later iterations — pass it as an argument instead`
		}()
	}
}

// deferCapture's closures all observe the final value.
func deferCapture(files []string) {
	var cur string
	for _, f := range files {
		cur = f
		defer func() {
			_ = cur // want `deferred closure captures cur, which the loop keeps writing; every deferred call will observe only the final value — pass it as an argument instead`
		}()
	}
}

// closeOrSend diverges after the close: the send path is clean.
func closeOrSend(ch chan int, done bool) {
	if done {
		close(ch)
		return
	}
	ch <- 1
}

// recycle remakes the channel after closing it: the new channel is a
// different object and the send is clean.
func recycle(ch chan int) chan int {
	close(ch)
	ch = make(chan int, 1)
	ch <- 1
	return ch
}

// closeEach closes the range variable: a different channel every
// iteration. Clean.
func closeEach(chans []chan int) {
	for _, ch := range chans {
		close(ch)
	}
}

// captureFixed passes the loop-written value as an argument. Clean.
func captureFixed(items []int) {
	var last int
	for _, it := range items {
		last = it
		go func(v int) {
			_ = v
		}(last)
	}
}

type wrap struct{ ch chan int }

// close here is a method, not the builtin: calling it twice makes no
// intra-procedural protocol claim (the real broadcaster's close
// method is idempotent under its mutex).
func (w *wrap) close() { close(w.ch) }

func shutdown(w *wrap) {
	w.close()
	w.close()
}
