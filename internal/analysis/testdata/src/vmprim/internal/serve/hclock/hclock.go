// Fixture for lockdiscipline: every diagnostic the analyzer can
// produce, positive and negative, written in the shapes the real
// serving plane uses. The package path sits beneath
// vmprim/internal/serve, so the whole file is in the family's
// diagnostic scope.
package hclock

import (
	"sync"

	"vmprim/internal/hypercube"
)

type broadcaster struct {
	mu      sync.Mutex
	subs    map[int]chan int
	dropped int
}

// leakOnReturn misses the Unlock on the early exit.
func (b *broadcaster) leakOnReturn(stop bool) {
	b.mu.Lock()
	if stop {
		return // want `return leaves b\.mu locked on this path \(Unlock is not deferred and this exit misses it\)`
	}
	b.mu.Unlock()
}

// leakToEnd never unlocks at all.
func (b *broadcaster) leakToEnd() {
	b.mu.Lock()
	b.dropped++
} // want `function ends with b\.mu still locked \(Lock without a matching Unlock\)`

// doubleLock re-acquires a mutex it already holds.
func (b *broadcaster) doubleLock() {
	b.mu.Lock()
	b.mu.Lock() // want `Lock of b\.mu while already held on this path \(sync\.Mutex is not reentrant: this self-deadlocks\)`
	b.mu.Unlock()
	b.mu.Unlock()
}

// spuriousUnlock releases a mutex no path acquired.
func (b *broadcaster) spuriousUnlock() {
	b.mu.Unlock() // want `Unlock of b\.mu without a matching Lock on this path`
}

// sendLocked performs an unbuffered-send wait while holding the lock.
func (b *broadcaster) sendLocked(ch chan int) {
	b.mu.Lock()
	ch <- 1 // want `a send on ch while b\.mu is held \(a blocked holder stalls every contender; release the lock first or make the operation non-blocking\)`
	b.mu.Unlock()
}

// recvLocked parks on a channel peer while holding the lock.
func (b *broadcaster) recvLocked(ch chan int) int {
	b.mu.Lock()
	v := <-ch // want `a receive from ch while b\.mu is held`
	b.mu.Unlock()
	return v
}

// waitLocked blocks on a WaitGroup while holding the lock.
func (b *broadcaster) waitLocked(wg *sync.WaitGroup) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wg.Wait() // want `a sync\.WaitGroup Wait while b\.mu is held`
}

// runLocked runs a whole simulation while holding the lock. The
// mutex is a plain sync.Mutex variable, which has no cross-function
// identity — the blocking check still fires.
func runLocked(mu *sync.Mutex, m *hypercube.Machine) {
	mu.Lock()
	defer mu.Unlock()
	m.Run(func(p *hypercube.Proc) {}) // want `a Machine\.Run while mu is held`
}

// selectLocked waits on peers with no default while holding the lock.
func (b *broadcaster) selectLocked(ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select { // want `a select with no default case while b\.mu is held`
	case v := <-ch:
		b.dropped = v
	case ch <- 1:
	}
}

// drain blocks by construction; drainLocked inherits that through the
// same-package summary.
func (b *broadcaster) drain(ch chan int) {
	for range ch {
	}
}

func (b *broadcaster) drainLocked(ch chan int) {
	b.mu.Lock()
	b.drain(ch) // want `a call to broadcaster\.drain, which may block \(a range over channel ch\) while b\.mu is held`
	b.mu.Unlock()
}

// get self-locks; calling it with the lock held self-deadlocks.
func (b *broadcaster) get(k int) chan int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.subs[k]
}

func (b *broadcaster) doubleAcquire(k int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.get(k) // want `call to get acquires b\.mu, which is already held on this path \(sync\.Mutex is not reentrant: this self-deadlocks\)`
}

// deferInLoop registers one Unlock per iteration but pays them all at
// function return.
func (b *broadcaster) deferInLoop(n int) {
	for i := 0; i < n; i++ { // want `loop body changes the hold depth of b\.mu by 1 per iteration`
		b.mu.Lock()
		defer b.mu.Unlock() // want `deferred Unlock of b\.mu inside a loop runs at function return, not at iteration end`
	}
}

// branchSkew unlocks on one arm only.
func (b *broadcaster) branchSkew(c bool) {
	b.mu.Lock()
	if c { // want `lock state of b\.mu differs between the branches of this if \(one side is missing a Lock or Unlock\)`
		b.mu.Unlock()
	}
	b.dropped++
}

// publish mirrors the real broadcaster: the send is wrapped in a
// select with a default, so no path blocks under b.mu. Clean.
func (b *broadcaster) publish(v int) {
	b.mu.Lock()
	for _, ch := range b.subs {
		select {
		case ch <- v:
		default:
			b.dropped++
		}
	}
	b.mu.Unlock()
}

// subscribe is the defer-balanced shape. Clean.
func (b *broadcaster) subscribe(k int) chan int {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan int, 1)
	b.subs[k] = ch
	return ch
}

// evict mirrors the registry: remove under the lock, close outside
// it. close never blocks and the lock is released first. Clean.
func (b *broadcaster) evict(k int) {
	b.mu.Lock()
	ch := b.subs[k]
	delete(b.subs, k)
	b.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

type server struct {
	mu    sync.Mutex
	queue chan int
}

// enqueue mirrors handleSubmit: layered locking on two different
// mutexes, a select with a default, and Unlocks inside the case
// bodies. Clean on both mutexes.
func (s *server) enqueue(b *broadcaster, v int) bool {
	s.mu.Lock()
	b.mu.Lock()
	b.dropped = v
	b.mu.Unlock()
	select {
	case s.queue <- v:
		s.mu.Unlock()
		return true
	default:
		s.mu.Unlock()
		return false
	}
}

type gauge struct {
	mu  sync.RWMutex
	val int
}

// read exercises the RWMutex read-side pair. Clean.
func (g *gauge) read() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val
}
