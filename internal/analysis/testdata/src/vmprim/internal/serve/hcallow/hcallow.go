// Fixture for the suppression audit over the hostconc family: the
// directive in daemon suppresses a real goroutinelife diagnostic and
// survives; the directive in fixed suppresses nothing — the leak it
// documented was fixed — and is reported stale.
package hcallow

// daemon's monitor legitimately runs for the process lifetime.
func daemon() {
	//lint:allow goroutinelife the monitor runs for the process lifetime and exits with it
	go func() {
		for {
		}
	}()
}

// fixed now selects on its done channel; the directive is stale.
func fixed(done chan struct{}) {
	//lint:allow goroutinelife this exception documented a leak that was fixed long ago
	go func() {
		<-done
	}()
}
