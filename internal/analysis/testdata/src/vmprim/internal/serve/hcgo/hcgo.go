// Fixture for goroutinelife: go statements with and without a
// termination obligation, in the shapes the daemon and the load
// driver use.
package hcgo

import (
	"context"
	"sync"
)

// spinForever has no exit at all.
func spinForever() {
	var work int
	go func() { // want `goroutine has no termination obligation: select on a done channel, pair it with a sync\.WaitGroup Done, or annotate //lint:allow goroutinelife <reason>`
		for {
			work++
		}
	}()
	_ = work
}

// spinInts receives, but not from a done-signal channel: the blessed
// consume shape is a range, which exits when the owner closes.
func spinInts(ch chan int) {
	go func() { // want `goroutine has no termination obligation`
		for {
			_ = <-ch
		}
	}()
}

// sendResult is the vmprimd adapter shape without its annotation.
func sendResult(ch chan int) {
	go func() { ch <- 1 }() // want `goroutine has no termination obligation`
}

// churn never terminates, and spawnChurn is told so by name.
func churn() {
	for {
	}
}

func spawnChurn() {
	go churn() // want `goroutine has no termination obligation: churn neither receives from a done channel nor signals a sync\.WaitGroup; add one or annotate //lint:allow goroutinelife <reason>`
}

// spawn runs an opaque function value the analyzer cannot see into.
func spawn(f func()) {
	go f() // want `goroutine runs a function value, whose termination this analyzer cannot prove; wrap it in a closure with a done-channel select or annotate //lint:allow goroutinelife <reason>`
}

// worker selects on a done channel. Clean.
func worker(done chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// ctxWorker's done channel is the context's. Clean.
func ctxWorker(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// fanOut pairs every goroutine with the group. Clean.
func fanOut(wg *sync.WaitGroup, n int) {
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
}

// consume ranges over the channel; both spawn forms inherit its
// obligation through the same-package summary. Clean.
func consume(ch chan int) {
	for range ch {
	}
}

func spawnConsume(ch chan int) {
	go consume(ch)
	go func() { consume(ch) }()
}
