// Fixture for lockdiscipline's cross-package reach: the blocking
// behavior of hcdep's helpers arrives as hostconc facts, and the
// diagnostics land here, at the call sites under the held lock. With
// facts disabled both findings must vanish.
package hcx

import (
	"sync"

	"vmprim/internal/other/hcdep"
)

type pool struct {
	mu sync.Mutex
	wg sync.WaitGroup
}

// flushLocked drains a channel through another package's helper while
// holding the lock.
func (p *pool) flushLocked(ch chan int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	hcdep.Quiesce(ch) // want `a call to Quiesce, which may block \(a range over channel ch\) while p\.mu is held`
}

// waitLocked waits on the group through another package's helper
// while holding the lock.
func (p *pool) waitLocked() {
	p.mu.Lock()
	defer p.mu.Unlock()
	hcdep.WaitAll(&p.wg) // want `a call to WaitAll, which may block \(a sync\.WaitGroup Wait\) while p\.mu is held`
}

// waitOutside releases the lock first. Clean.
func (p *pool) waitOutside() {
	p.mu.Lock()
	p.mu.Unlock()
	hcdep.WaitAll(&p.wg)
}

var gmu sync.Mutex

// bumpUnderOther holds this package's lock while hcdep.Bump takes its
// own package-level mutex: different locks, layered legally. Clean.
func bumpUnderOther() {
	gmu.Lock()
	defer gmu.Unlock()
	hcdep.Bump()
}
