// Fixtures for the collorder analyzer: identity-derived structural
// arguments and identity-dependent branches whose arms perform
// different communication sequences.
package corder

import (
	"vmprim/internal/collective"
	"vmprim/internal/hypercube"
)

// DemoDeadlock is the exact shape of `vmprim -demo-deadlock`: control
// flow is identical on every processor, but the exchange dimension is
// computed from the rank, so no two partners agree.
func DemoDeadlock(p *hypercube.Proc) {
	d := (p.ID() & 1) ^ ((p.ID() >> 1) & 1)
	p.Exchange(d, 7, []float64{1, 2}) // want `argument "d" derives from processor identity`
}

// TagByRank: same bug through the tag instead of the dimension.
func TagByRank(p *hypercube.Proc, data []float64) {
	p.Send(0, p.ID(), data) // want `argument "tag" derives from processor identity`
}

// myDim launders identity through a local helper; the collectives
// summary marks it an identity source.
func myDim(p *hypercube.Proc) int { return p.ID() % 2 }

func HelperDim(p *hypercube.Proc, data []float64) {
	p.Exchange(myDim(p), 7, data) // want `argument "d" derives from processor identity`
}

// EarlyReturn: rank 0 leaves before the broadcast everyone else joins.
func EarlyReturn(p *hypercube.Proc, data []float64) {
	if p.ID() == 0 { // want `communication sequence diverges`
		return
	}
	collective.Bcast(p, 3, 5, 0, data)
}

// DimMismatch: both arms exchange, but on different dimensions.
func DimMismatch(p *hypercube.Proc, data []float64) {
	if p.ID()&1 == 0 { // want `communication sequence diverges`
		p.Exchange(0, 5, data)
	} else {
		p.Exchange(1, 5, data)
	}
}

// SwitchDiverge: an identity-tainted switch whose arms run different
// collectives.
func SwitchDiverge(p *hypercube.Proc, data []float64) {
	switch p.ID() { // want `communication sequence diverges`
	case 0:
		collective.Bcast(p, 3, 2, 0, data)
	default:
		collective.AllGather(p, 3, 2, data)
	}
}

// SymmetricPayloads is fine: the structural arguments agree on both
// arms, only the payload differs — which is the whole point of SPMD.
func SymmetricPayloads(p *hypercube.Proc, data []float64) {
	if p.ID() == 0 {
		collective.AllGather(p, 3, 4, data[:1])
	} else {
		collective.AllGather(p, 3, 4, data[1:])
	}
}

// UniformChoice is fine: the branch does diverge, but its condition is
// rank-independent, so every processor takes the same side.
func UniformChoice(p *hypercube.Proc, big bool, data []float64) {
	if big {
		collective.AllGather(p, 3, 1, data)
	} else {
		collective.Bcast(p, 3, 1, 0, data)
	}
}

// LoopFroth is fine: the rank-0 arm runs a loop full of control flow
// (including a continue) but no communication, so every processor
// still meets the broadcast below in the same position.
func LoopFroth(p *hypercube.Proc, data []float64) {
	if p.ID() == 0 {
		for i := range data {
			if data[i] < 0 {
				continue
			}
			data[i] *= 2
		}
	}
	collective.Bcast(p, 3, 9, 0, data)
}

// FanByRank: the all-port dimension list is built per element, and one
// element reads the rank — the taint walk descends into the composite
// literal, so the whole "dims" argument is identity-derived.
func FanByRank(p *hypercube.Proc, payloads [][]float64) {
	p.ExchangeAll([]int{0, p.ID() & 1}, 2, payloads) // want `ExchangeAll argument "dims" derives from processor identity`
}

// FanVarByRank: the same bug laundered through a local variable; the
// assignment fixpoint carries the taint to the dims slice.
func FanVarByRank(p *hypercube.Proc, payloads [][]float64) {
	dims := []int{p.ID() % 2, 1}
	p.ExchangeAll(dims, 2, payloads) // want `ExchangeAll argument "dims" derives from processor identity`
}

// FanDiverge: both arms fan out over all-port exchanges, but the
// dimension lists differ, so the event sequences cannot be equal.
func FanDiverge(p *hypercube.Proc, payloads [][]float64) {
	if p.ID()&1 == 0 { // want `communication sequence diverges`
		p.ExchangeAll([]int{0, 1}, 2, payloads)
	} else {
		p.ExchangeAll([]int{1, 2}, 2, payloads)
	}
}

// FanUniform is fine: a constant dimension list, per-element payloads.
func FanUniform(p *hypercube.Proc, payloads [][]float64) {
	p.ExchangeAll([]int{0, 1, 2}, 2, payloads)
}

// FanSymmetric is fine: the arms agree on every structural argument of
// the all-port exchange; only the payload slices differ.
func FanSymmetric(p *hypercube.Proc, payloads [][]float64) {
	if p.ID() == 0 {
		p.ExchangeAll([]int{0, 1}, 4, payloads[:1])
	} else {
		p.ExchangeAll([]int{0, 1}, 4, payloads[1:])
	}
}

// OwnerSwitch is fine: the owner-subcube idiom leads with an untainted
// "replicate everywhere" guard; the tainted tail cases perform no
// communication, so the arms cannot fall out of step.
func OwnerSwitch(p *hypercube.Proc, replicate bool, data []float64) {
	switch {
	case replicate:
		collective.Bcast(p, 3, 5, 0, data)
	case p.ID() == 0:
		data[0] = 1
	}
}
