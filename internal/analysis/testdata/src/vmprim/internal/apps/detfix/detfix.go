// Fixture for simdeterminism's suggested fix: a package-level rand
// call is rewritten to draw from an explicitly seeded generator by
// replacing the package qualifier. The .golden sibling holds the
// expected output of vmlint -fix.
package detfix

import "math/rand"

// Jitter draws from the process-global generator.
func Jitter() float64 {
	return rand.Float64() // want `draws from the process-global generator`
}

// Seeded is already reproducible; it must survive -fix byte for byte.
func Seeded() float64 {
	return rand.New(rand.NewSource(7)).Float64()
}
