// Package cv holds the commverify fixtures: SPMD protocols the
// bounded model checker must prove deadlock-free, and broken ones it
// must flag with a concrete counterexample. Every clean function here
// is fully concretizable — the point of the positive cases is that
// the checker actually verified them, not that it gave up.
package cv

import (
	"vmprim/internal/collective"
	"vmprim/internal/hypercube"
	"vmprim/internal/other/xrelay"
)

// PipelinedShift is the canonical dimension-ordered shift: every proc
// exchanges with each neighbor in the same dimension order. Clean.
func PipelinedShift(p *hypercube.Proc) {
	buf := p.GetBuf(4)
	for k := 0; k < p.Dim(); k++ {
		buf = p.Exchange(k, 3, buf)
	}
	p.Recycle(buf)
}

// TreeGather folds values toward proc 0 along a binomial tree: the
// high half of each subcube sends and retires, the low half receives
// and continues. Clean — sends and receives pair exactly.
func TreeGather(p *hypercube.Proc) {
	acc := p.GetBuf(4)
	for k := 0; k < p.Dim(); k++ {
		if (p.ID()>>k)&1 == 1 {
			p.Send(k, 5, acc)
			return
		}
		got := p.Recv(k, 5)
		_ = got
	}
	_ = acc
}

// HolderSubcube enters a collective from a guarded subcube: mask 1
// groups procs in pairs along dim 0, and the guard ID&2 == 0 admits
// whole pairs, never half of one. Clean.
func HolderSubcube(p *hypercube.Proc) {
	buf := p.GetBuf(8)
	if p.ID()&2 == 0 {
		buf = collective.Bcast(p, 1, 4, 0, buf)
	}
	buf = p.Exchange(0, 9, buf)
	p.Recycle(buf)
}

// Relay is deliberately rank-asymmetric: only proc 0 sends and only
// proc 1 receives. collorder-style sequence comparison would flag the
// asymmetry; the model checker proves the pairing sound. Clean.
func Relay(p *hypercube.Proc) {
	if p.ID() == 0 {
		p.Send(0, 11, p.GetBuf(2))
	}
	if p.ID() == 1 {
		got := p.Recv(0, 11)
		p.Recycle(got)
	}
}

// FanAll exchanges along dims 0 and 1 in one ExchangeAll. Clean on
// every cube that has both dimensions (d=1 is skipped, not flagged:
// the protocol is written for bigger cubes).
func FanAll(p *hypercube.Proc) {
	bufs := p.ExchangeAll([]int{0, 1}, 6, nil)
	_ = bufs
}

// BarrierThenShift separates phases with a whole-cube barrier. Clean.
func BarrierThenShift(p *hypercube.Proc) {
	p.Barrier(p.FullMask(), 1)
	buf := p.Exchange(0, 2, p.GetBuf(1))
	p.Recycle(buf)
}

// edgeSend is an open protocol (free k and tag): not checkable on its
// own, but inlined and concretized at every call site.
func edgeSend(p *hypercube.Proc, k, tag int) {
	if (p.ID()>>k)&1 == 0 {
		p.Send(k, tag, nil)
	} else {
		got := p.Recv(k, tag)
		_ = got
	}
}

// LocalInline drives the helper with concrete arguments; the checker
// verifies the inlined whole. Clean.
func LocalInline(p *hypercube.Proc) {
	edgeSend(p, 0, 21)
}

// RelayPair pairs the cross-package halves with agreeing tags; the
// xrelay protocol facts make the whole verifiable. Clean.
func RelayPair(p *hypercube.Proc) {
	xrelay.HopSend(p, 5, nil)
	buf := xrelay.HopRecv(p, 5)
	_ = buf
}

// CrossShift is the -demo-deadlock bug: procs 0 and 3 exchange along
// dim 0 while procs 1 and 2 exchange along dim 1, so every Recv waits
// on a neighbor that sent into a different queue.
func CrossShift(p *hypercube.Proc) {
	d := (p.ID() & 1) ^ ((p.ID() >> 1) & 1)
	out := p.Exchange(d, 7, p.GetBuf(3)) // want `protocol deadlocks on the d=2 cube: 4/4 procs blocked at VT step 1`
	p.Recycle(out)
}

// HolderWrongMask guards a mask-3 collective with a mask-1-shaped
// condition: the guard admits half of each 4-proc subcube, and the
// admitted half waits forever for the other.
func HolderWrongMask(p *hypercube.Proc) {
	if p.ID()&1 == 0 {
		got := collective.AllGather(p, 3, 4, p.GetBuf(1)) // want `protocol deadlocks on the d=2 cube: 2/4 procs blocked`
		_ = got
	}
}

// LostSend sends with no receiver anywhere in the protocol.
func LostSend(p *hypercube.Proc) {
	if p.ID() == 0 {
		p.Send(0, 4, nil) // want `Send\(dim=0, tag=4\) from p0 is never received by p1 on the d=1 cube`
	}
}

// TagSkew pairs a Send and a Recv on the same link with different
// tags — the runtime panics at the Recv.
func TagSkew(p *hypercube.Proc) {
	if p.ID()&1 == 0 {
		p.Send(0, 1, nil)
	} else {
		got := p.Recv(0, 2) // want `tag mismatch on the d=1 cube: p1 Recv\(dim=0\) expects tag 2 but the message from p0 carries tag 1`
		_ = got
	}
}

// RecvFirst posts the Recv before the Send on both sides of the link:
// a head-to-head wait that deadlocks in the very first step.
func RecvFirst(p *hypercube.Proc) {
	got := p.Recv(0, 8) // want `protocol deadlocks on the d=1 cube: 2/2 procs blocked at VT step 0`
	p.Send(0, 8, got)
}

// FanDup lists the same dimension twice in an ExchangeAll — a
// statically certain runtime panic.
func FanDup(p *hypercube.Proc) {
	x := p.ExchangeAll([]int{0, 0}, 5, nil) // want `ExchangeAll dimension list contains dim 0 twice for p0 on the d=1 cube`
	_ = x
}

// FanSkew derives the dimension list from the rank: even and odd
// procs exchange along different dims, so half the receives starve.
func FanSkew(p *hypercube.Proc) {
	x := p.ExchangeAll([]int{p.ID() & 1}, 9, nil) // want `protocol deadlocks on the d=2 cube: 2/4 procs blocked`
	_ = x
}

// RelaySkew drives the cross-package halves with different tags; only
// the imported protocol facts make this visible.
func RelaySkew(p *hypercube.Proc) {
	xrelay.HopSend(p, 4, nil)
	buf := xrelay.HopRecv(p, 5) // want `tag mismatch on the d=1 cube: p1 Recv\(dim=0\) expects tag 5 but the message from p0 carries tag 4`
	_ = buf
}

// ScrambleUser calls xrelay's opaque communicator: the scope is
// unverifiable and must stay silent — no finding, no false proof.
func ScrambleUser(p *hypercube.Proc) {
	p.Send(0, 2, nil)
	xrelay.Scramble(p, p.GetBuf(1))
}
