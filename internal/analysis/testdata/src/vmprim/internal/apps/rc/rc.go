// Fixtures for the recyclecheck analyzer. The package path sits
// beneath vmprim/internal/apps, inside the analyzer's audit scope.
package rc

import "vmprim/internal/hypercube"

// leak holds the buffer, reads it, and never discharges it.
func leak(p *hypercube.Proc) float64 {
	buf := p.GetBuf(8) // want `buffer "buf" from GetBuf is never recycled, returned, or handed off`
	buf[0] = 1
	return buf[0]
}

// recvLeak leaks a received message the same way.
func recvLeak(p *hypercube.Proc) int {
	got := p.Recv(0, 1) // want `buffer "got" from Recv is never recycled`
	return len(got)
}

// recycled discharges by returning the buffer to the pool.
func recycled(p *hypercube.Proc) float64 {
	buf := p.GetBuf(8)
	buf[0] = 1
	v := buf[0]
	p.Recycle(buf)
	return v
}

// returned discharges by passing ownership to the caller; a reslice
// shares the backing array, so returning one counts.
func returned(p *hypercube.Proc) []float64 {
	buf := p.GetBuf(8)
	return buf[:4]
}

// dropped discards the only reference at the call site.
func dropped(p *hypercube.Proc) {
	p.Recv(0, 1) // want `result of Recv is dropped`
}

// blanked is the same leak spelled with the blank identifier.
func blanked(p *hypercube.Proc) {
	_ = p.Exchange(0, 1, nil) // want `result of Exchange is assigned to _`
}

// appended discharges into a growing slice: the element append hands
// the buffer to sink's owner.
func appended(p *hypercube.Proc, sink [][]float64) [][]float64 {
	buf := p.GetBuf(8)
	return append(sink, buf)
}

// stored discharges into a composite literal.
func stored(p *hypercube.Proc) [][]float64 {
	buf := p.GetBuf(8)
	return [][]float64{buf}
}

// recycleOnPanicPath leaks only if the panic fires; a panic aborts
// the whole run and the pools with it, so the flow-insensitive check
// accepts the straight-line recycle.
func recycleOnPanicPath(p *hypercube.Proc, n int) {
	buf := p.GetBuf(n)
	if n < 0 {
		panic("negative size")
	}
	p.Recycle(buf)
}

// allport extracts one element of an ExchangeAll result: the element
// is itself an owned buffer, and returning it discharges.
func allport(p *hypercube.Proc, dims []int) []float64 {
	got := p.ExchangeAll(dims, 1, nil)
	return got[0]
}

// borrowOnly shows the uses that are *not* discharges: len, indexing,
// copy, and payload arguments all leave the obligation standing.
func borrowOnly(p *hypercube.Proc, out []float64) int {
	buf := p.GetBuf(8) // want `buffer "buf" from GetBuf is never recycled`
	copy(out, buf)
	p.Send(0, 1, buf[:2])
	return len(buf)
}

// captured discharges by handing the buffer to the flight recorder:
// Capture keeps it for the post-mortem, so it must not be recycled.
func captured(p *hypercube.Proc) {
	buf := p.GetBuf(8)
	buf[0] = 1
	p.Capture(buf)
}

// capturedRecv discharges a received message the same way, on the
// tag-mismatch diagnostic path the simulator itself uses.
func capturedRecv(p *hypercube.Proc, wantTag int) {
	got := p.Recv(0, wantTag)
	if len(got) > 0 && got[0] != float64(wantTag) {
		p.Capture(got)
		panic("unexpected payload")
	}
	p.Recycle(got)
}

// predicted feeds a buffer-derived size into the critical-path
// predictor. SpanPredict is pure instrumentation — a borrow, not an
// origin and not a discharge — so the Recycle is still what closes
// the obligation.
func predicted(p *hypercube.Proc) {
	buf := p.GetBuf(64)
	p.SpanPredict(float64(len(buf)))
	p.Compute(len(buf))
	p.Recycle(buf)
}

// predictedLeak proves SpanPredict is not mistaken for a hand-off:
// without the Recycle the obligation stands.
func predictedLeak(p *hypercube.Proc) {
	buf := p.GetBuf(64) // want `buffer "buf" from GetBuf is never recycled`
	p.SpanPredict(float64(cap(buf)))
	p.SpanNote("predicted from buffer capacity")
}

// snapshotCaptured hands a critpath snapshot of the buffer to the
// flight recorder: Capture keeps the (resliced) backing array for the
// post-mortem, so the capture itself is the discharge.
func snapshotCaptured(p *hypercube.Proc, n int) {
	buf := p.GetBuf(n)
	p.SpanNote("capturing conformance snapshot")
	p.Capture(buf[:n/2])
}

// pinned documents a deliberate leak with a suppression directive.
func pinned(p *hypercube.Proc) {
	//lint:allow recyclecheck the scratch buffer is pinned for the lifetime of the run on purpose
	buf := p.GetBuf(8)
	buf[0] = 1
}
