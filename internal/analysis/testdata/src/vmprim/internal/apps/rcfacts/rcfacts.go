// Cross-package fixtures for recyclecheck's sink facts: the functions
// in vmprim/internal/other/sink are known here only through the
// ownership summary exported when that package was analyzed.
package rcfacts

import (
	"vmprim/internal/hypercube"
	"vmprim/internal/other/sink"
)

// HandOff is fine: sink.Keep discharges its parameter per the
// imported fact.
func HandOff(p *hypercube.Proc) {
	buf := p.GetBuf(8)
	buf[0] = 1
	sink.Keep(buf)
}

// HandOffChained is fine through the transitive sink KeepVia.
func HandOffChained(p *hypercube.Proc) {
	buf := p.GetBuf(8)
	buf[0] = 1
	sink.KeepVia(buf)
}

// Borrowed leaks: sink.Peek reads the buffer but takes no ownership.
func Borrowed(p *hypercube.Proc) float64 {
	buf := p.GetBuf(8) // want `buffer "buf" from GetBuf is never recycled`
	return sink.Peek(buf)
}
