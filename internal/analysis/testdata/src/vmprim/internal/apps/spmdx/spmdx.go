// Cross-package fixtures for spmdsym: both the taint source and the
// collective arrive from vmprim/internal/other/xhelp via package
// facts. The facts-off control run in the spmdsym test asserts these
// diagnostics disappear without them.
package spmdx

import (
	"vmprim/internal/hypercube"
	"vmprim/internal/other/xhelp"
)

// GuardedReduce runs an imported collective wrapper under an imported
// identity guard.
func GuardedReduce(p *hypercube.Proc, data []float64) {
	if xhelp.Quadrant(p) > 0 {
		xhelp.SumAll(p, data) // want `SumAll is control-dependent on processor identity`
	}
}
