// Fixture for the suppression audit: the directive in Clean
// suppresses nothing and is reported as a "directive" finding whose
// fix deletes the whole line (see the .golden sibling); the directive
// in Leaky suppresses a real diagnostic and must survive untouched.
package stale

import "vmprim/internal/hypercube"

// Clean has no leak, so its directive is stale.
func Clean(p *hypercube.Proc) {
	//lint:allow recyclecheck this exception documented a leak that was fixed long ago
	p.Compute(1)
}

// Leaky really leaks; the directive is used and is not reported.
func Leaky(p *hypercube.Proc) {
	//lint:allow recyclecheck the demonstration buffer intentionally rides until the run ends
	buf := p.GetBuf(8)
	buf[0] = 1
}
