// Cross-package fixtures for collorder: the identity source and the
// collective live in vmprim/internal/other/xhelp and are known here
// only through package facts. The collorder test also re-runs this
// package with facts disabled and asserts zero findings — the
// diagnostics below exist because the facts flow.
package xuse

import (
	"vmprim/internal/hypercube"
	"vmprim/internal/other/xhelp"
)

// UseQuadrant feeds an imported identity-derived value into an
// exchange dimension.
func UseQuadrant(p *hypercube.Proc, data []float64) {
	p.Exchange(xhelp.Quadrant(p), 7, data) // want `argument "d" derives from processor identity`
}

// GuardedSum needs both facts at once: Quadrant to taint the guard,
// SumAll to make the skipped call a communication event.
func GuardedSum(p *hypercube.Proc, data []float64) {
	if xhelp.Quadrant(p) == 0 { // want `communication sequence diverges`
		return
	}
	xhelp.SumAll(p, data)
}
