// Fixtures for the simdeterminism analyzer. These import the real
// standard library (resolved from compiler export data), not stubs.
package det

import (
	"math/rand"
	"runtime"
	"time"

	"vmprim/internal/hypercube"
)

// wallClock reads host time inside the simulation layer.
func wallClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// wallSleep waits on host time.
func wallSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

// durations are values, not clock reads: fine.
func watchdogWindow(d time.Duration) time.Duration {
	return 2 * d
}

// globalRand draws from the process-global generator.
func globalRand() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the process-global generator`
}

// seededRand builds an explicit generator: reproducible, allowed.
func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// mapOrderSend lets Go's randomized map order decide message order.
func mapOrderSend(p *hypercube.Proc, pending map[int][]float64) {
	for d, words := range pending { // want `map iteration order is nondeterministic and this loop feeds Send`
		p.Send(d, 1, words)
	}
}

// sortedSend iterates a deterministic key slice instead.
func sortedSend(p *hypercube.Proc, pending map[int][]float64, keys []int) {
	for _, d := range keys {
		p.Send(d, 1, pending[d])
	}
}

// mapOrderLocal ranges a map without communicating: out of scope for
// this check (integer folds are order-independent).
func mapOrderLocal(counts map[int]int) int {
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}

// hostYield times itself against the host scheduler.
func hostYield(p *hypercube.Proc) {
	runtime.Gosched() // want `runtime\.Gosched yields to the host scheduler`
	p.Compute(1)
}

// sharedWriteUnguarded races: every processor's goroutine assigns the
// captured variable concurrently under host-parallel execution.
func sharedWriteUnguarded(m *hypercube.Machine) (float64, int64) {
	var last float64
	var hits int64
	m.Run(func(p *hypercube.Proc) {
		v := p.Exchange(0, 1, []float64{float64(p.ID())})
		last = v[0] // want `write to last, captured from outside the SPMD body, races across processors`
		hits++      // want `write to hits, captured from outside the SPMD body, races across processors`
	})
	return last, hits
}

// sharedWriteGuarded uses the sanctioned one-writer idiom: only the
// root processor assigns.
func sharedWriteGuarded(m *hypercube.Machine) float64 {
	var root float64
	m.Run(func(p *hypercube.Proc) {
		v := p.Exchange(0, 1, []float64{float64(p.ID())})
		if p.ID() == 0 {
			root = v[0]
		}
	})
	return root
}

// sharedWriteIndexed writes a per-processor slot: each goroutine owns
// its own element.
func sharedWriteIndexed(m *hypercube.Machine) []float64 {
	out := make([]float64, 2)
	m.Run(func(p *hypercube.Proc) {
		v := p.Exchange(0, 1, []float64{float64(p.ID())})
		out[p.ID()] = v[0]
	})
	return out
}

// localWrites assign variables declared inside the SPMD body — one per
// processor, no sharing — including from a nested closure.
func localWrites(m *hypercube.Machine) {
	m.Run(func(p *hypercube.Proc) {
		sum := 0.0
		add := func(v float64) { sum += v }
		for i := 0; i < 4; i++ {
			add(float64(i))
		}
		p.Compute(int(sum))
	})
}

// kernelSharedWrite is a named SPMD kernel (first parameter *Proc)
// writing package state: the same race as the literal form.
var kernelCalls int64

func kernelSharedWrite(p *hypercube.Proc) {
	kernelCalls++ // want `write to kernelCalls, captured from outside the SPMD body, races across processors`
	p.Compute(1)
}
