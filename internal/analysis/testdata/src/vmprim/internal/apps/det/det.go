// Fixtures for the simdeterminism analyzer. These import the real
// standard library (resolved from compiler export data), not stubs.
package det

import (
	"math/rand"
	"time"

	"vmprim/internal/hypercube"
)

// wallClock reads host time inside the simulation layer.
func wallClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

// wallSleep waits on host time.
func wallSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

// durations are values, not clock reads: fine.
func watchdogWindow(d time.Duration) time.Duration {
	return 2 * d
}

// globalRand draws from the process-global generator.
func globalRand() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the process-global generator`
}

// seededRand builds an explicit generator: reproducible, allowed.
func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// mapOrderSend lets Go's randomized map order decide message order.
func mapOrderSend(p *hypercube.Proc, pending map[int][]float64) {
	for d, words := range pending { // want `map iteration order is nondeterministic and this loop feeds Send`
		p.Send(d, 1, words)
	}
}

// sortedSend iterates a deterministic key slice instead.
func sortedSend(p *hypercube.Proc, pending map[int][]float64, keys []int) {
	for _, d := range keys {
		p.Send(d, 1, pending[d])
	}
}

// mapOrderLocal ranges a map without communicating: out of scope for
// this check (integer folds are order-independent).
func mapOrderLocal(counts map[int]int) int {
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}
