// Fixture for spanbalance's suggested fix: the forgotten-defer shape
// (one top-level BeginSpan, no EndSpan anywhere) gets the idiomatic
// `defer e.EndSpan()` inserted right after the BeginSpan. The .golden
// sibling holds the expected output of vmlint -fix.
package spanfix

import "vmprim/internal/core"

// Forgot opens a span and never closes it on either exit path.
func Forgot(e *core.Env, n int) {
	e.BeginSpan("work")
	if n > 0 {
		return // want `return leaves 1 span\(s\) open`
	}
	e.P.Compute(n)
} // want `function ends with 1 span\(s\) still open`

// Clean already defers; it must survive -fix byte for byte.
func Clean(e *core.Env, n int) {
	e.BeginSpan("work")
	defer e.EndSpan()
	e.P.Compute(n)
}
