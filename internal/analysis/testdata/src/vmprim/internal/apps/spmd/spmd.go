// Fixtures for the spmdsym analyzer.
package spmd

import (
	"vmprim/internal/collective"
	"vmprim/internal/core"
	"vmprim/internal/hypercube"
)

// rootOnlyBcast is the canonical deadlock: one processor calls the
// collective, the rest skip it.
func rootOnlyBcast(p *hypercube.Proc, data []float64) {
	if p.ID() == 0 {
		collective.Bcast(p, 1, 1, 0, data) // want `Bcast is control-dependent on processor identity`
	}
}

// uniform is the correct shape: every processor calls, the root is an
// argument, and per-rank data differences are fine.
func uniform(p *hypercube.Proc, data []float64) {
	var src []float64
	if p.ID() == 0 {
		src = data
	}
	got := collective.Bcast(p, 1, 1, 0, src)
	p.Recycle(got)
}

// helper performs a collective, so calling it is calling one.
func helper(p *hypercube.Proc, data []float64) {
	got := collective.AllGather(p, 1, 1, data)
	p.Recycle(got)
}

// hiddenInHelper launders the collective through the helper; the
// interprocedural summary still flags the guarded call.
func hiddenInHelper(p *hypercube.Proc, data []float64) {
	if p.ID() != 0 {
		helper(p, data) // want `helper is control-dependent on processor identity`
	}
}

// taintedVar tracks identity through an intermediate variable.
func taintedVar(p *hypercube.Proc) {
	root := p.ID() == 0
	if root {
		p.Barrier(1, 1) // want `Barrier is control-dependent on processor identity`
	}
}

// earlyReturn diverges: non-holders leave, holders reach the
// collective below and wait forever.
func earlyReturn(e *core.Env) {
	if e.GridRow() != 0 {
		return // want `early return under a processor-identity condition skips the collective`
	}
	e.DotVec()
}

// safeEarlyReturn does not diverge: the only span close after the
// return is deferred, so it runs on every exit, and no collective
// follows.
func safeEarlyReturn(e *core.Env) {
	e.BeginSpan("op")
	defer e.EndSpan()
	if e.GridCol() != 0 {
		return
	}
}

// sanitized shows that collective results carry no taint: they are
// replicated, identical on every processor, so branching on one is
// symmetric.
func sanitized(p *hypercube.Proc, data []float64) {
	got := collective.Bcast(p, 1, 1, 0, data)
	if got[0] > 0 {
		p.Barrier(1, 2)
	}
	p.Recycle(got)
}

// hostCode shows that a closure (the SPMD body handed to a runner)
// does not taint the host-side results of the call it is passed to.
func hostCode(run func(func(p *hypercube.Proc)) error, data []float64) error {
	err := run(func(p *hypercube.Proc) {
		var src []float64
		if p.ID() == 0 {
			src = data
		}
		got := collective.Bcast(p, 1, 1, 0, src)
		p.Recycle(got)
	})
	if err != nil {
		return err
	}
	return nil
}

// closureGuarded flags divergence inside the closure scope itself.
func closureGuarded(run func(func(p *hypercube.Proc)), data []float64) {
	run(func(p *hypercube.Proc) {
		if p.ID() == 0 {
			collective.Bcast(p, 1, 1, 0, data) // want `Bcast is control-dependent on processor identity`
		}
	})
}

// switchGuards mirrors core.ExtractRow: a uniform guard ahead of a
// rank guard in a condition-less switch. Only the rank-guarded case
// is identity-dependent.
func switchGuards(e *core.Env, replicate bool) {
	switch {
	case replicate:
		e.DotVec()
	case e.GridRow() == 0:
		e.DotVec() // want `DotVec is control-dependent on processor identity`
	}
}

// subcube documents a deliberate holder-only collective with a
// suppression directive.
func subcube(p *hypercube.Proc, data []float64) {
	if p.ID() == 0 {
		//lint:allow spmdsym the gather below spans the root subcube only, which the other ranks are not part of
		got := collective.AllGather(p, 1, 1, data)
		p.Recycle(got)
	}
}
