// Fixtures for the spanbalance analyzer.
package span

import (
	"vmprim/internal/core"
	"vmprim/internal/hypercube"
)

// balancedDefer is the canonical shape: open, defer the close, return
// freely from anywhere.
func balancedDefer(p *hypercube.Proc, quick bool) {
	p.BeginSpan("op")
	defer p.EndSpan()
	if quick {
		return
	}
	p.Compute(1)
}

// balancedInline closes explicitly on the single path.
func balancedInline(p *hypercube.Proc) {
	p.BeginSpan("op")
	p.Compute(1)
	p.EndSpan()
}

// earlyReturnMisses forgets the close on the error path.
func earlyReturnMisses(p *hypercube.Proc, bad bool) bool {
	p.BeginSpan("op")
	if bad {
		return false // want `return leaves 1 span\(s\) open on this path`
	}
	p.EndSpan()
	return true
}

// earlyReturnBalanced closes before each exit, the gauss.go pivot
// idiom: no defer, but every path ends the span itself.
func earlyReturnBalanced(p *hypercube.Proc, bad bool) bool {
	p.BeginSpan("op")
	if bad {
		p.EndSpan()
		return false
	}
	p.Compute(1)
	p.EndSpan()
	return true
}

// deferInLoop registers one close per iteration but they all run at
// function return: the classic leak.
func deferInLoop(p *hypercube.Proc, n int) {
	for i := 0; i < n; i++ { // want `loop body changes open-span depth by 1 per iteration`
		p.BeginSpan("iter")
		defer p.EndSpan() // want `deferred EndSpan inside a loop runs at function return`
	}
}

// loopBalanced opens and closes within each iteration.
func loopBalanced(p *hypercube.Proc, n int) {
	for i := 0; i < n; i++ {
		p.BeginSpan("iter")
		p.Compute(1)
		p.EndSpan()
	}
}

// fallsOffOpen reaches the end of the function with the span open.
func fallsOffOpen(p *hypercube.Proc) {
	p.BeginSpan("op")
	p.Compute(1)
} // want `function ends with 1 span\(s\) still open`

// branchMismatch closes in one arm of the if only.
func branchMismatch(p *hypercube.Proc, b bool) {
	p.BeginSpan("op")
	if b { // want `span depth differs between the branches of this if`
		p.EndSpan()
	}
}

// extraEnd closes a span that is not open.
func extraEnd(p *hypercube.Proc) {
	p.BeginSpan("op")
	p.EndSpan()
	p.EndSpan() // want `EndSpan without an open span on this path`
}

// switchBalanced: all cases agree, span closed after.
func switchBalanced(p *hypercube.Proc, k int) {
	p.BeginSpan("op")
	switch k {
	case 0:
		p.Compute(1)
	default:
		p.Compute(2)
	}
	p.EndSpan()
}

// switchMismatch: one case closes the span, the others do not.
func switchMismatch(p *hypercube.Proc, k int) {
	p.BeginSpan("op")
	switch k { // want `span depth differs between the cases of this switch`
	case 0:
		p.EndSpan()
	default:
		p.Compute(2)
	}
}

// envSpans balance through the core.Env forwarding methods too.
func envSpans(e *core.Env, quick bool) {
	e.BeginSpan("op")
	defer e.EndSpan()
	if quick {
		return
	}
	e.DotVec()
}

// closureChecked: a literal's spans balance against its own body.
func closureChecked(p *hypercube.Proc) func() {
	return func() {
		p.BeginSpan("cb")
		p.Compute(1)
	} // want `function ends with 1 span\(s\) still open`
}

// instrumented is a conformance-instrumented span: SpanPredict and
// SpanNote annotate the open span without touching the depth counter,
// so the balance proof sees only the Begin/End pair.
func instrumented(p *hypercube.Proc, n int) {
	p.BeginSpan("op")
	p.SpanPredict(float64(n))
	p.Compute(n)
	p.SpanNote("conformance checkpoint")
	p.EndSpan()
}

// instrumentedDefer mixes instrumentation with the deferred-close
// idiom, including a predict after an early-return guard.
func instrumentedDefer(p *hypercube.Proc, n int) {
	p.BeginSpan("op")
	defer p.EndSpan()
	if n == 0 {
		return
	}
	p.SpanPredict(float64(n))
	p.Compute(n)
}

// instrumentedLeak proves instrumentation does not mask the check: a
// predicted span left open is still an unbalanced exit.
func instrumentedLeak(p *hypercube.Proc, n int, bad bool) {
	p.BeginSpan("op")
	p.SpanPredict(float64(n))
	if bad {
		return // want `return leaves 1 span\(s\) open on this path`
	}
	p.EndSpan()
}

// panicPath: a panic aborts the run, so the open span is moot.
func panicPath(p *hypercube.Proc, bad bool) {
	p.BeginSpan("op")
	if bad {
		panic("bad")
	}
	p.EndSpan()
}
