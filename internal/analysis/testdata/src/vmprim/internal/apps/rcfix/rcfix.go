// Fixture for recyclecheck's suggested fix: the missing Recycle is
// inserted after the buffer's last use. The .golden sibling holds the
// expected output of vmlint -fix.
package rcfix

import "vmprim/internal/hypercube"

// Leak forgets to recycle; the fix adds p.Recycle(buf) after the last
// use.
func Leak(p *hypercube.Proc) {
	buf := p.GetBuf(8) // want `buffer "buf" from GetBuf is never recycled`
	buf[0] = 1
	p.Compute(1)
}

// Clean already recycles; it must survive -fix byte for byte.
func Clean(p *hypercube.Proc) {
	buf := p.GetBuf(8)
	buf[0] = 1
	p.Recycle(buf)
}
