// Package core is a typecheck-only stub of the real Env wrapper for
// the analyzer fixtures. DotVec stands in for the exported SPMD
// operations (treated as collectives by the analyzers); the methods
// on the vmlib allowlist (NextTag, GridRow, GridCol, ...) are local.
package core

import "vmprim/internal/hypercube"

// Env mirrors the real per-processor computation environment.
type Env struct {
	P *hypercube.Proc
}

func (e *Env) BeginSpan(name string) {}
func (e *Env) EndSpan()              {}
func (e *Env) NextTag() int          { return 0 }
func (e *Env) NextTag2() int         { return 0 }
func (e *Env) GridRow() int          { return 0 }
func (e *Env) GridCol() int          { return 0 }
func (e *Env) Profiling() bool       { return false }

// DotVec is an exported SPMD operation: every processor must call it.
func (e *Env) DotVec() float64 { return 0 }
