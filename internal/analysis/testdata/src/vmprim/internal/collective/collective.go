// Package collective is a typecheck-only stub of the real collective
// layer for the analyzer fixtures: package-level functions whose
// first parameter is a *hypercube.Proc, which is the signature
// convention vmlib.IsCollectiveCall keys on.
package collective

import "vmprim/internal/hypercube"

func Bcast(p *hypercube.Proc, mask, tag, rootRel int, data []float64) []float64 { return nil }

func AllGather(p *hypercube.Proc, mask, tag int, piece []float64) []float64 { return nil }

func AllReduce(p *hypercube.Proc, mask, tag int, data []float64, comb func(dst, src []float64)) {}

// Rel is deliberately not a collective: no Proc parameter.
func Rel(addr, mask int) int { return 0 }
