package apps

import (
	"math"

	"vmprim/internal/core"
	"vmprim/internal/router"
)

// Naive-implementation building blocks. The naive applications use the
// general router for every data motion — one message per element, one
// explicit send per destination — exactly the "straightforward global
// address space" style the paper's primitives displaced. They share no
// code with the structured collectives on purpose.

// naiveBcast has proc src send words to every processor as P separate
// routed messages (no spanning tree, no combining); everyone returns
// the payload.
func naiveBcast(e *core.Env, src int, words []float64) []float64 {
	var out []router.Msg
	if e.P.ID() == src {
		out = make([]router.Msg, e.P.P())
		for q := range out {
			out[q] = router.Msg{Dst: q, Key: 0, Words: words}
		}
	}
	got := router.Route(e.P, e.NextTag(), out)
	return got[0].Words
}

// naiveFetchElems has proc 0 fetch the listed matrix elements through
// the router, one request per element; every processor calls, proc 0
// returns the values in order, others nil.
func naiveFetchElems(e *core.Env, a *core.Matrix, idx [][2]int) []float64 {
	var want []router.Msg
	if e.P.ID() == 0 {
		want = make([]router.Msg, len(idx))
		for q, ij := range idx {
			want[q] = router.Msg{Dst: a.OwnerOf(ij[0], ij[1]), Key: ij[0]*a.Cols + ij[1]}
		}
	}
	pid := e.P.ID()
	blk := a.L(pid)
	b := a.CMap.B
	got := router.Request(e.P, e.NextTag2(), want, func(key int) []float64 {
		i, j := key/a.Cols, key%a.Cols
		return []float64{blk[a.RMap.LocalOf(i)*b+a.CMap.LocalOf(j)]}
	})
	if e.P.ID() != 0 {
		return nil
	}
	vals := make([]float64, len(got))
	for q := range got {
		vals[q] = got[q][0]
	}
	return vals
}

func naiveSwapRows(e *core.Env, a *core.Matrix, i1, i2 int) {
	if i1 == i2 {
		return
	}
	pid := e.P.ID()
	blk := a.L(pid)
	b := a.CMap.B
	myRow, myCol := e.GridRow(), e.GridCol()
	var out []router.Msg
	for _, pair := range [2][2]int{{i1, i2}, {i2, i1}} {
		from, to := pair[0], pair[1]
		if myRow != a.RMap.CoordOf(from) {
			continue
		}
		lr := a.RMap.LocalOf(from)
		for lc := 0; lc < b; lc++ {
			gj := a.CMap.GlobalOf(myCol, lc)
			if gj < 0 {
				continue
			}
			out = append(out, router.Msg{
				Dst:   a.OwnerOf(to, gj),
				Key:   to*a.Cols + gj,
				Words: []float64{blk[lr*b+lc]},
			})
		}
	}
	got := router.Route(e.P, e.NextTag(), out)
	for _, m := range got {
		i, j := m.Key/a.Cols, m.Key%a.Cols
		blk[a.RMap.LocalOf(i)*b+a.CMap.LocalOf(j)] = m.Words[0]
	}
}

// naiveSpreadRow sends each element of matrix row i (columns [clo,
// chi)) to every processor in the element's grid column, one message
// per (element, destination). The result maps local column index ->
// value on every processor.
func naiveSpreadRow(e *core.Env, a *core.Matrix, i, clo, chi int) []float64 {
	pid := e.P.ID()
	blk := a.L(pid)
	b := a.CMap.B
	myRow, myCol := e.GridRow(), e.GridCol()
	var out []router.Msg
	if myRow == a.RMap.CoordOf(i) {
		lr := a.RMap.LocalOf(i)
		for lc := 0; lc < b; lc++ {
			gj := a.CMap.GlobalOf(myCol, lc)
			if gj < clo || gj >= chi {
				continue
			}
			for gr := 0; gr < e.G.PRows(); gr++ {
				out = append(out, router.Msg{
					Dst:   e.G.ProcAt(gr, myCol),
					Key:   gj,
					Words: []float64{blk[lr*b+lc]},
				})
			}
		}
	}
	got := router.Route(e.P, e.NextTag(), out)
	vals := make([]float64, b)
	for i := range vals {
		vals[i] = math.NaN()
	}
	for _, m := range got {
		vals[a.CMap.LocalOf(m.Key)] = m.Words[0]
	}
	return vals
}

// naiveSpreadCol is naiveSpreadRow transposed: each element of column
// j (rows [rlo, rhi)) goes to every processor in the element's grid
// row; the result maps local row index -> value.
func naiveSpreadCol(e *core.Env, a *core.Matrix, j, rlo, rhi int) []float64 {
	pid := e.P.ID()
	blk := a.L(pid)
	b := a.CMap.B
	myRow, myCol := e.GridRow(), e.GridCol()
	var out []router.Msg
	if myCol == a.CMap.CoordOf(j) {
		lc := a.CMap.LocalOf(j)
		for lr := 0; lr < a.RMap.B; lr++ {
			gi := a.RMap.GlobalOf(myRow, lr)
			if gi < rlo || gi >= rhi {
				continue
			}
			for gc := 0; gc < e.G.PCols(); gc++ {
				out = append(out, router.Msg{
					Dst:   e.G.ProcAt(myRow, gc),
					Key:   gi,
					Words: []float64{blk[lr*b+lc]},
				})
			}
		}
	}
	got := router.Route(e.P, e.NextTag(), out)
	vals := make([]float64, a.RMap.B)
	for i := range vals {
		vals[i] = math.NaN()
	}
	for _, m := range got {
		vals[a.RMap.LocalOf(m.Key)] = m.Words[0]
	}
	return vals
}
