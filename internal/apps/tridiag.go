package apps

import (
	"fmt"

	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/gray"
	"vmprim/internal/hypercube"
	"vmprim/internal/router"
)

// Distributed tridiagonal solve by odd-even cyclic reduction — the
// workhorse of the Alternating Direction Method literature surrounding
// the paper (Johnsson & Ho's tridiagonal-solver studies appear in the
// same TMC report series). The equations live in the load-balanced
// linear embedding; each of the 2 lg n reduction/back-substitution
// levels exchanges the O(n/2^s) active equations' neighbors through
// one batched personalized routing, so the parallel time is
// O(lg n (lg p + tau)) once n/p reaches one — and the local levels
// (stride inside a processor's block) cost no communication at all.

// SolveTridiag solves a[i]*x[i-1] + b[i]*x[i] + c[i]*x[i+1] = d[i]
// on machine mach by distributed odd-even cyclic reduction and returns
// x and the simulated elapsed time. The system must be numerically
// safe without pivoting (e.g. diagonally dominant), like the serial
// Thomas reference.
func SolveTridiag(mach *hypercube.Machine, a, b, c, d []float64) ([]float64, costmodel.Time, error) {
	n := len(b)
	if len(a) != n || len(c) != n || len(d) != n {
		return nil, 0, fmt.Errorf("apps: SolveTridiag band lengths %d/%d/%d/%d", len(a), len(c), len(c), len(d))
	}
	if n == 0 {
		return nil, 0, nil
	}
	// Pad to 2^q - 1 with identity equations x_i = 0, which decouple
	// from the real system because their off-diagonals are zero.
	q := gray.CeilLog2(n + 1)
	np := 1<<q - 1
	g := embed.SplitFor(mach.Dim(), 1, np) // layout choice irrelevant for Linear vectors
	lmap, err := embed.NewMap1D(np, g.D, embed.Block)
	if err != nil {
		return nil, 0, err
	}
	// The host-visible solution vector spans the padded length so its
	// map matches the working layout exactly; the driver slices the
	// real prefix off at the end.
	xOut, err := core.NewVector(g, np, core.Linear, embed.Block, 0, false)
	if err != nil {
		return nil, 0, err
	}

	elapsed, err := mach.Run(func(p *hypercube.Proc) {
		e := core.NewEnv(p, g)
		pid := p.ID()
		myCoord := gray.Decode(pid)
		// Local slices of the padded band vectors.
		bs := lmap.B
		la := make([]float64, bs)
		lb := make([]float64, bs)
		lc := make([]float64, bs)
		ld := make([]float64, bs)
		lx := make([]float64, bs)
		globalOf := func(l int) int { return lmap.GlobalOf(myCoord, l) }
		for l := 0; l < bs; l++ {
			gi := globalOf(l)
			switch {
			case gi < 0:
				lb[l] = 1
			case gi < n:
				la[l], lb[l], lc[l], ld[l] = a[gi], b[gi], c[gi], d[gi]
			default:
				lb[l] = 1 // padding equation
			}
		}
		ownerOf := func(gi int) int { return gray.Encode(lmap.CoordOf(gi)) }
		localOf := func(gi int) int { return lmap.LocalOf(gi) }
		// fetchEqs gathers (a,b,c,d) for a set of global indices
		// through one batched routing round trip.
		fetchEqs := func(idx []int) map[int][4]float64 {
			want := make([]router.Msg, len(idx))
			for q2, gi := range idx {
				want[q2] = router.Msg{Dst: ownerOf(gi), Key: gi}
			}
			got := router.Request(p, e.NextTag2(), want, func(key int) []float64 {
				l := localOf(key)
				return []float64{la[l], lb[l], lc[l], ld[l]}
			})
			out := make(map[int][4]float64, len(idx))
			for q2, gi := range idx {
				out[gi] = [4]float64{got[q2][0], got[q2][1], got[q2][2], got[q2][3]}
			}
			return out
		}
		fetchX := func(idx []int) map[int]float64 {
			want := make([]router.Msg, len(idx))
			for q2, gi := range idx {
				want[q2] = router.Msg{Dst: ownerOf(gi), Key: gi}
			}
			got := router.Request(p, e.NextTag2(), want, func(key int) []float64 {
				return []float64{lx[localOf(key)]}
			})
			out := make(map[int]float64, len(idx))
			for q2, gi := range idx {
				out[gi] = got[q2][0]
			}
			return out
		}
		activeAt := func(s int) []int {
			// Global indices i in my block with (i+1) divisible by 2^(s+1).
			step := 1 << (s + 1)
			var act []int
			for l := 0; l < bs; l++ {
				gi := globalOf(l)
				if gi >= 0 && (gi+1)%step == 0 && gi < np {
					act = append(act, gi)
				}
			}
			return act
		}

		// Reduction: after level s, the equations with (i+1) % 2^(s+1)
		// == 0 form a tridiagonal system among themselves at stride
		// 2^(s+1).
		for s := 0; s < q-1; s++ {
			h := 1 << s
			act := activeAt(s)
			var need []int
			for _, gi := range act {
				need = append(need, gi-h)
				if gi+h < np {
					need = append(need, gi+h)
				}
			}
			vals := fetchEqs(need)
			flops := 0
			for _, gi := range act {
				l := localOf(gi)
				lo := vals[gi-h]
				hi := [4]float64{0, 1, 0, 0}
				if gi+h < np {
					hi = vals[gi+h]
				}
				alpha := la[l] / lo[1]
				gamma := lc[l] / hi[1]
				la[l] = -alpha * lo[0]
				lc[l] = -gamma * hi[2]
				lb[l] = lb[l] - alpha*lo[2] - gamma*hi[0]
				ld[l] = ld[l] - alpha*lo[3] - gamma*hi[3]
				flops += 12
			}
			p.Compute(flops)
		}
		// Apex: the single equation at i = 2^(q-1) - 1.
		apex := 1<<(q-1) - 1
		if ownerOf(apex) == pid {
			l := localOf(apex)
			lx[l] = ld[l] / lb[l]
			p.Compute(1)
		}
		// Back substitution, level by level down.
		for s := q - 2; s >= 0; s-- {
			h := 1 << s
			// Solve the equations that were reduced INTO at level s:
			// indices with (i+1) % 2^(s+1) == 2^s (i.e. active at level
			// s but not above).
			step := 1 << (s + 1)
			var act []int
			for l := 0; l < bs; l++ {
				gi := globalOf(l)
				if gi >= 0 && gi < np && (gi+1)%step == h {
					act = append(act, gi)
				}
			}
			var need []int
			for _, gi := range act {
				if gi-h >= 0 {
					need = append(need, gi-h)
				}
				if gi+h < np {
					need = append(need, gi+h)
				}
			}
			xs := fetchX(need)
			flops := 0
			for _, gi := range act {
				l := localOf(gi)
				xm, xp2 := 0.0, 0.0
				if gi-h >= 0 {
					xm = xs[gi-h]
				}
				if gi+h < np {
					xp2 = xs[gi+h]
				}
				lx[l] = (ld[l] - la[l]*xm - lc[l]*xp2) / lb[l]
				flops += 5
			}
			p.Compute(flops)
		}
		// Land the solution in the host vector (same layout by
		// construction: both use the padded-length block map).
		for l := 0; l < bs; l++ {
			if gi := globalOf(l); gi >= 0 {
				xOut.L(pid)[xOut.Map.LocalOf(gi)] = lx[l]
			}
		}
	})
	if err != nil {
		return nil, 0, err
	}
	return xOut.ToSlice()[:n], elapsed, nil
}

// TridiagSystem is one independent tridiagonal system for the batch
// solver.
type TridiagSystem struct {
	A, B, C, D []float64
}

// SolveTridiagBatch solves many independent tridiagonal systems at
// once by partitioning whole systems over the processors — the
// "embarrassingly parallel case" that the tridiagonal-solver
// literature proves optimal when there are at least as many systems as
// processors (the Alternating Direction Method produces exactly this
// workload; see examples/adi). Systems are dealt round-robin, scattered
// through one routing operation, solved locally with the Thomas
// recurrence, and gathered back. It returns one solution per system
// and the simulated elapsed time.
func SolveTridiagBatch(mach *hypercube.Machine, systems []TridiagSystem) ([][]float64, costmodel.Time, error) {
	ns := len(systems)
	if ns == 0 {
		return nil, 0, nil
	}
	for si, sys := range systems {
		n := len(sys.B)
		if len(sys.A) != n || len(sys.C) != n || len(sys.D) != n {
			return nil, 0, fmt.Errorf("apps: system %d has ragged bands", si)
		}
	}
	p := mach.P()
	results := make([][]float64, ns)
	elapsed, err := mach.Run(func(pr *hypercube.Proc) {
		pid := pr.ID()
		// Scatter: processor 0 owns the input (host data); it routes
		// each system's bands to the system's home processor as one
		// combined message. (A real application would already have the
		// data distributed; charging the scatter keeps the comparison
		// honest.)
		var out []router.Msg
		if pid == 0 {
			for si, sys := range systems {
				n := len(sys.B)
				words := make([]float64, 0, 4*n)
				words = append(words, sys.A...)
				words = append(words, sys.B...)
				words = append(words, sys.C...)
				words = append(words, sys.D...)
				out = append(out, router.Msg{Dst: si % p, Key: si, Words: words})
			}
		}
		mine := router.Route(pr, 1, out)
		// Local Thomas solves, one per owned system.
		var back []router.Msg
		for _, msg := range mine {
			n := len(msg.Words) / 4
			a, b := msg.Words[:n], msg.Words[n:2*n]
			c, d := msg.Words[2*n:3*n], msg.Words[3*n:]
			x, err := serialThomas(a, b, c, d)
			if err != nil {
				panic(fmt.Errorf("apps: system %d: %w", msg.Key, err))
			}
			pr.Compute(8 * n)
			back = append(back, router.Msg{Dst: 0, Key: msg.Key, Words: x})
		}
		gathered := router.Route(pr, 2, back)
		if pid == 0 {
			for _, msg := range gathered {
				results[msg.Key] = msg.Words
			}
		}
	})
	if err != nil {
		return nil, 0, err
	}
	return results, elapsed, nil
}

// serialThomas is the local Thomas recurrence used by the batch solver
// (identical arithmetic to serial.SolveTridiag, duplicated here to
// keep the SPMD kernel self-contained and panic-based).
func serialThomas(a, b, c, d []float64) ([]float64, error) {
	n := len(b)
	if n == 0 {
		return nil, nil
	}
	cp := make([]float64, n)
	dp := make([]float64, n)
	if b[0] == 0 {
		return nil, fmt.Errorf("zero pivot at row 0")
	}
	cp[0] = c[0] / b[0]
	dp[0] = d[0] / b[0]
	for i := 1; i < n; i++ {
		den := b[i] - a[i]*cp[i-1]
		if den == 0 {
			return nil, fmt.Errorf("zero pivot at row %d", i)
		}
		cp[i] = c[i] / den
		dp[i] = (d[i] - a[i]*dp[i-1]) / den
	}
	x := make([]float64, n)
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return x, nil
}
