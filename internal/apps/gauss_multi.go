package apps

import (
	"fmt"

	"vmprim/internal/core"
	"vmprim/internal/costmodel"
	"vmprim/internal/embed"
	"vmprim/internal/hypercube"
	"vmprim/internal/serial"
)

// Multiple-right-hand-side Gaussian elimination: the paper's routine
// on the augmented system [A | B] with B an n x nrhs block. Forward
// elimination is the same four-primitive step as GaussKernel; back
// substitution turns into Gauss-Jordan-style column updates that clear
// each pivot column from the rows above while scaling the solution
// rows — still Extract, Distribute and elementwise updates only.

// EliminateMulti runs elimination with partial pivoting on the
// distributed augmented matrix w (n rows, n + nrhs columns). On return
// the trailing nrhs columns of w hold the solutions X of A X = B. The
// error (singularity) is identical on every processor.
func EliminateMulti(e *core.Env, w *core.Matrix, nrhs int) error {
	n := w.Rows
	if nrhs < 1 || w.Cols != n+nrhs {
		panic(fmt.Sprintf("apps: EliminateMulti needs n x n+nrhs, got %dx%d with nrhs=%d", w.Rows, w.Cols, nrhs))
	}
	cols := n + nrhs
	// Forward elimination (same step as GaussKernel, wider rows).
	for k := 0; k < n; k++ {
		mag, piv := e.ReduceColLoc(w, k, k, n, core.LocMaxAbs)
		if piv < 0 || mag <= pivotEps {
			return fmt.Errorf("apps: singular matrix at step %d", k)
		}
		if piv != k {
			e.SwapRows(w, k, piv)
		}
		prow := e.ExtractRow(w, k, true)
		pivot := e.VecElemAt(prow, k)
		mcol := e.ExtractCol(w, k, true)
		inv := 1 / pivot
		e.MapVec(mcol, func(gi int, v float64) float64 {
			if gi <= k {
				return 0
			}
			return v * inv
		}, 1)
		e.UpdateOuterSub(w, mcol, prow, k+1, n, k, cols)
	}
	// Back substitution: normalize row k's solution block, extract it,
	// and clear column k from the rows above with one restricted
	// rank-1 update per step.
	for k := n - 1; k >= 0; k-- {
		pivot := e.ElemAt(w, k, k)
		inv := 1 / pivot
		e.MapRange(w, k, k+1, n, cols, func(_, _ int, v float64) float64 { return v * inv }, 1)
		if k == 0 {
			break
		}
		xrow := e.ExtractRow(w, k, true)
		ck := e.ExtractCol(w, k, true)
		e.UpdateOuterSub(w, ck, xrow, 0, k, n, cols)
	}
	return nil
}

// SolveGaussMany solves A X = B for an n x nrhs right-hand-side block,
// returning X (n x nrhs) and the simulated elapsed time.
func SolveGaussMany(m *hypercube.Machine, a, b *serial.Mat, opts GaussOpts) (*serial.Mat, costmodel.Time, error) {
	if a.R != a.C {
		return nil, 0, fmt.Errorf("apps: SolveGaussMany needs a square matrix, got %dx%d", a.R, a.C)
	}
	if b.R != a.R || b.C < 1 {
		return nil, 0, fmt.Errorf("apps: rhs block %dx%d incompatible with %dx%d", b.R, b.C, a.R, a.C)
	}
	n, nrhs := a.R, b.C
	g := embed.SplitFor(m.Dim(), n, n+nrhs)
	aug := serial.NewMat(n, n+nrhs)
	for i := 0; i < n; i++ {
		copy(aug.A[i*(n+nrhs):], a.A[i*n:(i+1)*n])
		copy(aug.A[i*(n+nrhs)+n:], b.A[i*nrhs:(i+1)*nrhs])
	}
	w, err := core.FromDense(g, aug, opts.RKind, opts.CKind)
	if err != nil {
		return nil, 0, err
	}
	elapsed, err := m.Run(func(p *hypercube.Proc) {
		e := core.NewEnv(p, g)
		if kerr := EliminateMulti(e, w, nrhs); kerr != nil {
			panic(kerr)
		}
	})
	if err != nil {
		return nil, 0, err
	}
	full := w.ToDense()
	x := serial.NewMat(n, nrhs)
	for i := 0; i < n; i++ {
		for r := 0; r < nrhs; r++ {
			x.Set(i, r, full.At(i, n+r))
		}
	}
	return x, elapsed, nil
}

// Inverse computes A^-1 by solving A X = I with the multi-right-hand-
// side elimination, returning the inverse and the simulated time.
func Inverse(m *hypercube.Machine, a *serial.Mat, opts GaussOpts) (*serial.Mat, costmodel.Time, error) {
	if a.R != a.C {
		return nil, 0, fmt.Errorf("apps: Inverse needs a square matrix, got %dx%d", a.R, a.C)
	}
	eye := serial.NewMat(a.R, a.R)
	for i := 0; i < a.R; i++ {
		eye.Set(i, i, 1)
	}
	return SolveGaussMany(m, a, eye, opts)
}
